package unsched

import (
	"math/rand"

	"unsched/internal/comm"
	"unsched/internal/costmodel"
	"unsched/internal/expt"
	"unsched/internal/hypercube"
	"unsched/internal/ipsc"
	"unsched/internal/mesh"
	"unsched/internal/quality"
	"unsched/internal/sched"
	"unsched/internal/service"
	"unsched/internal/topo"
	"unsched/internal/workload"
)

// Core types, re-exported so downstream code works entirely through
// this package.
type (
	// Matrix is the n x n communication matrix COM.
	Matrix = comm.Matrix
	// Message is one COM entry (source, destination, bytes).
	Message = comm.Message
	// Mesh is the irregular-mesh workload builder.
	Mesh = comm.Mesh
	// Cube is the hypercube topology with e-cube routing.
	Cube = hypercube.Cube
	// Mesh2D is the 2D mesh/torus topology with XY routing (the
	// Paragon-style successor network; the §5 generalization).
	Mesh2D = mesh.Mesh
	// Topology is any deterministic-routing network the link-aware
	// scheduler and the simulator can target.
	Topology = topo.Topology
	// TopologySpec is the canonical description of a topology — the
	// parse/format/validate layer behind the service's topology wire
	// field and the CLI's -topo flag. Specs round-trip through strings:
	// "cube:6", "mesh:8x8", "torus:16x16", "ring:12",
	// "graph:5:0-1,1-2,2-3,3-4,4-0".
	TopologySpec = topo.Spec
	// Graph is an arbitrary connected graph topology with canonical
	// BFS shortest-path routing (lowest-id tie-breaking) — the fully
	// general backend behind ring:N and graph:N:edges specs.
	Graph = topo.Graph
	// WorkloadSpec is the canonical description of a communication
	// workload — the parse/format/validate layer behind the service's
	// workload wire fields and the experiments CLI's -workload flag,
	// mirroring TopologySpec. Specs round-trip through strings:
	// "uniform:8:4096" (the paper's d-regular sweep; "dregular" is an
	// accepted alias), "scatter:8:4096", "hotspot:8:4096:4",
	// "halo:64x64:512", "spmv:12:8", "perm:2048", "transpose:4096",
	// "shift:3:1024", "stencil3d:8x8x8:64", "bitcomp:1024",
	// "alltoall:256". Build the Matrix for an n-node machine with
	// Spec.Build(n, rng), or reuse a buffer with Spec.BuildInto.
	WorkloadSpec = workload.Spec
	// Schedule is an ordered list of contention-avoiding phases.
	Schedule = sched.Schedule
	// Phase is one partial permutation.
	Phase = sched.Phase
	// ACOrder is the (non-)schedule of the asynchronous algorithm.
	ACOrder = sched.ACOrder
	// Params is the machine timing model.
	Params = costmodel.Params
	// Result is a simulated run outcome.
	Result = ipsc.Result
	// ExperimentConfig parameterizes the paper's measurement protocol.
	ExperimentConfig = expt.Config
	// ExperimentRunner is the parallel campaign engine: it fans the
	// (workload, sample, algorithm) units of a measurement campaign
	// across a bounded worker pool with deterministic per-unit RNG
	// streams, so results are bit-identical at any parallelism. Sweep
	// arbitrary WorkloadSpec lists with MeasureWorkloads; the classic
	// density x size grids are uniform:* sweeps of the same engine.
	ExperimentRunner = expt.Runner
	// ExperimentPoint is one cell of a campaign grid: a WorkloadSpec,
	// or the classic (Density, MsgBytes) uniform-workload shorthand.
	ExperimentPoint = expt.Point
	// ExperimentCell is one measured (algorithm, workload) result.
	ExperimentCell = expt.Cell
	// ExperimentAlgorithm names one of the paper's four contenders.
	ExperimentAlgorithm = expt.Algorithm
	// SimMachine is a reusable single-run simulator instance; its Run
	// methods reset and reuse its state, avoiding per-run allocation.
	SimMachine = ipsc.Machine
	// SchedCore is a reusable scheduler instance: it owns the CCOM row
	// storage, occupancy tables, and busy vectors the algorithms need,
	// and re-initializes them in place per call — the scheduling-side
	// mirror of SimMachine's Reset-reuse contract. Create one per
	// goroutine; schedules are bit-identical to the package functions.
	SchedCore = sched.Core
	// RouteTable is a CSR-packed precomputation of all n^2
	// deterministic routes of a Topology: built once (O(n^2 * diameter)
	// memory), immutable, safe to share across any number of cores and
	// goroutines.
	RouteTable = topo.RouteTable
	// Server is the unschedd scheduling service: schedule/simulate/
	// campaign endpoints over a bounded worker pool with a
	// content-addressed memoization cache (see cmd/unschedd).
	Server = service.Server
	// ServerOptions configures a Server; the zero value is usable.
	ServerOptions = service.Options
	// ScheduleRequest is the body of the service's POST /v1/schedule.
	ScheduleRequest = service.ScheduleRequest
	// ScheduleResult is the memoized payload of a /v1/schedule response.
	ScheduleResult = service.ScheduleResult
	// SimulateRequest is the body of the service's POST /v1/simulate.
	SimulateRequest = service.SimulateRequest
	// SimulateResult is the memoized payload of a /v1/simulate response.
	SimulateResult = service.SimulateResult
	// ResponseEnvelope is the outer JSON document of every synchronous
	// service response: content-hash key, cached flag, raw result.
	ResponseEnvelope = service.Envelope
	// ErrorEnvelope is the body of every non-2xx service response: the
	// legacy bare message plus the versioned {code, message} detail.
	ErrorEnvelope = service.ErrorEnvelope
	// ErrorDetail is the structured half of an error response; branch
	// on its stable Code, never on message text.
	ErrorDetail = service.ErrorDetail
	// WireMatrix is the service wire form of a communication matrix.
	WireMatrix = service.WireMatrix
	// WireTopology is the service wire form of a topology.
	WireTopology = service.WireTopology
	// WireSchedule is the service wire form of a computed schedule.
	WireSchedule = service.WireSchedule
	// CampaignRequest is the body of POST /v1/campaign.
	CampaignRequest = service.CampaignRequest
	// CampaignAccepted is the 202 body of POST /v1/campaign.
	CampaignAccepted = service.CampaignAccepted
	// CampaignStatus is the body of GET /v1/campaign/{id}.
	CampaignStatus = service.CampaignStatus
	// BatchScheduleRequest is the body of POST /v1/schedule/batch.
	BatchScheduleRequest = service.BatchScheduleRequest
	// BatchItem is one NDJSON line of a batch response stream.
	BatchItem = service.BatchItem
	// BinaryResponse is a decoded binary service response envelope.
	BinaryResponse = service.BinaryResponse
	// SchedOutcome is the evaluation artifact every scheduling run
	// emits: the algorithm, its phase count, the estimated
	// communication time, the modeled scheduling cost, and the input
	// features the quality model bins on. Campaigns aggregate these
	// into QualityRecords — the calibration data behind algorithm
	// "auto".
	SchedOutcome = sched.Outcome
	// SchedFeatures is the feature vector algorithm "auto" resolves
	// on: node count, density, and message-size variation.
	SchedFeatures = sched.Features
	// QualityRecord is one calibration measurement: what one algorithm
	// cost on one (topology, workload) cell of a campaign grid.
	QualityRecord = quality.Record
	// QualityStore is the append-only calibration record file behind
	// ServerOptions.QualityStore (and the CLIs' -quality-db flags).
	QualityStore = quality.Store
	// QualityModel ranks algorithms by calibrated mean cost per
	// feature bin; its Pick answers what "auto" resolves to. A nil
	// model answers from the committed fallback table.
	QualityModel = quality.Model
	// PeerHealth is one fleet member's reachability in a /healthz
	// response; present only when the server runs in fleet mode
	// (ServerOptions.Peers). Advisory: unreachable peers never flip
	// the overall health status, because a fleet member always falls
	// back to computing locally.
	PeerHealth = service.PeerHealth
)

// Content types the service negotiates; see the README's wire-format
// section. JSON is the default; request the compact binary envelope
// with an Accept header; batch streams are NDJSON.
const (
	ContentTypeJSON   = service.ContentTypeJSON
	ContentTypeBinary = service.ContentTypeBinary
	ContentTypeNDJSON = service.ContentTypeNDJSON
)

// DecodeBinaryResponse parses a binary (application/x-unsched-binary)
// service response body. The decoder is total: malformed input yields
// an error, never a panic.
var DecodeBinaryResponse = service.DecodeBinaryResponse

// DecodeMatrixBinary parses the canonical binary wire encoding of a
// communication matrix (the "USWM" block; Matrix.EncodeBinary writes
// it). Total and strict: accepted payloads re-encode byte-identically.
var DecodeMatrixBinary = comm.DecodeMatrixBinary

// NewMatrix returns an empty n x n communication matrix.
func NewMatrix(n int) (*Matrix, error) { return comm.New(n) }

// NewCube returns the hypercube with 2^dim nodes; it panics on
// dimensions outside [0, 30], which are compile-time constants in any
// reasonable caller.
func NewCube(dim int) *Cube { return hypercube.MustNew(dim) }

// NewMesh2D returns a w x h mesh (torus if wrap) with XY routing.
func NewMesh2D(w, h int, wrap bool) (*Mesh2D, error) { return mesh.New(w, h, wrap) }

// NewRing returns the n-node ring with shorter-way-around routing.
func NewRing(n int) (*Graph, error) { return topo.NewRing(n) }

// NewGraph returns the connected graph over n nodes with the given
// undirected edges, routed by canonical BFS shortest paths with
// lowest-id tie-breaking. Any such graph drives the link-aware
// schedulers, the simulator, and the experiment engine.
func NewGraph(n int, edges [][2]int) (*Graph, error) { return topo.NewGraph(n, edges) }

// ParseTopologySpec parses a canonical topology spec string; see
// TopologySpec for the grammar. Build the Topology with Spec.Build.
func ParseTopologySpec(s string) (TopologySpec, error) { return topo.ParseSpec(s) }

// ParseWorkloadSpec parses a canonical workload spec string; see
// WorkloadSpec for the grammar. Build the pattern's Matrix for an
// n-node machine with Spec.Build(n, rng).
func ParseWorkloadSpec(s string) (WorkloadSpec, error) { return workload.ParseSpec(s) }

// Workload generators (see internal/comm for details). Each also has
// an XxxInto variant there that regenerates into a reused matrix; the
// WorkloadSpec layer is the string-addressable face of the same
// generators.
var (
	UniformRandom     = comm.UniformRandom
	DRegular          = comm.DRegular
	HotSpot           = comm.HotSpot
	BitComplement     = comm.BitComplement
	Shift             = comm.Shift
	AllToAll          = comm.AllToAll
	Permutation       = comm.Permutation
	Transpose         = comm.Transpose
	Stencil3D         = comm.Stencil3D
	SpMVPowerLaw      = comm.SpMVPowerLaw
	HaloFromPartition = comm.HaloFromPartition
	NewIrregularMesh  = comm.NewIrregularMesh
	MixedSizes        = comm.MixedSizes
	ReadMatrix        = comm.Read
)

// The paper's scheduling algorithms and the extension baselines.
var (
	// AC returns the asynchronous send order (paper §3).
	AC = sched.AC
	// ACShuffled randomizes each processor's firing order.
	ACShuffled = sched.ACShuffled
	// LP is the XOR linear-permutation schedule (paper §4.1).
	LP = sched.LP
	// RSN is randomized scheduling avoiding node contention (§4.2).
	RSN = sched.RSN
	// RSNL avoids node and link contention with pairwise priority (§5).
	RSNL = sched.RSNL
	// RSNLSized is the non-uniform-size variant of RSNL ([15]).
	RSNLSized = sched.RSNLSized
	// Greedy is the deterministic maximal-matching baseline.
	Greedy = sched.Greedy
	// GreedyLargestFirst handles non-uniform message sizes.
	GreedyLargestFirst = sched.GreedyLargestFirst
	// GreedyLargestFirstLinkFree adds link-contention avoidance.
	GreedyLargestFirstLinkFree = sched.GreedyLargestFirstLinkFree
)

// MeasureFeatures computes the feature vector of a matrix — the key
// the quality model bins calibration data on and what algorithm
// "auto" resolves from.
var MeasureFeatures = sched.MeasureFeatures

// OpenQualityStore opens (creating if absent) the append-only
// calibration record file at path.
func OpenQualityStore(path string) (*QualityStore, error) { return quality.Open(path) }

// LoadQualityModel loads the store at path and builds its calibrated
// model; an empty or missing store yields a fallback-only model.
func LoadQualityModel(path string) (*QualityModel, error) { return quality.LoadModel(path) }

// NewQualityModel builds a calibrated model from loaded records.
func NewQualityModel(recs []QualityRecord) *QualityModel { return quality.NewModel(recs) }

// DefaultIPSC860 returns the calibrated 64-node iPSC/860 timing model.
func DefaultIPSC860() Params { return costmodel.DefaultIPSC860() }

// DefaultIPSC2 returns the approximate timing model of the slower
// predecessor machine, for sensitivity checks.
func DefaultIPSC2() Params { return costmodel.DefaultIPSC2() }

// SimulateS1 runs a schedule under the S1 protocol (ready signals,
// pairwise exchanges) on the machine simulator. Use for LP and RSNL
// schedules; LP schedules get the exchange-every-phase semantics via
// SimulateLP.
func SimulateS1(net Topology, params Params, s *Schedule) (Result, error) {
	return ipsc.RunS1(net, params, s)
}

// SimulateS2 runs a schedule under the S2 protocol (post-all,
// send-all in schedule order, confirm). Use for RSN schedules.
func SimulateS2(net Topology, params Params, s *Schedule) (Result, error) {
	return ipsc.RunS2(net, params, s)
}

// SimulateLP runs an LP schedule with a pairwise-synchronized exchange
// in every phase, the way complete-exchange codes drive the machine.
func SimulateLP(net Topology, params Params, s *Schedule) (Result, error) {
	return ipsc.RunLP(net, params, s)
}

// SimulateAC runs the asynchronous algorithm on the machine simulator.
func SimulateAC(net Topology, params Params, o *ACOrder, m *Matrix) (Result, error) {
	return ipsc.RunAC(net, params, o, m)
}

// Simulate dispatches a schedule to the execution protocol the paper
// pairs it with: S1 for LP (exchange semantics) and RS_NL, S2 for
// everything else.
func Simulate(net Topology, params Params, s *Schedule) (Result, error) {
	switch s.Algorithm {
	case "LP":
		return SimulateLP(net, params, s)
	case "RS_NL":
		return SimulateS1(net, params, s)
	default:
		return SimulateS2(net, params, s)
	}
}

// ScheduleFor runs the algorithm the paper recommends for the (d, M)
// operating point (Figure 5): AC for tiny messages, LP for dense
// large-message patterns, RS_NL otherwise. It returns a nil Schedule
// when AC is chosen (there is nothing to schedule).
func ScheduleFor(m *Matrix, cube *Cube, rng *rand.Rand) (*Schedule, error) {
	d := m.Density()
	bytes := m.MaxMessageBytes()
	params := DefaultIPSC860()
	switch {
	case bytes <= params.ShortMaxBytes:
		return nil, nil // AC: just fire asynchronously
	case d >= cube.Nodes()/2 && bytes > 1024:
		return LP(m)
	default:
		return RSNL(m, cube, rng)
	}
}

// DefaultExperimentConfig returns the paper's experiment setup (64
// nodes, calibrated model) with a reduced sample count; set Samples to
// 50 for the paper's exact protocol.
func DefaultExperimentConfig() ExperimentConfig { return expt.DefaultConfig() }

// NewExperimentRunner returns a parallel campaign runner over cfg.
// parallelism <= 0 uses one worker per GOMAXPROCS; set the runner's
// Progress field for streaming completion callbacks. Campaign output
// is bit-identical at every parallelism, including 1.
func NewExperimentRunner(cfg ExperimentConfig, parallelism int) *ExperimentRunner {
	return &ExperimentRunner{Config: cfg, Parallelism: parallelism}
}

// NewServer returns a running scheduling service (an http.Handler):
// POST /v1/schedule and /v1/simulate execute on a bounded worker pool
// of reusable SimMachines and are memoized by a canonical content hash
// of (matrix, algorithm, topology, params), POST /v1/campaign runs
// measurement grids asynchronously, and a full queue answers 429.
// Setting ServerOptions.CacheDir persists the memoization cache to
// disk and warm-restarts from it, so a rebooted daemon serves
// previously computed responses without recomputing. Setting
// ServerOptions.Peers (plus SelfURL) joins a fleet: rendezvous hashing
// assigns every cache key an owning member, misses on non-owned keys
// try a budgeted, hedged peer fetch before computing, and locally
// computed non-owned records are pushed to their owner asynchronously;
// every peer failure degrades to local compute. Close the server to
// drain workers, cancel campaigns, flush queued cache records, and
// drain pending peer pushes.
func NewServer(opts ServerOptions) (*Server, error) { return service.NewServer(opts) }

// NewSimMachine returns a reusable simulator for the topology and
// timing model. One machine drives many runs through its RunS1/RunS2/
// RunLP/RunAC methods without reallocating per-node state — create one
// per goroutine, as a Machine must not be shared concurrently.
func NewSimMachine(net Topology, params Params) (*SimMachine, error) {
	return ipsc.NewMachine(net, params)
}

// NewRouteTable precomputes every deterministic route of net, to be
// shared read-only by any number of scheduler cores (and goroutines).
func NewRouteTable(net Topology) *RouteTable { return topo.NewRouteTable(net) }

// NewSchedCore returns a reusable scheduler core for net, precomputing
// its route table. Drive it through its RSNL/RSN/LP/... methods; one
// core serves an arbitrarily long schedule sequence without
// reallocating scratch state. Create one per goroutine — a core must
// not be shared concurrently. For many cores over one topology, build
// the table once with NewRouteTable and use NewSchedCoreForTable.
func NewSchedCore(net Topology) *SchedCore { return sched.NewCore(net) }

// NewSchedCoreForTable returns a reusable scheduler core over a shared
// precomputed route table.
func NewSchedCoreForTable(rt *RouteTable) *SchedCore { return sched.NewCoreForTable(rt) }
