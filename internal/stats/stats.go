// Package stats provides the small statistical helpers used by the
// experiment harness: summary statistics over float64 samples and
// deterministic spawning of independent sub-generators from a master
// seed, so that every experiment in the repository is reproducible
// from a single integer.
package stats

import (
	"math"
	"math/rand"
	"sort"
)

// Summary holds the usual summary statistics of a sample set.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes summary statistics over xs. An empty slice yields
// a zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := s.N / 2
	if s.N%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Source spawns deterministic, independent rand.Rand generators from a
// master seed. Two Sources built from the same seed produce identical
// streams; distinct stream indices produce (practically) independent
// streams. It is not safe for concurrent use; spawn the sub-generators
// up front and hand them to goroutines.
type Source struct {
	seed int64
}

// NewSource returns a Source rooted at the given master seed.
func NewSource(seed int64) *Source {
	return &Source{seed: seed}
}

// splitmix64 is the standard SplitMix64 mixer; it decorrelates the
// per-stream seeds derived from (master seed, stream index).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// StreamKeyed returns the generator for a composite key, folding each
// component through SplitMix64. Unlike packing a tuple into one index
// with a linear combination (d*1e6 + M*1000 + s collides for, e.g.,
// (4, 1024, s) and (5, 24, s)), composed mixing leaves no algebraic
// relation between tuples, so distinct keys get decorrelated streams
// whatever their ranges. Identical keys still produce identical
// streams — the reproducibility contract is unchanged.
func (s *Source) StreamKeyed(parts ...int64) *rand.Rand {
	x := uint64(s.seed) * 0x9e3779b97f4a7c15
	for _, p := range parts {
		x = splitmix64(x ^ uint64(p))
	}
	return rand.New(rand.NewSource(int64(x)))
}

// Perm returns a random permutation of [0,n) using r.
func Perm(r *rand.Rand, n int) []int {
	return r.Perm(n)
}
