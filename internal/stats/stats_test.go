package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty Summarize = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{5})
	if s.N != 1 || s.Mean != 5 || s.Min != 5 || s.Max != 5 || s.Median != 5 || s.Std != 0 {
		t.Errorf("single Summarize = %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	if math.Abs(s.Std-2.138) > 0.001 {
		t.Errorf("Std = %v, want ~2.138", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Errorf("Median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{9, 1, 5})
	if s.Median != 5 {
		t.Errorf("Median = %v, want 5", s.Median)
	}
}

func TestMeanMaxMin(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Mean(xs) != 2.8 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Max(xs) != 5 {
		t.Errorf("Max = %v", Max(xs))
	}
	if Min(xs) != 1 {
		t.Errorf("Min = %v", Min(xs))
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty-slice helpers should return 0")
	}
}

func TestSourceDeterministic(t *testing.T) {
	a := NewSource(42).StreamKeyed(3)
	b := NewSource(42).StreamKeyed(3)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (seed, stream) produced different values")
		}
	}
}

func TestStreamKeyedDeterministic(t *testing.T) {
	a := NewSource(42).StreamKeyed(1, 4, 1024, 7)
	b := NewSource(42).StreamKeyed(1, 4, 1024, 7)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (seed, key) produced different values")
		}
	}
}

// TestStreamKeyedNoLinearCollisions pins the collision class that the
// old linear packing d*1e6 + M*1000 + sample suffered from: the cells
// (d=4, M=1024) and (d=5, M=24) packed to the same index, so two
// "independent" campaign cells drew identical randomness. Composite
// keys must keep such tuples apart.
func TestStreamKeyedNoLinearCollisions(t *testing.T) {
	src := NewSource(1994)
	pairs := [][2][]int64{
		{{0, 4, 1024, 0}, {0, 5, 24, 0}},         // the historical collision
		{{0, 17, 24, 0}, {1, 4, 256, 0, 0}},      // pattern vs sched cross-talk
		{{0, 4, 1024, 0}, {1, 4, 1024, 0}},       // tag separates stream kinds
		{{1, 4, 1024, 0, 0}, {1, 4, 1024, 0, 1}}, // algorithms differ
	}
	for _, p := range pairs {
		a := src.StreamKeyed(p[0]...)
		b := src.StreamKeyed(p[1]...)
		same := 0
		for i := 0; i < 100; i++ {
			if a.Int63() == b.Int63() {
				same++
			}
		}
		if same > 2 {
			t.Errorf("keys %v and %v collided %d/100 times", p[0], p[1], same)
		}
	}
}

func TestSourceStreamsIndependent(t *testing.T) {
	src := NewSource(42)
	a := src.StreamKeyed(0)
	b := src.StreamKeyed(1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams 0 and 1 collided %d/100 times", same)
	}
}

// Property: mean lies within [min, max] for nonempty samples.
func TestSummaryBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 &&
			s.Median >= s.Min-1e-9 && s.Median <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPerm(t *testing.T) {
	r := NewSource(7).StreamKeyed(0)
	p := Perm(r, 10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}
