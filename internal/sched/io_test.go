package sched

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"unsched/internal/comm"
)

func TestScheduleRoundTrip(t *testing.T) {
	m := randomMatrix(t, 64, 8, 1024, 70)
	s, err := RSNL(m, cube64(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSchedule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Algorithm != s.Algorithm || got.N != s.N || got.Ops != s.Ops {
		t.Errorf("header mismatch: %v vs %v", got, s)
	}
	if got.NumPhases() != s.NumPhases() {
		t.Fatalf("phases %d vs %d", got.NumPhases(), s.NumPhases())
	}
	for k := range s.Phases {
		for i := range s.Phases[k].Send {
			if got.Phases[k].Send[i] != s.Phases[k].Send[i] ||
				got.Phases[k].Bytes[i] != s.Phases[k].Bytes[i] {
				t.Fatalf("phase %d node %d differs", k, i)
			}
		}
	}
	// The loaded schedule still validates against the matrix.
	if err := got.Validate(m); err != nil {
		t.Fatal(err)
	}
}

func TestReadScheduleRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"bogus\n",
		"schedule X n -3 phases 0 ops 0\n",
		"schedule X n 4 phases zz ops 0\n",
		"schedule X n 4 phases 0 ops xx\n",
		"schedule X n 4 phases 1 ops 0\n",                        // missing phase
		"schedule X n 4 phases 1 ops 0\n0 1 10\n",                // transfer before phase
		"schedule X n 4 phases 1 ops 0\nphase 1\n",               // phase out of order
		"schedule X n 4 phases 1 ops 0\nphase 0\n0 1\n",          // short transfer
		"schedule X n 4 phases 1 ops 0\nphase 0\n0 9 10\n",       // bad endpoint
		"schedule X n 4 phases 1 ops 0\nphase 0\n2 2 10\n",       // self send
		"schedule X n 4 phases 1 ops 0\nphase 0\n0 1 0\n",        // zero size
		"schedule X n 4 phases 1 ops 0\nphase 0\n0 1 5\n0 2 5\n", // double send
		"schedule X n 4 phases 1 ops 0\nphase 0\n0 1 5\n2 1 5\n", // node contention
	}
	for _, in := range cases {
		if _, err := ReadSchedule(strings.NewReader(in)); err == nil {
			t.Errorf("garbage accepted: %q", in)
		}
	}
}

func TestReadScheduleSkipsComments(t *testing.T) {
	in := "schedule LP n 4 phases 1 ops 3\n# comment\nphase 0\n\n0 1 10\n"
	s, err := ReadSchedule(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Phases[0].Send[0] != 1 {
		t.Error("comment handling broke parsing")
	}
}

func TestWriteEmptySchedule(t *testing.T) {
	s := &Schedule{Algorithm: "RS_N", N: 8}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSchedule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPhases() != 0 {
		t.Errorf("phases = %d", got.NumPhases())
	}
	if err := got.Validate(comm.MustNew(8)); err != nil {
		t.Fatal(err)
	}
}
