package sched

import (
	"unsched/internal/comm"
	"unsched/internal/topo"
)

// Greedy is the deterministic baseline the randomized schedulers are
// measured against: per phase it builds a maximal matching by scanning
// rows in ascending processor order and taking the first entry whose
// receiver is free. It avoids node contention like RS_N but, without
// the randomization, processors with small IDs monopolize the early
// phases for clustered patterns — the behaviour §4.2 of the paper
// warns about.
func Greedy(m *comm.Matrix) (*Schedule, error) {
	return NewCoreDirect(nil).Greedy(m)
}

// GreedyLargestFirst schedules non-uniform message sizes by list
// scheduling: messages are sorted by size (largest first) and each is
// placed into the earliest phase where its sender and receiver are
// both still free. Because a phase costs tau + M*phi where M is its
// largest message (paper §2.1, assumption 1), packing similar sizes
// together minimizes the sum of per-phase maxima. This is the
// size-aware direction the paper defers to [15] (Wang's thesis);
// uniform inputs reduce it to a plain matching schedule.
func GreedyLargestFirst(m *comm.Matrix) (*Schedule, error) {
	return NewCoreDirect(nil).GreedyLargestFirst(m)
}

// GreedyLargestFirstLinkFree is GreedyLargestFirst with the RS_NL
// link-contention constraint added: a message only joins a phase if
// its e-cube circuit is disjoint from every circuit already in that
// phase. It combines the non-uniform-size extension with the paper's
// link-avoidance idea. A reusable Core draws the per-phase claim
// tables from a recycled pool; this wrapper's throwaway core still
// allocates them once per phase, as before.
func GreedyLargestFirstLinkFree(m *comm.Matrix, net topo.Topology) (*Schedule, error) {
	return NewCoreDirect(net).GreedyLargestFirstLinkFree(m)
}
