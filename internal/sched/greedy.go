package sched

import (
	"sort"

	"unsched/internal/comm"
	"unsched/internal/topo"
)

// Greedy is the deterministic baseline the randomized schedulers are
// measured against: per phase it builds a maximal matching by scanning
// rows in ascending processor order and taking the first entry whose
// receiver is free. It avoids node contention like RS_N but, without
// the randomization, processors with small IDs monopolize the early
// phases for clustered patterns — the behaviour §4.2 of the paper
// warns about.
func Greedy(m *comm.Matrix) (*Schedule, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := m.N()
	ccom := comm.NewCompressedOrdered(m)
	var ops int64
	ops += int64(n) // per-processor row compression, as in RSN
	s := &Schedule{Algorithm: "GREEDY", N: n}
	trecv := make([]int, n)
	for !ccom.Empty() {
		p := NewPhase(n)
		for i := range trecv {
			trecv[i] = -1
		}
		ops += int64(n)
		for x := 0; x < n; x++ {
			for z := 0; z < ccom.Remaining(x); z++ {
				ops++
				y := ccom.At(x, z)
				if trecv[y] == -1 {
					dest, bytes := ccom.Remove(x, z)
					p.Send[x] = dest
					p.Bytes[x] = bytes
					trecv[dest] = x
					break
				}
			}
		}
		s.Phases = append(s.Phases, p)
	}
	s.Ops = ops
	return s, nil
}

// GreedyLargestFirst schedules non-uniform message sizes by list
// scheduling: messages are sorted by size (largest first) and each is
// placed into the earliest phase where its sender and receiver are
// both still free. Because a phase costs tau + M*phi where M is its
// largest message (paper §2.1, assumption 1), packing similar sizes
// together minimizes the sum of per-phase maxima. This is the
// size-aware direction the paper defers to [15] (Wang's thesis);
// uniform inputs reduce it to a plain matching schedule.
func GreedyLargestFirst(m *comm.Matrix) (*Schedule, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := m.N()
	msgs := m.Messages()
	sort.SliceStable(msgs, func(a, b int) bool { return msgs[a].Bytes > msgs[b].Bytes })
	var ops int64
	s := &Schedule{Algorithm: "GREEDY_LF", N: n}
	// sendBusy[k*n+i] / recvBusy[k*n+j]: processor engagement per phase.
	var sendBusy, recvBusy []bool
	grow := func() {
		sendBusy = append(sendBusy, make([]bool, n)...)
		recvBusy = append(recvBusy, make([]bool, n)...)
		s.Phases = append(s.Phases, NewPhase(n))
	}
	for _, msg := range msgs {
		placed := false
		for k := 0; k < len(s.Phases); k++ {
			ops++
			if !sendBusy[k*n+msg.Src] && !recvBusy[k*n+msg.Dst] {
				sendBusy[k*n+msg.Src] = true
				recvBusy[k*n+msg.Dst] = true
				s.Phases[k].Send[msg.Src] = msg.Dst
				s.Phases[k].Bytes[msg.Src] = msg.Bytes
				placed = true
				break
			}
		}
		if !placed {
			grow()
			k := len(s.Phases) - 1
			sendBusy[k*n+msg.Src] = true
			recvBusy[k*n+msg.Dst] = true
			s.Phases[k].Send[msg.Src] = msg.Dst
			s.Phases[k].Bytes[msg.Src] = msg.Bytes
			ops++
		}
	}
	s.Ops = ops
	return s, nil
}

// GreedyLargestFirstLinkFree is GreedyLargestFirst with the RS_NL
// link-contention constraint added: a message only joins a phase if
// its e-cube circuit is disjoint from every circuit already in that
// phase. It combines the non-uniform-size extension with the paper's
// link-avoidance idea.
func GreedyLargestFirstLinkFree(m *comm.Matrix, net topo.Topology) (*Schedule, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := m.N()
	msgs := m.Messages()
	sort.SliceStable(msgs, func(a, b int) bool { return msgs[a].Bytes > msgs[b].Bytes })
	var ops int64
	s := &Schedule{Algorithm: "GREEDY_LF_LINK", N: n}
	var sendBusy, recvBusy []bool
	var occs []*topo.Occupancy
	grow := func() {
		sendBusy = append(sendBusy, make([]bool, n)...)
		recvBusy = append(recvBusy, make([]bool, n)...)
		s.Phases = append(s.Phases, NewPhase(n))
		occs = append(occs, topo.NewOccupancy(net))
	}
	place := func(k int, msg comm.Message) {
		sendBusy[k*n+msg.Src] = true
		recvBusy[k*n+msg.Dst] = true
		s.Phases[k].Send[msg.Src] = msg.Dst
		s.Phases[k].Bytes[msg.Src] = msg.Bytes
		occs[k].MarkPath(msg.Src, msg.Dst)
	}
	for _, msg := range msgs {
		placed := false
		for k := 0; k < len(s.Phases); k++ {
			ops += 1 + int64(net.Hops(msg.Src, msg.Dst))
			if !sendBusy[k*n+msg.Src] && !recvBusy[k*n+msg.Dst] && occs[k].CheckPath(msg.Src, msg.Dst) {
				place(k, msg)
				placed = true
				break
			}
		}
		if !placed {
			grow()
			place(len(s.Phases)-1, msg)
			ops++
		}
	}
	s.Ops = ops
	return s, nil
}
