package sched

import (
	"unsched/internal/comm"
)

// LP implements the paper's §4.1 "scheduling using a special class of
// permutations" (Figure 2): in phase k (k = 1..n-1) processor Pi
// exchanges with P(i XOR k) — sending iff COM(i, i^k) > 0 and
// receiving iff COM(i^k, i) > 0.
//
// Properties (paper §4.1 and §7): the whole schedule is pairwise
// exchanges, so the iPSC/860's concurrent bidirectional transfer
// applies throughout; within a phase distinct pairs' e-cube routes are
// channel-disjoint, so there is no node or link contention; and the
// scheduling cost is trivially O(n) per processor. The drawback is the
// fixed n-1 phase count regardless of density, which is why LP loses
// at small d.
//
// n must be a power of two (XOR pairing needs a full address space).
func LP(m *comm.Matrix) (*Schedule, error) {
	return NewCoreDirect(nil).LP(m)
}
