package sched

import (
	"fmt"

	"unsched/internal/comm"
)

// LP implements the paper's §4.1 "scheduling using a special class of
// permutations" (Figure 2): in phase k (k = 1..n-1) processor Pi
// exchanges with P(i XOR k) — sending iff COM(i, i^k) > 0 and
// receiving iff COM(i^k, i) > 0.
//
// Properties (paper §4.1 and §7): the whole schedule is pairwise
// exchanges, so the iPSC/860's concurrent bidirectional transfer
// applies throughout; within a phase distinct pairs' e-cube routes are
// channel-disjoint, so there is no node or link contention; and the
// scheduling cost is trivially O(n) per processor. The drawback is the
// fixed n-1 phase count regardless of density, which is why LP loses
// at small d.
//
// n must be a power of two (XOR pairing needs a full address space).
func LP(m *comm.Matrix) (*Schedule, error) {
	n := m.N()
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("sched: LP requires a power-of-two processor count, got %d", n)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	s := &Schedule{Algorithm: "LP", N: n}
	for k := 1; k < n; k++ {
		p := NewPhase(n)
		for i := 0; i < n; i++ {
			j := i ^ k
			if b := m.At(i, j); b > 0 {
				p.Send[i] = j
				p.Bytes[i] = b
			}
		}
		// The paper's LP walks all n-1 iterations even when a phase is
		// empty (that is exactly its weakness at low density); keep
		// empty phases so the phase count is n-1 and the executor pays
		// the per-phase loop cost.
		s.Phases = append(s.Phases, p)
	}
	// Ops models the per-processor scheduling cost ("comp" in Table 1):
	// each processor derives its own partner sequence with one XOR and
	// one row lookup per phase — the "very low computation overhead" of
	// §7. The n-way loop above is this simulator materializing every
	// processor's view at once, not work the machine would do serially.
	s.Ops = int64(n - 1)
	return s, nil
}
