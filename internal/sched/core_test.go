package sched

import (
	"math/rand"
	"reflect"
	"testing"

	"unsched/internal/comm"
	"unsched/internal/hypercube"
	"unsched/internal/mesh"
	"unsched/internal/topo"
)

// coreTestMatrices returns a mix of workloads on n nodes: uniform
// d-regular, symmetric hot-spot-ish, non-uniform sizes, and empty.
func coreTestMatrices(t *testing.T, n int) []*comm.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	m1, err := comm.DRegular(n, 4, 1024, rng)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := comm.DRegular(n, n/2, 64*1024, rng)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := comm.MixedSizes(n, 6, 64, 32*1024, rng)
	if err != nil {
		t.Fatal(err)
	}
	m4 := comm.MustNew(n)
	for c := 0; c < 4*n; c++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			m4.Set(i, j, 2048)
			m4.Set(j, i, 2048)
		}
	}
	return []*comm.Matrix{m1, m2, m3, m4, comm.MustNew(n)}
}

func sameSchedule(t *testing.T, name string, want, got *Schedule, err1, err2 error) {
	t.Helper()
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("%s: package err %v, core err %v", name, err1, err2)
	}
	if err1 != nil {
		return
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: reused core diverged from package function\nwant %v\ngot  %v", name, want, got)
	}
}

// TestCoreMatchesPackageFunctions drives one reused Core through every
// algorithm over several matrices back to back and requires each
// schedule to be bit-identical (phases, bytes, ops) to the
// package-level function given the same RNG seed. Running the whole
// mix through ONE core is the point: residue from any earlier call
// that leaked into a later schedule would diverge here.
func TestCoreMatchesPackageFunctions(t *testing.T) {
	for _, net := range []topo.Topology{
		hypercube.MustNew(4),
		mesh.MustNew(4, 4, false),
		mesh.MustNew(4, 4, true),
	} {
		n := net.Nodes()
		core := NewCore(net)
		for i, m := range coreTestMatrices(t, n) {
			seed := int64(100 + i)
			s1, e1 := RSN(m, rand.New(rand.NewSource(seed)))
			s2, e2 := core.RSN(m, rand.New(rand.NewSource(seed)))
			sameSchedule(t, "RSN", s1, s2, e1, e2)

			s1, e1 = RSNOrdered(m, rand.New(rand.NewSource(seed)))
			s2, e2 = core.RSNOrdered(m, rand.New(rand.NewSource(seed)))
			sameSchedule(t, "RSNOrdered", s1, s2, e1, e2)

			s1, e1 = RSNL(m, net, rand.New(rand.NewSource(seed)))
			s2, e2 = core.RSNL(m, rand.New(rand.NewSource(seed)))
			sameSchedule(t, "RSNL", s1, s2, e1, e2)

			s1, e1 = RSNLNoPairwise(m, net, rand.New(rand.NewSource(seed)))
			s2, e2 = core.RSNLNoPairwise(m, rand.New(rand.NewSource(seed)))
			sameSchedule(t, "RSNLNoPairwise", s1, s2, e1, e2)

			s1, e1 = RSNLSized(m, net, rand.New(rand.NewSource(seed)))
			s2, e2 = core.RSNLSized(m, rand.New(rand.NewSource(seed)))
			sameSchedule(t, "RSNLSized", s1, s2, e1, e2)

			s1, e1 = LP(m)
			s2, e2 = core.LP(m)
			sameSchedule(t, "LP", s1, s2, e1, e2)

			s1, e1 = Greedy(m)
			s2, e2 = core.Greedy(m)
			sameSchedule(t, "Greedy", s1, s2, e1, e2)

			s1, e1 = GreedyLargestFirst(m)
			s2, e2 = core.GreedyLargestFirst(m)
			sameSchedule(t, "GreedyLargestFirst", s1, s2, e1, e2)

			s1, e1 = GreedyLargestFirstLinkFree(m, net)
			s2, e2 = core.GreedyLargestFirstLinkFree(m)
			sameSchedule(t, "GreedyLargestFirstLinkFree", s1, s2, e1, e2)

			o1, e1 := AC(m)
			o2, e2 := core.AC(m)
			if (e1 == nil) != (e2 == nil) || !reflect.DeepEqual(o1, o2) {
				t.Fatalf("AC: core diverged: %v/%v vs %v/%v", o1, e1, o2, e2)
			}
			o1, e1 = ACShuffled(m, rand.New(rand.NewSource(seed)))
			o2, e2 = core.ACShuffled(m, rand.New(rand.NewSource(seed)))
			if (e1 == nil) != (e2 == nil) || !reflect.DeepEqual(o1, o2) {
				t.Fatalf("ACShuffled: core diverged: %v/%v vs %v/%v", o1, e1, o2, e2)
			}
		}
	}
}

// TestCoreValidSchedules checks the structural invariants of schedules
// produced by a reused core: coverage, node-contention freedom, and —
// for the link-aware algorithms — link-contention freedom, via both
// the allocating validator and the core's reusing one.
func TestCoreValidSchedules(t *testing.T) {
	cube := hypercube.MustNew(5)
	core := NewCore(cube)
	for i, m := range coreTestMatrices(t, cube.Nodes()) {
		rng := rand.New(rand.NewSource(int64(i)))
		s, err := core.RSNL(m, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(m); err != nil {
			t.Errorf("matrix %d: RSNL invalid: %v", i, err)
		}
		if err := s.ValidateLinkFree(cube); err != nil {
			t.Errorf("matrix %d: RSNL not link-free: %v", i, err)
		}
		if err := core.ValidateLinkFree(s); err != nil {
			t.Errorf("matrix %d: core validator disagrees: %v", i, err)
		}
		lf, err := core.GreedyLargestFirstLinkFree(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := lf.Validate(m); err != nil {
			t.Errorf("matrix %d: GreedyLFLink invalid: %v", i, err)
		}
		if err := core.ValidateLinkFree(lf); err != nil {
			t.Errorf("matrix %d: GreedyLFLink not link-free: %v", i, err)
		}
	}
}

// TestCoreTopologyFree checks the error paths: a core without a
// topology refuses the link-aware algorithms but runs the rest, and a
// core rejects matrices sized for a different machine.
func TestCoreTopologyFree(t *testing.T) {
	core := NewCoreDirect(nil)
	m, err := comm.DRegular(16, 4, 1024, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RSN(m, rand.New(rand.NewSource(1))); err != nil {
		t.Errorf("topology-free RSN: %v", err)
	}
	if _, err := core.RSNL(m, rand.New(rand.NewSource(1))); err == nil {
		t.Error("topology-free RSNL did not error")
	}
	if _, err := core.GreedyLargestFirstLinkFree(m); err == nil {
		t.Error("topology-free GreedyLargestFirstLinkFree did not error")
	}
	mismatch := NewCore(hypercube.MustNew(3)) // 8 nodes, matrix has 16
	if _, err := mismatch.RSNL(m, rand.New(rand.NewSource(1))); err == nil {
		t.Error("node-count mismatch did not error")
	}
}

// TestCoreReset exercises the exported Reset between schedules; it
// must be a no-op for correctness (methods reset internally) and must
// not corrupt later schedules.
func TestCoreReset(t *testing.T) {
	cube := hypercube.MustNew(4)
	core := NewCore(cube)
	m, err := comm.DRegular(16, 6, 4096, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.RSNL(m, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	core.Reset()
	got, err := core.RSNL(m, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("schedule after explicit Reset diverged")
	}
}

// TestCoreResetAfterTopologyFreeUse regression-tests Reset on a core
// whose scratch vectors have diverging lengths (RSN sizes only trecv).
func TestCoreResetAfterTopologyFreeUse(t *testing.T) {
	core := NewCoreDirect(nil)
	m, err := comm.DRegular(16, 4, 1024, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RSN(m, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	core.Reset() // must not panic on mismatched scratch lengths
}
