// Package sched implements the paper's primary contribution: the
// decomposition of an all-to-many personalized communication matrix
// into a sequence of partial permutations (communication phases) that
// avoid node contention (RS_N), node and link contention (RS_NL), or
// both by construction (LP), plus the asynchronous baseline (AC).
//
// The algorithms follow Figures 1-4 of Wang & Ranka, "Scheduling of
// Unstructured Communication on the Intel iPSC/860", SC 1994. All of
// them are deterministic given the caller's *rand.Rand, so every
// experiment in the repository is reproducible from a seed.
package sched

import (
	"fmt"

	"unsched/internal/comm"
	"unsched/internal/topo"
)

// Phase is one partial permutation pm_k: Send[i] = j means Pi sends to
// Pj in this phase, Send[i] = -1 means Pi is silent (the paper's
// pm_k^i = -1). Bytes[i] carries the message size for Send[i].
type Phase struct {
	Send  []int
	Bytes []int64
}

// NewPhase returns an empty phase for n processors.
func NewPhase(n int) Phase {
	p := Phase{Send: make([]int, n), Bytes: make([]int64, n)}
	for i := range p.Send {
		p.Send[i] = -1
	}
	return p
}

// Messages returns the number of messages scheduled in the phase.
func (p Phase) Messages() int {
	count := 0
	for _, j := range p.Send {
		if j >= 0 {
			count++
		}
	}
	return count
}

// Recv derives the receive side of the permutation: Recv[j] = i iff
// Send[i] = j, else -1. It allocates; intended for executors and
// validators, not inner loops.
func (p Phase) Recv() []int {
	recv := make([]int, len(p.Send))
	for i := range recv {
		recv[i] = -1
	}
	for i, j := range p.Send {
		if j >= 0 {
			recv[j] = i
		}
	}
	return recv
}

// PairwiseCount returns the number of bidirectional exchanges in the
// phase: unordered pairs {i, j} with Send[i] = j and Send[j] = i.
// These are the transfers that proceed concurrently on the iPSC/860
// after pairwise synchronization.
func (p Phase) PairwiseCount() int {
	count := 0
	for i, j := range p.Send {
		if j > i && p.Send[j] == i {
			count++
		}
	}
	return count
}

// MaxBytes returns the largest message in the phase (the M in the
// paper's per-permutation cost tau + M*phi).
func (p Phase) MaxBytes() int64 {
	var mx int64
	for _, b := range p.Bytes {
		if b > mx {
			mx = b
		}
	}
	return mx
}

// Schedule is an ordered list of phases produced by one of the
// scheduling algorithms, plus the bookkeeping the experiments report:
// the algorithm name, the number of phases ("# iters" in Table 1), and
// the instrumented operation count that models scheduling cost ("comp"
// in Table 1).
type Schedule struct {
	Algorithm string
	N         int
	Phases    []Phase
	Ops       int64 // abstract scheduler operations, see costmodel.CompTime
}

// NumPhases returns the number of communication phases.
func (s *Schedule) NumPhases() int { return len(s.Phases) }

// TotalMessages returns the number of scheduled point-to-point sends.
func (s *Schedule) TotalMessages() int {
	total := 0
	for _, p := range s.Phases {
		total += p.Messages()
	}
	return total
}

// PairwiseFraction returns the fraction of scheduled messages that are
// halves of a bidirectional pairwise exchange.
func (s *Schedule) PairwiseFraction() float64 {
	total := s.TotalMessages()
	if total == 0 {
		return 0
	}
	pairs := 0
	for _, p := range s.Phases {
		pairs += p.PairwiseCount()
	}
	return float64(2*pairs) / float64(total)
}

// Validate checks the structural invariants every phase-based schedule
// must satisfy against its source matrix:
//
//  1. coverage — every nonzero COM(i,j) is scheduled in exactly one
//     phase, with the right size, and nothing else is scheduled;
//  2. node-contention freedom — within a phase each processor sends at
//     most one message and receives at most one message (the partial
//     permutation property, §2).
//
// Link contention is machine-specific; check it separately with
// ValidateLinkFree.
func (s *Schedule) Validate(m *comm.Matrix) error {
	if s.N != m.N() {
		return fmt.Errorf("sched: schedule for %d processors, matrix has %d", s.N, m.N())
	}
	seen := comm.MustNew(m.N())
	for k, p := range s.Phases {
		if len(p.Send) != s.N || len(p.Bytes) != s.N {
			return fmt.Errorf("sched: phase %d has wrong width", k)
		}
		recvBusy := make([]bool, s.N)
		for i, j := range p.Send {
			if j == -1 {
				if p.Bytes[i] != 0 {
					return fmt.Errorf("sched: phase %d: silent P%d has bytes %d", k, i, p.Bytes[i])
				}
				continue
			}
			if j < 0 || j >= s.N {
				return fmt.Errorf("sched: phase %d: P%d sends to invalid node %d", k, i, j)
			}
			if j == i {
				return fmt.Errorf("sched: phase %d: P%d sends to itself", k, i)
			}
			if recvBusy[j] {
				return fmt.Errorf("sched: phase %d: node contention at receiver P%d", k, j)
			}
			recvBusy[j] = true
			if seen.At(i, j) > 0 {
				return fmt.Errorf("sched: message P%d->P%d scheduled twice (again in phase %d)", i, j, k)
			}
			if want := m.At(i, j); want == 0 {
				return fmt.Errorf("sched: phase %d schedules P%d->P%d not present in COM", k, i, j)
			} else if p.Bytes[i] != want {
				return fmt.Errorf("sched: phase %d: P%d->P%d has %d bytes, COM says %d", k, i, j, p.Bytes[i], want)
			}
			seen.Set(i, j, p.Bytes[i])
		}
	}
	if !seen.Equal(m) {
		return fmt.Errorf("sched: schedule does not cover COM (%d of %d messages scheduled)",
			seen.MessageCount(), m.MessageCount())
	}
	return nil
}

// ValidateLinkFree checks that within every phase the e-cube circuits
// of distinct transfers are disjoint at directed-channel granularity —
// the paper's link-contention freedom (§2). LP satisfies it by the
// XOR-permutation theorem; RS_NL by explicit path checking; RS_N in
// general does not.
func (s *Schedule) ValidateLinkFree(net topo.Topology) error {
	if net.Nodes() != s.N {
		return fmt.Errorf("sched: topology %s has %d nodes, schedule %d", net.Name(), net.Nodes(), s.N)
	}
	return s.validateLinkFree(topo.NewOccupancy(net))
}

// validateLinkFree is the occupancy-agnostic body of ValidateLinkFree;
// Core.ValidateLinkFree feeds it a reused table-backed occupancy.
func (s *Schedule) validateLinkFree(occ *topo.Occupancy) error {
	for k, p := range s.Phases {
		occ.Reset()
		for i, j := range p.Send {
			if j < 0 {
				continue
			}
			if !occ.CheckPath(i, j) {
				return fmt.Errorf("sched: phase %d: link contention on route P%d->P%d", k, i, j)
			}
			occ.MarkPath(i, j)
		}
	}
	return nil
}

// LowerBoundPhases returns the paper's lower bound on the number of
// phases: the density of the matrix (assumption 3, §2.1).
func LowerBoundPhases(m *comm.Matrix) int { return m.Density() }

// String summarizes the schedule.
func (s *Schedule) String() string {
	return fmt.Sprintf("%s schedule: n=%d phases=%d messages=%d pairwise=%.0f%% ops=%d",
		s.Algorithm, s.N, s.NumPhases(), s.TotalMessages(), 100*s.PairwiseFraction(), s.Ops)
}
