package sched

import (
	"math/rand"

	"unsched/internal/comm"
)

// ACOrder is the "schedule" of the asynchronous communication
// algorithm (paper §3, Figure 1): there are no phases and no
// contention avoidance — each processor simply posts its receives and
// fires all its sends. The only degree of freedom is the order in
// which each processor walks its send vector; Order[i] lists Pi's
// destinations in firing order.
type ACOrder struct {
	N     int
	Order [][]int
}

// AC returns the asynchronous send order with each processor firing in
// ascending destination order — the naive loop a straightforward
// implementation would produce. Scheduling cost is zero, which is the
// whole point of the algorithm.
func AC(m *comm.Matrix) (*ACOrder, error) {
	return NewCoreDirect(nil).AC(m)
}

// ACShuffled returns the asynchronous order with each processor's send
// list independently shuffled. Randomizing the firing order spreads
// simultaneous demands on receivers, which is the cheap trick
// asynchronous implementations use to take the edge off node
// contention; the ablation benchmark compares it with the ascending
// order.
func ACShuffled(m *comm.Matrix, rng *rand.Rand) (*ACOrder, error) {
	return NewCoreDirect(nil).ACShuffled(m, rng)
}

// TotalMessages returns the number of sends across all processors.
func (o *ACOrder) TotalMessages() int {
	total := 0
	for _, row := range o.Order {
		total += len(row)
	}
	return total
}
