package sched

import (
	"math/rand"

	"unsched/internal/comm"
)

// RSN implements the paper's §4.2 randomized scheduling that avoids
// node contention (Figure 3, "Random_Scheduling_Node").
//
// The communication matrix is first compressed into the n x d CCOM
// with randomly shuffled rows. Then, repeatedly, one partial
// permutation is formed: starting from a random row x and wrapping
// around all n rows, each row contributes its first entry whose
// destination has not yet been claimed in this phase (Trecv = -1).
// Chosen entries are removed from CCOM by the swap-with-last trick so
// that the scan per phase stays O(dn). The loop ends when every
// message has been scheduled.
//
// Expected behaviour for random workloads (paper, citing [15]): the
// number of phases is bounded by d + log d, and each phase costs
// O(n ln d + n) scheduling operations.
//
// This and the other package-level algorithm functions are thin
// wrappers that allocate a throwaway Core per call; batch callers
// (campaign workers, the unschedd service) hold a reusable Core and
// invoke its methods directly to amortize the scratch state.
func RSN(m *comm.Matrix, rng *rand.Rand) (*Schedule, error) {
	return NewCoreDirect(nil).RSN(m, rng)
}

// RSNOrdered is RSN without the randomizing row shuffle during
// compression. The paper warns that the unshuffled, ascending-order
// rows cause node contention among small processor IDs in the first
// phases, inflating the phase count; this variant exists so the
// ablation benchmark can measure exactly that effect.
func RSNOrdered(m *comm.Matrix, rng *rand.Rand) (*Schedule, error) {
	return NewCoreDirect(nil).RSNOrdered(m, rng)
}

// RSNUncompressed is RS_N scanning the full n x n COM matrix directly
// instead of the compressed CCOM — the O(n^2)-per-permutation worst
// case the compression of §4.2 exists to avoid. Schedules are
// equivalent in quality; only the scheduling cost differs. It exists
// for the compression ablation benchmark (and is deliberately not a
// Core method: its whole point is the unoptimized scan).
func RSNUncompressed(m *comm.Matrix, rng *rand.Rand) (*Schedule, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := m.N()
	rem := m.Clone()
	remaining := m.MessageCount()
	s := &Schedule{Algorithm: "RS_N_UNC", N: n}
	trecv := make([]int, n)
	var ops int64
	for remaining > 0 {
		p := NewPhase(n)
		for i := range trecv {
			trecv[i] = -1
		}
		ops += int64(n)
		x := rng.Intn(n)
		for k := 0; k < n; k++ {
			ops++
			// Full row scan: every column is examined, active or not.
			for j := 0; j < n; j++ {
				ops++
				if b := rem.At(x, j); b > 0 && trecv[j] == -1 {
					p.Send[x] = j
					p.Bytes[x] = b
					trecv[j] = x
					rem.Set(x, j, 0)
					remaining--
					break
				}
			}
			x = (x + 1) % n
		}
		s.Phases = append(s.Phases, p)
	}
	s.Ops = ops
	return s, nil
}
