package sched

import (
	"fmt"
	"math/rand"

	"unsched/internal/comm"
	"unsched/internal/topo"
)

// RSNL implements the paper's §5 randomized scheduling that avoids
// both node and link contention (Figure 4, "RS_Node_Link"), including
// the pairwise-exchange priority of step 3(c)i: entries that can
// complete a bidirectional exchange are preferred, because the
// iPSC/860 transfers both directions of a pairwise-synchronized
// exchange concurrently.
//
// Link contention is checked against the machine's deterministic
// e-cube routes with Check_Path/Mark_Path over a per-phase channel
// occupancy table (the paper's PATHS array, stored densely).
//
// The pairwise priority is implemented the way the paper's comp costs
// imply (§5 refers to [15] for "locating pairwise exchanges"): pairs
// are located once, up front, by partitioning each CCOM row so that
// destinations with a reverse message come first; the per-phase scan
// then stays first-feasible like RS_N instead of searching every row
// exhaustively, and the extra scheduling cost over RS_N is the path
// checking, a small constant factor.
func RSNL(m *comm.Matrix, net topo.Topology, rng *rand.Rand) (*Schedule, error) {
	return rsnl(m, net, rng, true)
}

// RSNLNoPairwise disables the pairwise-exchange priority, scheduling
// with link checking only. It exists for the ablation benchmark that
// quantifies how much of RS_NL's win comes from concurrent
// bidirectional exchange versus contention avoidance alone.
func RSNLNoPairwise(m *comm.Matrix, net topo.Topology, rng *rand.Rand) (*Schedule, error) {
	return rsnl(m, net, rng, false)
}

// RSNLSized is the non-uniform-size variant of RS_NL (the direction
// the paper defers to [15]): messages are drained largest-first, so
// each phase groups messages of similar size and the sum of per-phase
// maxima — the paper's tau + M*phi cost proxy — shrinks. Two changes
// against RSNL: every CCOM row is sorted by descending size (after
// which the pairwise partition is NOT applied — size priority replaces
// it), and the per-phase starting row rotates over the rows with the
// largest remaining message. For uniform inputs it degenerates to
// RS_NL without pairwise priority.
func RSNLSized(m *comm.Matrix, net topo.Topology, rng *rand.Rand) (*Schedule, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := m.N()
	if net.Nodes() != n {
		return nil, fmt.Errorf("sched: RS_NL_SZ topology %s has %d nodes, matrix %d", net.Name(), net.Nodes(), n)
	}
	ccom := comm.NewCompressed(m, rng)
	var ops int64
	ops += int64(n)
	// Sort each row by descending size: repeatedly partition on a
	// shrinking threshold. Simpler: selection via PartitionRows is
	// awkward — do an explicit per-row ordering by draining and
	// reloading through a sort on (size, dest).
	sortRowsBySize(ccom, m)
	ops += int64(m.MessageCount())

	occ := topo.NewOccupancy(net)
	s := &Schedule{Algorithm: "RS_NL_SZ", N: n}
	trecv := make([]int, n)
	for !ccom.Empty() {
		p := NewPhase(n)
		for i := range trecv {
			trecv[i] = -1
		}
		occ.Reset()
		ops += int64(n)
		// Start from the row with the largest remaining message so the
		// phase's maximum is set by a message that must travel anyway.
		x := 0
		var best int64 = -1
		for i := 0; i < n; i++ {
			ops++
			if ccom.Remaining(i) > 0 && ccom.SizeAt(i, 0) > best {
				best = ccom.SizeAt(i, 0)
				x = i
			}
		}
		for k := 0; k < n; k++ {
			ops++
			// Rows are size-sorted, so the first feasible entry is the
			// largest schedulable message of the row.
			for z := 0; z < ccom.Remaining(x); z++ {
				ops++
				y := ccom.At(x, z)
				if trecv[y] != -1 {
					continue
				}
				ops += int64(net.Hops(x, y))
				if !occ.CheckPath(x, y) {
					continue
				}
				_, bytes := ccom.Remove(x, z)
				p.Send[x], p.Bytes[x] = y, bytes
				trecv[y] = x
				occ.MarkPath(x, y)
				break
			}
			x = (x + 1) % n
		}
		s.Phases = append(s.Phases, p)
	}
	s.Ops = ops
	return s, nil
}

// sortRowsBySize reorders every CCOM row into descending message-size
// order (stable on the shuffled order for equal sizes). CCOM exposes
// only partition and remove, so sort by repeated partitioning on size
// thresholds — each distinct size is one pass.
func sortRowsBySize(ccom *comm.Compressed, m *comm.Matrix) {
	// Collect the distinct sizes ascending; partitioning from the
	// smallest threshold upward leaves rows in descending order
	// (later partitions move larger entries in front, stably).
	seen := map[int64]bool{}
	var sizes []int64
	for _, msg := range m.Messages() {
		if !seen[msg.Bytes] {
			seen[msg.Bytes] = true
			sizes = append(sizes, msg.Bytes)
		}
	}
	for i := 1; i < len(sizes); i++ {
		for j := i; j > 0 && sizes[j] < sizes[j-1]; j-- {
			sizes[j], sizes[j-1] = sizes[j-1], sizes[j]
		}
	}
	for _, threshold := range sizes {
		th := threshold
		ccom.PartitionRows(func(src, dst int) bool { return m.At(src, dst) >= th })
	}
}

func rsnl(m *comm.Matrix, net topo.Topology, rng *rand.Rand, pairwise bool) (*Schedule, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := m.N()
	if net.Nodes() != n {
		return nil, fmt.Errorf("sched: RS_NL topology %s has %d nodes, matrix %d", net.Name(), net.Nodes(), n)
	}
	ccom := comm.NewCompressed(m, rng)
	var ops int64
	ops += int64(n) // per-processor compression of one row, as in RSN

	if pairwise {
		// Locate pairwise-exchange candidates once: stable-partition
		// every row so destinations with a reverse message lead. The
		// per-phase scan then meets exchange opportunities first.
		ccom.PartitionRows(func(src, dst int) bool { return m.At(dst, src) > 0 })
		ops += int64(m.MessageCount())
	}

	// rem mirrors the unscheduled message set so the scan can ask
	// "does y still need to send to x" in O(1).
	rem := make([]bool, n*n)
	for _, msg := range m.Messages() {
		rem[msg.Src*n+msg.Dst] = true
	}

	occ := topo.NewOccupancy(net)
	s := &Schedule{Algorithm: "RS_NL", N: n}
	tsend := make([]int, n)
	trecv := make([]int, n)

	// removeFrom drops the entry with destination dst from row src of
	// CCOM (linear scan over at most d live entries).
	removeFrom := func(src, dst int) int64 {
		for z := 0; z < ccom.Remaining(src); z++ {
			ops++
			if ccom.At(src, z) == dst {
				_, bytes := ccom.Remove(src, z)
				return bytes
			}
		}
		panic(fmt.Sprintf("sched: CCOM row %d lost entry for %d", src, dst))
	}

	for !ccom.Empty() {
		p := NewPhase(n)
		for i := range trecv {
			trecv[i] = -1
			tsend[i] = -1
		}
		occ.Reset()
		ops += int64(n)
		x := rng.Intn(n)
		for k := 0; k < n; k++ {
			ops++
			if tsend[x] != -1 {
				// x was already claimed as the reverse half of an
				// earlier pairwise assignment this phase.
				x = (x + 1) % n
				continue
			}
			// First feasible entry: destination free this phase and
			// circuit unclaimed.
			for z := 0; z < ccom.Remaining(x); z++ {
				ops++
				y := ccom.At(x, z)
				if trecv[y] != -1 {
					continue
				}
				ops += int64(net.Hops(x, y))
				if !occ.CheckPath(x, y) {
					continue
				}
				// Feasible. Upgrade to a pairwise exchange if the
				// reverse message is still pending and both the
				// reverse circuit and both endpoints allow it.
				if pairwise && rem[y*n+x] && tsend[y] == -1 && trecv[x] == -1 {
					ops += int64(net.Hops(y, x))
					if occ.CheckPath(y, x) {
						_, bytes := ccom.Remove(x, z)
						backBytes := removeFrom(y, x)
						p.Send[x], p.Bytes[x] = y, bytes
						p.Send[y], p.Bytes[y] = x, backBytes
						tsend[x], trecv[y] = y, x
						tsend[y], trecv[x] = x, y
						rem[x*n+y] = false
						rem[y*n+x] = false
						occ.MarkPath(x, y)
						occ.MarkPath(y, x)
						break
					}
				}
				_, bytes := ccom.Remove(x, z)
				p.Send[x], p.Bytes[x] = y, bytes
				tsend[x], trecv[y] = y, x
				rem[x*n+y] = false
				occ.MarkPath(x, y)
				break
			}
			x = (x + 1) % n
		}
		s.Phases = append(s.Phases, p)
	}
	s.Ops = ops
	return s, nil
}
