package sched

import (
	"math/rand"

	"unsched/internal/comm"
	"unsched/internal/topo"
)

// RSNL implements the paper's §5 randomized scheduling that avoids
// both node and link contention (Figure 4, "RS_Node_Link"), including
// the pairwise-exchange priority of step 3(c)i: entries that can
// complete a bidirectional exchange are preferred, because the
// iPSC/860 transfers both directions of a pairwise-synchronized
// exchange concurrently.
//
// Link contention is checked against the machine's deterministic
// e-cube routes with Check_Path/Mark_Path over a per-phase channel
// occupancy table (the paper's PATHS array, stored densely). A
// reusable Core checks routes against a precomputed topo.RouteTable
// instead of regenerating them per call; this wrapper allocates a
// throwaway table-free Core, so its per-call cost is unchanged.
//
// The pairwise priority is implemented the way the paper's comp costs
// imply (§5 refers to [15] for "locating pairwise exchanges"): pairs
// are located once, up front, by partitioning each CCOM row so that
// destinations with a reverse message come first; the per-phase scan
// then stays first-feasible like RS_N instead of searching every row
// exhaustively, and the extra scheduling cost over RS_N is the path
// checking, a small constant factor.
func RSNL(m *comm.Matrix, net topo.Topology, rng *rand.Rand) (*Schedule, error) {
	return NewCoreDirect(net).RSNL(m, rng)
}

// RSNLNoPairwise disables the pairwise-exchange priority, scheduling
// with link checking only. It exists for the ablation benchmark that
// quantifies how much of RS_NL's win comes from concurrent
// bidirectional exchange versus contention avoidance alone.
func RSNLNoPairwise(m *comm.Matrix, net topo.Topology, rng *rand.Rand) (*Schedule, error) {
	return NewCoreDirect(net).RSNLNoPairwise(m, rng)
}

// RSNLSized is the non-uniform-size variant of RS_NL (the direction
// the paper defers to [15]): messages are drained largest-first, so
// each phase groups messages of similar size and the sum of per-phase
// maxima — the paper's tau + M*phi cost proxy — shrinks. Two changes
// against RSNL: every CCOM row is sorted by descending size (after
// which the pairwise partition is NOT applied — size priority replaces
// it), and the per-phase starting row rotates over the rows with the
// largest remaining message. For uniform inputs it degenerates to
// RS_NL without pairwise priority.
func RSNLSized(m *comm.Matrix, net topo.Topology, rng *rand.Rand) (*Schedule, error) {
	return NewCoreDirect(net).RSNLSized(m, rng)
}

// sortRowsBySize reorders every CCOM row into descending message-size
// order; see Core.sortRowsBySize. Kept as a standalone helper for
// callers (and tests) that hold a CCOM without a Core.
func sortRowsBySize(ccom *comm.Compressed, m *comm.Matrix) {
	(&Core{}).sortRowsBySize(ccom, m)
}
