package sched

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"unsched/internal/comm"
	"unsched/internal/hypercube"
)

func cube64() *hypercube.Cube { return hypercube.MustNew(6) }

func randomMatrix(t *testing.T, n, d int, bytes int64, seed int64) *comm.Matrix {
	t.Helper()
	m, err := comm.UniformRandom(n, d, bytes, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// --- Phase ---

func TestNewPhaseEmpty(t *testing.T) {
	p := NewPhase(8)
	if p.Messages() != 0 {
		t.Errorf("fresh phase has %d messages", p.Messages())
	}
	for _, j := range p.Send {
		if j != -1 {
			t.Fatal("fresh phase not all -1")
		}
	}
}

func TestPhaseRecvDerivation(t *testing.T) {
	p := NewPhase(4)
	p.Send[0] = 2
	p.Send[3] = 1
	recv := p.Recv()
	want := []int{-1, 3, 0, -1}
	for i := range want {
		if recv[i] != want[i] {
			t.Fatalf("Recv = %v, want %v", recv, want)
		}
	}
}

func TestPhasePairwiseCount(t *testing.T) {
	p := NewPhase(4)
	p.Send[0] = 1
	p.Send[1] = 0 // pair {0,1}
	p.Send[2] = 3 // one-way
	if got := p.PairwiseCount(); got != 1 {
		t.Errorf("PairwiseCount = %d, want 1", got)
	}
}

func TestPhaseMaxBytes(t *testing.T) {
	p := NewPhase(4)
	p.Send[0] = 1
	p.Bytes[0] = 100
	p.Send[2] = 3
	p.Bytes[2] = 400
	if got := p.MaxBytes(); got != 400 {
		t.Errorf("MaxBytes = %d", got)
	}
}

// --- Validate ---

func TestValidateAcceptsGoodSchedule(t *testing.T) {
	m := comm.MustNew(4)
	m.Set(0, 1, 10)
	m.Set(2, 3, 20)
	s := &Schedule{Algorithm: "X", N: 4}
	p := NewPhase(4)
	p.Send[0], p.Bytes[0] = 1, 10
	p.Send[2], p.Bytes[2] = 3, 20
	s.Phases = append(s.Phases, p)
	if err := s.Validate(m); err != nil {
		t.Errorf("good schedule rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	m := comm.MustNew(4)
	m.Set(0, 1, 10)
	m.Set(2, 1, 20)

	build := func(mutate func(*Schedule)) *Schedule {
		s := &Schedule{Algorithm: "X", N: 4}
		p1 := NewPhase(4)
		p1.Send[0], p1.Bytes[0] = 1, 10
		p2 := NewPhase(4)
		p2.Send[2], p2.Bytes[2] = 1, 20
		s.Phases = []Phase{p1, p2}
		if mutate != nil {
			mutate(s)
		}
		return s
	}

	if err := build(nil).Validate(m); err != nil {
		t.Fatalf("baseline schedule should validate: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Schedule)
		substr string
	}{
		{"node contention", func(s *Schedule) {
			// both messages to P1 in the same phase
			s.Phases[0].Send[2], s.Phases[0].Bytes[2] = 1, 20
			s.Phases[1] = NewPhase(4)
		}, "contention"},
		{"duplicate", func(s *Schedule) {
			s.Phases[1] = NewPhase(4)
			s.Phases[1].Send[0], s.Phases[1].Bytes[0] = 1, 10
		}, "twice"},
		{"not in COM", func(s *Schedule) {
			s.Phases[0].Send[3], s.Phases[0].Bytes[3] = 2, 5
		}, "not present"},
		{"wrong size", func(s *Schedule) {
			s.Phases[0].Bytes[0] = 99
		}, "bytes"},
		{"self send", func(s *Schedule) {
			s.Phases[0].Send[3], s.Phases[0].Bytes[3] = 3, 1
		}, "itself"},
		{"invalid node", func(s *Schedule) {
			s.Phases[0].Send[3], s.Phases[0].Bytes[3] = 7, 1
		}, "invalid"},
		{"silent with bytes", func(s *Schedule) {
			s.Phases[0].Bytes[3] = 5
		}, "silent"},
		{"missing coverage", func(s *Schedule) {
			s.Phases[1] = NewPhase(4)
		}, "cover"},
	}
	for _, tc := range cases {
		err := build(tc.mutate).Validate(m)
		if err == nil {
			t.Errorf("%s: not rejected", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.substr)
		}
	}
}

func TestValidateSizeMismatch(t *testing.T) {
	m := comm.MustNew(4)
	s := &Schedule{Algorithm: "X", N: 8}
	if err := s.Validate(m); err == nil {
		t.Error("size mismatch not rejected")
	}
}

func TestValidateLinkFreeDetectsContention(t *testing.T) {
	cube := hypercube.MustNew(3)
	m := comm.MustNew(8)
	m.Set(0, 3, 10) // route 0->1->3
	m.Set(4, 1, 10) // route 4->5->1? e-cube: 4(100)->1(001): flip bit0: 5, flip bit2: 1. Links 4-5, 5-1.
	s := &Schedule{Algorithm: "X", N: 8}
	p := NewPhase(8)
	p.Send[0], p.Bytes[0] = 3, 10
	p.Send[4], p.Bytes[4] = 1, 10
	s.Phases = []Phase{p}
	if err := s.Validate(m); err != nil {
		t.Fatalf("node-level validation should pass: %v", err)
	}
	// No shared channel here; now force one: 0->3 and 1->2? 1->0->2
	// doesn't share with 0->1->3 (channels directed). Use 0->3 and a
	// second 0-sourced... can't (node contention). Use 2->1 vs 0->3:
	// 2(010)->1(001): flip bit0: 3, flip bit1: 1 → links 2-3, 3-1 — the
	// channel 3->1 vs 1->3 differ. Build a genuine conflict: 0->6 via
	// 0->2->6 and 4->2 via 4->5? no. 1->6: 1->0->2->6 shares 2->6? with
	// 0->6: 0->2->6 shares channel 2->6. Yes.
	m2 := comm.MustNew(8)
	m2.Set(0, 6, 10)
	m2.Set(1, 6, 10)
	// Node contention at receiver 6 — must use different receivers.
	// 1->14 impossible on 8 nodes. Instead: 0->6 (0->2->6) and 3->2
	// (3->2 direct, channel 3->2) — no. Try 1->2 (1->0->2) and 5->0
	// (5->4->0): no shared channel. Simplest true link conflict with
	// distinct endpoints: 0->3 (0->1,1->3) and 2->1? 2->3->1: channel
	// 3->1 vs 1->3 — opposite. 4->3: 4->5->7->3: channels 4->5,5->7,
	// 7->3. 6->5: 6->7->5: 7->5 vs 5->7 opposite...
	// e-cube fixes LSB first, so "up" channels in low dims come from
	// low sources: 0->5 (0->1, 1->5) and 1->4? 1(001)->4(100): flip
	// bit0 -> 0, flip bit2 -> 4: 1->0, 0->4. 0->5 uses 0->1 (up dim0),
	// 1->5 (up dim2). 1->4 uses 1->0 (down), 0->4 (up dim2). Distinct.
	// Use 0->5 and 1->5: receiver contention. OK: 0->5 and 1->7:
	// 1->7: flips bit1: 1->3, bit2: 3->7: links 1->3, 3->7. Distinct...
	// 0->7: 0->1,1->3,3->7 and 1->3: shares 1->3!
	m3 := comm.MustNew(8)
	m3.Set(0, 7, 10)
	m3.Set(1, 3, 10)
	s3 := &Schedule{Algorithm: "X", N: 8}
	p3 := NewPhase(8)
	p3.Send[0], p3.Bytes[0] = 7, 10
	p3.Send[1], p3.Bytes[1] = 3, 10
	s3.Phases = []Phase{p3}
	if err := s3.Validate(m3); err != nil {
		t.Fatalf("node-level validation should pass: %v", err)
	}
	if err := s3.ValidateLinkFree(cube); err == nil {
		t.Error("link contention 0->7 vs 1->3 not detected")
	}
	// And the contention-free pair passes.
	if err := s.ValidateLinkFree(cube); err != nil {
		t.Errorf("disjoint routes flagged: %v", err)
	}
}

func TestValidateLinkFreeCubeSizeMismatch(t *testing.T) {
	s := &Schedule{Algorithm: "X", N: 64}
	if err := s.ValidateLinkFree(hypercube.MustNew(3)); err == nil {
		t.Error("cube size mismatch not rejected")
	}
}

// --- LP ---

func TestLPStructure(t *testing.T) {
	m := randomMatrix(t, 64, 8, 256, 1)
	s, err := LP(m)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPhases() != 63 {
		t.Errorf("LP phases = %d, want 63", s.NumPhases())
	}
	if err := s.Validate(m); err != nil {
		t.Errorf("LP invalid: %v", err)
	}
	if err := s.ValidateLinkFree(cube64()); err != nil {
		t.Errorf("LP has link contention: %v", err)
	}
	// Phase k holds exactly the messages with i^j == k+1.
	for k, p := range s.Phases {
		for i, j := range p.Send {
			if j >= 0 && i^j != k+1 {
				t.Fatalf("phase %d holds message %d->%d (xor %d)", k, i, j, i^j)
			}
		}
	}
}

func TestLPSymmetricIsAllPairwise(t *testing.T) {
	// Symmetric pattern: every scheduled message pairs up.
	m := comm.MustNew(64)
	rng := rand.New(rand.NewSource(7))
	for count := 0; count < 100; count++ {
		i, j := rng.Intn(64), rng.Intn(64)
		if i != j {
			m.Set(i, j, 512)
			m.Set(j, i, 512)
		}
	}
	s, err := LP(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.PairwiseFraction(); got != 1.0 {
		t.Errorf("symmetric LP pairwise fraction = %v, want 1", got)
	}
}

func TestLPRejectsNonPowerOfTwo(t *testing.T) {
	m := comm.MustNew(48)
	m.Set(0, 1, 10)
	if _, err := LP(m); err == nil {
		t.Error("LP on 48 nodes should fail")
	}
}

func TestLPRejectsInvalidMatrix(t *testing.T) {
	m := comm.MustNew(8)
	m.Set(3, 3, 10)
	if _, err := LP(m); err == nil {
		t.Error("self-message matrix should fail")
	}
}

// --- RS_N ---

func TestRSNCoversAndAvoidsNodeContention(t *testing.T) {
	for _, d := range []int{1, 4, 8, 16, 32, 48} {
		m := randomMatrix(t, 64, d, 1024, int64(d))
		s, err := RSN(m, rand.New(rand.NewSource(int64(d)+100)))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(m); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if s.NumPhases() < LowerBoundPhases(m) {
			t.Fatalf("d=%d: %d phases below lower bound %d", d, s.NumPhases(), LowerBoundPhases(m))
		}
	}
}

func TestRSNPhaseCountNearPaperBound(t *testing.T) {
	// Paper: expected phases <= d + log d for random workloads. Allow
	// slack for the randomized constant, but catch regressions to O(n).
	rng := rand.New(rand.NewSource(77))
	for _, d := range []int{4, 8, 16, 32} {
		total := 0
		const samples = 10
		for s := 0; s < samples; s++ {
			m, err := comm.DRegular(64, d, 1024, rng)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := RSN(m, rng)
			if err != nil {
				t.Fatal(err)
			}
			total += sc.NumPhases()
		}
		avg := float64(total) / samples
		if avg > float64(d)+8 {
			t.Errorf("d=%d: avg phases %.1f far above d + log d", d, avg)
		}
	}
}

func TestRSNDeterministicGivenSeed(t *testing.T) {
	m := randomMatrix(t, 64, 8, 256, 5)
	a, err := RSN(m, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RSN(m, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumPhases() != b.NumPhases() {
		t.Fatal("same seed produced different phase counts")
	}
	for k := range a.Phases {
		for i := range a.Phases[k].Send {
			if a.Phases[k].Send[i] != b.Phases[k].Send[i] {
				t.Fatal("same seed produced different schedules")
			}
		}
	}
}

func TestRSNOrderedStillValid(t *testing.T) {
	m := randomMatrix(t, 64, 8, 256, 6)
	s, err := RSNOrdered(m, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(m); err != nil {
		t.Errorf("ordered variant invalid: %v", err)
	}
}

func TestRSNEmptyMatrix(t *testing.T) {
	m := comm.MustNew(8)
	s, err := RSN(m, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPhases() != 0 {
		t.Errorf("empty matrix produced %d phases", s.NumPhases())
	}
	if err := s.Validate(m); err != nil {
		t.Error(err)
	}
}

func TestRSNOpsCounted(t *testing.T) {
	m := randomMatrix(t, 64, 8, 256, 8)
	s, err := RSN(m, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	// Per-processor cost: row compression (n) plus several phases of
	// O(n)+ scan work — far more than the compression term alone, far
	// less than a serial O(n^2) scan per phase.
	if s.Ops <= 64 {
		t.Errorf("Ops = %d, should exceed the row compression alone", s.Ops)
	}
	phases := int64(s.NumPhases())
	if s.Ops > 64+phases*64*10 {
		t.Errorf("Ops = %d implausibly large for %d phases", s.Ops, phases)
	}
}

// --- RS_NL ---

func TestRSNLAllInvariants(t *testing.T) {
	cube := cube64()
	for _, d := range []int{1, 4, 8, 16, 32, 48} {
		m := randomMatrix(t, 64, d, 2048, int64(d)*3+1)
		s, err := RSNL(m, cube, rand.New(rand.NewSource(int64(d))))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(m); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if err := s.ValidateLinkFree(cube); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
	}
}

func TestRSNLPairwisePriorityFindsExchanges(t *testing.T) {
	// Fully symmetric pattern: the pairwise pass should pair most
	// messages; without it, pairing is incidental.
	cube := cube64()
	m := comm.MustNew(64)
	rng := rand.New(rand.NewSource(21))
	for count := 0; count < 120; count++ {
		i, j := rng.Intn(64), rng.Intn(64)
		if i != j {
			m.Set(i, j, 512)
			m.Set(j, i, 512)
		}
	}
	with, err := RSNL(m, cube, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	without, err := RSNLNoPairwise(m, cube, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if err := without.Validate(m); err != nil {
		t.Fatal(err)
	}
	if with.PairwiseFraction() < 0.5 {
		t.Errorf("pairwise priority achieved only %.0f%% pairing", 100*with.PairwiseFraction())
	}
	if with.PairwiseFraction() <= without.PairwiseFraction() {
		t.Errorf("priority (%.2f) should beat no-priority (%.2f)",
			with.PairwiseFraction(), without.PairwiseFraction())
	}
}

func TestRSNLMoreOpsThanRSN(t *testing.T) {
	// Path checking makes RS_NL's scheduling several times costlier
	// than RS_N (Table 1 comp rows); the op counts must reflect it.
	m := randomMatrix(t, 64, 16, 1024, 30)
	rsn, err := RSN(m, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	rsnl, err := RSNL(m, cube64(), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if rsnl.Ops <= rsn.Ops {
		t.Errorf("RS_NL ops %d should exceed RS_N ops %d", rsnl.Ops, rsn.Ops)
	}
}

func TestRSNLCubeMismatch(t *testing.T) {
	m := comm.MustNew(64)
	if _, err := RSNL(m, hypercube.MustNew(3), rand.New(rand.NewSource(1))); err == nil {
		t.Error("cube/matrix size mismatch not rejected")
	}
}

// --- AC ---

func TestACOrderContainsAllMessages(t *testing.T) {
	m := randomMatrix(t, 64, 8, 256, 40)
	o, err := AC(m)
	if err != nil {
		t.Fatal(err)
	}
	if o.TotalMessages() != m.MessageCount() {
		t.Errorf("AC order has %d messages, matrix %d", o.TotalMessages(), m.MessageCount())
	}
	for i, row := range o.Order {
		for _, j := range row {
			if m.At(i, j) == 0 {
				t.Fatalf("AC order includes %d->%d not in COM", i, j)
			}
		}
	}
}

func TestACShuffledSameMultiset(t *testing.T) {
	m := randomMatrix(t, 64, 8, 256, 41)
	a, err := AC(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ACShuffled(m, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Order {
		if len(a.Order[i]) != len(b.Order[i]) {
			t.Fatalf("row %d length differs", i)
		}
		seen := map[int]bool{}
		for _, j := range b.Order[i] {
			seen[j] = true
		}
		for _, j := range a.Order[i] {
			if !seen[j] {
				t.Fatalf("row %d lost destination %d", i, j)
			}
		}
	}
}

// --- Greedy / sized ---

func TestGreedyValid(t *testing.T) {
	m := randomMatrix(t, 64, 16, 1024, 50)
	s, err := Greedy(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(m); err != nil {
		t.Error(err)
	}
}

func TestGreedyLargestFirstValidAndBalanced(t *testing.T) {
	// Non-uniform sizes: geometric spread.
	m := comm.MustNew(64)
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 64; i++ {
		for placed := 0; placed < 6; {
			j := rng.Intn(64)
			if j == i || m.At(i, j) > 0 {
				continue
			}
			m.Set(i, j, int64(64<<uint(rng.Intn(8))))
			placed++
		}
	}
	s, err := GreedyLargestFirst(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(m); err != nil {
		t.Fatal(err)
	}
	// Largest-first packs the big messages into the early phases:
	// per-phase maxima are non-increasing.
	prev := s.Phases[0].MaxBytes()
	for _, p := range s.Phases[1:] {
		cur := p.MaxBytes()
		if cur > prev {
			t.Fatalf("phase maxima not non-increasing: %d after %d", cur, prev)
		}
		prev = cur
	}
}

func TestGreedyLargestFirstLinkFree(t *testing.T) {
	cube := cube64()
	m := randomMatrix(t, 64, 12, 4096, 52)
	s, err := GreedyLargestFirstLinkFree(m, cube)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(m); err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateLinkFree(cube); err != nil {
		t.Fatal(err)
	}
}

// --- cross-algorithm properties ---

// Property: every scheduler produces a valid, covering, node-
// contention-free schedule on random inputs.
func TestAllSchedulersValidProperty(t *testing.T) {
	cube := cube64()
	f := func(seed int64, dRaw uint8) bool {
		d := 1 + int(dRaw)%48
		rng := rand.New(rand.NewSource(seed))
		m, err := comm.UniformRandom(64, d, 256, rng)
		if err != nil {
			return false
		}
		schedules := []*Schedule{}
		if s, err := LP(m); err != nil {
			return false
		} else {
			schedules = append(schedules, s)
		}
		if s, err := RSN(m, rng); err != nil {
			return false
		} else {
			schedules = append(schedules, s)
		}
		if s, err := RSNL(m, cube, rng); err != nil {
			return false
		} else {
			schedules = append(schedules, s)
		}
		if s, err := Greedy(m); err != nil {
			return false
		} else {
			schedules = append(schedules, s)
		}
		if s, err := GreedyLargestFirst(m); err != nil {
			return false
		} else {
			schedules = append(schedules, s)
		}
		for _, s := range schedules {
			if s.Validate(m) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: RS_NL schedules are link-contention-free for arbitrary
// random workloads and seeds.
func TestRSNLLinkFreeProperty(t *testing.T) {
	cube := cube64()
	f := func(seed int64, dRaw uint8) bool {
		d := 1 + int(dRaw)%32
		rng := rand.New(rand.NewSource(seed))
		m, err := comm.UniformRandom(64, d, 128, rng)
		if err != nil {
			return false
		}
		s, err := RSNL(m, cube, rng)
		if err != nil {
			return false
		}
		return s.Validate(m) == nil && s.ValidateLinkFree(cube) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestScheduleString(t *testing.T) {
	m := randomMatrix(t, 64, 4, 256, 60)
	s, err := RSN(m, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	str := s.String()
	if !strings.Contains(str, "RS_N") || !strings.Contains(str, "phases") {
		t.Errorf("String() = %q", str)
	}
}
