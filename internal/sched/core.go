package sched

import (
	"cmp"
	"fmt"
	"math/rand"
	"slices"

	"unsched/internal/comm"
	"unsched/internal/topo"
)

// Core is a reusable scheduler instance: it owns every piece of
// scratch state the scheduling algorithms need — the CCOM row storage,
// the per-phase channel-occupancy tables, the Trecv/Tsend busy
// vectors, the pairwise-remaining map, and the partition and sort
// buffers — and re-initializes them in place on every call, so the
// steady-state schedule path allocates (near) zero beyond the returned
// Schedule itself.
//
// The reuse contract mirrors ipsc.Machine: create one Core per
// goroutine (a Core is not safe for concurrent use), drive it through
// its algorithm methods, and it serves an arbitrarily long request
// sequence without reallocating. Every method re-initializes, in
// place, exactly the scratch it uses (CCOM via Load, vectors via the
// scratch sizers, claim tables via per-phase Reset) before reading it
// — callers never call Reset, and a new algorithm method must follow
// the same rule rather than rely on it. Schedules produced by a
// reused Core are bit-identical to ones from the package-level
// functions given the same inputs and RNG stream.
//
// A Core built by NewCore (or NewCoreForTable) checks and marks routes
// against a precomputed topo.RouteTable, so the RS_NL inner loop is an
// index walk over flat storage instead of per-call route generation.
// NewCoreDirect skips the table for one-shot use; the package-level
// wrapper functions use it, which keeps their cost profile unchanged.
type Core struct {
	net topo.Topology    // nil: only topology-free algorithms work
	rt  *topo.RouteTable // nil: generate routes on the fly

	ccom comm.Compressed // reusable CCOM row storage
	occ  *topo.Occupancy // per-schedule claim table (RS_NL family)
	// occPool holds the per-phase claim tables of
	// GreedyLargestFirstLinkFree, recycled across calls: phase k of
	// every schedule reuses occPool[k].
	occPool []*topo.Occupancy

	trecv, tsend       []int
	rem                []bool // n*n unscheduled-message map (RS_NL pairwise)
	msgs               []comm.Message
	sendBusy, recvBusy []bool
	sizes              []int64 // distinct-size scratch (RS_NL_SZ)
	sizeSeen           map[int64]bool

	last lastRun // metadata of the most recent run (see LastOutcome)
}

// NewCore returns a reusable core for net, precomputing net's
// RouteTable — an O(n^2 * diameter) build paid once and amortized over
// every schedule the core produces. For a shared table (one per
// daemon, many cores), build the table once and use NewCoreForTable.
func NewCore(net topo.Topology) *Core {
	return NewCoreForTable(topo.NewRouteTable(net))
}

// NewCoreForTable returns a reusable core over a prebuilt route table.
// The table is read-only and may be shared by any number of cores
// concurrently; the core's mutable scratch is its own.
func NewCoreForTable(rt *topo.RouteTable) *Core {
	return &Core{net: rt.Topology(), rt: rt}
}

// NewCoreDirect returns a core that generates routes on the fly
// instead of precomputing a table — the right choice when a core
// serves only a handful of schedules. net may be nil if only the
// topology-free algorithms (AC, LP, RS_N, GREEDY, GREEDY_LF) are used.
func NewCoreDirect(net topo.Topology) *Core {
	return &Core{net: net}
}

// Topology returns the core's topology (nil for a topology-free core).
func (c *Core) Topology() topo.Topology { return c.net }

// Table returns the core's precomputed route table, or nil when the
// core generates routes on the fly.
func (c *Core) Table() *topo.RouteTable { return c.rt }

// Reset clears the core's scratch state while keeping every backing
// allocation, the analogue of ipsc.Machine.Reset. It exists to make
// the reuse contract explicit and testable; it is never required for
// correctness, because each algorithm method re-initializes the
// scratch it uses before reading it (the CCOM is rebuilt by Load on
// the next call and needs no clearing here).
func (c *Core) Reset() {
	for i := range c.trecv {
		c.trecv[i] = -1
	}
	for i := range c.tsend {
		c.tsend[i] = -1
	}
	clear(c.rem)
	c.msgs = c.msgs[:0]
	c.sendBusy = c.sendBusy[:0]
	c.recvBusy = c.recvBusy[:0]
	c.sizes = c.sizes[:0]
	clear(c.sizeSeen)
	if c.occ != nil {
		c.occ.Reset()
	}
	for _, o := range c.occPool {
		o.Reset()
	}
}

// requireNet checks that the core can schedule link-aware algorithms
// for an n-processor matrix.
func (c *Core) requireNet(alg string, n int) error {
	if c.net == nil {
		return fmt.Errorf("sched: %s needs a topology; build the core with NewCore", alg)
	}
	if c.net.Nodes() != n {
		return fmt.Errorf("sched: %s topology %s has %d nodes, matrix %d", alg, c.net.Name(), c.net.Nodes(), n)
	}
	return nil
}

// hops returns the deterministic route length from src to dst, reading
// the precomputed table when one exists.
func (c *Core) hops(src, dst int) int {
	if c.rt != nil {
		return c.rt.Hops(src, dst)
	}
	return c.net.Hops(src, dst)
}

// occupancy returns the core's per-schedule claim table, building it
// on first use (over the route table when the core has one).
func (c *Core) occupancy() *topo.Occupancy {
	if c.occ == nil {
		c.occ = c.newOccupancy()
	}
	return c.occ
}

func (c *Core) newOccupancy() *topo.Occupancy {
	if c.rt != nil {
		return topo.NewOccupancyTable(c.rt)
	}
	return topo.NewOccupancy(c.net)
}

// phaseOcc returns the claim table for phase k of a link-aware list
// schedule, drawing from the recycled pool and growing it on demand.
// The returned table is Reset and ready to claim.
func (c *Core) phaseOcc(k int) *topo.Occupancy {
	if k < len(c.occPool) {
		o := c.occPool[k]
		o.Reset()
		return o
	}
	o := c.newOccupancy()
	c.occPool = append(c.occPool, o)
	return o
}

// intScratch sizes *buf to n, reusing its backing array when possible.
func intScratch(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func boolScratch(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
		return *buf
	}
	*buf = (*buf)[:n]
	clear(*buf)
	return *buf
}

// --- RS_N -----------------------------------------------------------

// RSN is the reusable-core form of the package-level RSN (§4.2,
// Figure 3).
func (c *Core) RSN(m *comm.Matrix, rng *rand.Rand) (*Schedule, error) {
	return c.rsn(m, rng, true)
}

// RSNOrdered is RSN without the randomizing row shuffle (ablation).
func (c *Core) RSNOrdered(m *comm.Matrix, rng *rand.Rand) (*Schedule, error) {
	return c.rsn(m, rng, false)
}

func (c *Core) rsn(m *comm.Matrix, rng *rand.Rand, shuffle bool) (*Schedule, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := m.N()
	var ops int64
	if shuffle {
		c.ccom.Load(m, rng)
	} else {
		c.ccom.Load(m, nil)
	}
	// Ops models the paper's "comp" column: the per-processor cost of
	// runtime scheduling. Compression is parallelized — each processor
	// compacts its own row, O(n), and the rows are combined by a
	// concatenate (§4.2), whose cost is communication, not comp.
	ops += int64(n)

	ccom := &c.ccom
	s := &Schedule{Algorithm: "RS_N", N: n}
	trecv := intScratch(&c.trecv, n)
	for !ccom.Empty() {
		p := NewPhase(n)
		for i := range trecv {
			trecv[i] = -1
		}
		ops += int64(n) // vector reset
		x := rng.Intn(n)
		for k := 0; k < n; k++ {
			ops++
			// Along row x, find the first entry whose destination is
			// still free this phase.
			for z := 0; z < ccom.Remaining(x); z++ {
				ops++
				y := ccom.At(x, z)
				if trecv[y] == -1 {
					dest, bytes := ccom.Remove(x, z)
					p.Send[x] = dest
					p.Bytes[x] = bytes
					trecv[dest] = x
					break
				}
			}
			x = (x + 1) % n
		}
		s.Phases = append(s.Phases, p)
	}
	s.Ops = ops
	c.noteRun(s.Algorithm, len(s.Phases), ops)
	return s, nil
}

// --- RS_NL ----------------------------------------------------------

// RSNL is the reusable-core form of the package-level RSNL (§5,
// Figure 4), checking routes against the core's occupancy backend.
func (c *Core) RSNL(m *comm.Matrix, rng *rand.Rand) (*Schedule, error) {
	return c.rsnl(m, rng, true)
}

// RSNLNoPairwise disables the pairwise-exchange priority (ablation).
func (c *Core) RSNLNoPairwise(m *comm.Matrix, rng *rand.Rand) (*Schedule, error) {
	return c.rsnl(m, rng, false)
}

func (c *Core) rsnl(m *comm.Matrix, rng *rand.Rand, pairwise bool) (*Schedule, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := m.N()
	if err := c.requireNet("RS_NL", n); err != nil {
		return nil, err
	}
	c.ccom.Load(m, rng)
	ccom := &c.ccom
	var ops int64
	ops += int64(n) // per-processor compression of one row, as in RSN

	if pairwise {
		// Locate pairwise-exchange candidates once: stable-partition
		// every row so destinations with a reverse message lead. The
		// per-phase scan then meets exchange opportunities first.
		ccom.PartitionRows(func(src, dst int) bool { return m.At(dst, src) > 0 })
		ops += int64(m.MessageCount())
	}

	// rem mirrors the unscheduled message set so the scan can ask
	// "does y still need to send to x" in O(1). The CCOM rows hold
	// exactly the nonzero entries, so filling from them avoids
	// materializing a Messages slice.
	rem := boolScratch(&c.rem, n*n)
	for i := 0; i < n; i++ {
		for z := 0; z < ccom.Remaining(i); z++ {
			rem[i*n+ccom.At(i, z)] = true
		}
	}

	occ := c.occupancy()
	s := &Schedule{Algorithm: "RS_NL", N: n}
	tsend := intScratch(&c.tsend, n)
	trecv := intScratch(&c.trecv, n)

	// removeFrom drops the entry with destination dst from row src of
	// CCOM (linear scan over at most d live entries).
	removeFrom := func(src, dst int) int64 {
		for z := 0; z < ccom.Remaining(src); z++ {
			ops++
			if ccom.At(src, z) == dst {
				_, bytes := ccom.Remove(src, z)
				return bytes
			}
		}
		panic(fmt.Sprintf("sched: CCOM row %d lost entry for %d", src, dst))
	}

	for !ccom.Empty() {
		p := NewPhase(n)
		for i := range trecv {
			trecv[i] = -1
			tsend[i] = -1
		}
		occ.Reset()
		ops += int64(n)
		x := rng.Intn(n)
		for k := 0; k < n; k++ {
			ops++
			if tsend[x] != -1 {
				// x was already claimed as the reverse half of an
				// earlier pairwise assignment this phase.
				x = (x + 1) % n
				continue
			}
			// First feasible entry: destination free this phase and
			// circuit unclaimed.
			for z := 0; z < ccom.Remaining(x); z++ {
				ops++
				y := ccom.At(x, z)
				if trecv[y] != -1 {
					continue
				}
				ops += int64(c.hops(x, y))
				if !occ.CheckPath(x, y) {
					continue
				}
				// Feasible. Upgrade to a pairwise exchange if the
				// reverse message is still pending and both the
				// reverse circuit and both endpoints allow it.
				if pairwise && rem[y*n+x] && tsend[y] == -1 && trecv[x] == -1 {
					ops += int64(c.hops(y, x))
					if occ.CheckPath(y, x) {
						_, bytes := ccom.Remove(x, z)
						backBytes := removeFrom(y, x)
						p.Send[x], p.Bytes[x] = y, bytes
						p.Send[y], p.Bytes[y] = x, backBytes
						tsend[x], trecv[y] = y, x
						tsend[y], trecv[x] = x, y
						rem[x*n+y] = false
						rem[y*n+x] = false
						occ.MarkPath(x, y)
						occ.MarkPath(y, x)
						break
					}
				}
				_, bytes := ccom.Remove(x, z)
				p.Send[x], p.Bytes[x] = y, bytes
				tsend[x], trecv[y] = y, x
				rem[x*n+y] = false
				occ.MarkPath(x, y)
				break
			}
			x = (x + 1) % n
		}
		s.Phases = append(s.Phases, p)
	}
	s.Ops = ops
	c.noteRun(s.Algorithm, len(s.Phases), ops)
	return s, nil
}

// RSNLSized is the reusable-core form of the package-level RSNLSized:
// rows sorted by descending size, phases started at the largest
// remaining message.
func (c *Core) RSNLSized(m *comm.Matrix, rng *rand.Rand) (*Schedule, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := m.N()
	if err := c.requireNet("RS_NL_SZ", n); err != nil {
		return nil, err
	}
	c.ccom.Load(m, rng)
	ccom := &c.ccom
	var ops int64
	ops += int64(n)
	c.sortRowsBySize(ccom, m)
	ops += int64(m.MessageCount())

	occ := c.occupancy()
	s := &Schedule{Algorithm: "RS_NL_SZ", N: n}
	trecv := intScratch(&c.trecv, n)
	for !ccom.Empty() {
		p := NewPhase(n)
		for i := range trecv {
			trecv[i] = -1
		}
		occ.Reset()
		ops += int64(n)
		// Start from the row with the largest remaining message so the
		// phase's maximum is set by a message that must travel anyway.
		x := 0
		var best int64 = -1
		for i := 0; i < n; i++ {
			ops++
			if ccom.Remaining(i) > 0 && ccom.SizeAt(i, 0) > best {
				best = ccom.SizeAt(i, 0)
				x = i
			}
		}
		for k := 0; k < n; k++ {
			ops++
			// Rows are size-sorted, so the first feasible entry is the
			// largest schedulable message of the row.
			for z := 0; z < ccom.Remaining(x); z++ {
				ops++
				y := ccom.At(x, z)
				if trecv[y] != -1 {
					continue
				}
				ops += int64(c.hops(x, y))
				if !occ.CheckPath(x, y) {
					continue
				}
				_, bytes := ccom.Remove(x, z)
				p.Send[x], p.Bytes[x] = y, bytes
				trecv[y] = x
				occ.MarkPath(x, y)
				break
			}
			x = (x + 1) % n
		}
		s.Phases = append(s.Phases, p)
	}
	s.Ops = ops
	c.noteRun(s.Algorithm, len(s.Phases), ops)
	return s, nil
}

// sortRowsBySize reorders every CCOM row into descending message-size
// order (stable on the shuffled order for equal sizes). CCOM exposes
// only partition and remove, so sort by repeated partitioning on size
// thresholds — each distinct size is one pass.
func (c *Core) sortRowsBySize(ccom *comm.Compressed, m *comm.Matrix) {
	// Collect the distinct sizes ascending; partitioning from the
	// smallest threshold upward leaves rows in descending order
	// (later partitions move larger entries in front, stably).
	if c.sizeSeen == nil {
		c.sizeSeen = make(map[int64]bool)
	} else {
		clear(c.sizeSeen)
	}
	sizes := c.sizes[:0]
	n := ccom.N()
	for i := 0; i < n; i++ {
		for z := 0; z < ccom.Remaining(i); z++ {
			if b := ccom.SizeAt(i, z); !c.sizeSeen[b] {
				c.sizeSeen[b] = true
				sizes = append(sizes, b)
			}
		}
	}
	for i := 1; i < len(sizes); i++ {
		for j := i; j > 0 && sizes[j] < sizes[j-1]; j-- {
			sizes[j], sizes[j-1] = sizes[j-1], sizes[j]
		}
	}
	c.sizes = sizes
	for _, threshold := range sizes {
		th := threshold
		ccom.PartitionRows(func(src, dst int) bool { return m.At(src, dst) >= th })
	}
}

// --- LP -------------------------------------------------------------

// LP is the reusable-core form of the package-level LP (§4.1,
// Figure 2). Its output is the whole allocation, so the core adds no
// reuse beyond interface symmetry.
func (c *Core) LP(m *comm.Matrix) (*Schedule, error) {
	n := m.N()
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("sched: LP requires a power-of-two processor count, got %d", n)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	s := &Schedule{Algorithm: "LP", N: n}
	for k := 1; k < n; k++ {
		p := NewPhase(n)
		for i := 0; i < n; i++ {
			j := i ^ k
			if b := m.At(i, j); b > 0 {
				p.Send[i] = j
				p.Bytes[i] = b
			}
		}
		// The paper's LP walks all n-1 iterations even when a phase is
		// empty (that is exactly its weakness at low density); keep
		// empty phases so the phase count is n-1 and the executor pays
		// the per-phase loop cost.
		s.Phases = append(s.Phases, p)
	}
	// Ops models the per-processor scheduling cost ("comp" in Table 1):
	// each processor derives its own partner sequence with one XOR and
	// one row lookup per phase — the "very low computation overhead" of
	// §7. The n-way loop above is this simulator materializing every
	// processor's view at once, not work the machine would do serially.
	s.Ops = int64(n - 1)
	c.noteRun(s.Algorithm, len(s.Phases), s.Ops)
	return s, nil
}

// --- AC -------------------------------------------------------------

// AC is the reusable-core form of the package-level AC (§3, Figure 1).
// The send orders are the output, so nothing is pooled.
func (c *Core) AC(m *comm.Matrix) (*ACOrder, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := m.N()
	o := &ACOrder{N: n, Order: make([][]int, n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if m.At(i, j) > 0 {
				o.Order[i] = append(o.Order[i], j)
			}
		}
	}
	// AC has no scheduling phase and the paper charges it zero comp:
	// sends are issued asynchronously straight off the row.
	c.noteRun("AC", 0, 0)
	return o, nil
}

// ACShuffled is AC with each processor's send list independently
// shuffled.
func (c *Core) ACShuffled(m *comm.Matrix, rng *rand.Rand) (*ACOrder, error) {
	o, err := c.AC(m)
	if err != nil {
		return nil, err
	}
	for i := range o.Order {
		row := o.Order[i]
		rng.Shuffle(len(row), func(a, b int) { row[a], row[b] = row[b], row[a] })
	}
	return o, nil
}

// --- GREEDY ---------------------------------------------------------

// Greedy is the reusable-core form of the package-level Greedy.
func (c *Core) Greedy(m *comm.Matrix) (*Schedule, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := m.N()
	c.ccom.Load(m, nil)
	ccom := &c.ccom
	var ops int64
	ops += int64(n) // per-processor row compression, as in RSN
	s := &Schedule{Algorithm: "GREEDY", N: n}
	trecv := intScratch(&c.trecv, n)
	for !ccom.Empty() {
		p := NewPhase(n)
		for i := range trecv {
			trecv[i] = -1
		}
		ops += int64(n)
		for x := 0; x < n; x++ {
			for z := 0; z < ccom.Remaining(x); z++ {
				ops++
				y := ccom.At(x, z)
				if trecv[y] == -1 {
					dest, bytes := ccom.Remove(x, z)
					p.Send[x] = dest
					p.Bytes[x] = bytes
					trecv[dest] = x
					break
				}
			}
		}
		s.Phases = append(s.Phases, p)
	}
	s.Ops = ops
	c.noteRun(s.Algorithm, len(s.Phases), ops)
	return s, nil
}

// sortedMsgs fills the core's message scratch with m's messages in
// descending size order (stable on row-major order for equal sizes).
func (c *Core) sortedMsgs(m *comm.Matrix) []comm.Message {
	c.msgs = m.AppendMessages(c.msgs[:0])
	slices.SortStableFunc(c.msgs, func(a, b comm.Message) int {
		return cmp.Compare(b.Bytes, a.Bytes)
	})
	return c.msgs
}

// growBusy extends the per-phase engagement bitmaps by one phase of n
// slots each, recycling backing capacity across calls.
func (c *Core) growBusy(n int) {
	grow := func(buf *[]bool) {
		need := len(*buf) + n
		if cap(*buf) < need {
			next := make([]bool, need)
			copy(next, *buf)
			*buf = next
			return
		}
		*buf = (*buf)[:need]
		clear((*buf)[need-n:])
	}
	grow(&c.sendBusy)
	grow(&c.recvBusy)
}

// GreedyLargestFirst is the reusable-core form of the package-level
// GreedyLargestFirst list scheduler.
func (c *Core) GreedyLargestFirst(m *comm.Matrix) (*Schedule, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := m.N()
	msgs := c.sortedMsgs(m)
	var ops int64
	s := &Schedule{Algorithm: "GREEDY_LF", N: n}
	// sendBusy[k*n+i] / recvBusy[k*n+j]: processor engagement per phase.
	c.sendBusy = c.sendBusy[:0]
	c.recvBusy = c.recvBusy[:0]
	grow := func() {
		c.growBusy(n)
		s.Phases = append(s.Phases, NewPhase(n))
	}
	place := func(k int, msg comm.Message) {
		c.sendBusy[k*n+msg.Src] = true
		c.recvBusy[k*n+msg.Dst] = true
		s.Phases[k].Send[msg.Src] = msg.Dst
		s.Phases[k].Bytes[msg.Src] = msg.Bytes
	}
	for _, msg := range msgs {
		placed := false
		for k := 0; k < len(s.Phases); k++ {
			ops++
			if !c.sendBusy[k*n+msg.Src] && !c.recvBusy[k*n+msg.Dst] {
				place(k, msg)
				placed = true
				break
			}
		}
		if !placed {
			grow()
			place(len(s.Phases)-1, msg)
			ops++
		}
	}
	s.Ops = ops
	c.noteRun(s.Algorithm, len(s.Phases), ops)
	return s, nil
}

// GreedyLargestFirstLinkFree is the reusable-core form of the
// package-level GreedyLargestFirstLinkFree. Per-phase claim tables
// come from the core's recycled occupancy pool instead of a fresh
// O(channels) allocation per opened phase.
func (c *Core) GreedyLargestFirstLinkFree(m *comm.Matrix) (*Schedule, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := m.N()
	if err := c.requireNet("GREEDY_LF_LINK", n); err != nil {
		return nil, err
	}
	msgs := c.sortedMsgs(m)
	var ops int64
	s := &Schedule{Algorithm: "GREEDY_LF_LINK", N: n}
	c.sendBusy = c.sendBusy[:0]
	c.recvBusy = c.recvBusy[:0]
	// The claim table of phase k is always c.occPool[k]: phases open in
	// order and phaseOcc recycles (or grows) the pool to match.
	grow := func() {
		c.growBusy(n)
		s.Phases = append(s.Phases, NewPhase(n))
		c.phaseOcc(len(s.Phases) - 1)
	}
	place := func(k int, msg comm.Message) {
		c.sendBusy[k*n+msg.Src] = true
		c.recvBusy[k*n+msg.Dst] = true
		s.Phases[k].Send[msg.Src] = msg.Dst
		s.Phases[k].Bytes[msg.Src] = msg.Bytes
		c.occPool[k].MarkPath(msg.Src, msg.Dst)
	}
	for _, msg := range msgs {
		placed := false
		for k := 0; k < len(s.Phases); k++ {
			ops += 1 + int64(c.hops(msg.Src, msg.Dst))
			if !c.sendBusy[k*n+msg.Src] && !c.recvBusy[k*n+msg.Dst] && c.occPool[k].CheckPath(msg.Src, msg.Dst) {
				place(k, msg)
				placed = true
				break
			}
		}
		if !placed {
			grow()
			place(len(s.Phases)-1, msg)
			ops++
		}
	}
	s.Ops = ops
	c.noteRun(s.Algorithm, len(s.Phases), ops)
	return s, nil
}

// ValidateLinkFree checks s for link contention against the core's
// topology, reusing the core's claim table (the package-level
// Schedule.ValidateLinkFree allocates a fresh one per call).
func (c *Core) ValidateLinkFree(s *Schedule) error {
	if err := c.requireNet("ValidateLinkFree", s.N); err != nil {
		return err
	}
	return s.validateLinkFree(c.occupancy())
}
