package sched

// Tests for the non-uniform message-size extension (the direction the
// paper defers to [15]) and the remaining ablation variants.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"unsched/internal/comm"
	"unsched/internal/mesh"
)

func mixedMatrix(t *testing.T, seed int64) *comm.Matrix {
	t.Helper()
	m, err := comm.MixedSizes(64, 8, 64, 64*1024, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAllSchedulersHandleNonUniformSizes(t *testing.T) {
	m := mixedMatrix(t, 80)
	if _, uniform := m.Uniform(); uniform {
		t.Fatal("MixedSizes produced a uniform matrix (astronomically unlikely)")
	}
	cube := cube64()
	rng := rand.New(rand.NewSource(81))
	builds := map[string]func() (*Schedule, error){
		"LP":        func() (*Schedule, error) { return LP(m) },
		"RS_N":      func() (*Schedule, error) { return RSN(m, rng) },
		"RS_NL":     func() (*Schedule, error) { return RSNL(m, cube, rng) },
		"GREEDY":    func() (*Schedule, error) { return Greedy(m) },
		"GREEDY_LF": func() (*Schedule, error) { return GreedyLargestFirst(m) },
		"GREEDY_LF_LINK": func() (*Schedule, error) {
			return GreedyLargestFirstLinkFree(m, cube)
		},
		"RS_N_UNC": func() (*Schedule, error) { return RSNUncompressed(m, rng) },
	}
	for name, build := range builds {
		s, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Validate(m); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// The point of largest-first: the sum over phases of the per-phase
// maximum (the paper's tau + M*phi cost proxy) must not exceed the
// plain greedy packing's.
func TestLargestFirstReducesPhaseMaxSum(t *testing.T) {
	worse := 0
	for seed := int64(0); seed < 10; seed++ {
		m := mixedMatrix(t, 90+seed)
		plain, err := Greedy(m)
		if err != nil {
			t.Fatal(err)
		}
		lf, err := GreedyLargestFirst(m)
		if err != nil {
			t.Fatal(err)
		}
		sum := func(s *Schedule) int64 {
			var total int64
			for _, p := range s.Phases {
				total += p.MaxBytes()
			}
			return total
		}
		if sum(lf) > sum(plain) {
			worse++
		}
	}
	if worse > 2 {
		t.Errorf("largest-first lost to plain greedy on %d/10 mixed-size samples", worse)
	}
}

func TestRSNLSizedValid(t *testing.T) {
	cube := cube64()
	m := mixedMatrix(t, 85)
	s, err := RSNLSized(m, cube, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(m); err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateLinkFree(cube); err != nil {
		t.Fatal(err)
	}
}

func TestRSNLSizedRowsDescending(t *testing.T) {
	m := mixedMatrix(t, 86)
	ccom := comm.NewCompressed(m, rand.New(rand.NewSource(2)))
	sortRowsBySize(ccom, m)
	for i := 0; i < m.N(); i++ {
		var prev int64 = 1 << 62
		for z := 0; z < ccom.Remaining(i); z++ {
			if sz := ccom.SizeAt(i, z); sz > prev {
				t.Fatalf("row %d not descending at slot %d: %d after %d", i, z, sz, prev)
			} else {
				prev = sz
			}
		}
	}
}

func TestRSNLSizedBeatsPlainOnMixedSizes(t *testing.T) {
	// The cost proxy: sum over phases of the per-phase maximum. The
	// size-aware variant should win on mixed workloads most of the
	// time.
	cube := cube64()
	worse := 0
	for seed := int64(0); seed < 8; seed++ {
		m := mixedMatrix(t, 100+seed)
		plain, err := RSNL(m, cube, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		sized, err := RSNLSized(m, cube, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		sum := func(s *Schedule) int64 {
			var total int64
			for _, p := range s.Phases {
				total += p.MaxBytes()
			}
			return total
		}
		if sum(sized) > sum(plain) {
			worse++
		}
	}
	if worse > 2 {
		t.Errorf("size-aware RS_NL lost the phase-max sum on %d/8 samples", worse)
	}
}

func TestRSNUncompressedEquivalentQuality(t *testing.T) {
	// Same algorithm, different data structure: phase counts must be
	// statistically indistinguishable, op counts must not be.
	m := randomMatrix(t, 64, 8, 1024, 91)
	fast, err := RSN(m, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RSNUncompressed(m, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := slow.Validate(m); err != nil {
		t.Fatal(err)
	}
	diff := fast.NumPhases() - slow.NumPhases()
	if diff < -4 || diff > 4 {
		t.Errorf("phase counts diverge: %d vs %d", fast.NumPhases(), slow.NumPhases())
	}
	if slow.Ops < 5*fast.Ops {
		t.Errorf("uncompressed ops %d should dwarf compressed %d", slow.Ops, fast.Ops)
	}
}

func TestRSNLOnTorusProperty(t *testing.T) {
	// Link-freedom holds for RS_NL on a torus for arbitrary seeds.
	net := mesh.MustNew(8, 8, true)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := comm.UniformRandom(64, 6, 512, rng)
		if err != nil {
			return false
		}
		s, err := RSNL(m, net, rng)
		if err != nil {
			return false
		}
		return s.Validate(m) == nil && s.ValidateLinkFree(net) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestHotSpotSchedulesBounded(t *testing.T) {
	// Hot-spot patterns have high receive density; phase counts track
	// the density, not the node count squared.
	rng := rand.New(rand.NewSource(92))
	m, err := comm.HotSpot(64, 8, 1024, 4, 0.9, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := RSN(m, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(m); err != nil {
		t.Fatal(err)
	}
	lower := LowerBoundPhases(m)
	if s.NumPhases() < lower {
		t.Fatalf("phases %d below density bound %d", s.NumPhases(), lower)
	}
	if s.NumPhases() > 2*lower+8 {
		t.Errorf("phases %d far above density bound %d", s.NumPhases(), lower)
	}
}

func TestSingleMessageSchedules(t *testing.T) {
	// Degenerate input: one message total.
	m := comm.MustNew(64)
	m.Set(5, 9, 4096)
	cube := cube64()
	rng := rand.New(rand.NewSource(93))
	for name, build := range map[string]func() (*Schedule, error){
		"LP":    func() (*Schedule, error) { return LP(m) },
		"RS_N":  func() (*Schedule, error) { return RSN(m, rng) },
		"RS_NL": func() (*Schedule, error) { return RSNL(m, cube, rng) },
	} {
		s, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Validate(m); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name != "LP" && s.NumPhases() != 1 {
			t.Errorf("%s: %d phases for one message", name, s.NumPhases())
		}
	}
}

func TestDensityOnePatternsScheduleInOnePhase(t *testing.T) {
	// A permutation (density 1) fits one phase under RS_N; under RS_NL
	// link constraints may split it on a sparse topology but never on
	// the cube for a contention-free permutation.
	m, err := comm.BitComplement(64, 2048)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(94))
	s, err := RSN(m, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPhases() != 1 {
		t.Errorf("RS_N needs %d phases for a permutation", s.NumPhases())
	}
	snl, err := RSNL(m, cube64(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if snl.NumPhases() != 1 {
		t.Errorf("RS_NL needs %d phases for bit complement (link-free on the cube)", snl.NumPhases())
	}
}
