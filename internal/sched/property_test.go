package sched

import (
	"math/rand"
	"testing"

	"unsched/internal/comm"
	"unsched/internal/hypercube"
	"unsched/internal/topo"
)

// Property-based validity tests: for random workloads across many
// seeds, every schedule must (1) deliver exactly the messages of the
// source matrix, once each with the right sizes; (2) be free of node
// contention in every phase; and for RS_NL and LP, (3) be free of link
// contention under e-cube routing. Validate checks (1)+(2) against the
// matrix; ValidateLinkFree checks (3); checkNodeContention re-derives
// (2) directly from the phase structure so the test does not lean on a
// single implementation.

func checkNodeContention(t *testing.T, label string, s *Schedule) {
	t.Helper()
	for k, p := range s.Phases {
		recvBusy := make([]bool, s.N)
		for _, j := range p.Send {
			if j < 0 {
				continue
			}
			// Send-side contention freedom is structural (Send[i] is a
			// single destination); the receive side must be checked.
			if recvBusy[j] {
				t.Errorf("%s: phase %d: two senders target P%d", label, k, j)
			}
			recvBusy[j] = true
		}
	}
}

// randomWorkloads yields one matrix per generator for the given seed:
// a d-regular pattern and a hot-spot pattern, with density and size
// themselves drawn from the seed.
func randomWorkloads(t *testing.T, n int, seed int64) map[string]*comm.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := 1 + rng.Intn(n-1)
	bytes := int64(1) << uint(4+rng.Intn(12)) // 16 B .. 32 KB
	dreg, err := comm.DRegular(n, d, bytes, rng)
	if err != nil {
		t.Fatalf("DRegular(n=%d, d=%d): %v", n, d, err)
	}
	hotCount := 1 + rng.Intn(max(1, n/8))
	hot, err := comm.HotSpot(n, max(1, d/2), bytes, hotCount, 0.6, rng)
	if err != nil {
		t.Fatalf("HotSpot(n=%d): %v", n, err)
	}
	return map[string]*comm.Matrix{"DRegular": dreg, "HotSpot": hot}
}

func TestPropertyRSNValidAcrossSeeds(t *testing.T) {
	for _, n := range []int{8, 16, 64} {
		for seed := int64(0); seed < 20; seed++ {
			for name, m := range randomWorkloads(t, n, seed) {
				rng := rand.New(rand.NewSource(seed * 31))
				s, err := RSN(m, rng)
				if err != nil {
					t.Fatalf("RSN n=%d seed=%d %s: %v", n, seed, name, err)
				}
				label := "RSN " + name
				if err := s.Validate(m); err != nil {
					t.Errorf("%s n=%d seed=%d: %v", label, n, seed, err)
				}
				checkNodeContention(t, label, s)
			}
		}
	}
}

func TestPropertyRSNLValidAndLinkFreeAcrossSeeds(t *testing.T) {
	for _, dim := range []int{3, 4, 6} {
		cube := hypercube.MustNew(dim)
		n := cube.Nodes()
		for seed := int64(0); seed < 20; seed++ {
			for name, m := range randomWorkloads(t, n, seed) {
				rng := rand.New(rand.NewSource(seed * 37))
				s, err := RSNL(m, cube, rng)
				if err != nil {
					t.Fatalf("RSNL n=%d seed=%d %s: %v", n, seed, name, err)
				}
				label := "RSNL " + name
				if err := s.Validate(m); err != nil {
					t.Errorf("%s n=%d seed=%d: %v", label, n, seed, err)
				}
				checkNodeContention(t, label, s)
				if err := s.ValidateLinkFree(cube); err != nil {
					t.Errorf("%s n=%d seed=%d: link contention: %v", label, n, seed, err)
				}
			}
		}
	}
}

// TestPropertyRSNLLinkFreeOnGraphTopologies is the §5 generalization
// under test: the link-contention-avoiding scheduler needs nothing
// from the machine beyond deterministic routing, so its schedules
// must stay link-free on the canonical-BFS graph backend (rings and
// arbitrary connected graphs) exactly as they do under e-cube.
func TestPropertyRSNLLinkFreeOnGraphTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	sparse := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0}, {0, 4}, {2, 6}}
	var dense [][2]int
	for v := 1; v < 16; v++ {
		dense = append(dense, [2]int{rng.Intn(v), v})
	}
	for k := 0; k < 24; k++ {
		a, b := rng.Intn(16), rng.Intn(16)
		if a < b {
			dense = append(dense, [2]int{a, b})
		}
	}
	// Random extras may duplicate tree edges; drop duplicates.
	seen := map[[2]int]bool{}
	uniq := dense[:0]
	for _, e := range dense {
		if !seen[e] {
			seen[e] = true
			uniq = append(uniq, e)
		}
	}
	nets := []topo.Topology{
		topo.MustNewRing(8),
		topo.MustNewRing(16),
		topo.MustNewGraph(8, sparse),
		topo.MustNewGraph(16, uniq),
	}
	for _, net := range nets {
		n := net.Nodes()
		for seed := int64(0); seed < 10; seed++ {
			for name, m := range randomWorkloads(t, n, seed) {
				s, err := RSNL(m, net, rand.New(rand.NewSource(seed*43)))
				if err != nil {
					t.Fatalf("RSNL on %s seed=%d %s: %v", net.Name(), seed, name, err)
				}
				label := "RSNL " + net.Name() + " " + name
				if err := s.Validate(m); err != nil {
					t.Errorf("%s seed=%d: %v", label, seed, err)
				}
				checkNodeContention(t, label, s)
				if err := s.ValidateLinkFree(net); err != nil {
					t.Errorf("%s seed=%d: link contention: %v", label, seed, err)
				}
				// The reusable core over a precomputed table must emit the
				// bit-identical schedule from the identical RNG stream:
				// same phases, same sends, same sizes.
				core := NewCore(net)
				s2, err := core.RSNL(m, rand.New(rand.NewSource(seed*43)))
				if err != nil {
					t.Fatalf("core RSNL on %s: %v", net.Name(), err)
				}
				if s.NumPhases() != s2.NumPhases() {
					t.Fatalf("%s seed=%d: core schedule has %d phases, package %d",
						label, seed, s2.NumPhases(), s.NumPhases())
				}
				for k := range s.Phases {
					for i := range s.Phases[k].Send {
						if s.Phases[k].Send[i] != s2.Phases[k].Send[i] ||
							s.Phases[k].Bytes[i] != s2.Phases[k].Bytes[i] {
							t.Fatalf("%s seed=%d: phase %d P%d: package sends %d (%dB), core %d (%dB)",
								label, seed, k, i, s.Phases[k].Send[i], s.Phases[k].Bytes[i],
								s2.Phases[k].Send[i], s2.Phases[k].Bytes[i])
						}
					}
				}
			}
		}
	}
}

func TestPropertyLPValidAndLinkFreeAcrossSeeds(t *testing.T) {
	cube := hypercube.MustNew(4)
	n := cube.Nodes()
	for seed := int64(0); seed < 20; seed++ {
		for name, m := range randomWorkloads(t, n, seed) {
			s, err := LP(m)
			if err != nil {
				t.Fatalf("LP seed=%d %s: %v", seed, name, err)
			}
			label := "LP " + name
			if err := s.Validate(m); err != nil {
				t.Errorf("%s seed=%d: %v", label, seed, err)
			}
			checkNodeContention(t, label, s)
			if err := s.ValidateLinkFree(cube); err != nil {
				t.Errorf("%s seed=%d: link contention: %v", label, seed, err)
			}
		}
	}
}

// TestPropertyScheduleMeetsLowerBound sanity-checks the paper's bound:
// a schedule can never use fewer phases than the matrix density.
func TestPropertyScheduleMeetsLowerBound(t *testing.T) {
	cube := hypercube.MustNew(4)
	for seed := int64(0); seed < 10; seed++ {
		for name, m := range randomWorkloads(t, cube.Nodes(), seed) {
			rng := rand.New(rand.NewSource(seed))
			s, err := RSN(m, rng)
			if err != nil {
				t.Fatal(err)
			}
			if s.NumPhases() < LowerBoundPhases(m) {
				t.Errorf("RSN %s seed=%d: %d phases below density bound %d",
					name, seed, s.NumPhases(), LowerBoundPhases(m))
			}
		}
	}
}
