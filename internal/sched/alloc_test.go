// Allocation-regression tests for the reused-core schedule path.
// Excluded under the race detector: its instrumentation changes
// allocation counts.
//
//go:build !race

package sched

import (
	"math/rand"
	"testing"

	"unsched/internal/comm"
	"unsched/internal/hypercube"
)

// Budgets pin the steady-state allocs of one schedule on a reused
// core. The remaining allocations are the returned Schedule itself
// (two slices per phase plus headers) — scratch state must contribute
// nothing. Measured values on the 64-node/d=16 workload: RSN ~45,
// RSNL ~49, GreedyLFLink ~57; budgets leave room for phase-count
// jitter across RNG streams, not for a scratch-reuse regression
// (losing CCOM reuse alone costs ~65 extra allocations).
const (
	allocBudgetRSN    = 70
	allocBudgetRSNL   = 80
	allocBudgetGreedy = 90
)

func allocWorkload(t *testing.T) (*hypercube.Cube, *comm.Matrix) {
	t.Helper()
	cube := hypercube.MustNew(6)
	m, err := comm.DRegular(64, 16, 4096, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	return cube, m
}

func TestCoreRSNAllocs(t *testing.T) {
	_, m := allocWorkload(t)
	core := NewCoreDirect(nil)
	rng := rand.New(rand.NewSource(1))
	if _, err := core.RSN(m, rng); err != nil { // warm the scratch
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(20, func() {
		if _, err := core.RSN(m, rng); err != nil {
			t.Fatal(err)
		}
	})
	if got > allocBudgetRSN {
		t.Errorf("reused-core RSN: %.1f allocs/run, budget %d", got, allocBudgetRSN)
	}
}

func TestCoreRSNLAllocs(t *testing.T) {
	cube, m := allocWorkload(t)
	core := NewCore(cube)
	rng := rand.New(rand.NewSource(1))
	if _, err := core.RSNL(m, rng); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(20, func() {
		if _, err := core.RSNL(m, rng); err != nil {
			t.Fatal(err)
		}
	})
	if got > allocBudgetRSNL {
		t.Errorf("reused-core RSNL: %.1f allocs/run, budget %d", got, allocBudgetRSNL)
	}
}

func TestCoreGreedyLinkFreeAllocs(t *testing.T) {
	cube, m := allocWorkload(t)
	core := NewCore(cube)
	if _, err := core.GreedyLargestFirstLinkFree(m); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(20, func() {
		if _, err := core.GreedyLargestFirstLinkFree(m); err != nil {
			t.Fatal(err)
		}
	})
	if got > allocBudgetGreedy {
		t.Errorf("reused-core GreedyLargestFirstLinkFree: %.1f allocs/run, budget %d", got, allocBudgetGreedy)
	}
	// The per-phase claim tables must come from the recycled pool: a
	// throwaway core allocates a fresh O(channels) Occupancy per opened
	// phase (~270 allocs on this workload), so the reused core must
	// land far below it.
	throwaway := testing.AllocsPerRun(20, func() {
		if _, err := GreedyLargestFirstLinkFree(m, cube); err != nil {
			t.Fatal(err)
		}
	})
	if got >= throwaway {
		t.Errorf("reused core (%.1f allocs) does not beat throwaway (%.1f)", got, throwaway)
	}
}
