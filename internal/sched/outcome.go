package sched

import (
	"math"

	"unsched/internal/comm"
	"unsched/internal/costmodel"
)

// Features are the matrix properties the portfolio meta-scheduler
// selects on: the axes of the paper's evaluation (§6). Density and
// message-size variation decide which algorithm wins (Table 1,
// Figs. 5–11), and the node count scales everything.
type Features struct {
	// Nodes is the processor count of the matrix.
	Nodes int `json:"nodes"`
	// Density is the maximum number of messages any processor sends
	// or receives — the d of a d-regular pattern, matching
	// comm.Matrix.Density.
	Density int `json:"density"`
	// SizeCV is the coefficient of variation (std/mean) of the
	// nonzero message sizes: 0 for uniform-size patterns, around 1
	// for power-law mixes. It separates the workloads where
	// size-aware scheduling (RS_NL_SZ, GREEDY_LF) pays off.
	SizeCV float64 `json:"size_cv"`
}

// MeasureFeatures computes a matrix's selection features in one
// O(n^2) pass. It is meant to run once per matrix at the harness
// layer (service request, campaign sample) — never inside the
// scheduling algorithms themselves, whose instrumented op counts must
// stay a faithful model of the paper's runtime cost.
func MeasureFeatures(m *comm.Matrix) Features {
	n := m.N()
	recv := make([]int, n)
	var count int64
	var sum, sumSq float64
	maxDeg := 0
	for i := 0; i < n; i++ {
		row := 0
		for j := 0; j < n; j++ {
			if b := m.At(i, j); b > 0 {
				row++
				recv[j]++
				fb := float64(b)
				sum += fb
				sumSq += fb * fb
				count++
			}
		}
		if row > maxDeg {
			maxDeg = row
		}
	}
	for _, r := range recv {
		if r > maxDeg {
			maxDeg = r
		}
	}
	f := Features{Nodes: n, Density: maxDeg}
	if count > 1 && sum > 0 {
		mean := sum / float64(count)
		variance := sumSq/float64(count) - mean*mean
		if variance > 0 {
			f.SizeCV = math.Sqrt(variance) / mean
		}
	}
	return f
}

// Outcome is the evaluation artifact of one algorithm run: which
// algorithm ran on what kind of matrix, what it cost to schedule
// (the paper's "comp" column, via the costmodel scaling), and — once
// the caller has simulated the schedule — what the communication
// quality was. Campaign workers persist Outcomes to the quality
// store; the store calibrates algorithm "auto".
type Outcome struct {
	// Algorithm is the canonical tag (AC, LP, RS_N, RS_NL, ...).
	Algorithm string `json:"algorithm"`
	// Phases is the schedule's phase count (0 for AC, which runs
	// asynchronously without one).
	Phases int `json:"phases"`
	// EstCommUS is the simulated or estimated communication time in
	// microseconds. The scheduling layer leaves it 0; the caller that
	// runs the simulator fills it in.
	EstCommUS float64 `json:"est_comm_us"`
	// SchedCostNS is the modeled scheduling cost in nanoseconds,
	// derived from the instrumented op count by costmodel.CompTimeNS.
	SchedCostNS int64 `json:"sched_cost_ns"`
	// Features are the matrix properties the run was measured on.
	Features
	// TopoName is the topology's canonical name ("hypercube-64",
	// "torus-8x8", ...), empty for topology-free cores.
	TopoName string `json:"topo_name"`
}

// TotalCostUS is the outcome's single-number quality: communication
// time plus modeled scheduling cost, in microseconds. The quality
// model ranks algorithms within a bin by the mean of this value.
func (o Outcome) TotalCostUS() float64 {
	return o.EstCommUS + float64(o.SchedCostNS)/1000
}

// lastRun records the cheap metadata of the core's most recent
// algorithm run — set by a constant-cost noteRun call at the end of
// every scheduling method, so emitting Outcomes costs the hot path
// nothing.
type lastRun struct {
	alg    string
	phases int
	ops    int64
}

func (c *Core) noteRun(alg string, phases int, ops int64) {
	c.last = lastRun{alg: alg, phases: phases, ops: ops}
}

// LastOutcome assembles the Outcome of the core's most recent
// algorithm run from the recorded run metadata, the caller-measured
// matrix features, and the cost model. EstCommUS is left 0 for the
// caller to fill after simulation.
func (c *Core) LastOutcome(f Features, params costmodel.Params) Outcome {
	o := Outcome{
		Algorithm:   c.last.alg,
		Phases:      c.last.phases,
		SchedCostNS: params.CompTimeNS(c.last.ops),
		Features:    f,
	}
	if c.net != nil {
		o.TopoName = c.net.Name()
	}
	return o
}
