package sched

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteSchedule serializes a schedule in a line-oriented text format:
//
//	schedule <algorithm> n <N> phases <P> ops <Ops>
//	phase <k>
//	<src> <dst> <bytes>
//	...
//
// Schedules are computed once and reused many times (§6), so being
// able to store the scheduling table next to the partition it was
// derived from is part of the runtime-system story.
func (s *Schedule) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	n, err := fmt.Fprintf(bw, "schedule %s n %d phases %d ops %d\n",
		s.Algorithm, s.N, len(s.Phases), s.Ops)
	written += int64(n)
	if err != nil {
		return written, err
	}
	for k, p := range s.Phases {
		n, err := fmt.Fprintf(bw, "phase %d\n", k)
		written += int64(n)
		if err != nil {
			return written, err
		}
		for i, j := range p.Send {
			if j < 0 {
				continue
			}
			n, err := fmt.Fprintf(bw, "%d %d %d\n", i, j, p.Bytes[i])
			written += int64(n)
			if err != nil {
				return written, err
			}
		}
	}
	return written, bw.Flush()
}

// ReadSchedule parses the format written by WriteTo and validates the
// structural invariants (one send and one receive per processor per
// phase).
func ReadSchedule(r io.Reader) (*Schedule, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("sched: empty schedule input")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 8 || header[0] != "schedule" || header[2] != "n" ||
		header[4] != "phases" || header[6] != "ops" {
		return nil, fmt.Errorf("sched: bad header %q", sc.Text())
	}
	n, err := strconv.Atoi(header[3])
	if err != nil || n <= 0 {
		return nil, fmt.Errorf("sched: bad processor count %q", header[3])
	}
	phaseCount, err := strconv.Atoi(header[5])
	if err != nil || phaseCount < 0 {
		return nil, fmt.Errorf("sched: bad phase count %q", header[5])
	}
	ops, err := strconv.ParseInt(header[7], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("sched: bad ops %q", header[7])
	}
	s := &Schedule{Algorithm: header[1], N: n, Ops: ops}

	line := 1
	var cur *Phase
	recvBusy := make([]bool, n)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if strings.HasPrefix(text, "phase ") {
			idx, err := strconv.Atoi(strings.TrimPrefix(text, "phase "))
			if err != nil || idx != len(s.Phases) {
				return nil, fmt.Errorf("sched: line %d: phase header %q out of order", line, text)
			}
			s.Phases = append(s.Phases, NewPhase(n))
			cur = &s.Phases[len(s.Phases)-1]
			for i := range recvBusy {
				recvBusy[i] = false
			}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("sched: line %d: transfer before any phase header", line)
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("sched: line %d: want 'src dst bytes', got %q", line, text)
		}
		src, err1 := strconv.Atoi(fields[0])
		dst, err2 := strconv.Atoi(fields[1])
		bytes, err3 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("sched: line %d: malformed transfer %q", line, text)
		}
		if src < 0 || src >= n || dst < 0 || dst >= n || src == dst {
			return nil, fmt.Errorf("sched: line %d: invalid endpoints %d->%d", line, src, dst)
		}
		if bytes <= 0 {
			return nil, fmt.Errorf("sched: line %d: non-positive size %d", line, bytes)
		}
		if cur.Send[src] != -1 {
			return nil, fmt.Errorf("sched: line %d: P%d sends twice in one phase", line, src)
		}
		if recvBusy[dst] {
			return nil, fmt.Errorf("sched: line %d: node contention at P%d", line, dst)
		}
		cur.Send[src] = dst
		cur.Bytes[src] = bytes
		recvBusy[dst] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(s.Phases) != phaseCount {
		return nil, fmt.Errorf("sched: header promises %d phases, found %d", phaseCount, len(s.Phases))
	}
	return s, nil
}
