package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// passthrough hooks: the record body IS the value. Real deployments
// wire the service's checksummed USCR codec here; for transport tests
// the identity codec keeps the fixtures readable.
func identityHooks(o *Options) {
	o.Decode = func(key string, body []byte) ([]byte, error) { return body, nil }
	o.Encode = func(key string, value []byte) ([]byte, error) { return value, nil }
}

func testKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(sum[:])
}

func newFleet(t *testing.T, self string, peers []string, mut ...func(*Options)) *Fleet {
	t.Helper()
	o := Options{Self: self, Peers: peers}
	identityHooks(&o)
	for _, m := range mut {
		m(&o)
	}
	f, err := New(o)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { f.Close(2 * time.Second) })
	return f
}

func TestNewValidation(t *testing.T) {
	ok := Options{Self: "http://a:1", Peers: []string{"http://b:1"}}
	identityHooks(&ok)

	cases := []struct {
		name string
		mut  func(*Options)
	}{
		{"missing hooks", func(o *Options) { o.Decode = nil }},
		{"bad self", func(o *Options) { o.Self = "not a url\x00" }},
		{"self without scheme", func(o *Options) { o.Self = "a:1" }},
		{"peer without host", func(o *Options) { o.Peers = []string{"http://"} }},
		{"peer with query", func(o *Options) { o.Peers = []string{"http://b:1?x=1"} }},
	}
	for _, tc := range cases {
		o := ok
		tc.mut(&o)
		if _, err := New(o); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}

	// Self absent from Peers is added; trailing slashes and dups collapse.
	o := ok
	o.Peers = []string{"http://b:1/", "http://b:1", "http://c:1"}
	f, err := New(o)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close(time.Second)
	want := []string{"http://a:1", "http://b:1", "http://c:1"}
	got := f.Members()
	if len(got) != len(want) {
		t.Fatalf("members = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("members = %v, want %v", got, want)
		}
	}
}

// Every member must compute the identical owner for the same key, and
// ownership must cover all members roughly evenly (HRW over uniform
// SHA-256 keys).
func TestOwnerAgreementAndBalance(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1"}
	fleets := make([]*Fleet, len(urls))
	for i, u := range urls {
		fleets[i] = newFleet(t, u, urls)
	}
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		key := testKey(i)
		owner := fleets[0].Owner(key)
		for _, f := range fleets[1:] {
			if got := f.Owner(key); got != owner {
				t.Fatalf("key %s: owner disagreement %s vs %s", key, got, owner)
			}
		}
		counts[owner]++
		owns := 0
		for i, f := range fleets {
			if f.Owns(key) {
				owns++
				if urls[i] != owner {
					t.Fatalf("key %s: %s claims ownership but owner is %s", key, urls[i], owner)
				}
			}
		}
		if owns != 1 {
			t.Fatalf("key %s: %d members claim ownership", key, owns)
		}
	}
	for _, u := range urls {
		if c := counts[u]; c < n/6 || c > n/2 {
			t.Errorf("imbalanced shard: %s owns %d of %d", u, c, n)
		}
	}
}

// The rendezvous property: adding a member moves only the keys the
// new member now wins — every other key keeps its owner.
func TestRebalanceMinimal(t *testing.T) {
	three := []string{"http://a:1", "http://b:1", "http://c:1"}
	four := append(append([]string(nil), three...), "http://d:1")
	f3 := newFleet(t, three[0], three)
	f4 := newFleet(t, three[0], four)
	moved := 0
	const n = 2000
	for i := 0; i < n; i++ {
		key := testKey(i)
		before, after := f3.Owner(key), f4.Owner(key)
		if before != after {
			if after != "http://d:1" {
				t.Fatalf("key %s moved %s -> %s, not to the new member", key, before, after)
			}
			moved++
		}
	}
	// Expect ~1/4 of keys to move to d; anything near that is fine,
	// wholesale reshuffling is not.
	if moved == 0 || moved > n/2 {
		t.Errorf("moved %d of %d keys on membership growth", moved, n)
	}
}

func TestRankRemotesOrdersByScore(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1"}
	f := newFleet(t, urls[0], urls)
	for i := 0; i < 200; i++ {
		key := testKey(i)
		ranked := f.rankRemotes(key)
		if len(ranked) != 2 {
			t.Fatalf("ranked = %v", ranked)
		}
		if score(ranked[0], key) < score(ranked[1], key) {
			t.Fatalf("key %s: ranked %v out of score order", key, ranked)
		}
		if !f.Owns(key) && f.Owner(key) != ranked[0] {
			t.Fatalf("key %s: owner %s not first in %v", key, f.Owner(key), ranked)
		}
	}
}

// recordServer is a stub peer: it serves records from an in-memory
// map on GET and stores them on PUT, counting requests.
type recordServer struct {
	t       *testing.T
	gets    atomic.Int64
	puts    atomic.Int64
	records map[string][]byte // nil value = 404
	delay   time.Duration
}

func (rs *recordServer) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if rs.delay > 0 {
			time.Sleep(rs.delay)
		}
		key := strings.TrimPrefix(r.URL.Path, "/v1/cache/")
		switch r.Method {
		case http.MethodGet:
			rs.gets.Add(1)
			if body, ok := rs.records[key]; ok {
				w.Write(body)
				return
			}
			http.NotFound(w, r)
		case http.MethodPut:
			rs.puts.Add(1)
			w.WriteHeader(http.StatusNoContent)
		}
	})
}

// Satellite regression test: all peer traffic must ride the pooled
// client's keep-alive connections. Eight sequential fetches against
// one peer should reuse a connection at least six times — a per-fetch
// client would report zero reuse.
func TestFetchReusesConnections(t *testing.T) {
	rs := &recordServer{t: t, records: map[string][]byte{}}
	for i := 0; i < 8; i++ {
		rs.records[testKey(i)] = []byte(fmt.Sprintf("value-%d", i))
	}
	srv := httptest.NewServer(rs.handler())
	defer srv.Close()

	f := newFleet(t, "http://self:1", []string{srv.URL})
	var reused atomic.Int64
	ctx := httptrace.WithClientTrace(context.Background(), &httptrace.ClientTrace{
		GotConn: func(info httptrace.GotConnInfo) {
			if info.Reused {
				reused.Add(1)
			}
		},
	})
	for i := 0; i < 8; i++ {
		key := testKey(i)
		value, ok := f.Fetch(ctx, key)
		if !ok || string(value) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("fetch %d: ok=%v value=%q", i, ok, value)
		}
	}
	if got := reused.Load(); got < 6 {
		t.Fatalf("connection reused %d times across 8 fetches; pooled client not reusing", got)
	}
}

func TestFetchMissAndDecodeReject(t *testing.T) {
	rs := &recordServer{t: t, records: map[string][]byte{testKey(0): []byte("good")}}
	srv := httptest.NewServer(rs.handler())
	defer srv.Close()

	rejects := 0
	f := newFleet(t, "http://self:1", []string{srv.URL}, func(o *Options) {
		o.Decode = func(key string, body []byte) ([]byte, error) {
			if string(body) != "good" {
				rejects++
				return nil, fmt.Errorf("corrupt")
			}
			return body, nil
		}
	})

	if _, ok := f.Fetch(context.Background(), testKey(0)); !ok {
		t.Fatal("want hit for present record")
	}
	// 404 from the only remote is an authoritative miss.
	if _, ok := f.Fetch(context.Background(), testKey(1)); ok {
		t.Fatal("want miss for absent record")
	}
	// A record the Decode hook rejects must not surface as a hit.
	rs.records[testKey(2)] = []byte("evil")
	if _, ok := f.Fetch(context.Background(), testKey(2)); ok {
		t.Fatal("corrupt record surfaced as hit")
	}
	if rejects == 0 {
		t.Fatal("decode hook never consulted")
	}
	st := f.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Errors == 0 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, >=1 error", st)
	}
	if st.LookupCount < 2 || st.LookupSum <= 0 {
		t.Fatalf("latency summary not populated: %+v", st)
	}
}

// A slow first-ranked peer must not consume the whole budget: the
// hedge fires at the configured delay and the second-ranked peer
// answers.
func TestFetchHedgesToNextRanked(t *testing.T) {
	key := ""
	slow := &recordServer{t: t, records: map[string][]byte{}, delay: 2 * time.Second}
	fast := &recordServer{t: t, records: map[string][]byte{}}
	slowSrv := httptest.NewServer(slow.handler())
	fastSrv := httptest.NewServer(fast.handler())
	defer slowSrv.Close()
	defer fastSrv.Close()

	f := newFleet(t, "http://self:1", []string{slowSrv.URL, fastSrv.URL}, func(o *Options) {
		o.Hedge = 5 * time.Millisecond
		o.Budget = 3 * time.Second
	})
	// Find a key whose first-ranked remote is the slow peer.
	for i := 0; ; i++ {
		if k := testKey(i); f.rankRemotes(k)[0] == slowSrv.URL {
			key = k
			break
		}
	}
	slow.records[key] = []byte("slow-copy")
	fast.records[key] = []byte("fast-copy")

	start := time.Now()
	value, ok := f.Fetch(context.Background(), key)
	if !ok || string(value) != "fast-copy" {
		t.Fatalf("ok=%v value=%q, want hedged fast-copy", ok, value)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedged fetch took %v; hedge did not fire", elapsed)
	}
	if st := f.Stats(); st.Hedges != 1 {
		t.Fatalf("hedges = %d, want 1", st.Hedges)
	}
}

// A dead first-ranked peer fails over immediately (no hedge-delay
// wait), and with every peer dead Fetch returns a miss within budget.
func TestFetchFailsOverOnTransportError(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from here on

	live := &recordServer{t: t, records: map[string][]byte{}}
	liveSrv := httptest.NewServer(live.handler())
	defer liveSrv.Close()

	f := newFleet(t, "http://self:1", []string{deadURL, liveSrv.URL}, func(o *Options) {
		// A generous hedge proves failover is error-driven, not timer-driven.
		o.Hedge = time.Second
		o.Budget = 2 * time.Second
	})
	var key string
	for i := 0; ; i++ {
		if k := testKey(i); f.rankRemotes(k)[0] == deadURL {
			key = k
			break
		}
	}
	live.records[key] = []byte("survivor")

	start := time.Now()
	value, ok := f.Fetch(context.Background(), key)
	if !ok || string(value) != "survivor" {
		t.Fatalf("ok=%v value=%q, want failover hit", ok, value)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("failover took %v; should not wait for hedge timer", elapsed)
	}

	// Whole fleet dark: budget-bounded miss, not an error to the caller.
	liveSrv.Close()
	f2 := newFleet(t, "http://self:1", []string{deadURL, liveSrv.URL}, func(o *Options) {
		o.Budget = 200 * time.Millisecond
	})
	if _, ok := f2.Fetch(context.Background(), key); ok {
		t.Fatal("hit from a fully dark fleet")
	}
}

func TestPushDropsWhenFull(t *testing.T) {
	blocked := make(chan struct{})
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case blocked <- struct{}{}:
		default:
		}
		<-release
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	defer close(release)

	f := newFleet(t, "http://self:1", []string{srv.URL}, func(o *Options) {
		o.PushQueue = 1
		o.PushTimeout = 5 * time.Second
	})
	var key string
	for i := 0; ; i++ {
		if k := testKey(i); !f.Owns(k) {
			key = k
			break
		}
	}
	f.Push(key, []byte("v")) // sender picks this up and blocks
	<-blocked
	f.Push(key, []byte("v")) // fills the queue
	done := make(chan struct{})
	go func() {
		f.Push(key, []byte("v")) // queue full: must drop, never block
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Push blocked on a full queue")
	}
	if st := f.Stats(); st.PushDrops == 0 {
		t.Fatalf("stats = %+v, want PushDrops > 0", st)
	}
}

// Satellite regression test: Close drains the write-behind queue, so
// records computed just before shutdown still reach their owner.
func TestCloseDrainsPushQueue(t *testing.T) {
	rs := &recordServer{t: t, records: map[string][]byte{}}
	srv := httptest.NewServer(rs.handler())
	defer srv.Close()

	o := Options{Self: "http://self:1", Peers: []string{srv.URL}, PushQueue: 64}
	identityHooks(&o)
	f, err := New(o)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const n = 20
	queued := 0
	for i := 0; queued < n; i++ {
		if key := testKey(i); !f.Owns(key) {
			f.Push(key, []byte("v"))
			queued++
		}
	}
	f.Close(5 * time.Second)
	if got := rs.puts.Load(); got != n {
		t.Fatalf("owner received %d pushes after Close, want %d", got, n)
	}
	// Idempotent, and post-close pushes are silently dropped.
	f.Close(time.Second)
	f.Push(testKey(0), []byte("v"))
}

func TestWaitPushes(t *testing.T) {
	rs := &recordServer{t: t, records: map[string][]byte{}, delay: 20 * time.Millisecond}
	srv := httptest.NewServer(rs.handler())
	defer srv.Close()

	f := newFleet(t, "http://self:1", []string{srv.URL})
	var key string
	for i := 0; ; i++ {
		if k := testKey(i); !f.Owns(k) {
			key = k
			break
		}
	}
	for i := 0; i < 5; i++ {
		f.Push(key, []byte("v"))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.WaitPushes(ctx); err != nil {
		t.Fatalf("WaitPushes: %v", err)
	}
	if got := rs.puts.Load(); got != 5 {
		t.Fatalf("puts = %d after WaitPushes, want 5", got)
	}
}

func TestReachability(t *testing.T) {
	// Any HTTP response marks a peer reachable — the probe hits the
	// cache endpoint with a key nobody has, so a healthy peer answers
	// 404. (Probing /healthz would recurse: members embed this report
	// in their own /healthz.)
	up := httptest.NewServer(http.NotFoundHandler())
	defer up.Close()
	down := httptest.NewServer(http.NotFoundHandler())
	downURL := down.URL
	down.Close()

	f := newFleet(t, "http://self:1", []string{up.URL, downURL})
	got := f.Reachability(context.Background())
	if len(got) != 2 {
		t.Fatalf("reachability = %+v", got)
	}
	byURL := map[string]bool{}
	for _, p := range got {
		byURL[p.URL] = p.Reachable
	}
	if !byURL[up.URL] {
		t.Errorf("live peer reported unreachable: %+v", got)
	}
	if byURL[downURL] {
		t.Errorf("dead peer reported reachable: %+v", got)
	}
}
