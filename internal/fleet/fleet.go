// Package fleet makes a set of unschedd daemons behave as one logical
// cache. Every response the service memoizes is a pure function of a
// SHA-256 content-hash key, so identical keys yield bit-identical
// bytes on every daemon — which means fetching a peer's cached record
// is always safe, and almost always cheaper than recomputing an
// O(n^2) schedule locally.
//
// Membership is static: a list of base URLs (the -peers flag), one of
// which is this daemon itself. Each key is assigned an owner by
// rendezvous (highest-random-weight) hashing over the member URLs: no
// virtual-node configuration, and when a member joins or leaves, only
// the keys whose highest-scoring member changed move — every other
// key keeps its owner.
//
// The fleet layer is strictly an accelerator, never a dependency:
//
//   - A cache miss on a key this daemon does not own probes the
//     owner's GET /v1/cache/{key} under a short total budget, with a
//     hedged second attempt to the next-ranked peer once the probe
//     outlives the observed p90 lookup latency. Any timeout, error,
//     or corrupt record just falls back to local compute.
//   - A key this daemon computed but does not own is pushed to its
//     owner asynchronously (write-behind): a bounded queue drained by
//     one sender goroutine, dropping on overflow — the push queue can
//     never apply backpressure to the request path.
//
// All peer traffic shares one pooled http.Client with keep-alives and
// idle connections tuned for a small set of hosts, so steady-state
// lookups ride warm connections instead of re-handshaking per miss.
//
// The package is transport-and-framing only: records are opaque bytes
// validated by caller-supplied Encode/Decode hooks (the service wires
// these to its checksummed USCR cache-record codec), so fleet has no
// dependency on the service layer it accelerates.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a Fleet.
type Options struct {
	// Self is this daemon's own base URL, exactly as the rest of the
	// fleet reaches it. It anchors ownership: Owns compares the
	// rendezvous ranking's winner against it. Required.
	Self string
	// Peers lists the fleet's member base URLs. Self may (and should)
	// appear in the list; it is added if absent, so every member ranks
	// over the identical set. Order does not matter.
	Peers []string
	// Budget bounds one Fetch end to end, hedge included; a peer that
	// cannot answer inside it loses to local compute. <= 0 means 75ms.
	Budget time.Duration
	// Hedge fixes the delay before the hedged second attempt; 0 means
	// adaptive (the observed p90 lookup latency, clamped to
	// [500us, Budget/2]).
	Hedge time.Duration
	// PushQueue bounds the write-behind queue of records awaiting push
	// to their owner; overflow drops (and counts) the record rather
	// than block the request path. <= 0 means 256.
	PushQueue int
	// PushTimeout bounds one push request. <= 0 means 1s.
	PushTimeout time.Duration
	// CachePath is the internal cache endpoint's path prefix on every
	// member; the record for key lives at base + CachePath + key.
	// Empty means "/v1/cache/".
	CachePath string
	// MaxRecordBytes caps a fetched record body; larger responses are
	// treated as corrupt. <= 0 means 64 MB.
	MaxRecordBytes int64
	// Decode validates a fetched record body and extracts the cached
	// value. It must reject corrupt or mis-keyed records with an
	// error — the service wires the checksummed USCR codec here.
	// Required.
	Decode func(key string, body []byte) (value []byte, err error)
	// Encode frames a value as the record body pushed to its owner —
	// the inverse of Decode. Required.
	Encode func(key string, value []byte) (body []byte, err error)
}

// PeerStatus is one remote member's reachability, as reported by
// Reachability (the /healthz fleet extension).
type PeerStatus struct {
	URL       string
	Reachable bool
}

// Stats is a snapshot of the fleet's counters, surfaced on /metrics.
type Stats struct {
	Lookups    int64 // Fetch calls issued (one per non-owned cache miss)
	Hits       int64 // Fetch calls answered by a valid peer record
	Misses     int64 // probes answered 404 (the peer does not have it)
	Errors     int64 // probes that failed: transport, status, or corrupt record
	Hedges     int64 // hedged second attempts fired
	Pushes     int64 // records pushed to their owner
	PushErrors int64 // pushes that failed after leaving the queue
	PushDrops  int64 // records dropped because the push queue was full

	LookupSum   float64 // total seconds across completed lookups
	LookupCount int64   // completed lookups measured
	LookupP90   float64 // current p90 lookup seconds (0 with no data)
}

// Fleet is the peer layer of one daemon: rendezvous ownership over the
// member set, hedged record fetch, and the write-behind push queue.
// All methods are safe for concurrent use.
type Fleet struct {
	self    string
	members []string // normalized, deduped, sorted; includes self
	remotes []string // members minus self
	opts    Options
	client  *http.Client

	pushCh      chan pushItem
	pushPending atomic.Int64
	pushMu      sync.Mutex
	pushClosed  bool
	pushDone    chan struct{}

	lookups, hits, misses, errs, hedges atomic.Int64
	pushes, pushErrors, pushDrops       atomic.Int64
	latMu                               sync.Mutex
	latRing                             [latWindow]float64
	latLen, latNext                     int
	latSum                              float64
	latCount                            int64
}

// latWindow is the ring of recent lookup latencies the adaptive hedge
// delay is computed over.
const latWindow = 128

type pushItem struct {
	key   string
	value []byte
}

// New validates the membership and starts the push sender. The only
// error paths are malformed URLs and missing hooks — a misconfigured
// fleet must fail daemon startup loudly, not silently run solo.
func New(opts Options) (*Fleet, error) {
	if opts.Decode == nil || opts.Encode == nil {
		return nil, errors.New("fleet: Decode and Encode hooks are required")
	}
	self, err := normalizeURL(opts.Self)
	if err != nil {
		return nil, fmt.Errorf("fleet: self %q: %w", opts.Self, err)
	}
	seen := map[string]bool{self: true}
	members := []string{self}
	for _, p := range opts.Peers {
		u, err := normalizeURL(p)
		if err != nil {
			return nil, fmt.Errorf("fleet: peer %q: %w", p, err)
		}
		if !seen[u] {
			seen[u] = true
			members = append(members, u)
		}
	}
	sort.Strings(members)
	remotes := make([]string, 0, len(members)-1)
	for _, m := range members {
		if m != self {
			remotes = append(remotes, m)
		}
	}
	if opts.Budget <= 0 {
		opts.Budget = 75 * time.Millisecond
	}
	if opts.PushQueue <= 0 {
		opts.PushQueue = 256
	}
	if opts.PushTimeout <= 0 {
		opts.PushTimeout = time.Second
	}
	if opts.CachePath == "" {
		opts.CachePath = "/v1/cache/"
	}
	if opts.MaxRecordBytes <= 0 {
		opts.MaxRecordBytes = 64 << 20
	}
	f := &Fleet{
		self:    self,
		members: members,
		remotes: remotes,
		opts:    opts,
		// One pooled client for all peer traffic: lookups, pushes, and
		// health probes. The host set is tiny and fixed, so generous
		// per-host idle connections keep every steady-state lookup on a
		// warm connection — a per-fetch client would pay a TCP (and TLS)
		// handshake on every single miss.
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        4 * (len(members) + 1),
				MaxIdleConnsPerHost: 4,
				IdleConnTimeout:     90 * time.Second,
				// Records carry their own CRC and fleets are LAN/loopback
				// neighbors: transparent gzip would make every owner pay a
				// compression pass per lookup that costs more than the
				// bytes it saves, so ask for identity explicitly.
				DisableCompression: true,
			},
		},
		pushCh:   make(chan pushItem, opts.PushQueue),
		pushDone: make(chan struct{}),
	}
	go f.pushLoop()
	return f, nil
}

// normalizeURL canonicalizes a member base URL: absolute http(s),
// host required, trailing slash stripped (the cache path supplies its
// own), no query or fragment.
func normalizeURL(raw string) (string, error) {
	u, err := url.Parse(strings.TrimSpace(raw))
	if err != nil {
		return "", err
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("scheme %q (want http or https)", u.Scheme)
	}
	if u.Host == "" {
		return "", errors.New("missing host")
	}
	if u.RawQuery != "" || u.Fragment != "" {
		return "", errors.New("base URL must not carry a query or fragment")
	}
	u.Path = strings.TrimRight(u.Path, "/")
	return u.String(), nil
}

// Self returns the normalized self URL.
func (f *Fleet) Self() string { return f.self }

// Members returns the normalized member set, self included, sorted.
func (f *Fleet) Members() []string { return append([]string(nil), f.members...) }

// Remotes returns the members other than self, sorted.
func (f *Fleet) Remotes() []string { return append([]string(nil), f.remotes...) }

// --- rendezvous hashing ---------------------------------------------

// score is the rendezvous weight of (member, key): FNV-1a over the
// member URL, a separator, and the key. Keys are already uniform
// SHA-256 hex digests, so this cheap mix is more than enough to
// balance shards; what matters is that every member computes the
// identical ranking.
func score(member, key string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(member); i++ {
		h ^= uint64(member[i])
		h *= prime
	}
	h ^= 0xff // separator: "ab"+"c" must not collide with "a"+"bc"
	h *= prime
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return h
}

// Owner returns the member that owns key: the highest rendezvous
// score, ties broken toward the lexically smaller URL. Every member
// computes the same owner for the same key — that is the whole point.
func (f *Fleet) Owner(key string) string {
	best := f.members[0]
	bestScore := score(best, key)
	for _, m := range f.members[1:] {
		if s := score(m, key); s > bestScore || (s == bestScore && m < best) {
			best, bestScore = m, s
		}
	}
	return best
}

// Owns reports whether this daemon owns key.
func (f *Fleet) Owns(key string) bool { return f.Owner(key) == f.self }

// rankRemotes returns the remote members ordered by descending
// rendezvous score for key: the key's owner first (unless self owns
// it), then each successive fallback. This is the probe order of
// Fetch and the hedge target list.
func (f *Fleet) rankRemotes(key string) []string {
	type cand struct {
		url   string
		score uint64
	}
	cands := make([]cand, len(f.remotes))
	for i, m := range f.remotes {
		cands[i] = cand{url: m, score: score(m, key)}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].url < cands[j].url
	})
	ranked := make([]string, len(cands))
	for i, c := range cands {
		ranked[i] = c.url
	}
	return ranked
}

// --- fetch (peer fill) ----------------------------------------------

type probeResult struct {
	value []byte
	miss  bool // the peer answered 404: it does not have the record
	err   error
}

// Fetch asks the key's owner for its cached record, hedging to the
// next-ranked peer once the probe outlives the adaptive hedge delay,
// all under the configured budget. It returns the validated record
// value, or ok=false when no peer could answer in time — the caller
// computes locally; a peer can make it faster, never unavailable.
func (f *Fleet) Fetch(ctx context.Context, key string) (value []byte, ok bool) {
	targets := f.rankRemotes(key)
	if len(targets) == 0 {
		return nil, false
	}
	f.lookups.Add(1)
	ctx, cancel := context.WithTimeout(ctx, f.opts.Budget)
	defer cancel()
	start := time.Now()
	ch := make(chan probeResult, len(targets))
	probe := func(base string) {
		ch <- f.probe(ctx, base, key)
	}
	go probe(targets[0])
	inflight, next := 1, 1
	timer := time.NewTimer(f.hedgeDelay())
	defer timer.Stop()
	for inflight > 0 {
		select {
		case r := <-ch:
			inflight--
			switch {
			case r.err == nil && !r.miss:
				f.hits.Add(1)
				f.observe(time.Since(start))
				return r.value, true
			case r.miss:
				// An authoritative answer: the peer is healthy and does
				// not have the record. If nothing else is in flight there
				// is no point widening the search — the key is simply new.
				f.misses.Add(1)
				f.observe(time.Since(start))
				if inflight == 0 {
					return nil, false
				}
			default:
				// Transport failure or corrupt record: fail over to the
				// next-ranked peer immediately rather than waiting for the
				// hedge timer — the failed probe already spent its time.
				f.errs.Add(1)
				if inflight == 0 && next < len(targets) && ctx.Err() == nil {
					go probe(targets[next])
					next++
					inflight++
				}
			}
		case <-timer.C:
			if next < len(targets) && ctx.Err() == nil {
				f.hedges.Add(1)
				go probe(targets[next])
				next++
				inflight++
			}
		case <-ctx.Done():
			return nil, false
		}
	}
	return nil, false
}

// probe performs one GET against one member's cache endpoint and
// validates the record through the Decode hook.
func (f *Fleet) probe(ctx context.Context, base, key string) probeResult {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+f.opts.CachePath+key, nil)
	if err != nil {
		return probeResult{err: err}
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return probeResult{err: err}
	}
	defer func() {
		// Drain before close so the keep-alive connection returns to the
		// pool instead of being torn down with unread bytes on it.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		body, err := io.ReadAll(io.LimitReader(resp.Body, f.opts.MaxRecordBytes+1))
		if err != nil {
			return probeResult{err: err}
		}
		if int64(len(body)) > f.opts.MaxRecordBytes {
			return probeResult{err: fmt.Errorf("fleet: record for %s exceeds %d bytes", key, f.opts.MaxRecordBytes)}
		}
		value, err := f.opts.Decode(key, body)
		if err != nil {
			return probeResult{err: fmt.Errorf("fleet: corrupt record from %s: %w", base, err)}
		}
		return probeResult{value: value}
	case http.StatusNotFound:
		return probeResult{miss: true}
	default:
		return probeResult{err: fmt.Errorf("fleet: %s answered %d", base, resp.StatusCode)}
	}
}

// hedgeDelay returns how long the first probe may run before the
// hedged second attempt fires: the configured override, or the
// observed p90 lookup latency clamped to [500us, Budget/2] (a quarter
// of the budget before any data exists).
func (f *Fleet) hedgeDelay() time.Duration {
	if f.opts.Hedge > 0 {
		return f.opts.Hedge
	}
	p90 := f.quantile(0.9)
	d := time.Duration(p90 * float64(time.Second))
	if d <= 0 {
		return f.opts.Budget / 4
	}
	if min := 500 * time.Microsecond; d < min {
		d = min
	}
	if max := f.opts.Budget / 2; d > max {
		d = max
	}
	return d
}

// observe records one completed lookup's latency.
func (f *Fleet) observe(d time.Duration) {
	sec := d.Seconds()
	f.latMu.Lock()
	f.latRing[f.latNext] = sec
	f.latNext = (f.latNext + 1) % latWindow
	if f.latLen < latWindow {
		f.latLen++
	}
	f.latSum += sec
	f.latCount++
	f.latMu.Unlock()
}

// quantile computes q over the recent-latency ring; 0 with no data.
func (f *Fleet) quantile(q float64) float64 {
	f.latMu.Lock()
	n := f.latLen
	buf := make([]float64, n)
	copy(buf, f.latRing[:n])
	f.latMu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Float64s(buf)
	i := int(q * float64(n))
	if i >= n {
		i = n - 1
	}
	return buf[i]
}

// --- write-behind push ----------------------------------------------

// Push queues one locally computed record for asynchronous delivery
// to the key's owner. It never blocks: a full queue drops the record
// (the owner will simply recompute or be filled later) and a closed
// fleet ignores it. Call only for keys this daemon does not own.
func (f *Fleet) Push(key string, value []byte) {
	f.pushMu.Lock()
	if f.pushClosed {
		f.pushMu.Unlock()
		return
	}
	// Count under the lock so Close's drain wait cannot miss an item
	// that is incremented but not yet enqueued.
	select {
	case f.pushCh <- pushItem{key: key, value: value}:
		f.pushPending.Add(1)
		f.pushMu.Unlock()
	default:
		f.pushMu.Unlock()
		f.pushDrops.Add(1)
	}
}

// pushLoop is the single sender goroutine: it drains the queue and
// PUTs each record to its owner. It exits when the queue is closed
// AND empty, which is what lets Close drain cleanly.
func (f *Fleet) pushLoop() {
	defer close(f.pushDone)
	for item := range f.pushCh {
		f.sendPush(item)
		f.pushPending.Add(-1)
	}
}

// sendPush delivers one record to the key's current owner.
func (f *Fleet) sendPush(item pushItem) {
	owner := f.Owner(item.key)
	if owner == f.self {
		return // membership race; we already hold it
	}
	body, err := f.opts.Encode(item.key, item.value)
	if err != nil {
		f.pushErrors.Add(1)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), f.opts.PushTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, owner+f.opts.CachePath+item.key, strings.NewReader(string(body)))
	if err != nil {
		f.pushErrors.Add(1)
		return
	}
	resp, err := f.client.Do(req)
	if err != nil {
		f.pushErrors.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		f.pushErrors.Add(1)
		return
	}
	f.pushes.Add(1)
}

// WaitPushes blocks until every queued push has been delivered (or
// failed), or ctx expires. Close uses it as its drain step; tests use
// it to make write-behind deterministic.
func (f *Fleet) WaitPushes(ctx context.Context) error {
	for f.pushPending.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}

// Close drains the write-behind queue — a clean shutdown must not
// strand freshly computed records that their owners never saw — and
// stops the sender, waiting at most deadline. New pushes are dropped
// from the moment Close is called. Idempotent.
func (f *Fleet) Close(deadline time.Duration) {
	f.pushMu.Lock()
	already := f.pushClosed
	f.pushClosed = true
	if !already {
		close(f.pushCh)
	}
	f.pushMu.Unlock()
	select {
	case <-f.pushDone:
	case <-time.After(deadline):
		// Something is hung past its own PushTimeout; abandon the drain
		// rather than wedge shutdown. The sender goroutine exits when
		// its in-flight request times out.
	}
	f.client.CloseIdleConnections()
}

// --- reachability ----------------------------------------------------

// Reachability probes every remote member concurrently (250ms
// timeout each) and reports who answered. The probe targets the
// member's cache endpoint — the surface peer fill actually depends on
// — NOT its /healthz: members embed this report in their own /healthz,
// so probing /healthz would recurse fleet-wide. Any HTTP response
// counts as reachable (an all-zero hex key simply answers 404);
// unreachable means no response at all. Meant for the /healthz
// extension, not the hot path.
func (f *Fleet) Reachability(ctx context.Context) []PeerStatus {
	out := make([]PeerStatus, len(f.remotes))
	var wg sync.WaitGroup
	for i, base := range f.remotes {
		out[i].URL = base
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, 250*time.Millisecond)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, base+f.opts.CachePath+"00", nil)
			if err != nil {
				return
			}
			resp, err := f.client.Do(req)
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			out[i].Reachable = true
		}(i, base)
	}
	wg.Wait()
	return out
}

// Stats snapshots the counters for /metrics.
func (f *Fleet) Stats() Stats {
	f.latMu.Lock()
	sum, count := f.latSum, f.latCount
	f.latMu.Unlock()
	return Stats{
		Lookups:     f.lookups.Load(),
		Hits:        f.hits.Load(),
		Misses:      f.misses.Load(),
		Errors:      f.errs.Load(),
		Hedges:      f.hedges.Load(),
		Pushes:      f.pushes.Load(),
		PushErrors:  f.pushErrors.Load(),
		PushDrops:   f.pushDrops.Load(),
		LookupSum:   sum,
		LookupCount: count,
		LookupP90:   f.quantile(0.9),
	}
}
