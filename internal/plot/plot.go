// Package plot emits the repository's experiment figures in two
// forms: CSV series for external plotting and ASCII line charts for
// the terminal — the latter mirror the gnuplot figures of the paper
// closely enough to check shapes at a glance.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one labeled curve: X[i] maps to Y[i].
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// WriteCSV emits all series over the union of X values, one column per
// series, blank cells where a series has no sample at that X.
func WriteCSV(w io.Writer, series []Series) error {
	xs := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	header := []string{"x"}
	for _, s := range series {
		header = append(header, s.Label)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, x := range sorted {
		row := []string{trimFloat(x)}
		for _, s := range series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = trimFloat(s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Options configures an ASCII chart.
type Options struct {
	Width  int  // plot area columns (default 64)
	Height int  // plot area rows (default 20)
	LogX   bool // log2-scale the x axis
	Title  string
	XLabel string
	YLabel string
}

// ASCII renders the series as a character line chart. Each series gets
// a marker from a fixed palette; the legend maps markers to labels.
func ASCII(series []Series, opt Options) string {
	if opt.Width <= 0 {
		opt.Width = 64
	}
	if opt.Height <= 0 {
		opt.Height = 20
	}
	markers := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	tx := func(x float64) float64 {
		if opt.LogX {
			return math.Log2(x)
		}
		return x
	}
	any := false
	for _, s := range series {
		for i := range s.X {
			x, y := tx(s.X[i]), s.Y[i]
			if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) {
				continue
			}
			any = true
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if !any {
		return "(no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Zero-base the y axis when the data starts near zero, like the
	// paper's figures.
	if ymin > 0 && ymin < ymax/3 {
		ymin = 0
	}

	grid := make([][]byte, opt.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opt.Width))
	}
	for si, s := range series {
		mk := markers[si%len(markers)]
		for i := range s.X {
			x, y := tx(s.X[i]), s.Y[i]
			if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) {
				continue
			}
			col := int((x - xmin) / (xmax - xmin) * float64(opt.Width-1))
			row := opt.Height - 1 - int((y-ymin)/(ymax-ymin)*float64(opt.Height-1))
			if col >= 0 && col < opt.Width && row >= 0 && row < opt.Height {
				grid[row][col] = mk
			}
		}
	}

	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n", opt.Title)
	}
	for r, line := range grid {
		yVal := ymax - (ymax-ymin)*float64(r)/float64(opt.Height-1)
		fmt.Fprintf(&b, "%10.1f |%s|\n", yVal, string(line))
	}
	fmt.Fprintf(&b, "%10s +%s+\n", "", strings.Repeat("-", opt.Width))
	xl, xr := xmin, xmax
	unit := ""
	if opt.LogX {
		unit = " (log2)"
	}
	fmt.Fprintf(&b, "%10s  %-*.1f%*.1f%s\n", "", opt.Width/2, xl, opt.Width/2, xr, unit)
	if opt.XLabel != "" || opt.YLabel != "" {
		fmt.Fprintf(&b, "x: %s   y: %s\n", opt.XLabel, opt.YLabel)
	}
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Label)
	}
	return b.String()
}
