package plot

import (
	"bytes"
	"strings"
	"testing"
)

func sample() []Series {
	return []Series{
		{Label: "AC", X: []float64{16, 32, 64}, Y: []float64{1, 2, 4}},
		{Label: "LP", X: []float64{16, 32, 64}, Y: []float64{3, 3.5, 4.5}},
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "x,AC,LP" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("%d lines: %v", len(lines), lines)
	}
	if lines[1] != "16,1,3" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestWriteCSVSparseSeries(t *testing.T) {
	series := []Series{
		{Label: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
		{Label: "b", X: []float64{2, 3}, Y: []float64{5, 6}},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[1] != "1,10," {
		t.Errorf("sparse row = %q", lines[1])
	}
	if lines[3] != "3,,6" {
		t.Errorf("sparse row = %q", lines[3])
	}
}

func TestASCIIContainsMarkersAndLegend(t *testing.T) {
	out := ASCII(sample(), Options{Width: 40, Height: 10, Title: "test plot", LogX: true,
		XLabel: "bytes", YLabel: "ms"})
	for _, want := range []string{"test plot", "*", "+", "AC", "LP", "bytes", "ms", "(log2)"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII output missing %q:\n%s", want, out)
		}
	}
}

func TestASCIIEmpty(t *testing.T) {
	if out := ASCII(nil, Options{}); !strings.Contains(out, "no data") {
		t.Errorf("empty plot = %q", out)
	}
}

func TestASCIISinglePoint(t *testing.T) {
	s := []Series{{Label: "p", X: []float64{5}, Y: []float64{7}}}
	out := ASCII(s, Options{Width: 10, Height: 5})
	if !strings.Contains(out, "*") {
		t.Errorf("single point not plotted:\n%s", out)
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(5) != "5" {
		t.Errorf("trimFloat(5) = %q", trimFloat(5))
	}
	if trimFloat(2.5) != "2.5" {
		t.Errorf("trimFloat(2.5) = %q", trimFloat(2.5))
	}
}
