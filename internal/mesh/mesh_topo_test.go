package mesh_test

import (
	"testing"

	"unsched/internal/mesh"
	"unsched/internal/topo"
)

// Compile-time interface check. This lives in an external test
// package because topo now imports mesh (for Spec.Build), so an
// in-package test importing topo would be a cycle.
var _ topo.Topology = (*mesh.Mesh)(nil)

func TestOccupancyOverMesh(t *testing.T) {
	m := mesh.MustNew(4, 4, false)
	occ := topo.NewOccupancy(m)
	if !occ.CheckPath(0, 3) {
		t.Fatal("fresh table should be free")
	}
	occ.MarkPath(0, 3) // +X +X +X along row 0
	if occ.CheckPath(0, 1) {
		t.Error("first +X channel should be claimed")
	}
	if !occ.CheckPath(1, 0) {
		t.Error("reverse channel should be free")
	}
	if !occ.CheckPath(4, 7) {
		t.Error("row 1 should be free")
	}
	if got := occ.ClaimedCount(); got != 3 {
		t.Errorf("ClaimedCount = %d", got)
	}
	occ.Reset()
	if !occ.CheckPath(0, 1) {
		t.Error("reset should clear claims")
	}
}
