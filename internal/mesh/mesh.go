// Package mesh implements a 2D mesh (and torus) topology with
// dimension-ordered XY routing — the network of the iPSC/860's
// successors (Intel Paragon, and the Touchstone Delta the CalTech
// group moved to). Like e-cube on the hypercube, XY routing is
// deterministic, so the link-contention-avoiding scheduler works
// unchanged through the topo.Topology interface; this is the mesh
// generalization the paper's §5 parenthetical anticipates.
package mesh

import (
	"fmt"
)

// Mesh is a W x H grid of nodes. Node (x, y) has id y*W + x. Each
// grid edge is two directed channels; with Torus set, wraparound
// channels close each row and column.
type Mesh struct {
	w, h  int
	torus bool
}

// New returns a w x h mesh.
func New(w, h int, torus bool) (*Mesh, error) {
	if w < 1 || h < 1 || w*h < 2 {
		return nil, fmt.Errorf("mesh: dimensions %dx%d too small", w, h)
	}
	if torus && (w < 3 || h < 3) {
		// A 2-ring's wraparound duplicates the grid edge; routing
		// would be ambiguous.
		return nil, fmt.Errorf("mesh: torus needs at least 3x3, got %dx%d", w, h)
	}
	return &Mesh{w: w, h: h, torus: torus}, nil
}

// MustNew is New for known-good dimensions; it panics on error.
func MustNew(w, h int, torus bool) *Mesh {
	m, err := New(w, h, torus)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements topo.Topology.
func (m *Mesh) Name() string {
	kind := "mesh"
	if m.torus {
		kind = "torus"
	}
	return fmt.Sprintf("%s-%dx%d", kind, m.w, m.h)
}

// Nodes implements topo.Topology.
func (m *Mesh) Nodes() int { return m.w * m.h }

// Width and Height expose the grid shape.
func (m *Mesh) Width() int  { return m.w }
func (m *Mesh) Height() int { return m.h }

// Coord returns the (x, y) position of a node id.
func (m *Mesh) Coord(node int) (x, y int) { return node % m.w, node / m.w }

// ID returns the node id at (x, y).
func (m *Mesh) ID(x, y int) int { return y*m.w + x }

// Directed channel layout: four direction planes of w*h slots each.
// The +X channel of node v occupies plane 0 slot v (the channel from v
// toward x+1), -X plane 1, +Y plane 2, -Y plane 3. Mesh-edge slots at
// the boundary exist only on a torus; on a plain mesh they are never
// routed through, which wastes a few indices but keeps the arithmetic
// branch-free.
const (
	dirXPlus = iota
	dirXMinus
	dirYPlus
	dirYMinus
	dirCount
)

// NumChannels implements topo.Topology.
func (m *Mesh) NumChannels() int { return dirCount * m.w * m.h }

func (m *Mesh) channel(node, dir int) int { return dir*m.w*m.h + node }

// RouteIDs implements topo.Topology: dimension-ordered XY routing —
// resolve the X offset fully, then the Y offset. On a torus each axis
// takes the shorter way around (ties toward the positive direction).
func (m *Mesh) RouteIDs(src, dst int, buf []int) []int {
	if src < 0 || src >= m.Nodes() || dst < 0 || dst >= m.Nodes() {
		panic(fmt.Sprintf("mesh: route %d->%d outside %s", src, dst, m.Name()))
	}
	sx, sy := m.Coord(src)
	dx, dy := m.Coord(dst)

	x := sx
	for x != dx {
		step, dir := m.axisStep(x, dx, m.w)
		buf = append(buf, m.channel(m.ID(x, sy), dir))
		x = wrap(x+step, m.w)
	}
	y := sy
	for y != dy {
		step, dir := m.axisStepY(y, dy, m.h)
		buf = append(buf, m.channel(m.ID(dx, y), dir))
		y = wrap(y+step, m.h)
	}
	return buf
}

// axisStep picks the direction of travel along the X axis.
func (m *Mesh) axisStep(from, to, size int) (step, dir int) {
	if m.torus {
		fwd := wrap(to-from, size)
		if fwd <= size-fwd {
			return 1, dirXPlus
		}
		return -1, dirXMinus
	}
	if to > from {
		return 1, dirXPlus
	}
	return -1, dirXMinus
}

func (m *Mesh) axisStepY(from, to, size int) (step, dir int) {
	if m.torus {
		fwd := wrap(to-from, size)
		if fwd <= size-fwd {
			return 1, dirYPlus
		}
		return -1, dirYMinus
	}
	if to > from {
		return 1, dirYPlus
	}
	return -1, dirYMinus
}

func wrap(v, size int) int {
	v %= size
	if v < 0 {
		v += size
	}
	return v
}

// Hops implements topo.Topology.
func (m *Mesh) Hops(src, dst int) int {
	sx, sy := m.Coord(src)
	dx, dy := m.Coord(dst)
	return m.axisDist(sx, dx, m.w) + m.axisDist(sy, dy, m.h)
}

// Diameter implements topo.DiameterHinter: opposite corners on a
// mesh, half the ring length per axis on a torus.
func (m *Mesh) Diameter() int {
	if m.torus {
		return m.w/2 + m.h/2
	}
	return (m.w - 1) + (m.h - 1)
}

func (m *Mesh) axisDist(a, b, size int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if m.torus && size-d < d {
		d = size - d
	}
	return d
}

// String implements fmt.Stringer.
func (m *Mesh) String() string {
	return fmt.Sprintf("%s (%d nodes)", m.Name(), m.Nodes())
}
