package mesh

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4, false); err == nil {
		t.Error("0-width accepted")
	}
	if _, err := New(1, 1, false); err == nil {
		t.Error("single node accepted")
	}
	if _, err := New(2, 2, true); err == nil {
		t.Error("2x2 torus accepted")
	}
	m, err := New(8, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes() != 32 || m.Width() != 8 || m.Height() != 4 {
		t.Errorf("shape: %v", m)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0,0) did not panic")
		}
	}()
	MustNew(0, 0, false)
}

func TestCoordIDRoundTrip(t *testing.T) {
	m := MustNew(5, 7, false)
	for id := 0; id < m.Nodes(); id++ {
		x, y := m.Coord(id)
		if m.ID(x, y) != id {
			t.Fatalf("round trip broke at %d", id)
		}
	}
}

func TestNames(t *testing.T) {
	if MustNew(4, 4, false).Name() != "mesh-4x4" {
		t.Error("mesh name")
	}
	if MustNew(4, 4, true).Name() != "torus-4x4" {
		t.Error("torus name")
	}
}

func TestXYRouteShape(t *testing.T) {
	m := MustNew(4, 4, false)
	// (0,0) -> (2,1): two +X hops then one +Y hop.
	route := m.RouteIDs(m.ID(0, 0), m.ID(2, 1), nil)
	want := []int{
		m.channel(m.ID(0, 0), dirXPlus),
		m.channel(m.ID(1, 0), dirXPlus),
		m.channel(m.ID(2, 0), dirYPlus),
	}
	if len(route) != len(want) {
		t.Fatalf("route %v, want %v", route, want)
	}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("route %v, want %v", route, want)
		}
	}
}

func TestRouteLengthEqualsHops(t *testing.T) {
	for _, torus := range []bool{false, true} {
		m := MustNew(5, 4, torus)
		for src := 0; src < m.Nodes(); src++ {
			for dst := 0; dst < m.Nodes(); dst++ {
				route := m.RouteIDs(src, dst, nil)
				if len(route) != m.Hops(src, dst) {
					t.Fatalf("torus=%v %d->%d: route %d, hops %d",
						torus, src, dst, len(route), m.Hops(src, dst))
				}
			}
		}
	}
}

func TestTorusTakesShortWay(t *testing.T) {
	m := MustNew(8, 3, true)
	// (0,0) -> (7,0): one -X wraparound hop, not 7 +X hops.
	if got := m.Hops(m.ID(0, 0), m.ID(7, 0)); got != 1 {
		t.Errorf("wraparound hops = %d, want 1", got)
	}
	flat := MustNew(8, 3, false)
	if got := flat.Hops(flat.ID(0, 0), flat.ID(7, 0)); got != 7 {
		t.Errorf("mesh hops = %d, want 7", got)
	}
}

func TestChannelIndicesDenseAndDistinct(t *testing.T) {
	m := MustNew(4, 4, true)
	seen := map[int]bool{}
	for src := 0; src < m.Nodes(); src++ {
		for dst := 0; dst < m.Nodes(); dst++ {
			for _, id := range m.RouteIDs(src, dst, nil) {
				if id < 0 || id >= m.NumChannels() {
					t.Fatalf("channel %d out of range", id)
				}
				seen[id] = true
			}
		}
	}
	if len(seen) == 0 {
		t.Fatal("no channels used")
	}
}

// Property: opposite directions of the same hop use different channels
// (full duplex).
func TestOppositeDirectionsDistinct(t *testing.T) {
	m := MustNew(6, 6, false)
	f := func(aRaw, bRaw uint8) bool {
		a := int(aRaw) % m.Nodes()
		b := int(bRaw) % m.Nodes()
		if a == b {
			return true
		}
		fwd := m.RouteIDs(a, b, nil)
		rev := m.RouteIDs(b, a, nil)
		for _, f := range fwd {
			for _, r := range rev {
				if f == r {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoutePanicsOutOfRange(t *testing.T) {
	m := MustNew(4, 4, false)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range route did not panic")
		}
	}()
	m.RouteIDs(0, 99, nil)
}
