package hypercube

// Occupancy is a per-phase channel-claim table: the dense-array
// analogue of the paper's n x n PATHS matrix (§5 notes that "for
// regular topologies like mesh and hypercube, the size of PATHS can be
// much smaller"). It supports the Check_Path / Mark_Path operations
// used by RS_NL.
//
// Claims are tracked per directed channel because iPSC/860 links are
// full-duplex: two circuits may cross the same physical wire in
// opposite directions without contention (this is what makes pairwise
// exchange concurrent, and what makes the LP algorithm's XOR
// permutations contention-free). Clearing is O(1) amortized via an
// epoch counter, so a scheduler iterating over many phases does not
// pay O(channels) per phase.
type Occupancy struct {
	cube  *Cube
	epoch uint32
	marks []uint32 // marks[channelIndex] == epoch means claimed this phase
	buf   []Channel
}

// NewOccupancy returns an empty occupancy table for the cube.
func NewOccupancy(c *Cube) *Occupancy {
	return &Occupancy{
		cube:  c,
		epoch: 1,
		marks: make([]uint32, c.NumChannels()),
	}
}

// Reset clears all claims; O(1) amortized.
func (o *Occupancy) Reset() {
	o.epoch++
	if o.epoch == 0 { // wrapped: flush the whole table once per 2^32 resets
		for i := range o.marks {
			o.marks[i] = 0
		}
		o.epoch = 1
	}
}

// CheckPath reports whether the e-cube route src->dst is entirely
// unclaimed in the current phase. It corresponds to the paper's
// Check_Path(x, y). A zero-length route (src == dst) is always free.
func (o *Occupancy) CheckPath(src, dst int) bool {
	o.buf = o.cube.Route(src, dst, o.buf[:0])
	for _, ch := range o.buf {
		if o.marks[o.cube.ChannelIndex(ch)] == o.epoch {
			return false
		}
	}
	return true
}

// MarkPath claims every channel on the e-cube route src->dst for the
// current phase. It corresponds to the paper's Mark_Path(x, y).
func (o *Occupancy) MarkPath(src, dst int) {
	o.buf = o.cube.Route(src, dst, o.buf[:0])
	for _, ch := range o.buf {
		o.marks[o.cube.ChannelIndex(ch)] = o.epoch
	}
}

// Claimed reports whether a specific channel is claimed in this phase.
func (o *Occupancy) Claimed(ch Channel) bool {
	return o.marks[o.cube.ChannelIndex(ch)] == o.epoch
}

// ClaimedCount returns the number of channels currently claimed.
// O(channels); intended for tests and trace output.
func (o *Occupancy) ClaimedCount() int {
	n := 0
	for _, m := range o.marks {
		if m == o.epoch {
			n++
		}
	}
	return n
}
