package hypercube

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidDimensions(t *testing.T) {
	for dim := 0; dim <= 10; dim++ {
		c, err := New(dim)
		if err != nil {
			t.Fatalf("New(%d): %v", dim, err)
		}
		if c.Dim() != dim {
			t.Errorf("Dim() = %d, want %d", c.Dim(), dim)
		}
		if c.Nodes() != 1<<uint(dim) {
			t.Errorf("Nodes() = %d, want %d", c.Nodes(), 1<<uint(dim))
		}
	}
}

func TestNewInvalidDimensions(t *testing.T) {
	for _, dim := range []int{-1, -5, 31, 64} {
		if _, err := New(dim); err == nil {
			t.Errorf("New(%d): want error, got nil", dim)
		}
	}
}

func TestForNodes(t *testing.T) {
	cases := []struct {
		n    int
		dim  int
		fail bool
	}{
		{1, 0, false},
		{2, 1, false},
		{64, 6, false},
		{1024, 10, false},
		{0, 0, true},
		{-4, 0, true},
		{3, 0, true},
		{63, 0, true},
		{65, 0, true},
	}
	for _, tc := range cases {
		c, err := ForNodes(tc.n)
		if tc.fail {
			if err == nil {
				t.Errorf("ForNodes(%d): want error", tc.n)
			}
			continue
		}
		if err != nil {
			t.Errorf("ForNodes(%d): %v", tc.n, err)
			continue
		}
		if c.Dim() != tc.dim {
			t.Errorf("ForNodes(%d).Dim() = %d, want %d", tc.n, c.Dim(), tc.dim)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(-1) did not panic")
		}
	}()
	MustNew(-1)
}

func TestNeighbor(t *testing.T) {
	c := MustNew(6)
	if got := c.Neighbor(0, 0); got != 1 {
		t.Errorf("Neighbor(0,0) = %d, want 1", got)
	}
	if got := c.Neighbor(5, 2); got != 1 {
		t.Errorf("Neighbor(5,2) = %d, want 1", got)
	}
	// Involution: neighbor of neighbor is self.
	for node := 0; node < c.Nodes(); node++ {
		for d := 0; d < c.Dim(); d++ {
			if got := c.Neighbor(c.Neighbor(node, d), d); got != node {
				t.Fatalf("Neighbor involution broken at node %d dim %d", node, d)
			}
		}
	}
}

func TestDistance(t *testing.T) {
	if Distance(0, 0) != 0 {
		t.Error("Distance(0,0) != 0")
	}
	if Distance(0, 63) != 6 {
		t.Error("Distance(0,63) != 6")
	}
	if Distance(0b1010, 0b0101) != 4 {
		t.Error("Distance(1010,0101) != 4")
	}
}

func TestLinkBetween(t *testing.T) {
	l := LinkBetween(4, 5)
	if l.Lo != 4 || l.Dim != 0 {
		t.Errorf("LinkBetween(4,5) = %+v, want {4,0}", l)
	}
	// Order-independent.
	if LinkBetween(5, 4) != l {
		t.Error("LinkBetween not symmetric")
	}
}

func TestLinkBetweenPanicsOnNonAdjacent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LinkBetween(0,3) did not panic")
		}
	}()
	LinkBetween(0, 3)
}

func TestLinkIndexDenseAndUnique(t *testing.T) {
	for dim := 1; dim <= 7; dim++ {
		c := MustNew(dim)
		seen := make(map[int]Link)
		count := 0
		for node := 0; node < c.Nodes(); node++ {
			for d := 0; d < c.Dim(); d++ {
				nb := c.Neighbor(node, d)
				if nb < node {
					continue // count each undirected link once
				}
				l := LinkBetween(node, nb)
				idx := c.LinkIndex(l)
				if idx < 0 || idx >= c.NumLinks() {
					t.Fatalf("dim %d: LinkIndex(%v) = %d out of [0,%d)", dim, l, idx, c.NumLinks())
				}
				if prev, dup := seen[idx]; dup {
					t.Fatalf("dim %d: LinkIndex collision: %v and %v both map to %d", dim, prev, l, idx)
				}
				seen[idx] = l
				count++
			}
		}
		if count != c.NumLinks() {
			t.Fatalf("dim %d: enumerated %d links, NumLinks() = %d", dim, count, c.NumLinks())
		}
	}
}

func TestRouteBasics(t *testing.T) {
	c := MustNew(6)
	// Empty route for src == dst.
	if r := c.Route(17, 17, nil); len(r) != 0 {
		t.Errorf("Route(17,17) has %d links, want 0", len(r))
	}
	// One-hop route.
	r := c.Route(0, 1, nil)
	if len(r) != 1 || r[0] != (Channel{Link: Link{Lo: 0, Dim: 0}, Up: true}) {
		t.Errorf("Route(0,1) = %v", r)
	}
	// Reverse direction uses the down channel of the same wire.
	r = c.Route(1, 0, nil)
	if len(r) != 1 || r[0] != (Channel{Link: Link{Lo: 0, Dim: 0}, Up: false}) {
		t.Errorf("Route(1,0) = %v", r)
	}
	// e-cube fixes LSB first: 0 -> 6 (binary 110) goes 0 -> 2 -> 6.
	nodes := c.RouteNodes(0, 6)
	want := []int{0, 2, 6}
	if len(nodes) != len(want) {
		t.Fatalf("RouteNodes(0,6) = %v, want %v", nodes, want)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("RouteNodes(0,6) = %v, want %v", nodes, want)
		}
	}
}

// Property: route length equals Hamming distance for all pairs.
func TestRouteLengthEqualsHamming(t *testing.T) {
	c := MustNew(6)
	for src := 0; src < c.Nodes(); src++ {
		for dst := 0; dst < c.Nodes(); dst++ {
			r := c.Route(src, dst, nil)
			if len(r) != Distance(src, dst) {
				t.Fatalf("route %d->%d has %d links, Hamming %d", src, dst, len(r), Distance(src, dst))
			}
		}
	}
}

// Property: e-cube route fixes bits in strictly increasing dimension order.
func TestRouteDimensionOrder(t *testing.T) {
	c := MustNew(8)
	f := func(a, b uint16) bool {
		src := int(a) % c.Nodes()
		dst := int(b) % c.Nodes()
		r := c.Route(src, dst, nil)
		for i := 1; i < len(r); i++ {
			if r[i].Link.Dim <= r[i-1].Link.Dim {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the route actually connects src to dst (each link adjacent
// to the previous node, ending at dst).
func TestRouteConnects(t *testing.T) {
	c := MustNew(8)
	f := func(a, b uint16) bool {
		src := int(a) % c.Nodes()
		dst := int(b) % c.Nodes()
		nodes := c.RouteNodes(src, dst)
		if nodes[0] != src || nodes[len(nodes)-1] != dst {
			return false
		}
		for i := 1; i < len(nodes); i++ {
			if Distance(nodes[i-1], nodes[i]) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoutePanicsOutsideCube(t *testing.T) {
	c := MustNew(3)
	defer func() {
		if recover() == nil {
			t.Fatal("Route outside cube did not panic")
		}
	}()
	c.Route(0, 9, nil)
}

func TestRoutesDisjoint(t *testing.T) {
	c := MustNew(6)
	// Same source bit-0 link shared: 0->1 and 0->3 (0->1->3) share link 0--1.
	if c.RoutesDisjoint(0, 1, 0, 3) {
		t.Error("routes 0->1 and 0->3 should share link 0--1")
	}
	// Parallel edges in different subcubes are disjoint.
	if !c.RoutesDisjoint(0, 1, 2, 3) {
		t.Error("routes 0->1 and 2->3 should be disjoint")
	}
}

func TestGrayCode(t *testing.T) {
	// Consecutive Gray codes differ by one bit.
	for i := 1; i < 1024; i++ {
		if bits.OnesCount(uint(GrayCode(i)^GrayCode(i-1))) != 1 {
			t.Fatalf("Gray codes %d and %d differ in != 1 bit", i-1, i)
		}
	}
	// Inverse property.
	for i := 0; i < 1024; i++ {
		if InverseGray(GrayCode(i)) != i {
			t.Fatalf("InverseGray(GrayCode(%d)) != %d", i, i)
		}
	}
}

func TestXORPairsIsPerfectMatching(t *testing.T) {
	c := MustNew(6)
	for k := 1; k < c.Nodes(); k++ {
		pairs := c.XORPairs(k)
		if len(pairs) != c.Nodes()/2 {
			t.Fatalf("k=%d: %d pairs, want %d", k, len(pairs), c.Nodes()/2)
		}
		seen := make(map[int]bool)
		for _, p := range pairs {
			if p[0]^p[1] != k {
				t.Fatalf("k=%d: pair %v does not XOR to k", k, p)
			}
			if seen[p[0]] || seen[p[1]] {
				t.Fatalf("k=%d: node repeated in matching", k)
			}
			seen[p[0]] = true
			seen[p[1]] = true
		}
	}
}

func TestXORPairsInvalidK(t *testing.T) {
	c := MustNew(4)
	if c.XORPairs(0) != nil {
		t.Error("XORPairs(0) should be nil")
	}
	if c.XORPairs(16) != nil {
		t.Error("XORPairs(n) should be nil")
	}
}

// The classic theorem the LP algorithm relies on: for any k, the e-cube
// routes of all pairs (i, i^k) are mutually link-disjoint. Verify
// exhaustively on the paper's 64-node machine.
func TestXORPermutationLinkDisjointOn64Nodes(t *testing.T) {
	c := MustNew(6)
	occ := NewOccupancy(c)
	for k := 1; k < c.Nodes(); k++ {
		occ.Reset()
		// Every node sends concurrently (both directions of every
		// exchange); at channel granularity the full permutation is
		// contention-free.
		for i := 0; i < c.Nodes(); i++ {
			j := i ^ k
			if !occ.CheckPath(i, j) {
				t.Fatalf("k=%d: route %d->%d conflicts with earlier circuit", k, i, j)
			}
			occ.MarkPath(i, j)
		}
	}
}

func TestOccupancyCheckMark(t *testing.T) {
	c := MustNew(6)
	occ := NewOccupancy(c)
	if !occ.CheckPath(0, 7) {
		t.Fatal("empty table: path should be free")
	}
	occ.MarkPath(0, 7) // 0->1->3->7 claims up-channels in dims 0,1,2
	if occ.CheckPath(0, 1) {
		t.Error("up channel 0->1 should be claimed")
	}
	if occ.CheckPath(1, 3) {
		t.Error("up channel 1->3 should be claimed")
	}
	if !occ.CheckPath(1, 0) {
		t.Error("down channel 1->0 should be free (full duplex)")
	}
	if !occ.CheckPath(8, 9) {
		t.Error("unrelated channel 8->9 should be free")
	}
	if got := occ.ClaimedCount(); got != 3 {
		t.Errorf("ClaimedCount = %d, want 3", got)
	}
	occ.Reset()
	if !occ.CheckPath(0, 1) {
		t.Error("after Reset all links should be free")
	}
	if got := occ.ClaimedCount(); got != 0 {
		t.Errorf("ClaimedCount after reset = %d, want 0", got)
	}
}

func TestOccupancySelfRouteAlwaysFree(t *testing.T) {
	c := MustNew(4)
	occ := NewOccupancy(c)
	for i := 0; i < c.Nodes(); i++ {
		occ.MarkPath(i, (i+1)%c.Nodes())
	}
	for i := 0; i < c.Nodes(); i++ {
		if !occ.CheckPath(i, i) {
			t.Fatalf("self route at node %d should always be free", i)
		}
	}
}

func TestOccupancyEpochReuse(t *testing.T) {
	c := MustNew(5)
	occ := NewOccupancy(c)
	r := rand.New(rand.NewSource(7))
	// Many reset cycles must not leak claims between phases.
	for phase := 0; phase < 200; phase++ {
		occ.Reset()
		src := r.Intn(c.Nodes())
		dst := r.Intn(c.Nodes())
		if !occ.CheckPath(src, dst) {
			t.Fatalf("phase %d: fresh table has stale claim on %d->%d", phase, src, dst)
		}
		occ.MarkPath(src, dst)
	}
}

func TestRecursiveDoublingSchedule(t *testing.T) {
	c := MustNew(6)
	dims := c.RecursiveDoublingSchedule()
	if len(dims) != 6 {
		t.Fatalf("schedule length %d, want 6", len(dims))
	}
	// Simulate allgather coverage: after round r, each node's set doubles.
	sets := make([]map[int]bool, c.Nodes())
	for i := range sets {
		sets[i] = map[int]bool{i: true}
	}
	for _, d := range dims {
		next := make([]map[int]bool, c.Nodes())
		for i := range next {
			next[i] = make(map[int]bool)
			for k := range sets[i] {
				next[i][k] = true
			}
			for k := range sets[c.Neighbor(i, d)] {
				next[i][k] = true
			}
		}
		sets = next
	}
	for i, s := range sets {
		if len(s) != c.Nodes() {
			t.Fatalf("node %d holds %d pieces after concatenate, want %d", i, len(s), c.Nodes())
		}
	}
}

func TestStringers(t *testing.T) {
	c := MustNew(6)
	if c.String() == "" {
		t.Error("Cube.String empty")
	}
	l := Link{Lo: 4, Dim: 1}
	if l.String() != "link(4--6)" {
		t.Errorf("Link.String() = %q", l.String())
	}
}
