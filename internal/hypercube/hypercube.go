// Package hypercube models the binary hypercube interconnection
// network of the Intel iPSC/860 and its deterministic e-cube routing.
//
// A d-dimensional hypercube connects n = 2^d nodes; nodes i and j are
// adjacent iff their addresses differ in exactly one bit. The iPSC/860
// uses circuit-switched routing with the e-cube algorithm: the route
// from src to dst fixes the differing address bits one at a time from
// the least significant bit to the most significant bit. Because the
// routing is deterministic, the set of links a message will claim is a
// pure function of (src, dst), which is exactly what the link-
// contention-avoiding scheduler (RS_NL) relies on.
package hypercube

import (
	"fmt"
	"math/bits"
)

// Cube describes a hypercube of 2^Dim nodes.
type Cube struct {
	dim int
	n   int
}

// New returns the hypercube with 2^dim nodes. dim must be in [0, 30].
func New(dim int) (*Cube, error) {
	if dim < 0 || dim > 30 {
		return nil, fmt.Errorf("hypercube: dimension %d out of range [0,30]", dim)
	}
	return &Cube{dim: dim, n: 1 << uint(dim)}, nil
}

// MustNew is New for known-good dimensions; it panics on error.
func MustNew(dim int) *Cube {
	c, err := New(dim)
	if err != nil {
		panic(err)
	}
	return c
}

// ForNodes returns the smallest hypercube with at least n nodes, or an
// error if n is not a positive power of two (the iPSC/860 allocates
// subcubes, so node counts are always powers of two).
func ForNodes(n int) (*Cube, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("hypercube: node count %d is not a positive power of two", n)
	}
	return New(bits.TrailingZeros(uint(n)))
}

// Dim returns the cube dimension.
func (c *Cube) Dim() int { return c.dim }

// Nodes returns the number of nodes, 2^Dim.
func (c *Cube) Nodes() int { return c.n }

// Contains reports whether node id is a valid address in the cube.
func (c *Cube) Contains(node int) bool { return node >= 0 && node < c.n }

// Neighbor returns the neighbor of node across dimension d.
func (c *Cube) Neighbor(node, d int) int {
	return node ^ (1 << uint(d))
}

// Distance returns the Hamming distance between two node addresses,
// which is the e-cube route length in hops.
func Distance(a, b int) int {
	return bits.OnesCount(uint(a ^ b))
}

// Link identifies one undirected physical link of the cube: the link
// in dimension Dim attached to the endpoint with the lower address.
// Lo always has bit Dim clear, so (Lo, Dim) names each link uniquely.
type Link struct {
	Lo  int // lower-addressed endpoint (bit Dim is 0)
	Dim int // dimension the link crosses
}

// Channel is one direction of a physical link. iPSC/860 links are
// full-duplex: the two directions carry independent circuits, which is
// why a pairwise exchange can proceed concurrently and why the XOR
// permutations used by LP are contention-free (their routes are
// disjoint at channel granularity, not wire granularity).
type Channel struct {
	Link Link
	Up   bool // true when traversed from Lo toward the higher address
}

// LinkBetween returns the link joining two adjacent nodes. It panics
// if the nodes are not adjacent; adjacency is a static property of the
// caller's loop structure, not runtime input.
func LinkBetween(a, b int) Link {
	x := a ^ b
	if bits.OnesCount(uint(x)) != 1 {
		panic(fmt.Sprintf("hypercube: nodes %d and %d are not adjacent", a, b))
	}
	d := bits.TrailingZeros(uint(x))
	lo := a
	if b < a {
		lo = b
	}
	return Link{Lo: lo, Dim: d}
}

// Index maps the link to a dense index in [0, NumLinks()) for use as
// an array subscript by the link-occupancy tables (the PATHS structure
// of the paper, stored densely instead of n x n).
func (c *Cube) LinkIndex(l Link) int {
	// Links in dimension d: the 2^(dim-1) nodes with bit d clear.
	// Compact the address by deleting bit d.
	lowMask := (1 << uint(l.Dim)) - 1
	compact := (l.Lo & lowMask) | ((l.Lo >> uint(l.Dim+1)) << uint(l.Dim))
	return l.Dim*(c.n/2) + compact
}

// NumLinks returns the number of physical links: dim * 2^(dim-1).
func (c *Cube) NumLinks() int {
	if c.dim == 0 {
		return 0
	}
	return c.dim * (c.n / 2)
}

// NumChannels returns the number of directed channels, 2 * NumLinks().
func (c *Cube) NumChannels() int { return 2 * c.NumLinks() }

// ChannelIndex maps a directed channel to a dense index in
// [0, NumChannels()).
func (c *Cube) ChannelIndex(ch Channel) int {
	idx := 2 * c.LinkIndex(ch.Link)
	if ch.Up {
		idx++
	}
	return idx
}

// Route appends the e-cube route from src to dst to buf, as directed
// channels, and returns the extended slice. The route fixes address
// bits LSB-first, exactly as the iPSC/860 hardware does. An empty
// route (src == dst) appends nothing. Route panics if either node is
// outside the cube; node IDs come from schedule structures that are
// validated on construction.
func (c *Cube) Route(src, dst int, buf []Channel) []Channel {
	if !c.Contains(src) || !c.Contains(dst) {
		panic(fmt.Sprintf("hypercube: route %d->%d outside %d-cube", src, dst, c.dim))
	}
	cur := src
	diff := src ^ dst
	for diff != 0 {
		d := bits.TrailingZeros(uint(diff))
		next := cur ^ (1 << uint(d))
		buf = append(buf, Channel{Link: LinkBetween(cur, next), Up: next > cur})
		cur = next
		diff &^= 1 << uint(d)
	}
	return buf
}

// RouteNodes returns the node sequence visited by the e-cube route
// from src to dst, including both endpoints.
func (c *Cube) RouteNodes(src, dst int) []int {
	nodes := []int{src}
	cur := src
	diff := src ^ dst
	for diff != 0 {
		d := bits.TrailingZeros(uint(diff))
		cur ^= 1 << uint(d)
		nodes = append(nodes, cur)
		diff &^= 1 << uint(d)
	}
	return nodes
}

// RoutesDisjoint reports whether the e-cube routes a1->b1 and a2->b2
// share any directed channel. It allocates nothing beyond two small
// route buffers and is intended for tests and validators; the
// scheduler uses an occupancy table instead.
func (c *Cube) RoutesDisjoint(a1, b1, a2, b2 int) bool {
	var buf1, buf2 [32]Channel
	r1 := c.Route(a1, b1, buf1[:0])
	r2 := c.Route(a2, b2, buf2[:0])
	for _, l1 := range r1 {
		for _, l2 := range r2 {
			if l1 == l2 {
				return false
			}
		}
	}
	return true
}

// GrayCode returns the i-th binary-reflected Gray code. Consecutive
// Gray codes differ in one bit, so walking Gray codes walks a
// Hamiltonian path on the cube.
func GrayCode(i int) int { return i ^ (i >> 1) }

// InverseGray returns j such that GrayCode(j) == g.
func InverseGray(g int) int {
	j := 0
	for g != 0 {
		j ^= g
		g >>= 1
	}
	return j
}

// XORPairs enumerates the pairing used by the LP (linear permutation)
// algorithm: in phase k, node i exchanges with node i XOR k. The
// pairing is an involution (a perfect matching of the node set) for
// every k in [1, n-1], and the e-cube routes of distinct pairs in the
// same phase are mutually link-disjoint — the classic property that
// makes XOR permutations congestion-free on hypercubes.
func (c *Cube) XORPairs(k int) [][2]int {
	if k <= 0 || k >= c.n {
		return nil
	}
	pairs := make([][2]int, 0, c.n/2)
	for i := 0; i < c.n; i++ {
		j := i ^ k
		if i < j {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	return pairs
}

// RecursiveDoublingSchedule returns, for each of dim rounds, the
// dimension crossed in that round. In round r every node exchanges
// with its neighbor across dimension r; after all rounds each node
// holds the combined data of all nodes. This is the concatenate
// (allgather) schedule referenced in the paper (§4: "all processors
// can participate in a concatenate operation"), used by the runtime
// scheduling path to assemble the full COM matrix on every node.
func (c *Cube) RecursiveDoublingSchedule() []int {
	dims := make([]int, c.dim)
	for i := range dims {
		dims[i] = i
	}
	return dims
}

// Name implements topo.Topology.
func (c *Cube) Name() string { return fmt.Sprintf("hypercube-%d", c.dim) }

// RouteIDs implements topo.Topology: the e-cube route as dense
// directed-channel indices.
func (c *Cube) RouteIDs(src, dst int, buf []int) []int {
	if !c.Contains(src) || !c.Contains(dst) {
		panic(fmt.Sprintf("hypercube: route %d->%d outside %d-cube", src, dst, c.dim))
	}
	cur := src
	diff := src ^ dst
	for diff != 0 {
		d := bits.TrailingZeros(uint(diff))
		next := cur ^ (1 << uint(d))
		buf = append(buf, c.ChannelIndex(Channel{Link: LinkBetween(cur, next), Up: next > cur}))
		cur = next
		diff &^= 1 << uint(d)
	}
	return buf
}

// Hops implements topo.Topology.
func (c *Cube) Hops(src, dst int) int { return Distance(src, dst) }

// Diameter implements topo.DiameterHinter: the longest e-cube route is
// between complementary addresses and crosses every dimension once.
func (c *Cube) Diameter() int { return c.dim }

// String implements fmt.Stringer.
func (c *Cube) String() string {
	return fmt.Sprintf("hypercube(dim=%d, nodes=%d)", c.dim, c.n)
}

// String implements fmt.Stringer for Link.
func (l Link) String() string {
	return fmt.Sprintf("link(%d--%d)", l.Lo, l.Lo^(1<<uint(l.Dim)))
}
