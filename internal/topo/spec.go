package topo

import (
	"fmt"
	"strconv"
	"strings"

	"unsched/internal/hypercube"
	"unsched/internal/mesh"
)

// Spec is the canonical, machine-neutral description of a topology —
// the one vocabulary the service endpoints, the campaign engine, and
// the CLI share. Build makes this the one place in topo that imports
// the concrete backends (hypercube, mesh), a deliberate layering
// tradeoff: implementation packages consequently cannot import topo
// from their in-package tests (use an external _test package, as
// internal/mesh does).
//
// A spec round-trips through its string form:
//
//	cube:6                  hypercube, 2^6 nodes, e-cube routing
//	mesh:8x8                2D mesh, XY routing
//	torus:16x16             2D torus, XY routing (shortest way around)
//	ring:12                 ring, shorter-way-around routing
//	graph:5:0-1,1-2,2-3,3-4,4-0
//	                        arbitrary connected graph, canonical BFS
//	                        shortest-path routing, lowest-id tie-break
//
// Parse with ParseSpec, render the canonical form with String, and
// construct the Topology with Build. The zero Spec is invalid.
type Spec struct {
	// Kind is "cube", "mesh", "torus", "ring", or "graph".
	Kind string
	// Dim is the hypercube dimension (Kind "cube").
	Dim int
	// W, H are the grid extents (Kinds "mesh" and "torus").
	W, H int
	// N is the node count (Kinds "ring" and "graph").
	N int
	// Edges are the undirected edges (Kind "graph"), canonicalized by
	// ParseSpec/Validate to (lo, hi) pairs in sorted order.
	Edges [][2]int
}

// CubeSpec, MeshSpec, TorusSpec, and RingSpec build the common specs
// without going through the string grammar.
func CubeSpec(dim int) Spec                { return Spec{Kind: "cube", Dim: dim} }
func MeshSpec(w, h int) Spec               { return Spec{Kind: "mesh", W: w, H: h} }
func TorusSpec(w, h int) Spec              { return Spec{Kind: "torus", W: w, H: h} }
func RingSpec(n int) Spec                  { return Spec{Kind: "ring", N: n} }
func GraphSpec(n int, edges [][2]int) Spec { return Spec{Kind: "graph", N: n, Edges: edges} }

// ParseSpec parses the string form of a topology spec. "hypercube" is
// accepted as an alias of "cube"; the canonical form (String) always
// says "cube". Graph edges are canonicalized and validated.
func ParseSpec(s string) (Spec, error) {
	kind, rest, ok := strings.Cut(s, ":")
	if !ok || rest == "" {
		return Spec{}, fmt.Errorf("topo: spec %q: want kind:args (cube:D, mesh:WxH, torus:WxH, ring:N, graph:N:edges)", s)
	}
	switch kind {
	case "cube", "hypercube":
		dim, err := strconv.Atoi(rest)
		if err != nil {
			return Spec{}, fmt.Errorf("topo: spec %q: bad cube dimension %q", s, rest)
		}
		sp := Spec{Kind: "cube", Dim: dim}
		return sp, sp.Validate()
	case "mesh", "torus":
		ws, hs, ok := strings.Cut(rest, "x")
		if !ok {
			return Spec{}, fmt.Errorf("topo: spec %q: want %s:WxH", s, kind)
		}
		w, errW := strconv.Atoi(ws)
		h, errH := strconv.Atoi(hs)
		if errW != nil || errH != nil {
			return Spec{}, fmt.Errorf("topo: spec %q: bad extent %q", s, rest)
		}
		sp := Spec{Kind: kind, W: w, H: h}
		return sp, sp.Validate()
	case "ring":
		n, err := strconv.Atoi(rest)
		if err != nil {
			return Spec{}, fmt.Errorf("topo: spec %q: bad ring size %q", s, rest)
		}
		sp := Spec{Kind: "ring", N: n}
		return sp, sp.Validate()
	case "graph":
		ns, edgeStr, ok := strings.Cut(rest, ":")
		if !ok {
			return Spec{}, fmt.Errorf("topo: spec %q: want graph:N:a-b,c-d,...", s)
		}
		n, err := strconv.Atoi(ns)
		if err != nil {
			return Spec{}, fmt.Errorf("topo: spec %q: bad node count %q", s, ns)
		}
		var edges [][2]int
		if edgeStr != "" {
			for _, part := range strings.Split(edgeStr, ",") {
				as, bs, ok := strings.Cut(part, "-")
				if !ok {
					return Spec{}, fmt.Errorf("topo: spec %q: bad edge %q (want a-b)", s, part)
				}
				a, errA := strconv.Atoi(as)
				b, errB := strconv.Atoi(bs)
				if errA != nil || errB != nil {
					return Spec{}, fmt.Errorf("topo: spec %q: bad edge %q", s, part)
				}
				edges = append(edges, [2]int{a, b})
			}
		}
		sp := Spec{Kind: "graph", N: n, Edges: edges}
		return sp, sp.Validate()
	default:
		return Spec{}, fmt.Errorf("topo: spec %q: unknown kind %q (want cube, mesh, torus, ring, or graph)", s, kind)
	}
}

// MustParseSpec is ParseSpec for known-good specs; it panics on error.
func MustParseSpec(s string) Spec {
	sp, err := ParseSpec(s)
	if err != nil {
		panic(err)
	}
	return sp
}

// Validate checks the spec structurally — the same bounds Build
// enforces, minus graph connectivity (which needs the BFS). As a side
// effect it canonicalizes graph edges in place, so a validated spec
// renders its canonical String.
func (sp *Spec) Validate() error {
	switch sp.Kind {
	case "cube":
		if sp.Dim < 0 || sp.Dim > 30 {
			return fmt.Errorf("topo: cube dimension %d out of range [0,30]", sp.Dim)
		}
	case "mesh", "torus":
		if sp.W < 1 || sp.H < 1 || sp.W*sp.H < 2 {
			return fmt.Errorf("topo: %s %dx%d too small", sp.Kind, sp.W, sp.H)
		}
		if sp.Kind == "torus" && (sp.W < 3 || sp.H < 3) {
			return fmt.Errorf("topo: torus needs at least 3x3, got %dx%d", sp.W, sp.H)
		}
	case "ring":
		if sp.N < 3 {
			return fmt.Errorf("topo: ring needs at least 3 nodes, got %d", sp.N)
		}
		if sp.N > maxGraphNodes {
			return fmt.Errorf("topo: ring of %d nodes exceeds the %d-node limit", sp.N, maxGraphNodes)
		}
	case "graph":
		if sp.N < 2 {
			return fmt.Errorf("topo: graph needs at least 2 nodes, got %d", sp.N)
		}
		if sp.N > maxGraphNodes {
			return fmt.Errorf("topo: graph of %d nodes exceeds the %d-node limit", sp.N, maxGraphNodes)
		}
		if len(sp.Edges) > maxGraphEdges {
			return fmt.Errorf("topo: %d edges exceeds the %d-edge limit", len(sp.Edges), maxGraphEdges)
		}
		canon, err := canonicalEdges(sp.N, sp.Edges)
		if err != nil {
			return err
		}
		sp.Edges = canon
	default:
		return fmt.Errorf("topo: unknown spec kind %q", sp.Kind)
	}
	return nil
}

// Nodes returns the node count the spec describes, without building
// the topology. The spec must be valid.
func (sp Spec) Nodes() int {
	switch sp.Kind {
	case "cube":
		return 1 << uint(sp.Dim)
	case "mesh", "torus":
		return sp.W * sp.H
	default:
		return sp.N
	}
}

// String renders the canonical spec form, parseable by ParseSpec.
// Graph edges render canonically even when the spec was assembled by
// hand and never validated.
func (sp Spec) String() string {
	switch sp.Kind {
	case "cube":
		return fmt.Sprintf("cube:%d", sp.Dim)
	case "mesh", "torus":
		return fmt.Sprintf("%s:%dx%d", sp.Kind, sp.W, sp.H)
	case "ring":
		return fmt.Sprintf("ring:%d", sp.N)
	case "graph":
		canon := sortEdges(sp.Edges)
		var b strings.Builder
		fmt.Fprintf(&b, "graph:%d:", sp.N)
		for i, e := range canon {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d-%d", e[0], e[1])
		}
		return b.String()
	default:
		return fmt.Sprintf("invalid:%s", sp.Kind)
	}
}

// Build constructs the Topology the spec describes. Every returned
// topology implements DiameterHinter.
func (sp Spec) Build() (Topology, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	switch sp.Kind {
	case "cube":
		return hypercube.New(sp.Dim)
	case "mesh", "torus":
		return mesh.New(sp.W, sp.H, sp.Kind == "torus")
	case "ring":
		return NewRing(sp.N)
	case "graph":
		return NewGraph(sp.N, sp.Edges)
	default:
		return nil, fmt.Errorf("topo: unknown spec kind %q", sp.Kind)
	}
}

// MustBuild is Build for known-good specs; it panics on error.
func (sp Spec) MustBuild() Topology {
	t, err := sp.Build()
	if err != nil {
		panic(err)
	}
	return t
}
