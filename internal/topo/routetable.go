package topo

import "fmt"

// RouteTable is the §5 observation made concrete: for a regular
// topology with deterministic routing, every route is a pure function
// of (src, dst), so all n^2 of them can be computed once and shared.
// The table stores the directed-channel indices of every route
// CSR-packed into two flat slices — offsets plus concatenated ids — so
// a route lookup is two array reads and a slice, with no per-call
// route generation and no pointer chasing.
//
// Memory is O(n^2 * diameter): one int32 per route hop plus n^2+1
// offsets. On the paper's 64-node hypercube that is ~12k hop entries
// (~64 KB); a 1024-node cube needs ~20 MB. Precomputation costs one
// RouteIDs call per (src, dst) pair, so it pays off as soon as a table
// is reused for more than a handful of schedules — which is exactly
// the shape of campaign and service traffic. Build one table per
// topology and share it: a RouteTable is immutable after construction
// and therefore safe for concurrent readers.
type RouteTable struct {
	t       Topology
	n       int
	offsets []int32 // len n*n+1; route k occupies ids[offsets[k]:offsets[k+1]]
	ids     []int32 // directed-channel indices of all routes, concatenated
}

// DiameterHinter is optionally implemented by topologies that know
// their diameter; NewRouteTable uses it to presize the hop storage in
// one allocation instead of growing it.
type DiameterHinter interface {
	Diameter() int
}

// NewRouteTable precomputes every deterministic route of t. It panics
// when n^2 routes cannot be indexed by int32 offsets (n > 46340) —
// tables that size would not fit in memory anyway; keep using
// RouteIDs on the fly for such machines.
func NewRouteTable(t Topology) *RouteTable {
	n := t.Nodes()
	if int64(n)*int64(n) >= int64(1)<<31 {
		panic(fmt.Sprintf("topo: route table for %d nodes exceeds int32 indexing; use on-the-fly routes", n))
	}
	rt := &RouteTable{t: t, n: n, offsets: make([]int32, n*n+1)}
	if h, ok := t.(DiameterHinter); ok {
		// Average route length is roughly half the diameter on the
		// regular topologies here; presize to that and let append cover
		// the remainder.
		rt.ids = make([]int32, 0, n*n*(h.Diameter()+1)/2)
	}
	var buf []int
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			buf = t.RouteIDs(src, dst, buf[:0])
			for _, id := range buf {
				rt.ids = append(rt.ids, int32(id))
			}
			rt.offsets[src*n+dst+1] = int32(len(rt.ids))
		}
	}
	return rt
}

// Topology returns the topology the table was built from.
func (rt *RouteTable) Topology() Topology { return rt.t }

// Nodes returns the number of processors.
func (rt *RouteTable) Nodes() int { return rt.n }

// NumChannels returns the number of directed channels, the valid index
// range of the ids Route returns.
func (rt *RouteTable) NumChannels() int { return rt.t.NumChannels() }

// Route returns the precomputed directed-channel indices of the route
// src->dst. The slice aliases the table's storage: read-only, valid
// forever, safe to hold across calls.
func (rt *RouteTable) Route(src, dst int) []int32 {
	k := src*rt.n + dst
	return rt.ids[rt.offsets[k]:rt.offsets[k+1]]
}

// Hops returns the precomputed route length from src to dst.
func (rt *RouteTable) Hops(src, dst int) int {
	k := src*rt.n + dst
	return int(rt.offsets[k+1] - rt.offsets[k])
}

// HopEntries returns the total number of stored hops across all
// routes — the n^2 * average-route-length term of the memory bound,
// for tests and capacity planning.
func (rt *RouteTable) HopEntries() int { return len(rt.ids) }
