package topo

import "fmt"

// RouteTable is the §5 observation made concrete: for a regular
// topology with deterministic routing, every route is a pure function
// of (src, dst), so all n^2 of them can be computed once and shared.
// The table stores the directed-channel indices of every route
// CSR-packed into two flat slices — offsets plus concatenated ids — so
// a route lookup is two array reads and a slice, with no per-call
// route generation and no pointer chasing.
//
// Memory is O(n^2 * diameter): one int32 per route hop plus n^2+1
// offsets. On the paper's 64-node hypercube that is ~12k hop entries
// (~64 KB); a 1024-node cube needs ~20 MB. Precomputation costs one
// RouteIDs call per (src, dst) pair, so it pays off as soon as a table
// is reused for more than a handful of schedules — which is exactly
// the shape of campaign and service traffic. Build one table per
// topology and share it: a RouteTable is immutable after construction
// and therefore safe for concurrent readers.
//
// A RouteTable is itself a Topology (delegating Name and, in lazy
// mode, route generation to the topology it wraps), so it can be
// passed anywhere a Topology goes — in particular to ipsc.NewMachine,
// which detects it and switches channel-occupancy checks to the
// word-at-a-time bitset path below.
//
// Two storage modes exist. The dense mode above materializes every
// route. The lazy mode (NewRouteTableLazy, or NewRouteTableAuto past
// its hop budget) stores nothing and generates routes on the fly
// through the underlying topology — O(1) memory, so machines far past
// the dense footprint (4096-node tori and graphs) stay schedulable;
// consumers that can only walk materialized routes (Route, the bitset
// route API) must check Lazy() and fall back to RouteIDs.
type RouteTable struct {
	t    Topology
	n    int
	lazy bool
	// dense storage
	offsets []int32 // len n*n+1; route k occupies ids[offsets[k]:offsets[k+1]]
	ids     []int32 // directed-channel indices of all routes, concatenated
	// word-mask spans: route k's channels grouped per bitset word, so
	// occupancy tests touch each word once instead of each hop once.
	// Built only for tables under maskSpanHopLimit; nil otherwise.
	spanOff  []int32
	spanWord []int32
	spanMask []uint64
}

// DiameterHinter is optionally implemented by topologies that know
// their diameter; NewRouteTable uses it to presize the hop storage in
// one allocation instead of growing it, and NewRouteTableAuto to
// estimate the dense footprint before paying for it.
type DiameterHinter interface {
	Diameter() int
}

// maskSpanHopLimit caps the hop-entry count up to which NewRouteTable
// builds word-mask spans. Spans cost up to 12 bytes per hop on top of
// the 4-byte ids (they usually merge several hops per word and cost
// much less), so building them unconditionally could triple the
// footprint of the largest legal tables; past this limit the bitset
// API falls back to per-hop bit tests over ids, which is still
// branch-per-hop but allocation-free.
const maskSpanHopLimit = 1 << 23

// NewRouteTable precomputes every deterministic route of t. It panics
// when n^2 routes cannot be indexed by int32 offsets (n > 46340) —
// tables that size would not fit in memory anyway; use a lazy table
// (NewRouteTableLazy) for such machines.
func NewRouteTable(t Topology) *RouteTable {
	n := t.Nodes()
	if int64(n)*int64(n) >= int64(1)<<31 {
		panic(fmt.Sprintf("topo: route table for %d nodes exceeds int32 indexing; use a lazy table", n))
	}
	rt := &RouteTable{t: t, n: n, offsets: make([]int32, n*n+1)}
	if h, ok := t.(DiameterHinter); ok {
		// Average route length is roughly half the diameter on the
		// regular topologies here; presize to that and let append cover
		// the remainder.
		rt.ids = make([]int32, 0, n*n*(h.Diameter()+1)/2)
	}
	var buf []int
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			buf = t.RouteIDs(src, dst, buf[:0])
			for _, id := range buf {
				rt.ids = append(rt.ids, int32(id))
			}
			rt.offsets[src*n+dst+1] = int32(len(rt.ids))
		}
	}
	if len(rt.ids) <= maskSpanHopLimit {
		rt.buildSpans()
	}
	return rt
}

// NewRouteTableLazy wraps t as a RouteTable that stores no routes:
// Route lookups are generated on the fly by the topology. Use it where
// the dense footprint — O(n^2 * diameter) hop entries — exceeds what
// the deployment wants to retain; everything downstream (scheduler
// cores, occupancy tables, simulator machines) degrades gracefully to
// the per-route generation path.
func NewRouteTableLazy(t Topology) *RouteTable {
	return &RouteTable{t: t, n: t.Nodes(), lazy: true}
}

// NewRouteTableAuto builds a dense table when its estimated footprint
// fits within maxDenseHops hop entries, and a lazy one otherwise. The
// estimate is n^2 * (diameter+1)/2 — the same presizing heuristic
// NewRouteTable uses; topologies that do not hint their diameter are
// assumed dense-worthy (none of the built-in ones abstain).
// maxDenseHops <= 0 means no budget: always dense.
func NewRouteTableAuto(t Topology, maxDenseHops int64) *RouteTable {
	if maxDenseHops > 0 {
		n := int64(t.Nodes())
		if n*n >= int64(1)<<31 {
			return NewRouteTableLazy(t)
		}
		if h, ok := t.(DiameterHinter); ok {
			if est := n * n * int64(h.Diameter()+1) / 2; est > maxDenseHops {
				return NewRouteTableLazy(t)
			}
		}
	}
	return NewRouteTable(t)
}

// buildSpans groups every route's channel ids by bitset word. Within
// one route, all hops landing in the same uint64 word merge into a
// single (word, mask) span regardless of hop order, so the occupancy
// test for that word is one AND.
func (rt *RouteTable) buildSpans() {
	rt.spanOff = make([]int32, rt.n*rt.n+1)
	rt.spanWord = make([]int32, 0, len(rt.ids))
	rt.spanMask = make([]uint64, 0, len(rt.ids))
	for k := 0; k < rt.n*rt.n; k++ {
		start := len(rt.spanWord)
		for _, id := range rt.ids[rt.offsets[k]:rt.offsets[k+1]] {
			word, bit := id>>6, uint64(1)<<(uint(id)&63)
			merged := false
			for s := start; s < len(rt.spanWord); s++ {
				if rt.spanWord[s] == word {
					rt.spanMask[s] |= bit
					merged = true
					break
				}
			}
			if !merged {
				rt.spanWord = append(rt.spanWord, word)
				rt.spanMask = append(rt.spanMask, bit)
			}
		}
		rt.spanOff[k+1] = int32(len(rt.spanWord))
	}
}

// Topology returns the topology the table was built from.
func (rt *RouteTable) Topology() Topology { return rt.t }

// Lazy reports whether the table generates routes on the fly instead
// of storing them. Lazy tables do not support Route or the bitset
// route API.
func (rt *RouteTable) Lazy() bool { return rt.lazy }

// Masked reports whether word-mask spans were built (dense tables
// under maskSpanHopLimit hop entries).
func (rt *RouteTable) Masked() bool { return rt.spanOff != nil }

// Name identifies the underlying topology; a RouteTable is
// transparent in output and cache keys.
func (rt *RouteTable) Name() string { return rt.t.Name() }

// Nodes returns the number of processors.
func (rt *RouteTable) Nodes() int { return rt.n }

// NumChannels returns the number of directed channels, the valid index
// range of the ids Route returns.
func (rt *RouteTable) NumChannels() int { return rt.t.NumChannels() }

// RouteIDs appends the directed-channel indices of the route src->dst,
// satisfying Topology. Dense tables copy from storage; lazy ones
// delegate to the underlying topology.
func (rt *RouteTable) RouteIDs(src, dst int, buf []int) []int {
	if rt.lazy {
		return rt.t.RouteIDs(src, dst, buf)
	}
	for _, id := range rt.Route(src, dst) {
		buf = append(buf, int(id))
	}
	return buf
}

// Route returns the precomputed directed-channel indices of the route
// src->dst. The slice aliases the table's storage: read-only, valid
// forever, safe to hold across calls. Panics on a lazy table — use
// RouteIDs there.
func (rt *RouteTable) Route(src, dst int) []int32 {
	if rt.lazy {
		panic("topo: Route on a lazy table; use RouteIDs")
	}
	k := src*rt.n + dst
	return rt.ids[rt.offsets[k]:rt.offsets[k+1]]
}

// Hops returns the route length from src to dst.
func (rt *RouteTable) Hops(src, dst int) int {
	if rt.lazy {
		return rt.t.Hops(src, dst)
	}
	k := src*rt.n + dst
	return int(rt.offsets[k+1] - rt.offsets[k])
}

// HopEntries returns the total number of stored hops across all
// routes — the n^2 * average-route-length term of the memory bound,
// for tests and capacity planning. Zero for lazy tables.
func (rt *RouteTable) HopEntries() int { return len(rt.ids) }

// BitsetWords returns the []uint64 length a channel-occupancy bitset
// needs for numChannels directed channels.
func BitsetWords(numChannels int) int { return (numChannels + 63) / 64 }

// RouteFree reports whether every channel of the route src->dst is
// clear in the packed occupancy bitset busy (one bit per directed
// channel, bit i at busy[i/64]>>(i%64)). On masked tables this is one
// AND per touched word; otherwise one bit test per hop. Panics on a
// lazy table.
func (rt *RouteTable) RouteFree(busy []uint64, src, dst int) bool {
	if rt.lazy {
		panic("topo: RouteFree on a lazy table; walk RouteIDs")
	}
	k := src*rt.n + dst
	if rt.spanOff != nil {
		for s := rt.spanOff[k]; s < rt.spanOff[k+1]; s++ {
			if busy[rt.spanWord[s]]&rt.spanMask[s] != 0 {
				return false
			}
		}
		return true
	}
	for _, id := range rt.ids[rt.offsets[k]:rt.offsets[k+1]] {
		if busy[id>>6]&(uint64(1)<<(uint(id)&63)) != 0 {
			return false
		}
	}
	return true
}

// ClaimRoute sets every channel bit of the route src->dst in busy.
// Panics on a lazy table.
func (rt *RouteTable) ClaimRoute(busy []uint64, src, dst int) {
	if rt.lazy {
		panic("topo: ClaimRoute on a lazy table; walk RouteIDs")
	}
	k := src*rt.n + dst
	if rt.spanOff != nil {
		for s := rt.spanOff[k]; s < rt.spanOff[k+1]; s++ {
			busy[rt.spanWord[s]] |= rt.spanMask[s]
		}
		return
	}
	for _, id := range rt.ids[rt.offsets[k]:rt.offsets[k+1]] {
		busy[id>>6] |= uint64(1) << (uint(id) & 63)
	}
}

// ReleaseRoute clears every channel bit of the route src->dst in busy.
// Panics on a lazy table.
func (rt *RouteTable) ReleaseRoute(busy []uint64, src, dst int) {
	if rt.lazy {
		panic("topo: ReleaseRoute on a lazy table; walk RouteIDs")
	}
	k := src*rt.n + dst
	if rt.spanOff != nil {
		for s := rt.spanOff[k]; s < rt.spanOff[k+1]; s++ {
			busy[rt.spanWord[s]] &^= rt.spanMask[s]
		}
		return
	}
	for _, id := range rt.ids[rt.offsets[k]:rt.offsets[k+1]] {
		busy[id>>6] &^= uint64(1) << (uint(id) & 63)
	}
}
