package topo_test

import (
	"math/rand"
	"testing"

	"unsched/internal/hypercube"
	"unsched/internal/mesh"
	"unsched/internal/topo"
)

// TestLazyTableDelegates checks that a lazy table is observably the
// same Topology as the one it wraps: identical name, shape, hops, and
// generated routes, with zero stored hop entries.
func TestLazyTableDelegates(t *testing.T) {
	for _, net := range tableTopologies(t) {
		rt := topo.NewRouteTableLazy(net)
		if !rt.Lazy() {
			t.Fatalf("%s: NewRouteTableLazy built a dense table", net.Name())
		}
		if rt.Masked() {
			t.Fatalf("%s: lazy table claims mask spans", net.Name())
		}
		if rt.HopEntries() != 0 {
			t.Fatalf("%s: lazy table stores %d hop entries", net.Name(), rt.HopEntries())
		}
		if rt.Name() != net.Name() || rt.Nodes() != net.Nodes() || rt.NumChannels() != net.NumChannels() {
			t.Fatalf("%s: lazy table shape differs from topology", net.Name())
		}
		var want, got []int
		n := net.Nodes()
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				want = net.RouteIDs(src, dst, want[:0])
				got = rt.RouteIDs(src, dst, got[:0])
				if len(want) != len(got) {
					t.Fatalf("%s: lazy route %d->%d: %v vs %v", net.Name(), src, dst, got, want)
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("%s: lazy route %d->%d: %v vs %v", net.Name(), src, dst, got, want)
					}
				}
				if rt.Hops(src, dst) != net.Hops(src, dst) {
					t.Fatalf("%s: lazy Hops(%d,%d) = %d, topology %d",
						net.Name(), src, dst, rt.Hops(src, dst), net.Hops(src, dst))
				}
			}
		}
	}
}

// TestDenseTableImplementsTopology checks the dense table's Topology
// facade: RouteIDs copies the stored route.
func TestDenseTableImplementsTopology(t *testing.T) {
	net := hypercube.MustNew(4)
	var rt topo.Topology = topo.NewRouteTable(net)
	var want, got []int
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			want = net.RouteIDs(src, dst, want[:0])
			got = rt.RouteIDs(src, dst, got[:0])
			if len(want) != len(got) {
				t.Fatalf("route %d->%d: %v vs %v", src, dst, got, want)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("route %d->%d: %v vs %v", src, dst, got, want)
				}
			}
		}
	}
}

// TestAutoTableChoosesMode checks the footprint-driven mode choice: a
// generous budget yields a dense table, a tiny one a lazy table, and
// no budget always dense.
func TestAutoTableChoosesMode(t *testing.T) {
	net := hypercube.MustNew(6)
	if rt := topo.NewRouteTableAuto(net, 1<<26); rt.Lazy() {
		t.Error("64-node cube under a 2^26 budget should be dense")
	}
	if rt := topo.NewRouteTableAuto(net, 64); !rt.Lazy() {
		t.Error("64-node cube under a 64-hop budget should be lazy")
	}
	if rt := topo.NewRouteTableAuto(net, 0); rt.Lazy() {
		t.Error("no budget should always build dense")
	}
	// The big-mesh shape that motivated the old service gate: 32x32
	// torus estimated at 1024^2 * (32+1)/2 ≈ 17M hops.
	big := mesh.MustNew(32, 32, true)
	if rt := topo.NewRouteTableAuto(big, 1<<20); !rt.Lazy() {
		t.Error("32x32 torus under a 2^20 budget should be lazy")
	}
}

// TestBitsetRouteOpsMatchBoolOccupancy drives the word-at-a-time
// bitset route API and a reference per-channel bool table through the
// same randomized claim/release/probe sequence on every sweep
// topology, requiring identical answers throughout. (The per-hop
// fallback of tables above the span limit is covered by the internal
// TestBitsetFallbackMatchesMaskedPath.)
func TestBitsetRouteOpsMatchBoolOccupancy(t *testing.T) {
	rng := rand.New(rand.NewSource(860))
	for _, net := range tableTopologies(t) {
		n := net.Nodes()
		if n < 2 {
			continue
		}
		rt := topo.NewRouteTable(net)
		if !rt.Masked() {
			t.Fatalf("%s: sweep table unexpectedly above the span limit", net.Name())
		}
		busy := make([]uint64, topo.BitsetWords(net.NumChannels()))
		ref := make([]bool, net.NumChannels())
		refFree := func(src, dst int) bool {
			for _, id := range net.RouteIDs(src, dst, nil) {
				if ref[id] {
					return false
				}
			}
			return true
		}
		refSet := func(src, dst int, v bool) {
			for _, id := range net.RouteIDs(src, dst, nil) {
				ref[id] = v
			}
		}
		type claim struct{ src, dst int }
		var held []claim
		for step := 0; step < 2000; step++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			if got, want := rt.RouteFree(busy, src, dst), refFree(src, dst); got != want {
				t.Fatalf("%s step %d: RouteFree(%d,%d) = %v, reference %v",
					net.Name(), step, src, dst, got, want)
			}
			switch {
			case rng.Intn(3) == 0 && len(held) > 0:
				i := rng.Intn(len(held))
				c := held[i]
				rt.ReleaseRoute(busy, c.src, c.dst)
				refSet(c.src, c.dst, false)
				held = append(held[:i], held[i+1:]...)
			case rt.RouteFree(busy, src, dst) && src != dst:
				rt.ClaimRoute(busy, src, dst)
				refSet(src, dst, true)
				held = append(held, claim{src, dst})
			}
		}
	}
}
