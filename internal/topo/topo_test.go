package topo_test

import (
	"testing"

	"unsched/internal/hypercube"
	"unsched/internal/mesh"
	"unsched/internal/topo"
)

// Both concrete networks satisfy the interface.
var (
	_ topo.Topology = (*hypercube.Cube)(nil)
	_ topo.Topology = (*mesh.Mesh)(nil)
)

func TestHypercubeImplementsTopology(t *testing.T) {
	var net topo.Topology = hypercube.MustNew(3)
	if net.Nodes() != 8 || net.NumChannels() != 24 {
		t.Errorf("nodes=%d channels=%d", net.Nodes(), net.NumChannels())
	}
	if net.Name() != "hypercube-3" {
		t.Errorf("name = %q", net.Name())
	}
	// RouteIDs agrees with Hops for all pairs.
	for src := 0; src < 8; src++ {
		for dst := 0; dst < 8; dst++ {
			ids := net.RouteIDs(src, dst, nil)
			if len(ids) != net.Hops(src, dst) {
				t.Fatalf("%d->%d: %d ids, %d hops", src, dst, len(ids), net.Hops(src, dst))
			}
			for _, id := range ids {
				if id < 0 || id >= net.NumChannels() {
					t.Fatalf("channel id %d out of range", id)
				}
			}
		}
	}
}

func TestOccupancyAcrossTopologies(t *testing.T) {
	for _, net := range []topo.Topology{
		hypercube.MustNew(4),
		mesh.MustNew(4, 4, false),
		mesh.MustNew(4, 4, true),
	} {
		occ := topo.NewOccupancy(net)
		if !occ.CheckPath(0, net.Nodes()-1) {
			t.Fatalf("%s: fresh table not free", net.Name())
		}
		occ.MarkPath(0, net.Nodes()-1)
		if occ.CheckPath(0, net.Nodes()-1) {
			t.Fatalf("%s: marked path still free", net.Name())
		}
		if occ.ClaimedCount() != net.Hops(0, net.Nodes()-1) {
			t.Fatalf("%s: claimed %d, hops %d", net.Name(),
				occ.ClaimedCount(), net.Hops(0, net.Nodes()-1))
		}
		occ.Reset()
		if occ.ClaimedCount() != 0 {
			t.Fatalf("%s: reset left claims", net.Name())
		}
	}
}

func TestOccupancyManyResetCycles(t *testing.T) {
	net := hypercube.MustNew(4)
	occ := topo.NewOccupancy(net)
	for cycle := 0; cycle < 10_000; cycle++ {
		occ.Reset()
		if !occ.CheckPath(cycle%16, (cycle+7)%16) {
			t.Fatalf("cycle %d: stale claim", cycle)
		}
		occ.MarkPath(cycle%16, (cycle+7)%16)
	}
}

func TestSelfRouteAlwaysFree(t *testing.T) {
	net := mesh.MustNew(3, 3, false)
	occ := topo.NewOccupancy(net)
	occ.MarkPath(0, 8)
	for i := 0; i < 9; i++ {
		if !occ.CheckPath(i, i) {
			t.Fatalf("self route at %d blocked", i)
		}
	}
}
