package topo_test

import (
	"math/rand"
	"testing"

	"unsched/internal/hypercube"
	"unsched/internal/mesh"
	"unsched/internal/topo"
)

// tableTopologies is the property-test sweep: hypercubes of dimension
// 0 through 8 and several mesh/torus shapes, including degenerate 1xH
// and non-square grids.
func tableTopologies(t *testing.T) []topo.Topology {
	t.Helper()
	nets := []topo.Topology{}
	for dim := 0; dim <= 8; dim++ {
		nets = append(nets, hypercube.MustNew(dim))
	}
	for _, shape := range []struct {
		w, h  int
		torus bool
	}{
		{1, 2, false}, {2, 1, false}, {1, 16, false},
		{2, 2, false}, {4, 3, false}, {5, 7, false}, {8, 8, false},
		{3, 3, true}, {4, 4, true}, {5, 3, true}, {8, 8, true},
	} {
		nets = append(nets, mesh.MustNew(shape.w, shape.h, shape.torus))
	}
	// Graph-backed topologies: rings (odd, even, minimal) and random
	// connected graphs, so every table property below also holds for
	// the canonical-BFS routing backend.
	for _, n := range []int{3, 8, 13} {
		nets = append(nets, topo.MustNewRing(n))
	}
	for seed := int64(0); seed < 3; seed++ {
		nets = append(nets, randomConnectedGraph(t, 10+int(seed)*7, seed))
	}
	return nets
}

// randomConnectedGraph builds a connected graph deterministically from
// seed: a random spanning tree plus a sprinkling of extra edges.
func randomConnectedGraph(t *testing.T, n int, seed int64) *topo.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{rng.Intn(v), v})
	}
	have := map[[2]int]bool{}
	for _, e := range edges {
		have[e] = true
	}
	for k := 0; k < n; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if !have[[2]int{a, b}] {
			have[[2]int{a, b}] = true
			edges = append(edges, [2]int{a, b})
		}
	}
	g, err := topo.NewGraph(n, edges)
	if err != nil {
		t.Fatalf("random graph n=%d seed=%d: %v", n, seed, err)
	}
	return g
}

// TestRouteTableMatchesRouteIDs checks the defining property of the
// precomputation: for every (src, dst) pair the table's stored route
// is element-identical to the route the topology generates on the fly.
func TestRouteTableMatchesRouteIDs(t *testing.T) {
	for _, net := range tableTopologies(t) {
		rt := topo.NewRouteTable(net)
		if rt.Nodes() != net.Nodes() || rt.NumChannels() != net.NumChannels() {
			t.Fatalf("%s: table shape %d nodes/%d channels, topology %d/%d",
				net.Name(), rt.Nodes(), rt.NumChannels(), net.Nodes(), net.NumChannels())
		}
		var buf []int
		for src := 0; src < net.Nodes(); src++ {
			for dst := 0; dst < net.Nodes(); dst++ {
				buf = net.RouteIDs(src, dst, buf[:0])
				got := rt.Route(src, dst)
				if len(got) != len(buf) {
					t.Fatalf("%s: route %d->%d: table has %d hops, RouteIDs %d",
						net.Name(), src, dst, len(got), len(buf))
				}
				for i := range buf {
					if int(got[i]) != buf[i] {
						t.Fatalf("%s: route %d->%d hop %d: table %d, RouteIDs %d",
							net.Name(), src, dst, i, got[i], buf[i])
					}
				}
				if rt.Hops(src, dst) != net.Hops(src, dst) {
					t.Fatalf("%s: Hops(%d,%d): table %d, topology %d",
						net.Name(), src, dst, rt.Hops(src, dst), net.Hops(src, dst))
				}
			}
		}
	}
}

// TestRouteTableDiameterBound checks the documented memory bound: no
// stored route exceeds the topology's advertised diameter, so the
// table holds at most n^2 * diameter hop entries.
func TestRouteTableDiameterBound(t *testing.T) {
	for _, net := range tableTopologies(t) {
		h, ok := net.(topo.DiameterHinter)
		if !ok {
			t.Fatalf("%s: does not hint its diameter", net.Name())
		}
		rt := topo.NewRouteTable(net)
		n := net.Nodes()
		longest := 0
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if l := rt.Hops(src, dst); l > longest {
					longest = l
				}
			}
		}
		if longest > h.Diameter() {
			t.Errorf("%s: longest route %d exceeds diameter %d", net.Name(), longest, h.Diameter())
		}
		if bound := n * n * h.Diameter(); rt.HopEntries() > bound {
			t.Errorf("%s: %d hop entries exceed the n^2*diameter bound %d",
				net.Name(), rt.HopEntries(), bound)
		}
	}
}

// TestOccupancyBackendsAgree drives an on-the-fly Occupancy and a
// table-backed one through the same randomized Check/Mark/Reset
// sequence and requires identical observable behaviour at every step.
func TestOccupancyBackendsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1994))
	for _, net := range tableTopologies(t) {
		n := net.Nodes()
		if n < 2 {
			continue
		}
		fly := topo.NewOccupancy(net)
		tab := topo.NewOccupancyTable(topo.NewRouteTable(net))
		for step := 0; step < 2000; step++ {
			switch rng.Intn(10) {
			case 0: // phase boundary
				fly.Reset()
				tab.Reset()
			case 1, 2, 3: // claim a route
				src, dst := rng.Intn(n), rng.Intn(n)
				fly.MarkPath(src, dst)
				tab.MarkPath(src, dst)
			default: // probe a route
				src, dst := rng.Intn(n), rng.Intn(n)
				if f, g := fly.CheckPath(src, dst), tab.CheckPath(src, dst); f != g {
					t.Fatalf("%s step %d: CheckPath(%d,%d) on-the-fly %v, table %v",
						net.Name(), step, src, dst, f, g)
				}
			}
			if f, g := fly.ClaimedCount(), tab.ClaimedCount(); f != g {
				t.Fatalf("%s step %d: ClaimedCount on-the-fly %d, table %d",
					net.Name(), step, f, g)
			}
		}
	}
}
