package topo_test

import (
	"testing"

	"unsched/internal/topo"
)

// Compile-time interface checks.
var (
	_ topo.Topology       = (*topo.Graph)(nil)
	_ topo.DiameterHinter = (*topo.Graph)(nil)
)

// TestRingRouting pins the ring's routing law: every route takes the
// shorter way around (min(k, n-k) hops), and at the antipode of an
// even ring the tie breaks toward the lower-id neighbor.
func TestRingRouting(t *testing.T) {
	for _, n := range []int{3, 4, 7, 8, 16} {
		g := topo.MustNewRing(n)
		if g.Name() != "" && g.Nodes() != n {
			t.Fatalf("ring-%d has %d nodes", n, g.Nodes())
		}
		if g.NumChannels() != 2*n {
			t.Errorf("ring-%d: %d channels, want %d", n, g.NumChannels(), 2*n)
		}
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				fwd := (dst - src + n) % n
				want := fwd
				if n-fwd < want {
					want = n - fwd
				}
				if got := g.Hops(src, dst); got != want {
					t.Errorf("ring-%d: Hops(%d,%d) = %d, want %d", n, src, dst, got, want)
				}
				if got := len(g.RouteIDs(src, dst, nil)); got != want {
					t.Errorf("ring-%d: route %d->%d has %d hops, want %d", n, src, dst, got, want)
				}
			}
		}
		if want := n / 2; g.Diameter() != want {
			t.Errorf("ring-%d: diameter %d, want %d", n, g.Diameter(), want)
		}
	}
}

// TestGraphCanonicalTieBreak pins the lowest-id rule on the 4-cycle
// 0-1-3-2-0: both 1 and 2 are one hop from 0 and one from 3, so the
// canonical route 0->3 must run through node 1.
func TestGraphCanonicalTieBreak(t *testing.T) {
	g := topo.MustNewGraph(4, [][2]int{{0, 1}, {1, 3}, {0, 2}, {2, 3}})
	route03 := g.RouteIDs(0, 3, nil)
	via1 := append(g.RouteIDs(0, 1, nil), g.RouteIDs(1, 3, nil)...)
	if len(route03) != 2 {
		t.Fatalf("route 0->3 has %d hops, want 2", len(route03))
	}
	for i := range route03 {
		if route03[i] != via1[i] {
			t.Fatalf("route 0->3 = %v, want the lowest-id path via node 1 (%v)", route03, via1)
		}
	}
}

// TestGraphRoutesAreConsistent checks the deterministic-routing
// contract the schedulers rely on: routes are a pure function of
// (src, dst) — repeated calls agree — and every suffix of a canonical
// route is itself canonical (claiming a route claims exactly what any
// sub-journey along it would claim).
func TestGraphRoutesAreConsistent(t *testing.T) {
	nets := []*topo.Graph{
		topo.MustNewRing(9),
		topo.MustNewRing(12),
		topo.MustNewGraph(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}}),
		randomConnectedGraph(t, 17, 5),
	}
	for _, g := range nets {
		n := g.Nodes()
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				r1 := g.RouteIDs(src, dst, nil)
				r2 := g.RouteIDs(src, dst, nil)
				if len(r1) != len(r2) {
					t.Fatalf("%s: route %d->%d nondeterministic", g.Name(), src, dst)
				}
				if len(r1) != g.Hops(src, dst) {
					t.Fatalf("%s: route %d->%d has %d hops, Hops says %d",
						g.Name(), src, dst, len(r1), g.Hops(src, dst))
				}
				for i := range r1 {
					if r1[i] != r2[i] {
						t.Fatalf("%s: route %d->%d nondeterministic at hop %d", g.Name(), src, dst, i)
					}
					if r1[i] < 0 || r1[i] >= g.NumChannels() {
						t.Fatalf("%s: route %d->%d: channel %d out of range", g.Name(), src, dst, r1[i])
					}
				}
			}
		}
		// Suffix consistency via distances: walking one hop along the
		// canonical route must reduce the remaining distance by exactly
		// one, so canonical routes compose.
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src == dst {
					continue
				}
				// Find the first-hop endpoint by matching channel 0 of
				// the route against routes to every neighbor candidate.
				first := g.RouteIDs(src, dst, nil)[0]
				found := false
				for w := 0; w < n; w++ {
					if g.Hops(src, w) == 1 {
						r := g.RouteIDs(src, w, nil)
						if len(r) == 1 && r[0] == first {
							if g.Hops(w, dst) != g.Hops(src, dst)-1 {
								t.Fatalf("%s: first hop %d->%d does not approach %d", g.Name(), src, w, dst)
							}
							rest := g.RouteIDs(w, dst, nil)
							full := g.RouteIDs(src, dst, nil)
							for i := range rest {
								if rest[i] != full[i+1] {
									t.Fatalf("%s: route %d->%d suffix differs from canonical %d->%d",
										g.Name(), src, dst, w, dst)
								}
							}
							found = true
							break
						}
					}
				}
				if !found {
					t.Fatalf("%s: first hop of %d->%d is no neighbor channel", g.Name(), src, dst)
				}
			}
		}
	}
}

func TestGraphValidation(t *testing.T) {
	if _, err := topo.NewGraph(1, nil); err == nil {
		t.Error("1-node graph accepted")
	}
	if _, err := topo.NewGraph(4, [][2]int{{0, 0}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := topo.NewGraph(4, [][2]int{{0, 5}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := topo.NewGraph(4, [][2]int{{0, 1}, {1, 0}}); err == nil {
		t.Error("duplicate edge accepted")
	}
	if _, err := topo.NewGraph(4, [][2]int{{0, 1}, {2, 3}}); err == nil {
		t.Error("disconnected graph accepted")
	}
	if _, err := topo.NewRing(2); err == nil {
		t.Error("2-ring accepted")
	}
}

// TestGraphNamesAreContentUnique: the name is the topology identity in
// every cache and content hash, so graphs that differ only in wiring
// must not share one.
func TestGraphNamesAreContentUnique(t *testing.T) {
	a := topo.MustNewGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	b := topo.MustNewGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if a.Name() == b.Name() {
		t.Errorf("different graphs share name %q", a.Name())
	}
	// Same content in a different edge order is the same identity.
	c := topo.MustNewGraph(4, [][2]int{{3, 2}, {2, 1}, {1, 0}})
	if a.Name() != c.Name() {
		t.Errorf("same graph named %q and %q", a.Name(), c.Name())
	}
}
