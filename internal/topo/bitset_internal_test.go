package topo

import (
	"math/rand"
	"testing"

	"unsched/internal/hypercube"
)

// TestBitsetFallbackMatchesMaskedPath strips the word-mask spans off a
// table copy and checks the per-hop fallback gives the same answers as
// the masked path — the representation a table above maskSpanHopLimit
// would use.
func TestBitsetFallbackMatchesMaskedPath(t *testing.T) {
	net := hypercube.MustNew(5)
	masked := NewRouteTable(net)
	if !masked.Masked() {
		t.Fatal("small cube table should carry mask spans")
	}
	plain := *masked
	plain.spanOff, plain.spanWord, plain.spanMask = nil, nil, nil
	if plain.Masked() {
		t.Fatal("stripped copy still claims mask spans")
	}

	n := net.Nodes()
	busyM := make([]uint64, BitsetWords(net.NumChannels()))
	busyP := make([]uint64, BitsetWords(net.NumChannels()))
	rng := rand.New(rand.NewSource(94))
	for step := 0; step < 3000; step++ {
		src, dst := rng.Intn(n), rng.Intn(n)
		if m, p := masked.RouteFree(busyM, src, dst), plain.RouteFree(busyP, src, dst); m != p {
			t.Fatalf("step %d: RouteFree(%d,%d) masked %v, fallback %v", step, src, dst, m, p)
		}
		switch rng.Intn(3) {
		case 0:
			masked.ClaimRoute(busyM, src, dst)
			plain.ClaimRoute(busyP, src, dst)
		case 1:
			masked.ReleaseRoute(busyM, src, dst)
			plain.ReleaseRoute(busyP, src, dst)
		}
		for w := range busyM {
			if busyM[w] != busyP[w] {
				t.Fatalf("step %d: bitset words diverge at %d: %x vs %x", step, w, busyM[w], busyP[w])
			}
		}
	}
}
