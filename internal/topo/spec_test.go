package topo_test

import (
	"fmt"
	"math/rand"
	"testing"

	"unsched/internal/topo"
)

// TestSpecRoundTrip: parsing a canonical string and rendering it back
// is the identity, and non-canonical inputs (aliases, unsorted or
// hi-lo edges) normalize to the canonical form.
func TestSpecRoundTrip(t *testing.T) {
	cases := []struct {
		in, canonical string
	}{
		{"cube:0", "cube:0"},
		{"cube:6", "cube:6"},
		{"hypercube:4", "cube:4"},
		{"mesh:8x8", "mesh:8x8"},
		{"mesh:1x2", "mesh:1x2"},
		{"torus:3x3", "torus:3x3"},
		{"torus:16x16", "torus:16x16"},
		{"ring:3", "ring:3"},
		{"ring:12", "ring:12"},
		{"graph:5:0-1,0-4,1-2,2-3,3-4", "graph:5:0-1,0-4,1-2,2-3,3-4"},
		// Edges canonicalize: hi-lo flips, order sorts.
		{"graph:5:0-1,1-2,2-3,3-4,4-0", "graph:5:0-1,0-4,1-2,2-3,3-4"},
		{"graph:4:3-2,1-0,2-1", "graph:4:0-1,1-2,2-3"},
	}
	for _, tc := range cases {
		sp, err := topo.ParseSpec(tc.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		if got := sp.String(); got != tc.canonical {
			t.Errorf("ParseSpec(%q).String() = %q, want %q", tc.in, got, tc.canonical)
		}
		// A canonical form must reparse to itself.
		again, err := topo.ParseSpec(sp.String())
		if err != nil {
			t.Errorf("reparse %q: %v", sp.String(), err)
			continue
		}
		if again.String() != sp.String() {
			t.Errorf("reparse %q -> %q, not a fixpoint", sp.String(), again.String())
		}
	}
}

// TestSpecRoundTripProperty fuzzes random valid specs: String must be
// a parse/format fixpoint, Nodes must predict the built topology, and
// Build must yield the Name-distinct topology kinds.
func TestSpecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1994))
	for i := 0; i < 200; i++ {
		var sp topo.Spec
		switch rng.Intn(5) {
		case 0:
			sp = topo.CubeSpec(rng.Intn(9))
		case 1:
			sp = topo.MeshSpec(1+rng.Intn(8), 2+rng.Intn(8))
		case 2:
			sp = topo.TorusSpec(3+rng.Intn(6), 3+rng.Intn(6))
		case 3:
			sp = topo.RingSpec(3 + rng.Intn(20))
		case 4:
			n := 4 + rng.Intn(12)
			var edges [][2]int
			for v := 1; v < n; v++ {
				edges = append(edges, [2]int{rng.Intn(v), v})
			}
			sp = topo.GraphSpec(n, edges)
		}
		parsed, err := topo.ParseSpec(sp.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", sp.String(), err)
		}
		if parsed.String() != sp.String() {
			t.Fatalf("round trip %q -> %q", sp.String(), parsed.String())
		}
		net, err := parsed.Build()
		if err != nil {
			t.Fatalf("Build(%q): %v", sp.String(), err)
		}
		if net.Nodes() != parsed.Nodes() {
			t.Fatalf("%q: Spec.Nodes %d, built topology %d", sp.String(), parsed.Nodes(), net.Nodes())
		}
		if _, ok := net.(topo.DiameterHinter); !ok {
			t.Fatalf("%q: built topology does not hint its diameter", sp.String())
		}
	}
}

func TestSpecParseErrors(t *testing.T) {
	bad := []string{
		"",
		"cube",
		"cube:",
		"cube:x",
		"cube:-1",
		"cube:31",
		"klein:4",
		"mesh:8",
		"mesh:8x",
		"mesh:0x4",
		"torus:2x8",
		"ring:2",
		"ring:-3",
		"graph:4",
		"graph:4:0-1,1",
		"graph:4:0-4",                 // endpoint out of range
		"graph:4:0-0",                 // self loop
		"graph:4:0-1,1-0",             // duplicate edge
		"graph:99999:0-1",             // over the node limit
		fmt.Sprintf("ring:%d", 1<<20), // over the node limit
	}
	for _, s := range bad {
		if _, err := topo.ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted", s)
		}
	}
	// Disconnection is a Build-time error: the spec parses (structure
	// is fine) but the graph cannot route.
	sp, err := topo.ParseSpec("graph:4:0-1,2-3")
	if err != nil {
		t.Fatalf("disconnected graph spec should parse: %v", err)
	}
	if _, err := sp.Build(); err == nil {
		t.Error("disconnected graph built")
	}
}
