// Package topo abstracts the deterministic-routing topologies the
// link-contention-avoiding scheduler and the machine simulator run on.
// The paper's machine is a hypercube with e-cube routing, but §5 notes
// the approach applies to any regular topology with deterministic
// routing ("for regular topologies like mesh and hypercube, the size
// of PATHS can be much smaller"); this interface is that observation
// made concrete. internal/hypercube and internal/mesh implement it.
package topo

// Topology is a network with deterministic routing over directed
// channels. Channels are identified by dense indices in
// [0, NumChannels()), so occupancy tables are flat arrays.
type Topology interface {
	// Name identifies the topology in output ("hypercube-6",
	// "mesh-8x8", ...).
	Name() string
	// Nodes returns the number of processors.
	Nodes() int
	// NumChannels returns the number of directed channels.
	NumChannels() int
	// RouteIDs appends the directed-channel indices of the
	// deterministic route from src to dst and returns the extended
	// slice. An empty route (src == dst) appends nothing.
	RouteIDs(src, dst int, buf []int) []int
	// Hops returns the route length from src to dst.
	Hops(src, dst int) int
}

// Occupancy is a per-phase channel-claim table over any Topology: the
// generic form of the paper's PATHS array with O(1) amortized
// clearing. It supports the Check_Path / Mark_Path operations of the
// RS_NL algorithm (Figure 4).
//
// Two route backends exist. NewOccupancy generates each route on the
// fly through Topology.RouteIDs — right for one-shot use. When built
// over a precomputed RouteTable (NewOccupancyTable), CheckPath and
// MarkPath become index walks over the table's flat hop storage with
// no route generation at all; that is the backend the reusable
// scheduler cores run on.
type Occupancy struct {
	t     Topology
	rt    *RouteTable // non-nil: walk precomputed routes instead of generating
	epoch uint32
	marks []uint32
	buf   []int
}

// NewOccupancy returns an empty claim table for t, generating routes
// on the fly.
func NewOccupancy(t Topology) *Occupancy {
	return &Occupancy{t: t, epoch: 1, marks: make([]uint32, t.NumChannels())}
}

// NewOccupancyTable returns an empty claim table that walks rt's
// precomputed routes. The table is shared read-only; each Occupancy
// keeps only its own claim marks. A lazy table stores no routes, so
// the occupancy falls back to generating them through the underlying
// topology — same results, per-route generation cost.
func NewOccupancyTable(rt *RouteTable) *Occupancy {
	if rt.Lazy() {
		return NewOccupancy(rt.Topology())
	}
	return &Occupancy{t: rt.Topology(), rt: rt, epoch: 1, marks: make([]uint32, rt.NumChannels())}
}

// Reset clears all claims; O(1) amortized.
func (o *Occupancy) Reset() {
	o.epoch++
	if o.epoch == 0 {
		for i := range o.marks {
			o.marks[i] = 0
		}
		o.epoch = 1
	}
}

// CheckPath reports whether the route src->dst is entirely unclaimed
// in the current phase (the paper's Check_Path).
func (o *Occupancy) CheckPath(src, dst int) bool {
	if o.rt != nil {
		for _, id := range o.rt.Route(src, dst) {
			if o.marks[id] == o.epoch {
				return false
			}
		}
		return true
	}
	o.buf = o.t.RouteIDs(src, dst, o.buf[:0])
	for _, id := range o.buf {
		if o.marks[id] == o.epoch {
			return false
		}
	}
	return true
}

// MarkPath claims every channel on the route src->dst for the current
// phase (the paper's Mark_Path).
func (o *Occupancy) MarkPath(src, dst int) {
	if o.rt != nil {
		for _, id := range o.rt.Route(src, dst) {
			o.marks[id] = o.epoch
		}
		return
	}
	o.buf = o.t.RouteIDs(src, dst, o.buf[:0])
	for _, id := range o.buf {
		o.marks[id] = o.epoch
	}
}

// ClaimedCount returns the number of channels currently claimed;
// O(channels), for tests and traces.
func (o *Occupancy) ClaimedCount() int {
	n := 0
	for _, m := range o.marks {
		if m == o.epoch {
			n++
		}
	}
	return n
}
