package topo

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// Graph is an arbitrary connected undirected graph with canonical
// shortest-path routing: the route from src to dst follows, at every
// node, the lowest-id neighbor that lies on a shortest path to dst.
// Routing is therefore deterministic and a pure function of
// (src, dst) — the property the link-contention-avoiding scheduler
// (and the RouteTable precompute) requires — and it is consistent
// under truncation: the suffix of a canonical route is the canonical
// route of its own endpoints, exactly like e-cube and XY routing.
//
// Next-hop and distance matrices are precomputed by one BFS per node
// at construction (O(n*(n+m)) time, O(n^2) int32 memory), so RouteIDs
// is a plain next-hop walk. Graphs are immutable after construction
// and safe for concurrent readers.
type Graph struct {
	name string
	n    int
	// CSR adjacency, neighbor lists sorted ascending. The directed
	// channel u->adjList[k] (k in [adjOff[u], adjOff[u+1])) has dense
	// channel index k, so NumChannels == len(adjList).
	adjOff  []int32
	adjList []int32
	next    []int32 // next[u*n+d]: first hop of the canonical route u->d
	dist    []int32 // dist[u*n+d]: hops from u to d
	diam    int
}

// Graph construction limits. The routing tables are O(n^2) int32s and
// construction is O(n*(n+m)); these caps keep a graph build bounded at
// a few hundred MB and seconds, far above the service node cap.
const (
	maxGraphNodes = 4096
	maxGraphEdges = 1 << 20
)

// NewGraph returns the graph over n nodes with the given undirected
// edges. Edges are canonicalized (lo-hi, sorted); duplicates,
// self-loops, out-of-range endpoints, and disconnected graphs are
// errors — routing needs every (src, dst) pair reachable.
func NewGraph(n int, edges [][2]int) (*Graph, error) {
	return newGraph("", n, edges)
}

// MustNewGraph is NewGraph for known-good inputs; it panics on error.
func MustNewGraph(n int, edges [][2]int) *Graph {
	g, err := NewGraph(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// NewRing returns the n-node ring (node i adjacent to i±1 mod n) as a
// Graph, so it shares the canonical BFS routing backend: each route
// takes the shorter way around, and the tie at the antipode of an
// even ring resolves to the lower-id neighbor.
func NewRing(n int) (*Graph, error) {
	if n < 3 {
		// A 2-ring duplicates its single edge, like a 2-torus.
		return nil, fmt.Errorf("topo: ring needs at least 3 nodes, got %d", n)
	}
	if n > maxGraphNodes {
		return nil, fmt.Errorf("topo: ring of %d nodes exceeds the %d-node graph limit", n, maxGraphNodes)
	}
	edges := make([][2]int, n)
	for i := 0; i < n; i++ {
		edges[i] = [2]int{i, (i + 1) % n}
	}
	return newGraph(fmt.Sprintf("ring-%d", n), n, edges)
}

// MustNewRing is NewRing for known-good sizes; it panics on error.
func MustNewRing(n int) *Graph {
	g, err := NewRing(n)
	if err != nil {
		panic(err)
	}
	return g
}

// sortEdges returns a copy of the edges in canonical order — each as
// (lo, hi), the list sorted lexicographically — without validating
// them. This single definition of the canonical order backs both edge
// validation (canonicalEdges) and the spec string form (Spec.String),
// which content hashes and graph names depend on agreeing.
func sortEdges(edges [][2]int) [][2]int {
	canon := make([][2]int, len(edges))
	for i, e := range edges {
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		canon[i] = [2]int{a, b}
	}
	sort.Slice(canon, func(i, j int) bool {
		if canon[i][0] != canon[j][0] {
			return canon[i][0] < canon[j][0]
		}
		return canon[i][1] < canon[j][1]
	})
	return canon
}

// canonicalEdges returns the edges in canonical form via sortEdges,
// without mutating the input, and validates ranges, self-loops, and
// duplicates.
func canonicalEdges(n int, edges [][2]int) ([][2]int, error) {
	for _, e := range edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			return nil, fmt.Errorf("topo: edge %d-%d out of range [0,%d)", e[0], e[1], n)
		}
		if e[0] == e[1] {
			return nil, fmt.Errorf("topo: self-loop at node %d", e[0])
		}
	}
	canon := sortEdges(edges)
	for i := 1; i < len(canon); i++ {
		if canon[i] == canon[i-1] {
			return nil, fmt.Errorf("topo: duplicate edge %d-%d", canon[i][0], canon[i][1])
		}
	}
	return canon, nil
}

func newGraph(name string, n int, edges [][2]int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topo: graph needs at least 2 nodes, got %d", n)
	}
	if n > maxGraphNodes {
		return nil, fmt.Errorf("topo: graph of %d nodes exceeds the %d-node limit", n, maxGraphNodes)
	}
	if len(edges) > maxGraphEdges {
		return nil, fmt.Errorf("topo: %d edges exceeds the %d-edge limit", len(edges), maxGraphEdges)
	}
	canon, err := canonicalEdges(n, edges)
	if err != nil {
		return nil, err
	}

	// CSR adjacency with sorted neighbor lists: count, prefix-sum,
	// fill, sort each list.
	deg := make([]int32, n)
	for _, e := range canon {
		deg[e[0]]++
		deg[e[1]]++
	}
	g := &Graph{
		n:       n,
		adjOff:  make([]int32, n+1),
		adjList: make([]int32, 2*len(canon)),
	}
	for u := 0; u < n; u++ {
		g.adjOff[u+1] = g.adjOff[u] + deg[u]
	}
	fill := make([]int32, n)
	copy(fill, g.adjOff[:n])
	for _, e := range canon {
		a, b := int32(e[0]), int32(e[1])
		g.adjList[fill[a]] = b
		fill[a]++
		g.adjList[fill[b]] = a
		fill[b]++
	}
	for u := 0; u < n; u++ {
		lo, hi := g.adjOff[u], g.adjOff[u+1]
		sort.Slice(g.adjList[lo:hi], func(i, j int) bool {
			return g.adjList[lo+int32(i)] < g.adjList[lo+int32(j)]
		})
	}

	if err := g.buildRoutes(); err != nil {
		return nil, err
	}
	if name == "" {
		name = fingerprintName(n, canon)
	}
	g.name = name
	return g, nil
}

// fingerprintName derives a content-unique name for an anonymous
// graph. The name is the topology identity everywhere — machine/core
// cache keys, memoization fingerprints — so two graphs with different
// edges must never share one: the 128-bit SHA-256 prefix makes a
// collision computationally infeasible, matching the strength of the
// service's SHA-256 content hashes that embed this name. (A 64-bit
// non-cryptographic hash here would be the weak link an attacker
// could birthday-attack to poison the daemon's caches.)
func fingerprintName(n int, canon [][2]int) string {
	h := sha256.New()
	var buf [8]byte
	put := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(n)
	for _, e := range canon {
		put(e[0])
		put(e[1])
	}
	return fmt.Sprintf("graph-%dn%de-%x", n, len(canon), h.Sum(nil)[:16])
}

// buildRoutes runs one BFS per destination to fill the distance and
// canonical next-hop matrices, and rejects disconnected graphs.
func (g *Graph) buildRoutes() error {
	n := g.n
	g.dist = make([]int32, n*n)
	g.next = make([]int32, n*n)
	for i := range g.dist {
		g.dist[i] = -1
		g.next[i] = -1
	}
	queue := make([]int32, 0, n)
	for d := 0; d < n; d++ {
		// BFS from the destination over the (symmetric) adjacency gives
		// dist[u][d] for every u. Pop via a head index, not reslicing,
		// so the one n-capacity queue buffer survives all n passes.
		g.dist[d*n+d] = 0
		queue = append(queue[:0], int32(d))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			du := g.dist[int(u)*n+d]
			for _, w := range g.adjList[g.adjOff[u]:g.adjOff[u+1]] {
				if g.dist[int(w)*n+d] < 0 {
					g.dist[int(w)*n+d] = du + 1
					queue = append(queue, w)
				}
			}
		}
		// Canonical next hop toward d: the lowest-id neighbor one step
		// closer. Neighbor lists are sorted, so the first match is the
		// lowest id.
		for u := 0; u < n; u++ {
			if u == d {
				continue
			}
			du := g.dist[u*n+d]
			if du < 0 {
				return fmt.Errorf("topo: graph is disconnected (no path %d->%d)", u, d)
			}
			for _, w := range g.adjList[g.adjOff[u]:g.adjOff[u+1]] {
				if g.dist[int(w)*n+d] == du-1 {
					g.next[u*n+d] = w
					break
				}
			}
		}
	}
	diam := int32(0)
	for _, v := range g.dist {
		if v > diam {
			diam = v
		}
	}
	g.diam = int(diam)
	return nil
}

// channel returns the dense index of the directed channel u->w, where
// w must be a neighbor of u.
func (g *Graph) channel(u, w int) int {
	lo, hi := int(g.adjOff[u]), int(g.adjOff[u+1])
	k := lo + sort.Search(hi-lo, func(i int) bool { return g.adjList[lo+i] >= int32(w) })
	if k >= hi || g.adjList[k] != int32(w) {
		panic(fmt.Sprintf("topo: %d and %d are not adjacent in %s", u, w, g.name))
	}
	return k
}

// Name implements Topology.
func (g *Graph) Name() string { return g.name }

// Nodes implements Topology.
func (g *Graph) Nodes() int { return g.n }

// NumChannels implements Topology: one directed channel per adjacency
// entry (two per undirected edge).
func (g *Graph) NumChannels() int { return len(g.adjList) }

// Degree returns the number of neighbors of node u.
func (g *Graph) Degree(u int) int { return int(g.adjOff[u+1] - g.adjOff[u]) }

// RouteIDs implements Topology: the canonical shortest-path route as
// dense directed-channel indices, walked hop by hop through the
// precomputed next-hop matrix.
func (g *Graph) RouteIDs(src, dst int, buf []int) []int {
	if src < 0 || src >= g.n || dst < 0 || dst >= g.n {
		panic(fmt.Sprintf("topo: route %d->%d outside %s", src, dst, g.name))
	}
	u := src
	for u != dst {
		w := int(g.next[u*g.n+dst])
		buf = append(buf, g.channel(u, w))
		u = w
	}
	return buf
}

// Hops implements Topology.
func (g *Graph) Hops(src, dst int) int { return int(g.dist[src*g.n+dst]) }

// Diameter implements DiameterHinter.
func (g *Graph) Diameter() int { return g.diam }

// String implements fmt.Stringer.
func (g *Graph) String() string {
	return fmt.Sprintf("%s (%d nodes, %d channels)", g.name, g.n, len(g.adjList))
}
