package ipsc

import (
	"math/rand"
	"testing"

	"unsched/internal/comm"
	"unsched/internal/costmodel"
	"unsched/internal/hypercube"
	"unsched/internal/sched"
)

// TestMachineReuseMatchesFresh drives one Machine through every
// protocol twice over and checks each result against a fresh machine:
// Reset must leave no residue that changes a simulation.
func TestMachineReuseMatchesFresh(t *testing.T) {
	cube := hypercube.MustNew(4)
	params := costmodel.DefaultIPSC860()
	rng := rand.New(rand.NewSource(21))
	m1, err := comm.DRegular(16, 4, 4096, rng)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := comm.DRegular(16, 8, 512, rng)
	if err != nil {
		t.Fatal(err)
	}

	reused, err := NewMachine(cube, params)
	if err != nil {
		t.Fatal(err)
	}
	type runFn struct {
		name  string
		fresh func() (Result, error)
		reuse func() (Result, error)
	}
	var runs []runFn
	for _, mat := range []*comm.Matrix{m1, m2} {
		mat := mat
		s1, err := sched.RSNL(mat, cube, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		s2, err := sched.RSN(mat, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatal(err)
		}
		lp, err := sched.LP(mat)
		if err != nil {
			t.Fatal(err)
		}
		ac, err := sched.AC(mat)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs,
			runFn{"S1", func() (Result, error) { return RunS1(cube, params, s1) },
				func() (Result, error) { return reused.RunS1(s1) }},
			runFn{"S1Barrier", func() (Result, error) { return RunS1Barrier(cube, params, s1) },
				func() (Result, error) { return reused.RunS1Barrier(s1) }},
			runFn{"S2", func() (Result, error) { return RunS2(cube, params, s2) },
				func() (Result, error) { return reused.RunS2(s2) }},
			runFn{"LP", func() (Result, error) { return RunLP(cube, params, lp) },
				func() (Result, error) { return reused.RunLP(lp) }},
			runFn{"AC", func() (Result, error) { return RunAC(cube, params, ac, mat) },
				func() (Result, error) { return reused.RunAC(ac, mat) }},
			runFn{"ACAsync", func() (Result, error) { return RunACAsync(cube, params, ac, mat) },
				func() (Result, error) { return reused.RunACAsync(ac, mat) }},
		)
	}
	// Two passes over all protocols: the second pass checks that reuse
	// after a full mixed workload is still clean.
	for pass := 0; pass < 2; pass++ {
		for _, r := range runs {
			want, err := r.fresh()
			if err != nil {
				t.Fatalf("pass %d %s fresh: %v", pass, r.name, err)
			}
			got, err := r.reuse()
			if err != nil {
				t.Fatalf("pass %d %s reused: %v", pass, r.name, err)
			}
			if got != want {
				t.Errorf("pass %d %s: reused machine %+v, fresh %+v", pass, r.name, got, want)
			}
		}
	}
}

// TestMachineReuseSizeMismatch checks the reusable entry points still
// reject schedules for the wrong machine size.
func TestMachineReuseSizeMismatch(t *testing.T) {
	cube := hypercube.MustNew(3)
	params := costmodel.DefaultIPSC860()
	m, err := NewMachine(cube, params)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := comm.DRegular(16, 2, 64, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.RSN(mat, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunS2(s); err == nil {
		t.Error("16-node schedule accepted by 8-node machine")
	}
}
