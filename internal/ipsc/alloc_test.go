// Allocation-regression tests for the Reset-reuse simulation path.
// Excluded under the race detector: its instrumentation changes
// allocation counts.
//
//go:build !race

package ipsc

import (
	"math/rand"
	"testing"

	"unsched/internal/comm"
	"unsched/internal/costmodel"
	"unsched/internal/hypercube"
	"unsched/internal/sched"
	"unsched/internal/topo"
)

// allocBudgetReusedRun bounds one RunS1 on a warmed 64-node machine.
// The flat-event engine and the arena-recycled op/attempt state make
// the event loop itself allocation-free; what remains is the per-run
// program header slice plus a handful of escaping result values —
// measured 22 allocs/run. The budget leaves ~2x headroom; a closure
// or per-message allocation reappearing in the hot path costs
// thousands and fails unmistakably.
const allocBudgetReusedRun = 60

func TestReusedRunAllocs(t *testing.T) {
	cube := hypercube.MustNew(6)
	table := topo.NewRouteTable(cube)
	params := costmodel.DefaultIPSC860()
	mat, err := comm.DRegular(64, 16, 4096, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.RSNL(mat, cube, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	mach, err := NewMachine(table, params)
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		if _, err := mach.RunS1(s); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the arenas
	if got := testing.AllocsPerRun(20, run); got > allocBudgetReusedRun {
		t.Errorf("reused RunS1: %.1f allocs/run, budget %d", got, allocBudgetReusedRun)
	}
}
