package ipsc

// Deeper machine-semantics tests: asymmetric exchanges, short-message
// fire-and-forget, async sends, mesh topologies, conservation
// properties, and compile-level validation.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"unsched/internal/comm"
	"unsched/internal/costmodel"
	"unsched/internal/hypercube"
	"unsched/internal/mesh"
	"unsched/internal/sched"
)

func TestExchangeAsymmetricSizesCostsMax(t *testing.T) {
	m := mustMachine(t, 3)
	p := params()
	programs := make([][]op, 8)
	programs[0] = []op{{kind: opExchange, peer: 1, bytes: 128 * 1024}}
	programs[1] = []op{{kind: opExchange, peer: 0, bytes: 256}}
	res, err := m.run(programs)
	if err != nil {
		t.Fatal(err)
	}
	big := p.TransferTime(128*1024, 1)
	want := p.SyncOverheadUS + p.SignalTime(1) + big
	if res.MakespanUS != want {
		t.Errorf("asymmetric exchange = %v, want %v (the larger direction)", res.MakespanUS, want)
	}
}

func TestExchangeWaitsForBusyRoute(t *testing.T) {
	// A third party's circuit across the exchange's wires delays it.
	m := mustMachine(t, 3)
	programs := make([][]op, 8)
	// 0->3 routes 0->1->3, claiming channel 1->3 (up).
	programs[0] = []op{{kind: opSendFire, peer: 3, bytes: 128 * 1024}}
	programs[3] = []op{{kind: opWaitAll}}
	// Exchange 1<->3 needs channels 1->3 and 3->1; the up channel is
	// busy until the transfer ends.
	programs[1] = []op{{kind: opExchange, peer: 3, bytes: 1024}}
	// Node 3's program: waitAll first would deadlock (exchange must be
	// reached); order exchange then waitAll.
	programs[3] = []op{{kind: opExchange, peer: 1, bytes: 1024}, {kind: opWaitAll}}
	res, err := m.run(programs)
	if err != nil {
		t.Fatal(err)
	}
	p := params()
	firstDone := p.TransferTime(128*1024, 2)
	if res.MakespanUS <= firstDone {
		t.Errorf("exchange did not wait for the crossing circuit: %v <= %v",
			res.MakespanUS, firstDone)
	}
}

func TestShortMessagesBypassReceiverEngine(t *testing.T) {
	// Two senders fire 64 B messages at one receiver simultaneously;
	// short protocol means no receiver serialization (only distinct
	// channels), so both complete in one transfer time.
	m := mustMachine(t, 3)
	p := params()
	programs := make([][]op, 8)
	programs[1] = []op{{kind: opSendFire, peer: 0, bytes: 64}}
	programs[2] = []op{{kind: opSendFire, peer: 0, bytes: 64}}
	programs[0] = []op{{kind: opWaitAll}}
	res, err := m.run(programs)
	if err != nil {
		t.Fatal(err)
	}
	slowest := p.TransferTime(64, 1) // 2->0 is 1 hop; 1->0 is 1 hop
	if res.MakespanUS != slowest {
		t.Errorf("short messages serialized: %v, want %v", res.MakespanUS, slowest)
	}
}

func TestAsyncSendsSkipBlockedReceiver(t *testing.T) {
	// Node 0 sends to 1 (busy transmitting for a long time) and to 2
	// (idle). With async sends the 0->2 transfer must not wait for
	// 0->1 to become possible.
	m := mustMachine(t, 3)
	p := params()
	longSend := p.TransferTime(128*1024, 1)
	programs := make([][]op, 8)
	programs[1] = []op{{kind: opSendFire, peer: 5, bytes: 128 * 1024}, {kind: opWaitAll}}
	programs[5] = []op{{kind: opWaitAll}}
	programs[0] = []op{
		// Small delay so node 1 is already mid-transmit when the async
		// sends are initiated.
		{kind: opDelay, cost: 100},
		{kind: opSendAsync, peer: 1, bytes: 4096},
		{kind: opSendAsync, peer: 2, bytes: 4096},
		{kind: opWaitSent},
	}
	programs[2] = []op{{kind: opWaitAll}}
	res, err := m.run(programs)
	if err != nil {
		t.Fatal(err)
	}
	// 0's send to 2 finishes quickly; 0's send to 1 waits out the long
	// transfer. Makespan ≈ longSend + short, NOT 2x longSend.
	if res.MakespanUS >= 2*longSend {
		t.Errorf("async sends convoyed: %v", res.MakespanUS)
	}
	if res.MakespanUS <= longSend {
		t.Errorf("0->1 should have waited for the long transfer: %v", res.MakespanUS)
	}
}

func TestSimulationOnMeshTopology(t *testing.T) {
	net := mesh.MustNew(4, 4, false)
	rng := rand.New(rand.NewSource(31))
	m, err := comm.UniformRandom(16, 3, 2048, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.RSNL(m, net, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunS1(net, params(), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transfers+2*res.Exchanges != m.MessageCount() {
		t.Errorf("mesh run delivered %d+2*%d of %d", res.Transfers, res.Exchanges, m.MessageCount())
	}
	// S2 on the mesh too.
	s2, err := sched.RSN(m, rng)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := RunS2(net, params(), s2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Transfers != m.MessageCount() {
		t.Errorf("mesh S2 delivered %d of %d", res2.Transfers, m.MessageCount())
	}
}

func TestSimulationOnTorusFasterThanMesh(t *testing.T) {
	// Wraparound halves route lengths for boundary traffic; the same
	// schedule-and-simulate flow on the torus should not be slower.
	rng := rand.New(rand.NewSource(32))
	m, err := comm.DRegular(64, 6, 16*1024, rng)
	if err != nil {
		t.Fatal(err)
	}
	flat := mesh.MustNew(8, 8, false)
	wrap := mesh.MustNew(8, 8, true)
	var flatMS, wrapMS float64
	for seed := int64(0); seed < 3; seed++ {
		sf, err := sched.RSNL(m, flat, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		rf, err := RunS1(flat, params(), sf)
		if err != nil {
			t.Fatal(err)
		}
		sw, err := sched.RSNL(m, wrap, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		rw, err := RunS1(wrap, params(), sw)
		if err != nil {
			t.Fatal(err)
		}
		flatMS += rf.MakespanUS
		wrapMS += rw.MakespanUS
	}
	if wrapMS >= flatMS {
		t.Errorf("torus (%v) should beat mesh (%v)", wrapMS, flatMS)
	}
}

// Property: for any random workload and any of the three executors,
// every scheduled message is delivered exactly once (conservation).
func TestConservationProperty(t *testing.T) {
	cube := hypercube.MustNew(5)
	f := func(seed int64, dRaw uint8) bool {
		d := 1 + int(dRaw)%8
		rng := rand.New(rand.NewSource(seed))
		m, err := comm.UniformRandom(32, d, 1024, rng)
		if err != nil {
			return false
		}
		s, err := sched.RSNL(m, cube, rng)
		if err != nil {
			return false
		}
		r1, err := RunS1(cube, params(), s)
		if err != nil {
			return false
		}
		if r1.Transfers+2*r1.Exchanges != m.MessageCount() {
			return false
		}
		r2, err := RunS2(cube, params(), s)
		if err != nil {
			return false
		}
		if r2.Transfers != m.MessageCount() {
			return false
		}
		o, err := sched.AC(m)
		if err != nil {
			return false
		}
		r3, err := RunAC(cube, params(), o, m)
		if err != nil {
			return false
		}
		return r3.Transfers == m.MessageCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: makespan is at least the cost of the largest single
// transfer and at most the fully serialized sum.
func TestMakespanBoundsProperty(t *testing.T) {
	cube := hypercube.MustNew(5)
	p := params()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := comm.UniformRandom(32, 4, 8192, rng)
		if err != nil {
			return false
		}
		s, err := sched.RSN(m, rng)
		if err != nil {
			return false
		}
		res, err := RunS2(cube, p, s)
		if err != nil {
			return false
		}
		minOne := p.TransferTime(8192, 1)
		serial := float64(m.MessageCount())*p.TransferTime(8192, 5) + 1e6
		return res.MakespanUS >= minOne && res.MakespanUS < serial
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestCompileLPRejectsNonLP(t *testing.T) {
	m, err := comm.UniformRandom(8, 2, 256, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.RSN(m, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileLP(s, params()); err == nil {
		t.Error("CompileLP accepted a non-LP schedule")
	}
	// A forged LP schedule with a non-XOR transfer is also rejected.
	forged := &sched.Schedule{Algorithm: "LP", N: 8}
	ph := sched.NewPhase(8)
	ph.Send[0], ph.Bytes[0] = 3, 100 // phase 0 pairs with XOR 1, not 3
	forged.Phases = append(forged.Phases, ph)
	if _, err := CompileLP(forged, params()); err == nil {
		t.Error("CompileLP accepted a forged LP schedule")
	}
}

func TestRunLPOnBitComplement(t *testing.T) {
	// Bit complement is a single XOR permutation (k = n-1): LP carries
	// it in exactly one non-empty phase, and the simulated time is one
	// concurrent exchange plus the phase sweep.
	cube := hypercube.MustNew(6)
	m, err := comm.BitComplement(64, 32*1024)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.LP(m)
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, ph := range s.Phases {
		if ph.Messages() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("bit complement spread over %d phases", nonEmpty)
	}
	res, err := RunLP(cube, params(), s)
	if err != nil {
		t.Fatal(err)
	}
	// LP performs a pairwise-synchronized exchange in every phase for
	// every pair — 63 phases x 32 pairs — of which exactly one phase
	// carries the data; nothing travels as a unidirectional transfer.
	if res.Exchanges != 63*32 {
		t.Errorf("exchanges = %d, want %d", res.Exchanges, 63*32)
	}
	if res.Transfers != 0 {
		t.Errorf("transfers = %d, want 0", res.Transfers)
	}
	p := params()
	if res.MakespanUS < p.TransferTime(32*1024, 6) {
		t.Errorf("makespan %v below one data exchange", res.MakespanUS)
	}
}

func TestIPSC2PresetRuns(t *testing.T) {
	// The predecessor machine's constants: same orderings, slower
	// absolute times.
	cube := hypercube.MustNew(6)
	rng := rand.New(rand.NewSource(33))
	m, err := comm.DRegular(64, 8, 16*1024, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.RSNL(m, cube, rng)
	if err != nil {
		t.Fatal(err)
	}
	p860 := params()
	p2 := ipsc2Params(t)
	r860, err := RunS1(cube, p860, s)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunS1(cube, p2, s)
	if err != nil {
		t.Fatal(err)
	}
	if r2.MakespanUS <= r860.MakespanUS {
		t.Errorf("iPSC/2 (%v) should be slower than iPSC/860 (%v)", r2.MakespanUS, r860.MakespanUS)
	}
}

func ipsc2Params(t *testing.T) costmodel.Params {
	t.Helper()
	p := costmodel.DefaultIPSC2()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}
