package ipsc

import (
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"unsched/internal/comm"
	"unsched/internal/costmodel"
	"unsched/internal/hypercube"
	"unsched/internal/sched"
	"unsched/internal/topo"
)

// TestDeadlockErrorNamesStuckNodes pins the diagnostic contract of
// deadlockError: the message names each stuck node with its program
// counter and current op, and truncates after eight entries so a
// wedged 1024-node run does not produce a megabyte error string.
func TestDeadlockErrorNamesStuckNodes(t *testing.T) {
	m := mustMachine(t, 4) // 16 nodes
	programs := make([][]op, 16)
	// Ten orphan receives: more than the 8-entry cap.
	for i := 0; i < 10; i++ {
		programs[i] = []op{{kind: opWaitRecv, peer: int32((i + 1) % 16)}}
	}
	_, err := m.run(programs)
	if err == nil {
		t.Fatal("ten orphan receives not detected")
	}
	msg := err.Error()
	if !strings.Contains(msg, "deadlock") {
		t.Fatalf("error %q should mention deadlock", msg)
	}
	// The first stuck node, with pc and op rendered.
	if !strings.Contains(msg, "P0@0:") {
		t.Errorf("error %q should name stuck node P0 at pc 0", msg)
	}
	// Truncated: the 9th and later stuck nodes collapse to "...".
	if !strings.Contains(msg, "...") {
		t.Errorf("error %q should truncate after 8 stuck nodes", msg)
	}
	if strings.Contains(msg, "P9@") {
		t.Errorf("error %q lists more than 8 stuck nodes", msg)
	}
}

// TestPendingSummary checks the blocked-attempt renderer used by
// contention tests: entries are labelled send/xchg by kind and
// returned sorted regardless of queue order.
func TestPendingSummary(t *testing.T) {
	m := mustMachine(t, 3)
	m.attempts = append(m.attempts[:0],
		attempt{src: 7, dst: 2},
		attempt{src: 0, dst: 1, exchange: true},
		attempt{src: 3, dst: 4},
	)
	m.pending = append(m.pending[:0], 0, 1, 2)
	got := m.pendingSummary()
	want := []string{"send 3->4", "send 7->2", "xchg 0->1"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("pendingSummary() = %v, want %v", got, want)
	}
	// Empty queue renders empty, not nil-panic.
	m.pending = m.pending[:0]
	if got := m.pendingSummary(); len(got) != 0 {
		t.Errorf("empty pending queue rendered %v", got)
	}
}

// TestMachinesShareRouteTableConcurrently is the campaign-worker
// memory model under the race detector: many machines, one dense
// RouteTable. The table must be read-only in the hot path (routeFree/
// claim/release touch only per-machine occupancy words), so parallel
// simulations over the shared table are race-free and bit-identical
// to sequential ones.
func TestMachinesShareRouteTableConcurrently(t *testing.T) {
	cube := hypercube.MustNew(5)
	table := topo.NewRouteTable(cube)
	params := costmodel.DefaultIPSC860()
	mat, err := comm.DRegular(32, 6, 2048, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.RSNL(mat, cube, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}

	ref, err := RunS1(cube, params, s)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	results := make([]Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mach, err := NewMachine(table, params)
			if err != nil {
				errs[w] = err
				return
			}
			// Two runs per worker: the second exercises Reset reuse
			// while siblings are mid-flight on the same table.
			for pass := 0; pass < 2; pass++ {
				res, err := mach.RunS1(s)
				if err != nil {
					errs[w] = err
					return
				}
				results[w] = res
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if results[w] != ref {
			t.Errorf("worker %d over shared table: %+v, sequential %+v", w, results[w], ref)
		}
	}
}
