// Package ipsc simulates the Intel iPSC/860: i860 compute nodes on a
// circuit-switched hypercube with deterministic e-cube routing. It is
// the machine substitute for the paper's 64-node CalTech system (see
// DESIGN.md §2) and reproduces the communication behaviour the paper's
// §2.2 observations describe:
//
//  1. each node supports one send and one receive at a time, and a
//     non-pairwise send + receive at the same node serialize;
//  2. a pairwise-synchronized exchange transfers both directions
//     concurrently;
//  3. circuits passing through a node do not disturb that node, and
//     crossing circuits do not disturb each other — contention exists
//     only when two circuits want the same directed channel;
//  4. long messages are sent only after the receiver indicates
//     readiness (the S1 ready signal / 0-byte message).
//
// The simulator executes per-node op programs compiled from a schedule
// (see program.go) under a deterministic discrete-event engine, and
// reports the makespan — the maximum node finish time — exactly as the
// paper measures "the maximum time spent by any processor" per run.
//
// Simplification (documented substitution): circuit acquisition is
// atomic — a transfer starts when its channels and its receiver are
// simultaneously available, rather than incrementally holding partial
// paths. This keeps the model deadlock-free while preserving the
// serialization that link contention causes.
package ipsc

import (
	"fmt"
	"sort"

	"unsched/internal/costmodel"
	"unsched/internal/des"
	"unsched/internal/topo"
)

// Machine is a simulator instance. Create one with NewMachine and
// drive it through its RunS1/RunS2/RunLP/RunAC methods, which Reset
// and reuse its state so one Machine serves an arbitrarily long run
// sequence without reallocating. A Machine is not safe for concurrent
// use; create one per goroutine.
type Machine struct {
	net    topo.Topology
	params costmodel.Params
	eng    *des.Engine
	nodes  []*node
	// chanBusy[channelIndex] marks channels held by active circuits.
	chanBusy []bool
	routeBuf []int
	pending  []*attempt
	nextSeq  int64
	// barrier state: arrivals and blocked nodes per barrier id.
	barrierCount   map[int]int
	barrierWaiters map[int][]*node
	// stats
	transfers     int
	exchanges     int
	waitedUS      float64 // total time attempts spent blocked on resources
	maxEvents     int64
	totalExpected int
	arrivedTotal  int
}

type node struct {
	id      int
	program []op
	pc      int
	// blocked marks a node waiting for an external event (signal,
	// rendezvous, arrival, or resources). Its engine is idle, so it
	// can absorb incoming circuits.
	blocked bool
	// transmitting marks an active outgoing unidirectional transfer;
	// absorbing marks an active incoming one. A pairwise exchange sets
	// both on both partners.
	transmitting bool
	absorbing    bool
	// readyFrom[r] is set when the ready signal from receiver r has
	// arrived (S1). Each (sender, receiver) message is scheduled at
	// most once, so a bool per peer suffices.
	readyFrom []bool
	// arrived[s] / consumed[s] count fully delivered messages from
	// source s; opWaitRecv consumes them.
	arrived  []int
	consumed []int
	received int // total messages absorbed (for opWaitAll)
	expected int
	done     bool
	finishUS float64
	// rendezvous state for opExchange
	atExchange bool
	// outstanding counts initiated-but-incomplete asynchronous sends
	// (opSendAsync); opWaitSent blocks while it is nonzero.
	outstanding int
}

// attempt is a transfer or exchange blocked on resources, queued for
// deterministic retry when circuits free up.
type attempt struct {
	seq      int64
	exchange bool
	async    bool // opSendAsync: completion decrements outstanding instead of advancing pc
	src, dst int  // for exchange: src < dst pair
	bytes    int64
	backSize int64 // exchange reverse direction
	queuedAt float64
}

// Result summarizes one simulated run.
type Result struct {
	// MakespanUS is the maximum node finish time in microseconds —
	// the paper's per-run communication cost.
	MakespanUS float64
	// Transfers is the number of unidirectional circuits carried;
	// Exchanges the number of pairwise bidirectional exchanges (each
	// moving two messages).
	Transfers int
	Exchanges int
	// ResourceWaitUS accumulates time attempts spent queued for
	// channels or receivers — a direct measure of contention.
	ResourceWaitUS float64
}

// NewMachine returns a simulator for one run on the given cube with
// the given timing parameters.
func NewMachine(net topo.Topology, params costmodel.Params) (*Machine, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := net.Nodes()
	m := &Machine{
		net:       net,
		params:    params,
		eng:       des.New(),
		chanBusy:  make([]bool, net.NumChannels()),
		maxEvents: int64(n) * 1_000_000,
	}
	// Per-node state is carved out of four contiguous allocations so a
	// Machine costs O(1) allocations per node instead of O(n), and so
	// Reset can clear it without freeing anything. The campaign runner
	// keeps one Machine per worker and reuses it for every run.
	backing := make([]node, n)
	ready := make([]bool, n*n)
	arrived := make([]int, n*n)
	consumed := make([]int, n*n)
	m.nodes = make([]*node, n)
	for i := 0; i < n; i++ {
		nd := &backing[i]
		nd.id = i
		nd.readyFrom = ready[i*n : (i+1)*n : (i+1)*n]
		nd.arrived = arrived[i*n : (i+1)*n : (i+1)*n]
		nd.consumed = consumed[i*n : (i+1)*n : (i+1)*n]
		m.nodes[i] = nd
	}
	return m, nil
}

// Reset returns the machine to its initial state while keeping every
// backing allocation: the event heap, the channel-occupancy table, the
// route buffer, and all per-node vectors. After Reset the machine is
// indistinguishable from a freshly built one, so a single Machine can
// drive an arbitrarily long sequence of runs allocation-free (modulo
// per-run program compilation and event closures).
func (m *Machine) Reset() {
	m.eng.Reset()
	clear(m.chanBusy)
	m.routeBuf = m.routeBuf[:0]
	for i := range m.pending {
		m.pending[i] = nil
	}
	m.pending = m.pending[:0]
	m.nextSeq = 0
	m.barrierCount = nil
	m.barrierWaiters = nil
	m.transfers = 0
	m.exchanges = 0
	m.waitedUS = 0
	m.totalExpected = 0
	m.arrivedTotal = 0
	for _, nd := range m.nodes {
		nd.program = nil
		nd.pc = 0
		nd.blocked = false
		nd.transmitting = false
		nd.absorbing = false
		clear(nd.readyFrom)
		clear(nd.arrived)
		clear(nd.consumed)
		nd.received = 0
		nd.expected = 0
		nd.done = false
		nd.finishUS = 0
		nd.atExchange = false
		nd.outstanding = 0
	}
}

// run loads the per-node programs and processes events to completion.
func (m *Machine) run(programs [][]op) (Result, error) {
	if len(programs) != len(m.nodes) {
		return Result{}, fmt.Errorf("ipsc: %d programs for %d nodes", len(programs), len(m.nodes))
	}
	// One pass over all programs tallies the expected arrivals of every
	// node at once; the per-node scan this replaces cost O(n · totalOps)
	// and dominated short-run setup.
	for src, prog := range programs {
		for _, o := range prog {
			switch o.kind {
			case opSendReady, opSendFire, opSendAsync:
				m.nodes[o.peer].expected++
			case opExchange:
				// Each endpoint's opExchange carries its outgoing
				// bytes; tally the halves directed at the peer.
				if o.bytes > 0 && o.peer != src {
					m.nodes[o.peer].expected++
				}
			}
		}
	}
	for i, nd := range m.nodes {
		nd.program = programs[i]
		m.totalExpected += nd.expected
	}
	for i := range m.nodes {
		i := i
		m.eng.At(0, func() { m.advance(m.nodes[i]) })
	}
	m.eng.Run(m.maxEvents)

	makespan := 0.0
	for _, nd := range m.nodes {
		if !nd.done {
			return Result{}, m.deadlockError()
		}
		if nd.finishUS > makespan {
			makespan = nd.finishUS
		}
	}
	return Result{
		MakespanUS:     makespan,
		Transfers:      m.transfers,
		Exchanges:      m.exchanges,
		ResourceWaitUS: m.waitedUS,
	}, nil
}

func (m *Machine) deadlockError() error {
	var stuck []string
	for _, nd := range m.nodes {
		if !nd.done {
			desc := "end"
			if nd.pc < len(nd.program) {
				desc = nd.program[nd.pc].String()
			}
			stuck = append(stuck, fmt.Sprintf("P%d@%d:%s", nd.id, nd.pc, desc))
			if len(stuck) >= 8 {
				stuck = append(stuck, "...")
				break
			}
		}
	}
	return fmt.Errorf("ipsc: simulation deadlocked at t=%.1fµs: %v", m.eng.Now(), stuck)
}

// advance executes ops of nd until it blocks or finishes. It must be
// called with the node unblocked and its engine free.
func (m *Machine) advance(nd *node) {
	nd.blocked = false
	for {
		if nd.pc >= len(nd.program) {
			if !nd.done {
				nd.done = true
				nd.finishUS = m.eng.Now()
			}
			return
		}
		o := nd.program[nd.pc]
		switch o.kind {
		case opDelay:
			nd.pc++
			if o.cost > 0 {
				m.eng.After(o.cost, func() { m.advance(nd) })
				return
			}

		case opPostRecv:
			// Post the buffer and fire the ready signal to the sender;
			// costs CPU locally, then the signal flies.
			src := o.peer
			cost := m.params.PostOverheadUS
			flight := m.params.SignalTime(m.net.Hops(nd.id, src))
			sender := m.nodes[src]
			me := nd
			m.eng.After(cost+flight, func() {
				sender.readyFrom[me.id] = true
				if sender.blocked && sender.pc < len(sender.program) {
					so := sender.program[sender.pc]
					if so.kind == opSendReady && so.peer == me.id {
						m.advance(sender)
					}
				}
			})
			nd.pc++
			m.eng.After(cost, func() { m.advance(nd) })
			return

		case opSendReady:
			if !nd.readyFrom[o.peer] {
				nd.blocked = true
				return
			}
			m.tryOrQueue(&attempt{
				seq: m.seq(), src: nd.id, dst: o.peer, bytes: o.bytes,
				queuedAt: m.eng.Now(),
			})
			return

		case opSendFire:
			m.tryOrQueue(&attempt{
				seq: m.seq(), src: nd.id, dst: o.peer, bytes: o.bytes,
				queuedAt: m.eng.Now(),
			})
			return

		case opSendAsync:
			nd.outstanding++
			m.tryOrQueue(&attempt{
				seq: m.seq(), async: true, src: nd.id, dst: o.peer, bytes: o.bytes,
				queuedAt: m.eng.Now(),
			})
			nd.pc++
			continue

		case opWaitSent:
			if nd.outstanding == 0 {
				nd.pc++
				continue
			}
			nd.blocked = true
			return

		case opBarrier:
			if m.barrierCount == nil {
				m.barrierCount = map[int]int{}
				m.barrierWaiters = map[int][]*node{}
			}
			id := o.peer
			m.barrierCount[id]++
			if m.barrierCount[id] < len(m.nodes) {
				m.barrierWaiters[id] = append(m.barrierWaiters[id], nd)
				nd.blocked = true
				return
			}
			// Last arrival: everyone pays the dissemination sweep —
			// log2(n) rounds of signal exchanges — then proceeds.
			waiters := m.barrierWaiters[id]
			delete(m.barrierWaiters, id)
			rounds := 0
			for x := 1; x < len(m.nodes); x *= 2 {
				rounds++
			}
			cost := float64(rounds) * (m.params.SyncOverheadUS + m.params.SignalTime(1))
			me := nd
			m.eng.After(cost, func() {
				me.pc++
				m.advance(me)
				for _, w := range waiters {
					w.pc++
					m.advance(w)
				}
			})
			return

		case opWaitRecv:
			if nd.arrived[o.peer] > nd.consumed[o.peer] {
				nd.consumed[o.peer]++
				nd.pc++
				continue
			}
			nd.blocked = true
			return

		case opWaitAll:
			if nd.received >= nd.expected {
				nd.pc++
				continue
			}
			nd.blocked = true
			return

		case opExchange:
			peer := m.nodes[o.peer]
			nd.atExchange = true
			if !peer.atExchange || peer.pc >= len(peer.program) {
				nd.blocked = true
				return
			}
			po := peer.program[peer.pc]
			if po.kind != opExchange || po.peer != nd.id {
				nd.blocked = true
				return
			}
			// Rendezvous complete: attempt the exchange once, owned by
			// the lower id to avoid double-queueing.
			lo, hi := nd.id, o.peer
			loBytes, hiBytes := o.bytes, po.bytes
			if lo > hi {
				lo, hi = hi, lo
				loBytes, hiBytes = hiBytes, loBytes
			}
			nd.blocked = true
			m.tryOrQueue(&attempt{
				seq: m.seq(), exchange: true, src: lo, dst: hi,
				bytes: loBytes, backSize: hiBytes, queuedAt: m.eng.Now(),
			})
			return

		default:
			panic(fmt.Sprintf("ipsc: unknown op kind %d", o.kind))
		}
	}
}

func (m *Machine) seq() int64 {
	m.nextSeq++
	return m.nextSeq
}

// tryOrQueue starts the attempt if its resources are free, otherwise
// queues it for retry on the next release.
func (m *Machine) tryOrQueue(a *attempt) {
	if m.tryStart(a) {
		return
	}
	m.pending = append(m.pending, a)
}

// retryPending re-attempts queued transfers in FIFO order. Called
// whenever resources are released.
func (m *Machine) retryPending() {
	if len(m.pending) == 0 {
		return
	}
	remaining := m.pending[:0]
	for _, a := range m.pending {
		if !m.tryStart(a) {
			remaining = append(remaining, a)
		}
	}
	m.pending = remaining
}

// routeFree reports whether all channels of the deterministic route
// are free.
func (m *Machine) routeFree(src, dst int) bool {
	m.routeBuf = m.net.RouteIDs(src, dst, m.routeBuf[:0])
	for _, id := range m.routeBuf {
		if m.chanBusy[id] {
			return false
		}
	}
	return true
}

func (m *Machine) setRoute(src, dst int, busy bool) {
	m.routeBuf = m.net.RouteIDs(src, dst, m.routeBuf[:0])
	for _, id := range m.routeBuf {
		m.chanBusy[id] = busy
	}
}

// tryStart checks resources and, if available, claims them and
// schedules the completion event. Returns false if the attempt must
// wait.
func (m *Machine) tryStart(a *attempt) bool {
	if a.exchange {
		return m.tryStartExchange(a)
	}
	src, dst := m.nodes[a.src], m.nodes[a.dst]
	// Short messages (the NX short protocol, <= 100 B) travel
	// fire-and-forget into the receiver's system buffer: they need the
	// circuit but not the receiver's engine. Long messages engage the
	// receiver: no two incoming at once, and a non-pairwise send and
	// receive at one node serialize (§2.2 observation 1) — a blocked
	// or idle receiver absorbs fine.
	short := a.bytes <= m.params.ShortMaxBytes
	if !short && (dst.absorbing || dst.transmitting) {
		return false
	}
	// A node drives at most one outgoing circuit at a time; async
	// attempts from the same node queue behind the active one.
	if a.async && src.transmitting {
		return false
	}
	if !m.routeFree(a.src, a.dst) {
		return false
	}
	hops := m.net.Hops(a.src, a.dst)
	dur := m.params.TransferTime(a.bytes, hops)
	m.setRoute(a.src, a.dst, true)
	src.transmitting = true
	if !short {
		dst.absorbing = true
	}
	m.waitedUS += m.eng.Now() - a.queuedAt
	m.transfers++
	m.eng.After(dur, func() {
		m.setRoute(a.src, a.dst, false)
		src.transmitting = false
		if !short {
			dst.absorbing = false
		}
		dst.arrived[a.src]++
		dst.received++
		m.arrivedTotal++
		if a.async {
			src.outstanding--
			if src.blocked && src.pc < len(src.program) &&
				src.program[src.pc].kind == opWaitSent && src.outstanding == 0 {
				m.advance(src)
			}
		} else {
			// Sender finished its blocking send op.
			src.pc++
			m.advance(src)
		}
		// Receiver may be waiting on this arrival.
		if dst.blocked && dst.pc < len(dst.program) {
			o := dst.program[dst.pc]
			if (o.kind == opWaitRecv && o.peer == a.src) || o.kind == opWaitAll {
				m.advance(dst)
			}
		}
		m.retryPending()
	})
	return true
}

func (m *Machine) tryStartExchange(a *attempt) bool {
	lo, hi := m.nodes[a.src], m.nodes[a.dst]
	// Both nodes are blocked at their exchange op; their engines are
	// dedicated. Other circuits may still occupy the routes.
	if lo.absorbing || lo.transmitting || hi.absorbing || hi.transmitting {
		return false
	}
	if !m.routeFree(a.src, a.dst) || !m.routeFree(a.dst, a.src) {
		return false
	}
	hops := m.net.Hops(a.src, a.dst)
	fwd, rev := 0.0, 0.0
	if a.bytes > 0 {
		fwd = m.params.TransferTime(a.bytes, hops)
	}
	if a.backSize > 0 {
		rev = m.params.TransferTime(a.backSize, hops)
	}
	// The pairwise synchronization itself is a 0-byte message exchange
	// (§2.2 observation 4: "the exchange of a dummy message"), so even
	// a data-less sync phase — LP walks all n-1 of them — costs the
	// signal flight plus software overhead.
	dur := m.params.SyncOverheadUS + m.params.SignalTime(hops) + maxf(fwd, rev)
	m.setRoute(a.src, a.dst, true)
	m.setRoute(a.dst, a.src, true)
	for _, nd := range []*node{lo, hi} {
		nd.transmitting = true
		nd.absorbing = true
	}
	m.waitedUS += m.eng.Now() - a.queuedAt
	m.exchanges++
	m.eng.After(dur, func() {
		m.setRoute(a.src, a.dst, false)
		m.setRoute(a.dst, a.src, false)
		for _, nd := range []*node{lo, hi} {
			nd.transmitting = false
			nd.absorbing = false
			nd.atExchange = false
		}
		if a.bytes > 0 {
			hi.arrived[a.src]++
			hi.received++
			m.arrivedTotal++
		}
		if a.backSize > 0 {
			lo.arrived[a.dst]++
			lo.received++
			m.arrivedTotal++
		}
		lo.pc++
		hi.pc++
		m.advance(lo)
		m.advance(hi)
		m.retryPending()
	})
	return true
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// sortAttempts is used by tests to inspect pending state.
func (m *Machine) pendingSummary() []string {
	out := make([]string, 0, len(m.pending))
	for _, a := range m.pending {
		kind := "send"
		if a.exchange {
			kind = "xchg"
		}
		out = append(out, fmt.Sprintf("%s %d->%d", kind, a.src, a.dst))
	}
	sort.Strings(out)
	return out
}
