// Package ipsc simulates the Intel iPSC/860: i860 compute nodes on a
// circuit-switched hypercube with deterministic e-cube routing. It is
// the machine substitute for the paper's 64-node CalTech system (see
// DESIGN.md §2) and reproduces the communication behaviour the paper's
// §2.2 observations describe:
//
//  1. each node supports one send and one receive at a time, and a
//     non-pairwise send + receive at the same node serialize;
//  2. a pairwise-synchronized exchange transfers both directions
//     concurrently;
//  3. circuits passing through a node do not disturb that node, and
//     crossing circuits do not disturb each other — contention exists
//     only when two circuits want the same directed channel;
//  4. long messages are sent only after the receiver indicates
//     readiness (the S1 ready signal / 0-byte message).
//
// The simulator executes per-node op programs compiled from a schedule
// (see program.go) under a deterministic discrete-event engine, and
// reports the makespan — the maximum node finish time — exactly as the
// paper measures "the maximum time spent by any processor" per run.
//
// Simplification (documented substitution): circuit acquisition is
// atomic — a transfer starts when its channels and its receiver are
// simultaneously available, rather than incrementally holding partial
// paths. This keeps the model deadlock-free while preserving the
// serialization that link contention causes.
//
// # Hot-path representation
//
// The simulator is the cost center of every campaign cell and service
// request, so its run loop is built to generate no garbage when a
// Machine is reused:
//
//   - events are flat typed records (a kind tag plus two int32
//     operands) dispatched through one des.Engine handler, stored
//     inline in the engine's reusable heap array — no closure per
//     event;
//   - transfer attempts live in a machine-owned arena ([]attempt)
//     addressed by index; the pending-retry queue is a slice of those
//     indices;
//   - barrier arrival counts and waiter lists are flat slices indexed
//     by barrier id (phase number), recycled across runs;
//   - channel occupancy is a packed []uint64 bitset; when the Machine
//     is built over a dense topo.RouteTable the free/claim/release
//     walks go word-at-a-time through the table's precomputed masks;
//   - per-run programs compile into a machine-owned [][]op arena whose
//     inner capacities persist across runs (Run* methods only; the
//     package-level Compile* functions still allocate fresh programs).
//
// After the first run on a given workload shape, Reset restores every
// arena without freeing, so a reused Machine simulates allocation-free.
package ipsc

import (
	"fmt"
	"sort"

	"unsched/internal/costmodel"
	"unsched/internal/des"
	"unsched/internal/topo"
)

// Flat event kinds dispatched through the des.Engine handler. The
// operands a and b are event-specific.
const (
	// evAdvance resumes node a's program.
	evAdvance int32 = iota
	// evReady delivers receiver b's ready signal to sender a.
	evReady
	// evBarrier releases barrier a, owned by (last-arriving) node b.
	evBarrier
	// evXferDone completes the unidirectional transfer attempts[a].
	evXferDone
	// evExchDone completes the pairwise exchange attempts[a].
	evExchDone
)

// Machine is a simulator instance. Create one with NewMachine and
// drive it through its RunS1/RunS2/RunLP/RunAC methods, which Reset
// and reuse its state so one Machine serves an arbitrarily long run
// sequence without reallocating. A Machine is not safe for concurrent
// use; create one per goroutine.
//
// Passing a *topo.RouteTable as the topology (a RouteTable is itself a
// Topology) switches channel-occupancy checks to the table's
// word-at-a-time bitset masks; any other topology routes on the fly.
type Machine struct {
	net    topo.Topology
	routes *topo.RouteTable // non-nil: dense table, word-mask occupancy path
	params costmodel.Params
	eng    *des.Engine
	nodes  []node
	// chanBusy is the packed channel-occupancy bitset: bit i marks
	// directed channel i held by an active circuit.
	chanBusy []uint64
	// busy packs each node's circuit occupancy into one byte —
	// busyTx for an active outgoing transfer, busyRx for an incoming
	// one. tryStart probes these for random peers on every retry, so
	// keeping all nodes' flags in a few cache lines matters more than
	// keeping them next to the rest of the node state.
	busy     []uint8
	routeBuf []int
	// attempts is the per-run arena of transfer/exchange attempts;
	// pending queues the arena indices of attempts blocked on
	// resources, in FIFO order.
	attempts []attempt
	pending  []int32
	// barrier state, indexed by barrier id (= phase number): arrival
	// counts and blocked-node lists, grown on demand and recycled.
	barrierCount   []int32
	barrierWaiters [][]int32
	// progs is the compile arena the Run* methods build per-node
	// programs into; inner slices keep their capacity across runs.
	// recvScratch is the compile-time receive-count scratch (S2).
	progs       [][]op
	recvScratch []int
	// stats
	transfers     int
	exchanges     int
	waitedUS      float64 // total time attempts spent blocked on resources
	maxEvents     int64
	totalExpected int
	arrivedTotal  int
}

// busy byte bits: an active outgoing circuit and an active incoming
// one. A pairwise exchange sets both bits on both partners.
const (
	busyTx = 1 << iota
	busyRx
)

type node struct {
	id      int
	program []op
	pc      int
	// blocked marks a node waiting for an external event (signal,
	// rendezvous, arrival, or resources). Its engine is idle, so it
	// can absorb incoming circuits.
	blocked bool
	// readyFrom[r] is set when the ready signal from receiver r has
	// arrived (S1). Each (sender, receiver) message is scheduled at
	// most once, so a bool per peer suffices.
	readyFrom []bool
	// arrived[s] / consumed[s] count fully delivered messages from
	// source s; opWaitRecv consumes them. int32 halves the O(n^2)
	// footprint, which is what keeps a 4096-node machine buildable.
	arrived  []int32
	consumed []int32
	received int // total messages absorbed (for opWaitAll)
	expected int
	done     bool
	finishUS float64
	// rendezvous state for opExchange
	atExchange bool
	// outstanding counts initiated-but-incomplete asynchronous sends
	// (opSendAsync); opWaitSent blocks while it is nonzero.
	outstanding int
}

// attempt is a transfer or exchange blocked on resources, queued for
// deterministic retry when circuits free up. Attempts live in the
// Machine's arena and are addressed by index — in the pending queue
// and in the completion events that reference them.
type attempt struct {
	exchange bool
	async    bool  // opSendAsync: completion decrements outstanding instead of advancing pc
	src, dst int32 // for exchange: src < dst pair
	bytes    int64
	backSize int64 // exchange reverse direction
	queuedAt float64
}

// Result summarizes one simulated run.
type Result struct {
	// MakespanUS is the maximum node finish time in microseconds —
	// the paper's per-run communication cost.
	MakespanUS float64
	// Transfers is the number of unidirectional circuits carried;
	// Exchanges the number of pairwise bidirectional exchanges (each
	// moving two messages).
	Transfers int
	Exchanges int
	// ResourceWaitUS accumulates time attempts spent queued for
	// channels or receivers — a direct measure of contention.
	ResourceWaitUS float64
}

// NewMachine returns a simulator for one run on the given cube with
// the given timing parameters.
func NewMachine(net topo.Topology, params costmodel.Params) (*Machine, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := net.Nodes()
	m := &Machine{
		net:       net,
		params:    params,
		eng:       des.New(),
		chanBusy:  make([]uint64, topo.BitsetWords(net.NumChannels())),
		maxEvents: int64(n) * 1_000_000,
	}
	if rt, ok := net.(*topo.RouteTable); ok && !rt.Lazy() {
		m.routes = rt
	}
	m.eng.SetHandler(m.handle)
	// Per-node state is carved out of four contiguous allocations so a
	// Machine costs O(1) allocations per node instead of O(n), and so
	// Reset can clear it without freeing anything. The campaign runner
	// keeps one Machine per worker and reuses it for every run.
	m.nodes = make([]node, n)
	m.busy = make([]uint8, n)
	ready := make([]bool, n*n)
	arrived := make([]int32, n*n)
	consumed := make([]int32, n*n)
	for i := range m.nodes {
		nd := &m.nodes[i]
		nd.id = i
		nd.readyFrom = ready[i*n : (i+1)*n : (i+1)*n]
		nd.arrived = arrived[i*n : (i+1)*n : (i+1)*n]
		nd.consumed = consumed[i*n : (i+1)*n : (i+1)*n]
	}
	return m, nil
}

// SetMaxEvents overrides the simulated-event bound (default
// nodes * 1e6). Exceeding the bound makes the run fail with an error
// wrapping *des.LimitError. Values <= 0 are ignored.
func (m *Machine) SetMaxEvents(v int64) {
	if v > 0 {
		m.maxEvents = v
	}
}

// Reset returns the machine to its initial state while keeping every
// backing allocation: the event heap, the channel-occupancy bitset,
// the route buffer, the attempt and barrier arenas, and all per-node
// vectors. After Reset the machine is indistinguishable from a freshly
// built one, so a single Machine can drive an arbitrarily long
// sequence of runs allocation-free.
func (m *Machine) Reset() {
	m.eng.Reset()
	clear(m.chanBusy)
	m.routeBuf = m.routeBuf[:0]
	m.attempts = m.attempts[:0]
	m.pending = m.pending[:0]
	for i := range m.barrierCount {
		m.barrierCount[i] = 0
		m.barrierWaiters[i] = m.barrierWaiters[i][:0]
	}
	clear(m.busy)
	m.transfers = 0
	m.exchanges = 0
	m.waitedUS = 0
	m.totalExpected = 0
	m.arrivedTotal = 0
	for i := range m.nodes {
		nd := &m.nodes[i]
		nd.program = nil
		nd.pc = 0
		nd.blocked = false
		clear(nd.readyFrom)
		clear(nd.arrived)
		clear(nd.consumed)
		nd.received = 0
		nd.expected = 0
		nd.done = false
		nd.finishUS = 0
		nd.atExchange = false
		nd.outstanding = 0
	}
}

// run loads the per-node programs and processes events to completion.
func (m *Machine) run(programs [][]op) (Result, error) {
	if len(programs) != len(m.nodes) {
		return Result{}, fmt.Errorf("ipsc: %d programs for %d nodes", len(programs), len(m.nodes))
	}
	// One pass over all programs tallies the expected arrivals of every
	// node at once; the per-node scan this replaces cost O(n · totalOps)
	// and dominated short-run setup.
	for src, prog := range programs {
		for _, o := range prog {
			switch o.kind {
			case opSendReady, opSendFire, opSendAsync:
				m.nodes[o.peer].expected++
			case opExchange:
				// Each endpoint's opExchange carries its outgoing
				// bytes; tally the halves directed at the peer.
				if o.bytes > 0 && int(o.peer) != src {
					m.nodes[o.peer].expected++
				}
			}
		}
	}
	for i := range m.nodes {
		m.nodes[i].program = programs[i]
		m.totalExpected += m.nodes[i].expected
	}
	for i := range m.nodes {
		m.eng.AtEvent(0, evAdvance, int32(i), 0)
	}
	if _, err := m.eng.Run(m.maxEvents); err != nil {
		return Result{}, fmt.Errorf("ipsc: %w", err)
	}

	makespan := 0.0
	for i := range m.nodes {
		nd := &m.nodes[i]
		if !nd.done {
			return Result{}, m.deadlockError()
		}
		if nd.finishUS > makespan {
			makespan = nd.finishUS
		}
	}
	return Result{
		MakespanUS:     makespan,
		Transfers:      m.transfers,
		Exchanges:      m.exchanges,
		ResourceWaitUS: m.waitedUS,
	}, nil
}

func (m *Machine) deadlockError() error {
	var stuck []string
	for i := range m.nodes {
		nd := &m.nodes[i]
		if !nd.done {
			desc := "end"
			if nd.pc < len(nd.program) {
				desc = nd.program[nd.pc].String()
			}
			stuck = append(stuck, fmt.Sprintf("P%d@%d:%s", nd.id, nd.pc, desc))
			if len(stuck) >= 8 {
				stuck = append(stuck, "...")
				break
			}
		}
	}
	return fmt.Errorf("ipsc: simulation deadlocked at t=%.1fµs: %v", m.eng.Now(), stuck)
}

// handle dispatches one flat event from the engine. It is the only
// event sink; every scheduled event is one of the ev* kinds above.
func (m *Machine) handle(kind, a, b int32) {
	switch kind {
	case evAdvance:
		m.advance(&m.nodes[a])
	case evReady:
		sender := &m.nodes[a]
		sender.readyFrom[b] = true
		if sender.blocked && sender.pc < len(sender.program) {
			so := sender.program[sender.pc]
			if so.kind == opSendReady && so.peer == b {
				m.advance(sender)
			}
		}
	case evBarrier:
		m.releaseBarrier(int(a), int(b))
	case evXferDone:
		m.finishTransfer(a)
	case evExchDone:
		m.finishExchange(a)
	default:
		panic(fmt.Sprintf("ipsc: unknown event kind %d", kind))
	}
}

// advance executes ops of nd until it blocks or finishes. It must be
// called with the node unblocked and its engine free.
func (m *Machine) advance(nd *node) {
	nd.blocked = false
	for {
		if nd.pc >= len(nd.program) {
			if !nd.done {
				nd.done = true
				nd.finishUS = m.eng.Now()
			}
			return
		}
		o := nd.program[nd.pc]
		switch o.kind {
		case opDelay:
			nd.pc++
			if o.cost > 0 {
				m.eng.AfterEvent(o.cost, evAdvance, int32(nd.id), 0)
				return
			}

		case opPostRecv:
			// Post the buffer and fire the ready signal to the sender;
			// costs CPU locally, then the signal flies. The signal event
			// is scheduled first so a zero-flight tie still delivers the
			// signal before the local resume.
			src := int(o.peer)
			cost := m.params.PostOverheadUS
			flight := m.params.SignalTime(m.hops(nd.id, src))
			m.eng.AfterEvent(cost+flight, evReady, int32(src), int32(nd.id))
			nd.pc++
			m.eng.AfterEvent(cost, evAdvance, int32(nd.id), 0)
			return

		case opSendReady:
			if !nd.readyFrom[o.peer] {
				nd.blocked = true
				return
			}
			m.tryOrQueue(m.addAttempt(attempt{
				src: int32(nd.id), dst: int32(o.peer), bytes: o.bytes,
				queuedAt: m.eng.Now(),
			}))
			return

		case opSendFire:
			m.tryOrQueue(m.addAttempt(attempt{
				src: int32(nd.id), dst: int32(o.peer), bytes: o.bytes,
				queuedAt: m.eng.Now(),
			}))
			return

		case opSendAsync:
			nd.outstanding++
			m.tryOrQueue(m.addAttempt(attempt{
				async: true, src: int32(nd.id), dst: int32(o.peer), bytes: o.bytes,
				queuedAt: m.eng.Now(),
			}))
			nd.pc++
			continue

		case opWaitSent:
			if nd.outstanding == 0 {
				nd.pc++
				continue
			}
			nd.blocked = true
			return

		case opBarrier:
			id := int(o.peer)
			m.growBarriers(id)
			m.barrierCount[id]++
			if int(m.barrierCount[id]) < len(m.nodes) {
				m.barrierWaiters[id] = append(m.barrierWaiters[id], int32(nd.id))
				nd.blocked = true
				return
			}
			// Last arrival: everyone pays the dissemination sweep —
			// log2(n) rounds of signal exchanges — then proceeds.
			rounds := 0
			for x := 1; x < len(m.nodes); x *= 2 {
				rounds++
			}
			cost := float64(rounds) * (m.params.SyncOverheadUS + m.params.SignalTime(1))
			m.eng.AfterEvent(cost, evBarrier, int32(id), int32(nd.id))
			return

		case opWaitRecv:
			if nd.arrived[o.peer] > nd.consumed[o.peer] {
				nd.consumed[o.peer]++
				nd.pc++
				continue
			}
			nd.blocked = true
			return

		case opWaitAll:
			if nd.received >= nd.expected {
				nd.pc++
				continue
			}
			nd.blocked = true
			return

		case opExchange:
			peer := &m.nodes[o.peer]
			nd.atExchange = true
			if !peer.atExchange || peer.pc >= len(peer.program) {
				nd.blocked = true
				return
			}
			po := peer.program[peer.pc]
			if po.kind != opExchange || int(po.peer) != nd.id {
				nd.blocked = true
				return
			}
			// Rendezvous complete: attempt the exchange once, owned by
			// the lower id to avoid double-queueing.
			lo, hi := nd.id, int(o.peer)
			loBytes, hiBytes := o.bytes, po.bytes
			if lo > hi {
				lo, hi = hi, lo
				loBytes, hiBytes = hiBytes, loBytes
			}
			nd.blocked = true
			m.tryOrQueue(m.addAttempt(attempt{
				exchange: true, src: int32(lo), dst: int32(hi),
				bytes: loBytes, backSize: hiBytes, queuedAt: m.eng.Now(),
			}))
			return

		default:
			panic(fmt.Sprintf("ipsc: unknown op kind %d", o.kind))
		}
	}
}

// growBarriers ensures the barrier arenas cover id.
func (m *Machine) growBarriers(id int) {
	for len(m.barrierCount) <= id {
		m.barrierCount = append(m.barrierCount, 0)
		m.barrierWaiters = append(m.barrierWaiters, nil)
	}
}

// releaseBarrier fires barrier id: the owner (last arrival) and every
// waiter resume, in arrival order. The waiter list is recycled.
func (m *Machine) releaseBarrier(id, owner int) {
	me := &m.nodes[owner]
	me.pc++
	m.advance(me)
	for _, w := range m.barrierWaiters[id] {
		wn := &m.nodes[w]
		wn.pc++
		m.advance(wn)
	}
	m.barrierWaiters[id] = m.barrierWaiters[id][:0]
}

// addAttempt appends a to the arena and returns its index.
func (m *Machine) addAttempt(a attempt) int32 {
	m.attempts = append(m.attempts, a)
	return int32(len(m.attempts) - 1)
}

// tryOrQueue starts the attempt if its resources are free, otherwise
// queues it for retry on the next release.
func (m *Machine) tryOrQueue(ai int32) {
	if m.tryStart(ai) {
		return
	}
	m.pending = append(m.pending, ai)
}

// retryPending re-attempts queued transfers in FIFO order. Called
// whenever resources are released.
func (m *Machine) retryPending() {
	if len(m.pending) == 0 {
		return
	}
	remaining := m.pending[:0]
	for _, ai := range m.pending {
		if !m.tryStart(ai) {
			remaining = append(remaining, ai)
		}
	}
	m.pending = remaining
}

// routeFree reports whether all channels of the deterministic route
// are free. Over a dense route table this is a word-at-a-time mask
// test; otherwise the route is generated and tested bit by bit.
func (m *Machine) routeFree(src, dst int) bool {
	if m.routes != nil {
		return m.routes.RouteFree(m.chanBusy, src, dst)
	}
	m.routeBuf = m.net.RouteIDs(src, dst, m.routeBuf[:0])
	for _, id := range m.routeBuf {
		if m.chanBusy[id>>6]&(uint64(1)<<(uint(id)&63)) != 0 {
			return false
		}
	}
	return true
}

func (m *Machine) setRoute(src, dst int, busy bool) {
	if m.routes != nil {
		if busy {
			m.routes.ClaimRoute(m.chanBusy, src, dst)
		} else {
			m.routes.ReleaseRoute(m.chanBusy, src, dst)
		}
		return
	}
	m.routeBuf = m.net.RouteIDs(src, dst, m.routeBuf[:0])
	if busy {
		for _, id := range m.routeBuf {
			m.chanBusy[id>>6] |= uint64(1) << (uint(id) & 63)
		}
	} else {
		for _, id := range m.routeBuf {
			m.chanBusy[id>>6] &^= uint64(1) << (uint(id) & 63)
		}
	}
}

// hops returns the route length, bypassing the Topology interface
// dispatch when a dense route table is attached: Hops is called on
// every transfer start and every receive posting, and the table lookup
// is two adjacent int32 loads.
func (m *Machine) hops(src, dst int) int {
	if m.routes != nil {
		return m.routes.Hops(src, dst)
	}
	return m.net.Hops(src, dst)
}

// tryStart checks resources and, if available, claims them and
// schedules the completion event. Returns false if the attempt must
// wait.
func (m *Machine) tryStart(ai int32) bool {
	// Unlike the finish handlers, tryStart never appends to the
	// attempt arena, so reading through the pointer is safe and skips
	// a struct copy on every retry.
	a := &m.attempts[ai]
	if a.exchange {
		return m.tryStartExchange(ai)
	}
	// Short messages (the NX short protocol, <= 100 B) travel
	// fire-and-forget into the receiver's system buffer: they need the
	// circuit but not the receiver's engine. Long messages engage the
	// receiver: no two incoming at once, and a non-pairwise send and
	// receive at one node serialize (§2.2 observation 1) — a blocked
	// or idle receiver absorbs fine.
	short := a.bytes <= m.params.ShortMaxBytes
	if !short && m.busy[a.dst] != 0 {
		return false
	}
	// A node drives at most one outgoing circuit at a time; async
	// attempts from the same node queue behind the active one.
	if a.async && m.busy[a.src]&busyTx != 0 {
		return false
	}
	if !m.routeFree(int(a.src), int(a.dst)) {
		return false
	}
	hops := m.hops(int(a.src), int(a.dst))
	dur := m.params.TransferTime(a.bytes, hops)
	m.setRoute(int(a.src), int(a.dst), true)
	m.busy[a.src] |= busyTx
	if !short {
		m.busy[a.dst] |= busyRx
	}
	m.waitedUS += m.eng.Now() - a.queuedAt
	m.transfers++
	m.eng.AfterEvent(dur, evXferDone, ai, 0)
	return true
}

// finishTransfer completes the unidirectional transfer attempts[ai]:
// release the circuit, deliver the message, resume the sender (or
// settle its async bookkeeping), wake a waiting receiver, and retry
// the pending queue.
func (m *Machine) finishTransfer(ai int32) {
	a := m.attempts[ai]
	src, dst := &m.nodes[a.src], &m.nodes[a.dst]
	short := a.bytes <= m.params.ShortMaxBytes
	m.setRoute(int(a.src), int(a.dst), false)
	m.busy[a.src] &^= busyTx
	if !short {
		m.busy[a.dst] &^= busyRx
	}
	dst.arrived[a.src]++
	dst.received++
	m.arrivedTotal++
	if a.async {
		src.outstanding--
		if src.blocked && src.pc < len(src.program) &&
			src.program[src.pc].kind == opWaitSent && src.outstanding == 0 {
			m.advance(src)
		}
	} else {
		// Sender finished its blocking send op.
		src.pc++
		m.advance(src)
	}
	// Receiver may be waiting on this arrival.
	if dst.blocked && dst.pc < len(dst.program) {
		o := dst.program[dst.pc]
		if (o.kind == opWaitRecv && o.peer == a.src) || o.kind == opWaitAll {
			m.advance(dst)
		}
	}
	m.retryPending()
}

func (m *Machine) tryStartExchange(ai int32) bool {
	a := &m.attempts[ai]
	// Both nodes are blocked at their exchange op; their engines are
	// dedicated. Other circuits may still occupy the routes.
	if m.busy[a.src] != 0 || m.busy[a.dst] != 0 {
		return false
	}
	if !m.routeFree(int(a.src), int(a.dst)) || !m.routeFree(int(a.dst), int(a.src)) {
		return false
	}
	hops := m.hops(int(a.src), int(a.dst))
	fwd, rev := 0.0, 0.0
	if a.bytes > 0 {
		fwd = m.params.TransferTime(a.bytes, hops)
	}
	if a.backSize > 0 {
		rev = m.params.TransferTime(a.backSize, hops)
	}
	// The pairwise synchronization itself is a 0-byte message exchange
	// (§2.2 observation 4: "the exchange of a dummy message"), so even
	// a data-less sync phase — LP walks all n-1 of them — costs the
	// signal flight plus software overhead.
	dur := m.params.SyncOverheadUS + m.params.SignalTime(hops) + maxf(fwd, rev)
	m.setRoute(int(a.src), int(a.dst), true)
	m.setRoute(int(a.dst), int(a.src), true)
	m.busy[a.src] = busyTx | busyRx
	m.busy[a.dst] = busyTx | busyRx
	m.waitedUS += m.eng.Now() - a.queuedAt
	m.exchanges++
	m.eng.AfterEvent(dur, evExchDone, ai, 0)
	return true
}

// finishExchange completes the pairwise exchange attempts[ai]: release
// both circuits, deliver both directions, resume both partners, and
// retry the pending queue.
func (m *Machine) finishExchange(ai int32) {
	a := m.attempts[ai]
	lo, hi := &m.nodes[a.src], &m.nodes[a.dst]
	m.setRoute(int(a.src), int(a.dst), false)
	m.setRoute(int(a.dst), int(a.src), false)
	m.busy[a.src] = 0
	m.busy[a.dst] = 0
	lo.atExchange = false
	hi.atExchange = false
	if a.bytes > 0 {
		hi.arrived[a.src]++
		hi.received++
		m.arrivedTotal++
	}
	if a.backSize > 0 {
		lo.arrived[a.dst]++
		lo.received++
		m.arrivedTotal++
	}
	lo.pc++
	hi.pc++
	m.advance(lo)
	m.advance(hi)
	m.retryPending()
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// pendingSummary renders the queued attempts sorted, for tests that
// inspect blocked state.
func (m *Machine) pendingSummary() []string {
	out := make([]string, 0, len(m.pending))
	for _, ai := range m.pending {
		a := m.attempts[ai]
		kind := "send"
		if a.exchange {
			kind = "xchg"
		}
		out = append(out, fmt.Sprintf("%s %d->%d", kind, a.src, a.dst))
	}
	sort.Strings(out)
	return out
}
