package ipsc

import (
	"fmt"

	"unsched/internal/comm"
	"unsched/internal/costmodel"
	"unsched/internal/sched"
	"unsched/internal/topo"
)

// opKind enumerates the primitive operations node programs are built
// from. They correspond to the NX-level actions the paper's execution
// schemes S1 and S2 compose (§6).
type opKind int32

const (
	// opDelay charges fixed CPU time (phase loop overhead, buffer
	// posting batches).
	opDelay opKind = iota
	// opPostRecv posts a receive buffer for a message from peer and
	// fires the 0-byte ready signal to it (S1).
	opPostRecv
	// opSendReady waits for peer's ready signal, then acquires the
	// circuit and transfers bytes (S1 send).
	opSendReady
	// opSendFire acquires the circuit and transfers without waiting
	// for a ready signal (S2 send; receives are pre-posted).
	opSendFire
	// opWaitRecv blocks until the message from peer has fully arrived.
	opWaitRecv
	// opWaitAll blocks until every message destined to this node has
	// arrived (S2's final confirmation step).
	opWaitAll
	// opExchange performs a pairwise-synchronized bidirectional
	// exchange with peer: both directions move concurrently after the
	// rendezvous (§2.2 observation 1).
	opExchange
	// opSendAsync initiates a transfer without blocking the program:
	// the node "can keep sending outgoing messages till they are all
	// done" (§3). At most one of a node's transfers is active at a
	// time, but a blocked one does not stall the others.
	opSendAsync
	// opWaitSent blocks until all of this node's asynchronous sends
	// have completed.
	opWaitSent
	// opBarrier blocks until every node has reached the same barrier
	// id — the "expensive global synchronization at the end of every
	// phase" that §6's loose synchrony exists to avoid. The barrier
	// itself costs a dissemination sweep once the last node arrives.
	opBarrier
)

// op is one program step: 24 bytes, so a node's program stays dense in
// cache while advance() walks it. peer is an int32 node id.
type op struct {
	bytes int64
	cost  float64 // opDelay only
	kind  opKind
	peer  int32
}

func (o op) String() string {
	switch o.kind {
	case opDelay:
		return fmt.Sprintf("delay(%.1fµs)", o.cost)
	case opPostRecv:
		return fmt.Sprintf("post(from=%d)", o.peer)
	case opSendReady:
		return fmt.Sprintf("sendReady(to=%d,%dB)", o.peer, o.bytes)
	case opSendFire:
		return fmt.Sprintf("sendFire(to=%d,%dB)", o.peer, o.bytes)
	case opWaitRecv:
		return fmt.Sprintf("waitRecv(from=%d)", o.peer)
	case opWaitAll:
		return "waitAll"
	case opExchange:
		return fmt.Sprintf("exchange(with=%d,%dB)", o.peer, o.bytes)
	case opSendAsync:
		return fmt.Sprintf("sendAsync(to=%d,%dB)", o.peer, o.bytes)
	case opWaitSent:
		return "waitSent"
	case opBarrier:
		return fmt.Sprintf("barrier(%d)", o.peer)
	default:
		return "?"
	}
}

// CompileS1 translates a phase schedule into per-node programs under
// the S1 protocol (paper §6): at each phase, a receiver posts its
// buffer and signals the sender; the sender transfers on receipt of
// the signal; matched send/receive pairs between the same two nodes
// become pairwise exchanges. Receivers do not block on the arrival
// itself — §6's loose synchrony gates only the sends; arrivals are
// confirmed at the end, like S2's final step. This is the execution
// the paper uses for LP and RS_NL.
func CompileS1(s *sched.Schedule, params costmodel.Params) [][]op {
	return appendS1(make([][]op, s.N), s, params, false)
}

// appendS1 compiles S1 programs into the given per-node slices,
// appending to whatever capacity they hold — the arena-reusing form
// behind CompileS1 and Machine.RunS1. withBarriers interleaves a
// global barrier after every phase (the CompileS1Barrier variant).
func appendS1(programs [][]op, s *sched.Schedule, params costmodel.Params, withBarriers bool) [][]op {
	n := s.N
	for k, p := range s.Phases {
		recv := p.Recv()
		for i := 0; i < n; i++ {
			programs[i] = append(programs[i], op{kind: opDelay, cost: params.LoopOverheadUS})
			j := p.Send[i]
			r := recv[i]
			switch {
			case j >= 0 && r == j:
				// Bidirectional pair: both nodes compile the exchange.
				programs[i] = append(programs[i], op{kind: opExchange, peer: int32(j), bytes: p.Bytes[i]})
			default:
				// Post first (never blocks), then the blocking ops, so
				// every phase's ready signals fire before anyone
				// stalls. Waiting for the phase's own arrival is the
				// loose synchrony that keeps later phases aligned —
				// and with them, the contention-freedom the scheduler
				// arranged.
				if r >= 0 {
					programs[i] = append(programs[i], op{kind: opPostRecv, peer: int32(r)})
				}
				if j >= 0 {
					programs[i] = append(programs[i], op{kind: opSendReady, peer: int32(j), bytes: p.Bytes[i]})
				}
				if r >= 0 {
					programs[i] = append(programs[i], op{kind: opWaitRecv, peer: int32(r)})
				}
			}
			if withBarriers {
				programs[i] = append(programs[i], op{kind: opBarrier, peer: int32(k)})
			}
		}
	}
	return programs
}

// CompileS1Barrier is CompileS1 with a global barrier after every
// phase — the strict phase synchronization the paper's algorithms
// assume in the abstract and that the S1 scheme was designed to avoid
// (§6). It exists for the ablation benchmark that prices loose
// synchrony against global synchronization.
func CompileS1Barrier(s *sched.Schedule, params costmodel.Params) [][]op {
	return appendS1(make([][]op, s.N), s, params, true)
}

// RunS1Barrier simulates the schedule under S1 with a global barrier
// after every phase.
func RunS1Barrier(net topo.Topology, params costmodel.Params, s *sched.Schedule) (Result, error) {
	m, err := NewMachine(net, params)
	if err != nil {
		return Result{}, err
	}
	return m.RunS1Barrier(s)
}

// RunS1Barrier is the Machine-reusing form of the package function: it
// resets the machine and runs s under S1-with-barriers.
func (m *Machine) RunS1Barrier(s *sched.Schedule) (Result, error) {
	if m.net.Nodes() != s.N {
		return Result{}, fmt.Errorf("ipsc: topology %d nodes vs schedule %d", m.net.Nodes(), s.N)
	}
	m.Reset()
	return m.run(appendS1(m.progArena(), s, m.params, true))
}

// CompileS2 translates a phase schedule into per-node programs under
// the S2 protocol (paper §6): every node pre-posts all its receive
// buffers, fires its sends in schedule order without waiting for any
// signal, and finally confirms all arrivals. The phase structure
// survives only as the send ordering — which is precisely what the
// paper says S2 is ("essentially the scheme described in Section 3,
// with the communication ordering chosen to reduce contention"). Used
// for RS_N.
func CompileS2(s *sched.Schedule, params costmodel.Params) [][]op {
	return appendS2(make([][]op, s.N), s, params, make([]int, s.N))
}

// appendS2 compiles S2 programs into the given per-node slices, using
// recvCount (len >= s.N, zeroed here) as the receive-tally scratch —
// the arena-reusing form behind CompileS2 and Machine.RunS2.
func appendS2(programs [][]op, s *sched.Schedule, params costmodel.Params, recvCount []int) [][]op {
	n := s.N
	recvCount = recvCount[:n]
	clear(recvCount)
	for _, p := range s.Phases {
		for _, j := range p.Send {
			if j >= 0 {
				recvCount[j]++
			}
		}
	}
	for i := 0; i < n; i++ {
		// Posting all buffers up front costs CPU proportional to the
		// number of expected messages.
		programs[i] = append(programs[i], op{kind: opDelay, cost: float64(recvCount[i]) * params.PostOverheadUS})
	}
	for _, p := range s.Phases {
		for i := 0; i < n; i++ {
			// Walking the scheduling table costs per-phase bookkeeping
			// on every node, sender or not.
			programs[i] = append(programs[i], op{kind: opDelay, cost: params.PhaseSoftwareUS})
			if j := p.Send[i]; j >= 0 {
				programs[i] = append(programs[i], op{kind: opSendFire, peer: int32(j), bytes: p.Bytes[i]})
			}
		}
	}
	for i := 0; i < n; i++ {
		programs[i] = append(programs[i], op{kind: opWaitAll})
	}
	return programs
}

// CompileLP translates an LP schedule into programs that perform a
// pairwise-synchronized exchange with the XOR partner in *every*
// phase, with or without data — exactly how complete-exchange codes
// drive the iPSC/860 (§4.1: "the entire communication uses pairwise
// exchanges"). A data-less phase still costs the synchronization
// handshake, which is why LP is expensive at low density. The schedule
// must come from sched.LP (phase k pairs i with i XOR (k+1)).
func CompileLP(s *sched.Schedule, params costmodel.Params) ([][]op, error) {
	return appendLP(make([][]op, s.N), s, params)
}

// appendLP compiles LP programs into the given per-node slices — the
// arena-reusing form behind CompileLP and Machine.RunLP.
func appendLP(programs [][]op, s *sched.Schedule, params costmodel.Params) ([][]op, error) {
	if s.Algorithm != "LP" {
		return nil, fmt.Errorf("ipsc: CompileLP needs an LP schedule, got %s", s.Algorithm)
	}
	n := s.N
	for k, p := range s.Phases {
		for i := 0; i < n; i++ {
			partner := i ^ (k + 1)
			if p.Send[i] >= 0 && p.Send[i] != partner {
				return nil, fmt.Errorf("ipsc: phase %d sends %d->%d, not the XOR partner %d",
					k, i, p.Send[i], partner)
			}
			programs[i] = append(programs[i],
				op{kind: opDelay, cost: params.LoopOverheadUS},
				op{kind: opExchange, peer: int32(partner), bytes: p.Bytes[i]})
		}
	}
	return programs, nil
}

// RunLP simulates an LP schedule with exchange-every-phase semantics.
func RunLP(net topo.Topology, params costmodel.Params, s *sched.Schedule) (Result, error) {
	m, err := NewMachine(net, params)
	if err != nil {
		return Result{}, err
	}
	return m.RunLP(s)
}

// RunLP is the Machine-reusing form of the package function: it resets
// the machine and runs the LP schedule with exchange-every-phase
// semantics.
func (m *Machine) RunLP(s *sched.Schedule) (Result, error) {
	if m.net.Nodes() != s.N {
		return Result{}, fmt.Errorf("ipsc: topology %d nodes vs schedule %d", m.net.Nodes(), s.N)
	}
	programs, err := appendLP(m.progArena(), s, m.params)
	if err != nil {
		return Result{}, err
	}
	m.Reset()
	return m.run(programs)
}

// CompileAC translates the asynchronous algorithm (paper §3, Figure 1)
// into node programs: pre-post everything, fire the whole send vector
// in order (csend semantics: each long-protocol send blocks until the
// transfer completes), then confirm arrivals.
func CompileAC(o *sched.ACOrder, m *comm.Matrix, params costmodel.Params) [][]op {
	return appendAC(make([][]op, o.N), o, m, params)
}

// appendAC compiles AC programs into the given per-node slices — the
// arena-reusing form behind CompileAC and Machine.RunAC.
func appendAC(programs [][]op, o *sched.ACOrder, m *comm.Matrix, params costmodel.Params) [][]op {
	n := o.N
	for i := 0; i < n; i++ {
		programs[i] = append(programs[i], op{kind: opDelay, cost: float64(m.RecvDegree(i)) * params.PostOverheadUS})
		for _, j := range o.Order[i] {
			programs[i] = append(programs[i], op{kind: opSendFire, peer: int32(j), bytes: m.At(i, j)})
		}
		programs[i] = append(programs[i], op{kind: opWaitAll})
	}
	return programs
}

// CompileACAsync is the idealized variant with unbounded asynchronous
// send depth: a send blocked on a busy receiver does not stall the
// rest of the send vector. Real NX csend cannot do this for
// long-protocol messages; the variant exists for the ablation
// benchmark that measures how much of AC's large-message collapse is
// head-of-line blocking versus raw contention.
func CompileACAsync(o *sched.ACOrder, m *comm.Matrix, params costmodel.Params) [][]op {
	return appendACAsync(make([][]op, o.N), o, m, params)
}

// appendACAsync compiles the idealized-async programs into the given
// per-node slices — the arena-reusing form behind CompileACAsync and
// Machine.RunACAsync.
func appendACAsync(programs [][]op, o *sched.ACOrder, m *comm.Matrix, params costmodel.Params) [][]op {
	n := o.N
	for i := 0; i < n; i++ {
		programs[i] = append(programs[i], op{kind: opDelay, cost: float64(m.RecvDegree(i)) * params.PostOverheadUS})
		for _, j := range o.Order[i] {
			programs[i] = append(programs[i],
				op{kind: opDelay, cost: params.PostOverheadUS},
				op{kind: opSendAsync, peer: int32(j), bytes: m.At(i, j)})
		}
		programs[i] = append(programs[i], op{kind: opWaitSent}, op{kind: opWaitAll})
	}
	return programs
}

// RunACAsync simulates the idealized asynchronous variant.
func RunACAsync(net topo.Topology, params costmodel.Params, o *sched.ACOrder, com *comm.Matrix) (Result, error) {
	m, err := NewMachine(net, params)
	if err != nil {
		return Result{}, err
	}
	return m.RunACAsync(o, com)
}

// RunACAsync is the Machine-reusing form of the package function.
func (m *Machine) RunACAsync(o *sched.ACOrder, com *comm.Matrix) (Result, error) {
	if m.net.Nodes() != o.N || com.N() != o.N {
		return Result{}, fmt.Errorf("ipsc: size mismatch topology=%d order=%d matrix=%d",
			m.net.Nodes(), o.N, com.N())
	}
	m.Reset()
	return m.run(appendACAsync(m.progArena(), o, com, m.params))
}

// RunS1 simulates the schedule under the S1 protocol and returns the
// makespan and contention statistics.
func RunS1(net topo.Topology, params costmodel.Params, s *sched.Schedule) (Result, error) {
	m, err := NewMachine(net, params)
	if err != nil {
		return Result{}, err
	}
	return m.RunS1(s)
}

// RunS1 is the Machine-reusing form of the package function: it resets
// the machine and runs s under the S1 protocol. Reusing one Machine
// across runs keeps the per-node state and the event heap warm; the
// campaign runner gives each worker its own.
func (m *Machine) RunS1(s *sched.Schedule) (Result, error) {
	if m.net.Nodes() != s.N {
		return Result{}, fmt.Errorf("ipsc: topology %d nodes vs schedule %d", m.net.Nodes(), s.N)
	}
	m.Reset()
	return m.run(appendS1(m.progArena(), s, m.params, false))
}

// RunS2 simulates the schedule under the S2 protocol.
func RunS2(net topo.Topology, params costmodel.Params, s *sched.Schedule) (Result, error) {
	m, err := NewMachine(net, params)
	if err != nil {
		return Result{}, err
	}
	return m.RunS2(s)
}

// RunS2 is the Machine-reusing form of the package function.
func (m *Machine) RunS2(s *sched.Schedule) (Result, error) {
	if m.net.Nodes() != s.N {
		return Result{}, fmt.Errorf("ipsc: topology %d nodes vs schedule %d", m.net.Nodes(), s.N)
	}
	m.Reset()
	return m.run(appendS2(m.progArena(), s, m.params, m.recvArena()))
}

// RunAC simulates the asynchronous algorithm on the matrix.
func RunAC(net topo.Topology, params costmodel.Params, o *sched.ACOrder, com *comm.Matrix) (Result, error) {
	m, err := NewMachine(net, params)
	if err != nil {
		return Result{}, err
	}
	return m.RunAC(o, com)
}

// RunAC is the Machine-reusing form of the package function.
func (m *Machine) RunAC(o *sched.ACOrder, com *comm.Matrix) (Result, error) {
	if m.net.Nodes() != o.N || com.N() != o.N {
		return Result{}, fmt.Errorf("ipsc: size mismatch topology=%d order=%d matrix=%d",
			m.net.Nodes(), o.N, com.N())
	}
	m.Reset()
	return m.run(appendAC(m.progArena(), o, com, m.params))
}

// progArena returns the machine's per-node program slices, truncated
// for reuse: one entry per node, each emptied but keeping whatever
// capacity previous runs grew, so steady-state compilation appends
// into warm storage and allocates nothing.
func (m *Machine) progArena() [][]op {
	n := len(m.nodes)
	for len(m.progs) < n {
		m.progs = append(m.progs, nil)
	}
	progs := m.progs[:n]
	for i := range progs {
		progs[i] = progs[i][:0]
	}
	return progs
}

// recvArena returns the reusable S2 receive-count scratch.
func (m *Machine) recvArena() []int {
	if n := len(m.nodes); cap(m.recvScratch) < n {
		m.recvScratch = make([]int, n)
	}
	return m.recvScratch[:len(m.nodes)]
}
