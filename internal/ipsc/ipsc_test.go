package ipsc

import (
	"math/rand"
	"strings"
	"testing"

	"unsched/internal/comm"
	"unsched/internal/costmodel"
	"unsched/internal/hypercube"
	"unsched/internal/sched"
)

func params() costmodel.Params { return costmodel.DefaultIPSC860() }

func mustMachine(t *testing.T, dim int) *Machine {
	t.Helper()
	m, err := NewMachine(hypercube.MustNew(dim), params())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// --- direct program-level tests ---

func TestSingleTransferMatchesCostModel(t *testing.T) {
	m := mustMachine(t, 3)
	p := params()
	programs := make([][]op, 8)
	programs[0] = []op{{kind: opSendFire, peer: 7, bytes: 4096}}
	programs[7] = []op{{kind: opWaitAll}}
	res, err := m.run(programs)
	if err != nil {
		t.Fatal(err)
	}
	want := p.TransferTime(4096, 3) // 0->7 is 3 hops
	if res.MakespanUS != want {
		t.Errorf("makespan %v, want %v", res.MakespanUS, want)
	}
	if res.Transfers != 1 {
		t.Errorf("transfers = %d", res.Transfers)
	}
}

func TestExchangeIsConcurrent(t *testing.T) {
	// A pairwise exchange of two equal messages costs one transfer time
	// plus sync, not two transfer times.
	m := mustMachine(t, 3)
	p := params()
	programs := make([][]op, 8)
	programs[0] = []op{{kind: opExchange, peer: 1, bytes: 65536}}
	programs[1] = []op{{kind: opExchange, peer: 0, bytes: 65536}}
	res, err := m.run(programs)
	if err != nil {
		t.Fatal(err)
	}
	oneWay := p.TransferTime(65536, 1)
	want := p.SyncOverheadUS + p.SignalTime(1) + oneWay
	if res.MakespanUS != want {
		t.Errorf("exchange makespan %v, want %v (one-way %v)", res.MakespanUS, want, oneWay)
	}
	if res.Exchanges != 1 || res.Transfers != 0 {
		t.Errorf("exchanges=%d transfers=%d", res.Exchanges, res.Transfers)
	}
}

func TestNonPairwiseSendsSerializeAtReceiver(t *testing.T) {
	// Two senders to one receiver: node contention, so the second
	// transfer waits for the first (observation: one receive at a time).
	m := mustMachine(t, 3)
	p := params()
	programs := make([][]op, 8)
	programs[1] = []op{{kind: opSendFire, peer: 0, bytes: 32768}}
	programs[2] = []op{{kind: opSendFire, peer: 0, bytes: 32768}}
	programs[0] = []op{{kind: opWaitAll}}
	res, err := m.run(programs)
	if err != nil {
		t.Fatal(err)
	}
	t1 := p.TransferTime(32768, 1)
	t2 := p.TransferTime(32768, 2) // 2->0 is 1 hop; recheck below
	_ = t2
	// 1->0 and 2->0 are each 1 hop. Serialized: ≈ 2 * t1.
	if res.MakespanUS < 2*t1-1 {
		t.Errorf("makespan %v, want ≥ %v (serialized)", res.MakespanUS, 2*t1)
	}
	if res.ResourceWaitUS <= 0 {
		t.Error("receiver contention should register wait time")
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	// 0->7 (route 0->1->3->7) and 1->3 (route 1->3) share channel 1->3.
	m := mustMachine(t, 3)
	programs := make([][]op, 8)
	programs[0] = []op{{kind: opSendFire, peer: 7, bytes: 65536}}
	programs[1] = []op{{kind: opSendFire, peer: 3, bytes: 65536}}
	programs[7] = []op{{kind: opWaitAll}}
	programs[3] = []op{{kind: opWaitAll}}
	res, err := m.run(programs)
	if err != nil {
		t.Fatal(err)
	}
	p := params()
	longT := p.TransferTime(65536, 3)
	shortT := p.TransferTime(65536, 1)
	if res.MakespanUS < longT+shortT-1 {
		t.Errorf("makespan %v, want ≥ %v (link-serialized)", res.MakespanUS, longT+shortT)
	}
}

func TestDisjointTransfersRunConcurrently(t *testing.T) {
	// 0->1 and 2->3: fully disjoint, must overlap.
	m := mustMachine(t, 3)
	p := params()
	programs := make([][]op, 8)
	programs[0] = []op{{kind: opSendFire, peer: 1, bytes: 65536}}
	programs[2] = []op{{kind: opSendFire, peer: 3, bytes: 65536}}
	programs[1] = []op{{kind: opWaitAll}}
	programs[3] = []op{{kind: opWaitAll}}
	res, err := m.run(programs)
	if err != nil {
		t.Fatal(err)
	}
	want := p.TransferTime(65536, 1)
	if res.MakespanUS != want {
		t.Errorf("makespan %v, want %v (concurrent)", res.MakespanUS, want)
	}
}

func TestPassThroughCircuitDoesNotDisturbNode(t *testing.T) {
	// Observation 2: a circuit through node 1 (0->3 routes 0->1->3)
	// does not block node 1's own disjoint transfer 1->5? 1->5 uses
	// channel dim2 up from 1. 0->3 uses 0->1 (dim0 up), 1->3 (dim1 up).
	// Disjoint channels through/from node 1 → concurrent.
	m := mustMachine(t, 3)
	p := params()
	programs := make([][]op, 8)
	programs[0] = []op{{kind: opSendFire, peer: 3, bytes: 65536}}
	programs[1] = []op{{kind: opSendFire, peer: 5, bytes: 65536}}
	programs[3] = []op{{kind: opWaitAll}}
	programs[5] = []op{{kind: opWaitAll}}
	res, err := m.run(programs)
	if err != nil {
		t.Fatal(err)
	}
	want := p.TransferTime(65536, 2) // the longer of the two (2 hops)
	if res.MakespanUS != want {
		t.Errorf("makespan %v, want %v (pass-through free)", res.MakespanUS, want)
	}
}

func TestReadySignalGatesTransfer(t *testing.T) {
	// S1: sender cannot start until the receiver posts. The receiver
	// delays before posting; the transfer must start only after post +
	// signal flight.
	m := mustMachine(t, 3)
	p := params()
	const lateness = 5000.0
	programs := make([][]op, 8)
	programs[0] = []op{{kind: opSendReady, peer: 1, bytes: 1024}}
	programs[1] = []op{
		{kind: opDelay, cost: lateness},
		{kind: opPostRecv, peer: 0},
		{kind: opWaitRecv, peer: 0},
	}
	res, err := m.run(programs)
	if err != nil {
		t.Fatal(err)
	}
	want := lateness + p.PostOverheadUS + p.SignalTime(1) + p.TransferTime(1024, 1)
	if res.MakespanUS != want {
		t.Errorf("makespan %v, want %v", res.MakespanUS, want)
	}
}

func TestDeadlockDetected(t *testing.T) {
	// A receive that never gets a matching send must be reported, not
	// spin or hang.
	m := mustMachine(t, 3)
	programs := make([][]op, 8)
	programs[0] = []op{{kind: opWaitRecv, peer: 1}}
	_, err := m.run(programs)
	if err == nil {
		t.Fatal("orphan receive not detected")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("error %q should mention deadlock", err)
	}
}

func TestMismatchedProgramCount(t *testing.T) {
	m := mustMachine(t, 3)
	if _, err := m.run(make([][]op, 3)); err == nil {
		t.Error("program/node count mismatch not rejected")
	}
}

// --- schedule-level runs ---

func rand64(t *testing.T, d int, bytes int64, seed int64) *comm.Matrix {
	t.Helper()
	m, err := comm.UniformRandom(64, d, bytes, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunS1LPCompletes(t *testing.T) {
	cube := hypercube.MustNew(6)
	m := rand64(t, 8, 1024, 1)
	s, err := sched.LP(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunS1(cube, params(), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanUS <= 0 {
		t.Error("zero makespan")
	}
	// All messages delivered: transfers + 2*exchanges == messages.
	if res.Transfers+2*res.Exchanges != m.MessageCount() {
		t.Errorf("delivered %d+2*%d, want %d messages",
			res.Transfers, res.Exchanges, m.MessageCount())
	}
}

func TestRunS2RSNCompletes(t *testing.T) {
	cube := hypercube.MustNew(6)
	m := rand64(t, 8, 1024, 2)
	s, err := sched.RSN(m, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunS2(cube, params(), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transfers != m.MessageCount() {
		t.Errorf("transfers %d, want %d", res.Transfers, m.MessageCount())
	}
	if res.Exchanges != 0 {
		t.Error("S2 should not produce exchanges")
	}
}

func TestRunS1RSNLCompletes(t *testing.T) {
	cube := hypercube.MustNew(6)
	m := rand64(t, 8, 1024, 4)
	s, err := sched.RSNL(m, cube, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunS1(cube, params(), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transfers+2*res.Exchanges != m.MessageCount() {
		t.Errorf("delivered %d+2*%d, want %d",
			res.Transfers, res.Exchanges, m.MessageCount())
	}
}

func TestRunACCompletes(t *testing.T) {
	cube := hypercube.MustNew(6)
	m := rand64(t, 8, 1024, 6)
	o, err := sched.AC(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAC(cube, params(), o, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transfers != m.MessageCount() {
		t.Errorf("transfers %d, want %d", res.Transfers, m.MessageCount())
	}
}

func TestRunsDeterministic(t *testing.T) {
	cube := hypercube.MustNew(6)
	m := rand64(t, 16, 4096, 7)
	s, err := sched.RSNL(m, cube, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunS1(cube, params(), s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunS1(cube, params(), s)
	if err != nil {
		t.Fatal(err)
	}
	if a.MakespanUS != b.MakespanUS || a.Transfers != b.Transfers {
		t.Errorf("nondeterministic: %v vs %v", a, b)
	}
}

func TestSizeMismatchesRejected(t *testing.T) {
	small := hypercube.MustNew(3)
	m := rand64(t, 4, 256, 9)
	s, err := sched.RSN(m, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunS1(small, params(), s); err == nil {
		t.Error("S1 cube mismatch not rejected")
	}
	if _, err := RunS2(small, params(), s); err == nil {
		t.Error("S2 cube mismatch not rejected")
	}
	o, err := sched.AC(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunAC(small, params(), o, m); err == nil {
		t.Error("AC cube mismatch not rejected")
	}
}

func TestInvalidParamsRejected(t *testing.T) {
	p := params()
	p.CompOpUS = -1
	if _, err := NewMachine(hypercube.MustNew(3), p); err == nil {
		t.Error("invalid params not rejected")
	}
}

// --- qualitative machine behaviour (the paper's shape) ---

// For large messages and moderate density, schedules that avoid
// contention must beat the asynchronous firehose.
func TestSchedulingBeatsACForLargeMessages(t *testing.T) {
	cube := hypercube.MustNew(6)
	var acTotal, rsnlTotal float64
	for seed := int64(0); seed < 3; seed++ {
		m := rand64(t, 16, 128*1024, 100+seed)
		o, err := sched.AC(m)
		if err != nil {
			t.Fatal(err)
		}
		acRes, err := RunAC(cube, params(), o, m)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.RSNL(m, cube, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		rsnlRes, err := RunS1(cube, params(), s)
		if err != nil {
			t.Fatal(err)
		}
		acTotal += acRes.MakespanUS
		rsnlTotal += rsnlRes.MakespanUS
	}
	if rsnlTotal >= acTotal {
		t.Errorf("RS_NL (%.0fµs) should beat AC (%.0fµs) at d=16, 128KB", rsnlTotal, acTotal)
	}
}

func TestBarrierSynchronizesAllNodes(t *testing.T) {
	// One node is slow before the barrier; everyone's finish time must
	// include the slow node's delay plus the barrier sweep.
	m := mustMachine(t, 3)
	p := params()
	const slow = 9000.0
	programs := make([][]op, 8)
	for i := range programs {
		if i == 5 {
			programs[i] = []op{{kind: opDelay, cost: slow}, {kind: opBarrier, peer: 0}}
		} else {
			programs[i] = []op{{kind: opBarrier, peer: 0}}
		}
	}
	res, err := m.run(programs)
	if err != nil {
		t.Fatal(err)
	}
	sweep := 3 * (p.SyncOverheadUS + p.SignalTime(1)) // log2(8) rounds
	if res.MakespanUS != slow+sweep {
		t.Errorf("makespan %v, want %v", res.MakespanUS, slow+sweep)
	}
}

func TestBarrierCostsMoreThanLooseSynchrony(t *testing.T) {
	// §6's claim: the loose synchrony of S1 beats per-phase global
	// synchronization.
	cube := hypercube.MustNew(6)
	m := rand64(t, 8, 8192, 55)
	s, err := sched.RSNL(m, cube, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	loose, err := RunS1(cube, params(), s)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := RunS1Barrier(cube, params(), s)
	if err != nil {
		t.Fatal(err)
	}
	if strict.MakespanUS <= loose.MakespanUS {
		t.Errorf("barrier (%v) should cost more than loose synchrony (%v)",
			strict.MakespanUS, loose.MakespanUS)
	}
	// Both deliver everything.
	if strict.Transfers+2*strict.Exchanges != m.MessageCount() {
		t.Error("barrier run lost messages")
	}
}

// LP's fixed 63 phases must hurt at low density relative to RS_NL.
func TestRSNLBeatsLPAtLowDensity(t *testing.T) {
	cube := hypercube.MustNew(6)
	var lpTotal, rsnlTotal float64
	for seed := int64(0); seed < 3; seed++ {
		m := rand64(t, 4, 128*1024, 200+seed)
		lp, err := sched.LP(m)
		if err != nil {
			t.Fatal(err)
		}
		lpRes, err := RunS1(cube, params(), lp)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.RSNL(m, cube, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		rsnlRes, err := RunS1(cube, params(), s)
		if err != nil {
			t.Fatal(err)
		}
		lpTotal += lpRes.MakespanUS
		rsnlTotal += rsnlRes.MakespanUS
	}
	if rsnlTotal >= lpTotal {
		t.Errorf("RS_NL (%.0fµs) should beat LP (%.0fµs) at d=4, 128KB", rsnlTotal, lpTotal)
	}
}
