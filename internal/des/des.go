// Package des is a small deterministic discrete-event simulation
// engine: a virtual clock and a time-ordered event queue. Ties are
// broken by insertion order, so a simulation driven by deterministic
// inputs replays identically — a property the experiment harness and
// the tests rely on.
package des

import (
	"fmt"
)

// Engine owns the virtual clock and the pending event queue.
type Engine struct {
	now   float64
	seq   int64
	queue []event
}

type event struct {
	time float64
	seq  int64
	fn   func()
}

func (a event) before(b event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// push and pop maintain the binary min-heap invariant directly on the
// []event backing array. A hand-rolled heap instead of container/heap
// avoids boxing every event into an interface{} — one allocation per
// scheduled event on the simulator's hottest path.
func (e *Engine) push(ev event) {
	e.queue = append(e.queue, ev)
	i := len(e.queue) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.queue[i].before(e.queue[parent]) {
			break
		}
		e.queue[i], e.queue[parent] = e.queue[parent], e.queue[i]
		i = parent
	}
}

func (e *Engine) pop() event {
	top := e.queue[0]
	last := len(e.queue) - 1
	e.queue[0] = e.queue[last]
	e.queue[last] = event{} // release the closure
	e.queue = e.queue[:last]
	i := 0
	for {
		left := 2*i + 1
		if left >= len(e.queue) {
			break
		}
		child := left
		if right := left + 1; right < len(e.queue) && e.queue[right].before(e.queue[left]) {
			child = right
		}
		if !e.queue[child].before(e.queue[i]) {
			break
		}
		e.queue[i], e.queue[child] = e.queue[child], e.queue[i]
		i = child
	}
	return top
}

// New returns an engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Reset rewinds the clock to zero and empties the event queue while
// keeping the queue's backing array, so an engine can be reused across
// many simulations without re-growing the heap each time. Queued event
// closures are released for garbage collection.
func (e *Engine) Reset() {
	e.now = 0
	e.seq = 0
	for i := range e.queue {
		e.queue[i].fn = nil
	}
	e.queue = e.queue[:0]
}

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn at absolute virtual time t. Scheduling in the past
// panics: it would silently corrupt causality, and every caller
// derives t from Now() plus a non-negative duration.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{time: t, seq: e.seq, fn: fn})
}

// After schedules fn dt time units from now. Negative dt panics.
func (e *Engine) After(dt float64, fn func()) {
	if dt < 0 {
		panic(fmt.Sprintf("des: negative delay %v", dt))
	}
	e.At(e.now+dt, fn)
}

// Step runs the earliest pending event, advancing the clock to its
// time. It reports whether an event was run.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.time
	ev.fn()
	return true
}

// Run processes events until the queue is empty and returns the final
// clock value. maxEvents bounds runaway simulations (0 means no
// bound); exceeding it panics, since an unbounded event cascade in a
// finite simulation is a bug in the model, not an input condition.
func (e *Engine) Run(maxEvents int64) float64 {
	var processed int64
	for e.Step() {
		processed++
		if maxEvents > 0 && processed > maxEvents {
			panic(fmt.Sprintf("des: exceeded %d events at t=%v", maxEvents, e.now))
		}
	}
	return e.now
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }
