// Package des is a small deterministic discrete-event simulation
// engine: a virtual clock and a time-ordered event queue. Ties are
// broken by insertion order, so a simulation driven by deterministic
// inputs replays identically — a property the experiment harness and
// the tests rely on.
package des

import (
	"container/heap"
	"fmt"
)

// Engine owns the virtual clock and the pending event queue.
type Engine struct {
	now   float64
	seq   int64
	queue eventHeap
}

type event struct {
	time float64
	seq  int64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// New returns an engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn at absolute virtual time t. Scheduling in the past
// panics: it would silently corrupt causality, and every caller
// derives t from Now() plus a non-negative duration.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.queue, event{time: t, seq: e.seq, fn: fn})
}

// After schedules fn dt time units from now. Negative dt panics.
func (e *Engine) After(dt float64, fn func()) {
	if dt < 0 {
		panic(fmt.Sprintf("des: negative delay %v", dt))
	}
	e.At(e.now+dt, fn)
}

// Step runs the earliest pending event, advancing the clock to its
// time. It reports whether an event was run.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(event)
	e.now = ev.time
	ev.fn()
	return true
}

// Run processes events until the queue is empty and returns the final
// clock value. maxEvents bounds runaway simulations (0 means no
// bound); exceeding it panics, since an unbounded event cascade in a
// finite simulation is a bug in the model, not an input condition.
func (e *Engine) Run(maxEvents int64) float64 {
	var processed int64
	for e.Step() {
		processed++
		if maxEvents > 0 && processed > maxEvents {
			panic(fmt.Sprintf("des: exceeded %d events at t=%v", maxEvents, e.now))
		}
	}
	return e.now
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }
