// Package des is a small deterministic discrete-event simulation
// engine: a virtual clock and a time-ordered event queue. Ties are
// broken by insertion order, so a simulation driven by deterministic
// inputs replays identically — a property the experiment harness and
// the tests rely on.
//
// Events come in two forms. The closure form (At/After) is the
// convenient general-purpose API. The flat form (AtEvent/AfterEvent)
// carries a small typed record — a kind tag plus two int32 operands —
// dispatched through a single handler installed with SetHandler; it
// exists for hot simulation loops, where a closure per event is one
// heap allocation per event and the flat record is none: the record
// lives directly in the queue's reusable backing arrays, so an engine
// driven purely by flat events generates zero garbage across
// Reset-reuse cycles.
package des

import (
	"fmt"
)

// Engine owns the virtual clock and the pending event queue.
//
// The queue is a sorted list of time buckets, each holding a FIFO of
// the events scheduled at one exact virtual time. Simulated cost
// models produce heavy timestamp collisions — many events share each
// distinct time — so bucketing turns a large share of pushes into an
// append and every pop into an index increment. A binary heap on the
// same workload spends most of its cycles on data-dependent sift
// branches the CPU cannot predict; the bucket scan is a short
// predictable loop over a handful of distinct times. Ordering is
// identical to a (time, insertion-seq) heap: buckets pop in time
// order, and within a bucket FIFO order is insertion order.
type Engine struct {
	now float64
	// Live buckets are index range [bhead, len(times)) of two parallel
	// arrays sorted ascending by time: times holds the timestamps and
	// meta packs each bucket's FIFO slot (low 32 bits) with the index
	// of its next unpopped event (high 32 bits). Both are pointer-free
	// scalars, so the memmove that sort-inserts a new bucket needs no
	// GC write barriers. bhead advances as front buckets drain — no
	// memmove on pop — and the arrays compact when they would
	// otherwise grow past capacity.
	bhead int
	times []float64
	meta  []uint64
	// hint remembers the bucket of the last push: event cascades
	// schedule many events at identical times back to back, and a
	// single compare beats rescanning the time array.
	hint int
	// fifos is the slot-addressed event storage. Slots never move, so
	// bucket inserts shuffle only the scalar arrays above; a drained
	// bucket's FIFO stays in place, truncated, and its slot returns to
	// freeSlots for the next bucket creation.
	fifos     [][]event
	freeSlots []int32
	// fns stores closure events' functions out of line, so the queued
	// event records themselves stay pointer-free: appends and memmoves
	// of []event need no GC write barriers. Entries are nilled as they
	// run and the slice is truncated whenever the queue drains.
	fns     []func()
	count   int
	handler func(kind, a, b int32)
}

// event is one queue entry: sixteen pointer-free bytes. closure marks
// an event scheduled with At/After; its a operand indexes Engine.fns.
// Flat typed events carry (kind, a, b) for the engine handler.
type event struct {
	kind    int32
	a, b    int32
	closure bool
}

const headShift = 32
const slotMask = 1<<headShift - 1

// push appends the event to the bucket at time t, creating and
// sort-inserting the bucket if t is a new timestamp. A midpoint probe
// picks the scan direction, so short-delay events (near the front of
// the queue) and long-delay events (near the back) both scan roughly
// half the distinct times at worst.
func (e *Engine) push(t float64, ev event) {
	e.count++
	n := len(e.times)
	if h := e.hint; h >= e.bhead && h < n && e.times[h] == t {
		s := e.meta[h] & slotMask
		e.fifos[s] = append(e.fifos[s], ev)
		return
	}
	i := n - 1 // insert after position i
	if lo := e.bhead; i >= lo {
		if t < e.times[(lo+n)/2] {
			j := lo
			for e.times[j] < t {
				j++
			}
			if e.times[j] == t {
				e.hint = j
				s := e.meta[j] & slotMask
				e.fifos[s] = append(e.fifos[s], ev)
				return
			}
			i = j - 1
		} else {
			for e.times[i] > t {
				i--
			}
			if e.times[i] == t {
				e.hint = i
				s := e.meta[i] & slotMask
				e.fifos[s] = append(e.fifos[s], ev)
				return
			}
		}
	}
	var slot int32
	if n := len(e.freeSlots); n > 0 {
		slot = e.freeSlots[n-1]
		e.freeSlots = e.freeSlots[:n-1]
		e.fifos[slot] = append(e.fifos[slot], ev)
	} else {
		slot = int32(len(e.fifos))
		e.fifos = append(e.fifos, append(make([]event, 0, 16), ev))
	}
	// Reclaim the drained prefix before growing past capacity: the
	// compaction is O(live buckets) and keeps the arrays from creeping
	// rightward forever.
	if e.bhead > 0 && len(e.times) == cap(e.times) {
		m := copy(e.times, e.times[e.bhead:])
		copy(e.meta, e.meta[e.bhead:])
		e.times = e.times[:m]
		e.meta = e.meta[:m]
		i -= e.bhead
		e.bhead = 0
	}
	e.times = append(e.times, 0)
	e.meta = append(e.meta, 0)
	copy(e.times[i+2:], e.times[i+1:])
	copy(e.meta[i+2:], e.meta[i+1:])
	e.times[i+1] = t
	e.meta[i+1] = uint64(uint32(slot))
	e.hint = i + 1
	return
}

// pop removes and returns the earliest event, advancing the clock to
// its bucket time. It must only be called with a non-empty queue.
func (e *Engine) pop() event {
	i := e.bhead
	m := e.meta[i]
	slot := m & slotMask
	h := m >> headShift
	f := e.fifos[slot]
	ev := f[h]
	e.meta[i] = m + 1<<headShift
	e.now = e.times[i]
	e.count--
	if int(h)+1 == len(f) {
		e.fifos[slot] = f[:0]
		e.freeSlots = append(e.freeSlots, int32(slot))
		e.bhead = i + 1
		if e.bhead == len(e.times) {
			e.bhead = 0
			e.times = e.times[:0]
			e.meta = e.meta[:0]
		}
	}
	return ev
}

// New returns an engine with the clock at zero.
func New() *Engine { return &Engine{} }

// SetHandler installs the dispatch function for flat typed events.
// Every event scheduled with AtEvent/AfterEvent is delivered to it as
// (kind, a, b). The handler is retained across Reset.
func (e *Engine) SetHandler(h func(kind, a, b int32)) { e.handler = h }

// Reset rewinds the clock to zero and empties the event queue while
// keeping the bucket backing arrays, so an engine can be reused across
// many simulations without re-growing the queue each time. Queued
// event closures are released for garbage collection; flat typed
// events hold no references and cost nothing to drop.
func (e *Engine) Reset() {
	e.now = 0
	e.count = 0
	e.bhead = 0
	e.hint = -1
	e.times = e.times[:0]
	e.meta = e.meta[:0]
	e.freeSlots = e.freeSlots[:0]
	for i := range e.fifos {
		e.fifos[i] = e.fifos[i][:0]
		e.freeSlots = append(e.freeSlots, int32(i))
	}
	for i := range e.fns {
		e.fns[i] = nil
	}
	e.fns = e.fns[:0]
}

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// panicPast keeps the cold panic path (and its fmt call) out of the
// schedule functions so they stay inlinable.
func (e *Engine) panicPast(t float64) {
	panic(fmt.Sprintf("des: scheduling at %v before now %v", t, e.now))
}

func panicNegative(dt float64) {
	panic(fmt.Sprintf("des: negative delay %v", dt))
}

// At schedules fn at absolute virtual time t. Scheduling in the past
// panics: it would silently corrupt causality, and every caller
// derives t from Now() plus a non-negative duration.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		e.panicPast(t)
	}
	// An empty queue means every fns entry has run and been nilled, so
	// the slice can be truncated before this closure claims a slot —
	// keeping fns from growing across a long closure-driven simulation.
	if e.count == 0 {
		e.fns = e.fns[:0]
	}
	idx := len(e.fns)
	e.fns = append(e.fns, fn)
	e.push(t, event{a: int32(idx), closure: true})
}

// After schedules fn dt time units from now. Negative dt panics.
func (e *Engine) After(dt float64, fn func()) {
	if dt < 0 {
		panicNegative(dt)
	}
	e.At(e.now+dt, fn)
}

// AtEvent schedules the flat typed event (kind, a, b) at absolute
// virtual time t, to be dispatched through the SetHandler function.
// It allocates nothing: the record is stored inline in the queue.
// Ties with closure events break by insertion order exactly as
// between two closures.
func (e *Engine) AtEvent(t float64, kind, a, b int32) {
	if t < e.now {
		e.panicPast(t)
	}
	e.push(t, event{kind: kind, a: a, b: b})
}

// AfterEvent schedules the flat typed event dt time units from now.
// Negative dt panics.
func (e *Engine) AfterEvent(dt float64, kind, a, b int32) {
	if dt < 0 {
		panicNegative(dt)
	}
	e.push(e.now+dt, event{kind: kind, a: a, b: b})
}

// Step runs the earliest pending event, advancing the clock to its
// time. It reports whether an event was run. A flat typed event with
// no handler installed panics: it is a wiring bug, not a runtime
// condition.
func (e *Engine) Step() bool {
	if e.count == 0 {
		return false
	}
	ev := e.pop()
	if ev.closure {
		fn := e.fns[ev.a]
		e.fns[ev.a] = nil
		fn()
	} else {
		if e.handler == nil {
			panic("des: flat event scheduled with no handler installed")
		}
		e.handler(ev.kind, ev.a, ev.b)
	}
	return true
}

// LimitError reports that Run processed more than its maxEvents bound
// without draining the queue — a runaway event cascade. Now is the
// virtual time the bound tripped at.
type LimitError struct {
	MaxEvents int64
	Now       float64
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("des: exceeded %d events at t=%v", e.MaxEvents, e.Now)
}

// Run processes events until the queue is empty and returns the final
// clock value. maxEvents bounds runaway simulations (0 means no
// bound); exceeding it returns a *LimitError with the clock at the
// point the bound tripped, leaving the remaining queue intact for
// inspection.
func (e *Engine) Run(maxEvents int64) (float64, error) {
	var processed int64
	for e.Step() {
		processed++
		if maxEvents > 0 && processed > maxEvents {
			return e.now, &LimitError{MaxEvents: maxEvents, Now: e.now}
		}
	}
	return e.now, nil
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.count }
