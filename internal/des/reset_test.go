package des

import "testing"

func TestResetReplaysIdentically(t *testing.T) {
	runOnce := func(e *Engine) (float64, []int) {
		var order []int
		e.At(3, func() { order = append(order, 3) })
		e.At(1, func() {
			order = append(order, 1)
			e.After(1, func() { order = append(order, 2) })
		})
		end, _ := e.Run(0)
		return end, order
	}
	e := New()
	t1, o1 := runOnce(e)
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 {
		t.Fatalf("after Reset: now=%v pending=%d", e.Now(), e.Pending())
	}
	t2, o2 := runOnce(e)
	if t1 != t2 {
		t.Errorf("reused engine finished at %v, fresh at %v", t2, t1)
	}
	if len(o1) != len(o2) {
		t.Fatalf("event orders differ: %v vs %v", o1, o2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Errorf("event order differs at %d: %v vs %v", i, o1, o2)
		}
	}
}

func TestResetDropsQueuedEvents(t *testing.T) {
	e := New()
	fired := false
	e.At(5, func() { fired = true })
	e.Reset()
	e.Run(0)
	if fired {
		t.Error("event queued before Reset fired after it")
	}
	// The backing array is retained: scheduling after Reset must not
	// resurrect the dropped event.
	count := 0
	e.At(1, func() { count++ })
	e.Run(0)
	if count != 1 {
		t.Errorf("ran %d events, want 1", count)
	}
}

func TestResetSeqRestartsTieBreaking(t *testing.T) {
	e := New()
	e.At(1, func() {})
	e.Run(0)
	e.Reset()
	// Two ties at the same time must fire in scheduling order even
	// after a reset rewound the sequence counter.
	var order []int
	e.At(2, func() { order = append(order, 0) })
	e.At(2, func() { order = append(order, 1) })
	e.Run(0)
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Errorf("tie order after reset = %v, want [0 1]", order)
	}
}
