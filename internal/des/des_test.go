package des

import (
	"errors"
	"testing"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.At(5, func() { order = append(order, 2) })
	e.At(1, func() { order = append(order, 1) })
	e.At(9, func() { order = append(order, 3) })
	end, err := e.Run(0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if end != 9 {
		t.Errorf("final time %v, want 9", end)
	}
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestTiesBreakByInsertion(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func() { order = append(order, i) })
	}
	e.Run(0)
	for i := range order {
		if order[i] != i {
			t.Fatalf("tie order = %v", order)
		}
	}
}

func TestClockAdvancesDuringEvents(t *testing.T) {
	e := New()
	var seen []float64
	e.At(2, func() {
		seen = append(seen, e.Now())
		e.After(3, func() { seen = append(seen, e.Now()) })
	})
	e.Run(0)
	if len(seen) != 2 || seen[0] != 2 || seen[1] != 5 {
		t.Errorf("seen = %v", seen)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("past scheduling did not panic")
			}
		}()
		e.At(1, func() {})
	})
	e.Run(0)
}

func TestNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRunBoundReturnsLimitError(t *testing.T) {
	e := New()
	var loop func()
	loop = func() { e.After(1, loop) }
	e.After(0, loop)
	_, err := e.Run(100)
	if err == nil {
		t.Fatal("event cascade did not trip the bound")
	}
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("error %T is not a *LimitError: %v", err, err)
	}
	if le.MaxEvents != 100 {
		t.Errorf("LimitError.MaxEvents = %d, want 100", le.MaxEvents)
	}
	if le.Now != e.Now() {
		t.Errorf("LimitError.Now = %v, engine now %v", le.Now, e.Now())
	}
	// The queue is left intact for inspection, and the engine recovers
	// after a Reset.
	if e.Pending() == 0 {
		t.Error("queue drained despite limit error")
	}
	e.Reset()
	e.At(1, func() {})
	if _, err := e.Run(10); err != nil {
		t.Errorf("Run after Reset: %v", err)
	}
}

func TestStepAndPending(t *testing.T) {
	e := New()
	if e.Step() {
		t.Error("Step on empty queue should be false")
	}
	e.At(1, func() {})
	e.At(2, func() {})
	if e.Pending() != 2 {
		t.Errorf("Pending = %d", e.Pending())
	}
	if !e.Step() {
		t.Error("Step should run an event")
	}
	if e.Pending() != 1 {
		t.Errorf("Pending after Step = %d", e.Pending())
	}
}

func TestFlatEventsDispatchThroughHandler(t *testing.T) {
	e := New()
	type rec struct{ kind, a, b int32 }
	var got []rec
	e.SetHandler(func(kind, a, b int32) { got = append(got, rec{kind, a, b}) })
	e.AtEvent(3, 1, 10, 11)
	e.AtEvent(1, 2, 20, 21)
	e.AfterEvent(2, 3, 30, 31)
	end, err := e.Run(0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if end != 3 {
		t.Errorf("final time %v, want 3", end)
	}
	want := []rec{{2, 20, 21}, {3, 30, 31}, {1, 10, 11}}
	if len(got) != len(want) {
		t.Fatalf("dispatched %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatched %v, want %v", got, want)
		}
	}
}

func TestFlatAndClosureEventsShareTieOrder(t *testing.T) {
	e := New()
	var order []int
	e.SetHandler(func(kind, a, b int32) { order = append(order, int(a)) })
	e.At(4, func() { order = append(order, 0) })
	e.AtEvent(4, 0, 1, 0)
	e.At(4, func() { order = append(order, 2) })
	e.AtEvent(4, 0, 3, 0)
	e.Run(0)
	for i := range order {
		if order[i] != i {
			t.Fatalf("tie order = %v", order)
		}
	}
}

func TestFlatEventWithoutHandlerPanics(t *testing.T) {
	e := New()
	e.AtEvent(1, 0, 0, 0)
	defer func() {
		if recover() == nil {
			t.Error("flat event without handler did not panic")
		}
	}()
	e.Step()
}
