package des

import (
	"testing"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.At(5, func() { order = append(order, 2) })
	e.At(1, func() { order = append(order, 1) })
	e.At(9, func() { order = append(order, 3) })
	end := e.Run(0)
	if end != 9 {
		t.Errorf("final time %v, want 9", end)
	}
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestTiesBreakByInsertion(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func() { order = append(order, i) })
	}
	e.Run(0)
	for i := range order {
		if order[i] != i {
			t.Fatalf("tie order = %v", order)
		}
	}
}

func TestClockAdvancesDuringEvents(t *testing.T) {
	e := New()
	var seen []float64
	e.At(2, func() {
		seen = append(seen, e.Now())
		e.After(3, func() { seen = append(seen, e.Now()) })
	})
	e.Run(0)
	if len(seen) != 2 || seen[0] != 2 || seen[1] != 5 {
		t.Errorf("seen = %v", seen)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("past scheduling did not panic")
			}
		}()
		e.At(1, func() {})
	})
	e.Run(0)
}

func TestNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRunBoundPanicsOnCascade(t *testing.T) {
	e := New()
	var loop func()
	loop = func() { e.After(1, loop) }
	e.After(0, loop)
	defer func() {
		if recover() == nil {
			t.Error("event cascade did not trip the bound")
		}
	}()
	e.Run(100)
}

func TestStepAndPending(t *testing.T) {
	e := New()
	if e.Step() {
		t.Error("Step on empty queue should be false")
	}
	e.At(1, func() {})
	e.At(2, func() {})
	if e.Pending() != 2 {
		t.Errorf("Pending = %d", e.Pending())
	}
	if !e.Step() {
		t.Error("Step should run an event")
	}
	if e.Pending() != 1 {
		t.Errorf("Pending after Step = %d", e.Pending())
	}
}
