package expt

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"unsched/internal/hypercube"
	"unsched/internal/topo"
	"unsched/internal/workload"
)

// renderTable1 runs Table1 at the given parallelism and renders it to
// text, so determinism comparisons cover the full pipeline down to the
// formatted bytes.
func renderTable1(t *testing.T, cfg Config, parallelism int) string {
	t.Helper()
	r := &Runner{Config: cfg, Parallelism: parallelism}
	rows, err := r.Table1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTable1(&buf, rows); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func renderRegionMap(t *testing.T, cfg Config, parallelism int) string {
	t.Helper()
	r := &Runner{Config: cfg, Parallelism: parallelism}
	regions, err := r.RegionMap(context.Background(), []int{2, 8, 12}, []int64{64, 4096, 128 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRegionMap(&buf, regions); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestRunnerDeterministicAcrossParallelism is the tentpole invariant:
// the campaign output at any worker count is byte-identical to the
// sequential run, because every unit's RNG streams are keyed by its
// (d, M, sample, algorithm) tuple, never by execution order.
func TestRunnerDeterministicAcrossParallelism(t *testing.T) {
	// Table 1 needs the 64-node cube (its densities reach 48); the
	// region map runs on a 16-node cube to keep the grid cheap.
	cfg := DefaultConfig()
	cfg.Samples = 2

	seqTable := renderTable1(t, cfg, 1)
	for _, p := range []int{2, 8} {
		if got := renderTable1(t, cfg, p); got != seqTable {
			t.Errorf("Table1 at parallelism %d differs from sequential:\n--- p=1\n%s--- p=%d\n%s", p, seqTable, p, got)
		}
	}

	cfg.Topology = hypercube.MustNew(4)
	seqMap := renderRegionMap(t, cfg, 1)
	for _, p := range []int{3, 8} {
		if got := renderRegionMap(t, cfg, p); got != seqMap {
			t.Errorf("RegionMap at parallelism %d differs from sequential:\n--- p=1\n%s--- p=%d\n%s", p, seqMap, p, got)
		}
	}
}

// TestRunnerDeterministicOnAnyTopology extends the tentpole invariant
// across the topology-generic engine: on a torus, a ring, and an
// arbitrary graph, the campaign output at any worker count is
// byte-identical to the sequential run — unit RNG streams are keyed
// by coordinates, never by worker scheduling or topology internals.
func TestRunnerDeterministicOnAnyTopology(t *testing.T) {
	// Node counts are powers of two because the contender set includes
	// LP, whose XOR pairing needs one.
	graph16 := "graph:16:0-1,1-2,2-3,3-4,4-5,5-6,6-7,7-8,8-9,9-10,10-11,11-12,12-13,13-14,14-15,15-0,0-8,4-12,2-10"
	for _, spec := range []string{"torus:4x4", "ring:16", graph16} {
		cfg := DefaultConfig()
		cfg.Topology = topo.MustParseSpec(spec).MustBuild()
		cfg.Samples = 2
		seq := renderRegionMap(t, cfg, 1)
		for _, p := range []int{3, 8} {
			if got := renderRegionMap(t, cfg, p); got != seq {
				t.Errorf("%s: RegionMap at parallelism %d differs from sequential:\n--- p=1\n%s--- p=%d\n%s",
					spec, p, seq, p, got)
			}
		}
	}
}

// TestRunnerSharedRouteTable: a caller-supplied Config.Routes (the
// daemon sharing path) must change nothing about the measured
// numbers, and a table for the wrong topology must be rejected.
func TestRunnerSharedRouteTable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = topo.MustParseSpec("torus:4x4").MustBuild()
	cfg.Samples = 2
	own, err := (&Runner{Config: cfg, Parallelism: 4}).MeasureCell(context.Background(), 4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Routes = topo.NewRouteTable(cfg.Topology)
	shared, err := (&Runner{Config: cfg, Parallelism: 4}).MeasureCell(context.Background(), 4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms {
		if own[alg] != shared[alg] {
			t.Errorf("%s: per-campaign table %+v != shared table %+v", alg, own[alg], shared[alg])
		}
	}
	cfg.Routes = topo.NewRouteTable(hypercube.MustNew(4))
	if err := cfg.Validate(); err == nil {
		t.Error("route table for the wrong topology accepted")
	}
}

// TestRunnerMatchesMeasureCell checks the pooled single-cell path and
// the convenience Config.MeasureCell agree exactly.
func TestRunnerMatchesMeasureCell(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Samples = 2
	direct, err := cfg.MeasureCell(8, 1024)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := (&Runner{Config: cfg, Parallelism: 4}).MeasureCell(context.Background(), 8, 1024)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms {
		if direct[alg] != pooled[alg] {
			t.Errorf("%s: direct %+v != pooled %+v", alg, direct[alg], pooled[alg])
		}
	}
}

func TestRunnerCancellation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Samples = 50
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &Runner{Config: cfg, Parallelism: 2}
	if _, err := r.Table1(ctx); err == nil {
		t.Error("cancelled campaign returned no error")
	}
}

func TestRunnerCancelMidway(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = hypercube.MustNew(4)
	cfg.Samples = 4
	ctx, cancel := context.WithCancel(context.Background())
	stopAt := 3
	r := &Runner{Config: cfg, Parallelism: 2}
	r.Progress = func(done, total int) {
		if done == stopAt {
			cancel()
		}
	}
	if _, err := r.MeasureCells(ctx, []Point{UniformPoint(4, 1024), UniformPoint(8, 1024), UniformPoint(12, 1024)}); err != context.Canceled {
		t.Errorf("mid-campaign cancel returned %v, want context.Canceled", err)
	}
}

func TestRunnerProgress(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = hypercube.MustNew(3)
	cfg.Samples = 2
	var dones []int
	var totals []int
	r := &Runner{Config: cfg, Parallelism: 4}
	r.Progress = func(done, total int) {
		dones = append(dones, done)
		totals = append(totals, total)
	}
	points := []Point{UniformPoint(2, 256), UniformPoint(4, 256)}
	if _, err := r.MeasureCells(context.Background(), points); err != nil {
		t.Fatal(err)
	}
	want := len(points) * cfg.Samples * len(Algorithms)
	if len(dones) != want {
		t.Fatalf("progress called %d times, want %d", len(dones), want)
	}
	for i, d := range dones {
		if d != i+1 {
			t.Errorf("progress done[%d] = %d, want %d", i, d, i+1)
		}
		if totals[i] != want {
			t.Errorf("progress total[%d] = %d, want %d", i, totals[i], want)
		}
	}
}

func TestRunnerRejectsInvalidConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Samples = 0
	r := NewRunner(cfg)
	if _, err := r.MeasureCells(context.Background(), []Point{UniformPoint(4, 64)}); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestRunnerFineGrainedDeterministic pins the fine fan-out mode: a
// single-cell campaign with more workers than (workload, sample) units
// drops to (unit, algorithm) granularity, and must still measure
// byte-identically to the sequential coarse run — the fine items key
// their streams by the same coordinates and regenerate the same
// matrices. Progress accounting must also be unchanged: one tick per
// (unit, algorithm) either way.
func TestRunnerFineGrainedDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = topo.MustParseSpec("torus:4x4").MustBuild()
	cfg.Samples = 2 // 1 point x 2 samples = 2 units: parallelism >2 goes fine
	seq, err := (&Runner{Config: cfg, Parallelism: 1}).MeasureCell(context.Background(), 4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 3, 8} {
		var dones []int
		r := &Runner{Config: cfg, Parallelism: p}
		r.Progress = func(done, total int) {
			if total != 2*len(Algorithms) {
				t.Errorf("p=%d: progress total %d, want %d", p, total, 2*len(Algorithms))
			}
			dones = append(dones, done)
		}
		got, err := r.MeasureCell(context.Background(), 4, 1024)
		if err != nil {
			t.Fatal(err)
		}
		if len(dones) != 2*len(Algorithms) || dones[len(dones)-1] != 2*len(Algorithms) {
			t.Errorf("p=%d: progress ticks %v, want %d monotone ticks", p, dones, 2*len(Algorithms))
		}
		for _, alg := range Algorithms {
			if got[alg] != seq[alg] {
				t.Errorf("%s at parallelism %d: %+v != sequential %+v", alg, p, got[alg], seq[alg])
			}
		}
	}
}

// TestRunnerWorkloadDeterministicAcrossParallelism extends the
// tentpole invariant across the workload axis: a mixed grid of
// non-uniform workloads (halo, hot-spot, stencil, spmv, permutation
// traffic) on a torus measures bit-identically at every worker count.
func TestRunnerWorkloadDeterministicAcrossParallelism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = topo.MustParseSpec("torus:4x4").MustBuild()
	cfg.Samples = 2
	specs := []workload.Spec{
		workload.MustParseSpec("halo:8x8:512"),
		workload.MustParseSpec("hotspot:4:1024:2"),
		workload.MustParseSpec("stencil3d:4x4x4:64"),
		workload.MustParseSpec("spmv:6:8"),
		workload.MustParseSpec("perm:2048"),
		workload.MustParseSpec("scatter:4:1024"),
	}
	render := func(parallelism int) string {
		r := &Runner{Config: cfg, Parallelism: parallelism}
		cells, err := r.MeasureWorkloads(context.Background(), specs)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteWorkloadTable(&buf, cells); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq := render(1)
	for _, p := range []int{3, 8} {
		if got := render(p); got != seq {
			t.Errorf("workload grid at parallelism %d differs from sequential:\n--- p=1\n%s--- p=%d\n%s", p, seq, p, got)
		}
	}
	for _, sp := range specs {
		if !strings.Contains(seq, sp.String()) {
			t.Errorf("workload table missing row for %s:\n%s", sp, seq)
		}
	}
}

// TestRunnerUniformSpecMatchesClassicGrid: the uniform:* re-expression
// of the density sweep is not merely equivalent — it is the same
// cells, stream for stream. A classic (Density, MsgBytes) point and
// its workload.UniformSpec form must measure identically.
func TestRunnerUniformSpecMatchesClassicGrid(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = hypercube.MustNew(4)
	cfg.Samples = 2
	r := &Runner{Config: cfg, Parallelism: 4}
	classic, err := r.MeasureCells(context.Background(), []Point{{Density: 4, MsgBytes: 1024}})
	if err != nil {
		t.Fatal(err)
	}
	viaSpec, err := r.MeasureWorkloads(context.Background(), []workload.Spec{workload.UniformSpec(4, 1024)})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms {
		if classic[0][alg] != viaSpec[0][alg] {
			t.Errorf("%s: classic %+v != spec form %+v", alg, classic[0][alg], viaSpec[0][alg])
		}
	}
}

// TestRunnerScatterDistinctFromUniform: the scatter workload (the
// O(d) send-side generator) must draw from its own stream key — a
// scatter cell and a uniform cell with identical (d, bytes) must not
// measure as the same numbers.
func TestRunnerScatterDistinctFromUniform(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = hypercube.MustNew(4)
	cfg.Samples = 2
	r := &Runner{Config: cfg, Parallelism: 2}
	cells, err := r.MeasureWorkloads(context.Background(), []workload.Spec{
		workload.UniformSpec(4, 1024),
		workload.ScatterSpec(4, 1024),
	})
	if err != nil {
		t.Fatal(err)
	}
	if cells[0][RSNL].CommMS == cells[1][RSNL].CommMS {
		t.Error("scatter cell measured identically to the uniform cell; stream keys must differ")
	}
}

// TestRunnerRejectsUnbuildableWorkload: a spec that cannot build on
// the campaign machine fails fast with an error naming it.
func TestRunnerRejectsUnbuildableWorkload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = hypercube.MustNew(3) // 8 nodes: not square
	cfg.Samples = 1
	r := &Runner{Config: cfg}
	_, err := r.MeasureWorkloads(context.Background(), []workload.Spec{workload.TransposeSpec(64)})
	if err == nil || !strings.Contains(err.Error(), "transpose") {
		t.Errorf("unbuildable workload error = %v, want one naming transpose", err)
	}
	_, err = r.MeasureCells(context.Background(), []Point{{Density: 4, MsgBytes: 64, Workload: workload.PermSpec(64)}})
	if err == nil {
		t.Error("ambiguous point (both shorthand and Workload) accepted")
	}
}
