// Package expt is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§6): Table 1 (communication
// cost, phase counts, scheduling cost), Figures 6-9 (communication
// cost versus message size per density), Figures 10-11 (scheduling
// overhead fraction), and Figure 5 (the (d, M) region map of winning
// algorithms).
//
// The measurement protocol follows the paper: a test set of random
// samples per density (the paper uses 50; configurable here), each
// sample's communication cost is the maximum time spent by any
// processor, and cells report the average over samples. All
// randomness is derived from a single master seed.
//
// The engine is generic along both campaign axes:
//
// Topology: Config carries any topo.Topology — the paper's hypercube
// (the default), a mesh or torus, a ring, an arbitrary graph — because
// the §6 protocol needs nothing from the machine beyond deterministic
// routing (§5's observation). All scheduling and simulation inside a
// campaign runs over one shared precomputed route table, built per
// campaign or supplied via Config.Routes by callers that run many
// campaigns on one machine.
//
// Workload: every grid cell is a workload.Spec — the paper's uniform
// d-regular sweep ("uniform:D:BYTES", the default every table and
// figure uses), or any other spec the workload grammar speaks
// (hot-spot, halo exchange, sparse mat-vec, permutations, 3D
// stencils, ...). The classic density x size grids are just lists of
// uniform:* specs (UniformSpecs); MeasureWorkloads sweeps arbitrary
// spec lists. The campaign grid is therefore (topology x workload x
// sample).
//
// Campaigns execute on the Runner, a worker pool that fans every
// (workload, sample, algorithm) unit out concurrently. Workers
// regenerate each cell's matrix into a per-worker reused buffer
// (workload.Spec.BuildInto) instead of allocating n^2 storage per
// cell. Each unit's RNG streams are keyed by the master seed and the
// unit's own coordinates (the workload's stream key, the sample, the
// algorithm) — never by worker scheduling or topology internals — so
// results are bit-identical at any parallelism on every topology; see
// runner.go.
package expt

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"text/tabwriter"

	"unsched/internal/comm"
	"unsched/internal/costmodel"
	"unsched/internal/hypercube"
	"unsched/internal/ipsc"
	"unsched/internal/plot"
	"unsched/internal/sched"
	"unsched/internal/topo"
)

// Algorithm names the paper's four contenders.
type Algorithm string

const (
	AC   Algorithm = "AC"
	LP   Algorithm = "LP"
	RSN  Algorithm = "RS_N"
	RSNL Algorithm = "RS_NL"
)

// Algorithms lists the contenders in the paper's column order.
var Algorithms = []Algorithm{AC, LP, RSN, RSNL}

// Config parameterizes a measurement campaign.
type Config struct {
	// Topology is the machine the campaign measures. Any deterministic-
	// routing topo.Topology works — the paper's hypercube, a mesh or
	// torus, a ring, an arbitrary graph — because the §6 protocol needs
	// nothing beyond deterministic routes (§5's observation).
	Topology topo.Topology
	// Routes optionally supplies a prebuilt route table for Topology.
	// When nil, the Runner precomputes one per campaign; supply a
	// shared table (topo.NewRouteTable) to amortize the O(n^2*diameter)
	// build across many campaigns on the same machine — the unschedd
	// daemon does exactly that.
	Routes  *topo.RouteTable
	Params  costmodel.Params
	Samples int   // random samples per (d, M) cell; the paper uses 50
	Seed    int64 // master seed; everything derives from it
	// Outcomes, when non-nil, receives the aggregated evaluation
	// artifact of every measured (workload, algorithm) cell: the
	// sample-mean sched.Outcome (simulated communication, modeled
	// scheduling cost, measured features) plus the sample count it
	// aggregates. The campaign is then a calibration training loop:
	// the unschedd service appends these to its quality store to
	// calibrate algorithm "auto". Calls are made from the campaign's
	// deterministic aggregation pass — point order, one goroutine —
	// never from workers, so the sink needs no locking and sees
	// identical calls at any parallelism.
	Outcomes func(workload string, samples int, o sched.Outcome)
}

// DefaultConfig returns the paper's machine (64-node cube) with the
// calibrated cost model and a modest sample count suitable for quick
// runs; raise Samples to 50 to match the paper's protocol exactly.
func DefaultConfig() Config {
	return Config{
		Topology: hypercube.MustNew(6),
		Params:   costmodel.DefaultIPSC860(),
		Samples:  10,
		Seed:     1994,
	}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.Topology == nil {
		return fmt.Errorf("expt: nil topology")
	}
	if c.Routes != nil && c.Routes.Topology().Name() != c.Topology.Name() {
		return fmt.Errorf("expt: route table is for %s, config topology is %s",
			c.Routes.Topology().Name(), c.Topology.Name())
	}
	if c.Samples <= 0 {
		return fmt.Errorf("expt: Samples must be positive, got %d", c.Samples)
	}
	return c.Params.Validate()
}

// Cell is one measured table cell: an algorithm at one workload point.
type Cell struct {
	Algorithm Algorithm
	// Workload is the canonical spec of the cell's workload
	// ("uniform:8:1024", "halo:64x64:512", ...).
	Workload string
	// Density is the workload's nominal density: the D parameter of the
	// degree-parameterized kinds, 0 for data-dependent patterns (halo,
	// spmv, stencil3d).
	Density  int
	MsgBytes int64
	CommMS   float64 // mean over samples of per-run makespan, ms
	CompMS   float64 // mean modeled scheduling cost, ms (0 for AC)
	Iters    float64 // mean phase count (0 for AC)
	CommStd  float64 // std-dev of makespan across samples, ms
}

// MeasureCell runs the full sample set for one (d, M) point and
// returns a Cell per algorithm, measured on the same samples so
// algorithms are compared pattern-for-pattern. It runs through the
// parallel Runner at default parallelism; build a Runner directly to
// control worker count, cancellation, or progress reporting.
func (c Config) MeasureCell(d int, msgBytes int64) (map[Algorithm]Cell, error) {
	return NewRunner(c).MeasureCell(context.Background(), d, msgBytes)
}

// runOne schedules and simulates one sample under one algorithm on
// the given reusable machine and scheduler core, returning the run's
// evaluation artifact: the core's Outcome with the simulated makespan
// filled in. Core methods consume the identical RNG stream as the
// package-level functions, so results are bit-identical to the
// pre-core harness.
func (c Config) runOne(mach *ipsc.Machine, core *sched.Core, alg Algorithm, m *comm.Matrix, rng *rand.Rand) (sched.Outcome, error) {
	var (
		s   *sched.Schedule
		err error
	)
	switch alg {
	case AC:
		order, acErr := core.AC(m)
		if acErr != nil {
			return sched.Outcome{}, acErr
		}
		res, acErr := mach.RunAC(order, m)
		if acErr != nil {
			return sched.Outcome{}, acErr
		}
		o := core.LastOutcome(sched.Features{}, c.Params)
		o.EstCommUS = res.MakespanUS
		return o, nil
	case LP:
		s, err = core.LP(m)
	case RSN:
		s, err = core.RSN(m, rng)
	case RSNL:
		s, err = core.RSNL(m, rng)
	default:
		return sched.Outcome{}, fmt.Errorf("expt: unknown algorithm %q", alg)
	}
	if err != nil {
		return sched.Outcome{}, err
	}
	var res ipsc.Result
	switch alg {
	case LP:
		res, err = mach.RunLP(s)
	case RSN:
		res, err = mach.RunS2(s)
	default: // RSNL
		res, err = mach.RunS1(s)
	}
	if err != nil {
		return sched.Outcome{}, err
	}
	o := core.LastOutcome(sched.Features{}, c.Params)
	o.EstCommUS = res.MakespanUS
	return o, nil
}

// Table1Row holds the paper's Table 1 block for one density.
type Table1Row struct {
	Density int
	// Comm[msgBytes][alg] in ms, for msgBytes in Table1Sizes.
	Comm map[int64]map[Algorithm]Cell
	// Iters and Comp are reported per algorithm (AC has none).
	Iters map[Algorithm]float64
	Comp  map[Algorithm]float64
}

// Table1Sizes are the paper's three reported message sizes.
var Table1Sizes = []int64{256, 1024, 128 * 1024}

// Table1Densities are the paper's five densities.
var Table1Densities = []int{4, 8, 16, 32, 48}

// DensitiesFor returns the subset of densities measurable on an
// n-node machine: a processor cannot send to more than n-1 peers, so
// d >= n cells do not exist. The paper's grids assume the 64-node
// machine; scaled-down runs (small -dim) keep the rows that remain
// meaningful.
func DensitiesFor(densities []int, nodes int) []int {
	out := make([]int, 0, len(densities))
	for _, d := range densities {
		if d < nodes {
			out = append(out, d)
		}
	}
	return out
}

// Table1 measures the full Table 1 grid through the parallel Runner at
// default parallelism.
func Table1(cfg Config) ([]Table1Row, error) {
	return NewRunner(cfg).Table1(context.Background())
}

// WriteTable1 renders rows in the layout of the paper's Table 1.
func WriteTable1(w io.Writer, rows []Table1Row) error {
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "d\tmsg size\tAC\tLP\tRS_N\tRS_NL")
	for _, row := range rows {
		for i, size := range Table1Sizes {
			label := fmt.Sprintf("%d", row.Density)
			if i > 0 {
				label = ""
			}
			cells := row.Comm[size]
			fmt.Fprintf(tw, "%s\tcomm %s\t%.2f\t%.2f\t%.2f\t%.2f\n",
				label, sizeLabel(size),
				cells[AC].CommMS, cells[LP].CommMS, cells[RSN].CommMS, cells[RSNL].CommMS)
		}
		fmt.Fprintf(tw, "\t# iters\t-\t%.2f\t%.2f\t%.2f\n",
			row.Iters[LP], row.Iters[RSN], row.Iters[RSNL])
		fmt.Fprintf(tw, "\tcomp\t-\t%.2f\t%.2f\t%.2f\n",
			row.Comp[LP], row.Comp[RSN], row.Comp[RSNL])
	}
	return tw.Flush()
}

// WriteWorkloadTable renders one row per measured workload cell in
// the layout of Table 1's comm block: the four contenders'
// communication cost, plus the phase count and scheduling cost of the
// randomized schedulers. cells is what MeasureWorkloads returned.
func WriteWorkloadTable(w io.Writer, cells []map[Algorithm]Cell) error {
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tAC\tLP\tRS_N\tRS_NL\titers(RS_NL)\tcomp(RS_NL)")
	for _, cm := range cells {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			cm[AC].Workload,
			cm[AC].CommMS, cm[LP].CommMS, cm[RSN].CommMS, cm[RSNL].CommMS,
			cm[RSNL].Iters, cm[RSNL].CompMS)
	}
	return tw.Flush()
}

func sizeLabel(bytes int64) string {
	switch {
	case bytes >= 1024 && bytes%1024 == 0:
		return fmt.Sprintf("%dK", bytes/1024)
	default:
		return fmt.Sprintf("%d", bytes)
	}
}

// FigureSizes returns the message-size sweep of Figures 6-9: 16 B to
// 128 KB in powers of two.
func FigureSizes() []int64 {
	var sizes []int64
	for b := int64(16); b <= 128*1024; b *= 2 {
		sizes = append(sizes, b)
	}
	return sizes
}

// CommVsSize measures communication cost as a function of message size
// at fixed density — one of Figures 6-9. Returns one series per
// algorithm with X = message bytes, Y = comm ms. It runs through the
// parallel Runner at default parallelism.
func CommVsSize(cfg Config, d int, sizes []int64) ([]plot.Series, error) {
	return NewRunner(cfg).CommVsSize(context.Background(), d, sizes)
}

// OverheadVsSize measures the scheduling-overhead fraction comp/comm
// as a function of message size, one series per density — Figure 10
// (RS_N) and Figure 11 (RS_NL). It runs through the parallel Runner at
// default parallelism.
func OverheadVsSize(cfg Config, alg Algorithm, densities []int, sizes []int64) ([]plot.Series, error) {
	return NewRunner(cfg).OverheadVsSize(context.Background(), alg, densities, sizes)
}

// Region is one cell of the Figure 5 map: the algorithm with the
// lowest mean communication cost at (d, M), ignoring scheduling cost
// exactly as the paper's Figure 5 does.
type Region struct {
	Density  int
	MsgBytes int64
	Winner   Algorithm
	Margin   float64 // winner's advantage over the runner-up, fraction
}

// RegionMap computes the winner grid of Figure 5 through the parallel
// Runner at default parallelism.
func RegionMap(cfg Config, densities []int, sizes []int64) ([]Region, error) {
	return NewRunner(cfg).RegionMap(context.Background(), densities, sizes)
}

// WriteRegionMap renders the Figure 5 grid: rows are densities,
// columns message sizes, cells the winning algorithm.
func WriteRegionMap(w io.Writer, regions []Region) error {
	densities := []int{}
	sizes := []int64{}
	seenD := map[int]bool{}
	seenS := map[int64]bool{}
	for _, r := range regions {
		if !seenD[r.Density] {
			seenD[r.Density] = true
			densities = append(densities, r.Density)
		}
		if !seenS[r.MsgBytes] {
			seenS[r.MsgBytes] = true
			sizes = append(sizes, r.MsgBytes)
		}
	}
	sort.Ints(densities)
	sort.Slice(sizes, func(a, b int) bool { return sizes[a] < sizes[b] })

	lookup := map[[2]int64]Region{}
	for _, r := range regions {
		lookup[[2]int64{int64(r.Density), r.MsgBytes}] = r
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	header := []string{"d \\ M"}
	for _, s := range sizes {
		header = append(header, sizeLabel(s))
	}
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, d := range densities {
		row := []string{fmt.Sprintf("%d", d)}
		for _, s := range sizes {
			r := lookup[[2]int64{int64(d), s}]
			row = append(row, string(r.Winner))
		}
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	return tw.Flush()
}
