// Package expt is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§6): Table 1 (communication
// cost, phase counts, scheduling cost), Figures 6-9 (communication
// cost versus message size per density), Figures 10-11 (scheduling
// overhead fraction), and Figure 5 (the (d, M) region map of winning
// algorithms).
//
// The measurement protocol follows the paper: a test set of random
// samples per density (the paper uses 50; configurable here), each
// sample's communication cost is the maximum time spent by any
// processor, and cells report the average over samples. All
// randomness is derived from a single master seed.
package expt

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"text/tabwriter"

	"unsched/internal/comm"
	"unsched/internal/costmodel"
	"unsched/internal/hypercube"
	"unsched/internal/ipsc"
	"unsched/internal/plot"
	"unsched/internal/sched"
	"unsched/internal/stats"
)

// Algorithm names the paper's four contenders.
type Algorithm string

const (
	AC   Algorithm = "AC"
	LP   Algorithm = "LP"
	RSN  Algorithm = "RS_N"
	RSNL Algorithm = "RS_NL"
)

// Algorithms lists the contenders in the paper's column order.
var Algorithms = []Algorithm{AC, LP, RSN, RSNL}

// Config parameterizes a measurement campaign.
type Config struct {
	Cube    *hypercube.Cube
	Params  costmodel.Params
	Samples int   // random samples per (d, M) cell; the paper uses 50
	Seed    int64 // master seed; everything derives from it
}

// DefaultConfig returns the paper's machine (64-node cube) with the
// calibrated cost model and a modest sample count suitable for quick
// runs; raise Samples to 50 to match the paper's protocol exactly.
func DefaultConfig() Config {
	return Config{
		Cube:    hypercube.MustNew(6),
		Params:  costmodel.DefaultIPSC860(),
		Samples: 10,
		Seed:    1994,
	}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.Cube == nil {
		return fmt.Errorf("expt: nil cube")
	}
	if c.Samples <= 0 {
		return fmt.Errorf("expt: Samples must be positive, got %d", c.Samples)
	}
	return c.Params.Validate()
}

// Cell is one measured table cell: an algorithm at one (d, M) point.
type Cell struct {
	Algorithm Algorithm
	Density   int
	MsgBytes  int64
	CommMS    float64 // mean over samples of per-run makespan, ms
	CompMS    float64 // mean modeled scheduling cost, ms (0 for AC)
	Iters     float64 // mean phase count (0 for AC)
	CommStd   float64 // std-dev of makespan across samples, ms
}

// MeasureCell runs the full sample set for one (d, M) point and
// returns a Cell per algorithm, measured on the same samples so
// algorithms are compared pattern-for-pattern.
func (c Config) MeasureCell(d int, msgBytes int64) (map[Algorithm]Cell, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	src := stats.NewSource(c.Seed)
	comms := map[Algorithm][]float64{}
	comps := map[Algorithm][]float64{}
	iters := map[Algorithm][]float64{}

	for sample := 0; sample < c.Samples; sample++ {
		streamBase := int64(d)*1_000_000 + msgBytes*1_000 + int64(sample)
		patRNG := src.Stream(streamBase)
		m, err := comm.DRegular(c.Cube.Nodes(), d, msgBytes, patRNG)
		if err != nil {
			return nil, err
		}
		for _, alg := range Algorithms {
			schedRNG := src.Stream(streamBase*4 + algIndex(alg))
			commUS, compMS, nPhases, err := c.runOne(alg, m, schedRNG)
			if err != nil {
				return nil, fmt.Errorf("expt: %s d=%d M=%d sample %d: %w", alg, d, msgBytes, sample, err)
			}
			comms[alg] = append(comms[alg], commUS/1000)
			comps[alg] = append(comps[alg], compMS)
			iters[alg] = append(iters[alg], nPhases)
		}
	}

	out := map[Algorithm]Cell{}
	for _, alg := range Algorithms {
		s := stats.Summarize(comms[alg])
		out[alg] = Cell{
			Algorithm: alg,
			Density:   d,
			MsgBytes:  msgBytes,
			CommMS:    s.Mean,
			CommStd:   s.Std,
			CompMS:    stats.Mean(comps[alg]),
			Iters:     stats.Mean(iters[alg]),
		}
	}
	return out, nil
}

func algIndex(a Algorithm) int64 {
	for i, x := range Algorithms {
		if x == a {
			return int64(i)
		}
	}
	return int64(len(Algorithms))
}

// runOne schedules and simulates one sample under one algorithm,
// returning (makespan µs, scheduling cost ms, phase count).
func (c Config) runOne(alg Algorithm, m *comm.Matrix, rng *rand.Rand) (float64, float64, float64, error) {
	switch alg {
	case AC:
		order, err := sched.AC(m)
		if err != nil {
			return 0, 0, 0, err
		}
		res, err := ipsc.RunAC(c.Cube, c.Params, order, m)
		if err != nil {
			return 0, 0, 0, err
		}
		return res.MakespanUS, 0, 0, nil
	case LP:
		s, err := sched.LP(m)
		if err != nil {
			return 0, 0, 0, err
		}
		res, err := ipsc.RunLP(c.Cube, c.Params, s)
		if err != nil {
			return 0, 0, 0, err
		}
		return res.MakespanUS, c.Params.CompTimeMS(s.Ops), float64(s.NumPhases()), nil
	case RSN:
		s, err := sched.RSN(m, rng)
		if err != nil {
			return 0, 0, 0, err
		}
		res, err := ipsc.RunS2(c.Cube, c.Params, s)
		if err != nil {
			return 0, 0, 0, err
		}
		return res.MakespanUS, c.Params.CompTimeMS(s.Ops), float64(s.NumPhases()), nil
	case RSNL:
		s, err := sched.RSNL(m, c.Cube, rng)
		if err != nil {
			return 0, 0, 0, err
		}
		res, err := ipsc.RunS1(c.Cube, c.Params, s)
		if err != nil {
			return 0, 0, 0, err
		}
		return res.MakespanUS, c.Params.CompTimeMS(s.Ops), float64(s.NumPhases()), nil
	default:
		return 0, 0, 0, fmt.Errorf("expt: unknown algorithm %q", alg)
	}
}

// Table1Row holds the paper's Table 1 block for one density.
type Table1Row struct {
	Density int
	// Comm[msgBytes][alg] in ms, for msgBytes in Table1Sizes.
	Comm map[int64]map[Algorithm]Cell
	// Iters and Comp are reported per algorithm (AC has none).
	Iters map[Algorithm]float64
	Comp  map[Algorithm]float64
}

// Table1Sizes are the paper's three reported message sizes.
var Table1Sizes = []int64{256, 1024, 128 * 1024}

// Table1Densities are the paper's five densities.
var Table1Densities = []int{4, 8, 16, 32, 48}

// Table1 measures the full Table 1 grid.
func Table1(cfg Config) ([]Table1Row, error) {
	var rows []Table1Row
	for _, d := range Table1Densities {
		row := Table1Row{
			Density: d,
			Comm:    map[int64]map[Algorithm]Cell{},
			Iters:   map[Algorithm]float64{},
			Comp:    map[Algorithm]float64{},
		}
		for _, size := range Table1Sizes {
			cells, err := cfg.MeasureCell(d, size)
			if err != nil {
				return nil, err
			}
			row.Comm[size] = cells
			// The paper reports one iters/comp per density; use the
			// 1 KB column (phase counts are size-independent, comp
			// nearly so).
			if size == 1024 {
				for _, alg := range Algorithms {
					row.Iters[alg] = cells[alg].Iters
					row.Comp[alg] = cells[alg].CompMS
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteTable1 renders rows in the layout of the paper's Table 1.
func WriteTable1(w io.Writer, rows []Table1Row) error {
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "d\tmsg size\tAC\tLP\tRS_N\tRS_NL")
	for _, row := range rows {
		for i, size := range Table1Sizes {
			label := fmt.Sprintf("%d", row.Density)
			if i > 0 {
				label = ""
			}
			cells := row.Comm[size]
			fmt.Fprintf(tw, "%s\tcomm %s\t%.2f\t%.2f\t%.2f\t%.2f\n",
				label, sizeLabel(size),
				cells[AC].CommMS, cells[LP].CommMS, cells[RSN].CommMS, cells[RSNL].CommMS)
		}
		fmt.Fprintf(tw, "\t# iters\t-\t%.2f\t%.2f\t%.2f\n",
			row.Iters[LP], row.Iters[RSN], row.Iters[RSNL])
		fmt.Fprintf(tw, "\tcomp\t-\t%.2f\t%.2f\t%.2f\n",
			row.Comp[LP], row.Comp[RSN], row.Comp[RSNL])
	}
	return tw.Flush()
}

func sizeLabel(bytes int64) string {
	switch {
	case bytes >= 1024 && bytes%1024 == 0:
		return fmt.Sprintf("%dK", bytes/1024)
	default:
		return fmt.Sprintf("%d", bytes)
	}
}

// FigureSizes returns the message-size sweep of Figures 6-9: 16 B to
// 128 KB in powers of two.
func FigureSizes() []int64 {
	var sizes []int64
	for b := int64(16); b <= 128*1024; b *= 2 {
		sizes = append(sizes, b)
	}
	return sizes
}

// CommVsSize measures communication cost as a function of message size
// at fixed density — one of Figures 6-9. Returns one series per
// algorithm with X = message bytes, Y = comm ms.
func CommVsSize(cfg Config, d int, sizes []int64) ([]plot.Series, error) {
	series := make([]plot.Series, len(Algorithms))
	for i, alg := range Algorithms {
		series[i].Label = string(alg)
	}
	for _, size := range sizes {
		cells, err := cfg.MeasureCell(d, size)
		if err != nil {
			return nil, err
		}
		for i, alg := range Algorithms {
			series[i].X = append(series[i].X, float64(size))
			series[i].Y = append(series[i].Y, cells[alg].CommMS)
		}
	}
	return series, nil
}

// OverheadVsSize measures the scheduling-overhead fraction comp/comm
// as a function of message size, one series per density — Figure 10
// (RS_N) and Figure 11 (RS_NL).
func OverheadVsSize(cfg Config, alg Algorithm, densities []int, sizes []int64) ([]plot.Series, error) {
	if alg != RSN && alg != RSNL {
		return nil, fmt.Errorf("expt: overhead figures exist for RS_N and RS_NL, not %s", alg)
	}
	var series []plot.Series
	for _, d := range densities {
		s := plot.Series{Label: fmt.Sprintf("d = %d", d)}
		for _, size := range sizes {
			cells, err := cfg.MeasureCell(d, size)
			if err != nil {
				return nil, err
			}
			cell := cells[alg]
			if cell.CommMS > 0 {
				s.X = append(s.X, float64(size))
				s.Y = append(s.Y, cell.CompMS/cell.CommMS)
			}
		}
		series = append(series, s)
	}
	return series, nil
}

// Region is one cell of the Figure 5 map: the algorithm with the
// lowest mean communication cost at (d, M), ignoring scheduling cost
// exactly as the paper's Figure 5 does.
type Region struct {
	Density  int
	MsgBytes int64
	Winner   Algorithm
	Margin   float64 // winner's advantage over the runner-up, fraction
}

// RegionMap computes the winner grid of Figure 5.
func RegionMap(cfg Config, densities []int, sizes []int64) ([]Region, error) {
	var regions []Region
	for _, d := range densities {
		for _, size := range sizes {
			cells, err := cfg.MeasureCell(d, size)
			if err != nil {
				return nil, err
			}
			type cand struct {
				alg Algorithm
				ms  float64
			}
			var cands []cand
			for _, alg := range Algorithms {
				cands = append(cands, cand{alg, cells[alg].CommMS})
			}
			sort.Slice(cands, func(a, b int) bool { return cands[a].ms < cands[b].ms })
			margin := 0.0
			if cands[1].ms > 0 {
				margin = (cands[1].ms - cands[0].ms) / cands[1].ms
			}
			regions = append(regions, Region{
				Density:  d,
				MsgBytes: size,
				Winner:   cands[0].alg,
				Margin:   margin,
			})
		}
	}
	return regions, nil
}

// WriteRegionMap renders the Figure 5 grid: rows are densities,
// columns message sizes, cells the winning algorithm.
func WriteRegionMap(w io.Writer, regions []Region) error {
	densities := []int{}
	sizes := []int64{}
	seenD := map[int]bool{}
	seenS := map[int64]bool{}
	for _, r := range regions {
		if !seenD[r.Density] {
			seenD[r.Density] = true
			densities = append(densities, r.Density)
		}
		if !seenS[r.MsgBytes] {
			seenS[r.MsgBytes] = true
			sizes = append(sizes, r.MsgBytes)
		}
	}
	sort.Ints(densities)
	sort.Slice(sizes, func(a, b int) bool { return sizes[a] < sizes[b] })

	lookup := map[[2]int64]Region{}
	for _, r := range regions {
		lookup[[2]int64{int64(r.Density), r.MsgBytes}] = r
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	header := []string{"d \\ M"}
	for _, s := range sizes {
		header = append(header, sizeLabel(s))
	}
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, d := range densities {
		row := []string{fmt.Sprintf("%d", d)}
		for _, s := range sizes {
			r := lookup[[2]int64{int64(d), s}]
			row = append(row, string(r.Winner))
		}
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	return tw.Flush()
}
