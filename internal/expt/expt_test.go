package expt

import (
	"bytes"
	"strings"
	"testing"

	"unsched/internal/hypercube"
)

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Samples = 2
	return cfg
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg.Samples = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero samples accepted")
	}
	cfg = DefaultConfig()
	cfg.Topology = nil
	if err := cfg.Validate(); err == nil {
		t.Error("nil cube accepted")
	}
	cfg = DefaultConfig()
	cfg.Params.CompOpUS = -1
	if err := cfg.Validate(); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestMeasureCellAllAlgorithms(t *testing.T) {
	cfg := quickConfig()
	cells, err := cfg.MeasureCell(8, 1024)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms {
		cell, ok := cells[alg]
		if !ok {
			t.Fatalf("missing cell for %s", alg)
		}
		if cell.CommMS <= 0 {
			t.Errorf("%s: non-positive comm %v", alg, cell.CommMS)
		}
	}
	if cells[AC].CompMS != 0 || cells[AC].Iters != 0 {
		t.Error("AC should report no scheduling cost or phases")
	}
	if cells[LP].Iters != 63 {
		t.Errorf("LP iters = %v, want 63", cells[LP].Iters)
	}
	if cells[RSN].Iters < 8 || cells[RSN].Iters > 16 {
		t.Errorf("RS_N iters = %v, expected near d + log d", cells[RSN].Iters)
	}
	if cells[RSNL].CompMS <= cells[RSN].CompMS {
		t.Error("RS_NL scheduling should cost more than RS_N")
	}
}

func TestMeasureCellDeterministic(t *testing.T) {
	cfg := quickConfig()
	a, err := cfg.MeasureCell(4, 256)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.MeasureCell(4, 256)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms {
		if a[alg].CommMS != b[alg].CommMS {
			t.Fatalf("%s: nondeterministic comm %v vs %v", alg, a[alg].CommMS, b[alg].CommMS)
		}
	}
}

func TestMeasureCellSeedChangesResults(t *testing.T) {
	cfg := quickConfig()
	a, err := cfg.MeasureCell(8, 1024)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed++
	b, err := cfg.MeasureCell(8, 1024)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for _, alg := range Algorithms {
		if a[alg].CommMS != b[alg].CommMS {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical results for all algorithms")
	}
}

func TestTable1ShapeClaims(t *testing.T) {
	// The qualitative claims of the paper's §6 on a reduced sample
	// count: LP beats RS_N at (d=48, 128K); RS_NL beats AC at d>=16
	// large messages; LP loses at d=4.
	cfg := quickConfig()

	high, err := cfg.MeasureCell(48, 128*1024)
	if err != nil {
		t.Fatal(err)
	}
	if high[LP].CommMS >= high[RSN].CommMS {
		t.Errorf("d=48 128K: LP (%.0f) should beat RS_N (%.0f)", high[LP].CommMS, high[RSN].CommMS)
	}
	if high[RSNL].CommMS >= high[AC].CommMS {
		t.Errorf("d=48 128K: RS_NL (%.0f) should beat AC (%.0f)", high[RSNL].CommMS, high[AC].CommMS)
	}

	low, err := cfg.MeasureCell(4, 128*1024)
	if err != nil {
		t.Fatal(err)
	}
	if low[LP].CommMS <= low[RSNL].CommMS {
		t.Errorf("d=4 128K: LP (%.0f) should lose to RS_NL (%.0f)", low[LP].CommMS, low[RSNL].CommMS)
	}
}

func TestWriteTable1Format(t *testing.T) {
	cfg := quickConfig()
	// Shrink the grid for test speed by measuring one density directly.
	row := Table1Row{
		Density: 4,
		Comm:    map[int64]map[Algorithm]Cell{},
		Iters:   map[Algorithm]float64{LP: 63, RSN: 6, RSNL: 7},
		Comp:    map[Algorithm]float64{LP: 0.08, RSN: 1.5, RSNL: 3.4},
	}
	for _, size := range Table1Sizes {
		cells, err := cfg.MeasureCell(4, size)
		if err != nil {
			t.Fatal(err)
		}
		row.Comm[size] = cells
	}
	var buf bytes.Buffer
	if err := WriteTable1(&buf, []Table1Row{row}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"RS_NL", "128K", "# iters", "comp"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestCommVsSizeSeries(t *testing.T) {
	cfg := quickConfig()
	series, err := CommVsSize(cfg, 4, []int64{256, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(Algorithms) {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if len(s.X) != 2 {
			t.Fatalf("series %s has %d points", s.Label, len(s.X))
		}
		if s.Y[1] <= s.Y[0] {
			t.Errorf("series %s not increasing with message size: %v", s.Label, s.Y)
		}
	}
}

func TestOverheadVsSizeDeclines(t *testing.T) {
	cfg := quickConfig()
	series, err := OverheadVsSize(cfg, RSN, []int{8}, []int64{64, 128, 8192})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 {
		t.Fatalf("%d series", len(series))
	}
	y := series[0].Y
	if len(y) != 3 {
		t.Fatalf("%d points", len(y))
	}
	// The fraction declines with message size, sharply across the
	// 64->128 protocol boundary (Figures 10-11).
	if !(y[0] > y[1] && y[1] > y[2]) {
		t.Errorf("overhead fraction not declining: %v", y)
	}
}

func TestOverheadVsSizeRejectsWrongAlg(t *testing.T) {
	cfg := quickConfig()
	if _, err := OverheadVsSize(cfg, AC, []int{4}, []int64{64}); err == nil {
		t.Error("AC overhead figure should be rejected")
	}
}

func TestRegionMapShape(t *testing.T) {
	cfg := quickConfig()
	regions, err := RegionMap(cfg, []int{4, 48}, []int64{64, 128 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	byCell := map[[2]int64]Algorithm{}
	for _, r := range regions {
		byCell[[2]int64{int64(r.Density), r.MsgBytes}] = r.Winner
	}
	// Figure 5's corners: AC wins tiny messages at low density; LP wins
	// the large-density large-message corner.
	if got := byCell[[2]int64{4, 64}]; got != AC {
		t.Errorf("(d=4, 64B) winner = %s, want AC", got)
	}
	if got := byCell[[2]int64{48, 128 * 1024}]; got != LP {
		t.Errorf("(d=48, 128K) winner = %s, want LP", got)
	}
	var buf bytes.Buffer
	if err := WriteRegionMap(&buf, regions); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "d \\ M") {
		t.Errorf("region map header missing:\n%s", buf.String())
	}
}

func TestFigureSizes(t *testing.T) {
	sizes := FigureSizes()
	if sizes[0] != 16 || sizes[len(sizes)-1] != 128*1024 {
		t.Errorf("FigureSizes = %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] != 2*sizes[i-1] {
			t.Error("sizes not powers of two")
		}
	}
}

func TestMeasureCellSmallCube(t *testing.T) {
	cfg := quickConfig()
	cfg.Topology = hypercube.MustNew(3)
	cells, err := cfg.MeasureCell(2, 512)
	if err != nil {
		t.Fatal(err)
	}
	if cells[LP].Iters != 7 {
		t.Errorf("8-node LP iters = %v, want 7", cells[LP].Iters)
	}
}
