package expt

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"unsched/internal/comm"
	"unsched/internal/ipsc"
	"unsched/internal/plot"
	"unsched/internal/sched"
	"unsched/internal/stats"
	"unsched/internal/topo"
	"unsched/internal/workload"
)

// Point is one cell of a campaign grid: a workload measured on the
// campaign's machine. The canonical form carries a workload.Spec; the
// historical (Density, MsgBytes) pair remains as shorthand for the
// paper's uniform workload — a Point with a zero Workload resolves to
// workload.UniformSpec(Density, MsgBytes). Setting both forms is
// ambiguous and rejected.
type Point struct {
	// Density and MsgBytes are the classic uniform-workload shorthand.
	Density  int
	MsgBytes int64
	// Workload, when set (Kind != ""), names the cell's workload
	// directly; Density and MsgBytes must then be zero.
	Workload workload.Spec
}

// UniformPoint is the classic density-sweep cell.
func UniformPoint(d int, msgBytes int64) Point {
	return Point{Workload: workload.UniformSpec(d, msgBytes)}
}

// WorkloadPoint wraps a workload spec as a grid cell.
func WorkloadPoint(sp workload.Spec) Point { return Point{Workload: sp} }

// WorkloadPoints wraps a spec list as a campaign grid.
func WorkloadPoints(specs []workload.Spec) []Point {
	points := make([]Point, len(specs))
	for i, sp := range specs {
		points[i] = Point{Workload: sp}
	}
	return points
}

// spec resolves the point to its workload spec.
func (p Point) spec() (workload.Spec, error) {
	if p.Workload.Kind != "" {
		if p.Density != 0 || p.MsgBytes != 0 {
			return workload.Spec{}, fmt.Errorf("expt: point sets both Workload %q and the (Density, MsgBytes) shorthand", p.Workload)
		}
		return p.Workload, nil
	}
	return workload.UniformSpec(p.Density, p.MsgBytes), nil
}

// Runner executes measurement campaigns over a bounded worker pool.
// Every (workload, sample) combination is one independent work unit;
// units fan out across workers, and within a unit the four algorithms
// are measured back to back on the one matrix the unit generates —
// regenerated into the worker's reused buffer, never allocated per
// cell. When the grid offers fewer units than the pool has workers —
// a single cell on a many-core machine — the fan-out drops to
// (unit, algorithm) granularity instead, each item regenerating its
// sample's matrix, so otherwise-idle workers share the narrow
// campaign. Every RNG stream is derived from the master seed keyed by
// the (workload key, sample, algorithm) tuple it serves — never by
// execution order — so the measured numbers are bit-identical at any
// parallelism and either fan-out granularity, including 1, which
// reproduces the sequential harness. The classic uniform workload's
// key is its historical (density, msgBytes) pair, so density-sweep
// campaigns reproduce pre-workload outputs exactly.
//
// The zero value of Parallelism and Progress is valid: the runner then
// uses GOMAXPROCS workers and reports no progress. A Runner is safe
// for concurrent use; each campaign call builds its own pool.
type Runner struct {
	Config Config
	// Parallelism is the number of worker goroutines; values <= 0 mean
	// runtime.GOMAXPROCS(0). Each worker owns one reusable simulator
	// machine, one scheduler core, and one workload matrix, so memory
	// scales with Parallelism, not with campaign size.
	Parallelism int
	// Progress, when non-nil, is called after each completed algorithm
	// run with the running count of completed runs and the campaign
	// total. Calls are serialized and strictly increasing in done.
	Progress func(done, total int)
}

// NewRunner returns a Runner over cfg with default parallelism.
func NewRunner(cfg Config) *Runner { return &Runner{Config: cfg} }

func (r *Runner) workers() int {
	if r.Parallelism > 0 {
		return r.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// unitResult carries one unit's measurements into the aggregation
// buffer. Units stream their results into a preallocated slot indexed
// by (cell, sample, algorithm), so aggregation order — and therefore
// floating-point summation order — never depends on completion order.
type unitResult struct {
	commMS float64
	compMS float64
	iters  float64
	// feat holds the sample matrix's measured features, populated only
	// when the campaign carries an Outcomes sink (one O(n^2) pass per
	// unit, skipped otherwise).
	feat sched.Features
}

// unitScratch is the per-worker reusable state of runSample beyond the
// machine and core: the workload matrix every cell regenerates into,
// and the stream-key buffer.
type unitScratch struct {
	m   *comm.Matrix
	key []int64
}

// MeasureCells measures every point of the grid and returns one
// map[Algorithm]Cell per point, in point order. It is the campaign
// primitive every table and figure builds on: all units of all points
// share one worker pool, so wide grids saturate the machine even when
// individual cells are small. The context cancels the campaign between
// units; the first error (or ctx.Err) is returned.
func (r *Runner) MeasureCells(ctx context.Context, points []Point) ([]map[Algorithm]Cell, error) {
	cfg := r.Config
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nodes := cfg.Topology.Nodes()
	// Resolve and validate every cell's workload up front: a spec that
	// cannot build on this machine fails the campaign before any work
	// is scheduled, with an error naming the spec instead of a
	// mid-campaign worker abort.
	specs := make([]workload.Spec, len(points))
	for i, pt := range points {
		sp, err := pt.spec()
		if err != nil {
			return nil, err
		}
		if err := sp.Validate(); err != nil {
			return nil, err
		}
		if err := sp.ValidateFor(nodes); err != nil {
			return nil, fmt.Errorf("%w (campaign topology %s)", err, cfg.Topology.Name())
		}
		specs[i] = sp
	}
	samples := cfg.Samples
	nAlg := len(Algorithms)
	units := len(points) * samples
	total := units * nAlg
	results := make([]unitResult, total)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// All routes on the campaign's machine are a pure function of
	// (src, dst), so precompute them once and share the read-only
	// table: every worker's scheduler core walks it instead of
	// regenerating routes on each Check_Path/Mark_Path. A caller-
	// supplied table (Config.Routes) skips even that one build.
	routes := cfg.Routes
	if routes == nil {
		routes = topo.NewRouteTable(cfg.Topology)
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	tick := func() {
		mu.Lock()
		done++
		r.Progress(done, total)
		mu.Unlock()
	}
	// Fine-grained mode: with fewer units than workers, fan out at
	// (unit, algorithm) granularity so the extra workers contribute.
	// Each fine item regenerates its sample's matrix — a price paid
	// only on narrow grids, where generation is a sliver of the
	// schedule+simulate cost it unlocks parallelism for.
	fine := units < r.workers()
	items := units
	if fine {
		items = total
	}
	unitCh := make(chan int)
	for w := 0; w < min(r.workers(), items); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns one reusable simulator machine, one
			// reusable scheduler core over the shared route table, one
			// reused workload matrix, and one stream source; all are
			// confined to this goroutine, so the steady-state
			// generate→schedule→simulate pipeline allocates (near)
			// nothing per unit. The machine runs over the shared route
			// table too: transfers then claim and release whole routes
			// through its word-mask bitset spans.
			mach, err := ipsc.NewMachine(routes, cfg.Params)
			if err != nil {
				fail(err)
				return
			}
			core := sched.NewCoreForTable(routes)
			src := stats.NewSource(cfg.Seed)
			scratch := &unitScratch{m: comm.MustNew(nodes)}
			for idx := range unitCh {
				if fine {
					unit, algIdx := idx/nAlg, idx%nAlg
					sp := specs[unit/samples]
					sample := unit % samples
					if err := cfg.runUnitAlg(mach, core, src, scratch, sp, sample, algIdx, &results[idx]); err != nil {
						fail(err)
						return
					}
					if r.Progress != nil {
						tick()
					}
					continue
				}
				sp := specs[idx/samples]
				sample := idx % samples
				var tickFn func()
				if r.Progress != nil {
					tickFn = tick
				}
				if err := cfg.runSample(mach, core, src, scratch, sp, sample, results[idx*nAlg:(idx+1)*nAlg], tickFn); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
feed:
	for idx := 0; idx < items; idx++ {
		select {
		case unitCh <- idx:
		case <-ctx.Done():
			break feed
		}
	}
	close(unitCh)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	out := make([]map[Algorithm]Cell, len(points))
	comms := make([]float64, samples)
	comps := make([]float64, samples)
	iters := make([]float64, samples)
	for ci, sp := range specs {
		cells := map[Algorithm]Cell{}
		for ai, alg := range Algorithms {
			for sample := 0; sample < samples; sample++ {
				u := results[(ci*samples+sample)*nAlg+ai]
				comms[sample] = u.commMS
				comps[sample] = u.compMS
				iters[sample] = u.iters
			}
			s := stats.Summarize(comms)
			cells[alg] = Cell{
				Algorithm: alg,
				Workload:  sp.String(),
				Density:   sp.DensityHint(nodes),
				MsgBytes:  sp.MsgBytes(),
				CommMS:    s.Mean,
				CommStd:   s.Std,
				CompMS:    stats.Mean(comps),
				Iters:     stats.Mean(iters),
			}
		}
		if cfg.Outcomes != nil {
			r.emitOutcomes(sp, cells, results[ci*samples*nAlg:(ci+1)*samples*nAlg])
		}
		out[ci] = cells
	}
	return out, nil
}

// emitOutcomes feeds one measured point's aggregated artifacts to the
// campaign's Outcomes sink: the sample-mean features (constant for
// the deterministic workload kinds) paired with each algorithm's
// aggregated cell. Runs on the aggregation goroutine, in point order.
func (r *Runner) emitOutcomes(sp workload.Spec, cells map[Algorithm]Cell, results []unitResult) {
	cfg := r.Config
	samples := cfg.Samples
	nAlg := len(Algorithms)
	var density, sizeCV float64
	for sample := 0; sample < samples; sample++ {
		f := results[sample*nAlg].feat
		density += float64(f.Density)
		sizeCV += f.SizeCV
	}
	feat := sched.Features{
		Nodes:   cfg.Topology.Nodes(),
		Density: int(density/float64(samples) + 0.5),
		SizeCV:  sizeCV / float64(samples),
	}
	for _, alg := range Algorithms {
		cell := cells[alg]
		cfg.Outcomes(sp.String(), samples, sched.Outcome{
			Algorithm:   string(alg),
			Phases:      int(cell.Iters + 0.5),
			EstCommUS:   cell.CommMS * 1000,
			SchedCostNS: int64(cell.CompMS*1e6 + 0.5),
			Features:    feat,
			TopoName:    cfg.Topology.Name(),
		})
	}
}

// MeasureCell measures one (d, M) point through the pool.
func (r *Runner) MeasureCell(ctx context.Context, d int, msgBytes int64) (map[Algorithm]Cell, error) {
	cells, err := r.MeasureCells(ctx, []Point{UniformPoint(d, msgBytes)})
	if err != nil {
		return nil, err
	}
	return cells[0], nil
}

// MeasureWorkloads measures every workload spec as one grid cell, in
// spec order — the workload-generic campaign primitive behind the
// service's workloads field and the CLI's -workload flag.
func (r *Runner) MeasureWorkloads(ctx context.Context, specs []workload.Spec) ([]map[Algorithm]Cell, error) {
	return r.MeasureCells(ctx, WorkloadPoints(specs))
}

// runSample executes one (workload, sample) unit: regenerate the
// sample's communication matrix from its pattern stream into the
// worker's reused buffer, then schedule and simulate all four
// algorithms on it, each under its own scheduling stream keyed by
// (workload key, sample, algorithm). Results land in out (one slot per
// algorithm); tick, when non-nil, is called after each algorithm
// completes.
func (c Config) runSample(mach *ipsc.Machine, core *sched.Core, src *stats.Source, scratch *unitScratch, sp workload.Spec, sample int, out []unitResult, tick func()) error {
	key, err := c.buildSample(src, scratch, sp, sample)
	if err != nil {
		return err
	}
	var feat sched.Features
	if c.Outcomes != nil {
		feat = sched.MeasureFeatures(scratch.m)
	}
	schedKey := append(key, int64(sample), 0)
	for algIdx, alg := range Algorithms {
		schedKey[len(schedKey)-1] = int64(algIdx)
		schedRNG := src.StreamKeyed(schedKey...)
		o, err := c.runOne(mach, core, alg, scratch.m, schedRNG)
		if err != nil {
			return fmt.Errorf("expt: %s %s sample %d: %w", alg, sp, sample, err)
		}
		out[algIdx] = unitResult{
			commMS: o.EstCommUS / 1000,
			compMS: float64(o.SchedCostNS) / 1e6,
			iters:  float64(o.Phases),
			feat:   feat,
		}
		if tick != nil {
			tick()
		}
	}
	scratch.key = schedKey[:0]
	return nil
}

// runUnitAlg executes one fine-grained (workload, sample, algorithm)
// item: regenerate the sample's matrix, then schedule and simulate the
// single algorithm. The stream keys are identical to runSample's, so a
// campaign computes the same numbers whichever granularity ran it.
func (c Config) runUnitAlg(mach *ipsc.Machine, core *sched.Core, src *stats.Source, scratch *unitScratch, sp workload.Spec, sample, algIdx int, out *unitResult) error {
	key, err := c.buildSample(src, scratch, sp, sample)
	if err != nil {
		return err
	}
	schedKey := append(key, int64(sample), int64(algIdx))
	alg := Algorithms[algIdx]
	schedRNG := src.StreamKeyed(schedKey...)
	o, err := c.runOne(mach, core, alg, scratch.m, schedRNG)
	if err != nil {
		return fmt.Errorf("expt: %s %s sample %d: %w", alg, sp, sample, err)
	}
	var feat sched.Features
	if c.Outcomes != nil {
		feat = sched.MeasureFeatures(scratch.m)
	}
	*out = unitResult{
		commMS: o.EstCommUS / 1000,
		compMS: float64(o.SchedCostNS) / 1e6,
		iters:  float64(o.Phases),
		feat:   feat,
	}
	scratch.key = schedKey[:0]
	return nil
}

// buildSample regenerates the (workload, sample) communication matrix
// into the worker's reused buffer and returns the stream-key prefix,
// tagged for scheduling streams.
//
// Streams are keyed by the full coordinate tuple (tagged 0 for the
// pattern stream, 1 for scheduling streams) through composed
// SplitMix64 mixing — a linear packing is not injective over
// user-chosen grids, which would hand "independent" cells identical
// generators. The workload key of the classic uniform spec is its
// historical (d, msgBytes) pair, so pattern stream (0, d, M, sample)
// and scheduling streams (1, d, M, sample, alg) — and therefore all
// density-sweep campaign outputs — are unchanged from the
// pre-workload harness.
func (c Config) buildSample(src *stats.Source, scratch *unitScratch, sp workload.Spec, sample int) ([]int64, error) {
	key := sp.AppendKey(append(scratch.key[:0], 0))
	patRNG := src.StreamKeyed(append(key, int64(sample))...)
	key[0] = 1 // same workload coordinates, scheduling tag
	if err := sp.BuildInto(scratch.m, patRNG); err != nil {
		return nil, err
	}
	return key, nil
}

// grid returns the densities x sizes point grid re-expressed as
// uniform:* workload specs, sizes varying fastest — the one ordering
// every classic campaign method shares, so cell results always align
// with their (density, size) labels.
func grid(densities []int, sizes []int64) []Point {
	return WorkloadPoints(UniformSpecs(densities, sizes))
}

// UniformSpecs re-expresses the paper's (density x size) sweep as the
// equivalent list of uniform:* workload specs, sizes varying fastest.
func UniformSpecs(densities []int, sizes []int64) []workload.Spec {
	specs := make([]workload.Spec, 0, len(densities)*len(sizes))
	for _, d := range densities {
		for _, size := range sizes {
			specs = append(specs, workload.UniformSpec(d, size))
		}
	}
	return specs
}

// Table1 measures the Table 1 grid through the pool. On machines
// smaller than the paper's (cube dimension < 6) the grid keeps only
// the densities that exist there (d < nodes).
func (r *Runner) Table1(ctx context.Context) ([]Table1Row, error) {
	densities := DensitiesFor(Table1Densities, r.Config.Topology.Nodes())
	cells, err := r.MeasureCells(ctx, grid(densities, Table1Sizes))
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	i := 0
	for _, d := range densities {
		row := Table1Row{
			Density: d,
			Comm:    map[int64]map[Algorithm]Cell{},
			Iters:   map[Algorithm]float64{},
			Comp:    map[Algorithm]float64{},
		}
		for _, size := range Table1Sizes {
			row.Comm[size] = cells[i]
			// The paper reports one iters/comp per density; use the
			// 1 KB column (phase counts are size-independent, comp
			// nearly so).
			if size == 1024 {
				for _, alg := range Algorithms {
					row.Iters[alg] = cells[i][alg].Iters
					row.Comp[alg] = cells[i][alg].CompMS
				}
			}
			i++
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CommVsSize measures communication cost versus message size at fixed
// density through the pool — one of Figures 6-9.
func (r *Runner) CommVsSize(ctx context.Context, d int, sizes []int64) ([]plot.Series, error) {
	cells, err := r.MeasureCells(ctx, grid([]int{d}, sizes))
	if err != nil {
		return nil, err
	}
	series := make([]plot.Series, len(Algorithms))
	for i, alg := range Algorithms {
		series[i].Label = string(alg)
		for pi, size := range sizes {
			series[i].X = append(series[i].X, float64(size))
			series[i].Y = append(series[i].Y, cells[pi][alg].CommMS)
		}
	}
	return series, nil
}

// OverheadVsSize measures the scheduling-overhead fraction comp/comm
// through the pool — Figures 10-11.
func (r *Runner) OverheadVsSize(ctx context.Context, alg Algorithm, densities []int, sizes []int64) ([]plot.Series, error) {
	if alg != RSN && alg != RSNL {
		return nil, fmt.Errorf("expt: overhead figures exist for RS_N and RS_NL, not %s", alg)
	}
	cells, err := r.MeasureCells(ctx, grid(densities, sizes))
	if err != nil {
		return nil, err
	}
	var series []plot.Series
	i := 0
	for _, d := range densities {
		s := plot.Series{Label: fmt.Sprintf("d = %d", d)}
		for _, size := range sizes {
			cell := cells[i][alg]
			if cell.CommMS > 0 {
				s.X = append(s.X, float64(size))
				s.Y = append(s.Y, cell.CompMS/cell.CommMS)
			}
			i++
		}
		series = append(series, s)
	}
	return series, nil
}

// RegionMap computes the winner grid of Figure 5 through the pool.
func (r *Runner) RegionMap(ctx context.Context, densities []int, sizes []int64) ([]Region, error) {
	points := grid(densities, sizes)
	cellMaps, err := r.MeasureCells(ctx, points)
	if err != nil {
		return nil, err
	}
	var regions []Region
	for i := range points {
		cells := cellMaps[i]
		type cand struct {
			alg Algorithm
			ms  float64
		}
		var cands []cand
		for _, alg := range Algorithms {
			cands = append(cands, cand{alg, cells[alg].CommMS})
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].ms < cands[b].ms })
		margin := 0.0
		if cands[1].ms > 0 {
			margin = (cands[1].ms - cands[0].ms) / cands[1].ms
		}
		regions = append(regions, Region{
			Density:  cells[Algorithms[0]].Density,
			MsgBytes: cells[Algorithms[0]].MsgBytes,
			Winner:   cands[0].alg,
			Margin:   margin,
		})
	}
	return regions, nil
}
