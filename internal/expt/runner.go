package expt

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"unsched/internal/comm"
	"unsched/internal/ipsc"
	"unsched/internal/plot"
	"unsched/internal/sched"
	"unsched/internal/stats"
	"unsched/internal/topo"
)

// Point is one (density, message size) cell of a campaign grid.
type Point struct {
	Density  int
	MsgBytes int64
}

// Runner executes measurement campaigns over a bounded worker pool.
// Every (density, msgBytes, sample) combination is one independent
// work unit; units fan out across workers, and within a unit the four
// algorithms are measured back to back on the one matrix the unit
// generates. Every RNG stream is derived from the master seed keyed
// by the (density, msgBytes, sample, algorithm) tuple it serves —
// never by execution order — so the measured numbers are bit-identical
// at any parallelism, including 1, which reproduces the sequential
// harness.
//
// The zero value of Parallelism and Progress is valid: the runner then
// uses GOMAXPROCS workers and reports no progress. A Runner is safe
// for concurrent use; each campaign call builds its own pool.
type Runner struct {
	Config Config
	// Parallelism is the number of worker goroutines; values <= 0 mean
	// runtime.GOMAXPROCS(0). Each worker owns one reusable simulator
	// machine, so memory scales with Parallelism, not with campaign
	// size.
	Parallelism int
	// Progress, when non-nil, is called after each completed algorithm
	// run with the running count of completed runs and the campaign
	// total. Calls are serialized and strictly increasing in done.
	Progress func(done, total int)
}

// NewRunner returns a Runner over cfg with default parallelism.
func NewRunner(cfg Config) *Runner { return &Runner{Config: cfg} }

func (r *Runner) workers() int {
	if r.Parallelism > 0 {
		return r.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// unitResult carries one unit's measurements into the aggregation
// buffer. Units stream their results into a preallocated slot indexed
// by (cell, sample, algorithm), so aggregation order — and therefore
// floating-point summation order — never depends on completion order.
type unitResult struct {
	commMS float64
	compMS float64
	iters  float64
}

// MeasureCells measures every point of the grid and returns one
// map[Algorithm]Cell per point, in point order. It is the campaign
// primitive every table and figure builds on: all units of all points
// share one worker pool, so wide grids saturate the machine even when
// individual cells are small. The context cancels the campaign between
// units; the first error (or ctx.Err) is returned.
func (r *Runner) MeasureCells(ctx context.Context, points []Point) ([]map[Algorithm]Cell, error) {
	cfg := r.Config
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	samples := cfg.Samples
	nAlg := len(Algorithms)
	units := len(points) * samples
	total := units * nAlg
	results := make([]unitResult, total)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// All routes on the campaign's machine are a pure function of
	// (src, dst), so precompute them once and share the read-only
	// table: every worker's scheduler core walks it instead of
	// regenerating routes on each Check_Path/Mark_Path. A caller-
	// supplied table (Config.Routes) skips even that one build.
	routes := cfg.Routes
	if routes == nil {
		routes = topo.NewRouteTable(cfg.Topology)
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	tick := func() {
		mu.Lock()
		done++
		r.Progress(done, total)
		mu.Unlock()
	}
	unitCh := make(chan int)
	for w := 0; w < min(r.workers(), units); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns one reusable simulator machine, one
			// reusable scheduler core over the shared route table, and
			// one stream source; all are confined to this goroutine, so
			// the steady-state schedule→simulate pipeline allocates
			// (near) nothing per unit.
			mach, err := ipsc.NewMachine(cfg.Topology, cfg.Params)
			if err != nil {
				fail(err)
				return
			}
			core := sched.NewCoreForTable(routes)
			src := stats.NewSource(cfg.Seed)
			for idx := range unitCh {
				pt := points[idx/samples]
				sample := idx % samples
				var tickFn func()
				if r.Progress != nil {
					tickFn = tick
				}
				if err := cfg.runSample(mach, core, src, pt, sample, results[idx*nAlg:(idx+1)*nAlg], tickFn); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
feed:
	for idx := 0; idx < units; idx++ {
		select {
		case unitCh <- idx:
		case <-ctx.Done():
			break feed
		}
	}
	close(unitCh)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	out := make([]map[Algorithm]Cell, len(points))
	comms := make([]float64, samples)
	comps := make([]float64, samples)
	iters := make([]float64, samples)
	for ci, pt := range points {
		cells := map[Algorithm]Cell{}
		for ai, alg := range Algorithms {
			for sample := 0; sample < samples; sample++ {
				u := results[(ci*samples+sample)*nAlg+ai]
				comms[sample] = u.commMS
				comps[sample] = u.compMS
				iters[sample] = u.iters
			}
			s := stats.Summarize(comms)
			cells[alg] = Cell{
				Algorithm: alg,
				Density:   pt.Density,
				MsgBytes:  pt.MsgBytes,
				CommMS:    s.Mean,
				CommStd:   s.Std,
				CompMS:    stats.Mean(comps),
				Iters:     stats.Mean(iters),
			}
		}
		out[ci] = cells
	}
	return out, nil
}

// MeasureCell measures one (d, M) point through the pool.
func (r *Runner) MeasureCell(ctx context.Context, d int, msgBytes int64) (map[Algorithm]Cell, error) {
	cells, err := r.MeasureCells(ctx, []Point{{Density: d, MsgBytes: msgBytes}})
	if err != nil {
		return nil, err
	}
	return cells[0], nil
}

// runSample executes one (d, M, sample) unit: generate the sample's
// communication matrix from its pattern stream, then schedule and
// simulate all four algorithms on it, each under its own scheduling
// stream keyed by (d, M, sample, algorithm). Results land in out (one
// slot per algorithm); tick, when non-nil, is called after each
// algorithm completes.
func (c Config) runSample(mach *ipsc.Machine, core *sched.Core, src *stats.Source, pt Point, sample int, out []unitResult, tick func()) error {
	d, msgBytes := pt.Density, pt.MsgBytes
	// Streams are keyed by the full coordinate tuple (tagged 0 for the
	// pattern stream, 1 for scheduling streams) through composed
	// SplitMix64 mixing — a linear packing like d*1e6 + M*1000 + s is
	// not injective over user-chosen grids (the campaign API accepts
	// arbitrary densities and sizes), which would hand "independent"
	// cells identical generators.
	patRNG := src.StreamKeyed(0, int64(d), msgBytes, int64(sample))
	m, err := comm.DRegular(c.Topology.Nodes(), d, msgBytes, patRNG)
	if err != nil {
		return err
	}
	for algIdx, alg := range Algorithms {
		schedRNG := src.StreamKeyed(1, int64(d), msgBytes, int64(sample), int64(algIdx))
		commUS, compMS, nPhases, err := c.runOne(mach, core, alg, m, schedRNG)
		if err != nil {
			return fmt.Errorf("expt: %s d=%d M=%d sample %d: %w", alg, d, msgBytes, sample, err)
		}
		out[algIdx] = unitResult{commMS: commUS / 1000, compMS: compMS, iters: nPhases}
		if tick != nil {
			tick()
		}
	}
	return nil
}

// grid returns the densities x sizes point grid, sizes varying
// fastest — the one ordering every campaign method shares, so cell
// results always align with their (density, size) labels.
func grid(densities []int, sizes []int64) []Point {
	points := make([]Point, 0, len(densities)*len(sizes))
	for _, d := range densities {
		for _, size := range sizes {
			points = append(points, Point{Density: d, MsgBytes: size})
		}
	}
	return points
}

// Table1 measures the Table 1 grid through the pool. On machines
// smaller than the paper's (cube dimension < 6) the grid keeps only
// the densities that exist there (d < nodes).
func (r *Runner) Table1(ctx context.Context) ([]Table1Row, error) {
	densities := DensitiesFor(Table1Densities, r.Config.Topology.Nodes())
	cells, err := r.MeasureCells(ctx, grid(densities, Table1Sizes))
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	i := 0
	for _, d := range densities {
		row := Table1Row{
			Density: d,
			Comm:    map[int64]map[Algorithm]Cell{},
			Iters:   map[Algorithm]float64{},
			Comp:    map[Algorithm]float64{},
		}
		for _, size := range Table1Sizes {
			row.Comm[size] = cells[i]
			// The paper reports one iters/comp per density; use the
			// 1 KB column (phase counts are size-independent, comp
			// nearly so).
			if size == 1024 {
				for _, alg := range Algorithms {
					row.Iters[alg] = cells[i][alg].Iters
					row.Comp[alg] = cells[i][alg].CompMS
				}
			}
			i++
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CommVsSize measures communication cost versus message size at fixed
// density through the pool — one of Figures 6-9.
func (r *Runner) CommVsSize(ctx context.Context, d int, sizes []int64) ([]plot.Series, error) {
	cells, err := r.MeasureCells(ctx, grid([]int{d}, sizes))
	if err != nil {
		return nil, err
	}
	series := make([]plot.Series, len(Algorithms))
	for i, alg := range Algorithms {
		series[i].Label = string(alg)
		for pi, size := range sizes {
			series[i].X = append(series[i].X, float64(size))
			series[i].Y = append(series[i].Y, cells[pi][alg].CommMS)
		}
	}
	return series, nil
}

// OverheadVsSize measures the scheduling-overhead fraction comp/comm
// through the pool — Figures 10-11.
func (r *Runner) OverheadVsSize(ctx context.Context, alg Algorithm, densities []int, sizes []int64) ([]plot.Series, error) {
	if alg != RSN && alg != RSNL {
		return nil, fmt.Errorf("expt: overhead figures exist for RS_N and RS_NL, not %s", alg)
	}
	cells, err := r.MeasureCells(ctx, grid(densities, sizes))
	if err != nil {
		return nil, err
	}
	var series []plot.Series
	i := 0
	for _, d := range densities {
		s := plot.Series{Label: fmt.Sprintf("d = %d", d)}
		for _, size := range sizes {
			cell := cells[i][alg]
			if cell.CommMS > 0 {
				s.X = append(s.X, float64(size))
				s.Y = append(s.Y, cell.CompMS/cell.CommMS)
			}
			i++
		}
		series = append(series, s)
	}
	return series, nil
}

// RegionMap computes the winner grid of Figure 5 through the pool.
func (r *Runner) RegionMap(ctx context.Context, densities []int, sizes []int64) ([]Region, error) {
	points := grid(densities, sizes)
	cellMaps, err := r.MeasureCells(ctx, points)
	if err != nil {
		return nil, err
	}
	var regions []Region
	for i, pt := range points {
		cells := cellMaps[i]
		type cand struct {
			alg Algorithm
			ms  float64
		}
		var cands []cand
		for _, alg := range Algorithms {
			cands = append(cands, cand{alg, cells[alg].CommMS})
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].ms < cands[b].ms })
		margin := 0.0
		if cands[1].ms > 0 {
			margin = (cands[1].ms - cands[0].ms) / cands[1].ms
		}
		regions = append(regions, Region{
			Density:  pt.Density,
			MsgBytes: pt.MsgBytes,
			Winner:   cands[0].alg,
			Margin:   margin,
		})
	}
	return regions, nil
}
