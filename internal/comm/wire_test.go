package comm

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func TestMatrixBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	mats := []*Matrix{MustNew(1), MustNew(2)}
	m2 := MustNew(3)
	m2.Set(0, 2, 1)
	m2.Set(2, 0, math.MaxInt64)
	mats = append(mats, m2)
	for _, gen := range []func() *Matrix{
		func() *Matrix { m, _ := DRegular(64, 8, 4096, rng); return m },
		func() *Matrix { m, _ := UniformRandom(32, 5, 17, rng); return m },
		func() *Matrix { m, _ := HotSpot(64, 8, 1024, 4, 0.7, rng); return m },
		func() *Matrix { m, _ := AllToAll(16, 3); return m },
		func() *Matrix { m, _ := MixedSizes(64, 8, 1, 1<<20, rng); return m },
	} {
		mats = append(mats, gen())
	}
	for i, m := range mats {
		enc := m.EncodeBinary()
		dec, err := DecodeMatrixBinary(enc)
		if err != nil {
			t.Fatalf("matrix %d: decode: %v", i, err)
		}
		if !dec.Equal(m) {
			t.Fatalf("matrix %d: decode mismatch", i)
		}
		re := dec.EncodeBinary()
		if !bytes.Equal(re, enc) {
			t.Fatalf("matrix %d: re-encode differs (%d vs %d bytes)", i, len(re), len(enc))
		}
	}
}

func TestMatrixBinaryCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, err := DRegular(1024, 8, 4096, rng)
	if err != nil {
		t.Fatal(err)
	}
	bin := m.EncodeBinary()
	jd, err := json.Marshal(m.Messages())
	if err != nil {
		t.Fatal(err)
	}
	// The headline claim: the varint sparse form beats the JSON triple
	// form by a wide margin on the paper's 1024-node workloads.
	if 4*len(bin) > len(jd) {
		t.Fatalf("binary %d bytes not at least 4x smaller than JSON %d bytes", len(bin), len(jd))
	}
}

func TestDecodeMatrixBinaryRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, _ := DRegular(8, 3, 64, rng)
	good := m.EncodeBinary()

	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return f(b)
	}
	cases := map[string][]byte{
		"empty":          {},
		"short header":   good[:4],
		"bad magic":      mutate(func(b []byte) []byte { b[0] = 'X'; return b }),
		"bad version":    mutate(func(b []byte) []byte { b[4] = 99; return b }),
		"truncated body": good[:len(good)-1],
		"trailing byte":  append(append([]byte(nil), good...), 0),
		"zero n":         append(append([]byte(nil), good[:5]...), 0),
		"huge n": append(AppendUvarint(append([]byte(nil), good[:5]...),
			MaxReadNodes+1), make([]byte, 8192)...),
		// n=2 but row 0 claims 3 entries (counts column: 3, 0).
		"row count over n": {'U', 'S', 'W', 'M', 1, 2, 3, 0, 1, 1, 1, 1, 1, 1},
		// n=2, row 0 has one entry with delta 3 (column 2: out of range).
		"column overflow": {'U', 'S', 'W', 'M', 1, 2, 1, 0, 3, 1},
		// n=2, entry with zero size.
		"zero size": {'U', 'S', 'W', 'M', 1, 2, 1, 0, 1, 0},
		// n=2, zero delta (column repeats).
		"zero delta": {'U', 'S', 'W', 'M', 1, 2, 1, 0, 0, 1},
		// Non-minimal varint for n (0x82 0x00 = 2 in two bytes).
		"non-minimal varint": {'U', 'S', 'W', 'M', 1, 0x82, 0x00, 0, 0},
	}
	for name, in := range cases {
		if _, err := DecodeMatrixBinary(in); err == nil {
			t.Errorf("%s: decoder accepted malformed input", name)
		}
	}
}

func TestReadUvarintStrict(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 300, 1 << 20, math.MaxUint64} {
		b := AppendUvarint(nil, v)
		got, k, err := ReadUvarint(b)
		if err != nil || got != v || k != len(b) {
			t.Fatalf("round trip %d: got %d, k=%d, err=%v", v, got, k, err)
		}
	}
	for name, b := range map[string][]byte{
		"empty":           {},
		"unterminated":    {0x80},
		"non-minimal 0":   {0x80, 0x00},
		"non-minimal 1":   {0x81, 0x00},
		"overlong stream": {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02},
	} {
		if _, _, err := ReadUvarint(b); err == nil {
			t.Errorf("%s: ReadUvarint accepted %v", name, b)
		}
	}
}

// FuzzBinaryMatrix proves the wire decoder is total (never panics) and
// strict: any accepted payload re-encodes byte-identically, so there
// is exactly one wire form per matrix and cached/hashed bytes are
// stable.
func FuzzBinaryMatrix(f *testing.F) {
	rng := rand.New(rand.NewSource(11))
	m, _ := DRegular(16, 4, 512, rng)
	f.Add(m.EncodeBinary())
	f.Add(MustNew(1).EncodeBinary())
	f.Add([]byte{'U', 'S', 'W', 'M', 1, 2, 0, 0})
	f.Add([]byte{'U', 'S', 'W', 'M', 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMatrixBinary(data)
		if err != nil {
			return
		}
		re := m.EncodeBinary()
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted payload did not round-trip: %d in, %d out", len(data), len(re))
		}
	})
}
