package comm

import (
	"fmt"
	"math/rand"
)

// Compressed is the paper's n x d matrix CCOM (§4.2): row i holds the
// destinations of Pi's outgoing messages packed into the first few
// columns, with the per-row pointer vector prt marking the last active
// column. The randomized schedulers scan CCOM instead of COM, cutting
// the per-permutation work from O(n^2) to O(dn).
//
// The compressing procedure also shuffles the active entries of each
// row: without the shuffle the destinations sit in ascending order and
// the first several phases suffer node contention among processors
// with small IDs (paper §4.2). The shuffle is what keeps the expected
// number of collisions bounded. NewCompressed applies it; the ablation
// benchmark disables it via NewCompressedOrdered.
type Compressed struct {
	n     int
	width int     // d: max send degree, the row capacity
	dest  []int   // row-major n*width; destination id or -1
	size  []int64 // row-major n*width; message bytes, parallel to dest
	prt   []int   // prt[i]: index of last active column in row i, -1 if empty
}

// NewCompressed builds CCOM from COM, shuffling each row's active
// entries with rng as the paper prescribes. rng may not be nil.
func NewCompressed(m *Matrix, rng *rand.Rand) *Compressed {
	c := compress(m)
	for i := 0; i < c.n; i++ {
		row := c.dest[i*c.width : i*c.width+c.prt[i]+1]
		sz := c.size[i*c.width : i*c.width+c.prt[i]+1]
		rng.Shuffle(len(row), func(a, b int) {
			row[a], row[b] = row[b], row[a]
			sz[a], sz[b] = sz[b], sz[a]
		})
	}
	return c
}

// NewCompressedOrdered builds CCOM without the randomizing shuffle,
// leaving each row's destinations in ascending order. It exists to
// reproduce the paper's observation that the unshuffled form causes
// early-phase node contention (ablation benchmark).
func NewCompressedOrdered(m *Matrix) *Compressed {
	return compress(m)
}

func compress(m *Matrix) *Compressed {
	n := m.N()
	width := 0
	for i := 0; i < n; i++ {
		if deg := m.SendDegree(i); deg > width {
			width = deg
		}
	}
	if width == 0 {
		width = 1 // keep row storage non-degenerate for empty matrices
	}
	c := &Compressed{
		n:     n,
		width: width,
		dest:  make([]int, n*width),
		size:  make([]int64, n*width),
		prt:   make([]int, n),
	}
	for i := range c.dest {
		c.dest[i] = -1
	}
	for i := 0; i < n; i++ {
		col := 0
		for j := 0; j < n; j++ {
			if b := m.At(i, j); b > 0 {
				c.dest[i*width+col] = j
				c.size[i*width+col] = b
				col++
			}
		}
		c.prt[i] = col - 1
	}
	return c
}

// N returns the number of processors.
func (c *Compressed) N() int { return c.n }

// Width returns d, the row capacity (maximum send degree at build time).
func (c *Compressed) Width() int { return c.width }

// Remaining returns the number of unscheduled messages in row i.
func (c *Compressed) Remaining(i int) int { return c.prt[i] + 1 }

// Empty reports whether every row has been fully drained.
func (c *Compressed) Empty() bool {
	for i := 0; i < c.n; i++ {
		if c.prt[i] >= 0 {
			return false
		}
	}
	return true
}

// TotalRemaining returns the number of unscheduled messages overall.
func (c *Compressed) TotalRemaining() int {
	total := 0
	for i := 0; i < c.n; i++ {
		total += c.prt[i] + 1
	}
	return total
}

// At returns the destination in row i, column z, or -1 if inactive.
func (c *Compressed) At(i, z int) int {
	if z > c.prt[i] {
		return -1
	}
	return c.dest[i*c.width+z]
}

// SizeAt returns the message size in row i, column z.
func (c *Compressed) SizeAt(i, z int) int64 {
	if z > c.prt[i] {
		return 0
	}
	return c.size[i*c.width+z]
}

// Remove deletes the entry at (i, z) exactly as the paper's inner loop
// does: the last active entry of the row is moved into slot z and prt
// is decremented. It returns the removed destination and size.
func (c *Compressed) Remove(i, z int) (dest int, bytes int64) {
	if z > c.prt[i] || z < 0 {
		panic(fmt.Sprintf("comm: Remove(%d,%d) beyond prt %d", i, z, c.prt[i]))
	}
	base := i * c.width
	dest = c.dest[base+z]
	bytes = c.size[base+z]
	last := c.prt[i]
	c.dest[base+z] = c.dest[base+last]
	c.size[base+z] = c.size[base+last]
	c.dest[base+last] = -1
	c.size[base+last] = 0
	c.prt[i] = last - 1
	return dest, bytes
}

// PartitionRows stable-partitions the active entries of every row so
// that entries satisfying pred(row, dest) come first, preserving the
// relative order within each group. The RS_NL scheduler uses it to
// move pairwise-exchange candidates to the front of each row after the
// randomizing shuffle.
func (c *Compressed) PartitionRows(pred func(src, dst int) bool) {
	destBuf := make([]int, 0, c.width)
	sizeBuf := make([]int64, 0, c.width)
	for i := 0; i < c.n; i++ {
		base := i * c.width
		live := c.prt[i] + 1
		destBuf = destBuf[:0]
		sizeBuf = sizeBuf[:0]
		for z := 0; z < live; z++ {
			if pred(i, c.dest[base+z]) {
				destBuf = append(destBuf, c.dest[base+z])
				sizeBuf = append(sizeBuf, c.size[base+z])
			}
		}
		for z := 0; z < live; z++ {
			if !pred(i, c.dest[base+z]) {
				destBuf = append(destBuf, c.dest[base+z])
				sizeBuf = append(sizeBuf, c.size[base+z])
			}
		}
		copy(c.dest[base:base+live], destBuf)
		copy(c.size[base:base+live], sizeBuf)
	}
}

// RowDests returns the active destinations of row i (a copy, for tests
// and trace output).
func (c *Compressed) RowDests(i int) []int {
	out := make([]int, 0, c.prt[i]+1)
	for z := 0; z <= c.prt[i]; z++ {
		out = append(out, c.dest[i*c.width+z])
	}
	return out
}
