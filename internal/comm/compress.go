package comm

import (
	"fmt"
	"math/rand"
)

// Compressed is the paper's n x d matrix CCOM (§4.2): row i holds the
// destinations of Pi's outgoing messages packed into the first few
// columns, with the per-row pointer vector prt marking the last active
// column. The randomized schedulers scan CCOM instead of COM, cutting
// the per-permutation work from O(n^2) to O(dn).
//
// The compressing procedure also shuffles the active entries of each
// row: without the shuffle the destinations sit in ascending order and
// the first several phases suffer node contention among processors
// with small IDs (paper §4.2). The shuffle is what keeps the expected
// number of collisions bounded. NewCompressed applies it; the ablation
// benchmark disables it via NewCompressedOrdered.
type Compressed struct {
	n     int
	width int     // d: max send degree, the row capacity
	dest  []int   // row-major n*width; destination id or -1
	size  []int64 // row-major n*width; message bytes, parallel to dest
	prt   []int   // prt[i]: index of last active column in row i, -1 if empty
	// partition scratch, reused across PartitionRows calls so the
	// pairwise-locating pass of RS_NL allocates nothing when a
	// Compressed is reused (sched.Core keeps one per core).
	destBuf []int
	sizeBuf []int64
}

// NewCompressed builds CCOM from COM, shuffling each row's active
// entries with rng as the paper prescribes. rng may not be nil.
func NewCompressed(m *Matrix, rng *rand.Rand) *Compressed {
	c := &Compressed{}
	c.Load(m, rng)
	return c
}

// NewCompressedOrdered builds CCOM without the randomizing shuffle,
// leaving each row's destinations in ascending order. It exists to
// reproduce the paper's observation that the unshuffled form causes
// early-phase node contention (ablation benchmark).
func NewCompressedOrdered(m *Matrix) *Compressed {
	c := &Compressed{}
	c.Load(m, nil)
	return c
}

// Load rebuilds the CCOM in place from m, reusing the row storage when
// its capacity allows — the steady-state path of a reusable scheduler
// core re-loads the same backing arrays for every request. A non-nil
// rng shuffles each row exactly as NewCompressed does (consuming the
// identical stream, so reuse cannot change a schedule); nil leaves
// rows in ascending destination order.
func (c *Compressed) Load(m *Matrix, rng *rand.Rand) {
	n := m.N()
	width := 0
	for i := 0; i < n; i++ {
		if deg := m.SendDegree(i); deg > width {
			width = deg
		}
	}
	if width == 0 {
		width = 1 // keep row storage non-degenerate for empty matrices
	}
	c.n, c.width = n, width
	need := n * width
	if cap(c.dest) < need {
		c.dest = make([]int, need)
		c.size = make([]int64, need)
	} else {
		c.dest = c.dest[:need]
		c.size = c.size[:need]
	}
	if cap(c.prt) < n {
		c.prt = make([]int, n)
	} else {
		c.prt = c.prt[:n]
	}
	for i := range c.dest {
		c.dest[i] = -1
		c.size[i] = 0
	}
	for i := 0; i < n; i++ {
		col := 0
		for j := 0; j < n; j++ {
			if b := m.At(i, j); b > 0 {
				c.dest[i*width+col] = j
				c.size[i*width+col] = b
				col++
			}
		}
		c.prt[i] = col - 1
	}
	if rng == nil {
		return
	}
	for i := 0; i < n; i++ {
		row := c.dest[i*width : i*width+c.prt[i]+1]
		sz := c.size[i*width : i*width+c.prt[i]+1]
		rng.Shuffle(len(row), func(a, b int) {
			row[a], row[b] = row[b], row[a]
			sz[a], sz[b] = sz[b], sz[a]
		})
	}
}

// N returns the number of processors.
func (c *Compressed) N() int { return c.n }

// Width returns d, the row capacity (maximum send degree at build time).
func (c *Compressed) Width() int { return c.width }

// Remaining returns the number of unscheduled messages in row i.
func (c *Compressed) Remaining(i int) int { return c.prt[i] + 1 }

// Empty reports whether every row has been fully drained.
func (c *Compressed) Empty() bool {
	for i := 0; i < c.n; i++ {
		if c.prt[i] >= 0 {
			return false
		}
	}
	return true
}

// TotalRemaining returns the number of unscheduled messages overall.
func (c *Compressed) TotalRemaining() int {
	total := 0
	for i := 0; i < c.n; i++ {
		total += c.prt[i] + 1
	}
	return total
}

// At returns the destination in row i, column z, or -1 if inactive.
func (c *Compressed) At(i, z int) int {
	if z > c.prt[i] {
		return -1
	}
	return c.dest[i*c.width+z]
}

// SizeAt returns the message size in row i, column z.
func (c *Compressed) SizeAt(i, z int) int64 {
	if z > c.prt[i] {
		return 0
	}
	return c.size[i*c.width+z]
}

// Remove deletes the entry at (i, z) exactly as the paper's inner loop
// does: the last active entry of the row is moved into slot z and prt
// is decremented. It returns the removed destination and size.
func (c *Compressed) Remove(i, z int) (dest int, bytes int64) {
	if z > c.prt[i] || z < 0 {
		panic(fmt.Sprintf("comm: Remove(%d,%d) beyond prt %d", i, z, c.prt[i]))
	}
	base := i * c.width
	dest = c.dest[base+z]
	bytes = c.size[base+z]
	last := c.prt[i]
	c.dest[base+z] = c.dest[base+last]
	c.size[base+z] = c.size[base+last]
	c.dest[base+last] = -1
	c.size[base+last] = 0
	c.prt[i] = last - 1
	return dest, bytes
}

// PartitionRows stable-partitions the active entries of every row so
// that entries satisfying pred(row, dest) come first, preserving the
// relative order within each group. The RS_NL scheduler uses it to
// move pairwise-exchange candidates to the front of each row after the
// randomizing shuffle.
func (c *Compressed) PartitionRows(pred func(src, dst int) bool) {
	if cap(c.destBuf) < c.width {
		c.destBuf = make([]int, 0, c.width)
		c.sizeBuf = make([]int64, 0, c.width)
	}
	destBuf := c.destBuf
	sizeBuf := c.sizeBuf
	for i := 0; i < c.n; i++ {
		base := i * c.width
		live := c.prt[i] + 1
		destBuf = destBuf[:0]
		sizeBuf = sizeBuf[:0]
		for z := 0; z < live; z++ {
			if pred(i, c.dest[base+z]) {
				destBuf = append(destBuf, c.dest[base+z])
				sizeBuf = append(sizeBuf, c.size[base+z])
			}
		}
		for z := 0; z < live; z++ {
			if !pred(i, c.dest[base+z]) {
				destBuf = append(destBuf, c.dest[base+z])
				sizeBuf = append(sizeBuf, c.size[base+z])
			}
		}
		copy(c.dest[base:base+live], destBuf)
		copy(c.size[base:base+live], sizeBuf)
	}
}

// RowDests returns the active destinations of row i (a copy, for tests
// and trace output).
func (c *Compressed) RowDests(i int) []int {
	out := make([]int, 0, c.prt[i]+1)
	for z := 0; z <= c.prt[i]; z++ {
		out = append(out, c.dest[i*c.width+z])
	}
	return out
}
