package comm

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("New(0) should fail")
	}
	if _, err := New(-3); err == nil {
		t.Error("New(-3) should fail")
	}
	m, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 8 {
		t.Errorf("N() = %d, want 8", m.N())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0) did not panic")
		}
	}()
	MustNew(0)
}

func TestSetAtAdd(t *testing.T) {
	m := MustNew(4)
	m.Set(1, 2, 100)
	if got := m.At(1, 2); got != 100 {
		t.Errorf("At(1,2) = %d, want 100", got)
	}
	m.Add(1, 2, 50)
	if got := m.At(1, 2); got != 150 {
		t.Errorf("after Add, At(1,2) = %d, want 150", got)
	}
	if got := m.At(2, 1); got != 0 {
		t.Errorf("At(2,1) = %d, want 0", got)
	}
}

func TestSetNegativePanics(t *testing.T) {
	m := MustNew(4)
	defer func() {
		if recover() == nil {
			t.Fatal("Set negative did not panic")
		}
	}()
	m.Set(0, 1, -5)
}

func TestDegreesAndDensity(t *testing.T) {
	m := MustNew(4)
	m.Set(0, 1, 10)
	m.Set(0, 2, 10)
	m.Set(0, 3, 10)
	m.Set(1, 3, 10)
	if got := m.SendDegree(0); got != 3 {
		t.Errorf("SendDegree(0) = %d, want 3", got)
	}
	if got := m.SendDegree(2); got != 0 {
		t.Errorf("SendDegree(2) = %d, want 0", got)
	}
	if got := m.RecvDegree(3); got != 2 {
		t.Errorf("RecvDegree(3) = %d, want 2", got)
	}
	if got := m.Density(); got != 3 {
		t.Errorf("Density() = %d, want 3", got)
	}
}

func TestCountsAndTotals(t *testing.T) {
	m := MustNew(4)
	m.Set(0, 1, 10)
	m.Set(2, 3, 30)
	if got := m.MessageCount(); got != 2 {
		t.Errorf("MessageCount = %d, want 2", got)
	}
	if got := m.TotalBytes(); got != 40 {
		t.Errorf("TotalBytes = %d, want 40", got)
	}
	if got := m.MaxMessageBytes(); got != 30 {
		t.Errorf("MaxMessageBytes = %d, want 30", got)
	}
}

func TestUniform(t *testing.T) {
	m := MustNew(4)
	if b, u := m.Uniform(); !u || b != 0 {
		t.Error("empty matrix should be uniform with size 0")
	}
	m.Set(0, 1, 64)
	m.Set(1, 2, 64)
	if b, u := m.Uniform(); !u || b != 64 {
		t.Errorf("Uniform = (%d,%v), want (64,true)", b, u)
	}
	m.Set(2, 3, 128)
	if _, u := m.Uniform(); u {
		t.Error("mixed sizes should not be uniform")
	}
}

func TestSymmetric(t *testing.T) {
	m := MustNew(4)
	m.Set(0, 1, 10)
	if m.Symmetric() {
		t.Error("one-way message should not be symmetric")
	}
	m.Set(1, 0, 99) // different size, same pattern
	if !m.Symmetric() {
		t.Error("two-way pattern should be symmetric")
	}
}

func TestCloneEqual(t *testing.T) {
	m := MustNew(4)
	m.Set(0, 1, 10)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone should be equal")
	}
	c.Set(2, 3, 5)
	if m.Equal(c) {
		t.Fatal("modified clone should differ")
	}
	if m.Equal(MustNew(5)) {
		t.Fatal("different sizes should differ")
	}
}

func TestMessagesAndVectors(t *testing.T) {
	m := MustNew(4)
	m.Set(0, 1, 10)
	m.Set(0, 3, 20)
	m.Set(2, 1, 30)
	msgs := m.Messages()
	if len(msgs) != 3 {
		t.Fatalf("Messages len %d, want 3", len(msgs))
	}
	if msgs[0] != (Message{0, 1, 10}) || msgs[1] != (Message{0, 3, 20}) {
		t.Errorf("unexpected message order: %v", msgs)
	}
	sv := m.SendVector(0)
	if len(sv) != 2 || sv[0].Dst != 1 || sv[1].Dst != 3 {
		t.Errorf("SendVector(0) = %v", sv)
	}
	rv := m.RecvVector(1)
	if len(rv) != 2 || rv[0].Src != 0 || rv[1].Src != 2 {
		t.Errorf("RecvVector(1) = %v", rv)
	}
}

func TestValidate(t *testing.T) {
	m := MustNew(4)
	m.Set(0, 1, 10)
	if err := m.Validate(); err != nil {
		t.Errorf("valid matrix rejected: %v", err)
	}
	m.Set(2, 2, 5)
	if err := m.Validate(); err == nil {
		t.Error("self message not rejected")
	}
}

func TestStringForms(t *testing.T) {
	small := MustNew(3)
	small.Set(0, 1, 7)
	if !strings.Contains(small.String(), "0 7 0") {
		t.Errorf("small String missing row: %q", small.String())
	}
	big := MustNew(64)
	if !strings.Contains(big.String(), "n=64") {
		t.Errorf("big String missing summary: %q", big.String())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m, err := UniformRandom(16, 5, 1024, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got) {
		t.Fatal("round trip changed matrix")
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	cases := []string{
		"",
		"bogus header\n",
		"n 4\n0 1\n",    // missing field
		"n 4\nx 1 10\n", // bad src
		"n 4\n0 y 10\n", // bad dst
		"n 4\n0 1 z\n",  // bad size
		"n 4\n0 9 10\n", // node out of range
		"n 4\n0 1 -3\n", // negative size
		"n 4\n2 2 10\n", // self message
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) should fail", in)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "n 4\n# comment\n\n0 1 10\n"
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 10 {
		t.Error("comment handling broke parsing")
	}
}
