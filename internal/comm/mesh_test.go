package comm

import (
	"math/rand"
	"testing"
)

func TestNewIrregularMeshValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewIrregularMesh(1, 5, 0.3, rng); err == nil {
		t.Error("1-row mesh should fail")
	}
	if _, err := NewIrregularMesh(5, 1, 0.3, rng); err == nil {
		t.Error("1-col mesh should fail")
	}
	if _, err := NewIrregularMesh(5, 5, 1.5, rng); err == nil {
		t.Error("diagProb > 1 should fail")
	}
}

func TestMeshStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, err := NewIrregularMesh(10, 10, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if m.Elements() != 100 {
		t.Fatalf("Elements = %d", m.Elements())
	}
	// Adjacency is symmetric.
	for u, nbrs := range m.Adj {
		for _, v := range nbrs {
			found := false
			for _, back := range m.Adj[v] {
				if back == u {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d-%d not symmetric", u, v)
			}
		}
	}
	// Grid edges exist: corner 0 connects to 1 and 10.
	has := func(u, v int) bool {
		for _, x := range m.Adj[u] {
			if x == v {
				return true
			}
		}
		return false
	}
	if !has(0, 1) || !has(0, 10) {
		t.Error("grid edges missing at corner")
	}
	// With diagProb 0.5 on 81 interior cells, some diagonals exist.
	diagonals := 0
	for u, nbrs := range m.Adj {
		for _, v := range nbrs {
			du, dv := u/10-v/10, u%10-v%10
			if du != 0 && dv != 0 {
				diagonals++
			}
		}
	}
	if diagonals == 0 {
		t.Error("no diagonals inserted at diagProb 0.5")
	}
}

func TestStripPartitionBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := NewIrregularMesh(16, 16, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	part := m.StripPartition(8)
	counts := make([]int, 8)
	for _, p := range part {
		counts[p]++
	}
	for p, c := range counts {
		if c != 32 {
			t.Errorf("processor %d owns %d elements, want 32", p, c)
		}
	}
}

func TestHaloMatrixFromMesh(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	mesh, err := NewIrregularMesh(32, 32, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	part := mesh.StripPartition(8)
	m, err := mesh.HaloMatrix(8, part, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Strip partitions communicate with neighbors: every processor has
	// at least one message and the pattern is symmetric.
	if !m.Symmetric() {
		t.Error("halo pattern from symmetric adjacency should be symmetric")
	}
	for p := 0; p < 8; p++ {
		if m.SendDegree(p) == 0 {
			t.Errorf("processor %d sends nothing", p)
		}
	}
	// Strips only touch nearby strips; corner strips cannot talk to the
	// far end.
	if m.At(0, 7) != 0 {
		t.Error("strip 0 should not talk to strip 7")
	}
}

func TestHaloMatrixPartitionMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mesh, err := NewIrregularMesh(4, 4, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mesh.HaloMatrix(4, []int{0, 1}, 8); err == nil {
		t.Error("short partition should fail")
	}
}

func TestRandomPartitionCoversRange(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	mesh, err := NewIrregularMesh(16, 16, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	part := mesh.RandomPartition(8, rng)
	for u, p := range part {
		if p < 0 || p >= 8 {
			t.Fatalf("element %d assigned out of range: %d", u, p)
		}
	}
}
