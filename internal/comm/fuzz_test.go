package comm

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzRead drives the matrix parser with arbitrary input. The
// contract: never panic, never allocate unboundedly, and any input
// that parses must yield a valid matrix that survives a WriteTo->Read
// round trip unchanged.
func FuzzRead(f *testing.F) {
	f.Add([]byte("n 4\n0 1 256\n1 2 1024\n3 0 7\n"))
	f.Add([]byte("n 2\n"))
	f.Add([]byte("n 2\n# comment line\n0 1 5\n\n1 0 9\n"))
	f.Add([]byte(""))
	f.Add([]byte("n -3\n"))
	f.Add([]byte("n 999999999999\n"))
	f.Add([]byte("n 3\n0 0 5\n"))   // self message: must be rejected
	f.Add([]byte("n 3\n0 9 5\n"))   // node out of range
	f.Add([]byte("n 3\n0 1 -5\n"))  // negative size
	f.Add([]byte("n 3\n0 1\n"))     // short line
	f.Add([]byte("garbage header")) // no n prefix
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejecting bad input is fine; panicking is not
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("Read accepted an invalid matrix: %v\ninput: %q", err, data)
		}
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo failed on parsed matrix: %v", err)
		}
		m2, err := Read(&buf)
		if err != nil {
			t.Fatalf("round-trip re-read failed: %v\nserialized: %q", err, buf.String())
		}
		if !m.Equal(m2) {
			t.Fatalf("round trip changed the matrix:\nfirst:  %v\nsecond: %v", m, m2)
		}
	})
}

// TestWriteReadRoundTripRandom complements the fuzz target from the
// other direction: random generated matrices must serialize and parse
// back identically.
func TestWriteReadRoundTripRandom(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(63)
		d := 1 + rng.Intn(n-1)
		m, err := DRegular(n, d, 1+int64(rng.Intn(1<<20)), rng)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !m.Equal(got) {
			t.Errorf("seed %d: round trip changed the matrix", seed)
		}
	}
}

func TestReadRejectsOversizedHeader(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("n 1000000000\n"))); err == nil {
		t.Error("gigantic matrix header accepted")
	}
}
