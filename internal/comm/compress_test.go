package comm

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCompressedPreservesRowMultisets(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m, err := UniformRandom(64, 12, 512, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCompressed(m, rng)
	if c.N() != 64 {
		t.Fatalf("N = %d", c.N())
	}
	if c.Width() != 12 {
		t.Fatalf("Width = %d, want 12", c.Width())
	}
	for i := 0; i < 64; i++ {
		want := make([]int, 0, 12)
		for _, msg := range m.SendVector(i) {
			want = append(want, msg.Dst)
		}
		got := c.RowDests(i)
		sort.Ints(want)
		sort.Ints(got)
		if len(got) != len(want) {
			t.Fatalf("row %d: %d dests, want %d", i, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("row %d: dests %v, want %v", i, got, want)
			}
		}
	}
}

func TestCompressedOrderedAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, err := UniformRandom(32, 6, 64, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCompressedOrdered(m)
	for i := 0; i < 32; i++ {
		row := c.RowDests(i)
		if !sort.IntsAreSorted(row) {
			t.Fatalf("row %d not ascending: %v", i, row)
		}
	}
}

func TestCompressedRemoveSemantics(t *testing.T) {
	m := MustNew(4)
	m.Set(0, 1, 10)
	m.Set(0, 2, 20)
	m.Set(0, 3, 30)
	c := NewCompressedOrdered(m)
	if c.Remaining(0) != 3 {
		t.Fatalf("Remaining = %d", c.Remaining(0))
	}
	// Remove middle entry: last entry (3) must slide into its slot.
	dest, bytes := c.Remove(0, 1)
	if dest != 2 || bytes != 20 {
		t.Fatalf("Remove returned (%d,%d)", dest, bytes)
	}
	if c.Remaining(0) != 2 {
		t.Fatalf("Remaining after remove = %d", c.Remaining(0))
	}
	if c.At(0, 1) != 3 {
		t.Fatalf("slot 1 should hold moved entry 3, got %d", c.At(0, 1))
	}
	if c.SizeAt(0, 1) != 30 {
		t.Fatalf("slot 1 size should be 30, got %d", c.SizeAt(0, 1))
	}
	// Beyond-prt access returns inactive.
	if c.At(0, 2) != -1 {
		t.Fatalf("slot 2 should be inactive, got %d", c.At(0, 2))
	}
	if c.SizeAt(0, 2) != 0 {
		t.Fatal("inactive slot size should be 0")
	}
}

func TestCompressedRemovePanicsOutOfRange(t *testing.T) {
	m := MustNew(4)
	m.Set(0, 1, 10)
	c := NewCompressedOrdered(m)
	defer func() {
		if recover() == nil {
			t.Fatal("Remove beyond prt did not panic")
		}
	}()
	c.Remove(0, 5)
}

func TestCompressedDrainToEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m, err := UniformRandom(16, 4, 128, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCompressed(m, rng)
	if c.Empty() {
		t.Fatal("fresh CCOM should not be empty")
	}
	total := c.TotalRemaining()
	if total != 16*4 {
		t.Fatalf("TotalRemaining = %d, want 64", total)
	}
	removed := 0
	for i := 0; i < 16; i++ {
		for c.Remaining(i) > 0 {
			c.Remove(i, 0)
			removed++
		}
	}
	if removed != total {
		t.Fatalf("removed %d, want %d", removed, total)
	}
	if !c.Empty() {
		t.Fatal("drained CCOM should be empty")
	}
	if c.TotalRemaining() != 0 {
		t.Fatal("TotalRemaining should be 0")
	}
}

func TestCompressedEmptyMatrix(t *testing.T) {
	m := MustNew(8)
	c := NewCompressed(m, rand.New(rand.NewSource(1)))
	if !c.Empty() {
		t.Fatal("empty matrix should compress to empty CCOM")
	}
	if c.Width() != 1 {
		t.Fatalf("degenerate width = %d, want 1", c.Width())
	}
	if c.Remaining(0) != 0 {
		t.Fatal("empty row should have 0 remaining")
	}
}

// Property: removing all entries of a shuffled CCOM yields exactly the
// multiset of (dest, size) pairs of the source matrix row.
func TestCompressedDrainMatchesMatrix(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := UniformRandom(16, 5, 256, rng)
		if err != nil {
			return false
		}
		c := NewCompressed(m, rng)
		for i := 0; i < 16; i++ {
			got := map[int]int64{}
			for c.Remaining(i) > 0 {
				d, b := c.Remove(i, rng.Intn(c.Remaining(i)))
				got[d] = b
			}
			for _, msg := range m.SendVector(i) {
				if got[msg.Dst] != msg.Bytes {
					return false
				}
				delete(got, msg.Dst)
			}
			if len(got) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPartitionRows(t *testing.T) {
	m := MustNew(8)
	// Row 0 sends to 1..5; reverses exist only from 2 and 4.
	for j := 1; j <= 5; j++ {
		m.Set(0, j, int64(j*10))
	}
	m.Set(2, 0, 5)
	m.Set(4, 0, 5)
	c := NewCompressedOrdered(m)
	c.PartitionRows(func(src, dst int) bool { return m.At(dst, src) > 0 })
	row := c.RowDests(0)
	if len(row) != 5 {
		t.Fatalf("row length %d", len(row))
	}
	// Pairwise-capable entries (2, 4) first, in original relative
	// order; the rest (1, 3, 5) follow in original relative order.
	want := []int{2, 4, 1, 3, 5}
	for i := range want {
		if row[i] != want[i] {
			t.Fatalf("row = %v, want %v", row, want)
		}
	}
	// Sizes must travel with their destinations.
	if c.SizeAt(0, 0) != 20 || c.SizeAt(0, 2) != 10 {
		t.Errorf("sizes did not follow destinations: %d %d", c.SizeAt(0, 0), c.SizeAt(0, 2))
	}
}

func TestPartitionRowsEmptyAndFull(t *testing.T) {
	m := MustNew(4)
	m.Set(0, 1, 10)
	m.Set(0, 2, 20)
	c := NewCompressedOrdered(m)
	// All-true and all-false predicates preserve content and order.
	c.PartitionRows(func(int, int) bool { return true })
	row := c.RowDests(0)
	if row[0] != 1 || row[1] != 2 {
		t.Errorf("all-true changed order: %v", row)
	}
	c.PartitionRows(func(int, int) bool { return false })
	row = c.RowDests(0)
	if row[0] != 1 || row[1] != 2 {
		t.Errorf("all-false changed order: %v", row)
	}
}

func TestCompressShuffleChangesOrderButNotContent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m, err := UniformRandom(64, 16, 128, rng)
	if err != nil {
		t.Fatal(err)
	}
	ordered := NewCompressedOrdered(m)
	shuffled := NewCompressed(m, rand.New(rand.NewSource(14)))
	differs := false
	for i := 0; i < 64 && !differs; i++ {
		a, b := ordered.RowDests(i), shuffled.RowDests(i)
		for k := range a {
			if a[k] != b[k] {
				differs = true
				break
			}
		}
	}
	if !differs {
		t.Error("shuffle left every row in ascending order (astronomically unlikely)")
	}
}
