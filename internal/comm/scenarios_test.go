package comm

import (
	"math/rand"
	"testing"
)

func TestPermutationProperties(t *testing.T) {
	for _, n := range []int{2, 3, 8, 64} {
		rng := rand.New(rand.NewSource(int64(n)))
		m, err := Permutation(n, 256, rng)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 0; i < n; i++ {
			if m.SendDegree(i) != 1 || m.RecvDegree(i) != 1 {
				t.Fatalf("n=%d: node %d degrees %d/%d, want 1/1", n, i, m.SendDegree(i), m.RecvDegree(i))
			}
		}
	}
	if _, err := Permutation(1, 256, rand.New(rand.NewSource(1))); err == nil {
		t.Error("n=1 should fail")
	}
}

func TestTransposeProperties(t *testing.T) {
	m, err := Transpose(16, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// (r,c) -> (c,r) on the 4x4 grid; diagonal silent.
	if m.At(1, 4) != 1024 || m.At(4, 1) != 1024 {
		t.Error("transpose edges missing")
	}
	if !m.Symmetric() {
		t.Error("transpose pattern should be symmetric")
	}
	if m.Density() != 1 {
		t.Errorf("density %d, want 1", m.Density())
	}
	for i := 0; i < 4; i++ {
		if m.SendDegree(i*4+i) != 0 {
			t.Errorf("diagonal processor %d sends", i*4+i)
		}
	}
	if _, err := Transpose(8, 1024); err == nil {
		t.Error("non-square n should fail")
	}
	if _, err := Transpose(1, 1024); err == nil {
		t.Error("n=1 should fail")
	}
}

func TestStencil3DProperties(t *testing.T) {
	// 4x4x4 elements on 8 processors: 8 elements per processor, strip
	// partition. Every processor exchanges with its strip neighbors.
	m, err := Stencil3D(8, 4, 4, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if !m.Symmetric() {
		t.Error("periodic stencil halo should be pattern-symmetric")
	}
	for i := 0; i < 8; i++ {
		if m.SendDegree(i) == 0 || m.RecvDegree(i) == 0 {
			t.Errorf("processor %d silent in a periodic stencil", i)
		}
	}
	// Deterministic: two builds agree.
	m2, err := Stencil3D(8, 4, 4, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(m2) {
		t.Error("Stencil3D not deterministic")
	}
	if _, err := Stencil3D(8, 1, 2, 3, 8); err == nil {
		t.Error("fewer elements than processors should fail")
	}
	if _, err := Stencil3D(8, 0, 4, 4, 8); err == nil {
		t.Error("zero extent should fail")
	}
	if _, err := Stencil3D(8, 4, 4, 4, 0); err == nil {
		t.Error("zero bytes should fail")
	}
}

func TestSpMVPowerLawProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m, err := SpMVPowerLaw(16, 8, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.MessageCount() == 0 {
		t.Fatal("spmv exchange produced no messages")
	}
	// Power-law column popularity makes the low-id owners hot on the
	// send side (they own the popular vector entries): processor 0 ships
	// strictly more bytes than the owner of the unpopular tail.
	rowBytes := func(i int) int64 {
		var total int64
		for j := 0; j < 16; j++ {
			total += m.At(i, j)
		}
		return total
	}
	if rowBytes(0) <= rowBytes(15) {
		t.Errorf("power-law skew missing: owner 0 sends %d bytes, owner 15 sends %d",
			rowBytes(0), rowBytes(15))
	}
	if _, err := SpMVPowerLaw(16, 0, 8, rng); err == nil {
		t.Error("zero nnz should fail")
	}
	if _, err := SpMVPowerLaw(1, 8, 8, rng); err == nil {
		t.Error("n=1 should fail")
	}
}

// TestIntoMatchesFresh: every Into generator regenerating into a dirty
// reused matrix must produce exactly the matrix its allocating form
// builds from the same RNG stream — the reuse contract of campaign
// workers. The reused matrix is pre-soiled with an AllToAll pattern so
// stale entries would be caught.
func TestIntoMatchesFresh(t *testing.T) {
	const n = 16
	cases := []struct {
		name  string
		fresh func(rng *rand.Rand) (*Matrix, error)
		into  func(m *Matrix, rng *rand.Rand) error
	}{
		{"UniformRandom",
			func(rng *rand.Rand) (*Matrix, error) { return UniformRandom(n, 4, 256, rng) },
			func(m *Matrix, rng *rand.Rand) error { return UniformRandomInto(m, 4, 256, rng) }},
		{"DRegular",
			func(rng *rand.Rand) (*Matrix, error) { return DRegular(n, 4, 256, rng) },
			func(m *Matrix, rng *rand.Rand) error { return DRegularInto(m, 4, 256, rng) }},
		{"DRegularDense", // exercises the circulant fallback path
			func(rng *rand.Rand) (*Matrix, error) { return DRegular(n, n-1, 256, rng) },
			func(m *Matrix, rng *rand.Rand) error { return DRegularInto(m, n-1, 256, rng) }},
		{"HotSpot",
			func(rng *rand.Rand) (*Matrix, error) { return HotSpot(n, 4, 256, 2, 0.7, rng) },
			func(m *Matrix, rng *rand.Rand) error { return HotSpotInto(m, 4, 256, 2, 0.7, rng) }},
		{"BitComplement",
			func(rng *rand.Rand) (*Matrix, error) { return BitComplement(n, 256) },
			func(m *Matrix, rng *rand.Rand) error { return BitComplementInto(m, 256) }},
		{"Shift",
			func(rng *rand.Rand) (*Matrix, error) { return Shift(n, 3, 256) },
			func(m *Matrix, rng *rand.Rand) error { return ShiftInto(m, 3, 256) }},
		{"AllToAll",
			func(rng *rand.Rand) (*Matrix, error) { return AllToAll(n, 256) },
			func(m *Matrix, rng *rand.Rand) error { return AllToAllInto(m, 256) }},
		{"MixedSizes",
			func(rng *rand.Rand) (*Matrix, error) { return MixedSizes(n, 4, 64, 4096, rng) },
			func(m *Matrix, rng *rand.Rand) error { return MixedSizesInto(m, 4, 64, 4096, rng) }},
		{"Permutation",
			func(rng *rand.Rand) (*Matrix, error) { return Permutation(n, 256, rng) },
			func(m *Matrix, rng *rand.Rand) error { return PermutationInto(m, 256, rng) }},
		{"Transpose",
			func(rng *rand.Rand) (*Matrix, error) { return Transpose(n, 256) },
			func(m *Matrix, rng *rand.Rand) error { return TransposeInto(m, 256) }},
		{"Stencil3D",
			func(rng *rand.Rand) (*Matrix, error) { return Stencil3D(n, 4, 4, 4, 8) },
			func(m *Matrix, rng *rand.Rand) error { return Stencil3DInto(m, 4, 4, 4, 8) }},
		{"SpMVPowerLaw",
			func(rng *rand.Rand) (*Matrix, error) { return SpMVPowerLaw(n, 6, 8, rng) },
			func(m *Matrix, rng *rand.Rand) error { return SpMVPowerLawInto(m, 6, 8, rng) }},
	}
	reused := MustNew(n)
	for _, tc := range cases {
		want, err := tc.fresh(rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatalf("%s fresh: %v", tc.name, err)
		}
		if err := AllToAllInto(reused, 1); err != nil { // soil the buffer
			t.Fatal(err)
		}
		if err := tc.into(reused, rand.New(rand.NewSource(7))); err != nil {
			t.Fatalf("%s into: %v", tc.name, err)
		}
		if !reused.Equal(want) {
			t.Errorf("%s: Into over a dirty matrix differs from the fresh build", tc.name)
		}
	}
}

// TestHaloFromPartitionIntoMatchesFresh covers the one generator whose
// signature does not fit the shared table above.
func TestHaloFromPartitionIntoMatchesFresh(t *testing.T) {
	adj := [][]int{{1}, {0, 2}, {1, 3}, {2}}
	part := []int{0, 0, 1, 1}
	want, err := HaloFromPartition(2, part, adj, 8)
	if err != nil {
		t.Fatal(err)
	}
	reused := MustNew(2)
	reused.Set(0, 1, 999)
	if err := HaloFromPartitionInto(reused, part, adj, 8); err != nil {
		t.Fatal(err)
	}
	if !reused.Equal(want) {
		t.Error("HaloFromPartitionInto differs from fresh build")
	}
}
