package comm

// Binary wire encoding of the communication matrix: the compact,
// self-describing form the unschedd service serves when a client asks
// for application/x-unsched-binary. A dense n x n matrix is almost
// always sparse in messages (the paper's workloads are d-regular with
// d << n), so the wire form is the CCOM idea applied to serialization:
// per-row entry lists, with destination columns delta-encoded as
// varints and sizes as varints. A 1024-node d=8 matrix is ~40 KB
// instead of the ~300 KB of its JSON triples, before compression.
//
// The encoding is canonical: rows in ascending order, columns strictly
// ascending within a row, every varint minimal. The decoder is total
// (arbitrary input yields an error, never a panic — FuzzBinaryMatrix)
// and strict: it rejects non-canonical input, so any accepted payload
// re-encodes byte-identically. Canonical bytes make the format safe to
// cache, checksum, and content-hash.
//
// Layout (after the 5-byte header "USWM" + version 1), column
// oriented — all counts, then all column gaps, then all sizes — so the
// service's gzip layer sees long runs of similar varints (a uniform
// workload's size column is one repeated value) instead of interleaved
// noise:
//
//	uvarint n                      matrix dimension, 1..MaxReadNodes
//	n uvarints                     per-row nonzero entry counts c_0..c_{n-1}
//	sum(c_i) uvarints              column gaps, row-major, ascending within
//	                               a row: first col+1, then col-prev
//	sum(c_i) uvarints              message sizes, row-major, each >= 1
//
// No trailing bytes are allowed.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// MatrixWireVersion is the format version AppendBinary writes and
// DecodeMatrixBinary accepts.
const MatrixWireVersion = 1

const matrixWireHeaderLen = 5 // magic + version

var matrixWireMagic = [4]byte{'U', 'S', 'W', 'M'}

var (
	errWireTooShort  = errors.New("comm: binary matrix truncated")
	errWireMagic     = errors.New("comm: bad binary matrix magic")
	errWireVersion   = errors.New("comm: unsupported binary matrix version")
	errWireVarint    = errors.New("comm: bad varint in binary matrix")
	errWireTrailing  = errors.New("comm: trailing bytes after binary matrix")
	errWireRowCount  = errors.New("comm: binary matrix row entry count out of range")
	errWireColumn    = errors.New("comm: binary matrix column out of range")
	errWireZeroBytes = errors.New("comm: binary matrix message size must be positive")
)

// AppendUvarint appends the minimal varint encoding of v to dst. It is
// the primitive shared by the matrix codec and the service's binary
// response envelope.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// ReadUvarint decodes one strictly minimal varint from the front of b,
// returning the value and the number of bytes consumed. Non-minimal
// encodings (e.g. 0x80 0x00 for zero) are rejected: every accepted
// wire payload must have exactly one byte representation, so that
// decode-then-encode round-trips byte-identically.
func ReadUvarint(b []byte) (uint64, int, error) {
	v, k := binary.Uvarint(b)
	if k <= 0 {
		return 0, 0, errWireVarint
	}
	// Minimality: k bytes were consumed, so v must need k bytes.
	var scratch [binary.MaxVarintLen64]byte
	if binary.PutUvarint(scratch[:], v) != k {
		return 0, 0, errWireVarint
	}
	return v, k, nil
}

// AppendBinary appends the canonical binary wire encoding of m to dst
// and returns the extended slice. The output decodes with
// DecodeMatrixBinary; encoding the decoded matrix reproduces the same
// bytes.
func (m *Matrix) AppendBinary(dst []byte) []byte {
	dst = append(dst, matrixWireMagic[:]...)
	dst = append(dst, MatrixWireVersion)
	dst = binary.AppendUvarint(dst, uint64(m.n))
	for i := 0; i < m.n; i++ {
		count := 0
		for _, b := range m.data[i*m.n : (i+1)*m.n] {
			if b > 0 {
				count++
			}
		}
		dst = binary.AppendUvarint(dst, uint64(count))
	}
	for i := 0; i < m.n; i++ {
		prev := -1
		for j, b := range m.data[i*m.n : (i+1)*m.n] {
			if b > 0 {
				dst = binary.AppendUvarint(dst, uint64(j-prev))
				prev = j
			}
		}
	}
	for _, b := range m.data {
		if b > 0 {
			dst = binary.AppendUvarint(dst, uint64(b))
		}
	}
	return dst
}

// EncodeBinary returns the canonical binary wire encoding of m.
func (m *Matrix) EncodeBinary() []byte {
	// 2 bytes per varint is the common case for the sizes the paper
	// uses; growing once more on dense rows is fine.
	return m.AppendBinary(make([]byte, 0, matrixWireHeaderLen+4*m.MessageCount()+m.n+8))
}

// DecodeMatrixBinary parses the binary wire form produced by
// AppendBinary. The decoder is total and strict: malformed, truncated,
// oversized (beyond MaxReadNodes), or non-canonical input — columns
// out of order, zero sizes, non-minimal varints, trailing bytes —
// yields an error, never a panic, and any accepted payload re-encodes
// to exactly the input bytes.
func DecodeMatrixBinary(b []byte) (*Matrix, error) {
	if len(b) < matrixWireHeaderLen {
		return nil, errWireTooShort
	}
	if [4]byte(b[:4]) != matrixWireMagic {
		return nil, errWireMagic
	}
	if b[4] != MatrixWireVersion {
		return nil, errWireVersion
	}
	rest := b[matrixWireHeaderLen:]
	nv, k, err := ReadUvarint(rest)
	if err != nil {
		return nil, err
	}
	rest = rest[k:]
	if nv < 1 || nv > MaxReadNodes {
		return nil, fmt.Errorf("comm: binary matrix size %d out of range [1,%d]", nv, MaxReadNodes)
	}
	n := int(nv)
	// Every row costs at least one byte (its count varint), so a header
	// promising n rows needs at least n more bytes: check before the
	// O(n^2) dense allocation so a tiny forged header cannot demand it.
	if len(rest) < n {
		return nil, errWireTooShort
	}
	m := MustNew(n)
	counts := make([]int, n)
	total := uint64(0)
	for i := 0; i < n; i++ {
		cv, k, err := ReadUvarint(rest)
		if err != nil {
			return nil, err
		}
		rest = rest[k:]
		if cv > uint64(n) {
			return nil, errWireRowCount
		}
		counts[i] = int(cv)
		total += cv
	}
	// Each entry contributes one delta varint and one size varint, each
	// at least a byte: bound the total before walking the columns.
	if uint64(len(rest)) < 2*total {
		return nil, errWireTooShort
	}
	// Column positions for every row, then every size, row-major.
	cols := make([]int, 0, total)
	for i := 0; i < n; i++ {
		prev := -1
		for e := 0; e < counts[i]; e++ {
			delta, k, err := ReadUvarint(rest)
			if err != nil {
				return nil, err
			}
			rest = rest[k:]
			if delta == 0 || delta > uint64(n) {
				return nil, errWireColumn
			}
			col := prev + int(delta)
			if col >= n {
				return nil, errWireColumn
			}
			cols = append(cols, i*n+col)
			prev = col
		}
	}
	for _, at := range cols {
		size, k, err := ReadUvarint(rest)
		if err != nil {
			return nil, err
		}
		rest = rest[k:]
		if size == 0 {
			return nil, errWireZeroBytes
		}
		if size > math.MaxInt64 {
			return nil, fmt.Errorf("comm: binary matrix message size %d overflows int64", size)
		}
		m.data[at] = int64(size)
	}
	if len(rest) != 0 {
		return nil, errWireTrailing
	}
	return m, nil
}
