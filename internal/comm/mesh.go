package comm

import (
	"fmt"
	"math/rand"
)

// Mesh is a small irregular-mesh substrate used to build realistic
// halo-exchange communication matrices (the PARTI-style workloads the
// paper's introduction motivates). It is a planar grid of points with
// randomly inserted diagonals, so element degrees vary and partition
// boundaries are irregular.
type Mesh struct {
	Rows, Cols int
	Adj        [][]int // Adj[u]: neighbors of element u (symmetric)
}

// NewIrregularMesh builds a rows x cols grid where each interior cell
// additionally gets one of its two diagonals with probability
// diagProb. Deterministic given rng.
func NewIrregularMesh(rows, cols int, diagProb float64, rng *rand.Rand) (*Mesh, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("comm: mesh needs at least 2x2 points, got %dx%d", rows, cols)
	}
	if diagProb < 0 || diagProb > 1 {
		return nil, fmt.Errorf("comm: diagProb %v out of [0,1]", diagProb)
	}
	m := &Mesh{Rows: rows, Cols: cols, Adj: make([][]int, rows*cols)}
	id := func(r, c int) int { return r*cols + c }
	addEdge := func(u, v int) {
		m.Adj[u] = append(m.Adj[u], v)
		m.Adj[v] = append(m.Adj[v], u)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				addEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				addEdge(id(r, c), id(r+1, c))
			}
			if r+1 < rows && c+1 < cols && rng.Float64() < diagProb {
				if rng.Intn(2) == 0 {
					addEdge(id(r, c), id(r+1, c+1))
				} else {
					addEdge(id(r, c+1), id(r+1, c))
				}
			}
		}
	}
	return m, nil
}

// Elements returns the number of mesh points.
func (m *Mesh) Elements() int { return m.Rows * m.Cols }

// StripPartition assigns elements to n processors in contiguous row
// strips, balancing element counts. It is the simple block partition a
// compiler would emit before any load-balancing pass.
func (m *Mesh) StripPartition(n int) []int {
	total := m.Elements()
	part := make([]int, total)
	for u := 0; u < total; u++ {
		part[u] = u * n / total
	}
	return part
}

// RandomPartition assigns elements to n processors uniformly at
// random — the pathological partition with maximal boundary, useful as
// a stress pattern (every processor talks to almost every other).
func (m *Mesh) RandomPartition(n int, rng *rand.Rand) []int {
	part := make([]int, m.Elements())
	for u := range part {
		part[u] = rng.Intn(n)
	}
	return part
}

// HaloMatrix builds the processor-level communication matrix induced
// by a partition: one message per processor pair exchanging boundary
// data, sized by the number of boundary elements times bytesPerElem.
func (m *Mesh) HaloMatrix(n int, part []int, bytesPerElem int64) (*Matrix, error) {
	if len(part) != m.Elements() {
		return nil, fmt.Errorf("comm: partition covers %d elements, mesh has %d", len(part), m.Elements())
	}
	return HaloFromPartition(n, part, m.Adj, bytesPerElem)
}
