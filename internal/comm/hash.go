package comm

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// Digest accumulates a canonical content hash over typed fields. Every
// write is tagged with a one-byte type marker and, for strings, a
// length prefix, so distinct field sequences can never collide by
// concatenation ("ab"+"c" vs "a"+"bc") or by type confusion (the int64
// 3 vs the string "3"). The scheduling service keys its memoization
// cache with Digests over (matrix, algorithm, topology, params); two
// requests share a cache slot iff their digests agree field for field.
type Digest struct {
	h   hash.Hash
	buf [10]byte
}

// NewDigest returns an empty SHA-256-backed digest.
func NewDigest() *Digest {
	return &Digest{h: sha256.New()}
}

func (d *Digest) tagged(tag byte, v uint64) {
	d.buf[0] = tag
	binary.BigEndian.PutUint64(d.buf[1:9], v)
	d.h.Write(d.buf[:9])
}

// Int64 mixes one signed integer field.
func (d *Digest) Int64(v int64) { d.tagged('i', uint64(v)) }

// Uint64 mixes one unsigned integer field.
func (d *Digest) Uint64(v uint64) { d.tagged('u', v) }

// Float64 mixes one float field by its IEEE-754 bit pattern.
func (d *Digest) Float64(v float64) { d.tagged('f', math.Float64bits(v)) }

// Bool mixes one boolean field.
func (d *Digest) Bool(v bool) {
	x := uint64(0)
	if v {
		x = 1
	}
	d.tagged('b', x)
}

// String mixes one length-prefixed string field.
func (d *Digest) String(s string) {
	d.tagged('s', uint64(len(s)))
	d.h.Write([]byte(s))
}

// Sum returns the 32-byte hash of everything mixed so far. The digest
// remains usable; further writes extend the same stream.
func (d *Digest) Sum() [32]byte {
	var out [32]byte
	d.h.Sum(out[:0])
	return out
}

// Hex returns Sum as a lowercase hex string — the wire form of cache
// keys and ETags.
func (d *Digest) Hex() string {
	s := d.Sum()
	return hex.EncodeToString(s[:])
}

// Fingerprint mixes the matrix into d in canonical form: the dimension
// followed by the nonzero entries in row-major order as (src, dst,
// bytes) triples. Zero entries contribute nothing, so a dense and a
// sparse representation of the same traffic hash identically, and two
// matrices hash equal iff Equal reports true.
func (m *Matrix) Fingerprint(d *Digest) {
	d.String("matrix")
	d.Int64(int64(m.n))
	for i := 0; i < m.n; i++ {
		row := m.data[i*m.n : (i+1)*m.n]
		for j, b := range row {
			if b > 0 {
				d.Int64(int64(i))
				d.Int64(int64(j))
				d.Int64(b)
			}
		}
	}
}

// ContentHash returns the canonical hex hash of the matrix alone.
func (m *Matrix) ContentHash() string {
	d := NewDigest()
	m.Fingerprint(d)
	return d.Hex()
}
