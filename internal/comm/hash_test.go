package comm

import (
	"math/rand"
	"testing"
)

func TestContentHashEqualMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, err := DRegular(32, 8, 1024, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.ContentHash(), m.Clone().ContentHash(); got != want {
		t.Fatalf("clone hashes differently: %s vs %s", got, want)
	}
	// Rebuilding the same traffic through a different entry order must
	// hash identically: the fingerprint is canonical, not insertion-
	// ordered.
	rebuilt := MustNew(m.N())
	msgs := m.Messages()
	for i := len(msgs) - 1; i >= 0; i-- {
		rebuilt.Set(msgs[i].Src, msgs[i].Dst, msgs[i].Bytes)
	}
	if got, want := rebuilt.ContentHash(), m.ContentHash(); got != want {
		t.Fatalf("entry order changed the hash: %s vs %s", got, want)
	}
}

func TestContentHashSensitivity(t *testing.T) {
	base := MustNew(8)
	base.Set(0, 1, 100)
	base.Set(2, 3, 200)

	bumped := base.Clone()
	bumped.Set(2, 3, 201)
	if base.ContentHash() == bumped.ContentHash() {
		t.Error("changing one message size did not change the hash")
	}

	moved := base.Clone()
	moved.Set(2, 3, 0)
	moved.Set(3, 2, 200)
	if base.ContentHash() == moved.ContentHash() {
		t.Error("moving a message did not change the hash")
	}

	bigger := MustNew(16)
	bigger.Set(0, 1, 100)
	bigger.Set(2, 3, 200)
	if base.ContentHash() == bigger.ContentHash() {
		t.Error("matrices of different size hash equal")
	}
}

func TestDigestFieldBoundaries(t *testing.T) {
	a := NewDigest()
	a.String("ab")
	a.String("c")
	b := NewDigest()
	b.String("a")
	b.String("bc")
	if a.Hex() == b.Hex() {
		t.Error("string field boundaries are not part of the hash")
	}

	c := NewDigest()
	c.Int64(3)
	d := NewDigest()
	d.String("3")
	if c.Hex() == d.Hex() {
		t.Error("int and string fields with the same bytes hash equal")
	}

	e := NewDigest()
	e.Uint64(7)
	f := NewDigest()
	f.Int64(7)
	if e.Hex() == f.Hex() {
		t.Error("uint and int field tags are not distinguished")
	}
}

func TestDigestExtendsAfterSum(t *testing.T) {
	d := NewDigest()
	d.Int64(1)
	first := d.Hex()
	d.Int64(2)
	if d.Hex() == first {
		t.Error("writes after Sum did not extend the digest")
	}
}
