// Package comm defines the communication matrix COM that drives all
// scheduling algorithms in this repository, the compressed n x d form
// CCOM used by the randomized schedulers, and generators for the
// workloads the paper evaluates (random all-to-many patterns of a
// given density) plus the irregular-application patterns that motivate
// them (mesh halo exchange, sparse mat-vec).
//
// COM(i,j) = m > 0 means processor Pi must send a message of m bytes
// to Pj; COM(i,j) = 0 means no message (paper §2). Row i is Pi's
// sending vector, column i its receiving vector.
package comm

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Matrix is the n x n communication matrix COM. The zero value is not
// usable; construct with New or the generator functions.
type Matrix struct {
	n    int
	data []int64 // row-major n*n; data[i*n+j] = bytes Pi sends Pj
}

// New returns an n x n all-zero communication matrix. n must be
// positive.
func New(n int) (*Matrix, error) {
	if n <= 0 {
		return nil, fmt.Errorf("comm: matrix size %d must be positive", n)
	}
	return &Matrix{n: n, data: make([]int64, n*n)}, nil
}

// MustNew is New for known-good sizes; it panics on error.
func MustNew(n int) *Matrix {
	m, err := New(n)
	if err != nil {
		panic(err)
	}
	return m
}

// N returns the number of processors.
func (m *Matrix) N() int { return m.n }

// At returns COM(i, j), the number of bytes Pi sends to Pj.
func (m *Matrix) At(i, j int) int64 { return m.data[i*m.n+j] }

// Set assigns COM(i, j) = bytes. Negative byte counts panic: message
// sizes come from generators and loaders that validate input, so a
// negative value is a programming error, not bad data.
func (m *Matrix) Set(i, j int, bytes int64) {
	if bytes < 0 {
		panic(fmt.Sprintf("comm: negative message size %d for COM(%d,%d)", bytes, i, j))
	}
	m.data[i*m.n+j] = bytes
}

// Add accumulates bytes onto COM(i, j); used by pattern builders that
// aggregate per-element traffic into per-processor messages.
func (m *Matrix) Add(i, j int, bytes int64) {
	if bytes < 0 {
		panic(fmt.Sprintf("comm: negative message size %d for COM(%d,%d)", bytes, i, j))
	}
	m.data[i*m.n+j] += bytes
}

// Zero clears every entry in place, keeping the storage. It is the
// reuse primitive behind the XxxInto pattern generators: a campaign
// worker holds one matrix per machine size and regenerates workloads
// into it instead of allocating a fresh n^2 buffer per cell.
func (m *Matrix) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := MustNew(m.n)
	copy(c.data, m.data)
	return c
}

// Equal reports whether the two matrices are identical.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.n != o.n {
		return false
	}
	for i, v := range m.data {
		if o.data[i] != v {
			return false
		}
	}
	return true
}

// SendDegree returns the number of distinct destinations of Pi (the
// number of nonzero entries in row i).
func (m *Matrix) SendDegree(i int) int {
	deg := 0
	for j := 0; j < m.n; j++ {
		if m.At(i, j) > 0 {
			deg++
		}
	}
	return deg
}

// RecvDegree returns the number of distinct sources of Pi (the number
// of nonzero entries in column i).
func (m *Matrix) RecvDegree(i int) int {
	deg := 0
	for j := 0; j < m.n; j++ {
		if m.At(j, i) > 0 {
			deg++
		}
	}
	return deg
}

// Density returns the paper's density d: the maximum over processors
// of messages sent or received. At least Density partial permutations
// are required to deliver all messages (paper §2.1, assumption 3).
func (m *Matrix) Density() int {
	d := 0
	for i := 0; i < m.n; i++ {
		if s := m.SendDegree(i); s > d {
			d = s
		}
		if r := m.RecvDegree(i); r > d {
			d = r
		}
	}
	return d
}

// MessageCount returns the total number of messages (nonzero entries).
func (m *Matrix) MessageCount() int {
	count := 0
	for _, v := range m.data {
		if v > 0 {
			count++
		}
	}
	return count
}

// TotalBytes returns the sum of all message sizes.
func (m *Matrix) TotalBytes() int64 {
	var total int64
	for _, v := range m.data {
		total += v
	}
	return total
}

// MaxMessageBytes returns the largest single message size, or 0 for an
// empty matrix.
func (m *Matrix) MaxMessageBytes() int64 {
	var mx int64
	for _, v := range m.data {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// Uniform reports whether every nonzero message has the same size, and
// that size (0 if there are no messages). The paper's experiments all
// use uniform sizes; the non-uniform schedulers relax this.
func (m *Matrix) Uniform() (bytes int64, uniform bool) {
	for _, v := range m.data {
		if v == 0 {
			continue
		}
		if bytes == 0 {
			bytes = v
		} else if v != bytes {
			return 0, false
		}
	}
	return bytes, true
}

// Symmetric reports whether COM(i,j) > 0 iff COM(j,i) > 0 for all
// pairs (the pattern, not necessarily the sizes, is symmetric).
// Symmetric patterns let LP and RS_NL pair every transfer into a
// bidirectional exchange.
func (m *Matrix) Symmetric() bool {
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			if (m.At(i, j) > 0) != (m.At(j, i) > 0) {
				return false
			}
		}
	}
	return true
}

// HasSelfMessages reports whether any diagonal entry is nonzero. Self
// messages need no network traffic; schedulers reject them so that
// every scheduled transfer maps to a real circuit.
func (m *Matrix) HasSelfMessages() bool {
	for i := 0; i < m.n; i++ {
		if m.At(i, i) > 0 {
			return true
		}
	}
	return false
}

// Message is one entry of the communication matrix.
type Message struct {
	Src   int
	Dst   int
	Bytes int64
}

// Messages returns all nonzero entries in row-major order.
func (m *Matrix) Messages() []Message {
	return m.AppendMessages(make([]Message, 0, m.MessageCount()))
}

// AppendMessages appends all nonzero entries in row-major order to buf
// and returns the extended slice — the allocation-free form of
// Messages for callers that reuse a scratch buffer.
func (m *Matrix) AppendMessages(buf []Message) []Message {
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if b := m.At(i, j); b > 0 {
				buf = append(buf, Message{Src: i, Dst: j, Bytes: b})
			}
		}
	}
	return buf
}

// SendVector returns row i as (destination, bytes) pairs — the send_i
// vector of the paper.
func (m *Matrix) SendVector(i int) []Message {
	var msgs []Message
	for j := 0; j < m.n; j++ {
		if b := m.At(i, j); b > 0 {
			msgs = append(msgs, Message{Src: i, Dst: j, Bytes: b})
		}
	}
	return msgs
}

// RecvVector returns column i as (source, bytes) pairs — the recv_i
// vector of the paper.
func (m *Matrix) RecvVector(i int) []Message {
	var msgs []Message
	for j := 0; j < m.n; j++ {
		if b := m.At(j, i); b > 0 {
			msgs = append(msgs, Message{Src: j, Dst: i, Bytes: b})
		}
	}
	return msgs
}

// Validate checks structural invariants: square storage, non-negative
// entries, no self messages. Generators always produce valid matrices;
// Validate guards externally loaded ones.
func (m *Matrix) Validate() error {
	if m.n <= 0 || len(m.data) != m.n*m.n {
		return fmt.Errorf("comm: malformed matrix storage (n=%d, len=%d)", m.n, len(m.data))
	}
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if m.At(i, j) < 0 {
				return fmt.Errorf("comm: negative entry COM(%d,%d) = %d", i, j, m.At(i, j))
			}
		}
	}
	if m.HasSelfMessages() {
		return fmt.Errorf("comm: matrix has self messages on the diagonal")
	}
	return nil
}

// String renders small matrices for debugging; large matrices render
// as a summary line.
func (m *Matrix) String() string {
	if m.n > 16 {
		return fmt.Sprintf("comm.Matrix(n=%d, messages=%d, density=%d, bytes=%d)",
			m.n, m.MessageCount(), m.Density(), m.TotalBytes())
	}
	var b strings.Builder
	fmt.Fprintf(&b, "comm.Matrix(n=%d)\n", m.n)
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteTo serializes the matrix in a simple line-oriented text format:
// a header "n <size>" followed by one "i j bytes" line per message.
func (m *Matrix) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	n, err := fmt.Fprintf(bw, "n %d\n", m.n)
	written += int64(n)
	if err != nil {
		return written, err
	}
	for _, msg := range m.Messages() {
		n, err := fmt.Fprintf(bw, "%d %d %d\n", msg.Src, msg.Dst, msg.Bytes)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// MaxReadNodes bounds the matrix size Read accepts. The matrix is
// dense (n^2 entries), so an unbounded header would let a one-line
// input demand petabytes; 4096 nodes (128 MB) is far beyond any
// machine this repository models.
const MaxReadNodes = 4096

// Read parses the format written by WriteTo.
func Read(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("comm: empty input")
	}
	var n int
	if _, err := fmt.Sscanf(sc.Text(), "n %d", &n); err != nil {
		return nil, fmt.Errorf("comm: bad header %q: %v", sc.Text(), err)
	}
	if n > MaxReadNodes {
		return nil, fmt.Errorf("comm: matrix size %d exceeds limit %d", n, MaxReadNodes)
	}
	m, err := New(n)
	if err != nil {
		return nil, err
	}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("comm: line %d: want 'src dst bytes', got %q", line, text)
		}
		src, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("comm: line %d: bad src: %v", line, err)
		}
		dst, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("comm: line %d: bad dst: %v", line, err)
		}
		bytes, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("comm: line %d: bad size: %v", line, err)
		}
		if src < 0 || src >= n || dst < 0 || dst >= n {
			return nil, fmt.Errorf("comm: line %d: node out of range [0,%d)", line, n)
		}
		if bytes < 0 {
			return nil, fmt.Errorf("comm: line %d: negative size %d", line, bytes)
		}
		m.Set(src, dst, bytes)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
