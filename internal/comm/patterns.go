package comm

import (
	"fmt"
	"math/rand"
)

// Every pattern generator in this file comes in two forms: Xxx
// allocates a fresh matrix, and XxxInto regenerates the pattern into a
// caller-supplied matrix (zeroing it first), so campaign workers can
// reuse one n x n buffer across an arbitrary number of cells instead
// of allocating O(n^2) per sample. The Into form is the primitive; the
// allocating form is a thin wrapper. Both consume the identical RNG
// stream, so reuse can never change a generated pattern.

// UniformRandom returns the send-side uniform workload: each of the n
// processors sends messages of the given size to d distinct random
// destinations (never itself). Send degrees are exactly d; receive
// degrees are approximately d (binomially distributed), matching the
// paper's "all nodes send and receive an approximately equal number of
// messages" assumption.
func UniformRandom(n, d int, bytes int64, rng *rand.Rand) (*Matrix, error) {
	return intoFresh(n, func(m *Matrix) error { return UniformRandomInto(m, d, bytes, rng) })
}

// UniformRandomInto is UniformRandom regenerating into m (m.N()
// processors). Destinations are drawn by a sparse partial
// Fisher-Yates shuffle over the virtual candidate array [0,n-1)\{i}:
// only the d displaced positions are materialized (in a small map), so
// the cost is O(d) per node instead of the O(n) candidate-slice
// shuffle the original implementation paid. The draw consumes exactly
// d rng.Intn calls per node, a different stream consumption than the
// historical full shuffle — output for a given seed changed once when
// this landed and is pinned by TestUniformRandomPinned.
func UniformRandomInto(m *Matrix, d int, bytes int64, rng *rand.Rand) error {
	n := m.N()
	if err := checkPatternArgs(n, d, bytes); err != nil {
		return err
	}
	m.Zero()
	// disp holds the displaced entries of the virtual candidate array:
	// position p represents candidate p unless disp says otherwise.
	disp := make(map[int]int, 2*d)
	for i := 0; i < n; i++ {
		for t := 0; t < d; t++ {
			j := t + rng.Intn(n-1-t)
			vj, ok := disp[j]
			if !ok {
				vj = j
			}
			vt, ok := disp[t]
			if !ok {
				vt = t
			}
			disp[j] = vt
			disp[t] = vj
			// Candidate c stands for destination c, skipping i.
			dst := vj
			if dst >= i {
				dst++
			}
			m.Set(i, dst, bytes)
		}
		clear(disp)
	}
	return nil
}

// DRegular returns a pattern where every processor sends exactly d and
// receives exactly d messages of the given size: the superposition of
// d pairwise edge-disjoint fixed-point-free random permutations. This
// is the workload the paper's experiments use (assumption 2: every
// processor sends and receives d messages; "each node is sending d
// messages to random destinations").
//
// Each round draws a uniform random permutation and repairs conflicts
// (fixed points and edges already used by earlier rounds) with
// targeted swaps: a conflicted position is swapped with a partner
// chosen so both positions become conflict-free. If a round cannot be
// repaired within its budget it is redrawn; if the pattern is too
// dense for rejection to converge, the remaining rounds fall back to
// relabeled-circulant shifts, which are always feasible.
func DRegular(n, d int, bytes int64, rng *rand.Rand) (*Matrix, error) {
	return intoFresh(n, func(m *Matrix) error { return DRegularInto(m, d, bytes, rng) })
}

// DRegularInto is DRegular regenerating into m. It consumes the
// identical RNG stream as DRegular always has, so reused-matrix
// campaigns reproduce historical outputs bit for bit.
func DRegularInto(m *Matrix, d int, bytes int64, rng *rand.Rand) error {
	n := m.N()
	if err := checkPatternArgs(n, d, bytes); err != nil {
		return err
	}
	m.Zero()
	perm := make([]int, n)
	round := 0
nextRound:
	for attempt := 0; round < d && attempt < 20*d; attempt++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(n, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		bad := func(i int) bool { return perm[i] == i || m.At(i, perm[i]) > 0 }
		for i := 0; i < n; i++ {
			if !bad(i) {
				continue
			}
			fixed := false
			for try := 0; try < 4*n; try++ {
				j := rng.Intn(n)
				if j == i {
					continue
				}
				perm[i], perm[j] = perm[j], perm[i]
				if !bad(i) && !bad(j) {
					fixed = true
					break
				}
				perm[i], perm[j] = perm[j], perm[i]
			}
			if !fixed {
				continue nextRound // redraw this round
			}
		}
		for i := 0; i < n; i++ {
			m.Set(i, perm[i], bytes)
		}
		round++
	}
	if round == d {
		return nil
	}
	// Fallback for densities where rejection stalls: rebuild from
	// scratch as a randomly relabeled circulant — σ(x) sends to
	// σ((x+k) mod n) for k = 1..d — which is d-regular, fixed-point
	// free, and duplicate free for every d < n.
	m.Zero()
	sigma := rng.Perm(n)
	for k := 1; k <= d; k++ {
		for x := 0; x < n; x++ {
			m.Set(sigma[x], sigma[(x+k)%n], bytes)
		}
	}
	return nil
}

// HotSpot returns a skewed pattern: each processor sends d messages,
// and with probability hotProb each message targets one of the first
// hotCount processors. It exercises the node-contention behaviour that
// AC suffers from and the randomized schedulers are designed to avoid.
func HotSpot(n, d int, bytes int64, hotCount int, hotProb float64, rng *rand.Rand) (*Matrix, error) {
	return intoFresh(n, func(m *Matrix) error { return HotSpotInto(m, d, bytes, hotCount, hotProb, rng) })
}

// HotSpotInto is HotSpot regenerating into m.
func HotSpotInto(m *Matrix, d int, bytes int64, hotCount int, hotProb float64, rng *rand.Rand) error {
	n := m.N()
	if err := checkPatternArgs(n, d, bytes); err != nil {
		return err
	}
	if hotCount <= 0 || hotCount > n {
		return fmt.Errorf("comm: hotCount %d out of range (0,%d]", hotCount, n)
	}
	if hotProb < 0 || hotProb > 1 {
		return fmt.Errorf("comm: hotProb %v out of [0,1]", hotProb)
	}
	m.Zero()
	for i := 0; i < n; i++ {
		for placed := 0; placed < d; {
			var dst int
			if rng.Float64() < hotProb {
				dst = rng.Intn(hotCount)
			} else {
				dst = rng.Intn(n)
			}
			if dst == i || m.At(i, dst) > 0 {
				continue
			}
			m.Set(i, dst, bytes)
			placed++
		}
	}
	return nil
}

// BitComplement returns the classic bit-complement permutation on a
// power-of-two machine: i sends to ^i & (n-1). It is one of the
// link-contention-free permutations the paper cites (§1, referencing
// hypercube algorithm texts). Density 1.
func BitComplement(n int, bytes int64) (*Matrix, error) {
	return intoFresh(n, func(m *Matrix) error { return BitComplementInto(m, bytes) })
}

// BitComplementInto is BitComplement regenerating into m.
func BitComplementInto(m *Matrix, bytes int64) error {
	n := m.N()
	if err := checkPatternArgs(n, 1, bytes); err != nil {
		return err
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("comm: BitComplement needs power-of-two n, got %d", n)
	}
	m.Zero()
	for i := 0; i < n; i++ {
		m.Set(i, ^i&(n-1), bytes)
	}
	return nil
}

// Shift returns the cyclic-shift permutation i -> (i+k) mod n.
// Density 1 for k not a multiple of n.
func Shift(n, k int, bytes int64) (*Matrix, error) {
	return intoFresh(n, func(m *Matrix) error { return ShiftInto(m, k, bytes) })
}

// ShiftInto is Shift regenerating into m.
func ShiftInto(m *Matrix, k int, bytes int64) error {
	n := m.N()
	if err := checkPatternArgs(n, 1, bytes); err != nil {
		return err
	}
	k %= n
	if k < 0 {
		k += n
	}
	if k == 0 {
		return fmt.Errorf("comm: Shift by 0 produces self messages")
	}
	m.Zero()
	for i := 0; i < n; i++ {
		m.Set(i, (i+k)%n, bytes)
	}
	return nil
}

// AllToAll returns the complete exchange: every processor sends to
// every other processor. Density n-1; the worst case for every
// scheduler and the pattern LP was originally designed for.
func AllToAll(n int, bytes int64) (*Matrix, error) {
	return intoFresh(n, func(m *Matrix) error { return AllToAllInto(m, bytes) })
}

// AllToAllInto is AllToAll regenerating into m.
func AllToAllInto(m *Matrix, bytes int64) error {
	n := m.N()
	if err := checkPatternArgs(n, n-1, bytes); err != nil {
		return err
	}
	m.Zero()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, bytes)
			}
		}
	}
	return nil
}

// MixedSizes returns a d-regular pattern with non-uniform message
// sizes: each message's size is an independent power of two drawn
// log-uniformly from [minBytes, maxBytes]. This is the workload class
// the paper defers to [15] ("non-uniform message size problems") and
// the one the size-aware schedulers target.
func MixedSizes(n, d int, minBytes, maxBytes int64, rng *rand.Rand) (*Matrix, error) {
	return intoFresh(n, func(m *Matrix) error { return MixedSizesInto(m, d, minBytes, maxBytes, rng) })
}

// MixedSizesInto is MixedSizes regenerating into m.
func MixedSizesInto(m *Matrix, d int, minBytes, maxBytes int64, rng *rand.Rand) error {
	if minBytes <= 0 || maxBytes < minBytes {
		return fmt.Errorf("comm: bad size range [%d, %d]", minBytes, maxBytes)
	}
	if err := DRegularInto(m, d, minBytes, rng); err != nil {
		return err
	}
	steps := 0
	for b := minBytes; b*2 <= maxBytes; b *= 2 {
		steps++
	}
	n := m.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if m.At(i, j) > 0 {
				m.Set(i, j, minBytes<<uint(rng.Intn(steps+1)))
			}
		}
	}
	return nil
}

// HaloFromPartition aggregates an element-level dependency graph into
// a processor-level communication matrix: for every directed element
// dependency u -> v with part[u] != part[v], COM(part[u], part[v])
// grows by bytesPerElem. This is how PARTI-style runtime systems (the
// paper's motivating use case, §1) derive COM from the data that local
// computations require. adj[u] lists the elements u's value is needed
// by. part values must lie in [0, n).
func HaloFromPartition(n int, part []int, adj [][]int, bytesPerElem int64) (*Matrix, error) {
	return intoFresh(n, func(m *Matrix) error { return HaloFromPartitionInto(m, part, adj, bytesPerElem) })
}

// HaloFromPartitionInto is HaloFromPartition regenerating into m.
func HaloFromPartitionInto(m *Matrix, part []int, adj [][]int, bytesPerElem int64) error {
	n := m.N()
	if bytesPerElem <= 0 {
		return fmt.Errorf("comm: bytesPerElem %d must be positive", bytesPerElem)
	}
	for u, owner := range part {
		if owner < 0 || owner >= n {
			return fmt.Errorf("comm: element %d assigned to processor %d outside [0,%d)", u, owner, n)
		}
	}
	m.Zero()
	for u, owner := range part {
		for _, v := range adj[u] {
			if v < 0 || v >= len(part) {
				return fmt.Errorf("comm: element %d has neighbor %d outside [0,%d)", u, v, len(part))
			}
			if other := part[v]; other != owner {
				m.Add(owner, other, bytesPerElem)
			}
		}
	}
	return nil
}

// intoFresh allocates an n x n matrix and fills it with gen, the shared
// shape of every allocating generator wrapper.
func intoFresh(n int, gen func(*Matrix) error) (*Matrix, error) {
	if n <= 0 {
		return nil, fmt.Errorf("comm: processor count %d must be positive", n)
	}
	m, err := New(n)
	if err != nil {
		return nil, err
	}
	if err := gen(m); err != nil {
		return nil, err
	}
	return m, nil
}

func checkPatternArgs(n, d int, bytes int64) error {
	if n <= 1 {
		return fmt.Errorf("comm: need at least 2 processors, got %d", n)
	}
	if d <= 0 || d >= n {
		return fmt.Errorf("comm: density %d out of range (0,%d)", d, n)
	}
	if bytes <= 0 {
		return fmt.Errorf("comm: message size %d must be positive", bytes)
	}
	return nil
}
