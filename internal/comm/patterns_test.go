package comm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniformRandomProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []int{1, 4, 8, 32, 48, 63} {
		m, err := UniformRandom(64, d, 256, rng)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		for i := 0; i < 64; i++ {
			if got := m.SendDegree(i); got != d {
				t.Fatalf("d=%d: node %d send degree %d", d, i, got)
			}
		}
		if b, u := m.Uniform(); !u || b != 256 {
			t.Fatalf("d=%d: not uniform 256", d)
		}
	}
}

func TestUniformRandomArgValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		n, d int
		b    int64
	}{
		{1, 1, 10}, {64, 0, 10}, {64, 64, 10}, {64, 4, 0}, {64, 4, -1},
	}
	for _, c := range cases {
		if _, err := UniformRandom(c.n, c.d, c.b, rng); err == nil {
			t.Errorf("UniformRandom(%d,%d,%d) should fail", c.n, c.d, c.b)
		}
	}
}

func TestDRegularExactDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, d := range []int{1, 4, 8, 16, 32, 48} {
		m, err := DRegular(64, d, 1024, rng)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		for i := 0; i < 64; i++ {
			if got := m.SendDegree(i); got != d {
				t.Fatalf("d=%d: node %d send degree %d, want exactly d", d, i, got)
			}
			if got := m.RecvDegree(i); got != d {
				t.Fatalf("d=%d: node %d recv degree %d, want exactly d", d, i, got)
			}
		}
		if m.HasSelfMessages() {
			t.Fatalf("d=%d: self messages present", d)
		}
		if got := m.Density(); got != d {
			t.Fatalf("d=%d: density %d", d, got)
		}
	}
}

// Property: DRegular is d-regular for random small (n, d).
func TestDRegularProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(nRaw, dRaw uint8) bool {
		n := 4 + int(nRaw)%29 // 4..32
		d := 1 + int(dRaw)%(n-2)
		m, err := DRegular(n, d, 64, rng)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if m.SendDegree(i) != d || m.RecvDegree(i) != d {
				return false
			}
		}
		return !m.HasSelfMessages()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestHotSpotConcentratesTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, err := HotSpot(64, 8, 128, 4, 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	hot, cold := 0, 0
	for _, msg := range m.Messages() {
		if msg.Dst < 4 {
			hot++
		} else {
			cold++
		}
	}
	// 80% of 512 messages target 4 of 64 nodes; even after dedup the
	// hot in-degree must far exceed uniform expectation (512*4/64 = 32).
	if hot < 100 {
		t.Errorf("hot destinations received only %d of %d messages", hot, hot+cold)
	}
	for i := 0; i < 64; i++ {
		if got := m.SendDegree(i); got != 8 {
			t.Fatalf("node %d send degree %d", i, got)
		}
	}
}

func TestHotSpotArgValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := HotSpot(64, 8, 128, 0, 0.5, rng); err == nil {
		t.Error("hotCount=0 should fail")
	}
	if _, err := HotSpot(64, 8, 128, 65, 0.5, rng); err == nil {
		t.Error("hotCount>n should fail")
	}
	if _, err := HotSpot(64, 8, 128, 4, 1.5, rng); err == nil {
		t.Error("hotProb>1 should fail")
	}
}

func TestBitComplement(t *testing.T) {
	m, err := BitComplement(64, 512)
	if err != nil {
		t.Fatal(err)
	}
	if m.Density() != 1 {
		t.Errorf("density %d, want 1", m.Density())
	}
	if m.At(0, 63) != 512 || m.At(63, 0) != 512 {
		t.Error("complement edges missing")
	}
	if !m.Symmetric() {
		t.Error("bit complement should be symmetric")
	}
	if _, err := BitComplement(48, 512); err == nil {
		t.Error("non power of two should fail")
	}
}

func TestShift(t *testing.T) {
	m, err := Shift(8, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 3) != 100 || m.At(7, 2) != 100 {
		t.Error("shift edges wrong")
	}
	if _, err := Shift(8, 0, 100); err == nil {
		t.Error("shift by 0 should fail")
	}
	if _, err := Shift(8, 8, 100); err == nil {
		t.Error("shift by n should fail")
	}
	// Negative shifts normalize.
	m, err = Shift(8, -1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 7) != 100 {
		t.Error("negative shift wrong")
	}
}

func TestAllToAll(t *testing.T) {
	m, err := AllToAll(16, 64)
	if err != nil {
		t.Fatal(err)
	}
	if m.Density() != 15 {
		t.Errorf("density %d, want 15", m.Density())
	}
	if m.MessageCount() != 16*15 {
		t.Errorf("message count %d", m.MessageCount())
	}
}

func TestHaloFromPartition(t *testing.T) {
	// 4 elements in a path 0-1-2-3, split across 2 processors at 1|2.
	adj := [][]int{{1}, {0, 2}, {1, 3}, {2}}
	part := []int{0, 0, 1, 1}
	m, err := HaloFromPartition(2, part, adj, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Only the 1-2 edge crosses: element 1 (proc 0) is needed by 2, and
	// element 2 (proc 1) is needed by 1.
	if m.At(0, 1) != 8 || m.At(1, 0) != 8 {
		t.Errorf("halo matrix wrong: %v", m)
	}
}

func TestHaloFromPartitionValidation(t *testing.T) {
	adj := [][]int{{1}, {0}}
	if _, err := HaloFromPartition(0, []int{0, 0}, adj, 8); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := HaloFromPartition(2, []int{0, 5}, adj, 8); err == nil {
		t.Error("partition out of range should fail")
	}
	if _, err := HaloFromPartition(2, []int{0, 0}, [][]int{{9}, {}}, 8); err == nil {
		t.Error("neighbor out of range should fail")
	}
	if _, err := HaloFromPartition(2, []int{0, 0}, adj, 0); err == nil {
		t.Error("zero bytesPerElem should fail")
	}
}

func TestMixedSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	m, err := MixedSizes(64, 8, 64, 64*1024, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if m.SendDegree(i) != 8 || m.RecvDegree(i) != 8 {
			t.Fatalf("node %d degrees %d/%d", i, m.SendDegree(i), m.RecvDegree(i))
		}
	}
	sizes := map[int64]bool{}
	for _, msg := range m.Messages() {
		if msg.Bytes < 64 || msg.Bytes > 64*1024 {
			t.Fatalf("size %d out of range", msg.Bytes)
		}
		if msg.Bytes&(msg.Bytes-1) != 0 {
			t.Fatalf("size %d not a power of two", msg.Bytes)
		}
		sizes[msg.Bytes] = true
	}
	if len(sizes) < 5 {
		t.Errorf("only %d distinct sizes drawn", len(sizes))
	}
}

func TestMixedSizesValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	if _, err := MixedSizes(64, 8, 0, 1024, rng); err == nil {
		t.Error("zero min accepted")
	}
	if _, err := MixedSizes(64, 8, 2048, 1024, rng); err == nil {
		t.Error("inverted range accepted")
	}
	// Degenerate single-size range works.
	m, err := MixedSizes(16, 2, 512, 512, rng)
	if err != nil {
		t.Fatal(err)
	}
	if b, u := m.Uniform(); !u || b != 512 {
		t.Errorf("single-size range not uniform: %d %v", b, u)
	}
}

// TestUniformRandomPinned pins the exact output of the O(d) partial
// Fisher-Yates draw. UniformRandom's stream consumption changed when
// the O(n)-shuffle implementation was replaced (the campaign engine
// keys the uniform workload through comm.DRegular, so campaign goldens
// were unaffected); this pin makes any future drift in the draw — a
// changed swap order, an extra rng call — a loud test failure instead
// of a silent workload change.
func TestUniformRandomPinned(t *testing.T) {
	m, err := UniformRandom(8, 3, 64, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	const want = "73f7b7af5234c22e8692fab9507610c087f1f209d95f7d4b82799e3c670ed5a2"
	if got := m.ContentHash(); got != want {
		t.Errorf("UniformRandom(8,3,64,seed 42) content hash %s, want %s", got, want)
	}
}

func TestMatrixZero(t *testing.T) {
	m := MustNew(4)
	m.Set(0, 1, 10)
	m.Set(3, 2, 20)
	m.Zero()
	if m.MessageCount() != 0 || m.TotalBytes() != 0 {
		t.Errorf("Zero left %d messages, %d bytes", m.MessageCount(), m.TotalBytes())
	}
	if m.N() != 4 {
		t.Errorf("Zero changed n to %d", m.N())
	}
}

func TestPatternsDeterministicGivenSeed(t *testing.T) {
	a, err := UniformRandom(64, 8, 256, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := UniformRandom(64, 8, 256, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("same seed produced different patterns")
	}
}
