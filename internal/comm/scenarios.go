package comm

import (
	"fmt"
	"math/rand"
	"sort"
)

// This file holds the scenario generators behind the non-classic
// workload specs (see internal/workload): permutation traffic,
// matrix-transpose exchange, 3D stencil halos, and sparse
// matrix-vector gather patterns. Like patterns.go, every generator has
// an allocating form and an Into form that regenerates into a reused
// matrix.

// Permutation returns a random fixed-point-free permutation pattern:
// every processor sends one message and receives one message. Density
// 1 — the lightest workload a scheduler can face, and the base case of
// the paper's "d partial permutations" decomposition argument.
func Permutation(n int, bytes int64, rng *rand.Rand) (*Matrix, error) {
	return intoFresh(n, func(m *Matrix) error { return PermutationInto(m, bytes, rng) })
}

// PermutationInto is Permutation regenerating into m. A uniform random
// permutation is drawn and fixed points are repaired by swapping with
// the successor position, which never reintroduces one.
func PermutationInto(m *Matrix, bytes int64, rng *rand.Rand) error {
	n := m.N()
	if err := checkPatternArgs(n, 1, bytes); err != nil {
		return err
	}
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		if perm[i] != i {
			continue
		}
		j := (i + 1) % n
		// perm[j] != i always: i is already taken by position i.
		perm[i], perm[j] = perm[j], perm[i]
	}
	m.Zero()
	for i, dst := range perm {
		m.Set(i, dst, bytes)
	}
	return nil
}

// Transpose returns the matrix-transpose exchange on a k x k processor
// grid (n = k^2): processor (r, c) sends to (c, r), diagonal
// processors stay silent. The canonical "corner turn" phase of 2D FFTs
// and out-of-core transposes; density 1, deterministic.
func Transpose(n int, bytes int64) (*Matrix, error) {
	return intoFresh(n, func(m *Matrix) error { return TransposeInto(m, bytes) })
}

// TransposeInto is Transpose regenerating into m.
func TransposeInto(m *Matrix, bytes int64) error {
	n := m.N()
	if err := checkPatternArgs(n, 1, bytes); err != nil {
		return err
	}
	k := isqrt(n)
	if k*k != n || k < 2 {
		return fmt.Errorf("comm: Transpose needs a square processor count >= 4, got %d", n)
	}
	m.Zero()
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			if r != c {
				m.Set(r*k+c, c*k+r, bytes)
			}
		}
	}
	return nil
}

// Stencil3D returns the processor-level halo exchange of a 7-point
// stencil sweep over an x*y*z element grid with periodic boundaries:
// elements are strip-partitioned across the n processors in id order,
// every element needs its six face neighbors, and each cross-boundary
// dependency adds bytesPerElem to the owning pair. The 3D analog of
// the irregular-mesh halo workload; deterministic.
func Stencil3D(n, x, y, z int, bytesPerElem int64) (*Matrix, error) {
	return intoFresh(n, func(m *Matrix) error { return Stencil3DInto(m, x, y, z, bytesPerElem) })
}

// Stencil3DInto is Stencil3D regenerating into m.
func Stencil3DInto(m *Matrix, x, y, z int, bytesPerElem int64) error {
	n := m.N()
	if n < 2 {
		return fmt.Errorf("comm: need at least 2 processors, got %d", n)
	}
	if x < 1 || y < 1 || z < 1 {
		return fmt.Errorf("comm: stencil grid %dx%dx%d needs positive extents", x, y, z)
	}
	total := x * y * z
	if total < n {
		return fmt.Errorf("comm: stencil grid has %d elements for %d processors; need at least one per processor", total, n)
	}
	if bytesPerElem <= 0 {
		return fmt.Errorf("comm: bytesPerElem %d must be positive", bytesPerElem)
	}
	m.Zero()
	id := func(ix, iy, iz int) int { return (ix*y+iy)*z + iz }
	owner := func(u int) int { return u * n / total }
	for ix := 0; ix < x; ix++ {
		for iy := 0; iy < y; iy++ {
			for iz := 0; iz < z; iz++ {
				u := id(ix, iy, iz)
				p := owner(u)
				neighbors := [6]int{
					id((ix+1)%x, iy, iz), id((ix+x-1)%x, iy, iz),
					id(ix, (iy+1)%y, iz), id(ix, (iy+y-1)%y, iz),
					id(ix, iy, (iz+1)%z), id(ix, iy, (iz+z-1)%z),
				}
				for _, v := range neighbors {
					// u's value is needed by v's sweep: owner(u) sends to
					// owner(v), exactly the HaloFromPartition convention.
					if q := owner(v); q != p {
						m.Add(p, q, bytesPerElem)
					}
				}
			}
		}
	}
	return nil
}

// SpMVPowerLaw returns the gather exchange of a distributed sparse
// matrix-vector multiply with power-law column popularity (the
// degree-skewed structure of web and social matrices): 32*n rows are
// block-distributed, each row references nnzPerRow columns drawn with
// probability proportional to 1/(j+1), and every off-block vector
// entry a processor needs is fetched once, adding bytesPerEntry from
// its owner. Hot columns make hot processors — the skewed receive-side
// load the paper's randomized schedulers are built for.
func SpMVPowerLaw(n, nnzPerRow int, bytesPerEntry int64, rng *rand.Rand) (*Matrix, error) {
	return intoFresh(n, func(m *Matrix) error { return SpMVPowerLawInto(m, nnzPerRow, bytesPerEntry, rng) })
}

// SpMVPowerLawInto is SpMVPowerLaw regenerating into m.
func SpMVPowerLawInto(m *Matrix, nnzPerRow int, bytesPerEntry int64, rng *rand.Rand) error {
	n := m.N()
	if n < 2 {
		return fmt.Errorf("comm: need at least 2 processors, got %d", n)
	}
	if nnzPerRow < 1 {
		return fmt.Errorf("comm: nnzPerRow %d must be positive", nnzPerRow)
	}
	if bytesPerEntry <= 0 {
		return fmt.Errorf("comm: bytesPerEntry %d must be positive", bytesPerEntry)
	}
	rows := 32 * n
	// Cumulative 1/(j+1) weights; a binary search per draw keeps the
	// whole build O(rows * nnz * log rows).
	cum := make([]float64, rows)
	acc := 0.0
	for j := range cum {
		acc += 1.0 / float64(j+1)
		cum[j] = acc
	}
	owner := func(row int) int { return row * n / rows }
	// Presize for the common sparse case, but never let the hint alone
	// demand unbounded memory for large (n, nnz) combinations.
	hint := rows * nnzPerRow / 4
	if hint > 1<<20 {
		hint = 1 << 20
	}
	seen := make(map[[2]int]bool, hint)
	m.Zero()
	for row := 0; row < rows; row++ {
		p := owner(row)
		for k := 0; k < nnzPerRow; k++ {
			col := sort.SearchFloat64s(cum, rng.Float64()*acc)
			if col >= rows {
				col = rows - 1
			}
			q := owner(col)
			if q == p {
				continue
			}
			key := [2]int{p, col}
			if seen[key] {
				continue // vector entry fetched once per processor
			}
			seen[key] = true
			m.Add(q, p, bytesPerEntry)
		}
	}
	return nil
}

// isqrt returns the integer square root of n.
func isqrt(n int) int {
	if n < 0 {
		return 0
	}
	k := 0
	for (k+1)*(k+1) <= n {
		k++
	}
	return k
}
