package quality

import (
	"math/bits"
	"sort"
	"strconv"

	"unsched/internal/sched"
)

// BinKey maps a topology kind and a feature vector to the model's
// bin identifier. Bands are logarithmic — exact node and density
// values inside a band behave alike in the paper's sweeps — and the
// size-CV axis has three bands: uniform (< 0.25), mixed (< 1.0), and
// heavy-tailed (≥ 1.0), the regime where power-law workloads live.
// The string form doubles as the committed fallback table's literal
// key, so a calibration run can be pasted straight into Go source.
func BinKey(topoKind string, f sched.Features) string {
	// Built by hand rather than fmt.Sprintf: BinKey sits on the
	// service's auto-resolution path in front of every request, where
	// Pick is budgeted at well under 1% of the cheapest scheduling run.
	buf := make([]byte, 0, len(topoKind)+16)
	buf = append(buf, topoKind...)
	buf = append(buf, "/n"...)
	buf = strconv.AppendInt(buf, int64(nBand(f.Nodes)), 10)
	buf = append(buf, "/d"...)
	buf = strconv.AppendInt(buf, int64(dBand(f.Density)), 10)
	buf = append(buf, "/cv"...)
	buf = strconv.AppendInt(buf, int64(cvBand(f.SizeCV)), 10)
	return string(buf)
}

// nBand buckets node counts by bit length: 2 → 1, 3–4 → 2, 5–8 → 3,
// ..., so every power of two anchors its own band.
func nBand(n int) int {
	if n < 2 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// dBand buckets densities by bit length: 1 → 1, 2–3 → 2, 4–7 → 3, ...
func dBand(d int) int {
	if d < 1 {
		return 0
	}
	return bits.Len(uint(d))
}

func cvBand(cv float64) int {
	switch {
	case cv < 0.25:
		return 0
	case cv < 1.0:
		return 1
	default:
		return 2
	}
}

// Model answers "which algorithm should schedule this matrix":
// calibration records grouped into feature bins, each bin holding
// the algorithms that were measured there ranked by mean total cost
// (communication + scheduling), ascending, ties broken on the tag.
// A Model is immutable once built and safe for concurrent use.
type Model struct {
	bins    map[string][]string
	records int
}

// NewModel builds a model from loaded records. Within a bin, an
// algorithm measured by several records (different workloads or
// sizes landing in one bin) is scored by its sample-weighted mean
// total cost, so a 200-sample cell outweighs a 2-sample one.
func NewModel(recs []Record) *Model {
	type agg struct {
		cost    float64
		samples float64
	}
	group := make(map[string]map[string]*agg)
	for _, r := range recs {
		key := BinKey(TopoKind(r.Topology), sched.Features{Nodes: r.Nodes, Density: r.Density, SizeCV: r.SizeCV})
		byAlg := group[key]
		if byAlg == nil {
			byAlg = make(map[string]*agg)
			group[key] = byAlg
		}
		a := byAlg[r.Algorithm]
		if a == nil {
			a = &agg{}
			byAlg[r.Algorithm] = a
		}
		w := float64(r.Samples)
		a.cost += r.TotalCostUS() * w
		a.samples += w
	}
	bins := make(map[string][]string, len(group))
	for key, byAlg := range group {
		type scored struct {
			tag  string
			cost float64
		}
		ranked := make([]scored, 0, len(byAlg))
		for tag, a := range byAlg {
			ranked = append(ranked, scored{tag: tag, cost: a.cost / a.samples})
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].cost != ranked[j].cost {
				return ranked[i].cost < ranked[j].cost
			}
			return ranked[i].tag < ranked[j].tag
		})
		tags := make([]string, len(ranked))
		for i, s := range ranked {
			tags[i] = s.tag
		}
		bins[key] = tags
	}
	return &Model{bins: bins, records: len(recs)}
}

// LoadModel loads the store at path and builds its model. An empty
// or missing store yields a fallback-only model, not an error.
func LoadModel(path string) (*Model, error) {
	recs, err := Load(path)
	if err != nil {
		return nil, err
	}
	return NewModel(recs), nil
}

// Records returns how many calibration records back the model.
func (m *Model) Records() int { return m.records }

// Bins returns how many feature bins hold calibration data.
func (m *Model) Bins() int { return len(m.bins) }

// BinRankings returns a copy of every calibrated bin's ranked tags,
// keyed by BinKey — the literal form the committed fallback table is
// generated from (the experiments CLI's autofallback target prints it
// as Go source).
func (m *Model) BinRankings() map[string][]string {
	if m == nil {
		return nil
	}
	out := make(map[string][]string, len(m.bins))
	for k, v := range m.bins {
		out[k] = append([]string(nil), v...)
	}
	return out
}

// Pick returns the ranked algorithm tags for a matrix with features
// f on the named topology: the calibrated bin if one exists, the
// committed fallback table's bin otherwise, and the fixed default
// ranking as the last resort. The result is never empty and never
// contains an algorithm the matrix cannot run (LP needs a
// power-of-two node count). Pick on a nil model uses the fallback
// chain alone. The first element is what algorithm "auto" resolves
// to; the prefix is what auto_race races.
func (m *Model) Pick(topoName string, f sched.Features) []string {
	key := BinKey(TopoKind(topoName), f)
	var ranked []string
	if m != nil {
		ranked = m.bins[key]
	}
	if len(ranked) == 0 {
		ranked = fallbackTable[key]
	}
	if len(ranked) == 0 {
		ranked = defaultRanking
	}
	powTwo := f.Nodes > 0 && f.Nodes&(f.Nodes-1) == 0
	out := make([]string, 0, len(ranked))
	for _, tag := range ranked {
		if tag == "LP" && !powTwo {
			continue
		}
		out = append(out, tag)
	}
	if len(out) == 0 {
		out = append(out, "RS_NL")
	}
	return out
}
