// Package quality turns campaign measurements into the calibration
// artifact behind algorithm "auto".
//
// The paper's evaluation (§6–§7) is a cost/quality trade-off study:
// which scheduling algorithm wins depends on the pattern's density,
// message-size variation, and the machine's topology, and the
// algorithms' scheduling costs span three orders of magnitude. This
// package makes that study a first-class, persistent artifact:
//
//   - A Record is the aggregated sched.Outcome of one (topology,
//     workload, algorithm) cell — simulated communication time,
//     modeled scheduling cost, and the features the cell was
//     measured at.
//   - A Store is a content-addressed, append-only record file using
//     the same framed, checksummed codec as the service's disk cache
//     (magic "USQR" instead of "USCR"). Campaign workers append to
//     it; corrupt tails are skipped on load, and the latest record
//     per key wins, so re-running a campaign refreshes its cells in
//     place.
//   - A Model loads the store, bins records by (node band, density
//     band, size-CV band, topology kind), and answers Pick with a
//     ranked algorithm list per bin — mean total cost ascending,
//     ties broken on the tag — falling back to a committed
//     calibration table (and finally a fixed default) when a bin has
//     no data.
//
// Everything here is deterministic: two servers sharing a store file
// build identical models and resolve "auto" to identical concrete
// tags, which is what lets the service substitute the chosen tag
// into its cache key without breaking cross-server bit-identity.
package quality

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// Record is one calibration artifact: the outcome of running one
// algorithm on one (topology, workload) cell, averaged over the
// campaign's samples. Its identity — the store key — is the content
// hash of the (Topology, Workload, Algorithm) triple, so appending
// the same cell again supersedes the old measurement.
type Record struct {
	// Topology is the canonical topology name ("hypercube-64",
	// "torus-8x8", ...).
	Topology string `json:"topology"`
	// Workload is the canonical workload spec ("uniform:8:4096",
	// "spmv:8:256", ...).
	Workload string `json:"workload"`
	// Algorithm is the canonical tag (AC, LP, RS_N, RS_NL, ...).
	Algorithm string `json:"algorithm"`
	// Nodes, Density, SizeCV are the measured sched.Features of the
	// cell's matrices (averaged over samples for the randomized
	// kinds).
	Nodes   int     `json:"nodes"`
	Density int     `json:"density"`
	SizeCV  float64 `json:"size_cv"`
	// Phases is the mean phase count of the produced schedules.
	Phases float64 `json:"phases"`
	// EstCommUS is the mean simulated communication time (µs).
	EstCommUS float64 `json:"est_comm_us"`
	// SchedCostNS is the mean modeled scheduling cost (ns).
	SchedCostNS int64 `json:"sched_cost_ns"`
	// Samples is how many samples the means aggregate.
	Samples int `json:"samples"`
}

// Key returns the record's content-addressed store key: the hex
// SHA-256 of its (topology, workload, algorithm) identity under a
// versioned domain tag.
func (r Record) Key() string {
	h := sha256.New()
	fmt.Fprintf(h, "quality/v1\x00%s\x00%s\x00%s", r.Topology, r.Workload, r.Algorithm)
	return hex.EncodeToString(h.Sum(nil))
}

// TotalCostUS is the record's single-number quality: mean simulated
// communication time plus mean modeled scheduling cost, in
// microseconds. The model ranks algorithms within a bin by this.
func (r Record) TotalCostUS() float64 {
	return r.EstCommUS + float64(r.SchedCostNS)/1000
}

// valid reports whether a decoded record is structurally usable.
func (r Record) valid() bool {
	return r.Topology != "" && r.Workload != "" && r.Algorithm != "" &&
		r.Nodes >= 2 && r.Samples >= 1 && r.EstCommUS >= 0 && r.SchedCostNS >= 0
}

// TopoKind reduces a canonical topology name to its family:
// "hypercube-64" → "hypercube", "torus-8x8" → "torus". Names without
// a size suffix are their own kind.
func TopoKind(name string) string {
	if i := strings.IndexByte(name, '-'); i >= 0 {
		return name[:i]
	}
	return name
}
