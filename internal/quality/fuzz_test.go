package quality

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzQualityRecord: DecodeRecord is total — arbitrary bytes must
// yield a record or an error, never a panic, and whatever decodes
// must re-encode to the identical frame (the codec is canonical).
func FuzzQualityRecord(f *testing.F) {
	r := Record{
		Topology: "hypercube-64", Workload: "uniform:8:4096", Algorithm: "RS_NL",
		Nodes: 64, Density: 8, Phases: 9, EstCommUS: 12345.5, SchedCostNS: 224000, Samples: 2,
	}
	value, _ := json.Marshal(r)
	frame, _ := EncodeRecord(r.Key(), value)
	f.Add(frame)
	two, _ := EncodeRecord(r.Key(), []byte("{}"))
	f.Add(append(append([]byte(nil), frame...), two...))
	f.Add([]byte("USQR"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		for in := b; ; {
			key, val, rest, err := DecodeRecord(in)
			if err != nil {
				break
			}
			re, err := EncodeRecord(key, val)
			if err != nil {
				t.Fatalf("decoded frame does not re-encode: %v", err)
			}
			if !bytes.Equal(re, in[:len(in)-len(rest)]) {
				t.Fatal("re-encoded frame differs from decoded bytes")
			}
			if len(rest) >= len(in) {
				t.Fatal("decode made no progress")
			}
			in = rest
		}
	})
}
