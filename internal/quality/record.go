package quality

// The store's on-disk codec: the same self-describing, checksummed
// frame the service's disk cache uses (internal/service/persist.go),
// under its own magic so a quality store can never be mistaken for a
// cache record or vice versa. Unlike the cache — one record per file
// — a quality store is ONE file of concatenated frames, appended
// under a lock, so DecodeRecord is streaming: it consumes one frame
// from the front of the buffer and returns the rest.
//
// Record layout (all integers big-endian):
//
//	offset size  field
//	0      4     magic "USQR"
//	4      1     format version (1)
//	5      1     key length K
//	6      4     value length V
//	10     K     key (the hex content hash of the record identity)
//	10+K   V     value (the JSON-encoded Record)
//	10+K+V 4     CRC-32C (Castagnoli) over bytes [0, 10+K+V)

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

const (
	recordVersion   = 1
	recordHeaderLen = 4 + 1 + 1 + 4
	// maxRecordValueBytes caps one frame's value on decode. Values
	// are small JSON documents; anything bigger is garbage by
	// definition and fails fast instead of being sliced around.
	maxRecordValueBytes = 1 << 20
)

var recordMagic = [4]byte{'U', 'S', 'Q', 'R'}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

var (
	errRecordTooShort = errors.New("quality: record truncated")
	errRecordMagic    = errors.New("quality: bad record magic")
	errRecordVersion  = errors.New("quality: unsupported record version")
	errRecordLength   = errors.New("quality: record length out of range")
	errRecordChecksum = errors.New("quality: record checksum mismatch")
	errRecordKey      = errors.New("quality: bad record key")
)

// EncodeRecord serializes one store frame. Keys are hex content
// hashes (64 bytes); anything that does not fit the 1-byte length is
// a programming error surfaced as an error.
func EncodeRecord(key string, value []byte) ([]byte, error) {
	if len(key) == 0 || len(key) > 255 {
		return nil, errRecordKey
	}
	if len(value) > maxRecordValueBytes {
		return nil, errRecordLength
	}
	buf := make([]byte, recordHeaderLen+len(key)+len(value)+4)
	copy(buf, recordMagic[:])
	buf[4] = recordVersion
	buf[5] = byte(len(key))
	binary.BigEndian.PutUint32(buf[6:10], uint32(len(value)))
	copy(buf[recordHeaderLen:], key)
	copy(buf[recordHeaderLen+len(key):], value)
	sum := crc32.Checksum(buf[:len(buf)-4], crcTable)
	binary.BigEndian.PutUint32(buf[len(buf)-4:], sum)
	return buf, nil
}

// DecodeRecord parses and verifies the first frame of b, returning
// the remainder for the caller's next call. It is total: arbitrary
// input yields an error, never a panic, and no length field is
// trusted before it is checked against the actual buffer (fuzzed by
// FuzzQualityRecord).
func DecodeRecord(b []byte) (key string, value []byte, rest []byte, err error) {
	if len(b) < recordHeaderLen+4 {
		return "", nil, nil, errRecordTooShort
	}
	if [4]byte(b[:4]) != recordMagic {
		return "", nil, nil, errRecordMagic
	}
	if b[4] != recordVersion {
		return "", nil, nil, errRecordVersion
	}
	klen := int(b[5])
	vlen := int(binary.BigEndian.Uint32(b[6:10]))
	if klen == 0 {
		return "", nil, nil, errRecordKey
	}
	if vlen > maxRecordValueBytes {
		return "", nil, nil, errRecordLength
	}
	total := recordHeaderLen + klen + vlen + 4
	if len(b) < total {
		return "", nil, nil, errRecordTooShort
	}
	frame := b[:total]
	body := frame[:total-4]
	if crc32.Checksum(body, crcTable) != binary.BigEndian.Uint32(frame[total-4:]) {
		return "", nil, nil, errRecordChecksum
	}
	key = string(frame[recordHeaderLen : recordHeaderLen+klen])
	value = frame[recordHeaderLen+klen : total-4]
	return key, value, b[total:], nil
}
