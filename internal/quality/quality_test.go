package quality

import (
	"os"
	"path/filepath"
	"testing"

	"unsched/internal/sched"
)

func rec(topo, work, alg string, nodes, density int, cv, comm float64, costNS int64) Record {
	return Record{
		Topology: topo, Workload: work, Algorithm: alg,
		Nodes: nodes, Density: density, SizeCV: cv,
		Phases: float64(density), EstCommUS: comm, SchedCostNS: costNS,
		Samples: 2,
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	r := rec("hypercube-64", "uniform:8:4096", "RS_NL", 64, 8, 0, 12345.5, 224000)
	frame, err := EncodeRecord(r.Key(), []byte(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	key, value, rest, err := DecodeRecord(frame)
	if err != nil {
		t.Fatal(err)
	}
	if key != r.Key() || string(value) != `{"x":1}` || len(rest) != 0 {
		t.Fatalf("round trip mismatch: key=%q value=%q rest=%d", key, value, len(rest))
	}

	// Every flipped byte must be rejected, never mis-decoded.
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0xff
		if k, _, _, err := DecodeRecord(bad); err == nil && k == key {
			// A flip inside the value region changes the value; the CRC
			// must catch it, so err == nil here is always a failure.
			t.Fatalf("flip at %d decoded successfully", i)
		}
	}
}

func TestStoreAppendLoadLatestWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "quality.usqr")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	r1 := rec("hypercube-64", "uniform:8:4096", "RS_NL", 64, 8, 0, 100, 1000)
	r2 := rec("hypercube-64", "uniform:8:4096", "RS_N", 64, 8, 0, 200, 500)
	r1b := r1
	r1b.EstCommUS = 150 // supersedes r1: same identity triple
	for _, r := range []Record{r1, r2, r1b} {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("loaded %d records, want 2 (latest wins)", len(recs))
	}
	byAlg := map[string]Record{}
	for _, r := range recs {
		byAlg[r.Algorithm] = r
	}
	if byAlg["RS_NL"].EstCommUS != 150 {
		t.Errorf("RS_NL comm = %v, want the superseding 150", byAlg["RS_NL"].EstCommUS)
	}

	// A truncated tail (crash mid-append) keeps everything before it.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("truncated store loaded %d records, want 2 (r1b's frame is damaged but r1's survives)", len(recs))
	}
	byAlg = map[string]Record{}
	for _, r := range recs {
		byAlg[r.Algorithm] = r
	}
	if byAlg["RS_NL"].EstCommUS != 100 {
		t.Errorf("after truncation RS_NL comm = %v, want the original 100", byAlg["RS_NL"].EstCommUS)
	}
}

func TestLoadMissingStoreIsEmpty(t *testing.T) {
	recs, err := Load(filepath.Join(t.TempDir(), "nope.usqr"))
	if err != nil || recs != nil {
		t.Fatalf("missing store: recs=%v err=%v, want nil, nil", recs, err)
	}
}

func TestModelRanksByMeanTotalCost(t *testing.T) {
	recs := []Record{
		// One bin (hypercube-64, d=8, uniform sizes): RS_N cheaper in
		// total than RS_NL here, AC far worse.
		rec("hypercube-64", "uniform:8:4096", "RS_NL", 64, 8, 0, 1000, 200000),
		rec("hypercube-64", "uniform:8:4096", "RS_N", 64, 8, 0, 1050, 30000),
		rec("hypercube-64", "uniform:8:4096", "AC", 64, 8, 0, 9000, 0),
	}
	m := NewModel(recs)
	if m.Records() != 3 || m.Bins() != 1 {
		t.Fatalf("records=%d bins=%d, want 3, 1", m.Records(), m.Bins())
	}
	f := sched.Features{Nodes: 64, Density: 8, SizeCV: 0}
	got := m.Pick("hypercube-64", f)
	want := []string{"RS_N", "RS_NL", "AC"}
	if len(got) != len(want) {
		t.Fatalf("Pick = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Pick = %v, want %v", got, want)
		}
	}

	// Same features on an uncalibrated topology kind: fallback chain.
	if got := m.Pick("torus-8x8", f); len(got) == 0 {
		t.Fatal("uncalibrated bin returned an empty ranking")
	}
}

func TestModelDeterministicTieBreak(t *testing.T) {
	recs := []Record{
		rec("hypercube-64", "uniform:8:4096", "RS_NL", 64, 8, 0, 1000, 0),
		rec("hypercube-64", "uniform:8:4096", "RS_N", 64, 8, 0, 1000, 0),
	}
	for i := 0; i < 10; i++ {
		got := NewModel(recs).Pick("hypercube-64", sched.Features{Nodes: 64, Density: 8})
		if got[0] != "RS_N" || got[1] != "RS_NL" {
			t.Fatalf("tie not broken lexicographically: %v", got)
		}
	}
}

// TestEmptyStoreFallsBackToTable: the satellite-mandated empty-store
// behavior. A model over zero records (and a nil model) must still
// answer every Pick, from the committed fallback chain, and must not
// offer LP to a non-power-of-two machine.
func TestEmptyStoreFallsBackToTable(t *testing.T) {
	empty := NewModel(nil)
	var nilModel *Model
	for _, m := range []*Model{empty, nilModel} {
		got := m.Pick("hypercube-64", sched.Features{Nodes: 64, Density: 8})
		if len(got) == 0 {
			t.Fatal("empty model returned an empty ranking")
		}
		if got[0] == "" {
			t.Fatal("empty model returned a blank tag")
		}
		// Non-power-of-two nodes: LP must be filtered everywhere.
		for _, tag := range m.Pick("torus-6x6", sched.Features{Nodes: 36, Density: 4}) {
			if tag == "LP" {
				t.Fatal("LP offered to a 36-node machine")
			}
		}
	}
	// The fallback ranking is the paper's: RS_NL first.
	if got := empty.Pick("ring", sched.Features{Nodes: 1000, Density: 3}); got[0] != "RS_NL" {
		t.Fatalf("default ranking starts with %q, want RS_NL", got[0])
	}
}

func TestBinKeyBands(t *testing.T) {
	cases := []struct {
		kind string
		f    sched.Features
		want string
	}{
		{"hypercube", sched.Features{Nodes: 64, Density: 8, SizeCV: 0}, "hypercube/n6/d4/cv0"},
		{"hypercube", sched.Features{Nodes: 64, Density: 8, SizeCV: 0.5}, "hypercube/n6/d4/cv1"},
		{"torus", sched.Features{Nodes: 256, Density: 48, SizeCV: 1.2}, "torus/n8/d6/cv2"},
		{"mesh", sched.Features{Nodes: 16, Density: 1, SizeCV: 0}, "mesh/n4/d1/cv0"},
	}
	for _, c := range cases {
		if got := BinKey(c.kind, c.f); got != c.want {
			t.Errorf("BinKey(%s, %+v) = %q, want %q", c.kind, c.f, got, c.want)
		}
	}
	if TopoKind("torus-8x8") != "torus" || TopoKind("ring") != "ring" {
		t.Error("TopoKind prefix parsing broken")
	}
}
