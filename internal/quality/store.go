package quality

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Store is an append-only quality record file. Appends are
// serialized under a lock and each record is one self-describing
// checksummed frame, so concurrent campaign workers on one process
// interleave whole records and a crash can only cost the unsynced
// tail — which Load skips.
type Store struct {
	path string

	mu sync.Mutex
	f  *os.File
}

// Open opens (creating if needed) the store file for appending.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("quality: open store: %w", err)
	}
	return &Store{path: path, f: f}, nil
}

// Path returns the store's file path.
func (s *Store) Path() string { return s.path }

// Append writes one record to the store. The record's identity key
// is derived from its (topology, workload, algorithm) triple, so
// appending the same cell again supersedes the earlier measurement
// at load time.
func (s *Store) Append(r Record) error {
	if !r.valid() {
		return fmt.Errorf("quality: refusing to append invalid record %+v", r)
	}
	value, err := json.Marshal(r)
	if err != nil {
		return err
	}
	frame, err := EncodeRecord(r.Key(), value)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err = s.f.Write(frame)
	return err
}

// Sync flushes appended records to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync()
}

// Close syncs and closes the store file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// Load reads every decodable record from the store file at path, the
// latest record per identity key winning. A missing file is an empty
// store, not an error. A corrupt or truncated tail ends the scan:
// everything decoded before it is kept, mirroring the disk cache's
// damage-tolerant loads. Records whose embedded key disagrees with
// their content, or whose fields are structurally unusable, are
// skipped.
func Load(path string) ([]Record, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("quality: read store: %w", err)
	}
	seen := make(map[string]int)
	var recs []Record
	for len(raw) > 0 {
		key, value, rest, err := DecodeRecord(raw)
		if err != nil {
			break
		}
		raw = rest
		var r Record
		if json.Unmarshal(value, &r) != nil || !r.valid() || r.Key() != key {
			continue
		}
		if i, ok := seen[key]; ok {
			recs[i] = r
		} else {
			seen[key] = len(recs)
			recs = append(recs, r)
		}
	}
	return recs, nil
}
