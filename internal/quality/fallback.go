package quality

// The committed calibration fallback: what Pick answers when neither
// the loaded store nor anything else covers a bin. The table below
// is GENERATED from one committed calibration run over the standard
// grid — Table 1 densities × Table 1 sizes on the paper's 64-node
// hypercube, 2 samples per cell, seed 1994:
//
//	go run ./cmd/experiments -samples 2 -seed 1994 autofallback
//
// and pasted verbatim — regenerate it the same way after changing
// the cost model or the algorithms. Entries are ranked best-first by
// mean total cost (simulated communication + modeled scheduling).
//
// defaultRanking is the last resort for bins outside the calibrated
// range. RS_NL first is the paper's own bottom line (§7): the
// locality-aware randomized scheduler is the best general choice,
// with RS_N the cheap runner-up, LP for the dense power-of-two
// corner, and AC last — it only wins for very short messages, which
// an uncalibrated bin cannot establish.
var defaultRanking = []string{"RS_NL", "RS_N", "LP", "AC"}

var fallbackTable = map[string][]string{
	"hypercube/n6/d3/cv0": {"RS_N", "RS_NL", "AC", "LP"},
	"hypercube/n6/d4/cv0": {"RS_N", "RS_NL", "AC", "LP"},
	"hypercube/n6/d5/cv0": {"RS_N", "RS_NL", "LP", "AC"},
	"hypercube/n6/d6/cv0": {"LP", "RS_NL", "RS_N", "AC"},
}
