package costmodel

import (
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	if err := DefaultIPSC860().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsNegatives(t *testing.T) {
	p := DefaultIPSC860()
	p.LongPerByteUS = -1
	if err := p.Validate(); err == nil {
		t.Error("negative per-byte accepted")
	}
	p = DefaultIPSC860()
	p.ShortMaxBytes = -1
	if err := p.Validate(); err == nil {
		t.Error("negative ShortMaxBytes accepted")
	}
	p = DefaultIPSC860()
	p.ShortLatencyUS = p.LongLatencyUS + 1
	if err := p.Validate(); err == nil {
		t.Error("short latency above long latency accepted")
	}
}

func TestProtocolRegimeSwitch(t *testing.T) {
	p := DefaultIPSC860()
	// 100 bytes rides the short protocol, 101 the long one; the jump
	// is the paper's Figure 10/11 cliff.
	short := p.TransferTime(100, 0)
	long := p.TransferTime(101, 0)
	if long <= short {
		t.Errorf("no protocol jump: T(100)=%v, T(101)=%v", short, long)
	}
	if long-short < 30 {
		t.Errorf("protocol jump too small to matter: %v µs", long-short)
	}
}

func TestTransferTimeMonotoneInBytesWithinRegime(t *testing.T) {
	p := DefaultIPSC860()
	f := func(aRaw, bRaw uint16, hopsRaw uint8) bool {
		a, b := int64(aRaw), int64(bRaw)
		hops := int(hopsRaw) % 7
		if a > b {
			a, b = b, a
		}
		// Same regime only: within a regime more bytes never get cheaper.
		if (a <= p.ShortMaxBytes) != (b <= p.ShortMaxBytes) {
			return true
		}
		return p.TransferTime(a, hops) <= p.TransferTime(b, hops)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransferTimeMonotoneInHops(t *testing.T) {
	p := DefaultIPSC860()
	for hops := 0; hops < 6; hops++ {
		if p.TransferTime(1024, hops) >= p.TransferTime(1024, hops+1) {
			t.Fatalf("hop cost not monotone at %d hops", hops)
		}
	}
}

func TestTransferTimeKnownValues(t *testing.T) {
	p := DefaultIPSC860()
	// 128 KB over 6 hops: 136 + 131072*0.357 + 60 ≈ 46.99 ms.
	got := p.TransferTime(128*1024, 6)
	if got < 46000 || got > 48000 {
		t.Errorf("T(128KB,6) = %v µs, want ≈ 47000", got)
	}
	// Signal is the short-protocol latency.
	if s := p.SignalTime(0); s != p.ShortLatencyUS {
		t.Errorf("SignalTime(0) = %v", s)
	}
}

func TestTransferTimePanics(t *testing.T) {
	p := DefaultIPSC860()
	for _, f := range []func(){
		func() { p.TransferTime(-1, 0) },
		func() { p.TransferTime(10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid TransferTime args did not panic")
				}
			}()
			f()
		}()
	}
}

func TestPermutationTimeMatchesTransfer(t *testing.T) {
	p := DefaultIPSC860()
	if p.PermutationTime(4096, 6) != p.TransferTime(4096, 6) {
		t.Error("PermutationTime should equal worst-case TransferTime")
	}
}

func TestIPSC2Preset(t *testing.T) {
	p2 := DefaultIPSC2()
	if err := p2.Validate(); err != nil {
		t.Fatal(err)
	}
	p860 := DefaultIPSC860()
	// The predecessor is slower in every respect that matters.
	if p2.TransferTime(4096, 3) <= p860.TransferTime(4096, 3) {
		t.Error("iPSC/2 transfers should be slower")
	}
	if p2.CompOpUS <= p860.CompOpUS {
		t.Error("iPSC/2 scheduling ops should be slower")
	}
	// Same protocol-switch structure.
	if p2.TransferTime(101, 0) <= p2.TransferTime(100, 0) {
		t.Error("iPSC/2 protocol switch missing")
	}
}

func TestCompTimeCalibration(t *testing.T) {
	p := DefaultIPSC860()
	// RS_N at (n=64, d=16) does, per processor, its row compression
	// plus ~20 phases of ~(2n + n·ln d/phase-ish) work ≈ 4-5k ops; the
	// model must put that in single-digit milliseconds like the
	// paper's 6.37 ms.
	ms := p.CompTimeMS(4500)
	if ms < 2 || ms > 12 {
		t.Errorf("CompTimeMS(11600) = %v ms, want single digits", ms)
	}
	if p.CompTimeMS(0) != 0 {
		t.Error("zero ops should cost zero")
	}
}
