// Package costmodel provides the timing model of iPSC/860
// communication used by the machine simulator, and the scaling that
// converts instrumented scheduler operation counts into i860
// milliseconds (the "comp" rows of the paper's Table 1).
//
// The communication constants are calibrated against the published
// measurements the paper relies on (Bokhari, "Communication Overhead
// on the Intel iPSC/860 Hypercube", ICASE Interim Report 10, 1990, and
// "Complete Exchange on the iPSC/860", ICASE 91-4): the NX messaging
// layer switches protocol at 100 bytes — short messages travel
// immediately with low latency, long messages pay an internal
// handshake and then stream at about 2.8 MB/s — and circuit setup
// costs roughly 10 µs per hop. This protocol switch is what produces
// the sharp drop between 64 B and 128 B in the paper's Figures 10-11.
//
// All times are in microseconds (float64), the simulator's virtual
// time unit.
package costmodel

import "fmt"

// Params holds the machine timing constants. The zero value is not
// meaningful; start from DefaultIPSC860.
type Params struct {
	// ShortMaxBytes is the largest message using the short protocol
	// (100 on the iPSC/860).
	ShortMaxBytes int64
	// ShortLatencyUS / ShortPerByteUS: the short-protocol cost
	// ShortLatencyUS + bytes*ShortPerByteUS.
	ShortLatencyUS float64
	ShortPerByteUS float64
	// LongLatencyUS / LongPerByteUS: the long-protocol cost.
	LongLatencyUS float64
	LongPerByteUS float64
	// HopSetupUS is the per-hop circuit establishment time; e-cube
	// routes on a 64-node cube are at most 6 hops.
	HopSetupUS float64
	// SyncOverheadUS is the software cost of the pairwise
	// synchronization that enables concurrent bidirectional exchange.
	SyncOverheadUS float64
	// PostOverheadUS is the CPU cost of posting a receive buffer and
	// firing the 0-byte ready signal of the S1 protocol.
	PostOverheadUS float64
	// LoopOverheadUS is the per-phase software cost of walking the
	// schedule loop even when the phase is empty for this node (LP
	// pays it n-1 times).
	LoopOverheadUS float64
	// PhaseSoftwareUS is the per-phase bookkeeping cost of the S2
	// execution scheme: consulting the scheduling table and managing
	// the posted-buffer state on the 40 MHz i860. It is what makes
	// RS_N's communication slightly costlier than AC's tight
	// firehose loop at small message sizes (Table 1, d=4).
	PhaseSoftwareUS float64
	// CompOpUS converts one instrumented scheduler operation (a CCOM
	// entry examination, a Tsend/Trecv update, or one link of a path
	// check) into i860 time; calibrated so RS_N's comp at (n=64, d=16)
	// lands near the paper's 6.4 ms and LP's near 0.06 ms.
	CompOpUS float64
}

// DefaultIPSC860 returns the calibrated constants for the paper's
// 64-node iPSC/860.
func DefaultIPSC860() Params {
	return Params{
		ShortMaxBytes:   100,
		ShortLatencyUS:  75,
		ShortPerByteUS:  0.08,
		LongLatencyUS:   136,
		LongPerByteUS:   0.357, // ~2.8 MB/s
		HopSetupUS:      10,
		SyncOverheadUS:  50,
		PostOverheadUS:  25,
		LoopOverheadUS:  20,
		PhaseSoftwareUS: 40,
		CompOpUS:        1.3,
	}
}

// DefaultIPSC2 returns approximate constants for the iPSC/860's
// predecessor, the iPSC/2 (Seidel & Schmiermund, and Lee & Seidel,
// cited by the paper): a 80386-based hypercube with the same circuit-
// switched DCM network generation but slower injection — latency
// ≈ 350 µs, streaming ≈ 2.8 MB/s beyond the 100-byte protocol switch —
// and a slower CPU for the scheduling computation. Useful for checking
// that algorithm orderings are not artifacts of one parameter set.
func DefaultIPSC2() Params {
	return Params{
		ShortMaxBytes:   100,
		ShortLatencyUS:  350,
		ShortPerByteUS:  0.2,
		LongLatencyUS:   700,
		LongPerByteUS:   0.36,
		HopSetupUS:      30,
		SyncOverheadUS:  150,
		PostOverheadUS:  60,
		LoopOverheadUS:  50,
		PhaseSoftwareUS: 100,
		CompOpUS:        3.5, // 16 MHz 80386 vs 40 MHz i860
	}
}

// Validate rejects non-positive or inconsistent constants.
func (p Params) Validate() error {
	if p.ShortMaxBytes < 0 {
		return fmt.Errorf("costmodel: ShortMaxBytes %d negative", p.ShortMaxBytes)
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"ShortLatencyUS", p.ShortLatencyUS},
		{"ShortPerByteUS", p.ShortPerByteUS},
		{"LongLatencyUS", p.LongLatencyUS},
		{"LongPerByteUS", p.LongPerByteUS},
		{"HopSetupUS", p.HopSetupUS},
		{"SyncOverheadUS", p.SyncOverheadUS},
		{"PostOverheadUS", p.PostOverheadUS},
		{"LoopOverheadUS", p.LoopOverheadUS},
		{"PhaseSoftwareUS", p.PhaseSoftwareUS},
		{"CompOpUS", p.CompOpUS},
	} {
		if c.v < 0 {
			return fmt.Errorf("costmodel: %s = %v negative", c.name, c.v)
		}
	}
	if p.ShortLatencyUS > p.LongLatencyUS {
		return fmt.Errorf("costmodel: short latency %v exceeds long latency %v",
			p.ShortLatencyUS, p.LongLatencyUS)
	}
	return nil
}

// TransferTime returns the time in µs for a circuit transfer of the
// given size over a route of the given hop count: protocol latency +
// per-hop circuit setup + streaming time. A zero-byte transfer is the
// ready signal / dummy message of the paper's observation 4.
func (p Params) TransferTime(bytes int64, hops int) float64 {
	if bytes < 0 {
		panic(fmt.Sprintf("costmodel: negative transfer size %d", bytes))
	}
	if hops < 0 {
		panic(fmt.Sprintf("costmodel: negative hop count %d", hops))
	}
	setup := float64(hops) * p.HopSetupUS
	if bytes <= p.ShortMaxBytes {
		return p.ShortLatencyUS + float64(bytes)*p.ShortPerByteUS + setup
	}
	return p.LongLatencyUS + float64(bytes)*p.LongPerByteUS + setup
}

// SignalTime returns the flight time of a 0-byte ready signal over the
// given hop count.
func (p Params) SignalTime(hops int) float64 { return p.TransferTime(0, hops) }

// PermutationTime returns the paper's idealized per-permutation cost
// tau + M*phi (assumption 1, §2.1) for the phase's largest message,
// using the worst-case hop count of the machine. The simulator refines
// this; the bound is used by analytical sanity checks and tests.
func (p Params) PermutationTime(maxBytes int64, maxHops int) float64 {
	return p.TransferTime(maxBytes, maxHops)
}

// CompTimeMS converts an instrumented scheduler operation count into
// modeled i860 milliseconds.
func (p Params) CompTimeMS(ops int64) float64 {
	return float64(ops) * p.CompOpUS / 1000
}

// CompTimeNS converts an instrumented scheduler operation count into
// modeled i860 nanoseconds, rounded to the nearest integer — the
// fixed-point form quality records carry so calibration artifacts
// compare bit-identically across builds.
func (p Params) CompTimeNS(ops int64) int64 {
	return int64(float64(ops)*p.CompOpUS*1000 + 0.5)
}
