package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"unsched/internal/comm"
	"unsched/internal/sched"
)

func testSchedule(t *testing.T) (*comm.Matrix, *sched.Schedule) {
	t.Helper()
	m := comm.MustNew(8)
	m.Set(0, 1, 100)
	m.Set(1, 0, 100) // pairwise pair
	m.Set(2, 5, 200)
	s, err := sched.RSN(m, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return m, s
}

func TestWriteSchedule(t *testing.T) {
	_, s := testSchedule(t)
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "phase") {
		t.Errorf("missing phases:\n%s", out)
	}
	if !strings.Contains(out, "2->5(200B)") {
		t.Errorf("missing transfer:\n%s", out)
	}
}

func TestWriteScheduleMarksPairwise(t *testing.T) {
	m := comm.MustNew(4)
	m.Set(0, 1, 50)
	m.Set(1, 0, 50)
	s := &sched.Schedule{Algorithm: "X", N: 4}
	p := sched.NewPhase(4)
	p.Send[0], p.Bytes[0] = 1, 50
	p.Send[1], p.Bytes[1] = 0, 50
	s.Phases = append(s.Phases, p)
	if err := s.Validate(m); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0=1") {
		t.Errorf("pairwise exchange not marked:\n%s", buf.String())
	}
}

func TestGantt(t *testing.T) {
	m := comm.MustNew(4)
	m.Set(0, 1, 50)
	m.Set(1, 0, 50)
	m.Set(2, 3, 10)
	s := &sched.Schedule{Algorithm: "X", N: 4}
	p := sched.NewPhase(4)
	p.Send[0], p.Bytes[0] = 1, 50
	p.Send[1], p.Bytes[1] = 0, 50
	p.Send[2], p.Bytes[2] = 3, 10
	s.Phases = append(s.Phases, p)
	out := Gantt(s, 0)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + 4 nodes
		t.Fatalf("gantt lines: %v", lines)
	}
	if !strings.HasSuffix(lines[1], "X") { // node 0 exchanges
		t.Errorf("node 0 row = %q, want exchange marker", lines[1])
	}
	if !strings.HasSuffix(lines[3], "S") { // node 2 sends
		t.Errorf("node 2 row = %q", lines[3])
	}
	if !strings.HasSuffix(lines[4], "R") { // node 3 receives
		t.Errorf("node 3 row = %q", lines[4])
	}
}

func TestGanttTruncation(t *testing.T) {
	_, s := testSchedule(t)
	for len(s.Phases) < 5 {
		s.Phases = append(s.Phases, sched.NewPhase(8))
	}
	out := Gantt(s, 2)
	if !strings.Contains(out, "more phases") {
		t.Errorf("truncation marker missing:\n%s", out)
	}
}

func TestMatrixHeatmap(t *testing.T) {
	m := comm.MustNew(4)
	m.Set(0, 1, 64)
	m.Set(2, 3, 256) // 4x the min -> magnitude 2
	out := MatrixHeatmap(m)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("heatmap lines: %d", len(lines))
	}
	if lines[1] != ".0.." {
		t.Errorf("row 0 = %q", lines[1])
	}
	if lines[3] != "...2" {
		t.Errorf("row 2 = %q", lines[3])
	}
}

func TestMatrixHeatmapEmpty(t *testing.T) {
	out := MatrixHeatmap(comm.MustNew(2))
	if !strings.Contains(out, "..") {
		t.Errorf("empty heatmap = %q", out)
	}
}
