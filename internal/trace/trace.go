// Package trace renders schedules and simulation outcomes as text:
// phase-by-phase listings, per-node Gantt charts, and compact summary
// tables. It exists for the CLI, the examples, and for debugging
// scheduler changes — a schedule you can read is a schedule you can
// check against the paper's figures by eye.
package trace

import (
	"fmt"
	"io"
	"strings"

	"unsched/internal/comm"
	"unsched/internal/sched"
)

// WriteSchedule prints every phase of the schedule: one line per
// phase, listing the scheduled transfers and marking pairwise
// exchanges with '='.
func WriteSchedule(w io.Writer, s *sched.Schedule) error {
	if _, err := fmt.Fprintf(w, "%s\n", s.String()); err != nil {
		return err
	}
	for k, p := range s.Phases {
		var parts []string
		for i, j := range p.Send {
			if j < 0 {
				continue
			}
			arrow := "->"
			if p.Send[j] == i {
				if j < i {
					continue // the pair was printed from the lower end
				}
				arrow = "="
			}
			parts = append(parts, fmt.Sprintf("%d%s%d(%dB)", i, arrow, j, p.Bytes[i]))
		}
		line := strings.Join(parts, " ")
		if line == "" {
			line = "(empty)"
		}
		if _, err := fmt.Fprintf(w, "phase %3d: %s\n", k+1, line); err != nil {
			return err
		}
	}
	return nil
}

// Gantt renders a per-processor occupancy chart of the schedule: one
// row per processor, one column per phase; 'S' marks a send, 'R' a
// receive, 'X' a pairwise exchange, '.' silence. Only sensible for
// small machines and phase counts; wider inputs are truncated with a
// marker.
func Gantt(s *sched.Schedule, maxPhases int) string {
	var b strings.Builder
	phases := s.Phases
	truncated := false
	if maxPhases > 0 && len(phases) > maxPhases {
		phases = phases[:maxPhases]
		truncated = true
	}
	recvs := make([][]int, len(phases))
	for k, p := range phases {
		recvs[k] = p.Recv()
	}
	fmt.Fprintf(&b, "node|phases 1..%d\n", len(phases))
	for i := 0; i < s.N; i++ {
		fmt.Fprintf(&b, "%4d|", i)
		for k, p := range phases {
			switch {
			case p.Send[i] >= 0 && p.Send[i] == recvsAt(recvs[k], i) && recvsAt(recvs[k], i) >= 0:
				b.WriteByte('X')
			case p.Send[i] >= 0 && recvsAt(recvs[k], i) >= 0:
				b.WriteByte('B')
			case p.Send[i] >= 0:
				b.WriteByte('S')
			case recvsAt(recvs[k], i) >= 0:
				b.WriteByte('R')
			default:
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	if truncated {
		fmt.Fprintf(&b, "(%d more phases)\n", len(s.Phases)-maxPhases)
	}
	return b.String()
}

func recvsAt(recv []int, i int) int {
	if i < len(recv) {
		return recv[i]
	}
	return -1
}

// MatrixHeatmap renders the communication matrix as a character grid:
// '.' for no message, digits for log2 scale of the message size in
// units of the smallest message. Useful to eyeball pattern structure.
func MatrixHeatmap(m *comm.Matrix) string {
	var b strings.Builder
	minBytes := int64(0)
	for _, msg := range m.Messages() {
		if minBytes == 0 || msg.Bytes < minBytes {
			minBytes = msg.Bytes
		}
	}
	fmt.Fprintf(&b, "COM %dx%d (min message %dB)\n", m.N(), m.N(), minBytes)
	for i := 0; i < m.N(); i++ {
		for j := 0; j < m.N(); j++ {
			v := m.At(i, j)
			switch {
			case v == 0:
				b.WriteByte('.')
			default:
				mag := 0
				for x := v / minBytes; x > 1; x >>= 1 {
					mag++
				}
				if mag > 9 {
					mag = 9
				}
				b.WriteByte(byte('0' + mag))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
