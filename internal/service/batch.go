package service

// POST /v1/schedule/batch: many schedule requests over one connection,
// results streamed back as NDJSON — one BatchItem per line, flushed as
// each item finishes, in completion order (Index says which request a
// line answers). The stream reuses the same worker pool, content-hash
// memoization, and single-flight dedup as the synchronous endpoint;
// where a synchronous request is shed with 429 under queue pressure, a
// batch item yields and retries instead, so one saturated moment does
// not fail a thousand-item sweep.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
)

// maxBatchItems bounds one batch request. The body cap (32 MB) already
// bounds total payload; this bounds the goroutine fan-out and the
// smallest-possible-item count.
const maxBatchItems = 4096

// BatchScheduleRequest is the body of POST /v1/schedule/batch.
type BatchScheduleRequest struct {
	Requests []ScheduleRequest `json:"requests"`
}

// BatchItem is one line of the NDJSON stream answering a batch. Index
// is the position of the request it answers (lines arrive in
// completion order, not request order). Exactly one of Result or
// Error is set; Key and Cached mirror the synchronous Envelope.
type BatchItem struct {
	Index  int             `json:"index"`
	Key    string          `json:"key,omitempty"`
	Cached bool            `json:"cached,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  *ErrorDetail    `json:"error,omitempty"`
}

// batchAcceptable gates the stream's one response form: a client whose
// Accept excludes NDJSON gets 406 up front, not a stream it cannot
// parse.
func batchAcceptable(r *http.Request) error {
	accept := r.Header.Get("Accept")
	if strings.TrimSpace(accept) == "" {
		return nil
	}
	for _, rng := range strings.Split(accept, ",") {
		mediaType, _, _ := strings.Cut(rng, ";")
		switch strings.ToLower(strings.TrimSpace(mediaType)) {
		case "*/*", "application/*", ContentTypeNDJSON:
			return nil
		}
	}
	return &apiError{status: http.StatusNotAcceptable, code: CodeNotAcceptable,
		msg: fmt.Sprintf("batch responses are %s; Accept %q excludes it", ContentTypeNDJSON, accept)}
}

func (s *Server) handleScheduleBatch(w http.ResponseWriter, r *http.Request) {
	s.requests[epBatch].Add(1)
	if err := checkRequestContentType(r); err != nil {
		writeError(w, err)
		return
	}
	if err := batchAcceptable(r); err != nil {
		writeError(w, err)
		return
	}
	var req BatchScheduleRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, badRequest("empty batch: requests must hold at least one schedule request"))
		return
	}
	if len(req.Requests) > maxBatchItems {
		writeError(w, badRequest("batch has %d items; limit %d", len(req.Requests), maxBatchItems))
		return
	}

	h := w.Header()
	h.Set("Content-Type", ContentTypeNDJSON)
	h.Set("Vary", "Accept")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	// In-flight items are bounded by the worker count: each occupies at
	// most one worker, and extra submitters would only camp on the
	// queue that synchronous requests share.
	limit := s.opts.Workers
	if limit > len(req.Requests) {
		limit = len(req.Requests)
	}

	ctx := r.Context()
	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		written int64
		sem     = make(chan struct{}, limit)
	)
	emit := func(item BatchItem) {
		line, err := json.Marshal(item)
		if err != nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		n1, _ := w.Write(line)
		n2, _ := w.Write([]byte{'\n'})
		written += int64(n1 + n2)
		if flusher != nil {
			// Flush per line: the stream's whole point is that a client
			// sees item k's answer while item k+1 still computes.
			flusher.Flush()
		}
	}
	for i := range req.Requests {
		if ctx.Err() != nil {
			break // client gone; stop feeding the queue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(index int, item ScheduleRequest) {
			defer wg.Done()
			defer func() { <-sem }()
			out := s.batchOne(ctx, index, &item)
			if ctx.Err() == nil {
				emit(out)
			}
		}(i, req.Requests[i])
	}
	wg.Wait()
	s.respCount[encJSON][compIdentity].Add(1)
	s.respBytes[encJSON][compIdentity].Add(written)
}

// batchOne answers a single batch item through the shared memoization
// path. Failures become the item's structured error — never the
// stream's: one bad request in a batch must not kill the other 999.
func (s *Server) batchOne(ctx context.Context, index int, req *ScheduleRequest) BatchItem {
	key, compute, err := s.scheduleJob(ctx, req)
	if err == nil {
		var (
			raw    []byte
			cached bool
		)
		raw, cached, err = s.memoized(ctx, epSchedule, key, encJSON, true, decodeScheduleDoc, compute)
		if err == nil {
			return BatchItem{Index: index, Key: key, Cached: cached, Result: raw}
		}
	}
	ae, ok := err.(*apiError)
	if !ok {
		ae = &apiError{status: http.StatusInternalServerError, msg: err.Error()}
	}
	return BatchItem{Index: index, Error: &ErrorDetail{Code: ae.Code(), Message: ae.msg}}
}
