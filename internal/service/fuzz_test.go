package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// fuzzServer is shared across fuzz iterations: handlers are
// concurrency-safe, and rebuilding a worker pool per input would
// drown the fuzzer in goroutine churn.
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
)

func fuzzServer() *Server {
	fuzzOnce.Do(func() {
		var err error
		if fuzzSrv, err = NewServer(Options{Workers: 2, QueueDepth: 16, CacheEntries: 64}); err != nil {
			panic(err)
		}
	})
	return fuzzSrv
}

// FuzzScheduleRequest drives POST /v1/schedule with arbitrary bodies.
// The contract: malformed JSON or a malformed matrix must never panic
// the daemon — every input gets a JSON response with an HTTP status.
func FuzzScheduleRequest(f *testing.F) {
	f.Add(`{"matrix":{"n":8,"messages":[[0,1,512],[1,2,512]]},"algorithm":"RS_NL"}`)
	f.Add(`{"matrix":{"n":4,"messages":[]}}`)
	f.Add(`{"matrix":{"n":4,"messages":[[0,0,1]]}}`)
	f.Add(`{"matrix":{"n":-1,"messages":null}}`)
	f.Add(`{"matrix":{"n":4096,"messages":[[0,1,1]]},"algorithm":"AC"}`)
	f.Add(`{"algorithm":"LP"}`)
	f.Add(`{"matrix":{"n":4,"messages":[[0,1,10]]},"seed":-9223372036854775808}`)
	f.Add(`{"matrix":{"n":4,"messages":[[0,1,10]]},"topology":{"kind":"torus","w":2,"h":2}}`)
	f.Add(`{"workload":"uniform:2:64","topology":{"spec":"cube:3"},"algorithm":"RS_NL"}`)
	f.Add(`{"workload":"halo:8x8:512","topology":{"spec":"torus:4x4"}}`)
	f.Add(`{"workload":"dregular:2:64","topology":{"spec":"cube:3"},"seed":-1}`)
	f.Add(`{"workload":"klein:::","topology":{"spec":"cube:3"}}`)
	f.Add(`{"workload":"transpose:64"}`)
	f.Add(`{"workload":"perm:64","matrix":{"n":4,"messages":[]}}`)
	f.Add(`nonsense`)
	f.Add(``)
	f.Add(`[]`)
	f.Add(`{"matrix":{"n":1e9}}`)
	f.Fuzz(func(t *testing.T, body string) {
		srv := fuzzServer()
		req := httptest.NewRequest(http.MethodPost, "/v1/schedule", strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req) // must not panic
		if rec.Code == 0 {
			t.Fatalf("no status written for input %q", body)
		}
	})
}

// FuzzCampaignRequest drives POST /v1/campaign with arbitrary bodies,
// covering the topology field in all its forms (structured kinds,
// spec strings, graph edge lists): the decoder and topology builder
// must never panic, whatever the wire says. Accepted campaigns run
// asynchronously and are bounded by the server's campaign slots, so
// the shared fuzz server stays healthy across iterations.
func FuzzCampaignRequest(f *testing.F) {
	f.Add(`{"densities":[2],"sizes":[64],"samples":1,"dim":3}`)
	f.Add(`{"densities":[2,4],"sizes":[64,1024],"samples":2,"seed":7,"topology":{"kind":"torus","w":4,"h":4}}`)
	f.Add(`{"densities":[2],"sizes":[64],"samples":1,"topology":{"kind":"ring","n":8}}`)
	f.Add(`{"densities":[2],"sizes":[64],"samples":1,"topology":{"kind":"graph","n":4,"edges":[[0,1],[1,2],[2,3],[3,0]]}}`)
	f.Add(`{"densities":[2],"sizes":[64],"samples":1,"topology":{"spec":"cube:3"}}`)
	f.Add(`{"densities":[2],"sizes":[64],"samples":1,"topology":{"spec":"graph:4:0-1,1-2,2-3"}}`)
	f.Add(`{"densities":[2],"sizes":[64],"samples":1,"dim":3,"topology":{"kind":"cube","dim":3}}`)
	f.Add(`{"densities":[2],"sizes":[64],"samples":1,"topology":{"kind":"graph","n":4,"edges":[[0,0]]}}`)
	f.Add(`{"densities":[2],"sizes":[64],"samples":1,"topology":{"kind":"graph","n":-1,"edges":[[0,1]]}}`)
	f.Add(`{"densities":[2],"sizes":[64],"samples":1,"topology":{"kind":"ring","n":999999999}}`)
	f.Add(`{"densities":[1000000],"sizes":[-5],"samples":0}`)
	f.Add(`{"workloads":["uniform:2:64","halo:8x8:512"],"samples":1,"dim":3}`)
	f.Add(`{"workloads":["hotspot:2:64:1","stencil3d:2x2x2:8","spmv:4:8"],"samples":1,"topology":{"spec":"torus:4x4"}}`)
	f.Add(`{"workloads":["nope"],"samples":1,"dim":3}`)
	f.Add(`{"workloads":[""],"samples":1}`)
	f.Add(`{"workloads":["uniform:2:64"],"densities":[2],"sizes":[64],"samples":1}`)
	f.Add(`{"topology":{}}`)
	f.Add(`{`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, body string) {
		srv := fuzzServer()
		req := httptest.NewRequest(http.MethodPost, "/v1/campaign", strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req) // must not panic
		if rec.Code == 0 {
			t.Fatalf("no status written for input %q", body)
		}
	})
}

// FuzzCacheRecord drives the on-disk cache-record decoder with
// arbitrary bytes: a vandalized cache directory must cost at most a
// skipped record, never a panicking daemon. When an input does decode,
// it must round-trip — re-encoding the (key, value) reproduces the
// exact input bytes, so every accepted record is one encodeRecord
// could have written.
func FuzzCacheRecord(f *testing.F) {
	if rec, err := encodeRecord(strings.Repeat("ab", 32), []byte(`{"result":1}`)); err == nil {
		f.Add(rec)
		f.Add(rec[:len(rec)-3])   // truncated
		f.Add(append(rec, 0x00))  // trailing garbage
		f.Add(bytes.ToUpper(rec)) // flipped magic/body bytes
	}
	if rec, err := encodeRecord("aa", nil); err == nil {
		f.Add(rec)
	}
	f.Add([]byte{})
	f.Add([]byte("USCR"))
	f.Add([]byte{'U', 'S', 'C', 'R', 1, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, b []byte) {
		key, value, err := decodeRecord(b) // must not panic
		if err != nil {
			return
		}
		re, err := encodeRecord(key, value)
		if err != nil {
			t.Fatalf("decoded record re-encodes with error: %v", err)
		}
		if !bytes.Equal(re, b) {
			t.Fatalf("decode/encode round trip changed the record:\n in: %x\nout: %x", b, re)
		}
	})
}

// FuzzSimulateRequest drives POST /v1/simulate the same way; schedules
// with contention, out-of-range nodes, or absurd phase counts must be
// rejected, never simulated into a crash.
func FuzzSimulateRequest(f *testing.F) {
	f.Add(`{"matrix":{"n":4,"messages":[[0,1,256]]}}`)
	f.Add(`{"schedule":{"algorithm":"RS_N","n":4,"ops":0,"phases":[[[0,1,256]],[[1,0,256]]]}}`)
	f.Add(`{"schedule":{"algorithm":"LP","n":4,"ops":1,"phases":[[[0,1,10],[1,0,10]]]},"protocol":"LP"}`)
	f.Add(`{"schedule":{"algorithm":"AC","n":4,"phases":[]},"matrix":{"n":4,"messages":[[0,1,9]]}}`)
	f.Add(`{"schedule":{"algorithm":"RS_N","n":4,"phases":[[[0,2,5],[1,2,5]]]}}`)
	f.Add(`{"schedule":{"algorithm":"RS_N","n":2,"phases":[[[0,1,5]]]},"params":"ipsc2","protocol":"S2"}`)
	f.Add(`{"schedule":null,"matrix":null}`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, body string) {
		srv := fuzzServer()
		req := httptest.NewRequest(http.MethodPost, "/v1/simulate", strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req) // must not panic
		if rec.Code == 0 {
			t.Fatalf("no status written for input %q", body)
		}
	})
}
