package service

import (
	"container/list"
	"strings"
	"sync"
)

// scheduleCache is a sharded, size-bounded LRU keyed by the hex
// content hash of a request. Values are the marshaled result documents
// the handlers memoize, so a hit is served byte-identically to the
// response that populated it. Sharding by the first byte of the key
// (hashes are uniform, so shards balance) keeps lock hold times short
// under concurrent load. Hit/miss accounting lives on the Server, not
// here: only the caller knows whether a lookup was a real miss (a
// computation) or a single-flight follower probe, and warm-restart
// loads must not count at all.
type scheduleCache struct {
	shards [cacheShards]cacheShard
}

const cacheShards = 16

type cacheShard struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recent; values are *cacheEntry
	items map[string]*list.Element
}

type cacheEntry struct {
	key   string
	value []byte
}

// newScheduleCache bounds the cache to maxEntries total entries spread
// over the shards; maxEntries <= 0 disables caching (every lookup
// misses). The bound is global and exact: shard capacities sum to
// maxEntries, with the remainder of maxEntries/cacheShards spread one
// entry each over the leading shards. (Rounding every shard up
// instead would let a 1-entry cache hold 16.) Below cacheShards
// entries some shards get capacity zero and never store — an accepted
// cost of keeping the documented bound honest at sizes nobody should
// configure anyway.
func newScheduleCache(maxEntries int) *scheduleCache {
	c := &scheduleCache{}
	if maxEntries < 0 {
		maxEntries = 0
	}
	base, extra := maxEntries/cacheShards, maxEntries%cacheShards
	for i := range c.shards {
		max := base
		if i < extra {
			max++
		}
		c.shards[i] = cacheShard{
			max:   max,
			order: list.New(),
			items: make(map[string]*list.Element),
		}
	}
	return c
}

func (c *scheduleCache) shard(key string) *cacheShard {
	if key == "" {
		return &c.shards[0]
	}
	// Keys are hex hashes; the first character is uniform over 16
	// values, exactly one shard's worth.
	return &c.shards[hexVal(key[0])%cacheShards]
}

func hexVal(b byte) int {
	switch {
	case b >= '0' && b <= '9':
		return int(b - '0')
	case b >= 'a' && b <= 'f':
		return int(b-'a') + 10
	default:
		return 0
	}
}

// get returns the memoized value and marks it most recently used.
func (c *scheduleCache) get(key string) ([]byte, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).value, true
}

// put memoizes value under key, evicting the least recently used
// entry of the shard when full. Storing an existing key refreshes it.
func (c *scheduleCache) put(key string, value []byte) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.max <= 0 {
		return
	}
	if el, ok := s.items[key]; ok {
		s.order.MoveToFront(el)
		el.Value.(*cacheEntry).value = value
		return
	}
	for s.order.Len() >= s.max {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheEntry).key)
	}
	s.items[key] = s.order.PushFront(&cacheEntry{key: key, value: value})
}

// flightGroup deduplicates concurrent cache misses for one key: the
// first request becomes the leader and computes; followers wait for
// its result instead of occupying workers recomputing the identical
// answer. Entries live only while a computation is in flight.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	raw  []byte
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// join returns the in-flight call for key and whether the caller is
// its leader. The leader must call finish exactly once.
func (g *flightGroup) join(key string) (*flightCall, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c, false
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// finish publishes the leader's result and wakes the followers.
func (g *flightGroup) finish(key string, c *flightCall, raw []byte, err error) {
	c.raw, c.err = raw, err
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
}

// keys snapshots the canonical cached keys, for the fleet
// shard-balance gauge. Variant renderings ("<key>#b") are skipped:
// each shadows a canonical entry and would double-count its owner.
func (c *scheduleCache) keys() []string {
	var out []string
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.order.Front(); el != nil; el = el.Next() {
			if k := el.Value.(*cacheEntry).key; !strings.ContainsRune(k, '#') {
				out = append(out, k)
			}
		}
		s.mu.Unlock()
	}
	return out
}

// len returns the total number of cached entries.
func (c *scheduleCache) len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.order.Len()
		s.mu.Unlock()
	}
	return total
}
