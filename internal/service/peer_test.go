package service

// Fleet-mode tests: the 3-daemon property test (any daemon answers
// bit-identically to a solo daemon, with exactly one compute per
// unique key fleet-wide), peer-outage fallback, corrupt-record
// rejection, write-behind drain on Close, and the /v1/cache endpoint
// contract. All run under -race in CI.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// swapHandler lets an httptest listener start before the Server that
// will serve it exists — fleet members need each other's URLs at
// construction time, so the listeners come up first and the daemons
// are swapped in behind them.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (sh *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sh.mu.RLock()
	h := sh.h
	sh.mu.RUnlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func (sh *swapHandler) set(h http.Handler) {
	sh.mu.Lock()
	sh.h = h
	sh.mu.Unlock()
}

// newFleetServers starts n daemons behind httptest listeners that all
// know each other as peers. The generous PeerBudget keeps slow CI
// runners from turning a peer hit into a budget-expired local compute
// (which would break the one-miss-fleet-wide accounting).
func newFleetServers(t *testing.T, n int, mutate func(i int, o *Options)) ([]*Server, []*httptest.Server) {
	t.Helper()
	handlers := make([]*swapHandler, n)
	tss := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range handlers {
		handlers[i] = &swapHandler{}
		tss[i] = httptest.NewServer(handlers[i])
		urls[i] = tss[i].URL
	}
	servers := make([]*Server, n)
	for i := range servers {
		o := Options{Workers: 2, Peers: urls, SelfURL: urls[i], PeerBudget: 2 * time.Second}
		if mutate != nil {
			mutate(i, &o)
		}
		svc, err := NewServer(o)
		if err != nil {
			t.Fatal(err)
		}
		handlers[i].set(svc)
		servers[i] = svc
	}
	t.Cleanup(func() {
		for _, ts := range tss {
			ts.Close()
		}
		for _, s := range servers {
			s.Close()
		}
	})
	return servers, tss
}

// waitFleetPushes drains every daemon's write-behind queue, making
// the asynchronous push step deterministic for the accounting checks.
func waitFleetPushes(t *testing.T, servers []*Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, s := range servers {
		if err := s.fleet.WaitPushes(ctx); err != nil {
			t.Fatalf("WaitPushes: %v", err)
		}
	}
}

// postCapture posts v as JSON and returns status, body, and ETag.
// accept overrides the Accept header (for the binary encoding).
func postCapture(t *testing.T, url string, v any, accept string) (int, []byte, string) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ContentTypeJSON)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw, resp.Header.Get("Etag")
}

// fleetPropertyRequests is a spread of schedule and simulate requests
// whose content-hash keys land on different owners: explicit
// matrices, generated workloads, and AC simulate runs.
func fleetPropertyRequests(t *testing.T) []struct {
	path string
	body any
} {
	t.Helper()
	var reqs []struct {
		path string
		body any
	}
	add := func(path string, body any) {
		reqs = append(reqs, struct {
			path string
			body any
		}{path, body})
	}
	for i, algo := range []string{"RS_NL", "GREEDY_LF", "LP", "RS_N"} {
		add("/v1/schedule", ScheduleRequest{
			Matrix: testMatrix(t, 8, 3, 2048, int64(i+1)), Algorithm: algo, Seed: int64(i)})
	}
	for i, w := range []struct{ spec, topo, algo string }{
		{"uniform:4:1024", "cube:4", "RS_NL"},
		{"uniform:4:2048", "cube:4", "GREEDY"},
		{"halo:4x4:512", "torus:4x4", "RS_NL"},
		{"perm:512", "cube:4", "GREEDY_LF"},
	} {
		add("/v1/schedule", ScheduleRequest{
			Workload: w.spec, Algorithm: w.algo,
			Topology: &WireTopology{Spec: w.topo}, Seed: int64(i)})
	}
	for i := 0; i < 3; i++ {
		add("/v1/simulate", SimulateRequest{Matrix: testMatrix(t, 8, 3, 1024, int64(10+i))})
	}
	return reqs
}

// TestFleetBitIdenticalWithOneComputePerKey is the fleet property
// test: for a spread of schedule/simulate requests hitting arbitrary
// daemons of a 3-member fleet, every response (JSON and binary, plus
// ETag) is bit-identical to a solo daemon's, and the whole fleet
// performs exactly one compute (one cache-miss increment) per unique
// key — every other serving is a local hit or a peer fill.
func TestFleetBitIdenticalWithOneComputePerKey(t *testing.T) {
	solo, soloTS := newTestServer(t, Options{Workers: 2})
	servers, tss := newFleetServers(t, 3, nil)

	keys := map[string]bool{}
	for i, rq := range fleetPropertyRequests(t) {
		// Solo reference: the first response is the computed
		// (cached=false) form, the second the cached=true form, and the
		// binary probe renders from cache — the same progression every
		// key goes through fleet-side.
		st, soloFirst, soloTag := postCapture(t, soloTS.URL+rq.path, rq.body, "")
		if st != http.StatusOK {
			t.Fatalf("req %d: solo status %d: %s", i, st, soloFirst)
		}
		_, soloSecond, _ := postCapture(t, soloTS.URL+rq.path, rq.body, "")
		_, soloBin, soloBinTag := postCapture(t, soloTS.URL+rq.path, rq.body, ContentTypeBinary)

		// Round 1: a fresh key on daemon d1 — the fleet's one compute.
		d1 := i % 3
		st1, got1, tag1 := postCapture(t, tss[d1].URL+rq.path, rq.body, "")
		if st1 != http.StatusOK {
			t.Fatalf("req %d: fleet status %d: %s", i, st1, got1)
		}
		if !bytes.Equal(got1, soloFirst) || tag1 != soloTag {
			t.Fatalf("req %d: fresh fleet response differs from solo\nfleet: %s (etag %s)\nsolo:  %s (etag %s)",
				i, got1, tag1, soloFirst, soloTag)
		}
		var env Envelope
		if err := json.Unmarshal(got1, &env); err != nil {
			t.Fatal(err)
		}
		keys[env.Key] = true
		waitFleetPushes(t, servers)

		// Round 2: a different daemon must serve the identical bytes
		// without recomputing (local hit on the owner, or peer fill).
		d2 := (d1 + 1 + i%2) % 3
		_, got2, tag2 := postCapture(t, tss[d2].URL+rq.path, rq.body, "")
		if !bytes.Equal(got2, soloSecond) || tag2 != soloTag {
			t.Fatalf("req %d: cached fleet response differs from solo\nfleet: %s (etag %s)\nsolo:  %s (etag %s)",
				i, got2, tag2, soloSecond, soloTag)
		}

		// Binary probe on the remaining daemon: rendered from cached or
		// peer-fetched JSON, never recomputed.
		d3 := (d2 + 1) % 3
		_, gotBin, tagBin := postCapture(t, tss[d3].URL+rq.path, rq.body, ContentTypeBinary)
		if !bytes.Equal(gotBin, soloBin) || tagBin != soloBinTag {
			t.Fatalf("req %d: binary fleet response differs from solo (%d vs %d bytes, etag %s vs %s)",
				i, len(gotBin), len(soloBin), tagBin, soloBinTag)
		}
		waitFleetPushes(t, servers)
	}

	soloMisses := solo.cacheMisses[epSchedule].Load() + solo.cacheMisses[epSimulate].Load()
	if soloMisses != int64(len(keys)) {
		t.Fatalf("solo misses = %d, want one per unique key (%d)", soloMisses, len(keys))
	}
	var fleetMisses, peerHits int64
	for _, s := range servers {
		fleetMisses += s.cacheMisses[epSchedule].Load() + s.cacheMisses[epSimulate].Load()
		peerHits += s.fleet.Stats().Hits
	}
	if fleetMisses != int64(len(keys)) {
		t.Fatalf("fleet-wide misses = %d, want exactly one compute per unique key (%d)", fleetMisses, len(keys))
	}
	if peerHits == 0 {
		t.Fatal("no peer hits recorded; the fleet never exercised peer fill")
	}

	// The fleet series surface on /metrics, including the shard-balance
	// gauge with one row per member.
	_, metrics := getJSON(t, tss[0].URL+"/metrics", nil)
	for _, want := range []string{
		"unschedd_peer_lookup_total", "unschedd_peer_hit_total",
		"unschedd_peer_lookup_seconds_count", "unschedd_peer_owned_keys{peer=",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("fleet /metrics missing %s", want)
		}
	}
	// Solo daemons emit the counters too (all zero), but no gauge rows.
	_, soloMetrics := getJSON(t, soloTS.URL+"/metrics", nil)
	if !strings.Contains(string(soloMetrics), "unschedd_peer_lookup_total 0") {
		t.Error("solo /metrics missing zero-valued peer counters")
	}
	if strings.Contains(string(soloMetrics), "unschedd_peer_owned_keys") {
		t.Error("solo /metrics should not emit the shard-balance gauge")
	}
}

// TestFleetKillOnePeerFallsBackToLocal: with one member down, every
// request against the survivors still answers 200 with solo-identical
// bytes — peers make a daemon faster, never unavailable — and
// /healthz reports the dead member unreachable.
func TestFleetKillOnePeer(t *testing.T) {
	_, soloTS := newTestServer(t, Options{Workers: 2})
	servers, tss := newFleetServers(t, 3, func(i int, o *Options) {
		// A short budget keeps the owner-down probes from stretching the
		// test; correctness must not depend on the budget's size.
		o.PeerBudget = 250 * time.Millisecond
	})
	tss[2].Close() // connection refused from here on

	// Keep issuing fresh requests against the survivors until at least
	// one key owned by the dead member has been served — that request
	// is forced through the refused-connection path before computing.
	deadOwned := 0
	for i := 0; i < 6 || deadOwned == 0; i++ {
		if i > 200 {
			t.Fatal("no key owned by the dead member in 200 tries")
		}
		rq := ScheduleRequest{Matrix: testMatrix(t, 8, 3, 1024, int64(100+i)), Algorithm: "RS_NL"}
		_, want, wantTag := postCapture(t, soloTS.URL+"/v1/schedule", rq, "")
		d := i % 2 // survivors only
		st, got, tag := postCapture(t, tss[d].URL+"/v1/schedule", rq, "")
		if st != http.StatusOK {
			t.Fatalf("req %d: status %d with a peer down: %s", i, st, got)
		}
		if !bytes.Equal(got, want) || tag != wantTag {
			t.Fatalf("req %d: degraded response differs from solo", i)
		}
		var env Envelope
		if err := json.Unmarshal(got, &env); err != nil {
			t.Fatal(err)
		}
		if servers[d].fleet.Owner(env.Key) == tss[2].URL {
			deadOwned++
		}
	}

	var health HealthStatus
	st, _ := getJSON(t, tss[0].URL+"/healthz", &health)
	if st != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz with a peer down: status %d, %+v", st, health)
	}
	if len(health.Peers) != 2 {
		t.Fatalf("healthz peers = %+v, want 2 remotes", health.Peers)
	}
	for _, p := range health.Peers {
		wantReachable := p.URL == tss[1].URL
		if p.Reachable != wantReachable {
			t.Errorf("peer %s reachable = %v, want %v", p.URL, p.Reachable, wantReachable)
		}
	}
	if errs := servers[0].fleet.Stats().Errors + servers[1].fleet.Stats().Errors; errs == 0 {
		t.Error("no peer errors recorded despite serving a key the dead member owns")
	}
}

// TestFleetRejectsCorruptPeerRecords: a peer serving damaged records
// (garbage, wrong-key, bit-flipped CRC) must never poison the cache —
// the fetch fails validation, the daemon computes locally, and the
// response stays solo-identical.
func TestFleetRejectsCorruptPeerRecords(t *testing.T) {
	corruptions := []struct {
		name string
		make func(key string) []byte
	}{
		{"garbage", func(key string) []byte { return []byte("not a record at all") }},
		{"wrong key", func(key string) []byte {
			other := strings.Repeat("0", 63) + "1"
			rec, err := encodeRecord(other, []byte(`{"sneaky":true}`))
			if err != nil {
				t.Fatal(err)
			}
			return rec
		}},
		{"flipped crc", func(key string) []byte {
			rec, err := encodeRecord(key, []byte(`{"sneaky":true}`))
			if err != nil {
				t.Fatal(err)
			}
			rec[len(rec)-1] ^= 0xff
			return rec
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			_, soloTS := newTestServer(t, Options{Workers: 2})
			evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.Method != http.MethodGet {
					w.WriteHeader(http.StatusNoContent)
					return
				}
				key := strings.TrimPrefix(r.URL.Path, "/v1/cache/")
				w.Header().Set("Content-Type", ContentTypeCacheRecord)
				_, _ = w.Write(tc.make(key))
			}))
			defer evil.Close()

			sh := &swapHandler{}
			ts := httptest.NewServer(sh)
			defer ts.Close()
			svc, err := NewServer(Options{Workers: 2,
				Peers: []string{ts.URL, evil.URL}, SelfURL: ts.URL, PeerBudget: 2 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()
			sh.set(svc)

			// Walk seeds until a request's key is owned by the evil peer,
			// so the miss path actually fetches (and must reject) the
			// corrupt record before falling back to compute.
			for seed := int64(0); ; seed++ {
				rq := ScheduleRequest{Matrix: testMatrix(t, 8, 3, 512, 7), Algorithm: "RS_NL", Seed: seed}
				_, want, _ := postCapture(t, soloTS.URL+"/v1/schedule", rq, "")
				st, got, _ := postCapture(t, ts.URL+"/v1/schedule", rq, "")
				if st != http.StatusOK {
					t.Fatalf("status %d against corrupt peer: %s", st, got)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("response differs from solo with corrupt peer\nfleet: %s\nsolo:  %s", got, want)
				}
				var env Envelope
				if err := json.Unmarshal(got, &env); err != nil {
					t.Fatal(err)
				}
				if svc.fleet.Owns(env.Key) {
					continue // the evil peer was never consulted; try another key
				}
				if st := svc.fleet.Stats(); st.Errors == 0 {
					t.Fatalf("corrupt record accepted silently: %+v", st)
				}
				// The poisoned bytes must not have entered the cache: a
				// repeat serves the locally computed result.
				if raw, ok := svc.cache.get(env.Key); !ok {
					t.Fatal("computed result not cached")
				} else if !bytes.Equal(raw, []byte(env.Result)) {
					t.Fatalf("cache holds foreign bytes: %s", raw)
				}
				break
			}
		})
	}
}

// TestFleetCloseDrainsPushes: records computed moments before a clean
// shutdown still reach their owners — Server.Close drains the
// write-behind queue before returning.
func TestFleetCloseDrainsPushes(t *testing.T) {
	sh := make([]*swapHandler, 2)
	tss := make([]*httptest.Server, 2)
	urls := make([]string, 2)
	for i := range sh {
		sh[i] = &swapHandler{}
		tss[i] = httptest.NewServer(sh[i])
		urls[i] = tss[i].URL
		defer tss[i].Close()
	}
	servers := make([]*Server, 2)
	for i := range servers {
		svc, err := NewServer(Options{Workers: 2, Peers: urls, SelfURL: urls[i], PeerBudget: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		sh[i].set(svc)
		servers[i] = svc
	}
	defer servers[1].Close()

	// Post schedule requests to daemon 0 until N of them landed on keys
	// daemon 1 owns; each queues one write-behind push.
	const n = 5
	var owned []string
	for seed := int64(0); len(owned) < n; seed++ {
		rq := ScheduleRequest{Matrix: testMatrix(t, 8, 3, 256, 9), Algorithm: "GREEDY", Seed: seed}
		var env Envelope
		st, raw := postJSON(t, urls[0]+"/v1/schedule", rq, &env)
		if st != http.StatusOK {
			t.Fatalf("status %d: %s", st, raw)
		}
		if !servers[0].fleet.Owns(env.Key) {
			owned = append(owned, env.Key)
		}
	}

	// Close without waiting: the drain is Close's job.
	servers[0].Close()

	for _, key := range owned {
		if _, ok := servers[1].cache.get(key); !ok {
			t.Fatalf("owner missing pushed key %s after Close", key)
		}
		st, _ := getJSON(t, urls[1]+"/v1/cache/"+key, nil)
		if st != http.StatusOK {
			t.Fatalf("owner cache endpoint answered %d for pushed key %s", st, key)
		}
	}
}

// TestCacheEndpointContract pins the internal record endpoints: GET
// serves decodable USCR records (memory first, disk fallback), PUT
// validates before accepting, and bad keys or bodies are rejected.
func TestCacheEndpointContract(t *testing.T) {
	dir := t.TempDir()
	svc, ts := newTestServer(t, Options{Workers: 2, CacheDir: dir})

	var env Envelope
	st, _ := postJSON(t, ts.URL+"/v1/schedule",
		ScheduleRequest{Matrix: testMatrix(t, 8, 3, 512, 3), Algorithm: "RS_NL"}, &env)
	if st != http.StatusOK {
		t.Fatalf("schedule status %d", st)
	}

	// GET from the memory cache: the record must decode back to the
	// exact cached value.
	st, raw := getJSON(t, ts.URL+"/v1/cache/"+env.Key, nil)
	if st != http.StatusOK {
		t.Fatalf("cache get status %d", st)
	}
	key, value, err := decodeRecord(raw)
	if err != nil || key != env.Key {
		t.Fatalf("served record undecodable: %v (key %s)", err, key)
	}
	if !bytes.Equal(value, []byte(env.Result)) {
		t.Fatal("served record value differs from the memoized result")
	}

	// Unknown and invalid keys are 404 — never 500, never a path probe.
	for _, bad := range []string{strings.Repeat("a", 64), "../../etc/passwd", "UPPER", "zz"} {
		if st, _ := getJSON(t, ts.URL+"/v1/cache/"+bad, nil); st != http.StatusNotFound {
			t.Errorf("GET %q: status %d, want 404", bad, st)
		}
	}

	// PUT round trip: a valid record lands in the cache.
	putKey := strings.Repeat("b", 64)
	rec, err := encodeRecord(putKey, []byte(`{"pushed":true}`))
	if err != nil {
		t.Fatal(err)
	}
	doPut := func(key string, body []byte) int {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/cache/"+key, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if st := doPut(putKey, rec); st != http.StatusNoContent {
		t.Fatalf("PUT valid record: status %d", st)
	}
	if got, ok := svc.cache.get(putKey); !ok || string(got) != `{"pushed":true}` {
		t.Fatalf("pushed record not cached: %q ok=%v", got, ok)
	}
	// Mismatched path key, corrupt body: rejected before the cache.
	if st := doPut(strings.Repeat("c", 64), rec); st != http.StatusBadRequest {
		t.Errorf("PUT mismatched key: status %d, want 400", st)
	}
	broken := append([]byte(nil), rec...)
	broken[len(broken)-1] ^= 0xff
	if st := doPut(putKey, broken); st != http.StatusBadRequest {
		t.Errorf("PUT corrupt record: status %d, want 400", st)
	}

	// Disk fallback: a record evicted from memory but present on disk
	// is served verbatim from its file.
	svc.disk.close() // flush the write-behind batch
	onDisk, err := os.ReadFile(filepath.Join(dir, env.Key+recordSuffix))
	if err != nil {
		t.Fatalf("persisted record missing: %v", err)
	}
	fresh := newScheduleCache(16)
	svc.cache = fresh // drop the memory copy
	st, raw = getJSON(t, ts.URL+"/v1/cache/"+env.Key, nil)
	if st != http.StatusOK || !bytes.Equal(raw, onDisk) {
		t.Fatalf("disk-backed GET: status %d, verbatim=%v", st, bytes.Equal(raw, onDisk))
	}
}

func TestDiskStoreReadRecord(t *testing.T) {
	dir := t.TempDir()
	ds, err := newDiskStore(dir, 16, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	key := fakeKey(1)
	if err := ds.writeRecord(key, []byte("value")); err != nil {
		t.Fatal(err)
	}
	raw := ds.readRecord(key)
	if k, v, err := decodeRecord(raw); err != nil || k != key || string(v) != "value" {
		t.Fatalf("readRecord round trip: key %s value %q err %v", k, v, err)
	}
	if ds.readRecord(fakeKey(2)) != nil {
		t.Fatal("absent record should read nil")
	}
	// A damaged file reads as a miss, never ships.
	path := filepath.Join(dir, key+recordSuffix)
	if err := os.WriteFile(path, []byte("scribbled"), 0o644); err != nil {
		t.Fatal(err)
	}
	if ds.readRecord(key) != nil {
		t.Fatal("corrupt record served")
	}
}

// TestFleetOptionValidation: Peers without SelfURL, or malformed peer
// URLs, must fail NewServer loudly.
func TestFleetOptionValidation(t *testing.T) {
	if _, err := NewServer(Options{Peers: []string{"http://a:1"}}); err == nil {
		t.Fatal("Peers without SelfURL accepted")
	}
	if _, err := NewServer(Options{Peers: []string{"::bad::"}, SelfURL: "http://a:1"}); err == nil {
		t.Fatal("malformed peer URL accepted")
	}
}
