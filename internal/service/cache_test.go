package service

import (
	"fmt"
	"sync"
	"testing"

	"unsched/internal/comm"
)

// cacheKeyFor fabricates a realistic hex key with a chosen shard.
func cacheKeyFor(shard int, i int) string {
	return fmt.Sprintf("%x%063x", shard, i)
}

func TestCacheLRUEviction(t *testing.T) {
	// 16 shards x 2 entries each.
	c := newScheduleCache(32)
	shard0 := func(i int) string { return cacheKeyFor(0, i) }

	c.put(shard0(1), []byte("one"))
	c.put(shard0(2), []byte("two"))
	// Touch 1 so 2 is the LRU entry of the shard.
	if v, ok := c.get(shard0(1)); !ok || string(v) != "one" {
		t.Fatal("missing entry 1")
	}
	c.put(shard0(3), []byte("three"))
	if _, ok := c.get(shard0(2)); ok {
		t.Error("LRU entry 2 survived eviction")
	}
	if _, ok := c.get(shard0(1)); !ok {
		t.Error("recently used entry 1 was evicted")
	}
	if _, ok := c.get(shard0(3)); !ok {
		t.Error("new entry 3 missing")
	}
	if n := c.len(); n != 2 {
		t.Errorf("cache len %d, want 2", n)
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := newScheduleCache(32)
	key := cacheKeyFor(4, 7)
	c.put(key, []byte("a"))
	c.put(key, []byte("b"))
	if v, ok := c.get(key); !ok || string(v) != "b" {
		t.Fatalf("refreshed value = %q, %v", v, ok)
	}
	if n := c.len(); n != 1 {
		t.Errorf("duplicate put grew the cache to %d entries", n)
	}
}

// TestCacheGlobalBoundIsExact is the capacity-overshoot regression
// test: shard capacities must sum to exactly maxEntries. Before the
// fix, any maxEntries in [1,15] rounded every shard up to one slot —
// a 16-entry cache wearing a 1-entry label.
func TestCacheGlobalBoundIsExact(t *testing.T) {
	for _, maxEntries := range []int{1, 5, 15, 16, 17, 32, 100} {
		c := newScheduleCache(maxEntries)
		total := 0
		for i := range c.shards {
			total += c.shards[i].max
		}
		if total != maxEntries {
			t.Errorf("newScheduleCache(%d): shard capacities sum to %d", maxEntries, total)
		}
		// Stuffing every shard can never exceed the global bound.
		for shard := 0; shard < cacheShards; shard++ {
			for i := 0; i < 4; i++ {
				c.put(cacheKeyFor(shard, i), []byte("v"))
			}
		}
		if got := c.len(); got > maxEntries {
			t.Errorf("cache bounded at %d holds %d entries", maxEntries, got)
		}
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newScheduleCache(0)
	c.put(cacheKeyFor(0, 1), []byte("x"))
	if _, ok := c.get(cacheKeyFor(0, 1)); ok {
		t.Error("disabled cache returned a hit")
	}
}

func TestCacheShardingSpreadsRealKeys(t *testing.T) {
	// Content-hash keys must not all land in one shard.
	c := newScheduleCache(1 << 16)
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		d := comm.NewDigest()
		d.Int64(int64(i))
		key := d.Hex()
		seen[hexVal(key[0])%cacheShards] = true
		c.put(key, []byte("v"))
	}
	if len(seen) < 8 {
		t.Errorf("64 hash keys landed in only %d shards", len(seen))
	}
	if c.len() != 64 {
		t.Errorf("cache len %d, want 64", c.len())
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := newScheduleCache(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				d := comm.NewDigest()
				d.Int64(int64(i % 37))
				key := d.Hex()
				if i%2 == 0 {
					c.put(key, []byte{byte(i)})
				} else {
					c.get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.len() > 256 {
		t.Errorf("cache exceeded its bound: %d entries", c.len())
	}
}
