package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"unsched/internal/expt"
	"unsched/internal/hypercube"
)

// campaignRequest is the body of POST /v1/campaign: a measurement grid
// in the shape of the paper's §6 protocol, run asynchronously.
type campaignRequest struct {
	Densities []int   `json:"densities"`
	Sizes     []int64 `json:"sizes"`
	// Samples per (density, size) cell; the paper uses 50.
	Samples int   `json:"samples"`
	Seed    int64 `json:"seed,omitempty"`
	// Dim is the hypercube dimension (default 6, the 64-node machine).
	Dim int `json:"dim,omitempty"`
	// Params picks the timing model: "ipsc860" (default) or "ipsc2".
	Params string `json:"params,omitempty"`
}

// campaignCell is one measured (algorithm, density, size) result.
type campaignCell struct {
	Algorithm string  `json:"algorithm"`
	Density   int     `json:"density"`
	MsgBytes  int64   `json:"msg_bytes"`
	CommMS    float64 `json:"comm_ms"`
	CommStd   float64 `json:"comm_std"`
	CompMS    float64 `json:"comp_ms"`
	Iters     float64 `json:"iters"`
}

// campaignStatus is the body of GET /v1/campaign/{id}.
type campaignStatus struct {
	ID    string `json:"id"`
	State string `json:"state"` // running | done | failed
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Error string `json:"error,omitempty"`
	// Cells is populated when State is done, in (density, size,
	// algorithm) order with sizes varying faster than densities.
	Cells []campaignCell `json:"cells,omitempty"`
}

const (
	campaignRunning = "running"
	campaignDone    = "done"
	campaignFailed  = "failed"
)

// campaignJob tracks one asynchronous grid measurement.
type campaignJob struct {
	id    string
	done  atomic.Int64
	total int

	mu    sync.Mutex
	state string
	err   string
	cells []campaignCell
}

func (j *campaignJob) status() campaignStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return campaignStatus{
		ID:    j.id,
		State: j.state,
		Done:  int(j.done.Load()),
		Total: j.total,
		Error: j.err,
		Cells: j.cells,
	}
}

func (j *campaignJob) finish(cells []campaignCell, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		j.state = campaignFailed
		j.err = err.Error()
		return
	}
	j.state = campaignDone
	j.cells = cells
}

// campaignRegistry holds jobs by id, bounding both the number of
// retained jobs (oldest finished jobs are evicted first) and the
// number running concurrently (each running campaign owns a worker
// pool of its own).
type campaignRegistry struct {
	mu      sync.Mutex
	jobs    map[string]*campaignJob
	order   []string // insertion order, for eviction
	nextID  int64
	maxJobs int
	running chan struct{} // semaphore over concurrent campaigns
}

func newCampaignRegistry(maxJobs, maxRunning int) *campaignRegistry {
	return &campaignRegistry{
		jobs:    make(map[string]*campaignJob),
		maxJobs: maxJobs,
		running: make(chan struct{}, maxRunning),
	}
}

// acquire takes a run slot without blocking; false means the service
// is already running its maximum number of campaigns.
func (r *campaignRegistry) acquire() bool {
	select {
	case r.running <- struct{}{}:
		return true
	default:
		return false
	}
}

func (r *campaignRegistry) release() { <-r.running }

// add registers a new running job, evicting the oldest finished job
// when the registry is full. It fails only when every retained job is
// still running.
func (r *campaignRegistry) add(total int) (*campaignJob, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.order) >= r.maxJobs {
		evicted := false
		for i, id := range r.order {
			j := r.jobs[id]
			j.mu.Lock()
			finished := j.state != campaignRunning
			j.mu.Unlock()
			if finished {
				delete(r.jobs, id)
				r.order = append(r.order[:i], r.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return nil, &apiError{status: 429, msg: "campaign registry full; poll existing campaigns first"}
		}
	}
	r.nextID++
	j := &campaignJob{id: fmt.Sprintf("c%06d", r.nextID), state: campaignRunning, total: total}
	r.jobs[j.id] = j
	r.order = append(r.order, j.id)
	return j, nil
}

func (r *campaignRegistry) get(id string) (*campaignJob, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// campaignLimits bound what one request may ask of the service.
const (
	maxCampaignDim     = 10  // 1024 simulated nodes
	maxCampaignSamples = 200 // 4x the paper's protocol
	maxCampaignCells   = 64  // grid points per campaign
	maxCampaignBytes   = 16 << 20
)

// resolveCampaign validates the request and builds the runner config
// and point grid.
func resolveCampaign(req *campaignRequest) (expt.Config, []expt.Point, error) {
	dim := req.Dim
	if dim == 0 {
		dim = 6
	}
	if dim < 1 || dim > maxCampaignDim {
		return expt.Config{}, nil, badRequest("dim %d out of range [1,%d]", dim, maxCampaignDim)
	}
	nodes := 1 << dim
	if req.Samples < 1 || req.Samples > maxCampaignSamples {
		return expt.Config{}, nil, badRequest("samples %d out of range [1,%d]", req.Samples, maxCampaignSamples)
	}
	if len(req.Densities) == 0 || len(req.Sizes) == 0 {
		return expt.Config{}, nil, badRequest("need at least one density and one size")
	}
	if cells := len(req.Densities) * len(req.Sizes); cells > maxCampaignCells {
		return expt.Config{}, nil, badRequest("grid has %d cells, limit %d", cells, maxCampaignCells)
	}
	for _, d := range req.Densities {
		if d <= 0 || d >= nodes {
			return expt.Config{}, nil, badRequest("density %d out of range (0,%d) for a %d-node cube", d, nodes, nodes)
		}
	}
	for _, size := range req.Sizes {
		if size <= 0 || size > maxCampaignBytes {
			return expt.Config{}, nil, badRequest("size %d out of range (0,%d]", size, maxCampaignBytes)
		}
	}
	_, params, err := resolveParams(req.Params)
	if err != nil {
		return expt.Config{}, nil, err
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1994
	}
	cfg := expt.Config{
		Cube:    hypercube.MustNew(dim),
		Params:  params,
		Samples: req.Samples,
		Seed:    seed,
	}
	var points []expt.Point
	for _, d := range req.Densities {
		for _, size := range req.Sizes {
			points = append(points, expt.Point{Density: d, MsgBytes: size})
		}
	}
	return cfg, points, nil
}

// runCampaign executes the grid on its own expt.Runner and stores the
// outcome on the job. It is called on a dedicated goroutine; the
// context is the server's lifetime, so shutdown cancels mid-campaign
// jobs, which then report state failed.
func runCampaign(ctx context.Context, j *campaignJob, cfg expt.Config, points []expt.Point, parallelism int) {
	runner := &expt.Runner{
		Config:      cfg,
		Parallelism: parallelism,
		Progress:    func(done, total int) { j.done.Store(int64(done)) },
	}
	cellMaps, err := runner.MeasureCells(ctx, points)
	if err != nil {
		j.finish(nil, err)
		return
	}
	var cells []campaignCell
	for i, pt := range points {
		for _, alg := range expt.Algorithms {
			c := cellMaps[i][alg]
			cells = append(cells, campaignCell{
				Algorithm: string(alg),
				Density:   pt.Density,
				MsgBytes:  pt.MsgBytes,
				CommMS:    c.CommMS,
				CommStd:   c.CommStd,
				CompMS:    c.CompMS,
				Iters:     c.Iters,
			})
		}
	}
	j.finish(cells, nil)
}
