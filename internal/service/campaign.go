package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"unsched/internal/comm"
	"unsched/internal/expt"
	"unsched/internal/hypercube"
	"unsched/internal/topo"
	"unsched/internal/workload"
)

// CampaignRequest is the body of POST /v1/campaign: a measurement grid
// in the shape of the paper's §6 protocol, run asynchronously on any
// topology and workload the service knows. The grid axis comes in two
// mutually exclusive forms: the classic densities x sizes sweep of the
// paper's uniform workload, or an explicit list of workload specs
// (uniform:D:BYTES, hotspot:D:BYTES:HOT, halo:WxH:BYTES, ... — the
// same grammar the CLI's -workload flag takes; see workload.ParseSpec).
type CampaignRequest struct {
	Densities []int   `json:"densities,omitempty"`
	Sizes     []int64 `json:"sizes,omitempty"`
	// Workloads lists the grid's cells as canonical workload specs.
	// Mutually exclusive with Densities/Sizes. Each spec participates
	// in the campaign's content hash.
	Workloads []string `json:"workloads,omitempty"`
	// Samples per grid cell; the paper uses 50.
	Samples int   `json:"samples"`
	Seed    int64 `json:"seed,omitempty"`
	// Dim is the hypercube dimension (default 6, the 64-node machine).
	// Mutually exclusive with Topology.
	Dim int `json:"dim,omitempty"`
	// Topology names the machine the grid runs on — the same wire form
	// /v1/schedule and /v1/simulate take (cube, mesh, torus, ring,
	// graph). Absent means the hypercube picked by Dim. Its identity is
	// fingerprinted into the campaign's content hash.
	Topology *WireTopology `json:"topology,omitempty"`
	// Params picks the timing model: "ipsc860" (default) or "ipsc2".
	Params string `json:"params,omitempty"`
}

// CampaignCell is one measured (algorithm, workload) result. Density
// and MsgBytes carry the workload's nominal parameters (density 0 for
// the data-dependent kinds).
type CampaignCell struct {
	Algorithm string  `json:"algorithm"`
	Workload  string  `json:"workload"`
	Density   int     `json:"density"`
	MsgBytes  int64   `json:"msg_bytes"`
	CommMS    float64 `json:"comm_ms"`
	CommStd   float64 `json:"comm_std"`
	CompMS    float64 `json:"comp_ms"`
	Iters     float64 `json:"iters"`
}

// CampaignStatus is the body of GET /v1/campaign/{id}.
type CampaignStatus struct {
	ID    string `json:"id"`
	State string `json:"state"` // running | done | failed
	// Key is the campaign's content hash — every input that determines
	// the measured numbers (grid, samples, seed, params, topology) is
	// fingerprinted into it, exactly as schedule/simulate keys are, so
	// identical campaigns are identifiable across jobs and servers.
	Key string `json:"key"`
	// Topology is the canonical name of the machine measured.
	Topology string `json:"topology"`
	Done     int    `json:"done"`
	Total    int    `json:"total"`
	Error    string `json:"error,omitempty"`
	// Cells is populated when State is done, in (density, size,
	// algorithm) order with sizes varying faster than densities.
	Cells []CampaignCell `json:"cells,omitempty"`
}

const (
	campaignRunning = "running"
	campaignDone    = "done"
	campaignFailed  = "failed"
)

// campaignJob tracks one asynchronous grid measurement.
type campaignJob struct {
	id       string
	key      string
	topology string
	done     atomic.Int64
	total    int

	mu    sync.Mutex
	state string
	err   string
	cells []CampaignCell
}

func (j *campaignJob) status() CampaignStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return CampaignStatus{
		ID:       j.id,
		State:    j.state,
		Key:      j.key,
		Topology: j.topology,
		Done:     int(j.done.Load()),
		Total:    j.total,
		Error:    j.err,
		Cells:    j.cells,
	}
}

func (j *campaignJob) finish(cells []CampaignCell, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		j.state = campaignFailed
		j.err = err.Error()
		return
	}
	// Pin the progress counter before the state flips to done: the
	// counter is written by Progress callbacks on runner goroutines,
	// and a status() racing the flip must never see state done with
	// done < total.
	j.done.Store(int64(j.total))
	j.state = campaignDone
	j.cells = cells
}

// campaignRegistry holds jobs by id, bounding both the number of
// retained jobs (oldest finished jobs are evicted first) and the
// number running concurrently (each running campaign owns a worker
// pool of its own).
type campaignRegistry struct {
	mu      sync.Mutex
	jobs    map[string]*campaignJob
	order   []string // insertion order, for eviction
	nextID  int64
	maxJobs int
	running chan struct{} // semaphore over concurrent campaigns
}

func newCampaignRegistry(maxJobs, maxRunning int) *campaignRegistry {
	return &campaignRegistry{
		jobs:    make(map[string]*campaignJob),
		maxJobs: maxJobs,
		running: make(chan struct{}, maxRunning),
	}
}

// acquire takes a run slot without blocking; false means the service
// is already running its maximum number of campaigns.
func (r *campaignRegistry) acquire() bool {
	select {
	case r.running <- struct{}{}:
		return true
	default:
		return false
	}
}

func (r *campaignRegistry) release() { <-r.running }

// add registers a new running job, evicting the oldest finished job
// when the registry is full. It fails only when every retained job is
// still running.
func (r *campaignRegistry) add(total int, key, topology string) (*campaignJob, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.order) >= r.maxJobs {
		evicted := false
		for i, id := range r.order {
			j := r.jobs[id]
			j.mu.Lock()
			finished := j.state != campaignRunning
			j.mu.Unlock()
			if finished {
				delete(r.jobs, id)
				r.order = append(r.order[:i], r.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return nil, &apiError{status: 429, msg: "campaign registry full; poll existing campaigns first"}
		}
	}
	r.nextID++
	j := &campaignJob{id: fmt.Sprintf("c%06d", r.nextID), key: key, topology: topology,
		state: campaignRunning, total: total}
	r.jobs[j.id] = j
	r.order = append(r.order, j.id)
	return j, nil
}

func (r *campaignRegistry) get(id string) (*campaignJob, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// campaignLimits bound what one request may ask of the service.
const (
	maxCampaignDim     = 10  // 1024 simulated nodes
	maxCampaignSamples = 200 // 4x the paper's protocol
	maxCampaignCells   = 64  // grid points per campaign
	maxCampaignBytes   = 16 << 20
)

// resolveCampaign validates the request and builds the runner config,
// point grid, and content-hash key. The topology comes from the
// request's topology field (any kind the service speaks), or from Dim
// as a hypercube; the grid comes from an explicit workload-spec list
// or from the classic densities x sizes sweep — each pair mutually
// exclusive.
func resolveCampaign(req *CampaignRequest) (expt.Config, []expt.Point, string, error) {
	fail := func(err error) (expt.Config, []expt.Point, string, error) {
		return expt.Config{}, nil, "", err
	}
	if req.Topology != nil && req.Dim != 0 {
		return fail(badRequest("dim and topology are mutually exclusive; put the cube in topology"))
	}
	var net topo.Topology
	if req.Topology != nil {
		// buildTopology enforces the maxServiceNodes cap from the spec
		// before paying for the build.
		var err error
		if net, err = buildTopology(req.Topology, 0); err != nil {
			return fail(err)
		}
	} else {
		dim := req.Dim
		if dim == 0 {
			dim = 6
		}
		if dim < 1 || dim > maxCampaignDim {
			return fail(badRequest("dim %d out of range [1,%d]", dim, maxCampaignDim))
		}
		net = hypercube.MustNew(dim)
	}
	nodes := net.Nodes()
	// Campaigns keep the tighter classic cap even though single
	// schedule/simulate requests now go to maxServiceNodes: a grid
	// multiplies every run by cells x samples x algorithms, and the §6
	// protocol never needs more than the dim-10 cube.
	if nodes > 1<<maxCampaignDim {
		return fail(badRequest("campaign topology %s has %d nodes, limit %d", net.Name(), nodes, 1<<maxCampaignDim))
	}
	if nodes&(nodes-1) != 0 {
		// The §6 grid compares all four contenders, and LP's XOR
		// pairing exists only for power-of-two machines; reject here
		// instead of letting the async job fail at its first LP cell.
		return fail(badRequest("campaigns include LP, which needs a power-of-two node count; topology %s has %d nodes", net.Name(), nodes))
	}
	if req.Samples < 1 || req.Samples > maxCampaignSamples {
		return fail(badRequest("samples %d out of range [1,%d]", req.Samples, maxCampaignSamples))
	}
	var specs []workload.Spec
	if len(req.Workloads) > 0 {
		if len(req.Densities) != 0 || len(req.Sizes) != 0 {
			return fail(badRequest("workloads and densities/sizes are mutually exclusive; express the sweep as uniform:D:BYTES specs"))
		}
		if len(req.Workloads) > maxCampaignCells {
			return fail(badRequest("grid has %d cells, limit %d", len(req.Workloads), maxCampaignCells))
		}
		for _, s := range req.Workloads {
			sp, err := resolveWorkloadSpec(s, nodes)
			if err != nil {
				return fail(err)
			}
			specs = append(specs, sp)
		}
	} else {
		if len(req.Densities) == 0 || len(req.Sizes) == 0 {
			return fail(badRequest("need at least one density and one size (or a workloads list)"))
		}
		if cells := len(req.Densities) * len(req.Sizes); cells > maxCampaignCells {
			return fail(badRequest("grid has %d cells, limit %d", cells, maxCampaignCells))
		}
		for _, d := range req.Densities {
			if d <= 0 || d >= nodes {
				return fail(badRequest("density %d out of range (0,%d) for the %d-node %s", d, nodes, nodes, net.Name()))
			}
		}
		for _, size := range req.Sizes {
			if size <= 0 || size > maxCampaignBytes {
				return fail(badRequest("size %d out of range (0,%d]", size, maxCampaignBytes))
			}
		}
		specs = expt.UniformSpecs(req.Densities, req.Sizes)
	}
	paramsName, params, err := resolveParams(req.Params)
	if err != nil {
		return fail(err)
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1994
	}
	cfg := expt.Config{
		Topology: net,
		Params:   params,
		Samples:  req.Samples,
		Seed:     seed,
	}
	key := campaignKey(req, specs, net, paramsName, seed).Hex()
	return cfg, expt.WorkloadPoints(specs), key, nil
}

// resolveWorkloadSpec parses and gates one workload spec against an
// n-node machine: grammar, structural caps (element grids, degrees),
// machine fit, and the service's own size cap — all enforced from the
// spec string BEFORE any O(n^2) matrix or O(elements) mesh build,
// matching the topo.Spec gate.
func resolveWorkloadSpec(s string, nodes int) (workload.Spec, error) {
	sp, err := workload.ParseSpec(s)
	if err != nil {
		return workload.Spec{}, badRequest("%v", err)
	}
	if err := sp.ValidateFor(nodes); err != nil {
		return workload.Spec{}, badRequest("%v", err)
	}
	// Gate the worst-case single message, not the bare per-element
	// size: an aggregating kind (halo, spmv, stencil3d) multiplies its
	// Bytes parameter by the partition-boundary cross section, and the
	// classic densities x sizes path enforces this same cap per
	// message.
	if mb := sp.MaxMessageBytes(); mb > maxCampaignBytes {
		return workload.Spec{}, badRequest("workload %s: worst-case message size %d exceeds the %d-byte limit", sp, mb, int64(maxCampaignBytes))
	}
	return sp, nil
}

// campaignKey hashes everything that determines a campaign's measured
// cells: the grid, samples, seed, timing model, and — like the
// schedule/simulate keys — the topology identity. Classic
// densities x sizes requests hash exactly as they did before the
// workload axis existed, so their keys are stable across versions; a
// workloads request hashes its canonical spec strings instead.
func campaignKey(req *CampaignRequest, specs []workload.Spec, net topo.Topology, paramsName string, seed int64) *comm.Digest {
	d := comm.NewDigest()
	d.String("campaign/v1")
	if len(req.Workloads) > 0 {
		d.String("workloads")
		d.Int64(int64(len(specs)))
		for _, sp := range specs {
			// Hash the canonical form, so "dregular:8:64" and
			// "uniform:8:64" share a key as they share results.
			d.String(sp.String())
		}
	} else {
		d.Int64(int64(len(req.Densities)))
		for _, v := range req.Densities {
			d.Int64(int64(v))
		}
		d.Int64(int64(len(req.Sizes)))
		for _, v := range req.Sizes {
			d.Int64(v)
		}
	}
	d.Int64(int64(req.Samples))
	d.Int64(seed)
	d.String(paramsName)
	fingerprintTopology(d, net)
	return d
}

// runCampaign executes the grid on its own expt.Runner and stores the
// outcome on the job. It is called on a dedicated goroutine; the
// context is the server's lifetime, so shutdown cancels mid-campaign
// jobs, which then report state failed. recalibrate (when non-nil)
// runs after measurement but BEFORE the job reports done, so a client
// that polls a campaign to completion is guaranteed the quality model
// already reflects it.
func runCampaign(ctx context.Context, j *campaignJob, cfg expt.Config, points []expt.Point, parallelism int, recalibrate func()) {
	runner := &expt.Runner{
		Config:      cfg,
		Parallelism: parallelism,
		Progress:    func(done, total int) { j.done.Store(int64(done)) },
	}
	cellMaps, err := runner.MeasureCells(ctx, points)
	if err != nil {
		j.finish(nil, err)
		return
	}
	var cells []CampaignCell
	for i := range points {
		for _, alg := range expt.Algorithms {
			c := cellMaps[i][alg]
			cells = append(cells, CampaignCell{
				Algorithm: string(alg),
				Workload:  c.Workload,
				Density:   c.Density,
				MsgBytes:  c.MsgBytes,
				CommMS:    c.CommMS,
				CommStd:   c.CommStd,
				CompMS:    c.CompMS,
				Iters:     c.Iters,
			})
		}
	}
	if recalibrate != nil {
		recalibrate()
	}
	j.finish(cells, nil)
}
