package service

// Response wire layer: content negotiation, the binary response
// envelope, gzip compression, and content-hash revalidation.
//
// Every synchronous response is a pure function of its content-hash
// key, which makes the key a perfect strong ETag: a client presenting
// If-None-Match with the current ETag can be answered 304 — zero body
// bytes — without touching the cache or the worker pool, because the
// bytes it holds cannot be stale. The response body itself is
// negotiated via Accept: application/json (the default, and the form
// that is memoized and persisted) or application/x-unsched-binary, a
// compact varint envelope over the comm binary matrix codec; either
// can be gzip-compressed via Accept-Encoding. An Accept header
// matching no supported encoding is answered 406 with a structured
// error, never silent JSON.

import (
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"

	"unsched/internal/comm"
)

// Content types the service speaks.
const (
	// ContentTypeJSON is the default response encoding and the only
	// accepted request body encoding.
	ContentTypeJSON = "application/json"
	// ContentTypeBinary is the compact binary response encoding: the
	// "USWR" envelope over varint-coded documents (matrices ride the
	// comm "USWM" codec). Request it with an Accept header.
	ContentTypeBinary = "application/x-unsched-binary"
	// ContentTypeNDJSON is the streaming batch response encoding: one
	// JSON document per line, flushed as each item finishes.
	ContentTypeNDJSON = "application/x-ndjson"
)

// encoding indexes the negotiated response encodings, including into
// the Server's per-encoding metrics arrays.
type encoding int

const (
	encJSON encoding = iota
	encBinary
	numEncodings
)

var encodingNames = [numEncodings]string{"json", "binary"}

// compression indexes Content-Encoding variants in the metrics arrays.
const (
	compIdentity = iota
	compGzip
	numCompressions
)

var compressionNames = [numCompressions]string{"identity", "gzip"}

// conneg is the outcome of negotiating one request's response form.
type conneg struct {
	enc  encoding
	gzip bool
}

// negotiateEncoding picks the response encoding from the Accept
// header. An absent or empty header, */*, application/* and
// application/json select JSON; application/x-unsched-binary selects
// the binary envelope; the first supported media range in header order
// wins. A header that matches no supported encoding is a 406 — the
// client asked for something this API cannot produce, and answering
// JSON anyway would hand an unparseable body to a strict client.
func negotiateEncoding(r *http.Request) (encoding, error) {
	accept := r.Header.Get("Accept")
	if strings.TrimSpace(accept) == "" {
		return encJSON, nil
	}
	for _, rng := range strings.Split(accept, ",") {
		mediaType, _, _ := strings.Cut(rng, ";")
		switch strings.ToLower(strings.TrimSpace(mediaType)) {
		case "*/*", "application/*", ContentTypeJSON:
			return encJSON, nil
		case ContentTypeBinary:
			return encBinary, nil
		}
	}
	return 0, &apiError{status: http.StatusNotAcceptable, code: CodeNotAcceptable,
		msg: fmt.Sprintf("no supported encoding in Accept %q (supported: %s, %s)",
			accept, ContentTypeJSON, ContentTypeBinary)}
}

// acceptsGzip reports whether the client's Accept-Encoding allows a
// gzip response body.
func acceptsGzip(r *http.Request) bool {
	for _, tok := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		name, params, _ := strings.Cut(tok, ";")
		if strings.ToLower(strings.TrimSpace(name)) != "gzip" {
			continue
		}
		// "gzip;q=0" explicitly forbids it.
		q := strings.ReplaceAll(strings.ToLower(strings.TrimSpace(params)), " ", "")
		return q != "q=0" && q != "q=0.0" && q != "q=0.00" && q != "q=0.000"
	}
	return false
}

// checkRequestContentType gates request bodies to JSON: the request
// grammar is JSON-only (responses are what get big; see README), so a
// body labeled anything else is a 415 instead of a confusing JSON
// parse error.
func checkRequestContentType(r *http.Request) error {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return nil
	}
	mediaType, _, _ := strings.Cut(ct, ";")
	switch strings.ToLower(strings.TrimSpace(mediaType)) {
	case ContentTypeJSON:
		return nil
	case "application/x-www-form-urlencoded":
		// curl -d's default label. Every release before the 415 gate
		// accepted it (the body still has to parse as JSON), so keep
		// the README's bare `curl -d '{...}'` working.
		return nil
	}
	return &apiError{status: http.StatusUnsupportedMediaType, code: CodeUnsupportedMedia,
		msg: fmt.Sprintf("request bodies must be %s, got %q", ContentTypeJSON, ct)}
}

// etagFor returns the strong ETag of the (key, encoding)
// representation. The two encodings are distinct representations of
// one resource, so each carries its own validator, as strong ETags
// require.
func etagFor(key string, enc encoding) string {
	if enc == encBinary {
		return `"` + key + `+b"`
	}
	return `"` + key + `"`
}

// ifNoneMatchHit reports whether the request's If-None-Match header
// matches etag. Comparison is weak (a W/ prefix is ignored): the
// response is a pure function of the key, so a client holding any
// prior representation of it holds current bytes.
func ifNoneMatchHit(r *http.Request, etag string) bool {
	header := r.Header.Get("If-None-Match")
	if header == "" {
		return false
	}
	for _, candidate := range strings.Split(header, ",") {
		candidate = strings.TrimSpace(candidate)
		candidate = strings.TrimPrefix(candidate, "W/")
		if candidate == etag || candidate == "*" {
			return true
		}
	}
	return false
}

// variantKey returns the cache key of the (key, encoding) variant.
// JSON is the canonical representation and keeps the bare content-hash
// key — that is what the disk store persists and what warm restart
// reloads; the binary rendering is cached in memory under a suffixed
// key and is always re-derivable from the JSON bytes.
func variantKey(key string, enc encoding) string {
	if enc == encBinary {
		return key + "#b"
	}
	return key
}

// --- binary response envelope ---------------------------------------

// Binary response layout (the "USWR" format, version 1):
//
//	offset size  field
//	0      4     magic "USWR"
//	4      1     format version (1)
//	5      1     flags (bit 0: served from cache)
//	6      ...   uvarint key length, then the key (hex content hash)
//	...    ...   document payload (see below)
//
// The payload starts with a one-byte document type (1 = schedule
// result, 2 = simulate result) followed by the document's fields.
// Strings are uvarint-length-prefixed; integers are uvarints (zigzag
// for signed); floats are 8-byte big-endian IEEE-754 bit patterns;
// matrices are uvarint-length-prefixed comm "USWM" blocks. The
// payload (type byte included) is what the binary response cache
// memoizes; the envelope prefix is stamped per response, because the
// cached flag differs between the first answer and replays.
const (
	binaryWireVersion = 1

	docTypeSchedule = 1
	docTypeSimulate = 2
)

var binaryWireMagic = [4]byte{'U', 'S', 'W', 'R'}

// appendBinaryEnvelope wraps an encoded document payload in the
// response envelope.
func appendBinaryEnvelope(dst []byte, key string, cached bool, payload []byte) []byte {
	dst = append(dst, binaryWireMagic[:]...)
	dst = append(dst, binaryWireVersion)
	var flags byte
	if cached {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = comm.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	return append(dst, payload...)
}

func appendString(dst []byte, s string) []byte {
	dst = comm.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendZigzag(dst []byte, v int64) []byte {
	return comm.AppendUvarint(dst, uint64(v<<1)^uint64(v>>63))
}

func appendFloat(dst []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
}

// wireDoc is a response document that knows its binary payload form.
// Both memoizable documents (schedule and simulate results) implement
// it, which is what lets the wire layer render a cached JSON document
// into the binary encoding without recomputing anything.
type wireDoc interface {
	appendBinaryPayload(dst []byte) []byte
}

func (res *ScheduleResult) appendBinaryPayload(dst []byte) []byte {
	dst = append(dst, docTypeSchedule)
	dst = appendString(dst, res.Chosen)
	dst = appendString(dst, res.Topology)
	dst = appendString(dst, res.Workload)
	dst = appendZigzag(dst, res.Seed)
	dst = appendBool(dst, res.LinkFree)
	if res.Matrix == nil {
		dst = appendBool(dst, false)
	} else {
		dst = appendBool(dst, true)
		dst = appendWireMatrix(dst, res.Matrix)
	}
	if res.Schedule == nil {
		return appendBool(dst, false)
	}
	dst = appendBool(dst, true)
	dst = appendString(dst, res.Schedule.Algorithm)
	dst = comm.AppendUvarint(dst, uint64(res.Schedule.N))
	dst = appendZigzag(dst, res.Schedule.Ops)
	dst = comm.AppendUvarint(dst, uint64(len(res.Schedule.Phases)))
	for _, p := range res.Schedule.Phases {
		dst = appendWirePhase(dst, p)
	}
	return dst
}

// appendWirePhase writes one phase column-oriented: every source
// (zigzag delta — the server emits them ascending, so these are tiny),
// then every destination, then every size. Grouping like values is
// what makes the gzip layer effective: the size column of a uniform
// workload is a run of identical varints, and the source deltas are
// almost all 1 — both nearly free after compression, leaving the
// irreducible destination entropy as the wire cost.
func appendWirePhase(dst []byte, p WirePhase) []byte {
	dst = comm.AppendUvarint(dst, uint64(len(p)))
	prev := int64(0)
	for _, msg := range p {
		dst = appendZigzag(dst, msg[0]-prev)
		prev = msg[0]
	}
	for _, msg := range p {
		dst = appendZigzag(dst, msg[1])
	}
	for _, msg := range p {
		dst = appendZigzag(dst, msg[2])
	}
	return dst
}

// appendWireMatrix writes a length-prefixed comm binary matrix block.
// The wire matrix was produced by the service itself (a workload echo)
// so it is structurally valid by construction.
func appendWireMatrix(dst []byte, mj *WireMatrix) []byte {
	m := comm.MustNew(mj.N)
	for _, msg := range mj.Messages {
		m.Set(int(msg[0]), int(msg[1]), msg[2])
	}
	block := m.EncodeBinary()
	dst = comm.AppendUvarint(dst, uint64(len(block)))
	return append(dst, block...)
}

func (res *SimulateResult) appendBinaryPayload(dst []byte) []byte {
	dst = append(dst, docTypeSimulate)
	dst = appendString(dst, res.Topology)
	dst = appendString(dst, res.Protocol)
	dst = appendFloat(dst, res.MakespanUS)
	dst = comm.AppendUvarint(dst, uint64(res.Transfers))
	dst = comm.AppendUvarint(dst, uint64(res.Exchanges))
	return appendFloat(dst, res.ResourceWaitUS)
}

// --- binary response decoding ---------------------------------------

// BinaryResponse is a decoded binary response envelope: the memoized
// key, the cached flag, and exactly one of the document fields.
type BinaryResponse struct {
	Key      string
	Cached   bool
	Schedule *ScheduleResult
	Simulate *SimulateResult
}

var errBinaryResponse = errors.New("service: malformed binary response")

// binReader is a bounds-checked cursor over a binary payload; the
// first failed read poisons it, so decoders check err once at the end.
type binReader struct {
	b   []byte
	err error
}

func (r *binReader) fail() {
	if r.err == nil {
		r.err = errBinaryResponse
	}
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, k, err := comm.ReadUvarint(r.b)
	if err != nil {
		r.fail()
		return 0
	}
	r.b = r.b[k:]
	return v
}

func (r *binReader) zigzag() int64 {
	v := r.uvarint()
	return int64(v>>1) ^ -int64(v&1)
}

func (r *binReader) str() string {
	n := r.uvarint()
	if r.err != nil || uint64(len(r.b)) < n {
		r.fail()
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *binReader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil || uint64(len(r.b)) < n {
		r.fail()
		return nil
	}
	b := r.b[:n]
	r.b = r.b[n:]
	return b
}

func (r *binReader) boolean() bool {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return false
	}
	v := r.b[0]
	r.b = r.b[1:]
	if v > 1 {
		r.fail()
	}
	return v == 1
}

func (r *binReader) float() float64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.b[:8]))
	r.b = r.b[8:]
	return v
}

// DecodeBinaryResponse parses a binary ("USWR") response body. The
// decoder is total: malformed input yields an error, never a panic.
// Clients (cmd/unsched -binary, the wireclient example) use it to read
// what the service serves under Accept: application/x-unsched-binary.
func DecodeBinaryResponse(b []byte) (*BinaryResponse, error) {
	if len(b) < 6 {
		return nil, errBinaryResponse
	}
	if [4]byte(b[:4]) != binaryWireMagic {
		return nil, errBinaryResponse
	}
	if b[4] != binaryWireVersion {
		return nil, fmt.Errorf("service: unsupported binary response version %d", b[4])
	}
	flags := b[5]
	r := &binReader{b: b[6:]}
	out := &BinaryResponse{Key: r.str(), Cached: flags&1 != 0}
	if r.err != nil || len(r.b) < 1 {
		return nil, errBinaryResponse
	}
	docType := r.b[0]
	r.b = r.b[1:]
	switch docType {
	case docTypeSchedule:
		out.Schedule = decodeSchedulePayload(r)
	case docTypeSimulate:
		out.Simulate = &SimulateResult{
			Topology:       r.str(),
			Protocol:       r.str(),
			MakespanUS:     r.float(),
			Transfers:      int(r.uvarint()),
			Exchanges:      int(r.uvarint()),
			ResourceWaitUS: r.float(),
		}
		if out.Simulate != nil {
			out.Simulate.MakespanMS = out.Simulate.MakespanUS / 1000
		}
	default:
		return nil, fmt.Errorf("service: unknown binary document type %d", docType)
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, errBinaryResponse
	}
	return out, nil
}

func decodeSchedulePayload(r *binReader) *ScheduleResult {
	res := &ScheduleResult{
		Chosen:   r.str(),
		Topology: r.str(),
		Workload: r.str(),
		Seed:     r.zigzag(),
		LinkFree: r.boolean(),
	}
	if r.boolean() { // matrix present
		block := r.bytes()
		if r.err == nil {
			m, err := comm.DecodeMatrixBinary(block)
			if err != nil {
				r.fail()
			} else {
				res.Matrix = NewWireMatrix(m)
			}
		}
	}
	if !r.boolean() { // no schedule (AC never reaches here, but stay total)
		return res
	}
	sj := &WireSchedule{
		Algorithm: r.str(),
		N:         int(r.uvarint()),
		Ops:       r.zigzag(),
	}
	phases := r.uvarint()
	if r.err != nil || phases > uint64(len(r.b)) {
		r.fail()
		return res
	}
	sj.Phases = make([]WirePhase, 0, phases)
	for p := uint64(0); p < phases && r.err == nil; p++ {
		count := r.uvarint()
		if r.err != nil || count > uint64(len(r.b)) {
			r.fail()
			return res
		}
		phase := make(WirePhase, count)
		prev := int64(0)
		for e := range phase {
			prev += r.zigzag()
			phase[e][0] = prev
		}
		for e := range phase {
			phase[e][1] = r.zigzag()
		}
		for e := range phase {
			phase[e][2] = r.zigzag()
		}
		sj.Phases = append(sj.Phases, phase)
	}
	res.Schedule = sj
	return res
}

// --- response writing -----------------------------------------------

// gzipPool recycles gzip writers: compressing every large response
// must not allocate a fresh 256 KB deflate state per request.
var gzipPool = sync.Pool{
	New: func() any { return gzip.NewWriter(nil) },
}

// countingWriter tallies the bytes that actually reach the wire, so
// the bytes-saved metrics can compare them with the logical body size.
type countingWriter struct {
	w http.ResponseWriter
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// writeNegotiated writes body (the complete response document in cn's
// encoding) with the negotiated headers and compression, and records
// the encoding/bytes metrics. body is the logical representation;
// what hits the wire may be its gzip form.
func (s *Server) writeNegotiated(w http.ResponseWriter, cn conneg, key string, body []byte) {
	h := w.Header()
	h.Set("Vary", "Accept, Accept-Encoding")
	h.Set("ETag", etagFor(key, cn.enc))
	if cn.enc == encBinary {
		h.Set("Content-Type", ContentTypeBinary)
	} else {
		h.Set("Content-Type", ContentTypeJSON)
	}
	comp := compIdentity
	if cn.gzip {
		comp = compGzip
		h.Set("Content-Encoding", "gzip")
	}
	w.WriteHeader(http.StatusOK)
	cw := &countingWriter{w: w}
	if cn.gzip {
		gz := gzipPool.Get().(*gzip.Writer)
		gz.Reset(cw)
		_, _ = gz.Write(body)
		_ = gz.Close() // the client is gone if either fails; nothing to do
		gzipPool.Put(gz)
		if saved := int64(len(body)) - cw.n; saved > 0 {
			s.bytesSaved.Add(saved)
		}
	} else {
		_, _ = cw.Write(body)
	}
	s.respCount[cn.enc][comp].Add(1)
	s.respBytes[cn.enc][comp].Add(cw.n)
}

// writeNotModified answers an If-None-Match revalidation with 304 and
// zero body bytes. knownSize is the cached representation's size when
// the cache still holds it (counted as bytes saved), or 0.
func (s *Server) writeNotModified(w http.ResponseWriter, cn conneg, key string, knownSize int) {
	h := w.Header()
	h.Set("Vary", "Accept, Accept-Encoding")
	h.Set("ETag", etagFor(key, cn.enc))
	w.WriteHeader(http.StatusNotModified)
	s.http304.Add(1)
	if knownSize > 0 {
		s.bytesSaved.Add(int64(knownSize))
	}
}
