package service

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"unsched/internal/comm"
	"unsched/internal/costmodel"
	"unsched/internal/hypercube"
	"unsched/internal/sched"
	"unsched/internal/topo"
	"unsched/internal/workload"
)

// maxRequestBytes bounds a request body. Bodies are decoded on the
// HTTP goroutine before pool backpressure can engage, so this cap —
// sized to fit a fully dense maxServiceNodes matrix (~24 MB of
// triples) with headroom and nothing more — is the per-connection
// memory bound. Larger bodies get an explicit 413.
const maxRequestBytes = 32 << 20

// maxServiceNodes bounds the machine size one synchronous request may
// target. Simulator state is O(n^2) — ~150 MB at this cap — so huge
// machines are built per request instead of cached (see
// worker.machine), and their route tables fall back to lazy on-the-fly
// routing instead of the precomputed dense form (see tableCache).
// Campaigns stay capped at 1 << maxCampaignDim nodes: a grid multiplies
// the per-run cost by cells x samples x algorithms.
const maxServiceNodes = 4096

// maxRouteTableHops bounds the PRECOMPUTED route-table footprint,
// measured as NewRouteTable's presize estimate n^2*(diameter+1)/2
// int32 hop entries (~268 MB of hops). It is a representation budget,
// not an admission gate: the shared tableCache builds every topology
// under it dense — word-mask bitset occupancy, O(1) hop lookups — and
// anything over it (a 1024-node path graph's diameter-1023 table would
// be ~2 GB) as a lazy table that generates routes on the fly. The
// budget admits every cube/mesh/torus the service served before graphs
// existed; the worst is the 32x32 mesh at ~33M hops.
const maxRouteTableHops = 1 << 26

// Stable machine-readable error codes, carried in every error
// response's envelope (ErrorEnvelope.Err.Code). Clients branch on
// these, never on message text: messages may be reworded, codes are a
// versioned contract.
const (
	CodeBadRequest          = "bad_request"
	CodeUnknownAlgorithm    = "unknown_algorithm"
	CodeBackpressure        = "backpressure"
	CodePayloadTooLarge     = "payload_too_large"
	CodeNotAcceptable       = "not_acceptable"
	CodeUnsupportedMedia    = "unsupported_media_type"
	CodeNotFound            = "not_found"
	CodeClientClosedRequest = "client_closed_request"
	CodeShuttingDown        = "shutting_down"
	CodeSimulationLimit     = "simulation_limit"
	CodeInternal            = "internal"
)

// codeForStatus maps an HTTP status to its default error code; errors
// carrying a more specific condition set their code explicitly.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotAcceptable:
		return CodeNotAcceptable
	case http.StatusUnsupportedMediaType:
		return CodeUnsupportedMedia
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusRequestEntityTooLarge:
		return CodePayloadTooLarge
	case http.StatusTooManyRequests:
		return CodeBackpressure
	case statusClientClosedRequest:
		return CodeClientClosedRequest
	case http.StatusServiceUnavailable:
		return CodeShuttingDown
	default:
		return CodeInternal
	}
}

// apiError is an error with an HTTP status and a stable machine
// readable code. Handlers convert every failure into one so clients
// always get a structured error document.
type apiError struct {
	status int
	code   string // empty means codeForStatus(status)
	msg    string
}

func (e *apiError) Error() string { return e.msg }

// Code returns the error's stable machine-readable code.
func (e *apiError) Code() string {
	if e.code != "" {
		return e.code
	}
	return codeForStatus(e.status)
}

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// codedRequest is badRequest with a specific machine-readable code.
func codedRequest(code, format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: code, msg: fmt.Sprintf(format, args...)}
}

// --- wire types -----------------------------------------------------

// WireMatrix is the wire form of a communication matrix: the dimension
// and the nonzero entries as [src, dst, bytes] triples.
type WireMatrix struct {
	N        int        `json:"n"`
	Messages [][3]int64 `json:"messages"`
}

// WireTopology names the network a request targets, in either of two
// equivalent forms: the structured fields (kind "cube" uses Dim,
// "mesh"/"torus" use W x H, "ring"/"graph" use N and Edges), or the
// canonical spec string ("torus:8x8" — the same grammar the CLI's
// -topo flag takes; see topo.ParseSpec). Setting both is an error.
type WireTopology struct {
	Kind  string   `json:"kind,omitempty"`
	Dim   int      `json:"dim,omitempty"`
	W     int      `json:"w,omitempty"`
	H     int      `json:"h,omitempty"`
	N     int      `json:"n,omitempty"`
	Edges [][2]int `json:"edges,omitempty"`
	Spec  string   `json:"spec,omitempty"`
}

// ScheduleRequest is the body of POST /v1/schedule. The pattern to
// schedule comes in one of two mutually exclusive forms: an explicit
// matrix, or a workload spec the service generates server-side
// (deterministically, from the request's content hash) against an
// explicitly sized topology.
type ScheduleRequest struct {
	Matrix *WireMatrix `json:"matrix,omitempty"`
	// Workload names a generated pattern by its canonical spec
	// ("uniform:8:4096", "halo:64x64:512", ... — see
	// workload.ParseSpec). Requires an explicit topology (the spec is
	// machine-sized at build time) and excludes Matrix. The spec
	// participates in the cache key, and the generated matrix is
	// returned in the result so the client can feed /v1/simulate.
	Workload string `json:"workload,omitempty"`
	// Algorithm is AC, LP, RS_N, RS_NL, RS_NL_SZ, GREEDY, GREEDY_LF,
	// GREEDY_LF_LINK, or "auto" (the default). Auto resolves to a
	// concrete tag BEFORE the request is fingerprinted — through the
	// calibrated quality model when the daemon has one (see
	// Options.QualityStore), through the committed fallback table
	// otherwise — so an auto request shares its cache slot, ETag, and
	// bit-identical response with the equivalent direct request.
	Algorithm string        `json:"algorithm,omitempty"`
	Topology  *WireTopology `json:"topology,omitempty"`
	// AutoRace, with algorithm "auto", additionally runs the model's
	// top-ranked candidates on free workers and answers with the one
	// whose simulated makespan plus modeled scheduling time is lowest
	// (ties broken on the tag, so the winner is deterministic). Every
	// candidate is computed under its own content key, so racing warms
	// the cache for the losers too. Ignored for concrete algorithms.
	AutoRace bool `json:"auto_race,omitempty"`
	// Seed perturbs the randomized schedulers and the generated
	// workload. It is part of the cache key; the effective RNG seed is
	// derived from the full request content, so identical requests
	// always produce identical patterns and schedules, seed field
	// present or not.
	Seed int64 `json:"seed,omitempty"`
}

// WirePhase is one schedule phase as [src, dst, bytes] triples.
type WirePhase [][3]int64

// WireSchedule is the wire form of a computed schedule, reusable as
// the input of /v1/simulate.
type WireSchedule struct {
	Algorithm string      `json:"algorithm"`
	N         int         `json:"n"`
	Ops       int64       `json:"ops"`
	Phases    []WirePhase `json:"phases"`
}

// ScheduleResult is the cached payload of a /v1/schedule response.
type ScheduleResult struct {
	// Chosen is the concrete algorithm that ran ("auto" resolves here).
	Chosen   string `json:"chosen"`
	Topology string `json:"topology"`
	// Workload is the canonical spec of a server-generated pattern
	// (requests that sent an explicit matrix omit it).
	Workload string `json:"workload,omitempty"`
	// Matrix echoes the server-generated pattern for workload requests,
	// so the client can hand it to /v1/simulate (AC runs need it) or
	// inspect what was scheduled.
	Matrix *WireMatrix `json:"matrix,omitempty"`
	// Seed is the effective RNG seed, derived from the request content.
	Seed     int64         `json:"seed"`
	LinkFree bool          `json:"link_free"`
	Schedule *WireSchedule `json:"schedule"`
}

// SimulateRequest is the body of POST /v1/simulate. Algorithm AC needs
// Matrix instead of Schedule phases; everything else needs Schedule.
type SimulateRequest struct {
	Schedule *WireSchedule `json:"schedule"`
	Matrix   *WireMatrix   `json:"matrix,omitempty"`
	Topology *WireTopology `json:"topology,omitempty"`
	// Params picks the timing model: "ipsc860" (default) or "ipsc2".
	Params string `json:"params,omitempty"`
	// Protocol is "auto" (default: the pairing the paper uses for the
	// schedule's algorithm), "S1", "S2", or "LP".
	Protocol string `json:"protocol,omitempty"`
}

// SimulateResult is the cached payload of a /v1/simulate response.
type SimulateResult struct {
	Topology       string  `json:"topology"`
	Protocol       string  `json:"protocol"`
	MakespanUS     float64 `json:"makespan_us"`
	MakespanMS     float64 `json:"makespan_ms"`
	Transfers      int     `json:"transfers"`
	Exchanges      int     `json:"exchanges"`
	ResourceWaitUS float64 `json:"resource_wait_us"`
}

// Envelope is the outer document of every synchronous response. Result
// is the memoized part: on a cache hit it is returned byte for byte as
// first computed.
type Envelope struct {
	Key    string          `json:"key"`
	Cached bool            `json:"cached"`
	Result json.RawMessage `json:"result"`
}

// CampaignAccepted is the 202 body of POST /v1/campaign: where the
// accepted job lives. Key is the campaign's content-hash identity, so
// a client can recognize a re-submitted grid.
type CampaignAccepted struct {
	ID  string `json:"id"`
	Key string `json:"key"`
	URL string `json:"url"`
}

// HealthStatus is the body of GET /healthz.
type HealthStatus struct {
	Status  string `json:"status"`
	Workers int    `json:"workers"`
	// Peers reports per-peer reachability in fleet mode (absent solo).
	// Unreachable peers never flip Status: fleet lookups degrade to
	// local compute, so peer health is advisory, not liveness.
	Peers []PeerHealth `json:"peers,omitempty"`
}

// PeerHealth is one fleet peer's reachability as probed by /healthz.
type PeerHealth struct {
	URL       string `json:"url"`
	Reachable bool   `json:"reachable"`
}

// ErrorDetail is the structured half of an error response: a stable
// machine-readable code (one of the Code* constants) plus the human
// message.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope is the body of every non-2xx response. Error is the
// legacy bare-message field, kept for one release so existing clients
// keep parsing; Err carries the versioned structured form — new
// clients should branch on Err.Code and ignore Error.
type ErrorEnvelope struct {
	Error string      `json:"error"`
	Err   ErrorDetail `json:"error_v2"`
}

// --- decoding and resolution ----------------------------------------

// decodeJSON strictly decodes one JSON document of the request body
// into v, answering oversized bodies with an explicit 413 instead of
// a misleading truncation error.
func decodeJSON(r *http.Request, v any) error {
	if r.ContentLength > maxRequestBytes {
		return &apiError{status: http.StatusRequestEntityTooLarge,
			msg: fmt.Sprintf("request body %d bytes exceeds limit %d", r.ContentLength, maxRequestBytes)}
	}
	// Chunked bodies carry no length up front; cap them and surface
	// the same 413 when the limit is actually hit.
	limited := &io.LimitedReader{R: r.Body, N: maxRequestBytes + 1}
	dec := json.NewDecoder(limited)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if limited.N <= 0 {
			return &apiError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds limit %d", maxRequestBytes)}
		}
		return badRequest("bad request body: %v", err)
	}
	// Trailing garbage after the document is a malformed request.
	if dec.More() {
		return badRequest("bad request body: trailing data after JSON document")
	}
	return nil
}

// resolveMatrix validates the wire matrix and builds the dense form.
func resolveMatrix(mj *WireMatrix) (*comm.Matrix, error) {
	if mj == nil {
		return nil, badRequest("missing matrix")
	}
	if mj.N < 2 || mj.N > maxServiceNodes {
		return nil, badRequest("matrix n=%d out of range [2,%d]", mj.N, maxServiceNodes)
	}
	m, err := comm.New(mj.N)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	if max := mj.N * (mj.N - 1); len(mj.Messages) > max {
		return nil, badRequest("%d messages for n=%d; a matrix holds at most %d", len(mj.Messages), mj.N, max)
	}
	for k, msg := range mj.Messages {
		src, dst, bytes := msg[0], msg[1], msg[2]
		if src < 0 || src >= int64(mj.N) || dst < 0 || dst >= int64(mj.N) {
			return nil, badRequest("message %d: node out of range [0,%d)", k, mj.N)
		}
		if src == dst {
			return nil, badRequest("message %d: self message %d->%d", k, src, dst)
		}
		if bytes <= 0 {
			return nil, badRequest("message %d: size %d must be positive", k, bytes)
		}
		if m.At(int(src), int(dst)) != 0 {
			// Silently overwriting (or summing) ambiguous input would
			// hand back a 200 for a matrix the client didn't mean.
			return nil, badRequest("message %d: duplicate entry %d->%d", k, src, dst)
		}
		m.Set(int(src), int(dst), bytes)
	}
	return m, nil
}

// NewWireMatrix converts a dense matrix back to wire form.
func NewWireMatrix(m *comm.Matrix) *WireMatrix {
	msgs := m.Messages()
	out := &WireMatrix{N: m.N(), Messages: make([][3]int64, len(msgs))}
	for i, msg := range msgs {
		out.Messages[i] = [3]int64{int64(msg.Src), int64(msg.Dst), msg.Bytes}
	}
	return out
}

// resolveTopology builds the network a schedule/simulate request
// targets; nil defaults to the hypercube sized for the matrix's n
// nodes, and an explicit topology must agree with n.
func resolveTopology(tj *WireTopology, n int) (topo.Topology, error) {
	if tj == nil {
		net, err := hypercube.ForNodes(n)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		return net, nil
	}
	return buildTopology(tj, n)
}

// buildTopology converts the wire topology to a topo.Spec and builds
// it. n > 0 means the caller knows the node count (from a matrix or
// schedule): a cube may then omit dim, a ring may omit n, and the
// built topology must have exactly n nodes. n == 0 (campaigns) means
// the topology itself fixes the machine size, so every extent must be
// explicit.
func buildTopology(tj *WireTopology, n int) (topo.Topology, error) {
	var sp topo.Spec
	switch {
	case tj.Spec != "":
		if tj.Kind != "" || tj.Dim != 0 || tj.W != 0 || tj.H != 0 || tj.N != 0 || len(tj.Edges) != 0 {
			return nil, badRequest("topology spec %q excludes the structured fields", tj.Spec)
		}
		var err error
		if sp, err = topo.ParseSpec(tj.Spec); err != nil {
			return nil, badRequest("%v", err)
		}
	default:
		switch tj.Kind {
		case "", "cube":
			switch {
			case tj.Dim > 0:
				sp = topo.CubeSpec(tj.Dim)
			case n > 0:
				net, err := hypercube.ForNodes(n)
				if err != nil {
					return nil, badRequest("%v", err)
				}
				sp = topo.CubeSpec(net.Dim())
			default:
				return nil, badRequest("cube topology needs dim")
			}
		case "mesh", "torus":
			if tj.W <= 0 || tj.H <= 0 {
				return nil, badRequest("%s topology needs positive w and h", tj.Kind)
			}
			if tj.Kind == "mesh" {
				sp = topo.MeshSpec(tj.W, tj.H)
			} else {
				sp = topo.TorusSpec(tj.W, tj.H)
			}
		case "ring":
			size := tj.N
			if size == 0 {
				size = n
			}
			if size <= 0 {
				return nil, badRequest("ring topology needs n")
			}
			sp = topo.RingSpec(size)
		case "graph":
			if tj.N <= 0 {
				return nil, badRequest("graph topology needs n")
			}
			if len(tj.Edges) == 0 {
				return nil, badRequest("graph topology needs edges")
			}
			sp = topo.GraphSpec(tj.N, tj.Edges)
		default:
			return nil, badRequest("unknown topology kind %q (want cube, mesh, torus, ring, or graph)", tj.Kind)
		}
	}
	if err := sp.Validate(); err != nil {
		return nil, badRequest("%v", err)
	}
	// Reject size violations from the spec alone, BEFORE Build: a
	// graph build allocates O(n^2) routing matrices and runs n BFS
	// passes, far too much work to spend on a request that is about to
	// be answered 400.
	if n > 0 && sp.Nodes() != n {
		return nil, badRequest("topology %s has %d nodes, request has %d", sp, sp.Nodes(), n)
	}
	if sp.Nodes() > maxServiceNodes {
		return nil, badRequest("topology %s has %d nodes, limit %d", sp, sp.Nodes(), maxServiceNodes)
	}
	net, err := sp.Build()
	if err != nil {
		return nil, badRequest("%v", err)
	}
	// No route-table footprint gate here: topologies whose dense table
	// would blow the maxRouteTableHops budget (high-diameter shapes like
	// long rings and big tori) get a lazy table from the shared cache
	// instead — routes generated on the fly, nothing precomputed — so
	// they are served, just without the dense fast path.
	return net, nil
}

// resolveParams picks the timing model by name.
func resolveParams(name string) (string, costmodel.Params, error) {
	switch name {
	case "", "ipsc860":
		return "ipsc860", costmodel.DefaultIPSC860(), nil
	case "ipsc2":
		return "ipsc2", costmodel.DefaultIPSC2(), nil
	default:
		return "", costmodel.Params{}, badRequest("unknown params %q (want ipsc860 or ipsc2)", name)
	}
}

// scheduleWire converts a computed schedule to wire form.
func scheduleWire(s *sched.Schedule) *WireSchedule {
	out := &WireSchedule{
		Algorithm: s.Algorithm,
		N:         s.N,
		Ops:       s.Ops,
		Phases:    make([]WirePhase, len(s.Phases)),
	}
	for k, p := range s.Phases {
		phase := make(WirePhase, 0, p.Messages())
		for i, j := range p.Send {
			if j >= 0 {
				phase = append(phase, [3]int64{int64(i), int64(j), p.Bytes[i]})
			}
		}
		out.Phases[k] = phase
	}
	return out
}

// knownScheduleAlgorithms are the algorithm tags a wire schedule may
// carry into /v1/simulate: everything the system can produce. The tag
// picks the execution protocol under "auto" (resolveProtocol), so an
// unknown tag must be a 400, not a silent fall-through: before this
// set existed, the typo "RS-NL" ran under S2 — the RS_N pairing — and
// changed the measured number instead of erroring.
var knownScheduleAlgorithms = map[string]bool{
	"AC": true, "LP": true, "RS_N": true, "RS_NL": true, "RS_NL_SZ": true,
	"GREEDY": true, "GREEDY_LF": true, "GREEDY_LF_LINK": true,
}

// resolveSchedule validates the wire schedule and builds the phase
// form, rejecting unknown algorithm tags, node contention, and
// out-of-range entries.
func resolveSchedule(sj *WireSchedule) (*sched.Schedule, error) {
	if sj == nil {
		return nil, badRequest("missing schedule")
	}
	if !knownScheduleAlgorithms[sj.Algorithm] {
		// The want-list must name everything knownScheduleAlgorithms
		// accepts — AC included, even though an AC schedule is rejected
		// one gate later for carrying no phases: a client that sent
		// "ac" should learn the tag exists, not that it doesn't.
		return nil, badRequest("unknown schedule algorithm %q (want AC, LP, RS_N, RS_NL, RS_NL_SZ, GREEDY, GREEDY_LF, or GREEDY_LF_LINK)", sj.Algorithm)
	}
	if sj.Algorithm == "AC" {
		// resolveSchedule is only reached for schedules with phases; an
		// AC run is driven by the matrix and has none.
		return nil, badRequest("an AC schedule carries no phases; send the matrix instead")
	}
	n := sj.N
	if n < 2 || n > maxServiceNodes {
		return nil, badRequest("schedule n=%d out of range [2,%d]", n, maxServiceNodes)
	}
	// Every real decomposition is far under 4n phases (LP uses n-1,
	// the randomized schedulers ~d + log d, greedy list scheduling
	// ~2d), and each phase costs O(n) dense storage even when empty —
	// so this cap is what stops a few MB of "[]," phases from
	// allocating gigabytes.
	if len(sj.Phases) > 4*n {
		return nil, badRequest("schedule has %d phases for n=%d; limit %d", len(sj.Phases), n, 4*n)
	}
	s := &sched.Schedule{Algorithm: sj.Algorithm, N: n, Ops: sj.Ops}
	for k, pj := range sj.Phases {
		p := sched.NewPhase(n)
		recvBusy := make([]bool, n)
		for _, msg := range pj {
			src, dst, bytes := msg[0], msg[1], msg[2]
			if src < 0 || src >= int64(n) || dst < 0 || dst >= int64(n) {
				return nil, badRequest("phase %d: node out of range [0,%d)", k, n)
			}
			if src == dst {
				return nil, badRequest("phase %d: self message at P%d", k, src)
			}
			if bytes <= 0 {
				return nil, badRequest("phase %d: size %d must be positive", k, bytes)
			}
			if p.Send[src] != -1 {
				return nil, badRequest("phase %d: P%d sends twice", k, src)
			}
			if recvBusy[dst] {
				return nil, badRequest("phase %d: P%d receives twice", k, dst)
			}
			p.Send[src] = int(dst)
			p.Bytes[src] = bytes
			recvBusy[dst] = true
		}
		s.Phases = append(s.Phases, p)
	}
	return s, nil
}

// --- content hashing ------------------------------------------------

// fingerprintTopology mixes the topology identity into d. Name()
// already encodes kind and extent ("hypercube-6", "mesh-8x8-torus").
func fingerprintTopology(d *comm.Digest, net topo.Topology) {
	d.String("topology")
	d.String(net.Name())
}

// scheduleKey hashes everything that determines a /v1/schedule
// response: matrix content, algorithm, topology, and the client seed.
func scheduleKey(m *comm.Matrix, algorithm string, net topo.Topology, seed int64) *comm.Digest {
	d := comm.NewDigest()
	d.String("schedule/v1")
	m.Fingerprint(d)
	d.String(algorithm)
	fingerprintTopology(d, net)
	d.Int64(seed)
	return d
}

// scheduleWorkloadKey hashes everything that determines a /v1/schedule
// response for a server-generated workload: the canonical spec (so an
// alias spelling shares the cache slot of its canonical form),
// algorithm, topology, and the client seed. The generated pattern
// itself derives from this hash, so it needs no fingerprint of its
// own.
func scheduleWorkloadKey(sp workload.Spec, algorithm string, net topo.Topology, seed int64) *comm.Digest {
	d := comm.NewDigest()
	d.String("schedule/v1")
	d.String("workload")
	d.String(sp.String())
	d.String(algorithm)
	fingerprintTopology(d, net)
	d.Int64(seed)
	return d
}

// simulateKey hashes everything that determines a /v1/simulate
// response: the schedule (or AC matrix), topology, timing model, and
// protocol.
func simulateKey(s *sched.Schedule, m *comm.Matrix, net topo.Topology, paramsName, protocol string) *comm.Digest {
	d := comm.NewDigest()
	d.String("simulate/v1")
	if s != nil {
		d.String(s.Algorithm)
		d.Int64(int64(s.N))
		for _, p := range s.Phases {
			d.String("phase")
			for i, j := range p.Send {
				if j >= 0 {
					d.Int64(int64(i))
					d.Int64(int64(j))
					d.Int64(p.Bytes[i])
				}
			}
		}
	}
	if m != nil {
		m.Fingerprint(d)
	}
	fingerprintTopology(d, net)
	d.String(paramsName)
	d.String(protocol)
	return d
}

// effectiveSeed derives the RNG seed for randomized schedulers from
// the request's content hash, so the same request draws the same
// random numbers no matter when or where it runs.
func effectiveSeed(d *comm.Digest) int64 {
	sum := d.Sum()
	return int64(binary.BigEndian.Uint64(sum[:8]))
}
