package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fakeKey fabricates a valid-looking 64-hex cache key.
func fakeKey(i int) string { return fmt.Sprintf("%064x", i) }

func TestRecordRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		key   string
		value string
	}{
		{fakeKey(1), "a marshaled result document"},
		{fakeKey(2), ""},
		{strings.Repeat("f", 64), strings.Repeat("x", 100000)},
	} {
		rec, err := encodeRecord(tc.key, []byte(tc.value))
		if err != nil {
			t.Fatalf("encode(%q): %v", tc.key, err)
		}
		key, value, err := decodeRecord(rec)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if key != tc.key || string(value) != tc.value {
			t.Errorf("round trip: got (%q, %d bytes), want (%q, %d bytes)",
				key, len(value), tc.key, len(tc.value))
		}
	}
	// Keys that cannot fit the 1-byte length field are refused.
	if _, err := encodeRecord("", nil); err == nil {
		t.Error("empty key encoded")
	}
	if _, err := encodeRecord(strings.Repeat("a", 256), nil); err == nil {
		t.Error("256-byte key encoded")
	}
}

// TestRecordDecodeRejectsDamage: every class of damage the format is
// designed to catch — truncation, bit flips, wrong magic/version,
// length lies, trailing garbage — must come back as an error, never a
// bad (key, value) or a panic.
func TestRecordDecodeRejectsDamage(t *testing.T) {
	rec, err := encodeRecord(fakeKey(7), []byte("the value"))
	if err != nil {
		t.Fatal(err)
	}
	damage := map[string][]byte{
		"empty":            {},
		"header only":      rec[:recordHeaderLen],
		"truncated value":  rec[:len(rec)-6],
		"truncated crc":    rec[:len(rec)-1],
		"trailing garbage": append(append([]byte{}, rec...), 0xEE),
	}
	flip := func(off int) []byte {
		b := append([]byte{}, rec...)
		b[off] ^= 0x40
		return b
	}
	damage["bad magic"] = flip(0)
	damage["bad version"] = flip(4)
	damage["length lie"] = flip(9)
	damage["flipped key byte"] = flip(recordHeaderLen)
	damage["flipped value byte"] = flip(recordHeaderLen + 64)
	damage["flipped crc byte"] = flip(len(rec) - 1)
	for name, b := range damage {
		if _, _, err := decodeRecord(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestWarmRestartServesPersistedResponses is the acceptance test of
// the tentpole: a daemon restarted on the same -cache-dir serves a
// previously computed /v1/schedule and /v1/simulate response
// byte-identically as a cache hit, without recomputing either.
func TestWarmRestartServesPersistedResponses(t *testing.T) {
	dir := t.TempDir()

	schedReq := ScheduleRequest{Matrix: testMatrix(t, 32, 6, 2048, 17), Algorithm: "RS_NL", Seed: 5}
	var schedEnv, simEnv Envelope
	var simReq SimulateRequest
	{
		svc, err := NewServer(Options{Workers: 2, CacheDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		ts := startTestListener(t, svc)
		status, raw := postJSON(t, ts+"/v1/schedule", schedReq, &schedEnv)
		if status != http.StatusOK {
			t.Fatalf("schedule: status %d: %s", status, raw)
		}
		var res ScheduleResult
		if err := json.Unmarshal(schedEnv.Result, &res); err != nil {
			t.Fatal(err)
		}
		simReq = SimulateRequest{Schedule: res.Schedule}
		if status, raw := postJSON(t, ts+"/v1/simulate", simReq, &simEnv); status != http.StatusOK {
			t.Fatalf("simulate: status %d: %s", status, raw)
		}
		svc.Close() // flushes the write-through queue
	}

	// A fresh daemon on the same directory: both responses must come
	// back byte-identical, as cache hits, with zero computations.
	svc, err := NewServer(Options{Workers: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := startTestListener(t, svc)
	if warm := svc.warmLoaded.Load(); warm != 2 {
		t.Errorf("warm-loaded %d entries, want 2", warm)
	}
	var schedEnv2, simEnv2 Envelope
	if status, raw := postJSON(t, ts+"/v1/schedule", schedReq, &schedEnv2); status != http.StatusOK {
		t.Fatalf("restarted schedule: status %d: %s", status, raw)
	}
	if !schedEnv2.Cached {
		t.Error("restarted daemon recomputed the schedule instead of serving the persisted record")
	}
	if schedEnv2.Key != schedEnv.Key || !bytes.Equal(schedEnv2.Result, schedEnv.Result) {
		t.Error("restarted schedule response is not byte-identical to the original")
	}
	if status, raw := postJSON(t, ts+"/v1/simulate", simReq, &simEnv2); status != http.StatusOK {
		t.Fatalf("restarted simulate: status %d: %s", status, raw)
	}
	if !simEnv2.Cached || !bytes.Equal(simEnv2.Result, simEnv.Result) {
		t.Error("restarted simulate response is not a byte-identical cache hit")
	}
	if misses := svc.cacheMisses[epSchedule].Load() + svc.cacheMisses[epSimulate].Load(); misses != 0 {
		t.Errorf("restarted daemon computed %d times; want pure cache hits", misses)
	}
	if errs := svc.disk.loadErrors.Load(); errs != 0 {
		t.Errorf("clean cache dir produced %d load errors", errs)
	}
}

// startTestListener mounts svc on a test listener whose lifetime (and the
// server's) is tied to the test. Unlike newTestServer it takes an
// already-built server, so restart tests can construct and Close their
// own instances mid-test; Close is idempotent, so the cleanup double
// close is harmless.
func startTestListener(t *testing.T, svc *Server) string {
	t.Helper()
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts.URL
}

// TestWarmRestartSkipsCorruptRecords: damaged cache files are skipped,
// counted on the load-error counter, deleted, and never crash startup;
// intact records in the same directory still load.
func TestWarmRestartSkipsCorruptRecords(t *testing.T) {
	dir := t.TempDir()

	// One real response persisted by a real server.
	req := ScheduleRequest{Matrix: testMatrix(t, 16, 4, 1024, 9), Algorithm: "RS_N"}
	var env Envelope
	{
		svc, err := NewServer(Options{Workers: 1, CacheDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		ts := startTestListener(t, svc)
		if status, raw := postJSON(t, ts+"/v1/schedule", req, &env); status != http.StatusOK {
			t.Fatalf("schedule: status %d: %s", status, raw)
		}
		svc.Close()
	}

	// Vandalize the directory: pure garbage, a truncated record, a bit
	// flip in a valid record, and a record whose embedded key disagrees
	// with its filename.
	good, err := encodeRecord(fakeKey(100), []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	write := func(name string, b []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(fakeKey(101)+recordSuffix, []byte("not a record at all"))
	write(fakeKey(102)+recordSuffix, good[:len(good)/2])
	flipped := append([]byte{}, good...)
	flipped[recordHeaderLen+70] ^= 1
	write(fakeKey(103)+recordSuffix, flipped)
	write(fakeKey(104)+recordSuffix, good) // embedded key is fakeKey(100)

	svc, err := NewServer(Options{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatalf("startup on a vandalized cache dir failed: %v", err)
	}
	ts := startTestListener(t, svc)
	if warm := svc.warmLoaded.Load(); warm != 1 {
		t.Errorf("warm-loaded %d entries, want only the intact record", warm)
	}
	if errs := svc.disk.loadErrors.Load(); errs != 4 {
		t.Errorf("load errors = %d, want 4 corrupt records counted", errs)
	}
	// The intact record still serves, byte-identically.
	var env2 Envelope
	if status, _ := postJSON(t, ts+"/v1/schedule", req, &env2); status != http.StatusOK {
		t.Fatal("schedule after corrupt-tolerant load failed")
	}
	if !env2.Cached || !bytes.Equal(env2.Result, env.Result) {
		t.Error("intact record did not serve as a byte-identical hit")
	}
	// The corrupt files were removed so they cannot fail again on the
	// next restart.
	for _, k := range []int{101, 102, 103, 104} {
		if _, err := os.Stat(filepath.Join(dir, fakeKey(k)+recordSuffix)); !os.IsNotExist(err) {
			t.Errorf("corrupt record %d still on disk after load", k)
		}
	}
}

// TestDiskStoreBounds: GC holds the store to its entry and byte
// budgets, evicting oldest records first.
func TestDiskStoreBounds(t *testing.T) {
	dir := t.TempDir()
	ds, err := newDiskStore(dir, 4, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 10; i++ {
		if err := ds.writeRecord(fakeKey(i), []byte(strings.Repeat("v", 64))); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes make age order deterministic.
		if err := os.Chtimes(filepath.Join(dir, fakeKey(i)+recordSuffix), base, base.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	ds.gc()
	if got := ds.records.Load(); got != 4 {
		t.Errorf("after GC: %d records, want the 4 newest", got)
	}
	// The survivors are exactly the newest four.
	for i := 0; i < 10; i++ {
		_, err := os.Stat(filepath.Join(dir, fakeKey(i)+recordSuffix))
		if exists := err == nil; exists != (i >= 6) {
			t.Errorf("record %d: exists=%v after entry GC", i, exists)
		}
	}

	// Byte budget: records of ~150 bytes each under a 400-byte cap.
	dir2 := t.TempDir()
	ds2, err := newDiskStore(dir2, 100, 400)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := ds2.writeRecord(fakeKey(i), bytes.Repeat([]byte("x"), 76)); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(filepath.Join(dir2, fakeKey(i)+recordSuffix), base, base.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	ds2.gc()
	if got := ds2.bytes.Load(); got > 400 {
		t.Errorf("after byte GC: %d bytes on disk, budget 400", got)
	}
	if got := ds2.records.Load(); got != 2 {
		t.Errorf("after byte GC: %d records, want 2 (150-byte records, 400-byte cap)", got)
	}
}

// TestWarmLoadNewestFirst: when the directory holds more records than
// the entry bound, the newest win, and they are restored oldest-to-
// newest so the rebuilt LRU order matches the records' ages.
func TestWarmLoadNewestFirst(t *testing.T) {
	dir := t.TempDir()
	ds, err := newDiskStore(dir, 3, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 8; i++ {
		if err := ds.writeRecord(fakeKey(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(filepath.Join(dir, fakeKey(i)+recordSuffix), base, base.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	var order []string
	n := ds.load(func(key string, value []byte) { order = append(order, key) })
	if n != 3 {
		t.Fatalf("loaded %d entries, want 3", n)
	}
	want := []string{fakeKey(5), fakeKey(6), fakeKey(7)}
	for i, k := range want {
		if order[i] != k {
			t.Fatalf("load order %v, want %v", order, want)
		}
	}
}

// TestDiskStoreFlushOnClose: enqueued records are on disk after close,
// even though the hot path never waited for them.
func TestDiskStoreFlushOnClose(t *testing.T) {
	dir := t.TempDir()
	ds, err := newDiskStore(dir, 100, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ds.start()
	for i := 0; i < 20; i++ {
		ds.enqueue(fakeKey(i), []byte(strings.Repeat("r", 32)))
	}
	ds.close()
	for i := 0; i < 20; i++ {
		raw, err := os.ReadFile(filepath.Join(dir, fakeKey(i)+recordSuffix))
		if err != nil {
			t.Fatalf("record %d not flushed: %v", i, err)
		}
		if key, _, err := decodeRecord(raw); err != nil || key != fakeKey(i) {
			t.Fatalf("record %d flushed corrupt: %v", i, err)
		}
	}
	// Enqueues after close are dropped, not raced into a closed writer.
	ds.enqueue(fakeKey(99), []byte("late"))
	if _, err := os.Stat(filepath.Join(dir, fakeKey(99)+recordSuffix)); !os.IsNotExist(err) {
		t.Error("post-close enqueue reached disk")
	}
}

// TestCacheDirUnusableFailsLoudly: pointing the daemon at a path it
// cannot use must be a startup error, not a silent memory-only run.
func TestCacheDirUnusableFailsLoudly(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(Options{Workers: 1, CacheDir: filepath.Join(file, "sub")}); err == nil {
		t.Fatal("NewServer succeeded with a file in the way of its cache dir")
	}
}
