package service

// Fleet mode: the service side of internal/fleet. Three pieces live
// here — the internal cache-record endpoints peers talk to, the
// peer-fill step the memoization miss path runs before computing, and
// the /metrics and /healthz surfaces of the fleet layer.
//
// The wire unit is the USCR record from persist.go, verbatim: the
// same checksummed, self-describing framing the disk store writes is
// what GET /v1/cache/{key} serves and PUT /v1/cache/{key} accepts, so
// an on-disk record file can be shipped to a peer byte-for-byte with
// no re-marshaling, and every fetched record is CRC-validated (and
// key-matched) before a single byte of it enters the cache.

import (
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"

	"unsched/internal/fleet"
)

// ContentTypeCacheRecord labels the USCR record bytes exchanged by
// the internal /v1/cache/{key} endpoints.
const ContentTypeCacheRecord = "application/x-unsched-cache-record"

// newFleetLayer builds the fleet from the service options: nil (solo)
// when no peers are configured, an error when the membership is
// malformed — a misconfigured fleet must fail startup loudly, not
// silently run solo. The Encode/Decode hooks wire the fleet's opaque
// record bytes to the USCR codec, key match included.
func newFleetLayer(opts Options) (*fleet.Fleet, error) {
	if len(opts.Peers) == 0 {
		return nil, nil
	}
	if opts.SelfURL == "" {
		return nil, errors.New("service: Peers configured without SelfURL (rendezvous ownership needs this daemon's own base URL)")
	}
	return fleet.New(fleet.Options{
		Self:           opts.SelfURL,
		Peers:          opts.Peers,
		Budget:         opts.PeerBudget,
		PushQueue:      opts.PeerPushQueue,
		CachePath:      "/v1/cache/",
		MaxRecordBytes: maxRecordBytes,
		Encode:         encodeRecord,
		Decode: func(key string, body []byte) ([]byte, error) {
			k, value, err := decodeRecord(body)
			if err != nil {
				return nil, err
			}
			if k != key {
				return nil, errRecordKey
			}
			return value, nil
		},
	})
}

// handleCacheGet serves the raw canonical USCR record for a key: from
// the memoization cache (framed on the fly) or, failing that, the
// disk store's record file verbatim — in both cases bypassing JSON
// marshaling entirely. This is the internal endpoint peer fill reads;
// like /metrics, deployments should keep it off the public edge.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	s.requests[epCache].Add(1)
	key := r.PathValue("key")
	if !validRecordKey(key) {
		// Invalid keys 404 rather than 400: the distinction would leak
		// nothing useful, and probes treat any non-200 as a miss/error.
		writeError(w, &apiError{status: http.StatusNotFound, msg: "no record for key"})
		return
	}
	var rec []byte
	if value, ok := s.cache.get(key); ok {
		var err error
		if rec, err = encodeRecord(key, value); err != nil {
			writeError(w, err)
			return
		}
	} else if s.disk != nil {
		rec = s.disk.readRecord(key)
	}
	if rec == nil {
		writeError(w, &apiError{status: http.StatusNotFound, msg: "no record for key"})
		return
	}
	h := w.Header()
	h.Set("Content-Type", ContentTypeCacheRecord)
	if acceptsGzip(r) {
		h.Set("Content-Encoding", "gzip")
		w.WriteHeader(http.StatusOK)
		gz := gzipPool.Get().(*gzip.Writer)
		gz.Reset(w)
		_, _ = gz.Write(rec)
		_ = gz.Close() // the peer is gone if either fails; nothing to do
		gzipPool.Put(gz)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(rec)
}

// handleCachePut accepts a write-behind push: a USCR record computed
// by a peer for a key this daemon owns. The record must decode, pass
// its CRC, and embed the key it was addressed to; anything else is
// rejected before touching the cache.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	s.requests[epCache].Add(1)
	key := r.PathValue("key")
	if !validRecordKey(key) {
		writeError(w, badRequest("bad record key"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRecordBytes+1))
	if err != nil {
		writeError(w, badRequest("reading record: %v", err))
		return
	}
	if len(body) > maxRecordBytes {
		writeError(w, &apiError{status: http.StatusRequestEntityTooLarge,
			msg: fmt.Sprintf("record exceeds %d bytes", maxRecordBytes)})
		return
	}
	k, value, err := decodeRecord(body)
	if err != nil {
		writeError(w, badRequest("bad record: %v", err))
		return
	}
	if k != key {
		writeError(w, badRequest("record key %s does not match path key %s", k, key))
		return
	}
	// A pushed record is a computed response this daemon owns: memoize
	// it and (when persistence is on) write it through to disk, exactly
	// as if computed locally.
	s.cachePut(key, value)
	w.WriteHeader(http.StatusNoContent)
}

// readRecord returns the raw framed record bytes for key, or nil.
// The bytes are decode-validated before serving — a corrupt file must
// read as a miss here, not ship to a peer that would reject it anyway.
func (ds *diskStore) readRecord(key string) []byte {
	raw, err := os.ReadFile(filepath.Join(ds.dir, key+recordSuffix))
	if err != nil || len(raw) > maxRecordBytes {
		return nil
	}
	k, _, err := decodeRecord(raw)
	if err != nil || k != key {
		return nil
	}
	return raw
}

// peerFill serves a cache miss from the key's fleet owner: when fleet
// mode is on and this daemon does not own the key, the owner (hedged
// to the next-ranked peer) is asked for the canonical record under
// the caller's single-flight slot. The fetched JSON form is memoized
// memory-only — the owner already persists it; re-persisting here
// would double the fleet's disk footprint — and rendered to binary on
// demand like any cached entry. ok=false on any failure: the caller
// computes locally, so a peer can never make this daemon unavailable.
func (s *Server) peerFill(ctx context.Context, ep int, key string, enc encoding,
	decodeDoc func([]byte) (wireDoc, error)) ([]byte, bool) {
	if s.fleet == nil || s.fleet.Owns(key) {
		return nil, false
	}
	jsonRaw, ok := s.fleet.Fetch(ctx, key)
	if !ok {
		return nil, false
	}
	s.cache.put(key, jsonRaw)
	if enc == encJSON {
		s.cacheHits[ep].Add(1)
		return jsonRaw, true
	}
	doc, err := decodeDoc(jsonRaw)
	if err != nil {
		// CRC-valid but undecodable means result-document drift between
		// daemon versions; computing locally is the safe answer.
		return nil, false
	}
	bin := doc.appendBinaryPayload(nil)
	s.cache.put(variantKey(key, enc), bin)
	s.cacheHits[ep].Add(1)
	return bin, true
}

// emitPeerMetrics writes the fleet series of /metrics. Counters and
// the lookup-latency summary are emitted even solo (all zero),
// matching the disk series' convention — scrapers should not need
// per-deployment series sets. The shard-balance gauge (how many of
// this daemon's cached keys each member owns) is fleet-only: it has
// no meaningful solo shape.
func (s *Server) emitPeerMetrics(w io.Writer) {
	var fs fleet.Stats
	if s.fleet != nil {
		fs = s.fleet.Stats()
	}
	series := []struct {
		name  string
		value int64
	}{
		{"unschedd_peer_lookup_total", fs.Lookups},
		{"unschedd_peer_hit_total", fs.Hits},
		{"unschedd_peer_miss_total", fs.Misses},
		{"unschedd_peer_error_total", fs.Errors},
		{"unschedd_peer_hedge_total", fs.Hedges},
		{"unschedd_peer_push_total", fs.Pushes},
		{"unschedd_peer_push_error_total", fs.PushErrors},
		{"unschedd_peer_push_drop_total", fs.PushDrops},
	}
	for _, sr := range series {
		fmt.Fprintf(w, "# TYPE %s counter\n", sr.name)
		fmt.Fprintf(w, "%s %d\n", sr.name, sr.value)
	}
	fmt.Fprintf(w, "# TYPE unschedd_peer_lookup_seconds summary\n")
	fmt.Fprintf(w, "unschedd_peer_lookup_seconds{quantile=\"0.9\"} %g\n", fs.LookupP90)
	fmt.Fprintf(w, "unschedd_peer_lookup_seconds_sum %g\n", fs.LookupSum)
	fmt.Fprintf(w, "unschedd_peer_lookup_seconds_count %d\n", fs.LookupCount)
	if s.fleet != nil {
		members := s.fleet.Members()
		counts := make(map[string]int, len(members))
		for _, key := range s.cache.keys() {
			counts[s.fleet.Owner(key)]++
		}
		fmt.Fprintf(w, "# TYPE unschedd_peer_owned_keys gauge\n")
		for _, m := range members {
			fmt.Fprintf(w, "unschedd_peer_owned_keys{peer=%q} %d\n", m, counts[m])
		}
	}
}
