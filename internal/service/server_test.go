package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"unsched/internal/comm"
	"unsched/internal/costmodel"
	"unsched/internal/des"
	"unsched/internal/expt"
	"unsched/internal/hypercube"
	"unsched/internal/mesh"
	"unsched/internal/topo"
	"unsched/internal/workload"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	svc, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

// postJSON posts v and decodes the response body into out (unless nil).
func postJSON(t *testing.T, url string, v any, out any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("bad response body %q: %v", raw, err)
		}
	}
	return resp.StatusCode, raw
}

func getJSON(t *testing.T, url string, out any) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("bad response body %q: %v", raw, err)
		}
	}
	return resp.StatusCode, raw
}

// testMatrix returns a deterministic d-regular wire matrix.
func testMatrix(t *testing.T, n, d int, bytes int64, seed int64) *WireMatrix {
	t.Helper()
	m, err := comm.DRegular(n, d, bytes, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return NewWireMatrix(m)
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	var doc HealthStatus
	status, _ := getJSON(t, ts.URL+"/healthz", &doc)
	if status != http.StatusOK || doc.Status != "ok" {
		t.Fatalf("healthz: status %d, doc %+v", status, doc)
	}
}

func TestScheduleEndpointAlgorithms(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	for _, alg := range []string{"auto", "AC", "LP", "RS_N", "RS_NL", "RS_NL_SZ", "GREEDY", "GREEDY_LF"} {
		req := ScheduleRequest{Matrix: testMatrix(t, 16, 4, 4096, 1), Algorithm: alg}
		var env Envelope
		status, raw := postJSON(t, ts.URL+"/v1/schedule", req, &env)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", alg, status, raw)
		}
		var res ScheduleResult
		if err := json.Unmarshal(env.Result, &res); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Schedule == nil || res.Schedule.N != 16 {
			t.Fatalf("%s: bad schedule in result: %s", alg, env.Result)
		}
		if alg != "auto" && res.Chosen != alg {
			t.Errorf("%s: chosen %q", alg, res.Chosen)
		}
		if alg == "AC" && len(res.Schedule.Phases) != 0 {
			t.Errorf("AC returned %d phases", len(res.Schedule.Phases))
		}
		if alg == "LP" && !res.LinkFree {
			t.Error("LP schedule not link-free on the cube")
		}
	}
}

func TestScheduleCacheHitIsByteIdentical(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 2})
	req := ScheduleRequest{Matrix: testMatrix(t, 32, 6, 2048, 7), Algorithm: "RS_NL", Seed: 42}

	var first Envelope
	status, raw := postJSON(t, ts.URL+"/v1/schedule", req, &first)
	if status != http.StatusOK {
		t.Fatalf("first: status %d: %s", status, raw)
	}
	if first.Cached {
		t.Fatal("first request reported a cache hit")
	}
	var second Envelope
	status, _ = postJSON(t, ts.URL+"/v1/schedule", req, &second)
	if status != http.StatusOK {
		t.Fatalf("second: status %d", status)
	}
	if !second.Cached {
		t.Fatal("repeated identical request was not a cache hit")
	}
	if second.Key != first.Key {
		t.Fatalf("keys differ: %s vs %s", first.Key, second.Key)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatal("cache hit returned different result bytes")
	}
	if hits := svc.cacheHits[epSchedule].Load(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}

	// A different seed is a different key and (overwhelmingly likely
	// for a 32-node RS_NL) a different schedule.
	req.Seed = 43
	var third Envelope
	postJSON(t, ts.URL+"/v1/schedule", req, &third)
	if third.Cached || third.Key == first.Key {
		t.Fatal("different seed collided with the first request")
	}
}

func TestScheduleDeterministicAcrossServers(t *testing.T) {
	// Identical requests to two independent daemons (no shared cache)
	// must produce identical schedules: the RNG seed derives from the
	// request content, not server state.
	req := ScheduleRequest{Matrix: testMatrix(t, 32, 5, 1024, 3), Algorithm: "RS_N"}
	var results [][]byte
	for i := 0; i < 2; i++ {
		_, ts := newTestServer(t, Options{Workers: 1})
		var env Envelope
		status, raw := postJSON(t, ts.URL+"/v1/schedule", req, &env)
		if status != http.StatusOK {
			t.Fatalf("server %d: status %d: %s", i, status, raw)
		}
		results = append(results, env.Result)
	}
	if !bytes.Equal(results[0], results[1]) {
		t.Fatal("two servers computed different schedules for the same request")
	}
}

func TestScheduleBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name string
		body string
	}{
		{"empty", ``},
		{"not json", `{{{`},
		{"trailing garbage", `{"matrix":{"n":4,"messages":[]}} extra`},
		{"unknown field", `{"matrix":{"n":4,"messages":[]},"bogus":1}`},
		{"missing matrix", `{"algorithm":"LP"}`},
		{"n too small", `{"matrix":{"n":1,"messages":[]}}`},
		{"n too big", `{"matrix":{"n":100000,"messages":[]}}`},
		{"self message", `{"matrix":{"n":4,"messages":[[2,2,10]]}}`},
		{"out of range", `{"matrix":{"n":4,"messages":[[0,9,10]]}}`},
		{"negative size", `{"matrix":{"n":4,"messages":[[0,1,-10]]}}`},
		{"unknown algorithm", `{"matrix":{"n":4,"messages":[[0,1,10]]},"algorithm":"MAGIC"}`},
		{"unknown topology", `{"matrix":{"n":4,"messages":[[0,1,10]]},"topology":{"kind":"hex"}}`},
		{"spec plus structured fields", `{"matrix":{"n":4,"messages":[[0,1,10]]},"topology":{"kind":"mesh","spec":"mesh:2x2"}}`},
		{"disconnected graph", `{"matrix":{"n":4,"messages":[[0,1,10]]},"topology":{"kind":"graph","n":4,"edges":[[0,1],[2,3]]}}`},
		{"topology size mismatch", `{"matrix":{"n":4,"messages":[[0,1,10]]},"topology":{"kind":"mesh","w":3,"h":3}}`},
		{"non power of two cube", `{"matrix":{"n":6,"messages":[[0,1,10]]}}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, raw)
		}
		var doc ErrorEnvelope
		if err := json.Unmarshal(raw, &doc); err != nil || doc.Error == "" {
			t.Errorf("%s: error response not a JSON error doc: %s", tc.name, raw)
		}
		if doc.Err.Code == "" || doc.Err.Message != doc.Error {
			t.Errorf("%s: error envelope missing structured detail: %s", tc.name, raw)
		}
	}
}

func TestSimulateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	mj := testMatrix(t, 16, 4, 8192, 5)

	// Schedule first, then feed the schedule back into /v1/simulate.
	var env Envelope
	status, raw := postJSON(t, ts.URL+"/v1/schedule", ScheduleRequest{Matrix: mj, Algorithm: "RS_NL"}, &env)
	if status != http.StatusOK {
		t.Fatalf("schedule: status %d: %s", status, raw)
	}
	var schedRes ScheduleResult
	if err := json.Unmarshal(env.Result, &schedRes); err != nil {
		t.Fatal(err)
	}

	var simEnv Envelope
	status, raw = postJSON(t, ts.URL+"/v1/simulate",
		SimulateRequest{Schedule: schedRes.Schedule, Matrix: mj}, &simEnv)
	if status != http.StatusOK {
		t.Fatalf("simulate: status %d: %s", status, raw)
	}
	var simRes SimulateResult
	if err := json.Unmarshal(simEnv.Result, &simRes); err != nil {
		t.Fatal(err)
	}
	if simRes.Protocol != "S1" {
		t.Errorf("RS_NL simulated under %s, want S1", simRes.Protocol)
	}
	if simRes.MakespanUS <= 0 {
		t.Errorf("non-positive makespan %v", simRes.MakespanUS)
	}

	// Repeat: cache hit, byte-identical.
	var rep Envelope
	postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Schedule: schedRes.Schedule, Matrix: mj}, &rep)
	if !rep.Cached || !bytes.Equal(rep.Result, simEnv.Result) {
		t.Fatal("repeated simulate was not a byte-identical cache hit")
	}

	// AC run straight from the matrix.
	var acEnv Envelope
	status, raw = postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Matrix: mj}, &acEnv)
	if status != http.StatusOK {
		t.Fatalf("AC simulate: status %d: %s", status, raw)
	}
	var acRes SimulateResult
	if err := json.Unmarshal(acEnv.Result, &acRes); err != nil {
		t.Fatal(err)
	}
	if acRes.Protocol != "AC" || acRes.MakespanUS <= 0 {
		t.Errorf("AC run: %+v", acRes)
	}

	// Explicit protocol override and the ipsc2 model.
	var s2Env Envelope
	status, raw = postJSON(t, ts.URL+"/v1/simulate",
		SimulateRequest{Schedule: schedRes.Schedule, Protocol: "S2", Params: "ipsc2"}, &s2Env)
	if status != http.StatusOK {
		t.Fatalf("S2/ipsc2 simulate: status %d: %s", status, raw)
	}
}

func TestSimulateBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	mj := testMatrix(t, 8, 2, 512, 9)
	var env Envelope
	if status, raw := postJSON(t, ts.URL+"/v1/schedule", ScheduleRequest{Matrix: mj, Algorithm: "RS_N"}, &env); status != 200 {
		t.Fatalf("schedule: %d %s", status, raw)
	}
	var schedRes ScheduleResult
	if err := json.Unmarshal(env.Result, &schedRes); err != nil {
		t.Fatal(err)
	}

	// Schedule that does not match the supplied matrix.
	other := testMatrix(t, 8, 3, 512, 10)
	if status, _ := postJSON(t, ts.URL+"/v1/simulate",
		SimulateRequest{Schedule: schedRes.Schedule, Matrix: other}, nil); status != http.StatusBadRequest {
		t.Errorf("mismatched matrix accepted: status %d", status)
	}
	// No schedule and no matrix.
	if status, _ := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{}, nil); status != http.StatusBadRequest {
		t.Errorf("empty simulate accepted: status %d", status)
	}
	// Unknown protocol / params.
	if status, _ := postJSON(t, ts.URL+"/v1/simulate",
		SimulateRequest{Schedule: schedRes.Schedule, Protocol: "S9"}, nil); status != http.StatusBadRequest {
		t.Errorf("unknown protocol accepted")
	}
	if status, _ := postJSON(t, ts.URL+"/v1/simulate",
		SimulateRequest{Schedule: schedRes.Schedule, Params: "cray"}, nil); status != http.StatusBadRequest {
		t.Errorf("unknown params accepted")
	}
	// Phase with node contention.
	bad := &WireSchedule{Algorithm: "RS_N", N: 4, Phases: []WirePhase{{{0, 2, 10}, {1, 2, 10}}}}
	if status, _ := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Schedule: bad}, nil); status != http.StatusBadRequest {
		t.Errorf("contending phase accepted")
	}
}

func TestCampaignEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	req := CampaignRequest{Densities: []int{2}, Sizes: []int64{256}, Samples: 2, Seed: 11, Dim: 3}
	var accepted CampaignAccepted
	status, raw := postJSON(t, ts.URL+"/v1/campaign", req, &accepted)
	if status != http.StatusAccepted {
		t.Fatalf("campaign: status %d: %s", status, raw)
	}
	if accepted.ID == "" || accepted.URL == "" {
		t.Fatalf("campaign response missing id/url: %s", raw)
	}

	var st CampaignStatus
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, raw = getJSON(t, ts.URL+accepted.URL, &st)
		if status != http.StatusOK {
			t.Fatalf("poll: status %d: %s", status, raw)
		}
		if st.State != campaignRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign still running after 30s: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != campaignDone {
		t.Fatalf("campaign finished as %q (%s)", st.State, st.Error)
	}
	if st.Done != st.Total || st.Total != 2*len(expt.Algorithms) {
		t.Errorf("progress %d/%d, want %d/%d", st.Done, st.Total, 2*len(expt.Algorithms), 2*len(expt.Algorithms))
	}
	if len(st.Cells) != len(expt.Algorithms) {
		t.Fatalf("got %d cells, want %d", len(st.Cells), len(expt.Algorithms))
	}

	// The async service result must agree exactly with a direct
	// in-process run of the campaign engine at the same seed.
	cfg := expt.Config{Topology: hypercube.MustNew(3), Params: mustParams(t, "ipsc860"), Samples: 2, Seed: 11}
	want, err := expt.NewRunner(cfg).MeasureCell(context.Background(), 2, 256)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range st.Cells {
		ref := want[expt.Algorithm(cell.Algorithm)]
		if cell.CommMS != ref.CommMS || cell.Iters != ref.Iters {
			t.Errorf("%s: service says comm=%v iters=%v, direct run %v/%v",
				cell.Algorithm, cell.CommMS, cell.Iters, ref.CommMS, ref.Iters)
		}
	}
}

func mustParams(t *testing.T, name string) costmodel.Params {
	t.Helper()
	_, params, err := resolveParams(name)
	if err != nil {
		t.Fatal(err)
	}
	return params
}

func TestCampaignNotFoundAndBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	if status, _ := getJSON(t, ts.URL+"/v1/campaign/nope", nil); status != http.StatusNotFound {
		t.Errorf("unknown campaign id: status %d, want 404", status)
	}
	bad := []CampaignRequest{
		{},                    // nothing
		{Densities: []int{2}}, // no sizes/samples
		{Densities: []int{200}, Sizes: []int64{64}, Samples: 1, Dim: 3},  // density >= nodes
		{Densities: []int{2}, Sizes: []int64{-1}, Samples: 1, Dim: 3},    // bad size
		{Densities: []int{2}, Sizes: []int64{64}, Samples: 9999, Dim: 3}, // too many samples
		{Densities: []int{2}, Sizes: []int64{64}, Samples: 1, Dim: 99},   // bad dim
	}
	for i, req := range bad {
		if status, raw := postJSON(t, ts.URL+"/v1/campaign", req, nil); status != http.StatusBadRequest {
			t.Errorf("bad campaign %d accepted: status %d (%s)", i, status, raw)
		}
	}
}

func TestCampaignConcurrencyLimit(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 1, MaxCampaigns: 1})
	// Hold the only campaign slot, exactly as a long-running campaign
	// would, so the submission below is deterministically shed.
	if !svc.campaigns.acquire() {
		t.Fatal("could not take the campaign slot")
	}
	defer svc.campaigns.release()
	quick := CampaignRequest{Densities: []int{2}, Sizes: []int64{64}, Samples: 1, Dim: 3}
	if status, _ := postJSON(t, ts.URL+"/v1/campaign", quick, nil); status != http.StatusTooManyRequests {
		t.Errorf("concurrent campaign past the limit: status %d, want 429", status)
	}
}

func TestQueueBackpressure429(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	// Occupy the only worker with a task we control, then fill the
	// one queue slot, so the next HTTP request must be shed.
	started := make(chan struct{})
	release := make(chan struct{})
	blocker := &task{run: func(*worker) { close(started); <-release }, done: make(chan struct{})}
	if err := svc.pool.submit(blocker); err != nil {
		t.Fatal(err)
	}
	<-started
	filler := &task{run: func(*worker) {}, done: make(chan struct{})}
	if err := svc.pool.submit(filler); err != nil {
		t.Fatal(err)
	}

	req := ScheduleRequest{Matrix: testMatrix(t, 8, 2, 512, 2), Algorithm: "RS_N"}
	status, raw := postJSON(t, ts.URL+"/v1/schedule", req, nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated queue: status %d, want 429 (%s)", status, raw)
	}
	close(release)
	<-filler.done

	// Once drained, the same request succeeds.
	if status, raw := postJSON(t, ts.URL+"/v1/schedule", req, nil); status != http.StatusOK {
		t.Fatalf("after drain: status %d (%s)", status, raw)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	req := ScheduleRequest{Matrix: testMatrix(t, 8, 2, 512, 4), Algorithm: "RS_N"}
	postJSON(t, ts.URL+"/v1/schedule", req, nil)
	postJSON(t, ts.URL+"/v1/schedule", req, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{
		`unschedd_requests_total{endpoint="schedule"} 2`,
		`unschedd_cache_hits_total{endpoint="schedule"} 1`,
		`unschedd_cache_misses_total{endpoint="schedule"} 1`,
		`unschedd_cache_hits_total{endpoint="simulate"} 0`,
		"unschedd_flight_dedup_total 0",
		"unschedd_cache_entries 1",
		"unschedd_cache_warm_loaded_entries 0",
		"unschedd_disk_load_errors_total 0",
		"unschedd_disk_write_errors_total 0",
		"unschedd_workers 1",
		"unschedd_queue_capacity 4",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	// Many clients, few distinct requests: every response for the same
	// request must carry identical result bytes whether it was computed
	// or served from cache. Run under -race this also exercises the
	// pool, cache, and campaign registry for data races.
	_, ts := newTestServer(t, Options{Workers: 4, QueueDepth: 256})
	matrices := []*WireMatrix{
		testMatrix(t, 16, 4, 1024, 1),
		testMatrix(t, 16, 4, 1024, 2),
		testMatrix(t, 32, 8, 4096, 3),
	}
	algs := []string{"auto", "LP", "RS_N", "RS_NL"}

	const clients = 16
	const perClient = 12
	var mu sync.Mutex
	results := map[string][]byte{} // key -> result bytes
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				req := ScheduleRequest{
					Matrix:    matrices[(c+i)%len(matrices)],
					Algorithm: algs[(c+2*i)%len(algs)],
				}
				body, _ := json.Marshal(req)
				resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusTooManyRequests {
					continue // legitimate shed under load
				}
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("client %d: status %d: %s", c, resp.StatusCode, raw)
					return
				}
				var env Envelope
				if err := json.Unmarshal(raw, &env); err != nil {
					errCh <- err
					return
				}
				mu.Lock()
				if prev, ok := results[env.Key]; ok {
					if !bytes.Equal(prev, env.Result) {
						mu.Unlock()
						errCh <- fmt.Errorf("key %s: divergent results", env.Key)
						return
					}
				} else {
					results[env.Key] = env.Result
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestSingleFlightDeduplicatesConcurrentMisses(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	// Park the only worker so the leader's computation cannot start;
	// every identical request arriving meanwhile must join its flight
	// instead of queueing its own computation.
	started := make(chan struct{})
	release := make(chan struct{})
	blocker := &task{run: func(*worker) { close(started); <-release }, done: make(chan struct{})}
	if err := svc.pool.submit(blocker); err != nil {
		t.Fatal(err)
	}
	<-started

	req := ScheduleRequest{Matrix: testMatrix(t, 16, 4, 2048, 8), Algorithm: "RS_NL"}
	body, _ := json.Marshal(req)
	const clients = 6
	envs := make([]Envelope, clients)
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(body))
			if err != nil {
				errCh <- err
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errCh <- fmt.Errorf("client %d: status %d: %s", i, resp.StatusCode, raw)
				return
			}
			errCh <- json.Unmarshal(raw, &envs[i])
		}(i)
	}
	// Let the clients reach the server, then let the worker go. The
	// sleep only widens the race window; correctness must not depend
	// on who arrives when.
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	computed := 0
	for i, env := range envs {
		if !env.Cached {
			computed++
		}
		if !bytes.Equal(env.Result, envs[0].Result) {
			t.Errorf("client %d got divergent result bytes", i)
		}
	}
	if computed != 1 {
		t.Errorf("%d clients computed, want exactly 1 leader", computed)
	}
}

func TestWorkerSurvivesTaskPanic(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 1})
	boom := &task{run: func(*worker) { panic("boom") }, done: make(chan struct{})}
	if err := svc.pool.submit(boom); err != nil {
		t.Fatal(err)
	}
	<-boom.done
	if boom.panicked == nil {
		t.Fatal("panic was not captured on the task")
	}
	// The single worker must have survived to serve real traffic.
	req := ScheduleRequest{Matrix: testMatrix(t, 8, 2, 512, 12), Algorithm: "RS_N"}
	if status, raw := postJSON(t, ts.URL+"/v1/schedule", req, nil); status != http.StatusOK {
		t.Fatalf("worker died with the panicking task: status %d (%s)", status, raw)
	}
}

func TestScheduleRejectsPhaseFlood(t *testing.T) {
	// ~17 KB of dense phase state per 3 bytes of JSON is a memory
	// amplifier; the phase cap must reject it before allocation.
	_, ts := newTestServer(t, Options{Workers: 1})
	var b strings.Builder
	b.WriteString(`{"schedule":{"algorithm":"RS_N","n":64,"ops":0,"phases":[`)
	for i := 0; i < 300; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("[]")
	}
	b.WriteString(`]}}`)
	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("300 phases for n=64 accepted: status %d", resp.StatusCode)
	}
}

func TestOversizedBodyIs413(t *testing.T) {
	svc, err := NewServer(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	req := httptest.NewRequest(http.MethodPost, "/v1/schedule", strings.NewReader("{}"))
	req.ContentLength = maxRequestBytes + 1
	rec := httptest.NewRecorder()
	svc.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", rec.Code)
	}
}

func TestCloseRefusesNewWork(t *testing.T) {
	svc, err := NewServer(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	defer ts.Close()
	svc.Close()
	req := ScheduleRequest{Matrix: testMatrix(t, 8, 2, 512, 6), Algorithm: "RS_N"}
	status, _ := postJSON(t, ts.URL+"/v1/schedule", req, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("request after Close: status %d, want 503", status)
	}
}

// TestCampaignTorusTopology is the tentpole acceptance check at the
// service boundary: a campaign on "topology": torus 8x8 runs the §6
// grid, and its cells agree exactly with a direct in-process run of
// the topology-generic engine — at sequential parallelism, which the
// engine guarantees is bit-identical to any other worker count.
func TestCampaignTorusTopology(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	req := CampaignRequest{
		Densities: []int{4, 8},
		Sizes:     []int64{1024},
		Samples:   1,
		Seed:      11,
		Topology:  &WireTopology{Kind: "torus", W: 8, H: 8},
	}
	var accepted CampaignAccepted
	status, raw := postJSON(t, ts.URL+"/v1/campaign", req, &accepted)
	if status != http.StatusAccepted {
		t.Fatalf("campaign: status %d: %s", status, raw)
	}
	if accepted.Key == "" {
		t.Fatalf("campaign response missing content-hash key: %s", raw)
	}

	var st CampaignStatus
	deadline := time.Now().Add(30 * time.Second)
	for {
		if status, raw = getJSON(t, ts.URL+accepted.URL, &st); status != http.StatusOK {
			t.Fatalf("poll: status %d: %s", status, raw)
		}
		if st.State != campaignRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign still running after 30s: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != campaignDone {
		t.Fatalf("campaign finished as %q (%s)", st.State, st.Error)
	}
	if st.Topology != "torus-8x8" {
		t.Errorf("status topology %q, want torus-8x8", st.Topology)
	}
	if st.Key != accepted.Key {
		t.Errorf("status key %q != accepted key %q", st.Key, accepted.Key)
	}
	if st.Done != st.Total {
		t.Errorf("done campaign reports %d/%d", st.Done, st.Total)
	}

	cfg := expt.Config{
		Topology: mesh.MustNew(8, 8, true),
		Params:   mustParams(t, "ipsc860"),
		Samples:  1,
		Seed:     11,
	}
	runner := &expt.Runner{Config: cfg, Parallelism: 1}
	want, err := runner.MeasureCells(context.Background(),
		[]expt.Point{{Density: 4, MsgBytes: 1024}, {Density: 8, MsgBytes: 1024}})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Cells) != 2*len(expt.Algorithms) {
		t.Fatalf("got %d cells, want %d", len(st.Cells), 2*len(expt.Algorithms))
	}
	for _, cell := range st.Cells {
		pt := 0
		if cell.Density == 8 {
			pt = 1
		}
		ref := want[pt][expt.Algorithm(cell.Algorithm)]
		if cell.CommMS != ref.CommMS || cell.CompMS != ref.CompMS || cell.Iters != ref.Iters {
			t.Errorf("%s d=%d: service says comm=%v comp=%v iters=%v, direct run %v/%v/%v",
				cell.Algorithm, cell.Density, cell.CommMS, cell.CompMS, cell.Iters,
				ref.CommMS, ref.CompMS, ref.Iters)
		}
	}

	// The identical request must produce the identical content key.
	var accepted2 CampaignAccepted
	if status, raw := postJSON(t, ts.URL+"/v1/campaign", req, &accepted2); status != http.StatusAccepted {
		t.Fatalf("second campaign: status %d: %s", status, raw)
	}
	if accepted2.Key != accepted.Key {
		t.Errorf("identical campaigns keyed %q and %q", accepted.Key, accepted2.Key)
	}
}

// TestCampaignTopologyBadRequests covers the topology-specific
// rejections of POST /v1/campaign.
func TestCampaignTopologyBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	bad := []CampaignRequest{
		// dim and topology together are ambiguous.
		{Densities: []int{2}, Sizes: []int64{64}, Samples: 1, Dim: 3,
			Topology: &WireTopology{Kind: "torus", W: 4, H: 4}},
		// LP needs a power-of-two node count.
		{Densities: []int{2}, Sizes: []int64{64}, Samples: 1,
			Topology: &WireTopology{Kind: "ring", N: 12}},
		// Density too dense for the machine.
		{Densities: []int{16}, Sizes: []int64{64}, Samples: 1,
			Topology: &WireTopology{Kind: "torus", W: 4, H: 4}},
		// Unknown kind, disconnected graph, over the service node cap.
		{Densities: []int{2}, Sizes: []int64{64}, Samples: 1,
			Topology: &WireTopology{Kind: "hex", N: 8}},
		{Densities: []int{2}, Sizes: []int64{64}, Samples: 1,
			Topology: &WireTopology{Kind: "graph", N: 4, Edges: [][2]int{{0, 1}, {2, 3}}}},
		// Over the campaign node cap (campaigns stay at 1024 even
		// though single requests go to maxServiceNodes).
		{Densities: []int{2}, Sizes: []int64{64}, Samples: 1,
			Topology: &WireTopology{Kind: "ring", N: 2048}},
	}
	for i, req := range bad {
		if status, raw := postJSON(t, ts.URL+"/v1/campaign", req, nil); status != http.StatusBadRequest {
			t.Errorf("bad campaign %d accepted: status %d (%s)", i, status, raw)
		}
	}
	// The spec string form works end to end on the campaign endpoint.
	ok := CampaignRequest{Densities: []int{2}, Sizes: []int64{64}, Samples: 1,
		Topology: &WireTopology{Spec: "cube:3"}}
	if status, raw := postJSON(t, ts.URL+"/v1/campaign", ok, nil); status != http.StatusAccepted {
		t.Errorf("spec-form campaign rejected: status %d (%s)", status, raw)
	}
}

// TestCampaignDonePinnedAtCompletion is the progress-race regression
// test: finish must pin done to total before flipping the state, so a
// status read can never see a done campaign under 100%. (Before the
// fix, finish left the counter wherever the last Progress tick put
// it.)
func TestCampaignDonePinnedAtCompletion(t *testing.T) {
	j := &campaignJob{id: "c1", state: campaignRunning, total: 8}
	// The last Progress tick a status reader might have raced with.
	j.done.Store(int64(j.total) - 1)
	j.finish([]CampaignCell{}, nil)
	st := j.status()
	if st.State != campaignDone {
		t.Fatalf("state %q, want done", st.State)
	}
	if st.Done != st.Total {
		t.Errorf("done campaign reports %d/%d; finish must pin done = total", st.Done, st.Total)
	}
	// A failed campaign keeps its true progress: pinning there would
	// fake completed work.
	f := &campaignJob{id: "c2", state: campaignRunning, total: 8}
	f.done.Store(3)
	f.finish(nil, context.Canceled)
	if st := f.status(); st.Done != 3 {
		t.Errorf("failed campaign reports done=%d, want the real 3", st.Done)
	}
}

// TestFollowerClientGoneIs499 is the cancellation-misclassification
// regression test: a single-flight follower whose client disconnects
// while the leader computes must get a 4xx (it is the client's abort,
// not a server failure) and must not count as a rejection. Before the
// fix it was a 503, inflating server-error rates for client hangups.
func TestFollowerClientGoneIs499(t *testing.T) {
	svc, err := NewServer(Options{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Hold the flight for key ourselves, playing the leader mid-compute:
	// any request for the same key now joins as a follower.
	const key = "deadbeef"
	call, isLeader := svc.flights.join(key)
	if !isLeader {
		t.Fatal("test could not take flight leadership")
	}
	defer svc.flights.finish(key, call, nil, nil)

	// Follower with an already-cancelled client.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/schedule", nil).WithContext(ctx)
	svc.respondMemoized(rec, req, conneg{enc: encJSON}, epSchedule, key, decodeScheduleDoc,
		func(wk *worker) (wireDoc, error) {
			t.Error("follower must not compute")
			return nil, nil
		})
	if rec.Code != statusClientClosedRequest {
		t.Errorf("follower with dead client got %d, want %d", rec.Code, statusClientClosedRequest)
	}
	if rec.Code >= 500 {
		t.Errorf("client abort answered with server error %d", rec.Code)
	}
	if got := svc.rejected.Load(); got != 0 {
		t.Errorf("client abort counted as %d rejections", got)
	}
}

// TestCampaignWorkloadsEndToEnd is the acceptance path of the
// workload axis: a non-uniform workload grid (halo exchange plus a
// hot-spot) on a torus runs through POST /v1/campaign and must agree
// cell-exactly with a direct in-process run of the campaign engine —
// same seed, same streams, same numbers.
func TestCampaignWorkloadsEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	req := CampaignRequest{
		Workloads: []string{"halo:8x8:512", "uniform:4:1024"},
		Samples:   2, Seed: 11,
		Topology: &WireTopology{Spec: "torus:8x8"},
	}
	var accepted CampaignAccepted
	status, raw := postJSON(t, ts.URL+"/v1/campaign", req, &accepted)
	if status != http.StatusAccepted {
		t.Fatalf("campaign: status %d: %s", status, raw)
	}
	if accepted.Key == "" {
		t.Fatalf("campaign response missing content key: %s", raw)
	}

	var st CampaignStatus
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, raw = getJSON(t, ts.URL+accepted.URL, &st)
		if status != http.StatusOK {
			t.Fatalf("poll: status %d: %s", status, raw)
		}
		if st.State != campaignRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign still running after 30s: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != campaignDone {
		t.Fatalf("campaign finished as %q (%s)", st.State, st.Error)
	}
	if len(st.Cells) != 2*len(expt.Algorithms) {
		t.Fatalf("got %d cells, want %d", len(st.Cells), 2*len(expt.Algorithms))
	}

	cfg := expt.Config{
		Topology: topo.MustParseSpec("torus:8x8").MustBuild(),
		Params:   mustParams(t, "ipsc860"), Samples: 2, Seed: 11,
	}
	want, err := expt.NewRunner(cfg).MeasureWorkloads(context.Background(), []workload.Spec{
		workload.MustParseSpec("halo:8x8:512"),
		workload.UniformSpec(4, 1024),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, cell := range st.Cells {
		ref := want[i/len(expt.Algorithms)][expt.Algorithm(cell.Algorithm)]
		if cell.Workload != ref.Workload || cell.CommMS != ref.CommMS || cell.Iters != ref.Iters {
			t.Errorf("cell %d (%s %s): service says comm=%v iters=%v, direct run (%s) %v/%v",
				i, cell.Workload, cell.Algorithm, cell.CommMS, cell.Iters, ref.Workload, ref.CommMS, ref.Iters)
		}
	}

	// Key canonicalization: the dregular alias spelling must hash to
	// the same campaign key as its canonical uniform form — the keys
	// are over canonical spec strings, not the raw request bytes.
	alias := req
	alias.Workloads = []string{"halo:8x8:512", "dregular:4:1024"}
	aliasKey := campaignKeyFor(t, &alias)
	if aliasKey != accepted.Key {
		t.Errorf("dregular-alias campaign hashed to %s, canonical run said %s", aliasKey, accepted.Key)
	}
	alias.Workloads = []string{"halo:8x8:512", "uniform:4:2048"}
	if campaignKeyFor(t, &alias) == accepted.Key {
		t.Error("different workload grid shares the campaign key")
	}
}

// campaignKeyFor resolves a campaign request to its content-hash key.
func campaignKeyFor(t *testing.T, req *CampaignRequest) string {
	t.Helper()
	_, _, key, err := resolveCampaign(req)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// TestCampaignWorkloadBadRequests is the bad-request table of the
// workload field: malformed and oversized specs must be rejected with
// 400 from the spec string alone — before any O(n^2) matrix or
// O(elements) mesh build.
func TestCampaignWorkloadBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name string
		req  CampaignRequest
	}{
		{"malformed spec", CampaignRequest{Workloads: []string{"uniform:4"}, Samples: 1, Dim: 3}},
		{"unknown kind", CampaignRequest{Workloads: []string{"klein:4:64"}, Samples: 1, Dim: 3}},
		{"both grid forms", CampaignRequest{Workloads: []string{"uniform:2:64"}, Densities: []int{2}, Sizes: []int64{64}, Samples: 1, Dim: 3}},
		{"density too high", CampaignRequest{Workloads: []string{"uniform:8:64"}, Samples: 1, Dim: 3}},
		{"oversized halo grid", CampaignRequest{Workloads: []string{"halo:4096x4096:8"}, Samples: 1, Dim: 3}},
		{"halo extent over cap", CampaignRequest{Workloads: []string{"halo:100000x2:8"}, Samples: 1, Dim: 3}},
		{"bytes over service cap", CampaignRequest{Workloads: []string{"uniform:2:33554433"}, Samples: 1, Dim: 3}},
		{"aggregated message over cap", CampaignRequest{Workloads: []string{"halo:2048x1024:16777216"}, Samples: 1, Dim: 3}},
		{"spmv nnz over cap", CampaignRequest{Workloads: []string{"spmv:100000:8"}, Samples: 1, Dim: 3}},
		{"transpose on non-square", CampaignRequest{Workloads: []string{"transpose:64"}, Samples: 1, Dim: 3}},
		{"shift multiple of n", CampaignRequest{Workloads: []string{"shift:8:64"}, Samples: 1, Dim: 3}},
		{"stencil smaller than machine", CampaignRequest{Workloads: []string{"stencil3d:1x1x2:64"}, Samples: 1, Dim: 3}},
		{"negative bytes", CampaignRequest{Workloads: []string{"perm:-4"}, Samples: 1, Dim: 3}},
		{"empty workload", CampaignRequest{Workloads: []string{""}, Samples: 1, Dim: 3}},
	}
	for _, c := range cases {
		if status, raw := postJSON(t, ts.URL+"/v1/campaign", c.req, nil); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, status, raw)
		}
	}
}

// TestScheduleWorkloadEndpoint drives /v1/schedule with a generated
// workload: the spec replaces the matrix, the pattern derives from the
// content hash (deterministic across servers), and the alias spelling
// shares the canonical cache key.
func TestScheduleWorkloadEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	req := ScheduleRequest{
		Workload:  "halo:8x8:512",
		Algorithm: "RS_NL",
		Topology:  &WireTopology{Spec: "torus:8x8"},
	}
	var env Envelope
	status, raw := postJSON(t, ts.URL+"/v1/schedule", req, &env)
	if status != http.StatusOK {
		t.Fatalf("schedule workload: status %d: %s", status, raw)
	}
	var res ScheduleResult
	if err := json.Unmarshal(env.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Workload != "halo:8x8:512" {
		t.Errorf("result workload %q", res.Workload)
	}
	if res.Matrix == nil || res.Matrix.N != 64 || len(res.Matrix.Messages) == 0 {
		t.Fatalf("result does not echo the generated matrix: %+v", res.Matrix)
	}
	if res.Schedule == nil || len(res.Schedule.Phases) == 0 {
		t.Fatal("no schedule produced")
	}
	if !res.LinkFree {
		t.Error("RS_NL schedule not link-free on its torus")
	}

	// Same request on a fresh server: identical key and identical bytes
	// (the pattern derives from the content hash, not server state).
	_, ts2 := newTestServer(t, Options{Workers: 1})
	var env2 Envelope
	if status, raw := postJSON(t, ts2.URL+"/v1/schedule", req, &env2); status != http.StatusOK {
		t.Fatalf("second server: status %d: %s", status, raw)
	}
	if env2.Key != env.Key {
		t.Errorf("fresh server computed key %s, first said %s", env2.Key, env.Key)
	}
	if string(env2.Result) != string(env.Result) {
		t.Error("fresh server produced different result bytes for the identical workload request")
	}

	// The dregular alias shares the canonical uniform cache slot.
	uni := ScheduleRequest{Workload: "uniform:4:1024", Algorithm: "RS_N", Topology: &WireTopology{Spec: "cube:4"}}
	ali := ScheduleRequest{Workload: "dregular:4:1024", Algorithm: "RS_N", Topology: &WireTopology{Spec: "cube:4"}}
	var uniEnv, aliEnv Envelope
	postJSON(t, ts.URL+"/v1/schedule", uni, &uniEnv)
	postJSON(t, ts.URL+"/v1/schedule", ali, &aliEnv)
	if uniEnv.Key != aliEnv.Key {
		t.Errorf("dregular alias keyed %s, uniform %s", aliEnv.Key, uniEnv.Key)
	}
	if !aliEnv.Cached {
		t.Error("alias request missed the canonical cache slot")
	}
}

// TestScheduleWorkloadBadRequests: the schedule endpoint's workload
// gates — exclusivity with matrix, the explicit-topology requirement,
// and the spec caps — all answer 400.
func TestScheduleWorkloadBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	mj := testMatrix(t, 8, 2, 64, 5)
	cases := []struct {
		name string
		req  ScheduleRequest
	}{
		{"workload plus matrix", ScheduleRequest{Workload: "uniform:2:64", Matrix: mj, Topology: &WireTopology{Spec: "cube:3"}}},
		{"workload without topology", ScheduleRequest{Workload: "uniform:2:64"}},
		{"malformed spec", ScheduleRequest{Workload: "uniform:64", Topology: &WireTopology{Spec: "cube:3"}}},
		{"density over machine", ScheduleRequest{Workload: "uniform:8:64", Topology: &WireTopology{Spec: "cube:3"}}},
		{"oversized grid", ScheduleRequest{Workload: "halo:4096x4096:8", Topology: &WireTopology{Spec: "cube:3"}}},
		{"bytes over cap", ScheduleRequest{Workload: "perm:33554433", Topology: &WireTopology{Spec: "cube:3"}}},
		{"bitcomp on odd machine", ScheduleRequest{Workload: "bitcomp:64", Topology: &WireTopology{Spec: "ring:6"}}},
	}
	for _, c := range cases {
		if status, raw := postJSON(t, ts.URL+"/v1/schedule", c.req, nil); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, status, raw)
		}
	}
}

// TestCampaignClassicKeysUnchangedByWorkloadAxis: a classic
// densities x sizes request must hash exactly as it did before the
// workloads field existed — the cache/identity contract across
// versions. The pinned key was computed from the pre-workload hashing
// scheme (grid lengths and values, samples, seed, params, topology).
func TestCampaignClassicKeysUnchangedByWorkloadAxis(t *testing.T) {
	req := CampaignRequest{Densities: []int{2, 4}, Sizes: []int64{64, 1024}, Samples: 2, Seed: 7, Dim: 3}
	d := comm.NewDigest()
	d.String("campaign/v1")
	d.Int64(2)
	d.Int64(2)
	d.Int64(4)
	d.Int64(2)
	d.Int64(64)
	d.Int64(1024)
	d.Int64(2)
	d.Int64(7)
	d.String("ipsc860")
	d.String("topology")
	d.String(hypercube.MustNew(3).Name())
	if got := campaignKeyFor(t, &req); got != d.Hex() {
		t.Errorf("classic campaign key %s, want the historical %s", got, d.Hex())
	}
}

// TestScheduleSimulateHugeTopology is the route-cap lift end to end: a
// 4096-node torus — whose dense route table (~545M hops) the old
// footprint gate answered 400 — must schedule AND simulate through the
// synchronous API. The shared table cache serves it lazily, and the
// worker builds (without caching) a 4096-node machine over it.
func TestScheduleSimulateHugeTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("4096-node machine build is too heavy for -short")
	}
	_, ts := newTestServer(t, Options{Workers: 1})
	topoSpec := &WireTopology{Spec: "torus:64x64"}

	var env Envelope
	status, raw := postJSON(t, ts.URL+"/v1/schedule",
		ScheduleRequest{Workload: "perm:512", Algorithm: "GREEDY", Topology: topoSpec}, &env)
	if status != http.StatusOK {
		t.Fatalf("schedule on torus:64x64: status %d: %s", status, raw)
	}
	var schedRes ScheduleResult
	if err := json.Unmarshal(env.Result, &schedRes); err != nil {
		t.Fatal(err)
	}
	if schedRes.Schedule == nil || schedRes.Schedule.N != 4096 {
		t.Fatalf("bad schedule: %s", env.Result)
	}

	var simEnv Envelope
	status, raw = postJSON(t, ts.URL+"/v1/simulate",
		SimulateRequest{Schedule: schedRes.Schedule, Topology: topoSpec}, &simEnv)
	if status != http.StatusOK {
		t.Fatalf("simulate on torus:64x64: status %d: %s", status, raw)
	}
	var simRes SimulateResult
	if err := json.Unmarshal(simEnv.Result, &simRes); err != nil {
		t.Fatal(err)
	}
	if simRes.MakespanUS <= 0 {
		t.Errorf("4096-node simulate returned makespan %v", simRes.MakespanUS)
	}
}

// TestSimulateErrorMapsEventLimit pins the runaway-simulation error
// contract: a *des.LimitError anywhere in a Run error chain becomes a
// 422 with the stable simulation_limit code — a client fault, not a
// 500 — and every other failure passes through untouched.
func TestSimulateErrorMapsEventLimit(t *testing.T) {
	wrapped := fmt.Errorf("ipsc: %w", &des.LimitError{MaxEvents: 1000, Now: 42})
	ae, ok := simulateError(wrapped).(*apiError)
	if !ok {
		t.Fatalf("LimitError did not map to an apiError")
	}
	if ae.status != http.StatusUnprocessableEntity || ae.Code() != CodeSimulationLimit {
		t.Errorf("LimitError mapped to status %d code %q, want 422 %q", ae.status, ae.Code(), CodeSimulationLimit)
	}
	if !strings.Contains(ae.msg, "1000") {
		t.Errorf("mapped message %q does not name the bound", ae.msg)
	}
	plain := errors.New("some other failure")
	if got := simulateError(plain); got != plain {
		t.Errorf("non-limit error rewritten: %v", got)
	}
}
