package service

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// doWire posts body to path with the given headers and returns the
// response plus its raw (not transparently decompressed) body bytes:
// setting Accept-Encoding explicitly disables the Go client's
// transparent gzip, so what we read is what crossed the wire.
func doWire(t *testing.T, ts *httptest.Server, path string, body []byte, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ContentTypeJSON)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func gunzip(t *testing.T, raw []byte) []byte {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("response is not gzip: %v", err)
	}
	out, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestContentNegotiationMatrix is the satellite table test: every
// encoding x compression x revalidation combination against one
// request, all answers agreeing with the canonical JSON result.
func TestContentNegotiationMatrix(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	body, err := json.Marshal(ScheduleRequest{Matrix: testMatrix(t, 16, 4, 8192, 5), Algorithm: "RS_NL"})
	if err != nil {
		t.Fatal(err)
	}

	// Canonical answer first (also warms the cache: every variant below
	// must serve the same bytes-for-bytes result from it).
	var canon Envelope
	status, raw := postJSON(t, ts.URL+"/v1/schedule", json.RawMessage(body), &canon)
	if status != http.StatusOK {
		t.Fatalf("canonical request: status %d: %s", status, raw)
	}
	var want ScheduleResult
	if err := json.Unmarshal(canon.Result, &want); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name      string
		accept    string
		acceptEnc string
		wantCT    string
		wantGzip  bool
		wantETag  string
	}{
		{"json identity", "", "identity", ContentTypeJSON, false, `"` + canon.Key + `"`},
		{"json via */*", "*/*", "identity", ContentTypeJSON, false, `"` + canon.Key + `"`},
		{"json via application/*", "application/*;q=0.9", "identity", ContentTypeJSON, false, `"` + canon.Key + `"`},
		{"json gzip", ContentTypeJSON, "gzip", ContentTypeJSON, true, `"` + canon.Key + `"`},
		{"binary identity", ContentTypeBinary, "identity", ContentTypeBinary, false, `"` + canon.Key + `+b"`},
		{"binary gzip", ContentTypeBinary + ";q=1.0, text/html", "gzip, deflate", ContentTypeBinary, true, `"` + canon.Key + `+b"`},
		{"binary wins header order", ContentTypeBinary + ", " + ContentTypeJSON, "identity", ContentTypeBinary, false, `"` + canon.Key + `+b"`},
		{"gzip q=0 means identity", ContentTypeJSON, "gzip;q=0", ContentTypeJSON, false, `"` + canon.Key + `"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hdr := map[string]string{"Accept-Encoding": tc.acceptEnc}
			if tc.accept != "" {
				hdr["Accept"] = tc.accept
			}
			resp, raw := doWire(t, ts, "/v1/schedule", body, hdr)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, raw)
			}
			if ct := resp.Header.Get("Content-Type"); ct != tc.wantCT {
				t.Errorf("Content-Type %q, want %q", ct, tc.wantCT)
			}
			if et := resp.Header.Get("ETag"); et != tc.wantETag {
				t.Errorf("ETag %q, want %q", et, tc.wantETag)
			}
			if !strings.Contains(resp.Header.Get("Vary"), "Accept") {
				t.Errorf("missing Vary header, got %q", resp.Header.Get("Vary"))
			}
			gz := resp.Header.Get("Content-Encoding") == "gzip"
			if gz != tc.wantGzip {
				t.Fatalf("Content-Encoding gzip=%v, want %v", gz, tc.wantGzip)
			}
			plain := raw
			if gz {
				plain = gunzip(t, raw)
			}
			var got ScheduleResult
			var cached bool
			if tc.wantCT == ContentTypeBinary {
				br, err := DecodeBinaryResponse(plain)
				if err != nil {
					t.Fatalf("binary decode: %v", err)
				}
				if br.Key != canon.Key {
					t.Errorf("binary key %q, want %q", br.Key, canon.Key)
				}
				if br.Schedule == nil {
					t.Fatal("binary response has no schedule document")
				}
				got, cached = *br.Schedule, br.Cached
			} else {
				var env Envelope
				if err := json.Unmarshal(plain, &env); err != nil {
					t.Fatalf("json decode: %v (%s)", err, plain)
				}
				if env.Key != canon.Key {
					t.Errorf("key %q, want %q", env.Key, canon.Key)
				}
				if err := json.Unmarshal(env.Result, &got); err != nil {
					t.Fatal(err)
				}
				cached = env.Cached
			}
			if !cached {
				t.Error("variant of a cached result not marked cached")
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("result differs from canonical JSON answer")
			}

			// Revalidation: presenting the ETag must be a 304 with zero
			// body bytes; presenting a stale one must re-send the body.
			hdr["If-None-Match"] = tc.wantETag
			resp, raw = doWire(t, ts, "/v1/schedule", body, hdr)
			if resp.StatusCode != http.StatusNotModified {
				t.Fatalf("If-None-Match hit: status %d, want 304", resp.StatusCode)
			}
			if len(raw) != 0 {
				t.Errorf("304 carried %d body bytes", len(raw))
			}
			if et := resp.Header.Get("ETag"); et != tc.wantETag {
				t.Errorf("304 ETag %q, want %q", et, tc.wantETag)
			}
			hdr["If-None-Match"] = `"0000stale"`
			resp, raw = doWire(t, ts, "/v1/schedule", body, hdr)
			if resp.StatusCode != http.StatusOK || len(raw) == 0 {
				t.Errorf("stale If-None-Match: status %d with %d bytes, want a full 200", resp.StatusCode, len(raw))
			}
		})
	}
}

// TestNotAcceptable406 is the regression test for the silent-JSON bug:
// an Accept header matching no supported encoding must be answered 406
// with a structured error, not a JSON body the client never asked for.
func TestNotAcceptable406(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	body, _ := json.Marshal(ScheduleRequest{Matrix: testMatrix(t, 8, 3, 1024, 1)})

	for _, path := range []string{"/v1/schedule", "/v1/simulate"} {
		for _, accept := range []string{"text/html", "application/xml, text/*;q=0.5", "image/png"} {
			resp, raw := doWire(t, ts, path, body, map[string]string{"Accept": accept})
			if resp.StatusCode != http.StatusNotAcceptable {
				t.Errorf("%s Accept %q: status %d, want 406 (%s)", path, accept, resp.StatusCode, raw)
				continue
			}
			var env ErrorEnvelope
			if err := json.Unmarshal(raw, &env); err != nil || env.Err.Code != CodeNotAcceptable {
				t.Errorf("%s Accept %q: error envelope %s, want code %q", path, accept, raw, CodeNotAcceptable)
			}
		}
	}

	// The batch stream is NDJSON-only: an Accept that excludes it is
	// also a 406, up front, before any item runs.
	batch, _ := json.Marshal(BatchScheduleRequest{Requests: []ScheduleRequest{{Matrix: testMatrix(t, 8, 3, 1024, 1)}}})
	resp, raw := doWire(t, ts, "/v1/schedule/batch", batch, map[string]string{"Accept": ContentTypeJSON})
	if resp.StatusCode != http.StatusNotAcceptable {
		t.Errorf("batch Accept json: status %d, want 406 (%s)", resp.StatusCode, raw)
	}

	// Mislabeled request bodies are 415, not a confusing parse error.
	resp, raw = doWire(t, ts, "/v1/schedule", body, map[string]string{"Content-Type": "text/plain"})
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("text/plain body: status %d, want 415 (%s)", resp.StatusCode, raw)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Err.Code != CodeUnsupportedMedia {
		t.Errorf("415 envelope %s, want code %q", raw, CodeUnsupportedMedia)
	}

	// curl -d's default label must keep working: every release before
	// the 415 gate accepted it, and the README's quickstart depends
	// on it.
	resp, raw = doWire(t, ts, "/v1/schedule", body,
		map[string]string{"Content-Type": "application/x-www-form-urlencoded"})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("curl-default urlencoded body: status %d, want 200 (%s)", resp.StatusCode, raw)
	}
}

// TestRevalidationAndCompression1024 is the acceptance-criteria test:
// on a 1024-node schedule response, a repeat request with
// If-None-Match transfers zero body bytes, and the binary+gzip
// encoding cuts response bytes at least 10x vs plain JSON.
func TestRevalidationAndCompression1024(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-node schedule")
	}
	svc, ts := newTestServer(t, Options{Workers: 2})
	body, _ := json.Marshal(ScheduleRequest{
		Workload:  "uniform:8:1048576",
		Algorithm: "RS_NL",
		Topology:  &WireTopology{Spec: "cube:10"},
	})

	resp, rawJSON := doWire(t, ts, "/v1/schedule", body, map[string]string{"Accept-Encoding": "identity"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: status %d: %s", resp.StatusCode, rawJSON)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on schedule response")
	}

	// Zero-byte revalidation.
	resp, raw := doWire(t, ts, "/v1/schedule", body,
		map[string]string{"Accept-Encoding": "identity", "If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation: status %d, want 304", resp.StatusCode)
	}
	if len(raw) != 0 {
		t.Fatalf("revalidation transferred %d body bytes, want 0", len(raw))
	}
	if cl := resp.Header.Get("Content-Length"); cl != "" && cl != "0" {
		t.Errorf("304 Content-Length %q", cl)
	}

	// Binary + gzip vs JSON: >= 10x smaller on the wire.
	resp, rawBin := doWire(t, ts, "/v1/schedule", body,
		map[string]string{"Accept": ContentTypeBinary, "Accept-Encoding": "gzip"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary schedule: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatal("binary response not gzip-compressed")
	}
	if 10*len(rawBin) > len(rawJSON) {
		t.Errorf("binary+gzip %d bytes vs JSON %d bytes: less than the required 10x win",
			len(rawBin), len(rawJSON))
	}
	// And it still decodes to the same schedule.
	br, err := DecodeBinaryResponse(gunzip(t, rawBin))
	if err != nil {
		t.Fatalf("binary decode: %v", err)
	}
	var env Envelope
	if err := json.Unmarshal(rawJSON, &env); err != nil {
		t.Fatal(err)
	}
	var want ScheduleResult
	if err := json.Unmarshal(env.Result, &want); err != nil {
		t.Fatal(err)
	}
	if br.Schedule == nil || !reflect.DeepEqual(*br.Schedule, want) {
		t.Error("binary schedule differs from JSON schedule")
	}

	// The wire metrics saw all of it.
	metrics := getMetrics(t, ts)
	for _, needle := range []string{
		"unschedd_http_304_total 1",
		`unschedd_response_encoding_total{encoding="binary",compression="gzip"} 1`,
	} {
		if !strings.Contains(metrics, needle) {
			t.Errorf("metrics missing %q", needle)
		}
	}
	if svc.bytesSaved.Load() <= 0 {
		t.Error("bytesSaved counter never moved")
	}
}

func getMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestRevalidationWithoutCache proves the 304 path needs no cache at
// all: the response is a pure function of the content-hash key, so a
// client presenting the current ETag holds current bytes even when
// the entry was never retained.
func TestRevalidationWithoutCache(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, CacheEntries: -1})
	body, _ := json.Marshal(ScheduleRequest{Matrix: testMatrix(t, 16, 4, 8192, 5), Algorithm: "LP"})

	resp, _ := doWire(t, ts, "/v1/schedule", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: status %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	resp, raw := doWire(t, ts, "/v1/schedule", body, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified || len(raw) != 0 {
		t.Fatalf("uncached revalidation: status %d with %d bytes, want empty 304", resp.StatusCode, len(raw))
	}
}

// TestBinarySimulateResponse covers the second document type: a
// simulate run negotiated to binary agrees with its JSON twin.
func TestBinarySimulateResponse(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	mj := testMatrix(t, 16, 4, 8192, 5)

	var env Envelope
	status, raw := postJSON(t, ts.URL+"/v1/schedule", ScheduleRequest{Matrix: mj, Algorithm: "RS_NL"}, &env)
	if status != http.StatusOK {
		t.Fatalf("schedule: status %d: %s", status, raw)
	}
	var schedRes ScheduleResult
	if err := json.Unmarshal(env.Result, &schedRes); err != nil {
		t.Fatal(err)
	}
	simBody, _ := json.Marshal(SimulateRequest{Schedule: schedRes.Schedule, Matrix: mj})

	var simEnv Envelope
	status, raw = postJSON(t, ts.URL+"/v1/simulate", json.RawMessage(simBody), &simEnv)
	if status != http.StatusOK {
		t.Fatalf("simulate: status %d: %s", status, raw)
	}
	var want SimulateResult
	if err := json.Unmarshal(simEnv.Result, &want); err != nil {
		t.Fatal(err)
	}

	resp, rawBin := doWire(t, ts, "/v1/simulate", simBody,
		map[string]string{"Accept": ContentTypeBinary, "Accept-Encoding": "identity"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary simulate: status %d", resp.StatusCode)
	}
	br, err := DecodeBinaryResponse(rawBin)
	if err != nil {
		t.Fatalf("binary decode: %v", err)
	}
	if br.Key != simEnv.Key || !br.Cached {
		t.Errorf("binary simulate key=%q cached=%v, want key=%q cached=true", br.Key, br.Cached, simEnv.Key)
	}
	if br.Simulate == nil || !reflect.DeepEqual(*br.Simulate, want) {
		t.Errorf("binary simulate result %+v, want %+v", br.Simulate, want)
	}
}

// TestDecodeBinaryResponseTotal: the client-side envelope decoder must
// reject malformed input with an error, never a panic.
func TestDecodeBinaryResponseTotal(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	body, _ := json.Marshal(ScheduleRequest{Matrix: testMatrix(t, 8, 3, 1024, 1), Algorithm: "GREEDY"})
	resp, good := doWire(t, ts, "/v1/schedule", body,
		map[string]string{"Accept": ContentTypeBinary, "Accept-Encoding": "identity"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if _, err := DecodeBinaryResponse(good); err != nil {
		t.Fatalf("good payload rejected: %v", err)
	}
	for i := 0; i <= len(good); i++ {
		if _, err := DecodeBinaryResponse(good[:i]); err == nil && i < len(good) {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	mutants := map[string][]byte{
		"bad magic":     append([]byte("XXXX"), good[4:]...),
		"bad version":   append([]byte{'U', 'S', 'W', 'R', 99}, good[5:]...),
		"trailing byte": append(append([]byte{}, good...), 0),
		"bad doc type":  nil,
	}
	for name, b := range mutants {
		if b == nil {
			continue
		}
		if _, err := DecodeBinaryResponse(b); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestScheduleBatch drives the streaming endpoint: mixed good and bad
// items over one connection, every line a well-formed BatchItem,
// results identical to the synchronous endpoint's, failures isolated
// to their own lines with stable codes.
func TestScheduleBatch(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	good := testMatrix(t, 16, 4, 8192, 5)
	reqs := []ScheduleRequest{
		{Matrix: good, Algorithm: "RS_NL"},
		{Matrix: good, Algorithm: "BOGUS"},
		{Matrix: good, Algorithm: "LP"},
		{Matrix: &WireMatrix{N: 1}, Algorithm: "LP"},
		{Matrix: good, Algorithm: "RS_NL"}, // duplicate of item 0: same key
	}
	batchBody, _ := json.Marshal(BatchScheduleRequest{Requests: reqs})

	resp, raw := doWire(t, ts, "/v1/schedule/batch", batchBody, map[string]string{"Accept": ContentTypeNDJSON})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeNDJSON {
		t.Errorf("batch Content-Type %q, want %q", ct, ContentTypeNDJSON)
	}
	items := decodeBatch(t, raw, len(reqs))

	// Synchronous twin of item 0 for comparison.
	var env Envelope
	status, _ := postJSON(t, ts.URL+"/v1/schedule", reqs[0], &env)
	if status != http.StatusOK {
		t.Fatalf("sync twin: status %d", status)
	}

	for idx, item := range items {
		switch idx {
		case 1:
			if item.Error == nil || item.Error.Code != CodeUnknownAlgorithm {
				t.Errorf("item 1: error %+v, want code %q", item.Error, CodeUnknownAlgorithm)
			}
		case 3:
			if item.Error == nil || item.Error.Code != CodeBadRequest {
				t.Errorf("item 3: error %+v, want code %q", item.Error, CodeBadRequest)
			}
		default:
			if item.Error != nil {
				t.Errorf("item %d: unexpected error %+v", idx, item.Error)
				continue
			}
			if item.Key == "" || len(item.Result) == 0 {
				t.Errorf("item %d: empty result", idx)
			}
		}
	}
	if items[0].Key != env.Key || !bytes.Equal(items[0].Result, env.Result) {
		t.Error("batch item 0 differs from the synchronous endpoint's answer")
	}
	if items[4].Key != items[0].Key {
		t.Error("duplicate requests got different keys")
	}

	// A repeat of the whole batch is all cache hits.
	resp, raw = doWire(t, ts, "/v1/schedule/batch", batchBody, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat batch: status %d", resp.StatusCode)
	}
	for idx, item := range decodeBatch(t, raw, len(reqs)) {
		if item.Error == nil && !item.Cached {
			t.Errorf("repeat batch item %d not served from cache", idx)
		}
	}
}

// decodeBatch parses an NDJSON stream into items indexed by request
// position, requiring exactly one line per request.
func decodeBatch(t *testing.T, raw []byte, n int) []BatchItem {
	t.Helper()
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) != n {
		t.Fatalf("batch stream has %d lines, want %d:\n%s", len(lines), n, raw)
	}
	items := make([]BatchItem, n)
	seen := make([]bool, n)
	for _, line := range lines {
		var item BatchItem
		if err := json.Unmarshal([]byte(line), &item); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if item.Index < 0 || item.Index >= n || seen[item.Index] {
			t.Fatalf("bad or duplicate index %d in %q", item.Index, line)
		}
		seen[item.Index] = true
		items[item.Index] = item
	}
	return items
}

// TestBatchValidation covers the request-shape gates of the batch
// endpoint.
func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty body", `{}`, http.StatusBadRequest},
		{"empty list", `{"requests":[]}`, http.StatusBadRequest},
		{"not json", `]`, http.StatusBadRequest},
		{"too many", fmt.Sprintf(`{"requests":[%s]}`,
			strings.TrimRight(strings.Repeat(`{},`, maxBatchItems+1), ",")), http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, raw := doWire(t, ts, "/v1/schedule/batch", []byte(tc.body), nil)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, raw)
		}
	}
}
