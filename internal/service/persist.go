package service

// Disk persistence for the schedule cache. Every memoized response is
// a pure function of its content-hash key (PR 2), so persisted bytes
// are valid forever and across servers: a daemon restarted on the same
// directory serves yesterday's schedules byte-identically instead of
// re-paying every O(n^2) computation. The layer is deliberately dumb —
// one self-describing, checksummed record per file, named by key —
// because that is exactly the shape a future peer-fill/sharding layer
// can ship between daemons.
//
// Write-through is asynchronous and batched: put enqueues under a
// mutex and a single writer goroutine drains the queue to disk, so the
// hot path never blocks on fsync. Corrupt or truncated records are
// skipped (and deleted) on load, counted, and never crash startup.
// Disk usage is bounded by entry count and total bytes; GC removes the
// oldest records first, which under LRU-ish traffic are also the least
// valuable.

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Record layout (all integers big-endian):
//
//	offset size  field
//	0      4     magic "USCR"
//	4      1     format version (1)
//	5      1     key length K
//	6      4     value length V
//	10     K     key (the hex content hash)
//	10+K   V     value (the marshaled result document)
//	10+K+V 4     CRC-32C (Castagnoli) over bytes [0, 10+K+V)
//
// The record is self-describing: the key lives inside the record, so a
// renamed or copied file still decodes to the right cache slot, and a
// peer can validate a shipped record without trusting its filename.
const (
	recordVersion   = 1
	recordHeaderLen = 4 + 1 + 1 + 4
	recordSuffix    = ".rec"
	// maxRecordBytes caps one record's total size on load. Values are
	// marshaled result documents for requests capped at maxRequestBytes,
	// so twice that is generous headroom; anything larger in the cache
	// dir is garbage by definition.
	maxRecordBytes = 2 * maxRequestBytes
)

var recordMagic = [4]byte{'U', 'S', 'C', 'R'}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

var (
	errRecordTooShort = errors.New("record truncated")
	errRecordMagic    = errors.New("bad record magic")
	errRecordVersion  = errors.New("unsupported record version")
	errRecordLength   = errors.New("record length mismatch")
	errRecordChecksum = errors.New("record checksum mismatch")
	errRecordKey      = errors.New("bad record key")
)

// encodeRecord serializes one cache entry. Keys are hex content hashes
// (64 bytes); anything that does not fit the 1-byte length is a
// programming error surfaced as errRecordKey.
func encodeRecord(key string, value []byte) ([]byte, error) {
	if len(key) == 0 || len(key) > 255 {
		return nil, errRecordKey
	}
	buf := make([]byte, recordHeaderLen+len(key)+len(value)+4)
	copy(buf, recordMagic[:])
	buf[4] = recordVersion
	buf[5] = byte(len(key))
	binary.BigEndian.PutUint32(buf[6:10], uint32(len(value)))
	copy(buf[recordHeaderLen:], key)
	copy(buf[recordHeaderLen+len(key):], value)
	sum := crc32.Checksum(buf[:len(buf)-4], crcTable)
	binary.BigEndian.PutUint32(buf[len(buf)-4:], sum)
	return buf, nil
}

// decodeRecord parses and verifies one record. It is total: arbitrary
// input yields an error, never a panic, and no length field is trusted
// before it is checked against the actual buffer (fuzzed by
// FuzzCacheRecord).
func decodeRecord(b []byte) (key string, value []byte, err error) {
	if len(b) < recordHeaderLen+4 {
		return "", nil, errRecordTooShort
	}
	if [4]byte(b[:4]) != recordMagic {
		return "", nil, errRecordMagic
	}
	if b[4] != recordVersion {
		return "", nil, errRecordVersion
	}
	klen := int(b[5])
	vlen := int(binary.BigEndian.Uint32(b[6:10]))
	if klen == 0 {
		return "", nil, errRecordKey
	}
	if len(b) != recordHeaderLen+klen+vlen+4 {
		return "", nil, errRecordLength
	}
	body := b[:len(b)-4]
	if crc32.Checksum(body, crcTable) != binary.BigEndian.Uint32(b[len(b)-4:]) {
		return "", nil, errRecordChecksum
	}
	key = string(b[recordHeaderLen : recordHeaderLen+klen])
	value = b[recordHeaderLen+klen : len(b)-4]
	return key, value, nil
}

// validRecordKey reports whether key is safe to use as a filename:
// real keys are lowercase-hex content hashes, and restricting to that
// set keeps path traversal structurally impossible.
func validRecordKey(key string) bool {
	if len(key) == 0 || len(key) > 255 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// diskStore is the disk half of the schedule cache: an async,
// batched write-through log of one checksummed record file per key,
// bounded by entry count and total bytes.
type diskStore struct {
	dir        string
	maxEntries int
	maxBytes   int64

	mu      sync.Mutex
	pending map[string][]byte // queued write-throughs; latest value wins
	closed  bool
	wake    chan struct{} // buffered(1): nudges the writer
	done    chan struct{} // writer exited; close() waits on it

	// Observability, surfaced on /metrics.
	loadErrors  atomic.Int64 // corrupt/unreadable records skipped
	writeErrors atomic.Int64 // failed record writes or GC removals
	records     atomic.Int64 // record files on disk after the last GC
	bytes       atomic.Int64 // their total size
}

// newDiskStore opens (creating if needed) the store directory. The
// caller loads before calling start, so warm restart never races the
// writer's GC.
func newDiskStore(dir string, maxEntries int, maxBytes int64) (*diskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &diskStore{
		dir:        dir,
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		pending:    make(map[string][]byte),
		wake:       make(chan struct{}, 1),
		done:       make(chan struct{}),
	}, nil
}

// start launches the writer goroutine.
func (ds *diskStore) start() { go ds.run() }

// enqueue queues one write-through. It never blocks on I/O: the record
// is written by the writer goroutine on its next batch. After close,
// writes are dropped — the server is shutting down and the response
// was already served from memory.
func (ds *diskStore) enqueue(key string, value []byte) {
	if !validRecordKey(key) {
		ds.writeErrors.Add(1)
		return
	}
	ds.mu.Lock()
	if ds.closed {
		ds.mu.Unlock()
		return
	}
	ds.pending[key] = value
	ds.mu.Unlock()
	select {
	case ds.wake <- struct{}{}:
	default:
	}
}

// close flushes every queued record to disk and stops the writer. It
// is the durability point of Server.Close: a daemon that shut down
// cleanly restarts with everything it had memoized.
func (ds *diskStore) close() {
	ds.mu.Lock()
	if ds.closed {
		ds.mu.Unlock()
		<-ds.done
		return
	}
	ds.closed = true
	ds.mu.Unlock()
	select {
	case ds.wake <- struct{}{}:
	default:
	}
	<-ds.done
}

// run is the writer loop: drain the pending map as one batch, persist
// it, garbage-collect, repeat. Exits when close() is called and the
// queue is empty.
func (ds *diskStore) run() {
	defer close(ds.done)
	for {
		ds.mu.Lock()
		batch := ds.pending
		if len(batch) == 0 {
			if ds.closed {
				ds.mu.Unlock()
				return
			}
			ds.mu.Unlock()
			<-ds.wake
			continue
		}
		ds.pending = make(map[string][]byte)
		ds.mu.Unlock()
		for key, value := range batch {
			if err := ds.writeRecord(key, value); err != nil {
				ds.writeErrors.Add(1)
			}
		}
		ds.gc()
	}
}

// writeRecord persists one record atomically: temp file, fsync,
// rename. A crash mid-write leaves either the old record or a temp
// file the next GC sweeps up — never a half-written record under the
// real name (and even that would be caught by the checksum).
func (ds *diskStore) writeRecord(key string, value []byte) error {
	rec, err := encodeRecord(key, value)
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(ds.dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err = f.Write(rec); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(ds.dir, key+recordSuffix))
	}
	if err != nil {
		os.Remove(tmp)
	}
	return err
}

// diskRecord is one on-disk record file, as seen by load and gc.
type diskRecord struct {
	name  string
	mtime time.Time
	size  int64
}

// scan lists the record files (and orphaned temp files, which it
// removes) in age order, oldest first.
func (ds *diskStore) scan() []diskRecord {
	entries, err := os.ReadDir(ds.dir)
	if err != nil {
		ds.loadErrors.Add(1)
		return nil
	}
	var recs []diskRecord
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if len(name) > len(recordSuffix) && name[len(name)-len(recordSuffix):] == recordSuffix {
			info, err := e.Info()
			if err != nil {
				continue // vanished between ReadDir and Info
			}
			recs = append(recs, diskRecord{name: name, mtime: info.ModTime(), size: info.Size()})
		} else if len(name) > 4 && name[:4] == ".tmp" {
			// A crash between CreateTemp and Rename left this behind.
			os.Remove(filepath.Join(ds.dir, name))
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if !recs[i].mtime.Equal(recs[j].mtime) {
			return recs[i].mtime.Before(recs[j].mtime)
		}
		return recs[i].name < recs[j].name
	})
	return recs
}

// gc bounds disk usage: while over the entry or byte budget, the
// oldest record goes. It also refreshes the records/bytes gauges.
func (ds *diskStore) gc() {
	recs := ds.scan()
	var total int64
	for _, r := range recs {
		total += r.size
	}
	i := 0
	for ; i < len(recs) && (len(recs)-i > ds.maxEntries || total > ds.maxBytes); i++ {
		if err := os.Remove(filepath.Join(ds.dir, recs[i].name)); err != nil {
			ds.writeErrors.Add(1)
		}
		total -= recs[i].size
	}
	ds.records.Store(int64(len(recs) - i))
	ds.bytes.Store(total)
}

// load warm-starts the memory cache: it reads the newest maxEntries
// records and feeds them to into in oldest-to-newest order, so the
// restored LRU order matches the records' ages. Corrupt, truncated,
// oversized, or unreadable records are counted, deleted, and skipped —
// a damaged cache dir costs recomputation, never a crashed daemon.
// Returns the number of entries restored.
func (ds *diskStore) load(into func(key string, value []byte)) int {
	recs := ds.scan()
	if len(recs) > ds.maxEntries {
		recs = recs[len(recs)-ds.maxEntries:] // newest maxEntries
	}
	loaded := 0
	for _, r := range recs {
		path := filepath.Join(ds.dir, r.name)
		if r.size > maxRecordBytes {
			ds.dropCorrupt(path)
			continue
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			ds.loadErrors.Add(1)
			continue
		}
		key, value, err := decodeRecord(raw)
		if err != nil || !validRecordKey(key) || key+recordSuffix != r.name {
			// A record whose embedded key disagrees with its filename was
			// tampered with or mis-copied; its bytes cannot be trusted to
			// belong to either key.
			ds.dropCorrupt(path)
			continue
		}
		into(key, value)
		loaded++
	}
	ds.gc()
	return loaded
}

// dropCorrupt counts and removes an undecodable record so it cannot
// occupy the disk budget (or fail again) on every future restart.
func (ds *diskStore) dropCorrupt(path string) {
	ds.loadErrors.Add(1)
	os.Remove(path)
}
