package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"unsched/internal/costmodel"
	"unsched/internal/ipsc"
	"unsched/internal/sched"
	"unsched/internal/topo"
)

// errBusy is returned by submit when the queue is full; handlers
// translate it into 429 so load sheds at the door instead of piling
// into unbounded goroutines.
var errBusy = errors.New("service: queue full")

// errClosed is returned by submit after Close.
var errClosed = errors.New("service: shutting down")

// task is one unit of synchronous work. The worker calls run with its
// private simulator state and closes done; the submitting handler
// waits on done and reads whatever run stored. Workers never touch the
// HTTP layer, so an abandoned request (client gone) finishes harmlessly.
type task struct {
	run  func(w *worker)
	done chan struct{}
	// panicked carries a panic recovered while running the task; the
	// submitting handler surfaces it as a 500. Written before done is
	// closed, read only after.
	panicked error
}

// worker owns the reusable per-goroutine simulation and scheduling
// state: one simulator machine per (topology, params) pair and one
// scheduler core per topology it has served, reset and reused across
// requests so the hot path — repeated workloads on the default
// machine — allocates nothing per run beyond program compilation and
// the schedule itself. Cores hold mutable scratch and are private to
// the worker; the route tables they walk are immutable and shared
// daemon-wide through the pool's tableCache, so the O(n^2 * diameter)
// precompute happens once per topology per daemon, not once per
// worker.
type worker struct {
	machines map[machineKey]*ipsc.Machine
	cores    map[string]*sched.Core
	tables   *tableCache
}

// tableCache shares precomputed route tables daemon-wide: across all
// workers of the pool and across campaign runners. Tables are
// immutable after construction, so publishing one pointer serves
// every goroutine; building under the lock serializes cold-start
// misses on the same topology instead of duplicating the n^2-route
// precompute per worker.
type tableCache struct {
	mu     sync.Mutex
	tables map[string]*topo.RouteTable
}

func newTableCache() *tableCache {
	return &tableCache{tables: make(map[string]*topo.RouteTable)}
}

// maxSharedTables bounds daemon-wide retained route tables. A dense
// table is capped by the maxRouteTableHops budget (~268 MB worst case,
// reached only by extreme-but-legal shapes like the 32x32 mesh; the
// dim-10 cube is ~20 MB) and a lazy table stores no hops at all, so
// eight retained tables stay bounded even under an adversarial
// topology mix — and unlike the per-worker caches, this bound does not
// multiply by worker count.
const maxSharedTables = 8

// get returns the daemon-shared route table for net, building it on
// first use. The auto constructor picks the representation: dense
// (precomputed CSR routes, word-mask bitset occupancy) when the hop
// footprint fits the maxRouteTableHops budget, lazy (routes generated
// on the fly, nothing stored) when it would not — which is what lets
// the service admit high-diameter shapes like a 64x64 torus that the
// old footprint gate answered 400.
func (tc *tableCache) get(net topo.Topology) *topo.RouteTable {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if rt, ok := tc.tables[net.Name()]; ok {
		return rt
	}
	if len(tc.tables) >= maxSharedTables {
		for k := range tc.tables {
			delete(tc.tables, k)
			break
		}
	}
	rt := topo.NewRouteTableAuto(net, maxRouteTableHops)
	tc.tables[net.Name()] = rt
	return rt
}

type machineKey struct {
	topoName string
	params   string
}

// maxMachinesPerWorker bounds the per-worker machine cache; requests
// name topologies freely, so an adversarial mix could otherwise grow
// it without limit. Machine state is O(n^2) — ~10 MB at 1024 nodes —
// so 4 machines bounds a worker's retained simulator memory under
// ~50 MB even under a worst-case topology mix; real deployments hit
// one or two topologies and never evict.
const maxMachinesPerWorker = 4

// maxCachedMachineNodes bounds the machines (and scheduler cores) a
// worker retains across requests. A 4096-node machine's O(n^2) arrival
// arenas run ~150 MB; caching even one per worker would dwarf every
// other bound, so machines above this size are built per request and
// released with it. The requests that need them are rare and already
// pay seconds of scheduling, so the rebuild is noise.
const maxCachedMachineNodes = 1 << maxCampaignDim

// machine returns the worker's reusable machine for (net, params),
// building and caching it on first use. Machines are built over the
// daemon-shared route table, so transfers claim and release whole
// routes word-at-a-time through its bitset spans when the table is
// dense, and fall back to on-the-fly routing when it is lazy.
func (w *worker) machine(net topo.Topology, paramsName string, params costmodel.Params) (*ipsc.Machine, error) {
	if net.Nodes() > maxCachedMachineNodes {
		return ipsc.NewMachine(w.tables.get(net), params)
	}
	key := machineKey{topoName: net.Name(), params: paramsName}
	if m, ok := w.machines[key]; ok {
		return m, nil
	}
	// Evict one arbitrary entry rather than the whole map: a cycling
	// topology mix then rebuilds one machine per request, not all of
	// them.
	if len(w.machines) >= maxMachinesPerWorker {
		for k := range w.machines {
			delete(w.machines, k)
			break
		}
	}
	m, err := ipsc.NewMachine(w.tables.get(net), params)
	if err != nil {
		return nil, err
	}
	w.machines[key] = m
	return m, nil
}

// schedCore returns the worker's reusable scheduler core for net,
// building it over the daemon-shared route table on first use. The
// same eviction bound as the machine cache applies to the per-worker
// core scratch; the heavyweight tables live in the shared cache.
func (w *worker) schedCore(net topo.Topology) *sched.Core {
	if net.Nodes() > maxCachedMachineNodes {
		return sched.NewCoreForTable(w.tables.get(net))
	}
	if c, ok := w.cores[net.Name()]; ok {
		return c
	}
	if len(w.cores) >= maxMachinesPerWorker {
		for k := range w.cores {
			delete(w.cores, k)
			break
		}
	}
	c := sched.NewCoreForTable(w.tables.get(net))
	w.cores[net.Name()] = c
	return c
}

// pool runs tasks on a fixed set of workers fed by a bounded queue.
type pool struct {
	mu     sync.Mutex
	closed bool
	queue  chan *task
	wg     sync.WaitGroup
	depth  atomic.Int64
}

// newPool starts workers goroutines behind a queue of queueLen slots.
// The route-table cache is passed in because it outlives the pool's
// concerns: the server shares it with campaign runners too.
func newPool(workers, queueLen int, shared *tableCache) *pool {
	p := &pool{queue: make(chan *task, queueLen)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			w := &worker{
				machines: make(map[machineKey]*ipsc.Machine),
				cores:    make(map[string]*sched.Core),
				tables:   shared,
			}
			for t := range p.queue {
				p.depth.Add(-1)
				runOne(w, t)
			}
		}()
	}
	return p
}

// runOne executes one task, containing any panic to that task: the
// worker survives, done is always closed (so single-flight followers
// are never stranded), and the panic surfaces to the one request that
// triggered it instead of killing the daemon. The machine and core
// maps are dropped because a panic may have left cached state mid-run.
func runOne(w *worker, t *task) {
	defer close(t.done)
	defer func() {
		if r := recover(); r != nil {
			t.panicked = fmt.Errorf("service: panic serving request: %v", r)
			w.machines = make(map[machineKey]*ipsc.Machine)
			w.cores = make(map[string]*sched.Core)
		}
	}()
	t.run(w)
}

// submit enqueues t without blocking. A full queue returns errBusy —
// the backpressure signal — and a closed pool returns errClosed.
func (p *pool) submit(t *task) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errClosed
	}
	select {
	case p.queue <- t:
		p.depth.Add(1)
		return nil
	default:
		return errBusy
	}
}

// close drains the queue and stops the workers; queued tasks still
// run, new submissions fail with errClosed.
func (p *pool) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
