// Package service implements unschedd, the scheduling-as-a-service
// daemon: the repository's schedulers and machine simulator behind a
// long-running HTTP API.
//
// Endpoints:
//
//	POST /v1/schedule        communication matrix (or workload spec) in,
//	                         schedule out
//	POST /v1/schedule/batch  many schedule requests in, NDJSON results
//	                         streamed out as each finishes
//	POST /v1/simulate        schedule (or AC matrix) in, predicted Result out
//	POST /v1/campaign        async measurement grid (density sweep or
//	                         workload-spec list); returns a job id
//	GET  /v1/campaign/{id}   progress and, when done, the measured cells
//	GET  /healthz            liveness (plus per-peer reachability in
//	                         fleet mode)
//	GET  /metrics            Prometheus-style text counters
//	GET  /v1/cache/{key}     internal: the raw checksummed cache record
//	                         for a content-hash key (fleet peer fill)
//	PUT  /v1/cache/{key}     internal: accept a peer's write-behind
//	                         record push
//
// Requests are JSON. Synchronous responses are negotiated via Accept:
// application/json (the default) or application/x-unsched-binary, the
// compact varint envelope over the comm binary matrix codec; either
// may be gzip-compressed via Accept-Encoding. Every synchronous
// response carries a strong ETag derived from its content-hash key,
// and If-None-Match revalidation is answered 304 with zero body bytes
// — see wire.go and the README's wire-format section. Errors are
// always JSON: an ErrorEnvelope with a stable machine-readable code.
//
// Synchronous requests run on a bounded worker pool; each worker owns
// reusable simulator machines (one per topology/params pair it has
// served), so the hot path allocates no per-run machine state. When
// the queue is full the service sheds load with 429 rather than
// growing without bound. Batch items instead yield and retry, so one
// stream survives transient pressure.
//
// Results are memoized in a sharded LRU keyed by a canonical content
// hash of (matrix, algorithm, topology, params, seed) — see
// comm.Digest. Randomized schedulers draw their RNG seed from that
// same hash, so a repeated identical request is not just a cache hit:
// even after eviction it recomputes the bit-identical schedule.
//
// With Options.CacheDir set, the cache is also persisted to disk and
// warm-restarted: every computed response is written through
// asynchronously (the request path never waits on fsync) as a
// checksummed, self-describing record file, and NewServer reloads the
// newest records — up to the entry and byte bounds — before serving,
// so a restarted daemon answers previously computed requests
// byte-identically from the cache. Corrupt or truncated records are
// skipped, deleted, and counted on /metrics, never fatal; Close
// flushes the pending write batch. See persist.go for the record
// format. Only the canonical JSON form is persisted; binary
// renderings are derived from it on demand and cached in memory.
//
// With Options.Peers set, N daemons behave as one logical cache
// (fleet mode): rendezvous hashing assigns every content-hash key an
// owner, a miss on a non-owned key asks the owner for its record
// (hedged, budgeted, CRC-verified) before computing, and locally
// computed non-owned records are pushed to their owner write-behind.
// Peers can only make a daemon faster — any peer failure falls back
// to local compute. See internal/fleet and peer.go.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"unsched/internal/comm"
	"unsched/internal/costmodel"
	"unsched/internal/des"
	"unsched/internal/expt"
	"unsched/internal/fleet"
	"unsched/internal/ipsc"
	"unsched/internal/quality"
	"unsched/internal/sched"
	"unsched/internal/stats"
	"unsched/internal/topo"
)

// Options configures a Server. The zero value is production-usable:
// GOMAXPROCS workers, a queue of four tasks per worker, a 4096-entry
// cache, and up to two concurrent campaigns.
type Options struct {
	// Workers is the number of worker goroutines serving synchronous
	// requests; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth is the number of requests that may wait for a worker
	// before the service answers 429; <= 0 means 4 * Workers.
	QueueDepth int
	// CacheEntries bounds the memoization cache; 0 means 4096, and a
	// negative value disables caching.
	CacheEntries int
	// MaxCampaigns bounds concurrently running campaign jobs; <= 0
	// means 2.
	MaxCampaigns int
	// MaxCampaignJobs bounds retained campaign jobs (running or
	// finished); <= 0 means 64.
	MaxCampaignJobs int
	// CacheDir enables disk persistence of the memoization cache: every
	// computed response is written through (asynchronously, batched) as
	// a checksummed record file, and NewServer warm-starts the cache
	// from the newest records already there. Empty keeps today's
	// memory-only behavior. Ignored when caching is disabled
	// (CacheEntries < 0) — there is nothing to persist.
	CacheDir string
	// CacheDiskBytes bounds the total bytes retained under CacheDir;
	// the oldest records are garbage-collected past it. <= 0 means
	// 256 MB.
	CacheDiskBytes int64
	// QualityStore names the append-only calibration record file (see
	// internal/quality) behind algorithm "auto": NewServer loads the
	// selection model from it, and every finished campaign appends its
	// measured cost/quality records and reloads the model — campaigns
	// are the calibration training loop. Empty means no store:
	// "auto" still works, answered from the committed fallback table.
	// An unreadable store file fails NewServer loudly, like CacheDir.
	QualityStore string
	// Peers lists the base URLs of every daemon in this one's fleet
	// (static membership; SelfURL may appear in the list). Non-empty
	// enables fleet mode: each content-hash key is assigned an owner by
	// rendezvous hashing, cache misses on non-owned keys ask the owner
	// (with a hedged second attempt) before computing, and locally
	// computed non-owned records are pushed to their owner
	// asynchronously. Empty keeps today's solo behavior. See
	// internal/fleet and the README's fleet-mode section.
	Peers []string
	// SelfURL is this daemon's own base URL exactly as the rest of the
	// fleet reaches it; required when Peers is set (it anchors
	// ownership — every member must rank the identical URL set).
	SelfURL string
	// PeerBudget bounds one peer lookup end to end, hedge included;
	// a peer that cannot answer inside it loses to local compute.
	// <= 0 means 75ms.
	PeerBudget time.Duration
	// PeerPushQueue bounds the write-behind queue of computed records
	// awaiting push to their owner; overflow drops rather than blocks.
	// <= 0 means 256.
	PeerPushQueue int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Workers
	}
	switch {
	case o.CacheEntries == 0:
		o.CacheEntries = 4096
	case o.CacheEntries < 0:
		o.CacheEntries = 0
	}
	if o.MaxCampaigns <= 0 {
		o.MaxCampaigns = 2
	}
	if o.MaxCampaignJobs <= 0 {
		o.MaxCampaignJobs = 64
	}
	if o.CacheDiskBytes <= 0 {
		o.CacheDiskBytes = 256 << 20
	}
	return o
}

// Server is the unschedd HTTP service. Create one with NewServer,
// mount it (it implements http.Handler), and Close it on shutdown to
// drain the worker pool and cancel running campaigns.
type Server struct {
	opts      Options
	mux       *http.ServeMux
	pool      *pool
	cache     *scheduleCache
	flights   *flightGroup
	campaigns *campaignRegistry
	// disk is the persistence layer under cache; nil when CacheDir is
	// unset (memory-only). Writes go through asynchronously; reads
	// happen once, at startup, to warm the memory cache.
	disk *diskStore
	// tables shares precomputed route tables daemon-wide: synchronous
	// workers and campaign runners all draw from it, so the
	// O(n^2*diameter) precompute happens once per topology per daemon.
	tables *tableCache
	// quality is the current algorithm-selection model behind "auto",
	// swapped atomically when a campaign finishes appending to the
	// store; nil answers from the committed fallback table. qstore is
	// the open store itself, nil when QualityStore is unset.
	quality atomic.Pointer[quality.Model]
	qstore  *quality.Store
	// fleet is the peer layer when Options.Peers is set: rendezvous
	// ownership, hedged record fetch on the miss path, and the
	// write-behind push queue. nil means solo. See peer.go.
	fleet *fleet.Fleet

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup // campaign goroutines

	requests  [numEndpoints]atomic.Int64 // by endpoint index below
	rejected  atomic.Int64
	totalJobs atomic.Int64

	// Cache observability. Hits and misses are per memoizing endpoint
	// (epSchedule, epSimulate) and count what actually happened: a hit
	// is a response served from the cache, a miss is a computation —
	// single-flight followers count in flightDedup and nowhere else, so
	// hits/(hits+misses) is the true cache ratio.
	cacheHits   [2]atomic.Int64
	cacheMisses [2]atomic.Int64
	flightDedup atomic.Int64
	warmLoaded  atomic.Int64 // entries restored from disk at startup

	// Wire-layer observability: If-None-Match revalidations answered
	// 304, responses and wire bytes by encoding x compression, and the
	// body bytes the wire layer avoided sending (gzip savings plus the
	// known size of 304-suppressed bodies).
	http304    atomic.Int64
	bytesSaved atomic.Int64
	respCount  [numEncodings][numCompressions]atomic.Int64
	respBytes  [numEncodings][numCompressions]atomic.Int64

	// Auto-resolution observability: what "auto" resolved to, and which
	// tag won each auto_race, per algorithm.
	autoResolved tagCounters
	autoRaceWins tagCounters
}

// endpoint indices for the requests counter.
const (
	epSchedule = iota
	epSimulate
	epCampaign
	epCampaignGet
	epBatch
	epCache
	numEndpoints
)

var endpointNames = [numEndpoints]string{"schedule", "simulate", "campaign", "campaign_status", "schedule_batch", "cache"}

// statusClientClosedRequest is the non-standard but widely used (nginx)
// status for a client that disconnected before its response was ready:
// a 4xx, because the abort is the client's, not a server fault.
const statusClientClosedRequest = 499

// NewServer returns a ready-to-serve instance with its worker pool
// started. When opts.CacheDir is set it also opens the disk store and
// warm-restarts the cache from it: the newest persisted records (up to
// the entry bound) are loaded back, corrupt or truncated ones skipped
// and counted, so a rebooted daemon serves previously computed
// responses byte-identically without recomputing. The only error path
// is an unusable cache directory — a misconfigured daemon must fail
// loudly, not silently run memory-only.
func NewServer(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	tables := newTableCache()
	s := &Server{
		opts:      opts,
		mux:       http.NewServeMux(),
		pool:      newPool(opts.Workers, opts.QueueDepth, tables),
		cache:     newScheduleCache(opts.CacheEntries),
		flights:   newFlightGroup(),
		campaigns: newCampaignRegistry(opts.MaxCampaignJobs, opts.MaxCampaigns),
		tables:    tables,
		ctx:       ctx,
		cancel:    cancel,
	}
	if opts.CacheDir != "" && opts.CacheEntries > 0 {
		disk, err := newDiskStore(opts.CacheDir, opts.CacheEntries, opts.CacheDiskBytes)
		if err != nil {
			cancel()
			s.pool.close()
			return nil, fmt.Errorf("service: cache dir %s: %w", opts.CacheDir, err)
		}
		// Load before starting the writer so warm restart never races a
		// GC pass; loaded entries skip the hit/miss counters entirely.
		s.warmLoaded.Store(int64(disk.load(s.cache.put)))
		disk.start()
		s.disk = disk
	}
	if opts.QualityStore != "" {
		// Load the model first (a missing file is a valid empty store),
		// then open for append. Either failing means a misconfigured
		// path — fail loudly, exactly as an unusable cache dir does.
		model, err := quality.LoadModel(opts.QualityStore)
		if err == nil {
			s.qstore, err = quality.Open(opts.QualityStore)
		}
		if err != nil {
			cancel()
			s.pool.close()
			if s.disk != nil {
				s.disk.close()
			}
			return nil, fmt.Errorf("service: quality store %s: %w", opts.QualityStore, err)
		}
		s.quality.Store(model)
	}
	fl, err := newFleetLayer(opts)
	if err != nil {
		cancel()
		s.pool.close()
		if s.disk != nil {
			s.disk.close()
		}
		if s.qstore != nil {
			_ = s.qstore.Close()
		}
		return nil, err
	}
	s.fleet = fl
	s.mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	s.mux.HandleFunc("POST /v1/schedule/batch", s.handleScheduleBatch)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/campaign", s.handleCampaign)
	s.mux.HandleFunc("GET /v1/campaign/{id}", s.handleCampaignStatus)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Internal fleet endpoints (always mounted — a solo daemon serving
	// its records is harmless and lets fleets be grown without
	// restarting existing members). Keep them off the public edge,
	// like /metrics.
	s.mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheGet)
	s.mux.HandleFunc("PUT /v1/cache/{key}", s.handleCachePut)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close shuts the service down: new work is refused, queued tasks
// drain, and running campaigns are cancelled. It blocks until every
// worker and campaign goroutine has exited, then flushes every queued
// cache record to disk — the durability point of a clean shutdown.
func (s *Server) Close() {
	s.cancel()
	s.pool.close()
	s.wg.Wait()
	if s.fleet != nil {
		// Drain the write-behind push queue (bounded by a deadline) so a
		// clean shutdown does not strand freshly computed records their
		// owners never saw.
		s.fleet.Close(5 * time.Second)
	}
	if s.disk != nil {
		s.disk.close()
	}
	if s.qstore != nil {
		// Campaigns have drained (wg.Wait above), so this is the last
		// append; Close syncs the calibration records to disk.
		_ = s.qstore.Close()
	}
}

// --- response plumbing ----------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", ContentTypeJSON)
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the client is gone if this fails; nothing to do
}

// writeError answers any failure with the JSON error envelope: the
// legacy bare string plus the versioned {code, message} detail.
// Errors are JSON regardless of the negotiated response encoding — an
// error body is small, and one parseable shape beats two.
func writeError(w http.ResponseWriter, err error) {
	ae, ok := err.(*apiError)
	if !ok {
		ae = &apiError{status: http.StatusInternalServerError, msg: err.Error()}
	}
	writeJSON(w, ae.status, ErrorEnvelope{
		Error: ae.msg,
		Err:   ErrorDetail{Code: ae.Code(), Message: ae.msg},
	})
}

// negotiate validates the request's Content-Type and resolves its
// Accept headers into a response form. It runs before the body is
// decoded: a client that cannot receive the answer (406) or mislabeled
// its payload (415) should hear so without the server parsing
// megabytes first.
func (s *Server) negotiate(r *http.Request) (conneg, error) {
	if err := checkRequestContentType(r); err != nil {
		return conneg{}, err
	}
	enc, err := negotiateEncoding(r)
	if err != nil {
		return conneg{}, err
	}
	return conneg{enc: enc, gzip: acceptsGzip(r)}, nil
}

// runTask submits fn to the pool and waits for completion.
// Backpressure surfaces here: a full queue is 429, a closing server
// 503. It deliberately does NOT abandon the wait when the submitting
// client disconnects: the computation is already claiming a worker,
// its result feeds the memoization cache and any single-flight
// followers, and writing the response to a dead connection is
// harmless — so a cancelled leader must not poison everyone else.
func (s *Server) runTask(fn func(w *worker)) error {
	t := &task{run: fn, done: make(chan struct{})}
	if err := s.pool.submit(t); err != nil {
		s.rejected.Add(1)
		status := http.StatusServiceUnavailable
		if err == errBusy {
			status = http.StatusTooManyRequests
		}
		return &apiError{status: status, msg: err.Error()}
	}
	<-t.done
	if t.panicked != nil {
		return t.panicked // -> 500 for this request; the worker survived
	}
	return nil
}

// runTaskWait is runTask for batch items: a full queue makes it yield
// and retry instead of failing, so one saturated moment does not pock
// a long stream with 429s. Retries do not touch the rejected counter —
// a retried item was not shed. The submit itself can never block
// forever on a closing pool (submit fails fast), and the wait between
// attempts watches the stream's context so a disconnected client
// stops burning the queue.
func (s *Server) runTaskWait(ctx context.Context, fn func(w *worker)) error {
	for {
		t := &task{run: fn, done: make(chan struct{})}
		err := s.pool.submit(t)
		if err == nil {
			<-t.done
			if t.panicked != nil {
				return t.panicked
			}
			return nil
		}
		if err != errBusy {
			return &apiError{status: http.StatusServiceUnavailable, msg: err.Error()}
		}
		select {
		case <-ctx.Done():
			return &apiError{status: statusClientClosedRequest, msg: "client closed request"}
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// memoized returns the response payload for key in the requested
// encoding: the raw JSON result document (enc == encJSON) or the
// binary document payload (enc == encBinary), plus whether it was
// served without computing. Concurrent misses on the same variant are
// single-flighted: one leader computes, the rest wait for its bytes.
//
// The canonical memoized representation is JSON — that is what the
// disk store persists and warm restart reloads. A binary-encoding
// miss that finds the JSON form cached re-encodes it via decodeDoc
// (cheap) instead of recomputing (expensive), and the rendering is
// cached in memory under the variant key. wait selects runTaskWait
// (batch items) over runTask (synchronous requests, which 429).
//
// ep is the endpoint index (epSchedule/epSimulate) the hit/miss
// counters are kept under. The accounting reflects what actually
// happened: a hit is a response served from cached bytes (including a
// binary rendering of cached JSON), a miss is a computation the
// leader performed, and a flight-served follower counts only in
// flightDedup.
func (s *Server) memoized(ctx context.Context, ep int, key string, enc encoding, wait bool,
	decodeDoc func([]byte) (wireDoc, error),
	compute func(wk *worker) (wireDoc, error)) (payload []byte, cached bool, err error) {
	vkey := variantKey(key, enc)
	if raw, ok := s.cache.get(vkey); ok {
		s.cacheHits[ep].Add(1)
		return raw, true, nil
	}
	if enc != encJSON {
		if jsonRaw, ok := s.cache.get(key); ok {
			doc, err := decodeDoc(jsonRaw)
			if err != nil {
				return nil, false, err
			}
			s.cacheHits[ep].Add(1)
			raw := doc.appendBinaryPayload(nil)
			s.cache.put(vkey, raw)
			return raw, true, nil
		}
	}
	call, leader := s.flights.join(vkey)
	if !leader {
		s.flightDedup.Add(1)
		select {
		case <-call.done:
		case <-ctx.Done():
			// The follower's own client hung up while waiting for the
			// leader's result. That is a client-side abort, not a server
			// failure: answer with a 4xx (499, nginx's "client closed
			// request" convention) and leave the rejection and
			// server-error metrics alone — the leader's computation is
			// unaffected and still lands in the cache.
			return nil, false, &apiError{status: statusClientClosedRequest, msg: "client closed request"}
		}
		if call.err != nil {
			return nil, false, call.err
		}
		return call.raw, true, nil
	}
	// Peer fill before computing: in fleet mode, a non-owned key may
	// already live at its rendezvous owner, and fetching its canonical
	// record under this flight slot is far cheaper than an O(n^2)
	// recompute. A successful fill is a cache hit (remote, but cached
	// bytes); only an actual computation below counts as a miss —
	// which is what keeps misses at one fleet-wide per unique key.
	if payload, ok := s.peerFill(ctx, ep, key, enc, decodeDoc); ok {
		s.flights.finish(vkey, call, payload, nil)
		return payload, true, nil
	}
	s.cacheMisses[ep].Add(1)
	raw, err := func() ([]byte, error) {
		var (
			doc     wireDoc
			docErr  error
			taskErr error
		)
		if wait {
			taskErr = s.runTaskWait(ctx, func(wk *worker) { doc, docErr = compute(wk) })
		} else {
			taskErr = s.runTask(func(wk *worker) { doc, docErr = compute(wk) })
		}
		if taskErr != nil {
			return nil, taskErr
		}
		if docErr != nil {
			return nil, docErr
		}
		jsonRaw, err := json.Marshal(doc)
		if err != nil {
			return nil, err
		}
		// Populate the cache before retiring the flight so no request
		// can slip between the two and recompute. The JSON form is
		// always cached (and write-through persisted); a binary leader
		// additionally caches its rendering, memory-only.
		s.cachePut(key, jsonRaw)
		if s.fleet != nil && !s.fleet.Owns(key) {
			// Write-behind: this daemon computed a record it does not
			// own; ship it to the owner asynchronously so the rest of
			// the fleet finds it there. Never blocks (drop-on-full).
			s.fleet.Push(key, jsonRaw)
		}
		if enc == encJSON {
			return jsonRaw, nil
		}
		bin := doc.appendBinaryPayload(nil)
		s.cache.put(vkey, bin)
		return bin, nil
	}()
	s.flights.finish(vkey, call, raw, err)
	if err != nil {
		return nil, false, err
	}
	return raw, false, nil
}

// respondMemoized is the HTTP face of memoized: revalidation first,
// then cache-or-compute, then the negotiated response envelope.
//
// The If-None-Match check runs before everything else. The response
// is a pure function of the content-hash key, so a client presenting
// the current ETag holds current bytes by construction — the 304 costs
// no cache probe for the body and no worker time, even if the entry
// was evicted everywhere.
func (s *Server) respondMemoized(w http.ResponseWriter, r *http.Request, cn conneg, ep int, key string,
	decodeDoc func([]byte) (wireDoc, error), compute func(wk *worker) (wireDoc, error)) {
	if ifNoneMatchHit(r, etagFor(key, cn.enc)) {
		known := 0
		if raw, ok := s.cache.get(variantKey(key, cn.enc)); ok {
			known = len(raw)
		}
		s.writeNotModified(w, cn, key, known)
		return
	}
	payload, cached, err := s.memoized(r.Context(), ep, key, cn.enc, false, decodeDoc, compute)
	if err != nil {
		writeError(w, err)
		return
	}
	var body []byte
	if cn.enc == encBinary {
		body = appendBinaryEnvelope(make([]byte, 0, len(payload)+len(key)+16), key, cached, payload)
	} else {
		body, err = json.Marshal(Envelope{Key: key, Cached: cached, Result: payload})
		if err != nil {
			writeError(w, err)
			return
		}
	}
	s.writeNegotiated(w, cn, key, body)
}

// cachePut memoizes a computed response in memory and, when
// persistence is on, queues the asynchronous write-through — the hot
// path never waits on disk.
func (s *Server) cachePut(key string, raw []byte) {
	s.cache.put(key, raw)
	if s.disk != nil {
		s.disk.enqueue(key, raw)
	}
}

// decodeScheduleDoc re-types a cached JSON schedule result so the wire
// layer can render its binary form without recomputing.
func decodeScheduleDoc(raw []byte) (wireDoc, error) {
	var res ScheduleResult
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// decodeSimulateDoc is decodeScheduleDoc for simulate results.
func decodeSimulateDoc(raw []byte) (wireDoc, error) {
	var res SimulateResult
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// --- /v1/schedule ---------------------------------------------------

// scheduleAlgorithms are the names POST /v1/schedule accepts: every
// algorithm the core implements, plus "auto".
var scheduleAlgorithms = map[string]bool{
	"auto": true, "AC": true, "LP": true, "RS_N": true, "RS_NL": true,
	"RS_NL_SZ": true, "GREEDY": true, "GREEDY_LF": true, "GREEDY_LF_LINK": true,
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	s.requests[epSchedule].Add(1)
	cn, err := s.negotiate(r)
	if err != nil {
		writeError(w, err)
		return
	}
	var req ScheduleRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	key, compute, err := s.scheduleJob(r.Context(), &req)
	if err != nil {
		writeError(w, err)
		return
	}
	s.respondMemoized(w, r, cn, epSchedule, key, decodeScheduleDoc, compute)
}

// scheduleJob resolves a schedule request — algorithm, pattern,
// topology, caps — into its content-hash key and the compute closure
// that builds the result on a worker. It owns everything below the
// HTTP layer, which is what lets the synchronous handler and the batch
// stream share one implementation.
//
// Algorithm "auto" resolves to a concrete tag HERE, before the key is
// derived: the quality model ranks the algorithms from the matrix's
// measured features (node count, density, size variation), so the
// resolved request fingerprints — and caches, and re-seeds — exactly
// as the equivalent direct request does. The context only gates the
// optional auto_race; plain resolution never blocks on it.
func (s *Server) scheduleJob(ctx context.Context, req *ScheduleRequest) (string, func(wk *worker) (wireDoc, error), error) {
	if req.Algorithm == "" {
		req.Algorithm = "auto"
	}
	if !scheduleAlgorithms[req.Algorithm] {
		return "", nil, codedRequest(CodeUnknownAlgorithm, "unknown algorithm %q", req.Algorithm)
	}
	if req.Workload != "" {
		return s.scheduleWorkloadJob(ctx, req)
	}
	m, err := resolveMatrix(req.Matrix)
	if err != nil {
		return "", nil, err
	}
	net, err := resolveTopology(req.Topology, m.N())
	if err != nil {
		return "", nil, err
	}
	job := func(tag string) (string, func(wk *worker) (wireDoc, error)) {
		digest := scheduleKey(m, tag, net, req.Seed)
		seed := effectiveSeed(digest)
		return digest.Hex(), func(wk *worker) (wireDoc, error) {
			res, err := buildSchedule(wk.schedCore(net), m, tag, net, seed)
			if err != nil {
				return nil, err
			}
			return res, nil
		}
	}
	algorithm := req.Algorithm
	if algorithm == "auto" {
		algorithm = s.resolveAuto(ctx, net, m, sched.MeasureFeatures(m), req.AutoRace, job)
	}
	key, compute := job(algorithm)
	return key, compute, nil
}

// scheduleWorkloadJob serves /v1/schedule requests that name a
// generated workload instead of shipping a matrix. Every gate — spec
// grammar, structural caps, machine fit, size cap — is enforced from
// the spec string before the O(n^2) build, which itself runs on the
// worker pool, off the HTTP goroutine. The pattern RNG derives from
// the request's content hash, so the same request generates the same
// matrix on any server at any time.
//
// Auto resolves from the spec's ANALYTIC features (DensityHint,
// SizeCVHint), never from a built matrix: the pattern RNG derives from
// the content hash, which includes the algorithm tag — measuring a
// matrix to choose the tag that seeds the matrix would be circular.
// The analytic form keeps resolution a pure function of the spec, and
// the generated pattern identical to the direct concrete-tag request.
func (s *Server) scheduleWorkloadJob(ctx context.Context, req *ScheduleRequest) (string, func(wk *worker) (wireDoc, error), error) {
	if req.Matrix != nil {
		return "", nil, badRequest("matrix and workload are mutually exclusive")
	}
	if req.Topology == nil {
		return "", nil, badRequest("a workload request needs an explicit topology (the workload is sized by the machine)")
	}
	net, err := buildTopology(req.Topology, 0)
	if err != nil {
		return "", nil, err
	}
	sp, err := resolveWorkloadSpec(req.Workload, net.Nodes())
	if err != nil {
		return "", nil, err
	}
	job := func(tag string) (string, func(wk *worker) (wireDoc, error)) {
		digest := scheduleWorkloadKey(sp, tag, net, req.Seed)
		seed := effectiveSeed(digest)
		return digest.Hex(), func(wk *worker) (wireDoc, error) {
			patRNG := stats.NewSource(seed).StreamKeyed(sp.Key()...)
			m, err := sp.Build(net.Nodes(), patRNG)
			if err != nil {
				return nil, badRequest("workload %s: %v", sp, err)
			}
			res, err := buildSchedule(wk.schedCore(net), m, tag, net, seed)
			if err != nil {
				return nil, err
			}
			res.Workload = sp.String()
			res.Matrix = NewWireMatrix(m)
			return res, nil
		}
	}
	algorithm := req.Algorithm
	if algorithm == "auto" {
		f := sched.Features{Nodes: net.Nodes(), Density: sp.DensityHint(net.Nodes()), SizeCV: sp.SizeCVHint()}
		algorithm = s.resolveAuto(ctx, net, nil, f, req.AutoRace, job)
	}
	key, compute := job(algorithm)
	return key, compute, nil
}

// chooseAlgorithm is the paper's Figure-5 operating-point policy: AC
// for short-protocol messages, LP for dense large-message patterns,
// RS_NL otherwise. The service's "auto" no longer routes through it —
// scheduleJob resolves auto against the calibrated quality model
// before fingerprinting — but buildSchedule keeps it as the fallback
// for direct library callers that pass "auto" themselves.
func chooseAlgorithm(m *comm.Matrix, net topo.Topology) string {
	params := costmodel.DefaultIPSC860()
	d := m.Density()
	bytes := m.MaxMessageBytes()
	switch {
	case bytes <= params.ShortMaxBytes:
		return "AC"
	case d >= net.Nodes()/2 && bytes > 1024:
		return "LP"
	default:
		return "RS_NL"
	}
}

// buildSchedule runs the chosen scheduler on the worker's reusable
// core. It is pure in its inputs: everything it returns derives from
// (matrix, algorithm, topology, seed) — core reuse cannot change a
// schedule, because core methods consume the identical RNG stream as
// the package-level functions — which is what makes memoization and
// deterministic re-computation equivalent.
func buildSchedule(core *sched.Core, m *comm.Matrix, algorithm string, net topo.Topology, seed int64) (*ScheduleResult, error) {
	chosen := algorithm
	if chosen == "auto" {
		chosen = chooseAlgorithm(m, net)
	}
	res := &ScheduleResult{Chosen: chosen, Topology: net.Name(), Seed: seed}
	if chosen == "AC" {
		// Nothing to schedule: AC fires asynchronously. The wire
		// schedule carries the algorithm tag and no phases; /v1/simulate
		// accepts it together with the matrix.
		if err := m.Validate(); err != nil {
			return nil, badRequest("%v", err)
		}
		res.Schedule = &WireSchedule{Algorithm: "AC", N: m.N()}
		return res, nil
	}
	rng := rand.New(rand.NewSource(seed))
	var (
		sc  *sched.Schedule
		err error
	)
	switch chosen {
	case "LP":
		sc, err = core.LP(m)
	case "RS_N":
		sc, err = core.RSN(m, rng)
	case "RS_NL":
		sc, err = core.RSNL(m, rng)
	case "RS_NL_SZ":
		sc, err = core.RSNLSized(m, rng)
	case "GREEDY":
		sc, err = core.Greedy(m)
	case "GREEDY_LF":
		sc, err = core.GreedyLargestFirst(m)
	case "GREEDY_LF_LINK":
		sc, err = core.GreedyLargestFirstLinkFree(m)
	default:
		return nil, codedRequest(CodeUnknownAlgorithm, "unknown algorithm %q", chosen)
	}
	if err != nil {
		return nil, badRequest("%s: %v", chosen, err)
	}
	res.LinkFree = core.ValidateLinkFree(sc) == nil
	res.Schedule = scheduleWire(sc)
	return res, nil
}

// --- /v1/simulate ---------------------------------------------------

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.requests[epSimulate].Add(1)
	cn, err := s.negotiate(r)
	if err != nil {
		writeError(w, err)
		return
	}
	var req SimulateRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	paramsName, params, err := resolveParams(req.Params)
	if err != nil {
		writeError(w, err)
		return
	}

	// An absent schedule, or an AC schedule (which has no phases),
	// means an asynchronous run driven directly by the matrix.
	isAC := req.Schedule == nil || (req.Schedule.Algorithm == "AC" && len(req.Schedule.Phases) == 0)
	var (
		sc *sched.Schedule
		m  *comm.Matrix
		n  int
	)
	if isAC {
		if req.Matrix == nil {
			writeError(w, badRequest("an AC run (or a request without a schedule) needs a matrix"))
			return
		}
		if m, err = resolveMatrix(req.Matrix); err != nil {
			writeError(w, err)
			return
		}
		n = m.N()
	} else {
		if sc, err = resolveSchedule(req.Schedule); err != nil {
			writeError(w, err)
			return
		}
		n = sc.N
		if req.Matrix != nil {
			// When the caller supplies both, check they agree — a cheap
			// integrity check that catches mismatched uploads.
			if m, err = resolveMatrix(req.Matrix); err != nil {
				writeError(w, err)
				return
			}
			if err = sc.Validate(m); err != nil {
				writeError(w, badRequest("schedule does not match matrix: %v", err))
				return
			}
		}
	}

	net, err := resolveTopology(req.Topology, n)
	if err != nil {
		writeError(w, err)
		return
	}
	protocol, err := resolveProtocol(req.Protocol, isAC, sc)
	if err != nil {
		writeError(w, err)
		return
	}

	digest := simulateKey(sc, m, net, paramsName, protocol)
	key := digest.Hex()
	s.respondMemoized(w, r, cn, epSimulate, key, decodeSimulateDoc, func(wk *worker) (wireDoc, error) {
		mach, err := wk.machine(net, paramsName, params)
		if err != nil {
			return nil, err
		}
		var result ipsc.Result
		switch protocol {
		case "AC":
			order, err := sched.AC(m)
			if err != nil {
				return nil, badRequest("%v", err)
			}
			result, err = mach.RunAC(order, m)
			if err != nil {
				return nil, simulateError(err)
			}
		case "S1":
			if result, err = mach.RunS1(sc); err != nil {
				return nil, simulateError(err)
			}
		case "S2":
			if result, err = mach.RunS2(sc); err != nil {
				return nil, simulateError(err)
			}
		case "LP":
			if result, err = mach.RunLP(sc); err != nil {
				return nil, simulateError(err)
			}
		}
		return &SimulateResult{
			Topology:       net.Name(),
			Protocol:       protocol,
			MakespanUS:     result.MakespanUS,
			MakespanMS:     result.MakespanUS / 1000,
			Transfers:      result.Transfers,
			Exchanges:      result.Exchanges,
			ResourceWaitUS: result.ResourceWaitUS,
		}, nil
	})
}

// simulateError maps a simulator failure onto the API error model.
// Tripping the event bound is the request's doing — an input whose
// event cascade outran nodes x 1e6 events — not a server fault, so it
// answers 422 with a stable code instead of the generic 500 the bare
// error would produce.
func simulateError(err error) error {
	var le *des.LimitError
	if errors.As(err, &le) {
		return &apiError{
			status: http.StatusUnprocessableEntity,
			code:   CodeSimulationLimit,
			msg:    fmt.Sprintf("simulation exceeded its %d-event bound at t=%vus; the input is pathological for this machine", le.MaxEvents, le.Now),
		}
	}
	return err
}

// resolveProtocol maps the requested execution protocol to a concrete
// one, defaulting to the pairing the paper uses per algorithm.
func resolveProtocol(requested string, isAC bool, sc *sched.Schedule) (string, error) {
	if isAC {
		if requested != "" && requested != "auto" && requested != "AC" {
			return "", badRequest("AC runs do not take protocol %q", requested)
		}
		return "AC", nil
	}
	switch requested {
	case "", "auto":
		switch sc.Algorithm {
		case "LP":
			return "LP", nil
		case "RS_NL", "RS_NL_SZ", "GREEDY_LF_LINK":
			return "S1", nil
		default:
			return "S2", nil
		}
	case "S1", "S2", "LP":
		return requested, nil
	default:
		return "", badRequest("unknown protocol %q (want auto, S1, S2, or LP)", requested)
	}
}

// --- /v1/campaign ---------------------------------------------------

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	s.requests[epCampaign].Add(1)
	var req CampaignRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	cfg, points, key, err := resolveCampaign(&req)
	if err != nil {
		writeError(w, err)
		return
	}
	if !s.campaigns.acquire() {
		s.rejected.Add(1)
		writeError(w, &apiError{status: http.StatusTooManyRequests,
			msg: fmt.Sprintf("already running %d campaigns; retry later", s.opts.MaxCampaigns)})
		return
	}
	job, err := s.campaigns.add(len(points)*cfg.Samples*len(expt.Algorithms), key, cfg.Topology.Name())
	if err != nil {
		s.campaigns.release()
		s.rejected.Add(1) // registry full is shed load, same as the queue
		writeError(w, err)
		return
	}
	s.totalJobs.Add(1)
	s.wg.Add(1)
	// Each running campaign owns an expt.Runner pool of its own, so
	// split the worker budget across the campaign slots: even with
	// every slot busy, campaign goroutines never exceed the configured
	// worker count and starve the synchronous pool of CPU.
	parallelism := s.opts.Workers / s.opts.MaxCampaigns
	if parallelism < 1 {
		parallelism = 1
	}
	if s.qstore != nil {
		// Campaigns are the calibration training loop: every measured
		// (workload, algorithm) cell lands in the quality store as a
		// cost/quality record. The sink runs on the campaign's
		// single-goroutine aggregation pass; Append serializes across
		// concurrent campaigns itself.
		cfg.Outcomes = func(workloadSpec string, samples int, o sched.Outcome) {
			_ = s.qstore.Append(quality.Record{
				Topology: o.TopoName, Workload: workloadSpec, Algorithm: o.Algorithm,
				Nodes: o.Nodes, Density: o.Density, SizeCV: o.SizeCV,
				Phases: float64(o.Phases), EstCommUS: o.EstCommUS,
				SchedCostNS: o.SchedCostNS, Samples: samples,
			})
		}
	}
	go func() {
		defer s.wg.Done()
		defer s.campaigns.release()
		// The daemon-shared route table for this topology serves every
		// campaign and synchronous request alike; fetching it here (not
		// on the HTTP goroutine) keeps a cold-start build off the
		// request path.
		cfg.Routes = s.tables.get(cfg.Topology)
		runCampaign(s.ctx, job, cfg, points, parallelism, s.recalibrate)
	}()
	writeJSON(w, http.StatusAccepted, CampaignAccepted{
		ID:  job.id,
		Key: key,
		URL: "/v1/campaign/" + job.id,
	})
}

// recalibrate reloads the selection model from the store the campaign
// just fed and swaps it in atomically: the next "auto" request picks
// from the freshest calibration. runCampaign invokes it before the
// job reports done, so polling a campaign to completion guarantees
// the model reflects it.
func (s *Server) recalibrate() {
	if s.qstore == nil {
		return
	}
	_ = s.qstore.Sync()
	if recs, err := quality.Load(s.qstore.Path()); err == nil {
		s.quality.Store(quality.NewModel(recs))
	}
}

func (s *Server) handleCampaignStatus(w http.ResponseWriter, r *http.Request) {
	s.requests[epCampaignGet].Add(1)
	id := r.PathValue("id")
	job, ok := s.campaigns.get(id)
	if !ok {
		writeError(w, &apiError{status: http.StatusNotFound, msg: fmt.Sprintf("no campaign %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, job.status())
}

// --- /healthz and /metrics ------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	doc := HealthStatus{
		Status:  "ok",
		Workers: s.opts.Workers,
	}
	if s.fleet != nil {
		// Per-peer reachability: parallel short-timeout probes of each
		// remote member's /healthz. An unreachable peer does not turn
		// this daemon unhealthy — fleet misses degrade to local compute.
		for _, p := range s.fleet.Reachability(r.Context()) {
			doc.Peers = append(doc.Peers, PeerHealth{URL: p.URL, Reachable: p.Reachable})
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# TYPE unschedd_requests_total counter\n")
	for i, name := range endpointNames {
		fmt.Fprintf(w, "unschedd_requests_total{endpoint=%q} %d\n", name, s.requests[i].Load())
	}
	fmt.Fprintf(w, "# TYPE unschedd_rejected_total counter\n")
	fmt.Fprintf(w, "unschedd_rejected_total %d\n", s.rejected.Load())
	fmt.Fprintf(w, "# TYPE unschedd_cache_hits_total counter\n")
	for ep, name := range endpointNames[:2] {
		fmt.Fprintf(w, "unschedd_cache_hits_total{endpoint=%q} %d\n", name, s.cacheHits[ep].Load())
	}
	fmt.Fprintf(w, "# TYPE unschedd_cache_misses_total counter\n")
	for ep, name := range endpointNames[:2] {
		fmt.Fprintf(w, "unschedd_cache_misses_total{endpoint=%q} %d\n", name, s.cacheMisses[ep].Load())
	}
	fmt.Fprintf(w, "# TYPE unschedd_flight_dedup_total counter\n")
	fmt.Fprintf(w, "unschedd_flight_dedup_total %d\n", s.flightDedup.Load())
	autoTags, autoVals := s.autoResolved.series()
	fmt.Fprintf(w, "# TYPE unschedd_auto_resolved_total counter\n")
	for i, tag := range autoTags {
		fmt.Fprintf(w, "unschedd_auto_resolved_total{algorithm=%q} %d\n", tag, autoVals[i])
	}
	raceTags, raceVals := s.autoRaceWins.series()
	fmt.Fprintf(w, "# TYPE unschedd_auto_race_wins_total counter\n")
	for i, tag := range raceTags {
		fmt.Fprintf(w, "unschedd_auto_race_wins_total{algorithm=%q} %d\n", tag, raceVals[i])
	}
	fmt.Fprintf(w, "# TYPE unschedd_http_304_total counter\n")
	fmt.Fprintf(w, "unschedd_http_304_total %d\n", s.http304.Load())
	fmt.Fprintf(w, "# TYPE unschedd_response_encoding_total counter\n")
	for e := range s.respCount {
		for c := range s.respCount[e] {
			fmt.Fprintf(w, "unschedd_response_encoding_total{encoding=%q,compression=%q} %d\n",
				encodingNames[e], compressionNames[c], s.respCount[e][c].Load())
		}
	}
	fmt.Fprintf(w, "# TYPE unschedd_response_bytes_total counter\n")
	for e := range s.respBytes {
		for c := range s.respBytes[e] {
			fmt.Fprintf(w, "unschedd_response_bytes_total{encoding=%q,compression=%q} %d\n",
				encodingNames[e], compressionNames[c], s.respBytes[e][c].Load())
		}
	}
	fmt.Fprintf(w, "# TYPE unschedd_bytes_saved_total counter\n")
	fmt.Fprintf(w, "unschedd_bytes_saved_total %d\n", s.bytesSaved.Load())
	fmt.Fprintf(w, "# TYPE unschedd_cache_entries gauge\n")
	fmt.Fprintf(w, "unschedd_cache_entries %d\n", s.cache.len())
	fmt.Fprintf(w, "# TYPE unschedd_cache_warm_loaded_entries gauge\n")
	fmt.Fprintf(w, "unschedd_cache_warm_loaded_entries %d\n", s.warmLoaded.Load())
	// Disk persistence series are emitted even when persistence is off
	// (all zero): scrapers should not need per-deployment series sets.
	var loadErrs, writeErrs, diskRecords, diskBytes int64
	if s.disk != nil {
		loadErrs = s.disk.loadErrors.Load()
		writeErrs = s.disk.writeErrors.Load()
		diskRecords = s.disk.records.Load()
		diskBytes = s.disk.bytes.Load()
	}
	fmt.Fprintf(w, "# TYPE unschedd_disk_load_errors_total counter\n")
	fmt.Fprintf(w, "unschedd_disk_load_errors_total %d\n", loadErrs)
	fmt.Fprintf(w, "# TYPE unschedd_disk_write_errors_total counter\n")
	fmt.Fprintf(w, "unschedd_disk_write_errors_total %d\n", writeErrs)
	fmt.Fprintf(w, "# TYPE unschedd_disk_records gauge\n")
	fmt.Fprintf(w, "unschedd_disk_records %d\n", diskRecords)
	fmt.Fprintf(w, "# TYPE unschedd_disk_bytes gauge\n")
	fmt.Fprintf(w, "unschedd_disk_bytes %d\n", diskBytes)
	fmt.Fprintf(w, "# TYPE unschedd_queue_depth gauge\n")
	fmt.Fprintf(w, "unschedd_queue_depth %d\n", s.pool.depth.Load())
	fmt.Fprintf(w, "# TYPE unschedd_queue_capacity gauge\n")
	fmt.Fprintf(w, "unschedd_queue_capacity %d\n", s.opts.QueueDepth)
	fmt.Fprintf(w, "# TYPE unschedd_workers gauge\n")
	fmt.Fprintf(w, "unschedd_workers %d\n", s.opts.Workers)
	fmt.Fprintf(w, "# TYPE unschedd_campaigns_total counter\n")
	fmt.Fprintf(w, "unschedd_campaigns_total %d\n", s.totalJobs.Load())
	fmt.Fprintf(w, "# TYPE unschedd_campaigns_running gauge\n")
	fmt.Fprintf(w, "unschedd_campaigns_running %d\n", len(s.campaigns.running))
	s.emitPeerMetrics(w)
}
