package service

// Resolution of algorithm "auto": the portfolio meta-scheduler. An
// auto request is mapped to a concrete algorithm tag BEFORE its
// content-hash key is computed, so the resolved request is
// indistinguishable — same cache slot, same ETag, same bytes — from a
// client that asked for that tag directly. The mapping itself comes
// from the calibrated quality model (Options.QualityStore) when the
// daemon has one, and from the committed fallback table otherwise;
// both are deterministic functions of the request's features, which is
// what keeps two servers sharing a calibration store bit-identical.
//
// With auto_race set, the top-ranked candidates are additionally
// computed and scored — simulated makespan plus modeled scheduling
// time — and the best one answers. Each candidate runs under its own
// content key, so a race is never wasted work: every lane lands in the
// memoization cache exactly as a direct request would.

import (
	"context"
	"encoding/json"
	"sort"
	"sync"

	"unsched/internal/comm"
	"unsched/internal/costmodel"
	"unsched/internal/ipsc"
	"unsched/internal/quality"
	"unsched/internal/sched"
	"unsched/internal/topo"
)

// qualityModel returns the current calibration model; nil (no store
// configured, or an empty one) is a valid model that answers every
// Pick from the committed fallback chain.
func (s *Server) qualityModel() *quality.Model {
	return s.quality.Load()
}

// autoJob builds the content key and compute closure a concrete
// algorithm tag would get for the request being resolved. resolveAuto
// uses it to key race lanes exactly as direct requests are keyed.
type autoJob func(tag string) (key string, compute func(wk *worker) (wireDoc, error))

// resolveAuto maps "auto" to a concrete algorithm tag for a request
// with the given features. Without racing, the answer is the model's
// top pick — a pure function of (topology name, features), computed
// before any key is derived. With racing, the top-ranked candidates
// (at most three) are computed and scored on the worker pool, and the
// cheapest deterministic winner is returned; lanes that fail (shed
// under load, or unschedulable) drop out of the race rather than
// failing the request, and losing the whole race falls back to the
// model's pick.
func (s *Server) resolveAuto(ctx context.Context, net topo.Topology, m *comm.Matrix, f sched.Features, race bool, job autoJob) string {
	ranked := s.qualityModel().Pick(net.Name(), f)
	chosen := ranked[0]
	if race && len(ranked) > 1 {
		if winner, ok := s.raceAuto(ctx, net, m, ranked[:min(3, len(ranked))], job); ok {
			chosen = winner
			s.autoRaceWins.inc(winner)
		}
	}
	s.autoResolved.inc(chosen)
	return chosen
}

// raceAuto computes every candidate under its own content key and
// scores it with scoreSchedule. The winner is the lowest score, ties
// broken on the tag — a total deterministic order, so two servers
// racing the same request crown the same winner.
func (s *Server) raceAuto(ctx context.Context, net topo.Topology, m *comm.Matrix, candidates []string, job autoJob) (string, bool) {
	type lane struct {
		score float64
		ok    bool
	}
	lanes := make([]lane, len(candidates))
	var wg sync.WaitGroup
	for i, tag := range candidates {
		wg.Add(1)
		go func(i int, tag string) {
			defer wg.Done()
			key, compute := job(tag)
			raw, _, err := s.memoized(ctx, epSchedule, key, encJSON, false, decodeScheduleDoc, compute)
			if err != nil {
				return
			}
			var res ScheduleResult
			if json.Unmarshal(raw, &res) != nil {
				return
			}
			score, err := s.scoreSchedule(net, m, &res)
			if err != nil {
				return
			}
			lanes[i] = lane{score: score, ok: true}
		}(i, tag)
	}
	wg.Wait()
	best := -1
	for i := range lanes {
		if !lanes[i].ok {
			continue
		}
		if best < 0 || lanes[i].score < lanes[best].score ||
			(lanes[i].score == lanes[best].score && candidates[i] < candidates[best]) {
			best = i
		}
	}
	if best < 0 {
		return "", false
	}
	return candidates[best], true
}

// scoreSchedule prices one race lane: the schedule's simulated
// makespan on the default machine model plus its modeled scheduling
// time — the same total the quality store's records carry, so racing
// and calibration agree on what "best" means. AC lanes (no phases)
// are driven by the matrix; workload lanes find it echoed in the
// result. The simulation runs on a pool worker, reusing its machines.
func (s *Server) scoreSchedule(net topo.Topology, m *comm.Matrix, res *ScheduleResult) (float64, error) {
	const paramsName = "ipsc860"
	params := costmodel.DefaultIPSC860()
	var (
		score  float64
		runErr error
	)
	err := s.runTask(func(wk *worker) {
		mach, err := wk.machine(net, paramsName, params)
		if err != nil {
			runErr = err
			return
		}
		if res.Schedule == nil || (res.Schedule.Algorithm == "AC" && len(res.Schedule.Phases) == 0) {
			if m == nil {
				if m, err = resolveMatrix(res.Matrix); err != nil {
					runErr = err
					return
				}
			}
			order, err := sched.AC(m)
			if err != nil {
				runErr = err
				return
			}
			r, err := mach.RunAC(order, m)
			if err != nil {
				runErr = simulateError(err)
				return
			}
			score = r.MakespanUS
			return
		}
		sc, err := resolveSchedule(res.Schedule)
		if err != nil {
			runErr = err
			return
		}
		protocol, err := resolveProtocol("", false, sc)
		if err != nil {
			runErr = err
			return
		}
		var r ipsc.Result
		switch protocol {
		case "LP":
			r, err = mach.RunLP(sc)
		case "S1":
			r, err = mach.RunS1(sc)
		default:
			r, err = mach.RunS2(sc)
		}
		if err != nil {
			runErr = simulateError(err)
			return
		}
		score = r.MakespanUS + float64(params.CompTimeNS(sc.Ops))/1000
	})
	if err != nil {
		return 0, err
	}
	return score, runErr
}

// tagCounters is a per-algorithm-tag counter family for /metrics. A
// mutexed map, not atomics: auto resolution happens once per uncached
// request, far off any hot path, and the tag set is open-ended (the
// fallback table may rank tags the compiled-in list does not know).
type tagCounters struct {
	mu sync.Mutex
	m  map[string]int64
}

func (c *tagCounters) inc(tag string) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]int64)
	}
	c.m[tag]++
	c.mu.Unlock()
}

// series returns the counter family as sorted (tag, value) pairs over
// the union of the campaign contenders — always emitted, zero or not,
// so scrapers see a stable base series set — and any other tag that
// has actually counted.
func (c *tagCounters) series() ([]string, []int64) {
	base := []string{"AC", "LP", "RS_N", "RS_NL"}
	c.mu.Lock()
	tags := make(map[string]int64, len(base)+len(c.m))
	for _, t := range base {
		tags[t] = 0
	}
	for t, v := range c.m {
		tags[t] = v
	}
	c.mu.Unlock()
	names := make([]string, 0, len(tags))
	for t := range tags {
		names = append(names, t)
	}
	sort.Strings(names)
	vals := make([]int64, len(names))
	for i, t := range names {
		vals[i] = tags[t]
	}
	return names, vals
}
