package service

// Tests for algorithm "auto": the portfolio meta-scheduler backed by
// the quality calibration store. The load-bearing property is
// bit-identity — auto must resolve BEFORE fingerprinting, so an auto
// request is indistinguishable from the equivalent direct request on
// any server sharing the calibration store.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"unsched/internal/quality"
)

// seedQualityStore writes a calibration store whose hypercube/n4/d3/cv0
// bin (the bin of testMatrix(16, 4, ...)) ranks RS_N first — the
// opposite of the committed fallback's RS_NL — so a test can tell the
// model answered, not the fallback table.
func seedQualityStore(t *testing.T, path string) {
	t.Helper()
	st, err := quality.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []quality.Record{
		{Topology: "hypercube-4", Workload: "uniform:4:4096", Algorithm: "RS_N",
			Nodes: 16, Density: 4, Phases: 5, EstCommUS: 900, SchedCostNS: 40000, Samples: 2},
		{Topology: "hypercube-4", Workload: "uniform:4:4096", Algorithm: "RS_NL",
			Nodes: 16, Density: 4, Phases: 5, EstCommUS: 950, SchedCostNS: 220000, Samples: 2},
		{Topology: "hypercube-4", Workload: "uniform:4:4096", Algorithm: "AC",
			Nodes: 16, Density: 4, Phases: 0, EstCommUS: 8000, SchedCostNS: 0, Samples: 2},
	} {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func scheduleResult(t *testing.T, env Envelope) ScheduleResult {
	t.Helper()
	var res ScheduleResult
	if err := json.Unmarshal(env.Result, &res); err != nil {
		t.Fatalf("bad result document: %v", err)
	}
	return res
}

// TestAutoResolvesBeforeFingerprinting: an auto request and the direct
// request for the tag auto resolves to must share one cache key and
// one byte-identical result document.
func TestAutoResolvesBeforeFingerprinting(t *testing.T) {
	dir := t.TempDir()
	qpath := filepath.Join(dir, "quality.usqr")
	seedQualityStore(t, qpath)
	_, ts := newTestServer(t, Options{Workers: 2, QualityStore: qpath})

	auto := ScheduleRequest{Matrix: testMatrix(t, 16, 4, 4096, 1), Algorithm: "auto"}
	var autoEnv Envelope
	if status, raw := postJSON(t, ts.URL+"/v1/schedule", auto, &autoEnv); status != http.StatusOK {
		t.Fatalf("auto: status %d (%s)", status, raw)
	}
	res := scheduleResult(t, autoEnv)
	if res.Chosen != "RS_N" {
		t.Fatalf("auto chose %q, want the calibrated bin's RS_N", res.Chosen)
	}

	direct := auto
	direct.Algorithm = res.Chosen
	var directEnv Envelope
	if status, raw := postJSON(t, ts.URL+"/v1/schedule", direct, &directEnv); status != http.StatusOK {
		t.Fatalf("direct: status %d (%s)", status, raw)
	}
	if directEnv.Key != autoEnv.Key {
		t.Errorf("auto key %s != direct key %s", autoEnv.Key, directEnv.Key)
	}
	if string(directEnv.Result) != string(autoEnv.Result) {
		t.Error("auto and direct result bytes differ")
	}
	if !directEnv.Cached {
		t.Error("direct request missed the cache slot the auto request filled")
	}
}

// TestAutoBitIdenticalAcrossServers: the tentpole's cross-server
// property. Two servers sharing one calibration store (and one disk
// cache) must resolve the same auto request to the same key and the
// same bytes — and the second server, warm-started from the shared
// cache, must answer without a single cache miss.
func TestAutoBitIdenticalAcrossServers(t *testing.T) {
	dir := t.TempDir()
	qpath := filepath.Join(dir, "quality.usqr")
	cacheDir := filepath.Join(dir, "cache")
	seedQualityStore(t, qpath)
	opts := Options{Workers: 2, QualityStore: qpath, CacheDir: cacheDir}

	req := ScheduleRequest{Matrix: testMatrix(t, 16, 4, 4096, 9), Algorithm: "auto", Seed: 3}
	workloadReq := ScheduleRequest{
		Workload:  "uniform:4:4096",
		Algorithm: "auto",
		Topology:  &WireTopology{Spec: "cube:4"},
	}

	svcA, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(svcA)
	var envA, wenvA Envelope
	if status, raw := postJSON(t, tsA.URL+"/v1/schedule", req, &envA); status != http.StatusOK {
		t.Fatalf("server A: status %d (%s)", status, raw)
	}
	if status, raw := postJSON(t, tsA.URL+"/v1/schedule", workloadReq, &wenvA); status != http.StatusOK {
		t.Fatalf("server A workload: status %d (%s)", status, raw)
	}
	tsA.Close()
	svcA.Close() // flushes the disk cache

	svcB, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(svcB)
	defer func() { tsB.Close(); svcB.Close() }()
	var envB, wenvB Envelope
	if status, raw := postJSON(t, tsB.URL+"/v1/schedule", req, &envB); status != http.StatusOK {
		t.Fatalf("server B: status %d (%s)", status, raw)
	}
	if status, raw := postJSON(t, tsB.URL+"/v1/schedule", workloadReq, &wenvB); status != http.StatusOK {
		t.Fatalf("server B workload: status %d (%s)", status, raw)
	}

	if envB.Key != envA.Key || string(envB.Result) != string(envA.Result) {
		t.Error("matrix auto request is not bit-identical across servers")
	}
	if wenvB.Key != wenvA.Key || string(wenvB.Result) != string(wenvA.Result) {
		t.Error("workload auto request is not bit-identical across servers")
	}
	if misses := svcB.cacheMisses[epSchedule].Load(); misses != 0 {
		t.Errorf("server B recomputed: %d cache misses, want 0 (auto must hit the warm-started slots)", misses)
	}
	if resA, resB := scheduleResult(t, envA), scheduleResult(t, envB); resA.Chosen != resB.Chosen {
		t.Errorf("servers chose different algorithms: %q vs %q", resA.Chosen, resB.Chosen)
	}
}

// TestAutoEmptyStoreFallsBack: without a calibration store the model
// is nil and auto must resolve from the committed fallback chain —
// deterministically, to RS_NL for an uncalibrated long-message bin.
func TestAutoEmptyStoreFallsBack(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 2})
	req := ScheduleRequest{Matrix: testMatrix(t, 16, 4, 4096, 5)} // algorithm defaults to auto
	var env Envelope
	if status, raw := postJSON(t, ts.URL+"/v1/schedule", req, &env); status != http.StatusOK {
		t.Fatalf("status %d (%s)", status, raw)
	}
	if res := scheduleResult(t, env); res.Chosen != "RS_NL" {
		t.Errorf("empty-store auto chose %q, want the fallback's RS_NL", res.Chosen)
	}

	// The resolution counter says what happened.
	status, raw := getJSON(t, ts.URL+"/metrics", nil)
	if status != http.StatusOK {
		t.Fatal("metrics endpoint failed")
	}
	if want := `unschedd_auto_resolved_total{algorithm="RS_NL"} 1`; !strings.Contains(string(raw), want) {
		t.Errorf("metrics missing %q", want)
	}
	_ = svc
}

// TestAutoRaceDeterministicWinner: auto_race must answer with a
// concrete candidate whose bytes are exactly the direct request's,
// crown the same winner on a repeat run, and count the win.
func TestAutoRaceDeterministicWinner(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4, QueueDepth: 32})
	req := ScheduleRequest{Matrix: testMatrix(t, 16, 4, 4096, 7), Algorithm: "auto", AutoRace: true}
	var env Envelope
	if status, raw := postJSON(t, ts.URL+"/v1/schedule", req, &env); status != http.StatusOK {
		t.Fatalf("race: status %d (%s)", status, raw)
	}
	res := scheduleResult(t, env)
	if res.Chosen == "" || res.Chosen == "auto" {
		t.Fatalf("race answered with non-concrete algorithm %q", res.Chosen)
	}

	// Identical race on a fresh server: same winner (scores and
	// tie-breaks are pure functions of the request).
	_, ts2 := newTestServer(t, Options{Workers: 4, QueueDepth: 32})
	var env2 Envelope
	if status, raw := postJSON(t, ts2.URL+"/v1/schedule", req, &env2); status != http.StatusOK {
		t.Fatalf("race rerun: status %d (%s)", status, raw)
	}
	if res2 := scheduleResult(t, env2); res2.Chosen != res.Chosen {
		t.Errorf("race winners differ across servers: %q vs %q", res.Chosen, res2.Chosen)
	}
	if env2.Key != env.Key || string(env2.Result) != string(env.Result) {
		t.Error("race responses are not bit-identical across servers")
	}

	// The winner's bytes are the direct request's bytes.
	direct := req
	direct.Algorithm = res.Chosen
	direct.AutoRace = false
	var directEnv Envelope
	if status, _ := postJSON(t, ts.URL+"/v1/schedule", direct, &directEnv); status != http.StatusOK {
		t.Fatal("direct request failed")
	}
	if directEnv.Key != env.Key || string(directEnv.Result) != string(env.Result) {
		t.Error("race winner differs from the direct request")
	}

	// One race, one win on the counter.
	_, raw := getJSON(t, ts.URL+"/metrics", nil)
	if want := fmt.Sprintf("unschedd_auto_race_wins_total{algorithm=%q} 1", res.Chosen); !strings.Contains(string(raw), want) {
		t.Errorf("metrics missing %q", want)
	}
}

// TestCampaignFeedsQualityStore: campaigns are the calibration loop.
// Running one must append records for every measured (workload,
// algorithm) cell and swap in a model trained on them.
func TestCampaignFeedsQualityStore(t *testing.T) {
	qpath := filepath.Join(t.TempDir(), "quality.usqr")
	svc, ts := newTestServer(t, Options{Workers: 2, QualityStore: qpath})
	if svc.qualityModel().Records() != 0 {
		t.Fatal("model not empty before any campaign")
	}

	var acc CampaignAccepted
	campaign := CampaignRequest{Densities: []int{4}, Sizes: []int64{512}, Samples: 1, Dim: 4}
	if status, raw := postJSON(t, ts.URL+"/v1/campaign", campaign, &acc); status != http.StatusAccepted {
		t.Fatalf("campaign: status %d (%s)", status, raw)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st CampaignStatus
		if status, raw := getJSON(t, ts.URL+acc.URL, &st); status != http.StatusOK {
			t.Fatalf("campaign status: %d (%s)", status, raw)
		} else if st.State == campaignDone {
			break
		} else if st.State == campaignFailed {
			t.Fatalf("campaign failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign did not finish")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The reload is the last thing the campaign goroutine does after
	// the job flips to done; give it a moment.
	deadline = time.Now().Add(10 * time.Second)
	for svc.qualityModel().Records() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("model never reloaded from the campaign's records")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// One grid cell, four contenders.
	if got := svc.qualityModel().Records(); got != 4 {
		t.Errorf("model holds %d records, want 4", got)
	}
	recs, err := quality.Load(qpath)
	if err != nil || len(recs) != 4 {
		t.Fatalf("store holds %d records (err %v), want 4", len(recs), err)
	}
	for _, r := range recs {
		if r.Nodes != 16 || r.Workload != "uniform:4:512" || r.Samples != 1 {
			t.Errorf("bad record %+v", r)
		}
	}
}
