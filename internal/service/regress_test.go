package service

// Regression tests for the protocol- and metrics-correctness fixes
// that landed with the disk-backed cache PR. Each test was written
// against the buggy behavior first and verified to fail before the
// fix.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSimulateRejectsUnknownScheduleAlgorithm: /v1/simulate must 400 a
// schedule whose algorithm tag is not one the system knows, instead of
// silently running the wrong protocol. Before the fix, resolveProtocol's
// "auto" default mapped any unknown tag — e.g. the typo "RS-NL" — to
// S2, the pairing for RS_N, not the S1 pairing RS_NL schedules are
// meant to run under: a typo changed the measured number instead of
// erroring.
func TestSimulateRejectsUnknownScheduleAlgorithm(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	// A structurally valid two-phase schedule wearing a typo'd tag.
	phases := []WirePhase{{{0, 1, 256}}, {{1, 0, 256}}}
	for _, tag := range []string{"RS-NL", "rs_nl", "LPX", "bogus", ""} {
		req := SimulateRequest{Schedule: &WireSchedule{Algorithm: tag, N: 4, Phases: phases}}
		status, raw := postJSON(t, ts.URL+"/v1/simulate", req, nil)
		if status != http.StatusBadRequest {
			t.Errorf("algorithm %q: status %d, want 400 (%s)", tag, status, raw)
		}
	}

	// The canonical spellings still simulate fine.
	for _, tag := range []string{"RS_NL", "RS_N", "GREEDY_LF_LINK"} {
		req := SimulateRequest{Schedule: &WireSchedule{Algorithm: tag, N: 4, Phases: phases}}
		if status, raw := postJSON(t, ts.URL+"/v1/simulate", req, nil); status != http.StatusOK {
			t.Errorf("algorithm %q: status %d, want 200 (%s)", tag, status, raw)
		}
	}

	// An AC tag with phases is contradictory (AC runs are driven by the
	// matrix, not a phase list) and must be rejected too.
	req := SimulateRequest{Schedule: &WireSchedule{Algorithm: "AC", N: 4, Phases: phases}}
	if status, raw := postJSON(t, ts.URL+"/v1/simulate", req, nil); status != http.StatusBadRequest {
		t.Errorf("AC schedule with phases: status %d, want 400 (%s)", status, raw)
	}
}

// TestUnknownScheduleAlgorithmErrorListsEveryKnownTag: the 400 for an
// unknown schedule algorithm must name every tag the service actually
// accepts. Before the fix the want-list omitted AC even though
// knownScheduleAlgorithms accepts it: a client sending the lowercase
// typo "ac" was told AC does not exist. The test ranges over the
// accepting set itself, so the message and the set cannot drift apart
// again.
func TestUnknownScheduleAlgorithmErrorListsEveryKnownTag(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	req := SimulateRequest{Schedule: &WireSchedule{
		Algorithm: "ac", N: 4, Phases: []WirePhase{{{0, 1, 256}}},
	}}
	var env ErrorEnvelope
	status, raw := postJSON(t, ts.URL+"/v1/simulate", req, &env)
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (%s)", status, raw)
	}
	for tag := range knownScheduleAlgorithms {
		if !strings.Contains(env.Error, tag) {
			t.Errorf("error message %q does not offer accepted tag %s", env.Error, tag)
		}
	}
}

// TestScheduleServesGreedyLFLink: the service must be able to produce
// every schedule it knows how to simulate. GREEDY_LF_LINK is
// implemented by the core, exported in api.go, and mapped to S1 by
// resolveProtocol — but /v1/schedule rejected it before the fix.
func TestScheduleServesGreedyLFLink(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	req := ScheduleRequest{Matrix: testMatrix(t, 16, 4, 4096, 3), Algorithm: "GREEDY_LF_LINK"}
	var env Envelope
	status, raw := postJSON(t, ts.URL+"/v1/schedule", req, &env)
	if status != http.StatusOK {
		t.Fatalf("GREEDY_LF_LINK: status %d, want 200 (%s)", status, raw)
	}
	var res ScheduleResult
	if err := json.Unmarshal(env.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Chosen != "GREEDY_LF_LINK" || res.Schedule == nil || res.Schedule.Algorithm != "GREEDY_LF_LINK" {
		t.Fatalf("bad result for GREEDY_LF_LINK: %s", env.Result)
	}
	// Link-freedom is the algorithm's whole point.
	if !res.LinkFree {
		t.Error("GREEDY_LF_LINK schedule is not link-free on its cube")
	}

	// Round trip: the schedule it produced simulates under its paper
	// pairing, S1.
	var simEnv Envelope
	status, raw = postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Schedule: res.Schedule}, &simEnv)
	if status != http.StatusOK {
		t.Fatalf("simulate GREEDY_LF_LINK: status %d (%s)", status, raw)
	}
	var simRes SimulateResult
	if err := json.Unmarshal(simEnv.Result, &simRes); err != nil {
		t.Fatal(err)
	}
	if simRes.Protocol != "S1" {
		t.Errorf("GREEDY_LF_LINK simulated under %s, want S1", simRes.Protocol)
	}
}

// TestFlightFollowersDoNotDistortCacheMetrics: six concurrent
// identical requests, one computation. The metrics must say exactly
// that: one miss (the leader's computation), zero hits (nothing was in
// the cache), five flight-served responses. Before the fix every
// follower's initial cache probe counted a miss — six misses for one
// computation — so the reported hit ratio understated real cache
// behavior, and flight dedupe was invisible.
func TestFlightFollowersDoNotDistortCacheMetrics(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	// Park the only worker so all clients pile onto one flight.
	started := make(chan struct{})
	release := make(chan struct{})
	blocker := &task{run: func(*worker) { close(started); <-release }, done: make(chan struct{})}
	if err := svc.pool.submit(blocker); err != nil {
		t.Fatal(err)
	}
	<-started

	req := ScheduleRequest{Matrix: testMatrix(t, 16, 4, 2048, 21), Algorithm: "RS_NL"}
	body, _ := json.Marshal(req)
	const clients = 6
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(body))
			if err != nil {
				errCh <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errCh <- fmt.Errorf("client %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	if misses := svc.cacheMisses[epSchedule].Load(); misses != 1 {
		t.Errorf("cache misses = %d, want 1 (only the leader computed)", misses)
	}
	if hits := svc.cacheHits[epSchedule].Load(); hits != 0 {
		t.Errorf("cache hits = %d, want 0 (nothing was served from the cache)", hits)
	}
	if dedup := svc.flightDedup.Load(); dedup != clients-1 {
		t.Errorf("flight dedup = %d, want %d followers", dedup, clients-1)
	}

	// A straight repeat now IS a cache hit, and only a hit.
	if status, _ := postJSON(t, ts.URL+"/v1/schedule", req, nil); status != http.StatusOK {
		t.Fatal("repeat request failed")
	}
	if hits := svc.cacheHits[epSchedule].Load(); hits != 1 {
		t.Errorf("cache hits after repeat = %d, want 1", hits)
	}
	if misses := svc.cacheMisses[epSchedule].Load(); misses != 1 {
		t.Errorf("cache misses after repeat = %d, want still 1", misses)
	}
}
