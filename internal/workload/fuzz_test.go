package workload

import "testing"

// FuzzWorkloadSpec feeds the spec parser arbitrary strings: it must
// never panic, and anything it accepts must render a canonical form
// that reparses to the identical spec (the grammar's round-trip
// contract). Run in CI's fuzz job alongside the matrix and request
// decoders.
func FuzzWorkloadSpec(f *testing.F) {
	for _, s := range allSpecs {
		f.Add(s)
	}
	f.Add("dregular:8:4096")
	f.Add("uniform:4:1024:")
	f.Add("halo:8x:512")
	f.Add("stencil3d:4x4x4x4:64")
	f.Add("hotspot:-1:-1:-1")
	f.Add("uniform:99999999999999999999:1")
	f.Add(":::")
	f.Add("")
	f.Add("perm:\x00")
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseSpec(s) // must not panic
		if err != nil {
			return
		}
		canon := sp.String()
		back, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("accepted %q but canonical form %q rejected: %v", s, canon, err)
		}
		if back != sp {
			t.Fatalf("canonical form %q reparses to %+v, not %+v", canon, back, sp)
		}
	})
}
