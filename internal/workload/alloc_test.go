// Allocation-regression test for the matrix-reuse path campaign
// workers run on: regenerating a workload into a per-worker matrix
// must not silently grow back toward the O(n^2) fresh-build cost.
// Excluded under the race detector: its instrumentation changes
// allocation counts.
//
//go:build !race

package workload

import (
	"math/rand"
	"testing"

	"unsched/internal/comm"
)

// Budgets for BuildInto on a warm 64-node matrix. The dominant cost of
// the fresh path — the n^2 matrix itself — is gone; what remains is
// the generator's own scratch (a permutation slice and shuffle
// closures for uniform, the d-slot displacement map for scatter). A
// reintroduced per-cell matrix allocation blows past either budget.
const (
	allocBudgetUniformInto = 12
	allocBudgetScatterInto = 12
)

func TestBuildIntoAllocs(t *testing.T) {
	cases := []struct {
		spec   string
		budget float64
	}{
		{"uniform:16:1024", allocBudgetUniformInto},
		{"scatter:16:1024", allocBudgetScatterInto},
	}
	for _, c := range cases {
		sp := MustParseSpec(c.spec)
		m := comm.MustNew(64)
		rng := rand.New(rand.NewSource(9))
		build := func() {
			if err := sp.BuildInto(m, rng); err != nil {
				t.Fatal(err)
			}
		}
		build() // warm
		if got := testing.AllocsPerRun(20, build); got > c.budget {
			t.Errorf("%s: BuildInto on a reused matrix: %.1f allocs/run, budget %.0f", c.spec, got, c.budget)
		}
	}
}
