// Package workload defines the canonical, machine-neutral description
// of a communication workload — the one vocabulary the service
// endpoints, the campaign engine, the CLIs, and the public API share,
// mirroring internal/topo's Spec layer for topologies. A spec names a
// pattern family and its parameters; building it against an n-node
// machine yields the comm.Matrix the schedulers consume.
//
// A spec round-trips through its string form:
//
//	uniform:D:BYTES        the paper's §6 workload: uniform message
//	                       size, exactly-d-regular random pattern
//	                       (comm.DRegular; "dregular" is an accepted
//	                       alias)
//	scatter:D:BYTES        send-side uniform random: exactly d random
//	                       destinations per sender, receive degrees
//	                       binomial (comm.UniformRandom)
//	hotspot:D:BYTES:HOT    d messages per sender, half of them aimed
//	                       at the first HOT processors (comm.HotSpot)
//	halo:WxH:BYTES         irregular-mesh halo exchange: a WxH element
//	                       grid with random diagonals, strip-partitioned
//	                       across the machine, BYTES per boundary element
//	spmv:NNZ:BYTES         sparse mat-vec gather with power-law column
//	                       popularity, NNZ nonzeros per row, BYTES per
//	                       fetched vector entry (comm.SpMVPowerLaw)
//	perm:BYTES             random fixed-point-free permutation
//	transpose:BYTES        matrix-transpose exchange on a k x k grid
//	                       (needs a square machine)
//	shift:K:BYTES          cyclic shift by K
//	stencil3d:XxYxZ:BYTES  7-point periodic stencil halo over an XxYxZ
//	                       element grid, strip-partitioned
//	bitcomp:BYTES          bit-complement permutation (needs a
//	                       power-of-two machine)
//	alltoall:BYTES         complete exchange, density n-1
//
// Parse with ParseSpec, render the canonical form with String, check
// machine-independent bounds with Validate and machine fit with
// ValidateFor, and construct the matrix with Build or BuildInto. The
// zero Spec is invalid.
//
// Specs are machine-sized at build time: the same halo:64x64:512 spec
// sweeps unchanged across a cube:6 and a torus:16x16 campaign. Each
// spec also owns a stream-key identity (Key) under which the
// experiment engine derives its deterministic RNG streams; the uniform
// kind's identity is exactly the historical (density, bytes) tuple, so
// classic density-sweep campaigns reproduce their goldens bit for bit.
package workload

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"unsched/internal/comm"
)

// Structural caps, enforced by Validate before any build: they bound
// the work a spec can demand (element-grid builds cost O(elements),
// matrix builds O(n^2)) independent of the machine it lands on, so
// services can reject oversized specs from the string alone.
const (
	// MaxBytes bounds the per-message (or per-element) size parameter.
	MaxBytes = 1 << 30
	// MaxDegree bounds the density-style parameters (D, K, HOT).
	MaxDegree = 1 << 20
	// MaxSpMVNNZ bounds the spmv nonzeros-per-row parameter. The build
	// draws 32*n*NNZ power-law samples, so unlike the other degree
	// parameters this one multiplies directly into build time; 64 covers
	// every realistic sparse-matrix row while keeping the worst-case
	// build (n=1024) around two million draws.
	MaxSpMVNNZ = 64
	// MaxElements bounds the element grids behind halo and stencil3d
	// specs (the build walks every element).
	MaxElements = 1 << 21
	// MaxExtent bounds one element-grid axis.
	MaxExtent = 1 << 12
	// haloDiagProb is the diagonal-insertion probability of the halo
	// spec's irregular mesh — fixed so the spec string alone identifies
	// the distribution.
	haloDiagProb = 0.3
	// hotspotProb is the hot-destination probability of the hotspot
	// spec, fixed for the same reason.
	hotspotProb = 0.5
	// spmvRowsPerProc matches comm.SpMVPowerLaw's 32 rows per processor.
	spmvRowsPerProc = 32
)

// Spec is the canonical description of one workload. Construct with
// ParseSpec or the XxxSpec helpers; the zero value is invalid.
type Spec struct {
	// Kind is one of "uniform", "scatter", "hotspot", "halo", "spmv",
	// "perm", "transpose", "shift", "stencil3d", "bitcomp", "alltoall".
	Kind string
	// D is the density parameter (Kinds "uniform", "scatter",
	// "hotspot").
	D int
	// Bytes is the uniform message size, or the per-element size for
	// the aggregating kinds (halo, spmv, stencil3d). Every kind has it.
	Bytes int64
	// Hot is the hot-destination count (Kind "hotspot").
	Hot int
	// W, H are the element-grid extents (Kind "halo").
	W, H int
	// X, Y, Z are the element-grid extents (Kind "stencil3d").
	X, Y, Z int
	// NNZ is the nonzeros-per-row parameter (Kind "spmv").
	NNZ int
	// K is the shift distance (Kind "shift").
	K int
}

// UniformSpec builds the paper's classic workload spec without going
// through the string grammar: density d, uniform message size bytes.
func UniformSpec(d int, bytes int64) Spec { return Spec{Kind: "uniform", D: d, Bytes: bytes} }

// ScatterSpec, HotSpotSpec, HaloSpec, SpMVSpec, PermSpec,
// TransposeSpec, ShiftSpec, Stencil3DSpec, BitCompSpec, and
// AllToAllSpec are the remaining structured constructors.
func ScatterSpec(d int, bytes int64) Spec { return Spec{Kind: "scatter", D: d, Bytes: bytes} }
func HotSpotSpec(d int, bytes int64, hot int) Spec {
	return Spec{Kind: "hotspot", D: d, Bytes: bytes, Hot: hot}
}
func HaloSpec(w, h int, bytes int64) Spec { return Spec{Kind: "halo", W: w, H: h, Bytes: bytes} }
func SpMVSpec(nnz int, bytes int64) Spec  { return Spec{Kind: "spmv", NNZ: nnz, Bytes: bytes} }
func PermSpec(bytes int64) Spec           { return Spec{Kind: "perm", Bytes: bytes} }
func TransposeSpec(bytes int64) Spec      { return Spec{Kind: "transpose", Bytes: bytes} }
func ShiftSpec(k int, bytes int64) Spec   { return Spec{Kind: "shift", K: k, Bytes: bytes} }
func Stencil3DSpec(x, y, z int, bytes int64) Spec {
	return Spec{Kind: "stencil3d", X: x, Y: y, Z: z, Bytes: bytes}
}
func BitCompSpec(bytes int64) Spec  { return Spec{Kind: "bitcomp", Bytes: bytes} }
func AllToAllSpec(bytes int64) Spec { return Spec{Kind: "alltoall", Bytes: bytes} }

// ParseSpec parses the string form of a workload spec. "dregular" is
// accepted as an alias of "uniform" (they are the same generator; the
// canonical form always says "uniform"), mirroring topo's
// "hypercube"/"cube" aliasing.
func ParseSpec(s string) (Spec, error) {
	kind, rest, ok := strings.Cut(s, ":")
	if !ok || rest == "" {
		return Spec{}, fmt.Errorf("workload: spec %q: want kind:args (uniform:D:BYTES, hotspot:D:BYTES:HOT, halo:WxH:BYTES, spmv:NNZ:BYTES, perm:BYTES, transpose:BYTES, shift:K:BYTES, stencil3d:XxYxZ:BYTES, bitcomp:BYTES, alltoall:BYTES)", s)
	}
	fail := func(format string, args ...any) (Spec, error) {
		return Spec{}, fmt.Errorf("workload: spec %q: %s", s, fmt.Sprintf(format, args...))
	}
	fields := strings.Split(rest, ":")
	num := func(idx int, name string) (int, error) {
		v, err := strconv.Atoi(fields[idx])
		if err != nil {
			return 0, fmt.Errorf("workload: spec %q: bad %s %q", s, name, fields[idx])
		}
		return v, nil
	}
	size := func(idx int) (int64, error) {
		v, err := strconv.ParseInt(fields[idx], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("workload: spec %q: bad byte size %q", s, fields[idx])
		}
		return v, nil
	}
	var sp Spec
	switch kind {
	case "uniform", "dregular", "scatter":
		if kind == "dregular" {
			kind = "uniform"
		}
		if len(fields) != 2 {
			return fail("want %s:D:BYTES", kind)
		}
		d, err := num(0, "density")
		if err != nil {
			return Spec{}, err
		}
		b, err := size(1)
		if err != nil {
			return Spec{}, err
		}
		sp = Spec{Kind: kind, D: d, Bytes: b}
	case "hotspot":
		if len(fields) != 3 {
			return fail("want hotspot:D:BYTES:HOT")
		}
		d, err := num(0, "density")
		if err != nil {
			return Spec{}, err
		}
		b, err := size(1)
		if err != nil {
			return Spec{}, err
		}
		hot, err := num(2, "hot count")
		if err != nil {
			return Spec{}, err
		}
		sp = Spec{Kind: "hotspot", D: d, Bytes: b, Hot: hot}
	case "halo":
		if len(fields) != 2 {
			return fail("want halo:WxH:BYTES")
		}
		w, h, err := extent2(s, fields[0])
		if err != nil {
			return Spec{}, err
		}
		b, err := size(1)
		if err != nil {
			return Spec{}, err
		}
		sp = Spec{Kind: "halo", W: w, H: h, Bytes: b}
	case "spmv":
		if len(fields) != 2 {
			return fail("want spmv:NNZ:BYTES")
		}
		nnz, err := num(0, "nnz")
		if err != nil {
			return Spec{}, err
		}
		b, err := size(1)
		if err != nil {
			return Spec{}, err
		}
		sp = Spec{Kind: "spmv", NNZ: nnz, Bytes: b}
	case "perm", "transpose", "bitcomp", "alltoall":
		if len(fields) != 1 {
			return fail("want %s:BYTES", kind)
		}
		b, err := size(0)
		if err != nil {
			return Spec{}, err
		}
		sp = Spec{Kind: kind, Bytes: b}
	case "shift":
		if len(fields) != 2 {
			return fail("want shift:K:BYTES")
		}
		k, err := num(0, "shift distance")
		if err != nil {
			return Spec{}, err
		}
		b, err := size(1)
		if err != nil {
			return Spec{}, err
		}
		sp = Spec{Kind: "shift", K: k, Bytes: b}
	case "stencil3d":
		if len(fields) != 2 {
			return fail("want stencil3d:XxYxZ:BYTES")
		}
		x, y, z, err := extent3(s, fields[0])
		if err != nil {
			return Spec{}, err
		}
		b, err := size(1)
		if err != nil {
			return Spec{}, err
		}
		sp = Spec{Kind: "stencil3d", X: x, Y: y, Z: z, Bytes: b}
	default:
		return fail("unknown kind %q (want uniform, scatter, hotspot, halo, spmv, perm, transpose, shift, stencil3d, bitcomp, or alltoall)", kind)
	}
	return sp, sp.Validate()
}

// MustParseSpec is ParseSpec for known-good specs; it panics on error.
func MustParseSpec(s string) Spec {
	sp, err := ParseSpec(s)
	if err != nil {
		panic(err)
	}
	return sp
}

func extent2(spec, s string) (w, h int, err error) {
	ws, hs, ok := strings.Cut(s, "x")
	if !ok {
		return 0, 0, fmt.Errorf("workload: spec %q: bad extent %q (want WxH)", spec, s)
	}
	w, errW := strconv.Atoi(ws)
	h, errH := strconv.Atoi(hs)
	if errW != nil || errH != nil {
		return 0, 0, fmt.Errorf("workload: spec %q: bad extent %q", spec, s)
	}
	return w, h, nil
}

func extent3(spec, s string) (x, y, z int, err error) {
	parts := strings.Split(s, "x")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("workload: spec %q: bad extent %q (want XxYxZ)", spec, s)
	}
	x, errX := strconv.Atoi(parts[0])
	y, errY := strconv.Atoi(parts[1])
	z, errZ := strconv.Atoi(parts[2])
	if errX != nil || errY != nil || errZ != nil {
		return 0, 0, 0, fmt.Errorf("workload: spec %q: bad extent %q", spec, s)
	}
	return x, y, z, nil
}

// Validate checks the machine-independent bounds — the same caps a
// service enforces from the spec string before paying for any O(n^2)
// or O(elements) build. Machine fit (density vs node count, square or
// power-of-two machines) is ValidateFor's job.
func (sp Spec) Validate() error {
	if sp.Bytes < 1 || sp.Bytes > MaxBytes {
		return fmt.Errorf("workload: %s byte size %d out of range [1,%d]", sp.Kind, sp.Bytes, int64(MaxBytes))
	}
	switch sp.Kind {
	case "uniform", "scatter":
		if sp.D < 1 || sp.D > MaxDegree {
			return fmt.Errorf("workload: %s density %d out of range [1,%d]", sp.Kind, sp.D, MaxDegree)
		}
	case "hotspot":
		if sp.D < 1 || sp.D > MaxDegree {
			return fmt.Errorf("workload: hotspot density %d out of range [1,%d]", sp.D, MaxDegree)
		}
		if sp.Hot < 1 || sp.Hot > MaxDegree {
			return fmt.Errorf("workload: hotspot hot count %d out of range [1,%d]", sp.Hot, MaxDegree)
		}
	case "halo":
		if sp.W < 2 || sp.H < 2 || sp.W > MaxExtent || sp.H > MaxExtent {
			return fmt.Errorf("workload: halo grid %dx%d out of range [2,%d] per axis", sp.W, sp.H, MaxExtent)
		}
		if sp.W*sp.H > MaxElements {
			return fmt.Errorf("workload: halo grid %dx%d has %d elements, limit %d", sp.W, sp.H, sp.W*sp.H, MaxElements)
		}
	case "spmv":
		if sp.NNZ < 1 || sp.NNZ > MaxSpMVNNZ {
			return fmt.Errorf("workload: spmv nnz %d out of range [1,%d]", sp.NNZ, MaxSpMVNNZ)
		}
	case "perm", "transpose", "bitcomp", "alltoall":
		// Bytes-only kinds: nothing beyond the shared size cap.
	case "shift":
		if sp.K < 1 || sp.K > MaxDegree {
			return fmt.Errorf("workload: shift distance %d out of range [1,%d]", sp.K, MaxDegree)
		}
	case "stencil3d":
		if sp.X < 1 || sp.Y < 1 || sp.Z < 1 || sp.X > MaxExtent || sp.Y > MaxExtent || sp.Z > MaxExtent {
			return fmt.Errorf("workload: stencil grid %dx%dx%d out of range [1,%d] per axis", sp.X, sp.Y, sp.Z, MaxExtent)
		}
		if sp.X*sp.Y*sp.Z > MaxElements {
			return fmt.Errorf("workload: stencil grid %dx%dx%d has %d elements, limit %d", sp.X, sp.Y, sp.Z, sp.X*sp.Y*sp.Z, MaxElements)
		}
	default:
		return fmt.Errorf("workload: unknown spec kind %q", sp.Kind)
	}
	return nil
}

// ValidateFor checks that the spec fits an n-node machine — the
// bounds that depend on where the workload lands. It assumes Validate
// passed.
func (sp Spec) ValidateFor(n int) error {
	if n < 2 {
		return fmt.Errorf("workload: %s needs at least 2 processors, got %d", sp.Kind, n)
	}
	switch sp.Kind {
	case "uniform", "scatter", "hotspot":
		if sp.D >= n {
			return fmt.Errorf("workload: %s density %d out of range (0,%d) on a %d-node machine", sp.Kind, sp.D, n, n)
		}
		if sp.Kind == "hotspot" && sp.Hot > n {
			return fmt.Errorf("workload: hotspot hot count %d exceeds the %d-node machine", sp.Hot, n)
		}
	case "halo":
		if sp.W*sp.H < n {
			return fmt.Errorf("workload: halo grid %dx%d has fewer elements than the %d-node machine", sp.W, sp.H, n)
		}
	case "transpose":
		k := 1
		for k*k < n {
			k++
		}
		if k*k != n {
			return fmt.Errorf("workload: transpose needs a square processor count, got %d", n)
		}
	case "shift":
		if sp.K%n == 0 {
			return fmt.Errorf("workload: shift by %d is a multiple of the %d-node machine size (self messages)", sp.K, n)
		}
	case "stencil3d":
		if sp.X*sp.Y*sp.Z < n {
			return fmt.Errorf("workload: stencil grid %dx%dx%d has fewer elements than the %d-node machine", sp.X, sp.Y, sp.Z, n)
		}
	case "bitcomp":
		if n&(n-1) != 0 {
			return fmt.Errorf("workload: bitcomp needs a power-of-two machine, got %d nodes", n)
		}
	}
	return nil
}

// String renders the canonical spec form, parseable by ParseSpec.
func (sp Spec) String() string {
	switch sp.Kind {
	case "uniform", "scatter":
		return fmt.Sprintf("%s:%d:%d", sp.Kind, sp.D, sp.Bytes)
	case "hotspot":
		return fmt.Sprintf("hotspot:%d:%d:%d", sp.D, sp.Bytes, sp.Hot)
	case "halo":
		return fmt.Sprintf("halo:%dx%d:%d", sp.W, sp.H, sp.Bytes)
	case "spmv":
		return fmt.Sprintf("spmv:%d:%d", sp.NNZ, sp.Bytes)
	case "perm", "transpose", "bitcomp", "alltoall":
		return fmt.Sprintf("%s:%d", sp.Kind, sp.Bytes)
	case "shift":
		return fmt.Sprintf("shift:%d:%d", sp.K, sp.Bytes)
	case "stencil3d":
		return fmt.Sprintf("stencil3d:%dx%dx%d:%d", sp.X, sp.Y, sp.Z, sp.Bytes)
	default:
		return fmt.Sprintf("invalid:%s", sp.Kind)
	}
}

// MsgBytes returns the spec's size parameter: the uniform message size
// for the fixed-size kinds, the per-element contribution for the
// aggregating kinds (halo, spmv, stencil3d), whose actual message
// sizes are multiples of it.
func (sp Spec) MsgBytes() int64 { return sp.Bytes }

// MaxMessageBytes returns a conservative upper bound on the size of
// any single message the built pattern can contain. For the
// fixed-size kinds this is exactly Bytes; for the aggregating kinds
// it is Bytes times a bound on how many per-element contributions one
// processor pair can accumulate — the strip-partition boundary cross
// section (halo: two boundary rows of W elements with at most 8
// neighbors each; stencil3d: two boundary planes of Y*Z elements with
// 6 edges each; spmv: the 32 columns each owner holds, fetched at
// most once per requester). Services gate this bound, not the bare
// per-element Bytes, so an aggregating spec cannot smuggle a
// multi-gigabyte message past a per-message size cap.
func (sp Spec) MaxMessageBytes() int64 {
	switch sp.Kind {
	case "halo":
		return sp.Bytes * 16 * int64(sp.W)
	case "stencil3d":
		return sp.Bytes * 12 * int64(sp.Y) * int64(sp.Z)
	case "spmv":
		return sp.Bytes * 2 * spmvRowsPerProc
	default:
		return sp.Bytes
	}
}

// DensityHint returns the nominal density of the built pattern on an
// n-node machine: the D parameter for the degree-parameterized kinds,
// the exact density for the permutation-shaped and complete-exchange
// kinds, and 0 for the data-dependent kinds (halo, spmv, stencil3d),
// whose density emerges from the partition.
func (sp Spec) DensityHint(n int) int {
	switch sp.Kind {
	case "uniform", "scatter", "hotspot":
		return sp.D
	case "perm", "transpose", "shift", "bitcomp":
		return 1
	case "alltoall":
		return n - 1
	default:
		return 0
	}
}

// SizeCVHint returns the nominal coefficient of variation (std/mean)
// of the built pattern's message sizes, without building anything:
// exactly 0 for the fixed-size kinds (every message carries Bytes),
// and a coarse analytic hint for the aggregating kinds whose message
// sizes emerge from the partition — spmv's power-law row weights put
// it around 1, the halo and stencil boundary cross sections vary
// moderately. The hint only has to land in the right quality-model
// band; it is not a measurement.
func (sp Spec) SizeCVHint() float64 {
	switch sp.Kind {
	case "spmv":
		return 1.0
	case "halo", "stencil3d":
		return 0.4
	default:
		return 0
	}
}

// Stream-key tags for the non-uniform kinds. The uniform kind's key is
// the bare historical (D, Bytes) tuple — both components positive — so
// classic density sweeps reproduce their goldens; every other kind
// leads with a distinct negative tag, which no uniform key can start
// with.
const (
	keyScatter   = -1
	keyHotspot   = -2
	keyHalo      = -3
	keySpMV      = -4
	keyPerm      = -5
	keyTranspose = -6
	keyShift     = -7
	keyStencil3D = -8
	keyBitComp   = -9
	keyAllToAll  = -10
)

// AppendKey appends the spec's stream-key identity to buf and returns
// the extended slice. The experiment engine folds these components
// (with the master seed, the sample index, and the algorithm index)
// through composed SplitMix64 mixing to derive every deterministic RNG
// stream; two specs share streams iff their keys are identical.
func (sp Spec) AppendKey(buf []int64) []int64 {
	switch sp.Kind {
	case "uniform":
		return append(buf, int64(sp.D), sp.Bytes)
	case "scatter":
		return append(buf, keyScatter, int64(sp.D), sp.Bytes)
	case "hotspot":
		return append(buf, keyHotspot, int64(sp.D), sp.Bytes, int64(sp.Hot))
	case "halo":
		return append(buf, keyHalo, int64(sp.W), int64(sp.H), sp.Bytes)
	case "spmv":
		return append(buf, keySpMV, int64(sp.NNZ), sp.Bytes)
	case "perm":
		return append(buf, keyPerm, sp.Bytes)
	case "transpose":
		return append(buf, keyTranspose, sp.Bytes)
	case "shift":
		return append(buf, keyShift, int64(sp.K), sp.Bytes)
	case "stencil3d":
		return append(buf, keyStencil3D, int64(sp.X), int64(sp.Y), int64(sp.Z), sp.Bytes)
	case "bitcomp":
		return append(buf, keyBitComp, sp.Bytes)
	default: // alltoall; unknown kinds are rejected by Validate
		return append(buf, keyAllToAll, sp.Bytes)
	}
}

// Key returns the spec's stream-key identity as a fresh slice.
func (sp Spec) Key() []int64 { return sp.AppendKey(nil) }

// Deterministic reports whether the built matrix is independent of the
// RNG (permutation-shaped deterministic exchanges and element-grid
// stencils).
func (sp Spec) Deterministic() bool {
	switch sp.Kind {
	case "transpose", "shift", "stencil3d", "bitcomp", "alltoall":
		return true
	}
	return false
}

// Build constructs the workload's communication matrix for an n-node
// machine. rng drives the randomized kinds (it may be nil for the
// deterministic ones) and is the only source of randomness, so one
// seed reproduces one matrix anywhere.
func (sp Spec) Build(n int, rng *rand.Rand) (*comm.Matrix, error) {
	m, err := comm.New(n)
	if err != nil {
		return nil, err
	}
	if err := sp.BuildInto(m, rng); err != nil {
		return nil, err
	}
	return m, nil
}

// BuildInto regenerates the workload into m (sized for the target
// machine), zeroing it first — the allocation-free form campaign
// workers use to reuse one matrix across every cell they measure.
func (sp Spec) BuildInto(m *comm.Matrix, rng *rand.Rand) error {
	if err := sp.Validate(); err != nil {
		return err
	}
	n := m.N()
	if err := sp.ValidateFor(n); err != nil {
		return err
	}
	switch sp.Kind {
	case "uniform":
		return comm.DRegularInto(m, sp.D, sp.Bytes, rng)
	case "scatter":
		return comm.UniformRandomInto(m, sp.D, sp.Bytes, rng)
	case "hotspot":
		return comm.HotSpotInto(m, sp.D, sp.Bytes, sp.Hot, hotspotProb, rng)
	case "halo":
		mesh, err := comm.NewIrregularMesh(sp.W, sp.H, haloDiagProb, rng)
		if err != nil {
			return err
		}
		return comm.HaloFromPartitionInto(m, mesh.StripPartition(n), mesh.Adj, sp.Bytes)
	case "spmv":
		return comm.SpMVPowerLawInto(m, sp.NNZ, sp.Bytes, rng)
	case "perm":
		return comm.PermutationInto(m, sp.Bytes, rng)
	case "transpose":
		return comm.TransposeInto(m, sp.Bytes)
	case "shift":
		return comm.ShiftInto(m, sp.K, sp.Bytes)
	case "stencil3d":
		return comm.Stencil3DInto(m, sp.X, sp.Y, sp.Z, sp.Bytes)
	case "bitcomp":
		return comm.BitComplementInto(m, sp.Bytes)
	default: // alltoall; Validate rejected everything else
		return comm.AllToAllInto(m, sp.Bytes)
	}
}
