package workload

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"unsched/internal/comm"
)

// allSpecs is one representative of every kind, all buildable on a
// 16-node machine.
var allSpecs = []string{
	"uniform:4:1024",
	"scatter:4:1024",
	"hotspot:4:1024:2",
	"halo:8x8:512",
	"spmv:6:8",
	"perm:2048",
	"transpose:4096",
	"shift:3:1024",
	"stencil3d:4x4x4:64",
	"bitcomp:1024",
	"alltoall:256",
}

func TestSpecRoundTrip(t *testing.T) {
	for _, s := range allSpecs {
		sp, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if got := sp.String(); got != s {
			t.Errorf("%s: canonical form %q", s, got)
		}
		again, err := ParseSpec(sp.String())
		if err != nil {
			t.Fatalf("%s: reparse: %v", s, err)
		}
		if again != sp {
			t.Errorf("%s: reparse %+v != %+v", s, again, sp)
		}
	}
}

func TestSpecAliases(t *testing.T) {
	sp, err := ParseSpec("dregular:8:4096")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Kind != "uniform" || sp.String() != "uniform:8:4096" {
		t.Errorf("dregular alias parsed to %q", sp.String())
	}
	if sp != UniformSpec(8, 4096) {
		t.Errorf("alias %+v != UniformSpec", sp)
	}
}

func TestSpecParseRejects(t *testing.T) {
	bad := []string{
		"",
		"uniform",
		"uniform:",
		"uniform:4",
		"uniform:4:1024:9",
		"uniform:x:1024",
		"uniform:0:1024",
		"uniform:4:0",
		"uniform:4:-5",
		"uniform:4:9999999999999999999",
		"scatter:4",
		"hotspot:4:1024",
		"hotspot:4:1024:0",
		"halo:8:512",
		"halo:1x8:512",
		"halo:8x8x8:512",
		"halo:99999x99999:512",
		"spmv:0:8",
		"spmv:6:8:1",
		"spmv:65:8",
		"perm:0",
		"perm:1:2",
		"transpose:-1",
		"shift:0:1024",
		"shift:3",
		"stencil3d:4x4:64",
		"stencil3d:0x4x4:64",
		"stencil3d:2000x2000x2000:64",
		"bitcomp:",
		"alltoall:0",
		"klein:4:1024",
		"uniform:2000000:1024",
	}
	for _, s := range bad {
		if sp, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted as %+v", s, sp)
		}
	}
}

// TestSpecRoundTripRandomized: random structured specs that pass
// Validate must survive String -> ParseSpec unchanged.
func TestSpecRoundTripRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	make := []func() Spec{
		func() Spec { return UniformSpec(1+rng.Intn(100), 1+rng.Int63n(1<<20)) },
		func() Spec { return ScatterSpec(1+rng.Intn(100), 1+rng.Int63n(1<<20)) },
		func() Spec { return HotSpotSpec(1+rng.Intn(100), 1+rng.Int63n(1<<20), 1+rng.Intn(32)) },
		func() Spec { return HaloSpec(2+rng.Intn(100), 2+rng.Intn(100), 1+rng.Int63n(1<<20)) },
		func() Spec { return SpMVSpec(1+rng.Intn(64), 1+rng.Int63n(1<<16)) },
		func() Spec { return PermSpec(1 + rng.Int63n(1<<20)) },
		func() Spec { return TransposeSpec(1 + rng.Int63n(1<<20)) },
		func() Spec { return ShiftSpec(1+rng.Intn(1000), 1+rng.Int63n(1<<20)) },
		func() Spec {
			return Stencil3DSpec(1+rng.Intn(32), 1+rng.Intn(32), 1+rng.Intn(32), 1+rng.Int63n(1<<16))
		},
		func() Spec { return BitCompSpec(1 + rng.Int63n(1<<20)) },
		func() Spec { return AllToAllSpec(1 + rng.Int63n(1<<20)) },
	}
	for i := 0; i < 200; i++ {
		sp := make[rng.Intn(len(make))]()
		if err := sp.Validate(); err != nil {
			t.Fatalf("%+v: %v", sp, err)
		}
		back, err := ParseSpec(sp.String())
		if err != nil {
			t.Fatalf("%s: %v", sp, err)
		}
		if back != sp {
			t.Errorf("round trip %+v -> %q -> %+v", sp, sp.String(), back)
		}
	}
}

// TestSpecBuildsValidMatrix: every spec builds a structurally valid
// matrix on every machine size it admits — no self sends, no negative
// sizes, and the degree/density bounds its kind promises.
func TestSpecBuildsValidMatrix(t *testing.T) {
	for _, n := range []int{4, 16, 64} {
		for _, s := range allSpecs {
			sp := MustParseSpec(s)
			if err := sp.ValidateFor(n); err != nil {
				continue // e.g. transpose on a non-square n
			}
			m, err := sp.Build(n, rand.New(rand.NewSource(11)))
			if err != nil {
				t.Fatalf("n=%d %s: %v", n, s, err)
			}
			if err := m.Validate(); err != nil {
				t.Errorf("n=%d %s: invalid matrix: %v", n, s, err)
			}
			switch sp.Kind {
			case "uniform":
				for i := 0; i < n; i++ {
					if m.SendDegree(i) != sp.D || m.RecvDegree(i) != sp.D {
						t.Errorf("n=%d %s: node %d degrees %d/%d, want %d", n, s, i, m.SendDegree(i), m.RecvDegree(i), sp.D)
					}
				}
			case "scatter", "hotspot":
				for i := 0; i < n; i++ {
					if m.SendDegree(i) != sp.D {
						t.Errorf("n=%d %s: node %d send degree %d, want %d", n, s, i, m.SendDegree(i), sp.D)
					}
				}
			case "perm", "shift", "bitcomp":
				if m.Density() != 1 {
					t.Errorf("n=%d %s: density %d, want 1", n, s, m.Density())
				}
			case "transpose":
				if m.Density() != 1 {
					t.Errorf("n=%d %s: density %d, want 1", n, s, m.Density())
				}
			case "alltoall":
				if m.Density() != n-1 {
					t.Errorf("n=%d %s: density %d, want %d", n, s, m.Density(), n-1)
				}
			case "spmv":
				// Receive side bounded by nnz per row times rows per proc.
				for i := 0; i < n; i++ {
					if m.RecvDegree(i) > n-1 {
						t.Errorf("n=%d %s: impossible recv degree", n, s)
					}
				}
			}
			if hint := sp.DensityHint(n); hint > 0 {
				if got := m.Density(); sp.Kind != "scatter" && sp.Kind != "hotspot" && got != hint {
					// scatter/hotspot receive degrees may exceed D.
					if sp.Kind == "uniform" || got < hint {
						t.Errorf("n=%d %s: density %d, hint %d", n, s, got, hint)
					}
				}
			}
		}
	}
}

// TestSpecBuildDeterministic: identical seed, identical matrix — also
// when regenerated into a dirty reused buffer, the reuse contract the
// campaign workers rely on.
func TestSpecBuildDeterministic(t *testing.T) {
	const n = 16
	reused := comm.MustNew(n)
	for _, s := range allSpecs {
		sp := MustParseSpec(s)
		a, err := sp.Build(n, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		b, err := sp.Build(n, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if !a.Equal(b) {
			t.Errorf("%s: same seed, different matrices", s)
		}
		if err := comm.AllToAllInto(reused, 1); err != nil {
			t.Fatal(err)
		}
		if err := sp.BuildInto(reused, rand.New(rand.NewSource(3))); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if !reused.Equal(a) {
			t.Errorf("%s: BuildInto over a dirty matrix differs from fresh build", s)
		}
	}
}

// TestSpecKeysDistinct: no two distinct specs may share a stream key,
// and no non-uniform key may collide with any plausible uniform
// (D, BYTES) key — uniform keys are all-positive, every other kind
// leads with a negative tag.
func TestSpecKeysDistinct(t *testing.T) {
	seen := map[string]string{}
	specs := append([]string{}, allSpecs...)
	specs = append(specs, "uniform:8:1024", "scatter:8:1024", "shift:8:1024", "spmv:8:1024", "hotspot:8:1024:8")
	for _, s := range specs {
		sp := MustParseSpec(s)
		key := fmt.Sprint(sp.Key())
		if prev, dup := seen[key]; dup {
			t.Errorf("specs %s and %s share stream key %s", prev, s, key)
		}
		seen[key] = s
		if sp.Kind != "uniform" && sp.Key()[0] >= 0 {
			t.Errorf("%s: non-uniform key must lead with a negative tag, got %v", s, sp.Key())
		}
	}
	// The uniform key is the bare historical (D, BYTES) tuple.
	if got := fmt.Sprint(UniformSpec(4, 1024).Key()); got != "[4 1024]" {
		t.Errorf("uniform key = %s, want [4 1024]", got)
	}
}

func TestSpecValidateFor(t *testing.T) {
	cases := []struct {
		spec string
		n    int
		ok   bool
	}{
		{"uniform:4:1024", 4, false}, // d >= n
		{"uniform:4:1024", 5, true},
		{"hotspot:2:64:9", 8, false}, // hot > n
		{"halo:8x8:64", 128, false},  // fewer elements than nodes
		{"halo:8x8:64", 64, true},
		{"transpose:64", 8, false}, // non-square
		{"transpose:64", 16, true},
		{"shift:8:64", 8, false}, // k % n == 0
		{"shift:8:64", 6, true},
		{"stencil3d:2x2x2:64", 16, false},
		{"stencil3d:2x2x2:64", 8, true},
		{"bitcomp:64", 12, false}, // not a power of two
		{"bitcomp:64", 16, true},
		{"alltoall:64", 2, true},
		{"perm:64", 1, false},
	}
	for _, c := range cases {
		sp := MustParseSpec(c.spec)
		err := sp.ValidateFor(c.n)
		if (err == nil) != c.ok {
			t.Errorf("%s on n=%d: err=%v, want ok=%v", c.spec, c.n, err, c.ok)
		}
	}
}

// TestSpecMaxMessageBytes: the per-message bound services gate on is
// the bare size for fixed-size kinds and the boundary-cross-section
// multiple for the aggregating kinds.
func TestSpecMaxMessageBytes(t *testing.T) {
	if got := MustParseSpec("uniform:8:4096").MaxMessageBytes(); got != 4096 {
		t.Errorf("uniform bound %d", got)
	}
	if got := MustParseSpec("halo:64x64:512").MaxMessageBytes(); got != 512*16*64 {
		t.Errorf("halo bound %d", got)
	}
	if got := MustParseSpec("stencil3d:8x4x2:64").MaxMessageBytes(); got != 64*12*4*2 {
		t.Errorf("stencil bound %d", got)
	}
	if got := MustParseSpec("spmv:8:8").MaxMessageBytes(); got != 8*2*spmvRowsPerProc {
		t.Errorf("spmv bound %d", got)
	}
}

func TestSpecDensityHintAndBytes(t *testing.T) {
	if got := MustParseSpec("uniform:8:4096").DensityHint(64); got != 8 {
		t.Errorf("uniform hint %d", got)
	}
	if got := MustParseSpec("alltoall:64").DensityHint(16); got != 15 {
		t.Errorf("alltoall hint %d", got)
	}
	if got := MustParseSpec("halo:8x8:64").DensityHint(16); got != 0 {
		t.Errorf("halo hint %d, want 0 (data-dependent)", got)
	}
	if got := MustParseSpec("perm:512").MsgBytes(); got != 512 {
		t.Errorf("perm bytes %d", got)
	}
}

func TestSpecInvalidZeroValue(t *testing.T) {
	var sp Spec
	if err := sp.Validate(); err == nil {
		t.Error("zero Spec validated")
	}
	if !strings.HasPrefix(sp.String(), "invalid:") {
		t.Errorf("zero Spec renders %q", sp.String())
	}
	if _, err := sp.Build(8, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero Spec built")
	}
}
