// Package mpemu is a message-passing runtime emulating the iPSC/860's
// NX programming model on goroutines and channels: ranked nodes,
// tagged sends and receives, pairwise exchange, barrier, and the
// concatenate (allgather) collective the paper's runtime scheduling
// relies on (§4: "all processors can participate in a concatenate
// operation which will combine each processor's sending vector to form
// the communication matrix COM and leave a copy at every processor").
//
// This is the functional half of the machine substitution (DESIGN.md
// §2): timing comes from the deterministic simulator in internal/ipsc;
// mpemu validates behaviour — schedules deadlock-free under real
// concurrency, payloads delivered intact, and the runtime-scheduling
// pipeline (compact row → concatenate → derive identical schedules
// from a shared seed) actually works end to end.
package mpemu

import (
	"fmt"
	"sync"
	"time"
)

// Message is one tagged point-to-point message.
type Message struct {
	Src  int
	Tag  int
	Data []byte
}

// Comm is a communicator over n ranked nodes. Create with New, then
// Run node programs against it.
type Comm struct {
	n       int
	inboxes []chan Message
	timeout time.Duration
}

// Option configures a Comm.
type Option func(*Comm)

// WithTimeout sets how long a blocked receive waits before reporting a
// suspected deadlock. The default is 10 seconds.
func WithTimeout(d time.Duration) Option {
	return func(c *Comm) { c.timeout = d }
}

// WithBuffer sets the per-node inbox capacity. The default (4096)
// comfortably holds every experiment in this repository; sends block
// only when a receiver's inbox is full, mirroring the finite system
// buffers of §3.
func WithBuffer(slots int) Option {
	return func(c *Comm) {
		for i := range c.inboxes {
			c.inboxes[i] = make(chan Message, slots)
		}
	}
}

// New returns a communicator of n nodes.
func New(n int, opts ...Option) (*Comm, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mpemu: node count %d must be positive", n)
	}
	c := &Comm{n: n, timeout: 10 * time.Second}
	c.inboxes = make([]chan Message, n)
	for i := range c.inboxes {
		c.inboxes[i] = make(chan Message, 4096)
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// N returns the number of nodes.
func (c *Comm) N() int { return c.n }

// Node is one rank's handle, valid inside a Run program.
type Node struct {
	rank    int
	comm    *Comm
	pending []Message // received but not yet matched
}

// Rank returns this node's id.
func (nd *Node) Rank() int { return nd.rank }

// N returns the communicator size.
func (nd *Node) N() int { return nd.comm.n }

// Run executes program on every rank concurrently and waits for all of
// them. The first error (by rank order) is returned; a rank that
// panics is converted into an error rather than taking down the test
// process.
func (c *Comm) Run(program func(*Node) error) error {
	errs := make([]error, c.n)
	var wg sync.WaitGroup
	for rank := 0; rank < c.n; rank++ {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[rank] = fmt.Errorf("mpemu: rank %d panicked: %v", rank, r)
				}
			}()
			errs[rank] = program(&Node{rank: rank, comm: c})
		}()
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			return fmt.Errorf("mpemu: rank %d: %w", rank, err)
		}
	}
	return nil
}

// Send delivers data to dst with the given tag. It blocks only when
// dst's inbox is full (finite buffer space, §3). Data is copied, so
// the caller may reuse its buffer.
func (nd *Node) Send(dst, tag int, data []byte) error {
	if dst < 0 || dst >= nd.comm.n {
		return fmt.Errorf("mpemu: send to invalid rank %d", dst)
	}
	if dst == nd.rank {
		return fmt.Errorf("mpemu: rank %d sending to itself", nd.rank)
	}
	msg := Message{Src: nd.rank, Tag: tag, Data: append([]byte(nil), data...)}
	select {
	case nd.comm.inboxes[dst] <- msg:
		return nil
	case <-time.After(nd.comm.timeout):
		return fmt.Errorf("mpemu: rank %d send to %d tag %d timed out (receiver buffer full — the deadlock §3 warns about)",
			nd.rank, dst, tag)
	}
}

// AnySource matches a receive against any sender.
const AnySource = -1

// Recv blocks until a message from src (or AnySource) with the given
// tag arrives, and returns its payload. Out-of-order arrivals are
// queued and matched later, NX-style.
func (nd *Node) Recv(src, tag int) ([]byte, error) {
	for i, m := range nd.pending {
		if (src == AnySource || m.Src == src) && m.Tag == tag {
			nd.pending = append(nd.pending[:i], nd.pending[i+1:]...)
			return m.Data, nil
		}
	}
	deadline := time.After(nd.comm.timeout)
	for {
		select {
		case m := <-nd.comm.inboxes[nd.rank]:
			if (src == AnySource || m.Src == src) && m.Tag == tag {
				return m.Data, nil
			}
			nd.pending = append(nd.pending, m)
		case <-deadline:
			return nil, fmt.Errorf("mpemu: rank %d recv(src=%d, tag=%d) timed out with %d unmatched messages",
				nd.rank, src, tag, len(nd.pending))
		}
	}
}

// Exchange performs the pairwise exchange of §2.2: send data to peer
// and receive peer's message with the same tag. Channel buffering
// plays the role of the pairwise synchronization — both directions
// proceed without deadlock regardless of arrival order.
func (nd *Node) Exchange(peer, tag int, data []byte) ([]byte, error) {
	if err := nd.Send(peer, tag, data); err != nil {
		return nil, err
	}
	return nd.Recv(peer, tag)
}

// reserved tag space for collectives; user tags must be non-negative.
const (
	tagBarrier = -1000 - iota
	tagConcat
	tagReduce
)

// Barrier blocks until every rank has entered it. Dissemination
// barrier: ceil(log2 n) rounds of staggered signals.
func (nd *Node) Barrier() error {
	n := nd.comm.n
	for k := 1; k < n; k *= 2 {
		dst := (nd.rank + k) % n
		src := (nd.rank - k + n) % n
		if err := nd.Send(dst, tagBarrier-k, nil); err != nil {
			return err
		}
		if _, err := nd.Recv(src, tagBarrier-k); err != nil {
			return err
		}
	}
	return nil
}

// Concatenate is the allgather the paper's runtime scheduling uses:
// every rank contributes local, every rank returns the full slice of
// contributions indexed by rank. On a power-of-two communicator it
// runs recursive doubling over hypercube dimensions (the efficient
// implementation the paper cites); otherwise it falls back to a ring.
func (nd *Node) Concatenate(local []byte) ([][]byte, error) {
	n := nd.comm.n
	gathered := make([][]byte, n)
	gathered[nd.rank] = append([]byte(nil), local...)
	if n&(n-1) == 0 {
		// Recursive doubling: after round r, each node holds the
		// contributions of its 2^(r+1)-node subcube.
		for dim := 1; dim < n; dim *= 2 {
			peer := nd.rank ^ dim
			blob := encodeContributions(gathered)
			got, err := nd.Exchange(peer, tagConcat-dim, blob)
			if err != nil {
				return nil, err
			}
			if err := decodeContributions(got, gathered); err != nil {
				return nil, err
			}
		}
		return gathered, nil
	}
	// Ring allgather for non-power-of-two sizes.
	blob := encodeContributions(gathered)
	for step := 0; step < n-1; step++ {
		next := (nd.rank + 1) % n
		prev := (nd.rank - 1 + n) % n
		if err := nd.Send(next, tagConcat-step, blob); err != nil {
			return nil, err
		}
		got, err := nd.Recv(prev, tagConcat-step)
		if err != nil {
			return nil, err
		}
		if err := decodeContributions(got, gathered); err != nil {
			return nil, err
		}
		blob = got
	}
	return gathered, nil
}

// AllReduceMax returns the maximum of every rank's value.
func (nd *Node) AllReduceMax(v int64) (int64, error) {
	buf := make([]byte, 8)
	putInt64(buf, v)
	all, err := nd.Concatenate(buf)
	if err != nil {
		return 0, err
	}
	mx := v
	for _, b := range all {
		if len(b) == 8 {
			if x := getInt64(b); x > mx {
				mx = x
			}
		}
	}
	return mx, nil
}
