package mpemu

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"unsched/internal/comm"
	"unsched/internal/hypercube"
	"unsched/internal/sched"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("New(0) should fail")
	}
	c, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 4 {
		t.Errorf("N = %d", c.N())
	}
}

func TestSendRecvBasic(t *testing.T) {
	c, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(func(nd *Node) error {
		switch nd.Rank() {
		case 0:
			return nd.Send(1, 7, []byte("hello"))
		case 1:
			data, err := nd.Recv(0, 7)
			if err != nil {
				return err
			}
			if string(data) != "hello" {
				return fmt.Errorf("got %q", data)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendValidation(t *testing.T) {
	c, _ := New(2)
	err := c.Run(func(nd *Node) error {
		if nd.Rank() != 0 {
			return nil
		}
		if err := nd.Send(5, 0, nil); err == nil {
			return fmt.Errorf("send to invalid rank accepted")
		}
		if err := nd.Send(0, 0, nil); err == nil {
			return fmt.Errorf("self send accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTagMatching(t *testing.T) {
	c, _ := New(2)
	err := c.Run(func(nd *Node) error {
		switch nd.Rank() {
		case 0:
			// Send out of order; receiver matches by tag.
			if err := nd.Send(1, 2, []byte("second")); err != nil {
				return err
			}
			return nd.Send(1, 1, []byte("first"))
		case 1:
			first, err := nd.Recv(0, 1)
			if err != nil {
				return err
			}
			second, err := nd.Recv(0, 2)
			if err != nil {
				return err
			}
			if string(first) != "first" || string(second) != "second" {
				return fmt.Errorf("tag matching broken: %q %q", first, second)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnySource(t *testing.T) {
	c, _ := New(3)
	err := c.Run(func(nd *Node) error {
		switch nd.Rank() {
		case 0:
			return nd.Send(2, 9, []byte{1})
		case 1:
			return nd.Send(2, 9, []byte{2})
		case 2:
			seen := map[byte]bool{}
			for i := 0; i < 2; i++ {
				data, err := nd.Recv(AnySource, 9)
				if err != nil {
					return err
				}
				seen[data[0]] = true
			}
			if !seen[1] || !seen[2] {
				return fmt.Errorf("missing sources: %v", seen)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTimeoutReportsDeadlock(t *testing.T) {
	c, err := New(2, WithTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(func(nd *Node) error {
		if nd.Rank() == 0 {
			_, err := nd.Recv(1, 0) // never sent
			return err
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Errorf("orphan recv error = %v", err)
	}
}

func TestSendTimeoutWhenBufferFull(t *testing.T) {
	c, err := New(2, WithTimeout(50*time.Millisecond), WithBuffer(1))
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(func(nd *Node) error {
		if nd.Rank() == 0 {
			if err := nd.Send(1, 0, []byte("a")); err != nil {
				return err
			}
			// Second send overflows the 1-slot inbox; rank 1 never
			// drains it — the §3 buffer deadlock, detected.
			return nd.Send(1, 0, []byte("b"))
		}
		time.Sleep(200 * time.Millisecond)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "buffer full") {
		t.Errorf("buffer overflow error = %v", err)
	}
}

func TestExchange(t *testing.T) {
	c, _ := New(2)
	err := c.Run(func(nd *Node) error {
		peer := 1 - nd.Rank()
		got, err := nd.Exchange(peer, 3, []byte{byte(nd.Rank())})
		if err != nil {
			return err
		}
		if got[0] != byte(peer) {
			return fmt.Errorf("exchange got %d", got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	c, _ := New(8)
	var before, after int32
	err := c.Run(func(nd *Node) error {
		atomic.AddInt32(&before, 1)
		if err := nd.Barrier(); err != nil {
			return err
		}
		// Every rank must have incremented before any rank proceeds.
		if got := atomic.LoadInt32(&before); got != 8 {
			return fmt.Errorf("rank %d passed barrier with before=%d", nd.Rank(), got)
		}
		atomic.AddInt32(&after, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if after != 8 {
		t.Errorf("after = %d", after)
	}
}

func TestConcatenatePowerOfTwo(t *testing.T) {
	c, _ := New(8)
	err := c.Run(func(nd *Node) error {
		local := []byte(fmt.Sprintf("rank-%d", nd.Rank()))
		all, err := nd.Concatenate(local)
		if err != nil {
			return err
		}
		for r := 0; r < 8; r++ {
			want := fmt.Sprintf("rank-%d", r)
			if string(all[r]) != want {
				return fmt.Errorf("slot %d = %q, want %q", r, all[r], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcatenateRing(t *testing.T) {
	c, _ := New(6) // non power of two -> ring path
	err := c.Run(func(nd *Node) error {
		all, err := nd.Concatenate([]byte{byte(nd.Rank() * 10)})
		if err != nil {
			return err
		}
		for r := 0; r < 6; r++ {
			if len(all[r]) != 1 || all[r][0] != byte(r*10) {
				return fmt.Errorf("slot %d = %v", r, all[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceMax(t *testing.T) {
	c, _ := New(8)
	err := c.Run(func(nd *Node) error {
		mx, err := nd.AllReduceMax(int64(nd.Rank() * 7))
		if err != nil {
			return err
		}
		if mx != 49 {
			return fmt.Errorf("max = %d", mx)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	p := payloadFor(3, 9, 1000)
	if err := verifyPayload(p, 3, 9); err != nil {
		t.Fatal(err)
	}
	if err := verifyPayload(p, 3, 8); err == nil {
		t.Error("wrong dst accepted")
	}
	p[10] ^= 0xff
	if err := verifyPayload(p, 3, 9); err == nil {
		t.Error("corruption not detected")
	}
}

func TestPayloadCapsBody(t *testing.T) {
	p := payloadFor(0, 1, 1<<20)
	if len(p) > 8+4096+4 {
		t.Errorf("payload not capped: %d bytes", len(p))
	}
}

func TestExecuteScheduleDeliversEverything(t *testing.T) {
	cube := hypercube.MustNew(4)
	m, err := comm.UniformRandom(16, 5, 2048, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.RSNL(m, cube, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	c, _ := New(16)
	var sent, received int32
	err = c.Run(func(nd *Node) error {
		ns, nr, err := ExecuteSchedule(nd, s)
		atomic.AddInt32(&sent, int32(ns))
		atomic.AddInt32(&received, int32(nr))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(sent) != m.MessageCount() || int(received) != m.MessageCount() {
		t.Errorf("sent %d received %d, want %d", sent, received, m.MessageCount())
	}
}

func TestExecuteScheduleSizeMismatch(t *testing.T) {
	c, _ := New(4)
	s := &sched.Schedule{Algorithm: "X", N: 8}
	err := c.Run(func(nd *Node) error {
		_, _, err := ExecuteSchedule(nd, s)
		if err == nil {
			return fmt.Errorf("mismatch accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExecuteAC(t *testing.T) {
	m, err := comm.UniformRandom(16, 4, 512, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	order, err := sched.AC(m)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := New(16)
	var received int32
	err = c.Run(func(nd *Node) error {
		_, nr, err := ExecuteAC(nd, order, m)
		atomic.AddInt32(&received, int32(nr))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(received) != m.MessageCount() {
		t.Errorf("received %d, want %d", received, m.MessageCount())
	}
}

func TestRuntimeSchedulePipeline(t *testing.T) {
	// The full §4.2 runtime flow on 16 ranks: rows known only locally,
	// concatenate, identical schedules, verified execution.
	cube := hypercube.MustNew(4)
	m, err := comm.DRegular(16, 4, 1024, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	c, _ := New(16)
	phaseCounts := make([]int, 16)
	err = c.Run(func(nd *Node) error {
		row := make([]int64, 16)
		for j := 0; j < 16; j++ {
			row[j] = m.At(nd.Rank(), j)
		}
		res, err := RuntimeSchedule(nd, cube, row, 42)
		if err != nil {
			return err
		}
		phaseCounts[nd.Rank()] = res.Schedule.NumPhases()
		if res.Sent != 4 || res.Received != 4 {
			return fmt.Errorf("rank %d sent %d received %d, want 4/4", nd.Rank(), res.Sent, res.Received)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every rank must have derived the same schedule.
	for r := 1; r < 16; r++ {
		if phaseCounts[r] != phaseCounts[0] {
			t.Fatalf("rank %d derived %d phases, rank 0 %d", r, phaseCounts[r], phaseCounts[0])
		}
	}
}

func TestRuntimeScheduleRowValidation(t *testing.T) {
	cube := hypercube.MustNew(2)
	c, _ := New(4)
	err := c.Run(func(nd *Node) error {
		_, err := RuntimeSchedule(nd, cube, make([]int64, 3), 1)
		if err == nil {
			return fmt.Errorf("short row accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	c, _ := New(2)
	err := c.Run(func(nd *Node) error {
		if nd.Rank() == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("panic not converted: %v", err)
	}
}

func TestEncodeDecodeContributions(t *testing.T) {
	gathered := make([][]byte, 4)
	gathered[1] = []byte("one")
	gathered[3] = []byte("three")
	blob := encodeContributions(gathered)
	out := make([][]byte, 4)
	if err := decodeContributions(blob, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[1], []byte("one")) || !bytes.Equal(out[3], []byte("three")) {
		t.Errorf("decoded = %v", out)
	}
	if out[0] != nil || out[2] != nil {
		t.Error("phantom contributions")
	}
}

func TestDecodeContributionsRejectsGarbage(t *testing.T) {
	out := make([][]byte, 2)
	for _, blob := range [][]byte{
		{},                                    // too short
		{9, 0, 0, 0},                          // count with no bodies
		{1, 0, 0, 0, 5, 0, 0, 0, 99, 0, 0, 0}, // invalid rank header
	} {
		if err := decodeContributions(blob, out); err == nil {
			t.Errorf("garbage %v accepted", blob)
		}
	}
}
