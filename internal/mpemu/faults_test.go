package mpemu

// Failure-injection tests: the integrity machinery must catch
// corrupted payloads, mislabeled senders, and truncated messages — the
// failure modes a real message-passing layer can produce and that the
// paper's "check and confirm incoming messages" step (§3) exists to
// catch.

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"unsched/internal/sched"
)

// timeoutForTest keeps drop-detection tests fast.
func timeoutForTest() time.Duration { return 200 * time.Millisecond }

// faultySchedule builds a 2-node, 1-message schedule.
func faultySchedule() *sched.Schedule {
	s := &sched.Schedule{Algorithm: "X", N: 2}
	p := sched.NewPhase(2)
	p.Send[0], p.Bytes[0] = 1, 1024
	s.Phases = append(s.Phases, p)
	return s
}

func TestCorruptedPayloadDetected(t *testing.T) {
	c, _ := New(2)
	s := faultySchedule()
	err := c.Run(func(nd *Node) error {
		if nd.Rank() == 0 {
			// A byzantine sender: correct header, flipped body bit.
			payload := payloadFor(0, 1, 1024)
			payload[20] ^= 0x40
			return nd.Send(1, 0, payload)
		}
		_, received, err := ExecuteSchedule(nd, s)
		if err == nil {
			return fmt.Errorf("corrupted payload accepted (received %d)", received)
		}
		if !strings.Contains(err.Error(), "CRC") && !strings.Contains(err.Error(), "corrupted") {
			return fmt.Errorf("wrong failure mode: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMislabeledSenderDetected(t *testing.T) {
	c, _ := New(4)
	err := c.Run(func(nd *Node) error {
		switch nd.Rank() {
		case 0:
			// Claims to be rank 2.
			return nd.Send(1, 5, payloadFor(2, 1, 256))
		case 1:
			data, err := nd.Recv(0, 5)
			if err != nil {
				return err
			}
			if err := verifyPayload(data, 0, 1); err == nil {
				return fmt.Errorf("mislabeled sender accepted")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedPayloadDetected(t *testing.T) {
	c, _ := New(2)
	s := faultySchedule()
	err := c.Run(func(nd *Node) error {
		if nd.Rank() == 0 {
			payload := payloadFor(0, 1, 1024)
			return nd.Send(1, 0, payload[:len(payload)-7])
		}
		_, _, err := ExecuteSchedule(nd, s)
		if err == nil {
			return fmt.Errorf("truncated payload accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRuntPayloadDetected(t *testing.T) {
	c, _ := New(2)
	s := faultySchedule()
	err := c.Run(func(nd *Node) error {
		if nd.Rank() == 0 {
			return nd.Send(1, 0, []byte{1, 2, 3})
		}
		_, _, err := ExecuteSchedule(nd, s)
		if err == nil {
			return fmt.Errorf("runt payload accepted")
		}
		if !strings.Contains(err.Error(), "short") {
			return fmt.Errorf("wrong failure mode: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestACDropDetectedByConfirmStep(t *testing.T) {
	// One sender silently drops one of its messages; the receiver's
	// confirm step (waiting on the expected count) must time out rather
	// than report success.
	c, err := New(4, WithTimeout(timeoutForTest()))
	if err != nil {
		t.Fatal(err)
	}
	var failures int32
	err = c.Run(func(nd *Node) error {
		switch nd.Rank() {
		case 0:
			// Supposed to send to 1 and 2; drops the message to 2.
			return nd.Send(1, acTag, payloadFor(0, 1, 128))
		case 1:
			if _, err := nd.Recv(AnySource, acTag); err != nil {
				return err
			}
			return nil
		case 2:
			if _, err := nd.Recv(AnySource, acTag); err != nil {
				atomic.AddInt32(&failures, 1)
				return nil // expected: the drop is observed as a timeout
			}
			return fmt.Errorf("dropped message delivered?")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Errorf("drop not detected (failures=%d)", failures)
	}
}

func TestWrongSizeRegeneratedPayloadDetected(t *testing.T) {
	// Sender uses the wrong scheduled size: bytes differ, CRC content
	// check fails at the receiver, which regenerates with the received
	// length.
	c, _ := New(2)
	s := faultySchedule() // schedules 1024 bytes
	err := c.Run(func(nd *Node) error {
		if nd.Rank() == 0 {
			// Send a valid payload for the wrong pair (0 -> 1 but sized
			// as if body were 64 with a doctored length header).
			p := payloadFor(0, 1, 64)
			// Stretch it with zero padding so length disagrees with CRC.
			p = append(p, make([]byte, 32)...)
			return nd.Send(1, 0, p)
		}
		_, _, err := ExecuteSchedule(nd, s)
		if err == nil {
			return fmt.Errorf("size-mismatched payload accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHeaderEndpointCheck(t *testing.T) {
	// Directly exercise verifyPayload's endpoint checks.
	p := payloadFor(3, 4, 100)
	if err := verifyPayload(p, 3, 4); err != nil {
		t.Fatal(err)
	}
	// Swap the header's src field.
	binary.LittleEndian.PutUint32(p[0:4], 9)
	if err := verifyPayload(p, 3, 4); err == nil {
		t.Error("header tampering accepted")
	}
}
