package mpemu

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"

	"unsched/internal/comm"
	"unsched/internal/hypercube"
	"unsched/internal/sched"
)

// payloadFor builds a deterministic, self-describing payload for the
// message src->dst: an 8-byte header (src, dst) followed by a
// pseudo-random body of the scheduled size (capped — functional tests
// need integrity, not bulk) and a CRC. Both ends can regenerate and
// check it independently.
func payloadFor(src, dst int, scheduledBytes int64) []byte {
	const maxBody = 4096
	body := scheduledBytes
	if body > maxBody {
		body = maxBody
	}
	buf := make([]byte, 8+body+4)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(src))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(dst))
	rng := rand.New(rand.NewSource(int64(src)<<32 | int64(dst)))
	for i := int64(0); i < body; i++ {
		buf[8+i] = byte(rng.Intn(256))
	}
	sum := crc32.ChecksumIEEE(buf[:8+body])
	binary.LittleEndian.PutUint32(buf[8+body:], sum)
	return buf
}

// verifyPayload checks a received payload against the expected
// (src, dst) and its embedded CRC.
func verifyPayload(data []byte, src, dst int) error {
	if len(data) < 12 {
		return fmt.Errorf("mpemu: payload too short (%d bytes)", len(data))
	}
	gotSrc := int(binary.LittleEndian.Uint32(data[0:4]))
	gotDst := int(binary.LittleEndian.Uint32(data[4:8]))
	if gotSrc != src || gotDst != dst {
		return fmt.Errorf("mpemu: payload labeled %d->%d, expected %d->%d", gotSrc, gotDst, src, dst)
	}
	body := data[:len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return fmt.Errorf("mpemu: payload %d->%d CRC mismatch", src, dst)
	}
	if !bytes.Equal(data, payloadFor(src, dst, int64(len(data)-12))) {
		return fmt.Errorf("mpemu: payload %d->%d content corrupted", src, dst)
	}
	return nil
}

// ExecuteSchedule runs the node's part of a phase schedule over the
// real message-passing runtime, phase by phase in the S1 style: post
// (implicit — channels buffer), send, then wait for the phase's
// incoming message. Every received payload is integrity-checked.
// Returns the number of messages sent and received by this node.
func ExecuteSchedule(nd *Node, s *sched.Schedule) (sent, received int, err error) {
	if nd.N() != s.N {
		return 0, 0, fmt.Errorf("mpemu: communicator has %d ranks, schedule %d", nd.N(), s.N)
	}
	me := nd.Rank()
	for k, p := range s.Phases {
		recv := p.Recv()
		if dst := p.Send[me]; dst >= 0 {
			if err := nd.Send(dst, k, payloadFor(me, dst, p.Bytes[me])); err != nil {
				return sent, received, err
			}
			sent++
		}
		if src := recv[me]; src >= 0 {
			data, err := nd.Recv(src, k)
			if err != nil {
				return sent, received, err
			}
			if err := verifyPayload(data, src, me); err != nil {
				return sent, received, err
			}
			received++
		}
	}
	return sent, received, nil
}

// ExecuteAC runs the asynchronous algorithm (§3, Figure 1) over the
// runtime: fire every send, then drain every expected incoming message
// in arrival order, checking integrity. The acTag namespace keeps AC
// traffic apart from phase tags.
const acTag = 1 << 20

func ExecuteAC(nd *Node, order *sched.ACOrder, m *comm.Matrix) (sent, received int, err error) {
	if nd.N() != order.N {
		return 0, 0, fmt.Errorf("mpemu: communicator has %d ranks, order %d", nd.N(), order.N)
	}
	me := nd.Rank()
	for _, dst := range order.Order[me] {
		if err := nd.Send(dst, acTag, payloadFor(me, dst, m.At(me, dst))); err != nil {
			return sent, received, err
		}
		sent++
	}
	expect := m.RecvDegree(me)
	for received < expect {
		data, err := nd.Recv(AnySource, acTag)
		if err != nil {
			return sent, received, err
		}
		if len(data) < 8 {
			return sent, received, fmt.Errorf("mpemu: runt AC payload")
		}
		src := int(binary.LittleEndian.Uint32(data[0:4]))
		if err := verifyPayload(data, src, me); err != nil {
			return sent, received, err
		}
		received++
	}
	return sent, received, nil
}

// RuntimeScheduleResult is what every rank gets back from the runtime
// scheduling pipeline.
type RuntimeScheduleResult struct {
	Schedule *sched.Schedule
	Sent     int
	Received int
}

// RuntimeSchedule is the paper's runtime-scheduling pipeline run for
// real on the message-passing layer (§4.2): each rank knows only its
// own sending vector; all ranks concatenate their rows to materialize
// COM everywhere; every rank then derives the *same* schedule by
// seeding the randomized scheduler identically; finally the schedule
// is executed with payload verification. sendRow[j] is the size of the
// message this rank sends to rank j (0 for none).
func RuntimeSchedule(nd *Node, cube *hypercube.Cube, sendRow []int64, seed int64) (*RuntimeScheduleResult, error) {
	n := nd.N()
	if len(sendRow) != n {
		return nil, fmt.Errorf("mpemu: sendRow has %d entries for %d ranks", len(sendRow), n)
	}
	// 1. Compact + concatenate: every rank contributes its row.
	row := make([]byte, 8*n)
	for j, b := range sendRow {
		putInt64(row[8*j:], b)
	}
	rows, err := nd.Concatenate(row)
	if err != nil {
		return nil, err
	}
	// 2. Materialize COM locally.
	m := comm.MustNew(n)
	for i, blob := range rows {
		if len(blob) != 8*n {
			return nil, fmt.Errorf("mpemu: rank %d contributed %d bytes, want %d", i, len(blob), 8*n)
		}
		for j := 0; j < n; j++ {
			if b := getInt64(blob[8*j:]); b > 0 {
				m.Set(i, j, b)
			}
		}
	}
	// 3. Identical schedules from the shared seed — no further
	// communication needed to agree.
	s, err := sched.RSNL(m, cube, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	// 4. Execute with integrity checking.
	sent, received, err := ExecuteSchedule(nd, s)
	if err != nil {
		return nil, err
	}
	return &RuntimeScheduleResult{Schedule: s, Sent: sent, Received: received}, nil
}
