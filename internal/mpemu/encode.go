package mpemu

import (
	"encoding/binary"
	"fmt"
)

// The concatenate wire format: a count, then (rank, length, bytes) for
// every contribution present. Hand-rolled rather than gob because the
// exchange happens O(n log n) times per collective and the payloads
// are tiny.

func putInt64(b []byte, v int64) { binary.LittleEndian.PutUint64(b, uint64(v)) }
func getInt64(b []byte) int64    { return int64(binary.LittleEndian.Uint64(b)) }

// encodeContributions serializes the non-nil entries of gathered.
func encodeContributions(gathered [][]byte) []byte {
	count := 0
	size := 4
	for _, g := range gathered {
		if g != nil {
			count++
			size += 8 + len(g)
		}
	}
	out := make([]byte, 0, size)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(count))
	out = append(out, hdr[:4]...)
	for rank, g := range gathered {
		if g == nil {
			continue
		}
		binary.LittleEndian.PutUint32(hdr[:4], uint32(rank))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(g)))
		out = append(out, hdr[:]...)
		out = append(out, g...)
	}
	return out
}

// decodeContributions merges a serialized blob into gathered.
func decodeContributions(blob []byte, gathered [][]byte) error {
	if len(blob) < 4 {
		return fmt.Errorf("mpemu: contribution blob too short (%d bytes)", len(blob))
	}
	count := int(binary.LittleEndian.Uint32(blob[:4]))
	off := 4
	for i := 0; i < count; i++ {
		if off+8 > len(blob) {
			return fmt.Errorf("mpemu: truncated contribution header at %d", off)
		}
		rank := int(binary.LittleEndian.Uint32(blob[off : off+4]))
		length := int(binary.LittleEndian.Uint32(blob[off+4 : off+8]))
		off += 8
		if off+length > len(blob) {
			return fmt.Errorf("mpemu: truncated contribution body at %d", off)
		}
		if rank < 0 || rank >= len(gathered) {
			return fmt.Errorf("mpemu: contribution for invalid rank %d", rank)
		}
		if gathered[rank] == nil {
			gathered[rank] = append([]byte(nil), blob[off:off+length]...)
		}
		off += length
	}
	return nil
}
