// Fleet: three unschedd daemons serving one logical schedule cache.
//
// The unschedd cache is content-addressed, so a fleet needs no
// coordination protocol at all: every member derives the same owner
// for every key with rendezvous hashing over the static member list.
// A miss on a non-owned key asks the owner for its checksummed record
// (hedging to the next-ranked member near p90) before paying the
// O(n^2) schedule computation, and a record computed by a non-owner
// is pushed to its owner in the background. Peers are an accelerator,
// never a dependency — any peer failure falls back to local compute.
//
// This example stands up a 3-daemon fleet on loopback listeners and
// walks the whole story end to end:
//
//  1. every member agrees on who owns a key, with no vnode tables;
//  2. a unique request computes exactly once fleet-wide — the other
//     members serve it as peer-fill cache hits, byte-identically;
//  3. /metrics exposes the peer lookup/hit/push counters and the
//     shard-balance gauge, /healthz reports per-peer reachability;
//  4. killing a member degrades that member's keys to local compute,
//     never to an error.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"unsched"
)

// swapHandler lets us open the three listeners first — their URLs are
// needed as -peers/-self before any server can be constructed — and
// mount each server afterwards. Real deployments just pass the known
// fleet URLs as flags: unschedd -peers URL1,URL2,URL3 -self URLi.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "starting", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func main() {
	// Three listeners first, so every member knows the full roster.
	const n = 3
	swaps := make([]*swapHandler, n)
	listeners := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range listeners {
		swaps[i] = &swapHandler{}
		listeners[i] = httptest.NewServer(swaps[i])
		urls[i] = listeners[i].URL
	}

	// Now the daemons: identical member lists, distinct self URLs.
	servers := make([]*unsched.Server, n)
	for i := range servers {
		srv, err := unsched.NewServer(unsched.ServerOptions{
			Peers:   urls,
			SelfURL: urls[i],
		})
		if err != nil {
			log.Fatal(err)
		}
		servers[i] = srv
		swaps[i].set(srv)
	}
	defer func() {
		for i := range servers {
			listeners[i].Close()
			servers[i].Close() // drains pending peer pushes
		}
	}()
	fmt.Println("fleet members:")
	for i, u := range urls {
		fmt.Printf("  daemon %d  %s\n", i, u)
	}

	// A paper-scale request: 64 nodes, 8 messages per node, scheduled
	// link-contention-free on the 6-cube.
	req := unsched.ScheduleRequest{
		Workload:  "uniform:8:65536",
		Algorithm: "RS_NL",
		Topology:  &unsched.WireTopology{Spec: "cube:6"},
	}
	body, _ := json.Marshal(req)

	// First ask daemon 0: a fleet-wide cold miss, computed locally.
	first, etag0 := post(urls[0], body)
	fmt.Printf("\ndaemon 0: computed %d-byte response, ETag %s\n", len(first), etag0)

	// Re-ask daemon 0 for the cached rendering (the envelope flips its
	// "cached" flag to true); that is the byte form every other member
	// must reproduce. The record's owner may not be daemon 0 — the
	// write-behind push hands it over in the background, so give it a
	// moment to land. Then the rest of the fleet serves the request
	// byte-identically, normally as a peer-fill hit, not a recompute.
	cached, _ := post(urls[0], body)
	time.Sleep(200 * time.Millisecond)
	for i := 1; i < n; i++ {
		b, etag := post(urls[i], body)
		same := string(b) == string(cached) && etag == etag0
		fmt.Printf("daemon %d: %d bytes, byte-identical=%v\n", i, len(b), same)
		if !same {
			log.Fatalf("daemon %d diverged from daemon 0", i)
		}
	}

	// The peer metrics tell the story: lookups and hits on the
	// non-owners, a push from whoever computed a non-owned key.
	fmt.Println("\npeer metrics across the fleet:")
	for i, u := range urls {
		for _, line := range strings.Split(get(u+"/metrics"), "\n") {
			if strings.HasPrefix(line, "unschedd_peer_") &&
				!strings.HasSuffix(line, " 0") &&
				!strings.Contains(line, "seconds") {
				fmt.Printf("  daemon %d  %s\n", i, line)
			}
		}
	}

	// /healthz reports who this member can currently reach.
	var health struct {
		Status string `json:"status"`
		Peers  []struct {
			URL       string `json:"url"`
			Reachable bool   `json:"reachable"`
		} `json:"peers"`
	}
	if err := json.Unmarshal([]byte(get(urls[0]+"/healthz")), &health); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndaemon 0 healthz: %s, %d peers reachable\n",
		health.Status, len(health.Peers))

	// Failure semantics: kill daemon 2 and issue a fresh request from
	// daemon 0. If the dead member owned the key, the lookup fails
	// fast and daemon 0 computes locally — degraded, never down.
	listeners[2].Close()
	servers[2].Close()
	req2 := unsched.ScheduleRequest{
		Workload:  "uniform:4:4096",
		Algorithm: "GREEDY_LF",
		Topology:  &unsched.WireTopology{Spec: "cube:6"},
	}
	body2, _ := json.Marshal(req2)
	b, _ := post(urls[0], body2)
	fmt.Printf("\nwith daemon 2 down: daemon 0 still answered %d bytes (local fallback)\n", len(b))
}

func post(base string, body []byte) ([]byte, string) {
	resp, err := http.Post(base+"/v1/schedule", unsched.ContentTypeJSON,
		strings.NewReader(string(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: %d: %s", base, resp.StatusCode, raw)
	}
	return raw, resp.Header.Get("ETag")
}

func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return string(raw)
}
