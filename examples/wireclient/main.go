// Wireclient: the service's wire formats measured against each other.
//
// The unschedd service is content-addressed — every response is a pure
// function of its request's content hash — which buys three transport
// optimizations this example demonstrates end to end against an
// in-process server:
//
//  1. JSON vs the compact binary envelope (application/x-unsched-binary):
//     varint sparse encodings instead of decimal triples.
//  2. gzip on top of either, negotiated with Accept-Encoding; the
//     binary layout is column-oriented precisely so gzip can crush it.
//  3. If-None-Match revalidation: the content hash is the ETag, so a
//     client that already holds a response pays zero body bytes to
//     learn it is still current.
//
// Expected shape of the output: binary+gzip beats plain JSON by an
// order of magnitude on the paper's 1024-node workloads, and the 304
// costs nothing at all.
package main

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"

	"unsched"
)

func main() {
	srv, err := unsched.NewServer(unsched.ServerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// A paper-scale request: 1024 nodes, 8 messages per node, 1 MB
	// each, scheduled link-contention-free on the 10-cube. The server
	// generates the pattern from the spec, so the request is tiny and
	// the response carries the full matrix and schedule.
	req := unsched.ScheduleRequest{
		Workload:  "uniform:8:1048576",
		Algorithm: "RS_NL",
		Topology:  &unsched.WireTopology{Spec: "cube:10"},
	}
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}

	type variant struct {
		name   string
		accept string
		gzip   bool
	}
	variants := []variant{
		{"json", unsched.ContentTypeJSON, false},
		{"json+gzip", unsched.ContentTypeJSON, true},
		{"binary", unsched.ContentTypeBinary, false},
		{"binary+gzip", unsched.ContentTypeBinary, true},
	}

	var etag string
	var jsonBytes, lastWire int
	fmt.Println("variant       wire-bytes   ratio-vs-json")
	for _, v := range variants {
		raw, hdr, err := post(ts.URL+"/v1/schedule", body, v.accept, v.gzip)
		if err != nil {
			log.Fatal(err)
		}
		wire := len(raw)
		lastWire = wire

		// Decode whichever form came back and sanity-check it is the
		// same schedule every time.
		payload := raw
		if v.gzip {
			if payload, err = gunzip(raw); err != nil {
				log.Fatal(err)
			}
		}
		var phases int
		if v.accept == unsched.ContentTypeBinary {
			dec, err := unsched.DecodeBinaryResponse(payload)
			if err != nil {
				log.Fatal(err)
			}
			phases = len(dec.Schedule.Schedule.Phases)
		} else {
			var env unsched.ResponseEnvelope
			if err := json.Unmarshal(payload, &env); err != nil {
				log.Fatal(err)
			}
			var res unsched.ScheduleResult
			if err := json.Unmarshal(env.Result, &res); err != nil {
				log.Fatal(err)
			}
			phases = len(res.Schedule.Phases)
			etag = hdr.Get("ETag")
		}
		if v.name == "json" {
			jsonBytes = wire
		}
		fmt.Printf("%-12s %10d   %6.1fx   (%d phases)\n",
			v.name, wire, float64(jsonBytes)/float64(wire), phases)
	}
	_ = lastWire

	// Revalidation: present the JSON ETag back; the server answers 304
	// with no body before doing any scheduling work at all.
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/schedule", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	hreq.Header.Set("Content-Type", unsched.ContentTypeJSON)
	hreq.Header.Set("If-None-Match", etag)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		log.Fatal(err)
	}
	n, _ := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	fmt.Printf("\nIf-None-Match %s -> %d, %d body bytes\n", etag, resp.StatusCode, n)
}

// post sends the schedule request with explicit negotiation headers.
// Setting Accept-Encoding by hand disables Go's transparent gzip, so
// the returned body is the actual wire form and len() measures real
// transfer size.
func post(url string, body []byte, accept string, gz bool) ([]byte, http.Header, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", unsched.ContentTypeJSON)
	req.Header.Set("Accept", accept)
	if gz {
		req.Header.Set("Accept-Encoding", "gzip")
	} else {
		req.Header.Set("Accept-Encoding", "identity")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("%s: %d: %s", url, resp.StatusCode, raw)
	}
	return raw, resp.Header, nil
}

func gunzip(b []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	return io.ReadAll(zr)
}
