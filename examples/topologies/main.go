// Topologies: the paper's §5 parenthetical made concrete — the
// link-contention-avoiding scheduler works on any deterministic-
// routing network. This example schedules the same irregular pattern
// on the paper's 64-node hypercube, on an 8x8 mesh (Touchstone
// Delta/Paragon style, the machines that succeeded the iPSC/860), and
// on an 8x8 torus, then compares phase counts and simulated time.
//
// The mesh has fewer channels and longer routes than the cube, so
// link-free schedules need more phases and each phase carries fewer
// messages — which is exactly what the run shows.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"unsched"
)

func main() {
	const (
		nodes   = 64
		density = 8
		msgSize = 16 * 1024
	)
	params := unsched.DefaultIPSC860()

	m, err := unsched.DRegular(nodes, density, msgSize, rand.New(rand.NewSource(11)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pattern: %d nodes, density %d, %d KB messages\n\n", nodes, density, msgSize/1024)

	mesh8, err := unsched.NewMesh2D(8, 8, false)
	if err != nil {
		log.Fatal(err)
	}
	torus8, err := unsched.NewMesh2D(8, 8, true)
	if err != nil {
		log.Fatal(err)
	}
	nets := []unsched.Topology{unsched.NewCube(6), mesh8, torus8}

	fmt.Printf("%-14s %8s %10s %10s %12s\n", "topology", "phases", "comp(ms)", "comm(ms)", "link-free")
	for _, net := range nets {
		rng := rand.New(rand.NewSource(23))
		s, err := unsched.RSNL(m, net, rng)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.Validate(m); err != nil {
			log.Fatalf("%s: %v", net.Name(), err)
		}
		linkFree := "yes"
		if err := s.ValidateLinkFree(net); err != nil {
			linkFree = "NO: " + err.Error()
		}
		res, err := unsched.SimulateS1(net, params, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %8d %10.2f %10.2f %12s\n",
			net.Name(), s.NumPhases(), params.CompTimeMS(s.Ops), res.MakespanUS/1000, linkFree)
	}

	fmt.Println("\nThe cube's richer wiring (192 links vs the mesh's 112) packs the same")
	fmt.Println("messages into fewer link-disjoint phases; the torus closes the boundary")
	fmt.Println("and lands between the two.")
}
