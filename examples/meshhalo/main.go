// Meshhalo: the paper's motivating use case (§1) — an irregular mesh
// computation whose halo-exchange pattern is only known at runtime.
//
// A PARTI-style runtime derives the communication matrix from the
// partition, schedules it once, and reuses the schedule every
// iteration, amortizing the scheduling cost exactly as §6 describes
// ("in most applications the same schedule will be utilized many
// times").
package main

import (
	"fmt"
	"log"
	"math/rand"

	"unsched"
)

func main() {
	const (
		procs      = 64
		iterations = 200
		bytesPerEl = 8 // one float64 per boundary element
	)
	cube := unsched.NewCube(6)
	params := unsched.DefaultIPSC860()
	rng := rand.New(rand.NewSource(7))

	// An irregular mesh: a 256x256 grid with random diagonals, so
	// element degrees and partition boundaries vary.
	mesh, err := unsched.NewIrregularMesh(256, 256, 0.35, rng)
	if err != nil {
		log.Fatal(err)
	}

	for _, scenario := range []struct {
		name string
		part []int
	}{
		{"strip partition (good locality)", mesh.StripPartition(procs)},
		{"random partition (worst case)", mesh.RandomPartition(procs, rng)},
	} {
		m, err := mesh.HaloMatrix(procs, scenario.part, bytesPerEl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", scenario.name)
		fmt.Printf("  halo pattern: %d messages, density %d, %.1f KB max message\n",
			m.MessageCount(), m.Density(), float64(m.MaxMessageBytes())/1024)

		// Runtime scheduling: pay the scheduling cost once...
		s, err := unsched.RSNL(m, cube, rng)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.Validate(m); err != nil {
			log.Fatal(err)
		}
		schedMS := params.CompTimeMS(s.Ops)

		// ...and reuse the schedule every solver iteration.
		scheduled, err := unsched.SimulateS1(cube, params, s)
		if err != nil {
			log.Fatal(err)
		}
		order, err := unsched.AC(m)
		if err != nil {
			log.Fatal(err)
		}
		naive, err := unsched.SimulateAC(cube, params, order, m)
		if err != nil {
			log.Fatal(err)
		}

		perIterScheduled := scheduled.MakespanUS / 1000
		perIterNaive := naive.MakespanUS / 1000
		totalScheduled := schedMS + float64(iterations)*perIterScheduled
		totalNaive := float64(iterations) * perIterNaive

		fmt.Printf("  RS_NL: %d phases, %.2f ms/iteration + %.2f ms one-time scheduling\n",
			s.NumPhases(), perIterScheduled, schedMS)
		fmt.Printf("  AC   : %.2f ms/iteration, no scheduling\n", perIterNaive)
		fmt.Printf("  over %d iterations: RS_NL %.1f ms vs AC %.1f ms",
			iterations, totalScheduled, totalNaive)
		if totalScheduled < totalNaive {
			fmt.Printf("  (%.1fx speedup, scheduling amortized after %d iterations)\n",
				totalNaive/totalScheduled, breakEven(schedMS, perIterScheduled, perIterNaive))
		} else {
			fmt.Printf("  (naive wins: pattern too cheap to schedule)\n")
		}
		fmt.Println()
	}
}

// breakEven returns the iteration count after which scheduling pays
// for itself.
func breakEven(schedMS, perIterSched, perIterNaive float64) int {
	if perIterNaive <= perIterSched {
		return -1
	}
	return int(schedMS/(perIterNaive-perIterSched)) + 1
}
