// Crosstopo: the paper's §6 measurement protocol on machines the
// paper never had — the experiment engine is topology-generic, so the
// same campaign runs on the 64-node hypercube and on an 8x8 torus at
// equal node count, and the four contenders (AC, LP, RS_N, RS_NL) can
// be compared machine against machine.
//
// Two things to look for in the output:
//
//   - LP's guarantee evaporates off the cube: XOR permutations are
//     congestion-free under e-cube routing only, so on the torus LP
//     is just another node-contention-free schedule — and its comm
//     cost roughly doubles while everyone else's grows ~40%.
//
//   - Link-freedom costs more where channels are scarce: the torus
//     has longer routes and fewer channels than the cube, so RS_NL
//     needs more phases there and its premium over RS_N widens — the
//     topology, not the algorithm, sets the price of avoiding link
//     contention.
//
// Both campaigns share one worker pool configuration and one master
// seed; per-unit RNG streams are keyed by (seed, density, size,
// sample, algorithm), so each machine's numbers are bit-identical at
// any -parallel value.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"unsched"
)

func main() {
	parallel := flag.Int("parallel", 0, "worker goroutines; 0 means GOMAXPROCS")
	samples := flag.Int("samples", 10, "samples per cell; the paper's protocol uses 50")
	flag.Parse()

	// Equal node count, different wiring: specs are the canonical
	// topology vocabulary (the same strings the unschedd service and
	// the experiments -topo flag accept).
	specs := []string{"cube:6", "torus:8x8"}

	grid := []unsched.ExperimentPoint{
		{Density: 8, MsgBytes: 1024},
		{Density: 8, MsgBytes: 64 * 1024},
		{Density: 32, MsgBytes: 1024},
		{Density: 32, MsgBytes: 64 * 1024},
	}
	algs := []unsched.ExperimentAlgorithm{"AC", "LP", "RS_N", "RS_NL"}

	results := map[string][]map[unsched.ExperimentAlgorithm]unsched.ExperimentCell{}
	for _, spec := range specs {
		sp, err := unsched.ParseTopologySpec(spec)
		if err != nil {
			log.Fatal(err)
		}
		net, err := sp.Build()
		if err != nil {
			log.Fatal(err)
		}
		cfg := unsched.DefaultExperimentConfig()
		cfg.Topology = net
		cfg.Samples = *samples
		runner := unsched.NewExperimentRunner(cfg, *parallel)
		cells, err := runner.MeasureCells(context.Background(), grid)
		if err != nil {
			log.Fatal(err)
		}
		results[spec] = cells
	}

	fmt.Printf("§6 protocol, %d samples per cell, %d nodes each, comm cost in ms\n\n", *samples, 64)
	fmt.Printf("%3s  %6s   %-10s %10s %10s %10s %10s\n", "d", "size", "machine", "AC", "LP", "RS_N", "RS_NL")
	for i, pt := range grid {
		for _, spec := range specs {
			c := results[spec][i]
			label := ""
			if spec == specs[0] {
				label = fmt.Sprintf("%3d  %5dK", pt.Density, pt.MsgBytes/1024)
			} else {
				label = fmt.Sprintf("%3s  %6s", "", "")
			}
			fmt.Printf("%s   %-10s", label, spec)
			for _, alg := range algs {
				fmt.Printf(" %9.2f", c[alg].CommMS)
			}
			fmt.Println()
		}
		// The price of link-freedom, machine by machine.
		cube, torus := results[specs[0]][i], results[specs[1]][i]
		fmt.Printf("%12s RS_NL premium over RS_N: %4.1f%% on %s, %4.1f%% on %s\n\n", "",
			100*(cube["RS_NL"].CommMS/cube["RS_N"].CommMS-1), specs[0],
			100*(torus["RS_NL"].CommMS/torus["RS_N"].CommMS-1), specs[1])
	}
}
