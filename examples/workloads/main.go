// Workloads: the workload-generic campaign grid in one sweep. One
// campaign measures the paper's four contenders over a mixed workload
// list — the classic uniform d-regular sweep next to halo exchange,
// sparse mat-vec, hot-spot, transpose, and 3D-stencil traffic — on the
// same 64-node machine, using canonical workload specs end to end
// (the same strings the unschedd service's "workloads" field and the
// experiments CLI's -workload flag accept).
package main

import (
	"context"
	"fmt"
	"log"

	"unsched"
)

func main() {
	specs := []string{
		"uniform:8:4096",
		"scatter:8:4096",
		"hotspot:8:4096:4",
		"halo:32x32:512",
		"spmv:12:8",
		"transpose:16384",
		"stencil3d:8x8x8:256",
		"alltoall:1024",
	}
	parsed := make([]unsched.WorkloadSpec, len(specs))
	for i, s := range specs {
		sp, err := unsched.ParseWorkloadSpec(s)
		if err != nil {
			log.Fatal(err)
		}
		parsed[i] = sp
	}

	cfg := unsched.DefaultExperimentConfig()
	cfg.Samples = 3
	fmt.Printf("Workload sweep on the %d-node cube, %d samples per cell (comm ms; winner per row)\n\n",
		cfg.Topology.Nodes(), cfg.Samples)

	cells, err := unsched.NewExperimentRunner(cfg, 0).MeasureWorkloads(context.Background(), parsed)
	if err != nil {
		log.Fatal(err)
	}

	algs := []unsched.ExperimentAlgorithm{"AC", "LP", "RS_N", "RS_NL"}
	fmt.Printf("%-22s %8s %8s %8s %8s   winner\n", "workload", "AC", "LP", "RS_N", "RS_NL")
	for i, cm := range cells {
		best := algs[0]
		for _, alg := range algs[1:] {
			if cm[alg].CommMS < cm[best].CommMS {
				best = alg
			}
		}
		fmt.Printf("%-22s %8.2f %8.2f %8.2f %8.2f   %s\n",
			parsed[i], cm["AC"].CommMS, cm["LP"].CommMS, cm["RS_N"].CommMS, cm["RS_NL"].CommMS, best)
	}

	fmt.Println("\nThe same specs drive the service (POST /v1/campaign {\"workloads\": [...]})")
	fmt.Println("and the CLI (experiments -workload halo:32x32:512,... workloads).")
}
