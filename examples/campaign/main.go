// Campaign: run a multi-cell measurement campaign on the parallel
// experiment engine, with live progress and a determinism check.
//
// The engine fans every (density, message size, sample) unit of the
// campaign across a worker pool; each unit derives its RNG streams
// from the master seed and its own coordinates, so the output below
// is bit-identical whatever the worker count — try -parallel 1
// against -parallel 8.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"unsched"
)

func main() {
	parallel := flag.Int("parallel", 0, "worker goroutines; 0 means GOMAXPROCS")
	samples := flag.Int("samples", 10, "samples per cell; the paper's protocol uses 50")
	flag.Parse()

	cfg := unsched.DefaultExperimentConfig()
	cfg.Samples = *samples

	runner := unsched.NewExperimentRunner(cfg, *parallel)
	runner.Progress = func(done, total int) {
		fmt.Fprintf(os.Stderr, "\r%3d%% (%d/%d units)", 100*done/total, done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("campaign: %d samples per cell, seed %d, %d workers\n\n",
		cfg.Samples, cfg.Seed, workers)

	// A density sweep at two message sizes: 8 cells, each cell
	// 4 algorithms x samples runs, all interleaved on one pool.
	var points []unsched.ExperimentPoint
	for _, d := range []int{4, 8, 16, 32} {
		for _, size := range []int64{1024, 64 * 1024} {
			points = append(points, unsched.ExperimentPoint{Density: d, MsgBytes: size})
		}
	}

	start := time.Now()
	cells, err := runner.MeasureCells(context.Background(), points)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d cells (%d simulated runs) in %v\n\n",
		len(points), len(points)*cfg.Samples*4, time.Since(start).Round(time.Millisecond))

	fmt.Printf("%3s  %6s  %10s %10s %10s %10s\n", "d", "size", "AC", "LP", "RS_N", "RS_NL")
	for i, pt := range points {
		c := cells[i]
		fmt.Printf("%3d  %5dK  %9.2fms %9.2fms %9.2fms %9.2fms\n",
			pt.Density, pt.MsgBytes/1024,
			c["AC"].CommMS, c["LP"].CommMS, c["RS_N"].CommMS, c["RS_NL"].CommMS)
	}
}
