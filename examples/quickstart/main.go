// Quickstart: schedule one random all-to-many pattern with each of the
// paper's algorithms and compare simulated cost on the 64-node
// iPSC/860 model.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"unsched"
)

func main() {
	const (
		nodes   = 64
		density = 8
		msgSize = 16 * 1024
	)
	cube := unsched.NewCube(6) // 2^6 = 64 nodes
	params := unsched.DefaultIPSC860()
	rng := rand.New(rand.NewSource(42))

	// Each processor sends 8 messages of 16 KB to random destinations
	// and receives 8 — the paper's workload.
	m, err := unsched.DRegular(nodes, density, msgSize, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d processors, density %d, %d KB messages (%d messages total)\n\n",
		nodes, density, msgSize/1024, m.MessageCount())

	// The asynchronous baseline: no schedule at all.
	order, err := unsched.AC(m)
	if err != nil {
		log.Fatal(err)
	}
	acRes, err := unsched.SimulateAC(cube, params, order, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %8.2f ms   (no scheduling, contention everywhere)\n", "AC", acRes.MakespanUS/1000)

	// The three scheduled algorithms.
	type contender struct {
		name  string
		build func() (*unsched.Schedule, error)
	}
	for _, c := range []contender{
		{"LP", func() (*unsched.Schedule, error) { return unsched.LP(m) }},
		{"RS_N", func() (*unsched.Schedule, error) { return unsched.RSN(m, rng) }},
		{"RS_NL", func() (*unsched.Schedule, error) { return unsched.RSNL(m, cube, rng) }},
	} {
		s, err := c.build()
		if err != nil {
			log.Fatal(err)
		}
		// Every schedule is checked against the matrix: full coverage,
		// no node contention.
		if err := s.Validate(m); err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		res, err := unsched.Simulate(cube, params, s)
		if err != nil {
			log.Fatal(err)
		}
		linkFree := "link contention possible"
		if s.ValidateLinkFree(cube) == nil {
			linkFree = "link-contention free"
		}
		fmt.Printf("%-6s %8.2f ms   (%d phases, %.0f%% pairwise, %s, scheduling cost %.2f ms)\n",
			c.name, res.MakespanUS/1000, s.NumPhases(), 100*s.PairwiseFraction(),
			linkFree, params.CompTimeMS(s.Ops))
	}

	fmt.Println("\nPick automatically with ScheduleFor:")
	s, err := unsched.ScheduleFor(m, cube, rng)
	if err != nil {
		log.Fatal(err)
	}
	if s == nil {
		fmt.Println("  chose AC (asynchronous)")
	} else {
		fmt.Printf("  chose %s with %d phases\n", s.Algorithm, s.NumPhases())
	}
}
