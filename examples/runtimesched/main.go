// Runtimesched: the paper's runtime-scheduling pipeline (§4.2) run on
// a real concurrent message-passing substrate — 64 goroutine "nodes"
// with tagged sends/receives standing in for the iPSC/860's NX layer.
//
// Each node starts knowing only its own sending vector (the situation
// a PARTI-style runtime is in after partitioning). The nodes then:
//
//  1. concatenate their rows (recursive doubling over hypercube
//     dimensions) so every node holds the full COM matrix;
//  2. independently derive the *same* RS_NL schedule from a shared
//     seed — no further coordination needed;
//  3. execute the schedule phase by phase with CRC-checked payloads.
//
// The run prints the agreed schedule shape and confirms that every
// message arrived intact.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync/atomic"

	"unsched"
	"unsched/internal/mpemu"
)

func main() {
	const (
		nodes   = 64
		density = 6
		msgSize = 2048
		seed    = 1994
	)
	cube := unsched.NewCube(6)

	// The "application" decides who talks to whom; each node will only
	// be told its own row.
	pattern, err := unsched.DRegular(nodes, density, msgSize, rand.New(rand.NewSource(3)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("runtime scheduling on %d concurrent nodes: density %d, %d messages\n",
		nodes, density, pattern.MessageCount())

	comm64, err := mpemu.New(nodes)
	if err != nil {
		log.Fatal(err)
	}

	var sent, received int64
	var phases int64 = -1
	err = comm64.Run(func(nd *mpemu.Node) error {
		// Step 0: this node's local knowledge — its sending vector only.
		row := make([]int64, nodes)
		for j := 0; j < nodes; j++ {
			row[j] = pattern.At(nd.Rank(), j)
		}
		// Steps 1-3: concatenate, derive, execute.
		res, err := mpemu.RuntimeSchedule(nd, cube, row, seed)
		if err != nil {
			return err
		}
		atomic.AddInt64(&sent, int64(res.Sent))
		atomic.AddInt64(&received, int64(res.Received))
		// All ranks must agree on the schedule; record one copy and
		// verify the rest against it.
		n := int64(res.Schedule.NumPhases())
		if prev := atomic.SwapInt64(&phases, n); prev != -1 && prev != n {
			return fmt.Errorf("rank %d derived %d phases, another rank %d — schedules diverged",
				nd.Rank(), n, prev)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("all %d nodes derived the same RS_NL schedule: %d phases\n", nodes, phases)
	fmt.Printf("delivered %d messages (sent) / %d (received, CRC-verified) of %d scheduled\n",
		sent, received, pattern.MessageCount())
	if int(sent) != pattern.MessageCount() || int(received) != pattern.MessageCount() {
		log.Fatal("message count mismatch")
	}
	fmt.Println("runtime scheduling pipeline verified: concatenate -> identical schedules -> intact delivery")
}
