// Nonuniform: scheduling when message sizes differ — the extension the
// paper defers to Wang's thesis [15]. A phase costs roughly tau +
// M*phi where M is its largest message, so a schedule that mixes one
// 64 KB message into a phase of 64 B messages wastes almost the whole
// phase for every small sender. Size-aware scheduling packs similar
// sizes together.
//
// The run compares, on a log-uniform size mix from 64 B to 64 KB:
//
//   - RS_NL            (size-blind, the paper's algorithm)
//   - RS_NL_SZ         (largest-first drain inside the RS_NL framework)
//   - GREEDY_LF_LINK   (global largest-first list scheduling + link checks)
//
// on both the phase-max cost proxy and full machine simulation.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"unsched"
)

func main() {
	cube := unsched.NewCube(6)
	params := unsched.DefaultIPSC860()

	m, err := unsched.MixedSizes(64, 8, 64, 64*1024, rand.New(rand.NewSource(17)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: 64 nodes, density 8, sizes 64 B .. 64 KB (%d messages, %.1f KB total)\n\n",
		m.MessageCount(), float64(m.TotalBytes())/1024)

	type contender struct {
		name  string
		build func(rng *rand.Rand) (*unsched.Schedule, error)
	}
	contenders := []contender{
		{"RS_NL (size-blind)", func(rng *rand.Rand) (*unsched.Schedule, error) {
			return unsched.RSNL(m, cube, rng)
		}},
		{"RS_NL_SZ (size-aware)", func(rng *rand.Rand) (*unsched.Schedule, error) {
			return unsched.RSNLSized(m, cube, rng)
		}},
		{"GREEDY_LF_LINK", func(rng *rand.Rand) (*unsched.Schedule, error) {
			return unsched.GreedyLargestFirstLinkFree(m, cube)
		}},
	}

	fmt.Printf("%-24s %8s %14s %12s\n", "algorithm", "phases", "sum(maxM) KB", "comm (ms)")
	for _, c := range contenders {
		s, err := c.build(rand.New(rand.NewSource(3)))
		if err != nil {
			log.Fatal(err)
		}
		if err := s.Validate(m); err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		if err := s.ValidateLinkFree(cube); err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		var proxy int64
		for _, p := range s.Phases {
			proxy += p.MaxBytes()
		}
		res, err := unsched.SimulateS1(cube, params, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %8d %14.1f %12.2f\n",
			c.name, s.NumPhases(), float64(proxy)/1024, res.MakespanUS/1000)
	}

	fmt.Println("\nPacking similar sizes per phase shrinks the per-phase maxima the")
	fmt.Println("machine actually pays for; global largest-first goes furthest because")
	fmt.Println("it is free to reorder across the whole matrix.")
}
