// Spmv: distributed sparse matrix-vector multiplication, the classic
// irregular kernel behind the paper's "unstructured communication"
// framing. Rows of a sparse matrix are block-distributed; each SpMV
// needs the vector entries referenced by off-block columns, producing
// an all-to-many exchange whose structure depends entirely on the
// sparsity pattern.
//
// The example builds a synthetic power-law sparse matrix (a few dense
// columns, like degree-skewed graphs), derives the communication
// matrix, and shows why hot-spot patterns punish the asynchronous
// baseline and reward contention-avoiding schedules.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"unsched"
)

const (
	procs     = 64
	rowsTotal = 8192
	nnzPerRow = 12
)

func main() {
	cube := unsched.NewCube(6)
	params := unsched.DefaultIPSC860()
	rng := rand.New(rand.NewSource(99))

	// Synthetic sparsity: column j is referenced with probability
	// proportional to a power law, giving a few very popular columns —
	// the structure of web/social matrices.
	colWeight := make([]float64, rowsTotal)
	total := 0.0
	for j := range colWeight {
		colWeight[j] = 1.0 / float64(j+1)
		total += colWeight[j]
	}
	pick := func() int {
		x := rng.Float64() * total
		for j, w := range colWeight {
			x -= w
			if x <= 0 {
				return j
			}
		}
		return rowsTotal - 1
	}

	owner := func(row int) int { return row * procs / rowsTotal }

	// COM(p, q) accumulates 8 bytes for every vector entry owned by p
	// that q's rows reference.
	m, err := unsched.NewMatrix(procs)
	if err != nil {
		log.Fatal(err)
	}
	seen := make(map[[2]int]bool) // (proc, col) pairs already counted
	for row := 0; row < rowsTotal; row++ {
		p := owner(row)
		for k := 0; k < nnzPerRow; k++ {
			col := pick()
			q := owner(col)
			if q == p {
				continue
			}
			key := [2]int{p, col}
			if seen[key] {
				continue // vector entry fetched once per processor
			}
			seen[key] = true
			m.Add(q, p, 8)
		}
	}

	fmt.Printf("SpMV exchange: %d processors, %d messages, density %d\n",
		procs, m.MessageCount(), m.Density())
	fmt.Printf("message sizes: max %.1f KB, total %.1f KB (skewed: hot columns make hot processors)\n\n",
		float64(m.MaxMessageBytes())/1024, float64(m.TotalBytes())/1024)

	// Asynchronous baseline.
	order, err := unsched.AC(m)
	if err != nil {
		log.Fatal(err)
	}
	acRes, err := unsched.SimulateAC(cube, params, order, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %8.2f ms\n", "AC (asynchronous)", acRes.MakespanUS/1000)

	// Node-contention avoidance alone.
	rsn, err := unsched.RSN(m, rng)
	if err != nil {
		log.Fatal(err)
	}
	rsnRes, err := unsched.SimulateS2(cube, params, rsn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %8.2f ms  (%d phases)\n", "RS_N (node-free)", rsnRes.MakespanUS/1000, rsn.NumPhases())

	// Node + link avoidance with pairwise exchange.
	rsnl, err := unsched.RSNL(m, cube, rng)
	if err != nil {
		log.Fatal(err)
	}
	rsnlRes, err := unsched.SimulateS1(cube, params, rsnl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %8.2f ms  (%d phases, %.0f%% pairwise)\n",
		"RS_NL (node+link-free)", rsnlRes.MakespanUS/1000, rsnl.NumPhases(), 100*rsnl.PairwiseFraction())

	// Non-uniform sizes are the norm here; the largest-first variant
	// packs similar sizes into the same phase so the per-phase maxima
	// shrink monotonically.
	lf, err := unsched.GreedyLargestFirst(m)
	if err != nil {
		log.Fatal(err)
	}
	lfRes, err := unsched.SimulateS2(cube, params, lf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %8.2f ms  (%d phases, size-aware packing)\n",
		"GREEDY_LF (non-uniform)", lfRes.MakespanUS/1000, lf.NumPhases())
}
