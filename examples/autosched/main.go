// Autosched: the calibration training loop behind algorithm "auto",
// run end to end against an in-process server.
//
// The daemon's portfolio meta-scheduler resolves "auto" to a concrete
// algorithm tag from a quality model — calibration measurements binned
// by (topology kind, node count, density, size variation) and ranked
// by mean total cost. Campaigns ARE the calibration loop: every
// finished campaign appends its measured outcomes to the server's
// quality store and reloads the model. This example shows the whole
// cycle:
//
//  1. "auto" on a fresh store answers from the committed fallback
//     table (the paper's bottom line: RS_NL);
//  2. a campaign over the matching grid calibrates the store;
//  3. the same request now answers from measurements — and because
//     resolution happens BEFORE cache-key fingerprinting, the auto
//     response is byte-identical to a direct request for the chosen
//     tag, served from cache;
//  4. "auto_race" runs the model's top candidates concurrently and
//     keeps the best simulated schedule.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"unsched"
)

func main() {
	dir, err := os.MkdirTemp("", "autosched")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	srv, err := unsched.NewServer(unsched.ServerOptions{
		QualityStore: filepath.Join(dir, "quality.usqr"),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// The request under study: a 16-node cube, 4 messages per node,
	// 4 KB each. "auto" picks the tag; the response reports it.
	req := unsched.ScheduleRequest{
		Workload:  "uniform:4:4096",
		Algorithm: "auto",
		Topology:  &unsched.WireTopology{Spec: "cube:4"},
	}

	res, key := schedule(ts.URL, req)
	fmt.Printf("uncalibrated auto  -> %s (committed fallback)\n", res.Chosen)

	// Calibrate: one small campaign over the operating region. The
	// server appends every measured (workload, algorithm) outcome to
	// its quality store and swaps in the recalibrated model when the
	// campaign finishes.
	runCampaign(ts.URL, unsched.CampaignRequest{
		Densities: []int{4, 8},
		Sizes:     []int64{1024, 4096},
		Samples:   2,
		Seed:      1994,
		Dim:       4,
	})

	res, key2 := schedule(ts.URL, req)
	fmt.Printf("calibrated auto    -> %s (measured ranking)\n", res.Chosen)

	// Resolution precedes fingerprinting: asking for the chosen tag
	// directly lands on the very cache entry auto populated.
	direct := req
	direct.Algorithm = res.Chosen
	dres, dkey := schedule(ts.URL, direct)
	fmt.Printf("direct %-11s -> key match %v, same schedule %v\n",
		res.Chosen, dkey == key2, dres.Schedule.Ops == res.Schedule.Ops)
	_ = key

	// auto_race: the top-ranked candidates actually run, the best
	// simulated schedule wins — deterministically, so reruns agree.
	raced := req
	raced.AutoRace = true
	rres, _ := schedule(ts.URL, raced)
	fmt.Printf("auto_race          -> %s wins the race\n", rres.Chosen)
}

// schedule POSTs one request and returns the decoded result and its
// content-hash key.
func schedule(base string, req unsched.ScheduleRequest) (unsched.ScheduleResult, string) {
	var env unsched.ResponseEnvelope
	postJSON(base+"/v1/schedule", req, &env)
	var res unsched.ScheduleResult
	if err := json.Unmarshal(env.Result, &res); err != nil {
		log.Fatal(err)
	}
	return res, env.Key
}

// runCampaign submits the grid and polls until the server reports it
// done (and has therefore recalibrated).
func runCampaign(base string, req unsched.CampaignRequest) {
	var acc unsched.CampaignAccepted
	postJSON(base+"/v1/campaign", req, &acc)
	for {
		st := campaignStatus(base, acc.ID)
		if st.State == "failed" {
			log.Fatalf("campaign failed: %s", st.Error)
		}
		if st.State == "done" {
			fmt.Printf("campaign %s: %d cells measured, model recalibrated\n", st.ID, len(st.Cells))
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func campaignStatus(base, id string) unsched.CampaignStatus {
	resp, err := http.Get(base + "/v1/campaign/" + id)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var st unsched.CampaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	return st
}

func postJSON(url string, req, out any) {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, unsched.ContentTypeJSON, bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		log.Fatalf("%s: %d %s", url, resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		log.Fatal(err)
	}
}
