package unsched

import (
	"context"
	"math/rand"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	// The doc.go example, end to end.
	cube := NewCube(6)
	rng := rand.New(rand.NewSource(1))
	m, err := UniformRandom(64, 8, 4096, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := RSNL(m, cube, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(m); err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateLinkFree(cube); err != nil {
		t.Fatal(err)
	}
	res, err := SimulateS1(cube, DefaultIPSC860(), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanUS <= 0 {
		t.Error("no makespan")
	}
}

func TestSimulateDispatch(t *testing.T) {
	cube := NewCube(6)
	rng := rand.New(rand.NewSource(2))
	m, err := UniformRandom(64, 4, 1024, rng)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultIPSC860()
	for _, build := range []func() (*Schedule, error){
		func() (*Schedule, error) { return LP(m) },
		func() (*Schedule, error) { return RSN(m, rng) },
		func() (*Schedule, error) { return RSNL(m, cube, rng) },
		func() (*Schedule, error) { return Greedy(m) },
	} {
		s, err := build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(cube, params, s)
		if err != nil {
			t.Fatalf("%s: %v", s.Algorithm, err)
		}
		if res.MakespanUS <= 0 {
			t.Errorf("%s: no makespan", s.Algorithm)
		}
	}
}

func TestScheduleForDispatch(t *testing.T) {
	cube := NewCube(6)
	rng := rand.New(rand.NewSource(3))

	tiny, err := UniformRandom(64, 4, 64, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ScheduleFor(tiny, cube, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s != nil {
		t.Error("tiny messages should pick AC (nil schedule)")
	}

	dense, err := DRegular(64, 48, 128*1024, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err = ScheduleFor(dense, cube, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s == nil || s.Algorithm != "LP" {
		t.Errorf("dense large messages should pick LP, got %v", s)
	}

	mid, err := UniformRandom(64, 8, 8192, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err = ScheduleFor(mid, cube, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s == nil || s.Algorithm != "RS_NL" {
		t.Errorf("mid region should pick RS_NL, got %v", s)
	}
}

func TestFacadeGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := BitComplement(64, 128); err != nil {
		t.Error(err)
	}
	if _, err := Shift(64, 3, 128); err != nil {
		t.Error(err)
	}
	if _, err := AllToAll(16, 128); err != nil {
		t.Error(err)
	}
	if _, err := HotSpot(64, 4, 128, 4, 0.5, rng); err != nil {
		t.Error(err)
	}
	mesh, err := NewIrregularMesh(8, 8, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mesh.HaloMatrix(4, mesh.StripPartition(4), 8); err != nil {
		t.Error(err)
	}
}

func TestMeshTopologyEndToEnd(t *testing.T) {
	// The §5 generalization: RS_NL schedules link-contention-free on a
	// mesh and a torus, and the simulator runs them.
	for _, wrap := range []bool{false, true} {
		net, err := NewMesh2D(8, 8, wrap)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		m, err := UniformRandom(64, 6, 4096, rng)
		if err != nil {
			t.Fatal(err)
		}
		s, err := RSNL(m, net, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(m); err != nil {
			t.Fatalf("wrap=%v: %v", wrap, err)
		}
		if err := s.ValidateLinkFree(net); err != nil {
			t.Fatalf("wrap=%v: %v", wrap, err)
		}
		res, err := SimulateS1(net, DefaultIPSC860(), s)
		if err != nil {
			t.Fatalf("wrap=%v: %v", wrap, err)
		}
		if res.MakespanUS <= 0 {
			t.Errorf("wrap=%v: no makespan", wrap)
		}
	}
}

func TestMeshNeedsMorePhasesThanCube(t *testing.T) {
	// A mesh has fewer channels and longer routes than a cube of the
	// same size, so link-free schedules need at least as many phases.
	cube := NewCube(6)
	flat, err := NewMesh2D(8, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	m, err := DRegular(64, 8, 4096, rng)
	if err != nil {
		t.Fatal(err)
	}
	onCube, err := RSNL(m, cube, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	onMesh, err := RSNL(m, flat, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if onMesh.NumPhases() < onCube.NumPhases() {
		t.Errorf("mesh schedule has %d phases, cube %d — mesh should need at least as many",
			onMesh.NumPhases(), onCube.NumPhases())
	}
}

func TestRSNLSizedFacade(t *testing.T) {
	cube := NewCube(6)
	rng := rand.New(rand.NewSource(8))
	m, err := MixedSizes(64, 6, 128, 32*1024, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := RSNLSized(m, cube, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(m); err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateLinkFree(cube); err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateS1(cube, DefaultIPSC860(), s); err != nil {
		t.Fatal(err)
	}
}

func TestIPSC2FacadePreset(t *testing.T) {
	p := DefaultIPSC2()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.TransferTime(1024, 3) <= DefaultIPSC860().TransferTime(1024, 3) {
		t.Error("iPSC/2 should be slower")
	}
}

func TestDefaultExperimentConfig(t *testing.T) {
	cfg := DefaultExperimentConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Topology.Nodes() != 64 {
		t.Errorf("default config should model the 64-node machine, got %d", cfg.Topology.Nodes())
	}
}

func TestExperimentRunnerFacade(t *testing.T) {
	cfg := DefaultExperimentConfig()
	cfg.Samples = 2
	seq := NewExperimentRunner(cfg, 1)
	par := NewExperimentRunner(cfg, 4)
	points := []ExperimentPoint{{Density: 4, MsgBytes: 1024}, {Density: 8, MsgBytes: 1024}}
	a, err := seq.MeasureCells(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.MeasureCells(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		for alg, cell := range a[i] {
			if b[i][alg] != cell {
				t.Errorf("point %d %s: parallel %+v != sequential %+v", i, alg, b[i][alg], cell)
			}
		}
	}
}

func TestSimMachineFacadeReuse(t *testing.T) {
	cube := NewCube(4)
	params := DefaultIPSC860()
	rng := rand.New(rand.NewSource(99))
	m, err := DRegular(16, 4, 2048, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := RSNL(m, cube, rng)
	if err != nil {
		t.Fatal(err)
	}
	mach, err := NewSimMachine(cube, params)
	if err != nil {
		t.Fatal(err)
	}
	first, err := mach.RunS1(s)
	if err != nil {
		t.Fatal(err)
	}
	second, err := mach.RunS1(s)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Errorf("reused machine diverged: %+v vs %+v", first, second)
	}
}

// TestTopologySpecFacade drives the spec layer end to end through the
// public API: parse a ring spec, build it, schedule link-free on it,
// and simulate the schedule.
func TestTopologySpecFacade(t *testing.T) {
	sp, err := ParseTopologySpec("ring:8")
	if err != nil {
		t.Fatal(err)
	}
	if sp.String() != "ring:8" {
		t.Errorf("spec round trip: %q", sp.String())
	}
	net, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	m, err := DRegular(net.Nodes(), 3, 2048, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := RSNL(m, net, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(m); err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateLinkFree(net); err != nil {
		t.Errorf("RSNL schedule contends on the ring: %v", err)
	}
	res, err := SimulateS1(net, DefaultIPSC860(), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanUS <= 0 {
		t.Error("simulated run took no time")
	}

	// The graph constructor covers machines no spec string was written
	// for: a cube with one extra chord still schedules and simulates.
	g, err := NewGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := AllToAll(4, 512)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := RSNL(m2, g, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.ValidateLinkFree(g); err != nil {
		t.Errorf("RSNL schedule contends on the graph: %v", err)
	}
}

// TestWorkloadSpecFacade: the public workload-spec surface — parse,
// build, and a workload-generic campaign through the exported runner
// on a torus, bit-identical across parallelism (the public-API leg of
// the halo-on-torus acceptance path).
func TestWorkloadSpecFacade(t *testing.T) {
	sp, err := ParseWorkloadSpec("halo:8x8:512")
	if err != nil {
		t.Fatal(err)
	}
	if sp.String() != "halo:8x8:512" {
		t.Errorf("canonical form %q", sp)
	}
	m, err := sp.Build(64, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseWorkloadSpec("klein:4:64"); err == nil {
		t.Error("bad workload spec accepted")
	}

	torus, err := ParseTopologySpec("torus:8x8")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultExperimentConfig()
	cfg.Topology = torus.MustBuild()
	cfg.Samples = 2
	measure := func(parallelism int) []map[ExperimentAlgorithm]ExperimentCell {
		cells, err := NewExperimentRunner(cfg, parallelism).MeasureWorkloads(
			context.Background(), []WorkloadSpec{sp, MustParseWorkload(t, "spmv:6:8")})
		if err != nil {
			t.Fatal(err)
		}
		return cells
	}
	seq := measure(1)
	par := measure(4)
	for i := range seq {
		for alg, cell := range seq[i] {
			if par[i][alg] != cell {
				t.Errorf("cell %d %s: parallel %+v != sequential %+v", i, alg, par[i][alg], cell)
			}
		}
	}
	if seq[0][RSNLAlg()].Workload != "halo:8x8:512" {
		t.Errorf("cell workload label %q", seq[0][RSNLAlg()].Workload)
	}

	// The new scenario generators are exported alongside the classic
	// ones.
	if _, err := Transpose(16, 1024); err != nil {
		t.Error(err)
	}
	if _, err := Stencil3D(8, 4, 4, 4, 8); err != nil {
		t.Error(err)
	}
	if _, err := Permutation(8, 64, rand.New(rand.NewSource(1))); err != nil {
		t.Error(err)
	}
	if _, err := SpMVPowerLaw(8, 4, 8, rand.New(rand.NewSource(1))); err != nil {
		t.Error(err)
	}
}

// MustParseWorkload is a test helper over the exported parser.
func MustParseWorkload(t *testing.T, s string) WorkloadSpec {
	t.Helper()
	sp, err := ParseWorkloadSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// RSNLAlg returns the RS_NL algorithm label through the exported type.
func RSNLAlg() ExperimentAlgorithm { return ExperimentAlgorithm("RS_NL") }
