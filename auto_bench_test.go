package unsched

// Benchmarks for the algorithm-"auto" portfolio layer, tracked by
// cmd/benchgate in CI. Pick is on the /v1/schedule request path in
// front of every auto-resolved computation, so it must stay noise
// next to the cheapest real scheduling run (RS_NL's tens of
// microseconds on the paper grid) — the gate pins it at nanoseconds.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

// autoBenchModel builds a model with the calibration shape a live
// daemon holds: every contender measured in the queried bin.
func autoBenchModel() *QualityModel {
	var recs []QualityRecord
	for _, alg := range []struct {
		tag  string
		comm float64
	}{{"RS_N", 900}, {"RS_NL", 950}, {"LP", 1400}, {"AC", 8000}} {
		recs = append(recs, QualityRecord{
			Topology: "hypercube-6", Workload: "uniform:8:65536", Algorithm: alg.tag,
			Nodes: 64, Density: 8, EstCommUS: alg.comm, Samples: 10,
		})
	}
	return NewQualityModel(recs)
}

// BenchmarkAutoPickOverhead measures resolving "auto" to a concrete
// tag against a calibrated bin — the only work an auto request adds
// before fingerprinting.
func BenchmarkAutoPickOverhead(b *testing.B) {
	model := autoBenchModel()
	f := SchedFeatures{Nodes: 64, Density: 8, SizeCV: 0}
	var ranked []string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranked = model.Pick("hypercube-6", f)
	}
	b.StopTimer()
	if len(ranked) == 0 || ranked[0] != "RS_N" {
		b.Fatalf("Pick returned %v, want RS_N first", ranked)
	}
}

// BenchmarkScheduleHTTPAuto measures the full wire path of an
// algorithm-"auto" request on a warm cache: resolution plus the same
// cache-hit response a concrete-tag request gets, since auto resolves
// before fingerprinting and shares the cache slot.
func BenchmarkScheduleHTTPAuto(b *testing.B) {
	ts, _, _ := wireBenchServer(b)
	req := ScheduleRequest{
		Workload:  "uniform:8:65536",
		Algorithm: "auto",
		Topology:  &WireTopology{Spec: "cube:8"},
	}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	// Prime the auto-resolved entry (the fallback pick, RS_NL, is the
	// same schedule wireBenchServer primed — one computation total).
	resp, err := http.Post(ts.URL+"/v1/schedule", ContentTypeJSON, bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("prime auto request: %d", resp.StatusCode)
	}
	hdr := map[string]string{"Accept-Encoding": "identity"}
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n = wireBenchDo(b, ts.URL+"/v1/schedule", body, hdr, http.StatusOK)
	}
	b.ReportMetric(float64(n), "wire_bytes")
}
