module unsched

go 1.22
