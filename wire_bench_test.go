package unsched

// Wire-format benchmarks, tracked by cmd/benchgate in CI alongside the
// paper tables: the binary matrix codec against its JSON triple form,
// and the service's negotiated response path end to end over HTTP —
// cached JSON, cached binary+gzip, and If-None-Match revalidation.
// Each reports the actual transfer size as wire_bytes so a regression
// in either speed or compactness trips the gate.

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"unsched/internal/comm"
)

func wireBenchMatrix(b *testing.B, n int) *comm.Matrix {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	m, err := comm.DRegular(n, 8, 128*1024, rng)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func benchWireEncodeJSON(b *testing.B, n int) {
	m := wireBenchMatrix(b, n)
	msgs := m.Messages()
	triples := make([][3]int64, len(msgs))
	for i, msg := range msgs {
		triples[i] = [3]int64{int64(msg.Src), int64(msg.Dst), msg.Bytes}
	}
	doc := WireMatrix{N: m.N(), Messages: triples}
	var enc []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if enc, err = json.Marshal(doc); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(enc)), "wire_bytes")
}

func benchWireEncodeBinary(b *testing.B, n int) {
	m := wireBenchMatrix(b, n)
	var enc []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc = m.EncodeBinary()
	}
	b.StopTimer()
	if _, err := DecodeMatrixBinary(enc); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(enc)), "wire_bytes")
}

func BenchmarkWireEncodeMatrixJSON_256(b *testing.B)    { benchWireEncodeJSON(b, 256) }
func BenchmarkWireEncodeMatrixBinary_256(b *testing.B)  { benchWireEncodeBinary(b, 256) }
func BenchmarkWireEncodeMatrixJSON_1024(b *testing.B)   { benchWireEncodeJSON(b, 1024) }
func BenchmarkWireEncodeMatrixBinary_1024(b *testing.B) { benchWireEncodeBinary(b, 1024) }

// wireBenchServer starts an in-process service and primes the cache
// with one paper-scale schedule, returning the URL, the request body,
// and the response's ETag for revalidation runs.
func wireBenchServer(b *testing.B) (ts *httptest.Server, body []byte, etag string) {
	b.Helper()
	srv, err := NewServer(ServerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	ts = httptest.NewServer(srv)
	b.Cleanup(func() { ts.Close(); srv.Close() })
	req := ScheduleRequest{
		Workload:  "uniform:8:65536",
		Algorithm: "RS_NL",
		Topology:  &WireTopology{Spec: "cube:8"},
	}
	if body, err = json.Marshal(req); err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/schedule", ContentTypeJSON, bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("prime request: %d", resp.StatusCode)
	}
	return ts, body, resp.Header.Get("ETag")
}

func wireBenchDo(b *testing.B, url string, body []byte, hdr map[string]string, wantStatus int) int {
	b.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	req.Header.Set("Content-Type", ContentTypeJSON)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		b.Fatal(err)
	}
	n, err := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		b.Fatalf("status %d, want %d", resp.StatusCode, wantStatus)
	}
	return int(n)
}

// BenchmarkScheduleHTTPCachedJSON measures the default wire path: a
// cache-hit schedule response as identity-encoded JSON.
func BenchmarkScheduleHTTPCachedJSON(b *testing.B) {
	ts, body, _ := wireBenchServer(b)
	hdr := map[string]string{"Accept-Encoding": "identity"}
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n = wireBenchDo(b, ts.URL+"/v1/schedule", body, hdr, http.StatusOK)
	}
	b.ReportMetric(float64(n), "wire_bytes")
}

// BenchmarkScheduleHTTPCachedBinaryGzip measures the compact path the
// README's 10x claim rests on: the same cache hit as gzipped binary.
func BenchmarkScheduleHTTPCachedBinaryGzip(b *testing.B) {
	ts, body, _ := wireBenchServer(b)
	hdr := map[string]string{"Accept": ContentTypeBinary, "Accept-Encoding": "gzip"}
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n = wireBenchDo(b, ts.URL+"/v1/schedule", body, hdr, http.StatusOK)
	}
	b.StopTimer()
	b.ReportMetric(float64(n), "wire_bytes")
	// The compact form must actually decode: fetch once more and check.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/schedule", bytes.NewReader(body))
	req.Header.Set("Content-Type", ContentTypeJSON)
	req.Header.Set("Accept", ContentTypeBinary)
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		b.Fatal(err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := DecodeBinaryResponse(raw); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkScheduleHTTPRevalidate304 measures the zero-body path: the
// client holds the response and only revalidates its content hash.
func BenchmarkScheduleHTTPRevalidate304(b *testing.B) {
	ts, body, etag := wireBenchServer(b)
	if etag == "" {
		b.Fatal("prime response carried no ETag")
	}
	hdr := map[string]string{"If-None-Match": etag}
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n = wireBenchDo(b, ts.URL+"/v1/schedule", body, hdr, http.StatusNotModified)
	}
	b.ReportMetric(float64(n), "wire_bytes")
}
