// Allocation-regression test for the steady-state schedule→simulate
// round trip — the configuration every campaign worker and unschedd
// worker runs in: one reusable SchedCore and one reusable SimMachine
// per goroutine. Excluded under the race detector: its
// instrumentation changes allocation counts.
//
//go:build !race

package unsched

import (
	"math/rand"
	"testing"
)

// allocBudgetRoundTrip pins one RSNL schedule plus one S1 simulation
// on reused core+machine. The budget is dominated by the two outputs
// that must escape — the Schedule's phases and the simulator's per-run
// program compilation (~5.6k allocations, cf. the committed
// BenchmarkSimulatorRSNLReused baseline); scheduler scratch adds
// nothing. A regression in either reuse path blows well past the
// headroom.
const allocBudgetRoundTrip = 7000

func TestScheduleSimulateRoundTripAllocs(t *testing.T) {
	cube := NewCube(6)
	m, err := DRegular(64, 16, 4096, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	core := NewSchedCore(cube)
	mach, err := NewSimMachine(cube, DefaultIPSC860())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	roundTrip := func() {
		s, err := core.RSNL(m, rng)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mach.RunS1(s); err != nil {
			t.Fatal(err)
		}
	}
	roundTrip() // warm the scratch
	got := testing.AllocsPerRun(20, roundTrip)
	if got > allocBudgetRoundTrip {
		t.Errorf("reused core+machine round trip: %.1f allocs/run, budget %d", got, allocBudgetRoundTrip)
	}
}
