// Allocation-regression test for the steady-state schedule→simulate
// round trip — the configuration every campaign worker and unschedd
// worker runs in: one reusable SchedCore and one reusable SimMachine
// per goroutine. Excluded under the race detector: its
// instrumentation changes allocation counts.
//
//go:build !race

package unsched

import (
	"math/rand"
	"testing"
)

// allocBudgetRoundTrip pins one RSNL schedule plus one S1 simulation
// on reused core+machine. Since the simulator moved to flat events
// and arena-recycled per-message state, only the outputs that must
// escape allocate: the Schedule's phase slices (~48 allocations) and
// the simulator's per-phase program headers (~22, cf. the committed
// BenchmarkSimulatorRSNLReused baseline at 20 allocs/op). 150 is ~2x
// the measured 71; a closure or per-event allocation creeping back
// into the hot path blows past it immediately.
const allocBudgetRoundTrip = 150

func TestScheduleSimulateRoundTripAllocs(t *testing.T) {
	cube := NewCube(6)
	m, err := DRegular(64, 16, 4096, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	core := NewSchedCore(cube)
	mach, err := NewSimMachine(cube, DefaultIPSC860())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	roundTrip := func() {
		s, err := core.RSNL(m, rng)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mach.RunS1(s); err != nil {
			t.Fatal(err)
		}
	}
	roundTrip() // warm the scratch
	got := testing.AllocsPerRun(20, roundTrip)
	if got > allocBudgetRoundTrip {
		t.Errorf("reused core+machine round trip: %.1f allocs/run, budget %d", got, allocBudgetRoundTrip)
	}
}
