package unsched

// Fleet-mode benchmarks, tracked by cmd/benchgate in CI. The claim
// under test is the one the fleet exists for: serving a peer-cached
// 64-node RS_NL schedule over the internal record endpoint is several
// times cheaper than recomputing it locally, so a fleet member that
// misses on a non-owned key should always try its owner first. Both
// HTTP benchmarks report the transfer size as wire_bytes so a
// regression in record compactness trips the gate too.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"unsched/internal/fleet"
)

// fleetBenchRequest is the paper-scale unit of work: 64 nodes, 32
// messages per node (the dense end of the paper's sweep), scheduled
// link-contention-free on the 6-cube.
func fleetBenchRequest(b *testing.B) []byte {
	b.Helper()
	body, err := json.Marshal(ScheduleRequest{
		Workload:  "uniform:32:65536",
		Algorithm: "RS_NL",
		Topology:  &WireTopology{Spec: "cube:6"},
	})
	if err != nil {
		b.Fatal(err)
	}
	return body
}

// fleetBenchHandler lets the two listeners exist (and hand out their
// URLs) before the servers that need those URLs are constructed.
type fleetBenchHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *fleetBenchHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "starting", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// fleetBenchContentKey discovers the request's content-hash key (the
// unquoted ETag) from a throwaway solo daemon; the key is a pure
// function of the request, so it is identical fleet-wide.
func fleetBenchContentKey(b *testing.B, body []byte) string {
	b.Helper()
	srv, err := NewServer(ServerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() { ts.Close(); srv.Close() }()
	resp, err := http.Post(ts.URL+"/v1/schedule", ContentTypeJSON, bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("key-discovery request: %d", resp.StatusCode)
	}
	etag := strings.Trim(resp.Header.Get("ETag"), `"`)
	if etag == "" {
		b.Fatal("key-discovery response carried no ETag")
	}
	return etag
}

// fleetBenchPair stands up a two-member fleet where the benchmark
// request's key is owned by the OTHER member: the returned URL is the
// non-owner, with local caching disabled so every request to it pays
// the full miss path — which in fleet mode is a peer fetch of the
// owner's checksummed record instead of an O(n^2) recompute.
func fleetBenchPair(b *testing.B, body []byte) (nonOwnerURL string) {
	b.Helper()
	key := fleetBenchContentKey(b, body)

	handlers := [2]*fleetBenchHandler{{}, {}}
	var tss [2]*httptest.Server
	urls := make([]string, 2)
	for i := range tss {
		tss[i] = httptest.NewServer(handlers[i])
		urls[i] = tss[i].URL
	}

	// Ask the same rendezvous hash the members use who owns the key.
	// Ownership depends only on member URLs and key bytes, so identity
	// codec hooks are fine here.
	identity := func(_ string, v []byte) ([]byte, error) { return v, nil }
	fl, err := fleet.New(fleet.Options{Self: urls[0], Peers: urls, Encode: identity, Decode: identity})
	if err != nil {
		b.Fatal(err)
	}
	ownerIdx := 0
	if fl.Owner(key) == urls[1] {
		ownerIdx = 1
	}
	fl.Close(0)
	nonIdx := 1 - ownerIdx

	var servers [2]*Server
	for i := range servers {
		opts := ServerOptions{
			Peers:      urls,
			SelfURL:    urls[i],
			PeerBudget: 2 * time.Second, // generous: CI jitter must not skew the measurement with fallback computes
		}
		if i == nonIdx {
			opts.CacheEntries = -1 // never memoize locally: every request exercises the peer path
		}
		srv, err := NewServer(opts)
		if err != nil {
			b.Fatal(err)
		}
		servers[i] = srv
		handlers[i].mu.Lock()
		handlers[i].h = srv
		handlers[i].mu.Unlock()
	}
	b.Cleanup(func() {
		for i := range servers {
			tss[i].Close()
			servers[i].Close()
		}
	})

	// Prime the owner: one compute, after which its memory cache holds
	// the canonical record the non-owner will fetch.
	resp, err := http.Post(urls[ownerIdx]+"/v1/schedule", ContentTypeJSON, bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("prime request: %d", resp.StatusCode)
	}
	return urls[nonIdx]
}

// BenchmarkScheduleHTTPPeerHit is the fleet counterpart of
// BenchmarkScheduleHTTPCachedJSON: the same schedule response, but the
// serving member holds nothing locally — every request walks client ->
// non-owner -> owner's record endpoint -> client, end to end.
func BenchmarkScheduleHTTPPeerHit(b *testing.B) {
	body := fleetBenchRequest(b)
	url := fleetBenchPair(b, body)
	hdr := map[string]string{"Accept-Encoding": "identity"}
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n = wireBenchDo(b, url+"/v1/schedule", body, hdr, http.StatusOK)
	}
	b.ReportMetric(float64(n), "wire_bytes")
}

// BenchmarkPeerFetchVsRecompute puts the miss path's actual choice on
// the record. When a fleet member misses on a non-owned key it can
// either fetch the owner's canonical record — one GET of raw
// checksummed bytes, no JSON marshal anywhere — or recompute the
// schedule locally. PeerFetch measures the first alternative against
// a live owner daemon; Recompute measures the second (a solo daemon
// with caching disabled paying the full scheduling computation). The
// gate tracks both; PeerFetch must stay several times cheaper, since
// that margin is the reason the fleet's miss path tries it first.
func BenchmarkPeerFetchVsRecompute(b *testing.B) {
	b.Run("PeerFetch", func(b *testing.B) {
		body := fleetBenchRequest(b)
		key := fleetBenchContentKey(b, body)
		srv, err := NewServer(ServerOptions{})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		b.Cleanup(func() { ts.Close(); srv.Close() })
		// Prime the owner's cache with the one computation.
		resp, err := http.Post(ts.URL+"/v1/schedule", ContentTypeJSON, bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("prime request: %d", resp.StatusCode)
		}
		url := ts.URL + "/v1/cache/" + key
		var n int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req, err := http.NewRequest(http.MethodGet, url, nil)
			if err != nil {
				b.Fatal(err)
			}
			req.Header.Set("Accept-Encoding", "identity")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			n, err = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("record fetch: %d", resp.StatusCode)
			}
		}
		b.ReportMetric(float64(n), "wire_bytes")
	})
	b.Run("Recompute", func(b *testing.B) {
		body := fleetBenchRequest(b)
		srv, err := NewServer(ServerOptions{CacheEntries: -1})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		b.Cleanup(func() { ts.Close(); srv.Close() })
		hdr := map[string]string{"Accept-Encoding": "identity"}
		var n int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n = wireBenchDo(b, ts.URL+"/v1/schedule", body, hdr, http.StatusOK)
		}
		b.ReportMetric(float64(n), "wire_bytes")
	})
}
